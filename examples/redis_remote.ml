(* A data-structure server on disaggregated memory: the Redis-like KV store
   running with only a fraction of its data local, under Kona and under the
   virtual-memory baseline (Kona-VM) — the scenario from the paper's
   introduction, where Infiniswap loses 60% throughput with 25% of data
   remote.

   Run with: dune exec examples/redis_remote.exe *)

open Kona
module Heap = Kona_workloads.Heap
module Kv_store = Kona_workloads.Kv_store
module Units = Kona_util.Units
module Rng = Kona_util.Rng
module Vm_runtime = Kona_baselines.Vm_runtime

let keys = 10_000
let ops = 50_000

let rack () =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
  controller

let run_workload heap =
  let kv = Kv_store.create heap ~nbuckets:16_384 in
  let rng = Rng.create ~seed:42 in
  Kv_store.run_driver kv ~rng ~pattern:Kv_store.Rand ~keys ~ops ~value_len:104
    ~set_ratio:0.5

(* ~25% of the working set fits locally. *)
let cache_pages_for_25pct = 128

let () =
  Fmt.pr "redis_remote: %d keys, %d mixed ops, ~25%% of data local@.@." keys ops;

  (* Kona *)
  let controller = rack () in
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = cache_pages_for_25pct } in
  let kona = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 16) ~sink:(Runtime.sink kona) () in
  heap_ref := Some heap;
  let r = run_workload heap in
  Runtime.drain kona;
  let kona_ns = Runtime.elapsed_ns kona in
  Fmt.pr "Kona:    %a  (app %a, eviction %a)@." Units.pp_ns kona_ns Units.pp_ns
    (Runtime.app_ns kona) Units.pp_ns (Runtime.bg_ns kona);
  let stats = Runtime.stats kona in
  Fmt.pr "         %d page fetches, %d dirty lines shipped (%a over the wire)@."
    (List.assoc "fetch.pages" stats)
    (List.assoc "log.lines" stats)
    Units.pp_bytes
    (List.assoc "log.lines" stats * Cl_log.entry_bytes);

  (* Kona-VM *)
  let controller = rack () in
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let profile = Vm_runtime.kona_vm_profile Cost_model.default Kona_rdma.Cost.default in
  let config =
    { Vm_runtime.default_config with cache_pages = cache_pages_for_25pct }
  in
  let vm = Vm_runtime.create ~config ~profile ~controller ~read_local () in
  let vm_heap = Heap.create ~capacity:(Units.mib 16) ~sink:(Vm_runtime.sink vm) () in
  heap_ref := Some vm_heap;
  let r' = run_workload vm_heap in
  Vm_runtime.drain vm;
  let vm_ns = Vm_runtime.elapsed_ns vm in
  let vm_stats = Vm_runtime.stats vm in
  Fmt.pr "Kona-VM: %a  (%d remote faults, %d wp faults, %d whole pages shipped = %a)@."
    Units.pp_ns vm_ns
    (List.assoc "remote_faults" vm_stats)
    (List.assoc "wp_faults" vm_stats)
    (List.assoc "dirty_pages_written" vm_stats)
    Units.pp_bytes
    (List.assoc "dirty_pages_written" vm_stats * Units.page_size);

  assert (r.Kv_store.hits = r.Kv_store.gets && r'.Kv_store.hits = r'.Kv_store.gets);
  Fmt.pr "@.Kona speedup over Kona-VM: %.1fx@."
    (float_of_int vm_ns /. float_of_int kona_ns)
