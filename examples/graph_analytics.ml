(* Graph analytics over disaggregated memory: PageRank on a graph larger
   than local DRAM, showing how cache-line dirty tracking shrinks eviction
   traffic for scattered 8-byte rank updates inside 192-byte vertex
   records.

   Run with: dune exec examples/graph_analytics.exe *)

open Kona
module Heap = Kona_workloads.Heap
module Graph = Kona_workloads.Graph
module Graph_algos = Kona_workloads.Graph_algos
module Units = Kona_util.Units
module Rng = Kona_util.Rng

let vertices = 20_000
let degree = 8

let () =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
  Rack_controller.register_node controller (Memory_node.create ~id:1 ~capacity:(Units.mib 64));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  (* Local cache: 2 MiB against a ~7 MiB graph + vertex state footprint. *)
  let config = { Runtime.default_config with fmem_pages = 512 } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 24) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;

  Fmt.pr "generating a %d-vertex graph (avg degree %d) in disaggregated memory...@."
    vertices degree;
  let g = Graph.generate heap ~rng:(Rng.create ~seed:9) ~vertices ~avg_degree:degree in
  Fmt.pr "running 5 PageRank iterations...@.";
  let mass = Graph_algos.pagerank g ~iterations:5 in
  Runtime.drain runtime;

  Fmt.pr "rank mass: %.4f (should be close to 1)@." mass;
  Fmt.pr "footprint: %a; local cache: %a@." Units.pp_bytes (Heap.used heap)
    Units.pp_bytes (config.Runtime.fmem_pages * Units.page_size);
  let stats = Runtime.stats runtime in
  let lines = List.assoc "evict.lines" stats in
  let pages = List.assoc "evict.pages" stats - List.assoc "evict.clean_pages" stats in
  Fmt.pr "app time %a, eviction time %a@." Units.pp_ns (Runtime.app_ns runtime)
    Units.pp_ns (Runtime.bg_ns runtime);
  Fmt.pr "evicted %d dirty pages carrying %d dirty lines (%.1f lines/page)@." pages
    lines
    (float_of_int lines /. float_of_int (max 1 pages));
  Fmt.pr "cache-line eviction shipped %a; page-granularity would ship %a (%.1fx more)@."
    Units.pp_bytes (lines * Units.cache_line) Units.pp_bytes (pages * Units.page_size)
    (float_of_int (pages * Units.page_size)
    /. float_of_int (max 1 (lines * Units.cache_line)))
