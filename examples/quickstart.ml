(* Quickstart: allocate disaggregated memory through Kona, write to it,
   read it back, and watch the runtime move only the dirty cache-lines.

   Run with: dune exec examples/quickstart.exe *)

open Kona
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units

let () =
  (* 1. A rack: two memory nodes of 64 MiB each and a controller handing
     out 1 MiB slabs. *)
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
  Rack_controller.register_node controller (Memory_node.create ~id:1 ~capacity:(Units.mib 64));

  (* 2. A compute node running the Kona runtime with a 1 MiB FMem cache
     (256 page frames, 4-way set-associative). *)
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 256 } in
  let runtime = Runtime.create ~config ~controller ~read_local () in

  (* 3. The "application": an instrumented heap whose every access flows
     through the runtime, transparently. *)
  let heap = Heap.create ~capacity:(Units.mib 16) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;

  (* Allocate an 8 MiB array — eight times the local cache — and fill it. *)
  let elems = Units.mib 8 / 8 in
  let array = Heap.alloc heap (8 * elems) in
  for i = 0 to elems - 1 do
    Heap.write_u64 heap (array + (8 * i)) (i * i)
  done;

  (* Random reads: most of the data now lives on the memory nodes. *)
  let rng = Kona_util.Rng.create ~seed:1 in
  let sum = ref 0 in
  for _ = 1 to 100_000 do
    let i = Kona_util.Rng.int rng elems in
    sum := !sum + Heap.read_u64 heap (array + (8 * i))
  done;

  Runtime.drain runtime;

  Fmt.pr "quickstart: wrote %d u64s, sampled 100k reads (checksum %d)@." elems !sum;
  Fmt.pr "application time: %a, background eviction time: %a@." Units.pp_ns
    (Runtime.app_ns runtime) Units.pp_ns (Runtime.bg_ns runtime);
  List.iter
    (fun (k, v) -> Fmt.pr "  %-26s %d@." k v)
    (Runtime.stats runtime);

  (* Verify: remote memory is byte-identical to the application's view. *)
  let rm = Runtime.resource_manager runtime in
  let ok = ref true in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then begin
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node) ~addr:remote_addr
            ~len:Units.page_size
        in
        if local <> remote then ok := false
      end);
  Fmt.pr "integrity: remote memory %s the application heap@."
    (if !ok then "matches" else "DIVERGED from");
  if not !ok then exit 1
