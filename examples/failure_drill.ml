(* Failure drill (paper §4.5): run an application over disaggregated memory
   while (1) replicating evictions to two mirror nodes and (2) injecting a
   network outage that trips the cache-coherence timeout and raises
   machine-check exceptions.  The application survives, the MCE path
   absorbs the outage, and every replica ends byte-identical.

   Run with: dune exec examples/failure_drill.exe *)

open Kona
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Rng = Kona_util.Rng

let () =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller (Memory_node.create ~id:0 ~capacity:(Units.mib 32));
  Rack_controller.register_node controller (Memory_node.create ~id:1 ~capacity:(Units.mib 32));

  (* A flaky network: two outages, 3ms and 5ms, early in the run. *)
  let nic = Kona_rdma.Nic.create () in
  Kona_rdma.Nic.inject_outage nic ~at:(Units.us 500) ~duration:(Units.ms 3);
  Kona_rdma.Nic.inject_outage nic ~at:(Units.ms 20) ~duration:(Units.ms 5);

  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config =
    {
      Runtime.default_config with
      fmem_pages = 128;
      replicas = 2;
      mce_threshold_ns = Some (Units.us 200);
    }
  in
  let runtime = Runtime.create ~config ~nic ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 8) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;

  Fmt.pr "failure drill: 2 replicas, 2 injected outages, MCE threshold 200us@.";
  let region = Units.mib 2 in
  let base = Heap.alloc heap region in
  let rng = Rng.create ~seed:13 in
  for i = 1 to 200_000 do
    let addr = base + (Rng.int rng (region / 8) * 8) in
    if i mod 3 = 0 then ignore (Heap.read_u64 heap addr)
    else Heap.write_u64 heap addr i
  done;
  Runtime.drain runtime;

  let stats = Runtime.stats runtime in
  Fmt.pr "survived: %d fetches, %d machine-check exceptions handled@."
    (List.assoc "fetch.pages" stats)
    (List.assoc "mce.raised" stats);
  Fmt.pr "app time %a (outage time injected: %a)@." Units.pp_ns (Runtime.app_ns runtime)
    Units.pp_ns (Kona_rdma.Nic.outage_total nic);

  (* Primary integrity... *)
  let rm = Runtime.resource_manager runtime in
  let mismatches = ref 0 in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let page_base = vpage * Units.page_size in
      if page_base + Units.page_size <= Heap.capacity heap then begin
        let local = Heap.peek_bytes heap page_base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node) ~addr:remote_addr
            ~len:Units.page_size
        in
        if local <> remote then incr mismatches
      end);
  Fmt.pr "primary integrity: %s@."
    (if !mismatches = 0 then "intact" else "DIVERGED");
  (* ... and replica integrity. *)
  (match Runtime.replication runtime with
  | Some r ->
      let divergent = Replication.divergent_mirrors r ~controller in
      Fmt.pr "replicas: %d lines mirrored, %d divergent mirrors@."
        (Replication.lines_replicated r) divergent;
      if divergent > 0 then exit 1
  | None -> assert false);
  if !mismatches > 0 then exit 1
