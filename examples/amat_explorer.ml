(* AMAT explorer: interactive access to KCacheSim (the Fig. 8 methodology).
   Pick a workload, a set of local-cache fractions, and a fetch block size;
   get the average memory access time under every system profile.

   Run with, e.g.:
     dune exec examples/amat_explorer.exe -- --workload "Redis-Rand" \
       --fracs 0.1,0.25,0.5,1.0 --block 4096 *)

open Kona
module Workloads = Kona_workloads.Workloads

let run workload_name fracs block full_scale =
  let spec =
    try Workloads.find workload_name
    with Not_found ->
      Fmt.epr "unknown workload %S; available:@." workload_name;
      List.iter (fun (s : Workloads.spec) -> Fmt.epr "  %s@." s.Workloads.name) Workloads.all;
      exit 1
  in
  let scale = if full_scale then Workloads.Full else Workloads.Smoke in
  let cost = Cost_model.default in
  let systems =
    [
      Cost_model.infiniswap cost;
      Cost_model.legoos cost;
      Cost_model.kona cost;
      Cost_model.kona_main cost;
    ]
  in
  Fmt.pr "AMAT (ns) for %s, fetch block %d B@." spec.Workloads.name block;
  Fmt.pr "%-8s" "cache%";
  List.iter (fun p -> Fmt.pr "%12s" p.Cost_model.system) systems;
  Fmt.pr "@.";
  List.iter
    (fun frac ->
      let counts = Kcachesim.simulate ~block ~spec ~scale ~seed:42 ~cache_frac:frac () in
      Fmt.pr "%-8.0f" (100. *. frac);
      List.iter
        (fun profile -> Fmt.pr "%12.2f" (Kcachesim.amat_ns ~cost ~profile counts))
        systems;
      Fmt.pr "@.")
    fracs;
  0

open Cmdliner

let workload =
  Arg.(value & opt string "Redis-Rand" & info [ "workload"; "w" ] ~doc:"Table 2 workload name")

let fracs =
  let parse s =
    try Ok (List.map float_of_string (String.split_on_char ',' s))
    with _ -> Error (`Msg "expected comma-separated floats")
  in
  let fracs_conv =
    Arg.conv (parse, fun fmt l -> Fmt.pf fmt "%a" Fmt.(list ~sep:comma float) l)
  in
  Arg.(
    value
    & opt fracs_conv [ 0.1; 0.25; 0.5; 0.75; 1.0 ]
    & info [ "fracs" ] ~doc:"cache fractions")

let block =
  Arg.(value & opt int 4096 & info [ "block" ] ~doc:"fetch block size in bytes (power of 2)")

let full = Arg.(value & flag & info [ "full" ] ~doc:"bench-sized workload (slower)")

let cmd =
  Cmd.v
    (Cmd.info "amat_explorer" ~doc:"explore AMAT across systems (KCacheSim)")
    Term.(const run $ workload $ fracs $ block $ full)

let () = exit (Cmd.eval' cmd)
