(* Failure mode 1 (paper §4.5): the compute host crashes.  Its memory is
   gone — but the application's data lives on the memory nodes.  A new
   process on a fresh host re-attaches: it restores its heap image from
   disaggregated memory and resumes serving, with every key intact.

   Run with: dune exec examples/restart_recovery.exe *)

open Kona
module Heap = Kona_workloads.Heap
module Kv_store = Kona_workloads.Kv_store
module Units = Kona_util.Units

let keys = 2_000
let nbuckets = 1024

let () =
  (* The rack outlives any compute host. *)
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller (Memory_node.create ~id:0 ~capacity:(Units.mib 32));
  Rack_controller.register_node controller (Memory_node.create ~id:1 ~capacity:(Units.mib 32));

  (* ------------- incarnation 1: build state, then "crash" ------------- *)
  let heap1_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap1_ref) addr len in
  let runtime1 =
    Runtime.create
      ~config:{ Runtime.default_config with fmem_pages = 128 }
      ~controller ~read_local ()
  in
  let heap1 = Heap.create ~capacity:(Units.mib 8) ~sink:(Runtime.sink runtime1) () in
  heap1_ref := Some heap1;
  let kv = Kv_store.create heap1 ~nbuckets in
  for i = 0 to keys - 1 do
    Kv_store.set kv (Kv_store.key_of_int i) (Printf.sprintf "value-%06d" i)
  done;
  (* The server's root pointer, as it would be registered with the rack. *)
  let root = Kv_store.table_addr kv in
  Runtime.drain runtime1;
  let rm1 = Runtime.resource_manager runtime1 in
  Fmt.pr "incarnation 1: stored %d keys, drained to %d slabs; host crashes now@."
    keys (List.length (Resource_manager.slabs rm1));

  (* ------------- incarnation 2: fresh host, recover ------------- *)
  (* A brand-new heap: all zeros, nothing local survives the crash. *)
  let heap2 = Heap.create ~capacity:(Units.mib 8) ~sink:Kona_trace.Access.Tap.ignore () in
  (* Restore through the runtime: [recover_heap] flushes the cache-line
     log, streams every backed page back over RDMA reads, and charges the
     whole restore to the virtual clock (a real restart would fault pages
     in lazily through a new runtime; eager restore keeps the example
     self-contained). *)
  let restored, lost =
    Runtime.recover_heap runtime1 ~restore:(fun ~addr ~data ->
        if addr + Units.page_size <= Heap.capacity heap2 then
          Heap.restore_page heap2 ~addr ~data)
  in
  Fmt.pr "incarnation 2: restored %d pages from the rack (%d unreachable) in %s@."
    restored lost
    (Fmt.str "%.1fus"
       (float_of_int
          (Kona_util.Histogram.percentile (Runtime.recovery_latency runtime1) 50.)
       /. 1e3));

  (* Re-attach to the table through the recovered root pointer. *)
  let kv2 = Kv_store.attach heap2 ~nbuckets ~table:root ~entries:keys in
  let missing = ref 0 in
  for i = 0 to keys - 1 do
    match Kv_store.get kv2 (Kv_store.key_of_int i) with
    | Some v when v = Printf.sprintf "value-%06d" i -> ()
    | Some _ | None -> incr missing
  done;
  Fmt.pr "recovery check: %d/%d keys intact after restart@." (keys - !missing) keys;
  if !missing > 0 then exit 1
