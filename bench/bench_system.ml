(* End-to-end system run (not a paper figure): every Table 2 workload
   executed through the full Kona runtime — CPU caches, coherence directory,
   FMem, CL-log eviction, memory nodes — with ~25% of the footprint local,
   reporting virtual time, traffic, and the byte-level integrity verdict.
   This is the "does the whole machine hold together" table. *)

open Kona
module Heap = Kona_workloads.Heap
module Workloads = Kona_workloads.Workloads
module Units = Kona_util.Units

let run_one ~scale (spec : Workloads.spec) =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  (* ~25% of the workload's arena as local cache. *)
  let fmem_pages =
    max 64 (spec.Workloads.heap_capacity scale / Units.page_size / 4)
  in
  let config = { Runtime.default_config with fmem_pages } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale)
      ~sink:(Runtime.sink runtime) ()
  in
  heap_ref := Some heap;
  spec.Workloads.run scale ~heap ~seed:42;
  Runtime.drain runtime;
  let stats = Runtime.stats runtime in
  let rm = Runtime.resource_manager runtime in
  let mismatches = ref 0 in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      (* Poked pages model read-only mmap'd input files: clean, never
         written back, re-read from the file after any failure. *)
      if base + Units.page_size <= Heap.capacity heap
         && not (Heap.page_poked heap ~page:vpage)
      then
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node) ~addr:remote_addr
            ~len:Units.page_size
        in
        if local <> remote then incr mismatches);
  [
    spec.Workloads.name;
    Report.ns (Runtime.app_ns runtime);
    Report.ns (Runtime.bg_ns runtime);
    string_of_int (List.assoc "fetch.pages" stats);
    string_of_int (List.assoc "evict.lines" stats);
    Printf.sprintf "%dKB" (List.assoc "log.lines" stats * Cl_log.entry_bytes / 1024);
    string_of_int (List.assoc "mce.raised" stats);
    (if !mismatches = 0 then "OK" else Printf.sprintf "%d DIVERGED" !mismatches);
  ]

let run ~scale () =
  Report.section "System: all workloads end-to-end on the Kona runtime";
  Report.note "~25%% of each footprint cached locally; integrity = remote == heap after drain";
  (* The runtime path (full cache simulation per access) is much slower than
     the analyses, so this table always runs workloads at smoke size. *)
  ignore scale;
  let rows = List.map (run_one ~scale:Workloads.Smoke) Workloads.all in
  Report.table
    ~header:
      [ "workload"; "app time"; "evict time"; "fetches"; "dirty lines";
        "log bytes"; "MCEs"; "integrity" ]
    rows
