(* Multi-tenant rack: fairness and contention sweep (lib/rack).

   Two tenants with different access patterns (Redis-Rand vs PageRank)
   share the rack's memory nodes.  Two sweeps:

   - fairness: hold the link rate at saturation and sweep the bw-share
     ratio; the achieved ingress-bandwidth ratio must track the weight
     ratio (the WFQ contract);
   - contention: hold shares at 2:1 and sweep the per-node link rate;
     as the link speeds up, saturation — and with it total queueing —
     falls away.

   Artifact: BENCH_rack.json (one row per configuration, commit/seed
   stamped by Report). *)

module Rack = Kona_rack.Rack
module Workloads = Kona_workloads.Workloads
module Snapshot = Kona_telemetry.Snapshot
module Histogram = Kona_util.Histogram
module Json = Kona_telemetry.Json

let artifact = "BENCH_rack.json"
let seed = 42

let tenants ~shares:(s0, s1) =
  [
    {
      Rack.name = "t0-kv-uniform";
      workload = "kv-uniform";
      bw_share = s0;
      mem_quota = None;
      seed;
    };
    {
      Rack.name = "t1-page-rank";
      workload = "page-rank";
      bw_share = s1;
      mem_quota = None;
      seed = seed + 1;
    };
  ]

let fetch_pct (t : Rack.tenant_result) ~index p =
  match
    Snapshot.find t.Rack.t_snapshot
      (Printf.sprintf "tenant.%d.fetch.latency_ns" index)
  with
  | Some (Snapshot.Hist h) when Histogram.count h > 0 ->
      Histogram.percentile h p
  | _ -> 0

let row ~label ~gbps ~shares:(s0, s1) ~scale =
  let cfg =
    { Rack.default_config with Rack.scale; node_gbps = gbps }
  in
  let r = Rack.run cfg (tenants ~shares:(s0, s1)) in
  let t0 = r.Rack.r_tenants.(0) and t1 = r.Rack.r_tenants.(1) in
  let ratio =
    if t1.Rack.t_achieved_gbps > 0.0 then
      t0.Rack.t_achieved_gbps /. t1.Rack.t_achieved_gbps
    else 0.0
  in
  Report.json_line
    [
      ("kind", Json.String "rack-config");
      ("label", Json.String label);
      ("node_gbps", Json.Float gbps);
      ("share0", Json.Int s0);
      ("share1", Json.Int s1);
      ("achieved0_gbps", Json.Float t0.Rack.t_achieved_gbps);
      ("achieved1_gbps", Json.Float t1.Rack.t_achieved_gbps);
      ("achieved_ratio", Json.Float ratio);
      ("delay0_ns", Json.Int t0.Rack.t_delay_ns);
      ("delay1_ns", Json.Int t1.Rack.t_delay_ns);
      ("fetch_p50_0_ns", Json.Int (fetch_pct t0 ~index:0 50.));
      ("fetch_p99_0_ns", Json.Int (fetch_pct t0 ~index:0 99.));
      ("fetch_p50_1_ns", Json.Int (fetch_pct t1 ~index:1 50.));
      ("fetch_p99_1_ns", Json.Int (fetch_pct t1 ~index:1 99.));
      ("saturated_admits", Json.Int r.Rack.r_saturated_admits);
      ("total_admits", Json.Int r.Rack.r_total_admits);
      ("invalidations", Json.Int r.Rack.r_invalidations_sent);
      ("mismatches0", Json.Int t0.Rack.t_mismatches);
      ("mismatches1", Json.Int t1.Rack.t_mismatches);
    ];
  [
    label;
    Printf.sprintf "%d:%d" s0 s1;
    Report.f2 gbps;
    Report.f2 t0.Rack.t_achieved_gbps;
    Report.f2 t1.Rack.t_achieved_gbps;
    Report.f2 ratio;
    Report.ns t0.Rack.t_delay_ns;
    Report.ns t1.Rack.t_delay_ns;
    Report.ns (fetch_pct t0 ~index:0 99.);
    Report.ns (fetch_pct t1 ~index:1 99.);
    string_of_int r.Rack.r_invalidations_sent;
  ]

let run ~scale () =
  Report.set_seed seed;
  Report.with_artifact ~path:artifact
    ~meta:
      [
        ("experiment", Json.String "rack");
        ( "scale",
          Json.String
            (match scale with Workloads.Smoke -> "smoke" | Workloads.Full -> "full")
        );
      ]
    (fun () ->
      Report.section "rack: weighted-fair bandwidth under multi-tenancy";
      Report.note
        "two tenants (Redis-Rand vs PageRank) share 2 memory nodes; achieved \
         = contended-interval ingress bandwidth";
      let header =
        [
          "config"; "shares"; "Gbit/s"; "bw0"; "bw1"; "ratio"; "queued0";
          "queued1"; "fetch-p99-0"; "fetch-p99-1"; "inval";
        ]
      in
      let fairness =
        List.map
          (fun (s0, s1) ->
            row
              ~label:(Printf.sprintf "fair-%d:%d" s0 s1)
              ~gbps:1.0 ~shares:(s0, s1) ~scale)
          [ (1, 1); (2, 1); (4, 1) ]
      in
      let contention =
        List.map
          (fun gbps ->
            row
              ~label:(Printf.sprintf "link-%.0fG" gbps)
              ~gbps ~shares:(2, 1) ~scale)
          [ 0.5; 2.0; 8.0 ]
      in
      Report.table ~header (fairness @ contention);
      Report.note "artifact: %s" artifact)
