(* Fig. 9: per-window 4KB-vs-cache-line dirty amplification timeline
   (KTracker snapshot diffs) for Redis-Rand and Redis-Seq.

   Fig. 10: modeled speedup of coherence-based tracking relative to
   4KB write-protection, for the eight tracked workloads. *)

open Kona
module Heap = Kona_workloads.Heap
module Workloads = Kona_workloads.Workloads
module Window = Kona_trace.Window

let cost = Cost_model.default

(* The paper measures KTracker against wall-clock app time; our virtual
   app time charges this much per instrumented access.  The constant is
   calibrated once so Redis-Rand lands at its measured 35% (a heap access
   in a real server is accompanied by hundreds of instructions of parsing /
   networking / stack traffic that our instrumentation does not see); all
   other workloads are then predictions.  See EXPERIMENTS.md. *)
let app_access_ns = 730

let track ~scale ~seed (spec : Workloads.spec) =
  let heap_ref = ref None in
  let tracker_ref = ref None in
  let accesses = ref 0 in
  let inner event =
    incr accesses;
    Ktracker.sink (Option.get !tracker_ref) event
  in
  let w =
    Window.create
      ~quantum:(spec.Workloads.quantum scale)
      ~inner
      ~on_boundary:(fun ~window ->
        Ktracker.close_window (Option.get !tracker_ref) ~window)
  in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink:(Window.sink w) ()
  in
  heap_ref := Some heap;
  tracker_ref := Some (Ktracker.create ~heap ());
  spec.Workloads.run scale ~heap ~seed;
  Window.flush w;
  (Option.get !tracker_ref, !accesses)

let fig9 ~scale () =
  Report.section "Fig. 9: 4KB-page vs cache-line dirty amplification per window";
  let series (spec : Workloads.spec) =
    let tracker, _ = track ~scale ~seed:42 spec in
    let windows = Ktracker.windows tracker in
    (* Drop the tear-down window, as the paper does. *)
    let windows = match List.rev windows with [] -> [] | _ :: r -> List.rev r in
    (spec.Workloads.name, List.map Ktracker.amp_ratio windows)
  in
  let rand_name, rand = series Workloads.redis_rand in
  let seq_name, seq = series Workloads.redis_seq in
  let stats name values =
    let n = List.length values in
    let nonzero = List.filter (fun v -> v > 0.) values in
    let sum = List.fold_left ( +. ) 0. nonzero in
    let mean = sum /. float_of_int (max 1 (List.length nonzero)) in
    let mx = List.fold_left max 0. values in
    [ name; string_of_int n; Report.f1 mean; Report.f1 mx ]
  in
  Report.table
    ~header:[ "workload"; "windows"; "mean ratio"; "max ratio" ]
    [ stats rand_name rand; stats seq_name seq ];
  let show name values =
    (* Sample evenly across the whole run: startup windows first, then the
       steady state the paper's Fig. 9 oscillates in. *)
    let n = List.length values in
    let step = max 1 (n / 16) in
    let sampled = List.filteri (fun i _ -> i mod step = 0) values in
    Format.printf "  %s timeline (every %dth window): %s@." name step
      (String.concat " " (List.map Report.f1 sampled))
  in
  show rand_name rand;
  show seq_name seq;
  Report.note "paper: Redis-Rand 2-10x reduction per window, Redis-Seq ~2x"

let fig10_workloads =
  [
    "Redis-Rand";
    "Redis-Seq";
    "Histogram";
    "Linear Regression";
    "Connected Components";
    "Graph Coloring";
    "Label Propagation";
    "Page Rank";
  ]

let fig10 ~scale () =
  Report.section "Fig. 10: dirty-tracking speedup vs 4KB write-protection";
  Report.note "modeled: app time = accesses x %dns; overhead = wp faults + re-protection TLB invalidations"
    app_access_ns;
  let rows =
    List.map
      (fun name ->
        let spec = Workloads.find name in
        let tracker, accesses = track ~scale ~seed:42 spec in
        let app_ns = accesses * app_access_ns in
        let speedup = Ktracker.speedup_percent ~cost ~app_ns tracker in
        let faults =
          List.fold_left
            (fun acc w -> acc + w.Ktracker.wp_faults)
            0 (Ktracker.windows tracker)
        in
        (* Intel PML (related work, §8): the speedup an alternative
           page-granularity hardware tracker would already capture. *)
        let pml_speedup =
          let wp = Ktracker.wp_overhead_ns ~cost tracker in
          let pml = Ktracker.pml_overhead_ns ~cost tracker in
          if app_ns = 0 then 0.
          else 100. *. float_of_int (wp - pml) /. float_of_int (app_ns + pml)
        in
        [ name; string_of_int faults; Report.f1 speedup; Report.f1 pml_speedup ])
      fig10_workloads
  in
  Report.table
    ~header:[ "workload"; "wp faults"; "Kona speedup %"; "PML-equivalent %" ]
    rows;
  Report.note "paper: 35%% (Redis-Rand) down to ~1%% (Redis-Seq, Histogram)";
  Report.note
    "PML column: page-grain hardware logging captures nearly the same tracking";
  Report.note
    "speedup but none of the amplification reduction (Table 2 / Fig. 11)"

let run ~scale () =
  fig9 ~scale ();
  fig10 ~scale ()
