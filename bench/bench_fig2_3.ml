(* Fig. 2 (accessed cache-lines per page) and Fig. 3 (contiguous cache-line
   segment lengths) as CDFs, for Redis-Rand and Redis-Seq, reads and writes
   separately. *)

open Kona_workloads
module Access = Kona_trace.Access
module Footprint = Kona_trace.Footprint
module Window = Kona_trace.Window
module Cdf = Kona_util.Cdf

let sample_points = [ 1; 2; 4; 8; 16; 32; 48; 64 ]

let footprint_of ~scale ~seed (spec : Workloads.spec) =
  let fp = Footprint.create () in
  let w =
    Window.create
      ~quantum:(spec.Workloads.quantum scale)
      ~inner:(Footprint.sink fp)
      ~on_boundary:(fun ~window -> Footprint.close_window fp ~window)
  in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink:(Window.sink w) ()
  in
  spec.Workloads.run scale ~heap ~seed;
  Window.flush w;
  fp

let cdf_row name cdf =
  name
  :: List.map (fun n -> Printf.sprintf "%.2f" (Cdf.at cdf n)) sample_points
  @ [ Printf.sprintf "%.1f" (Cdf.mean cdf) ]

let run ~scale () =
  let rand = footprint_of ~scale ~seed:42 Workloads.redis_rand in
  let seq = footprint_of ~scale ~seed:42 Workloads.redis_seq in
  let header =
    "series" :: List.map (fun n -> "<=" ^ string_of_int n) sample_points @ [ "mean" ]
  in

  Report.section "Fig. 2: CDF of accessed cache-lines per page (Redis)";
  Report.table ~header
    [
      cdf_row "Reads (Rand)" (Footprint.lines_per_page_cdf rand ~kind:Access.Read);
      cdf_row "Writes (Rand)" (Footprint.lines_per_page_cdf rand ~kind:Access.Write);
      cdf_row "Reads (Seq)" (Footprint.lines_per_page_cdf seq ~kind:Access.Read);
      cdf_row "Writes (Seq)" (Footprint.lines_per_page_cdf seq ~kind:Access.Write);
    ];
  let rand_writes = Footprint.lines_per_page_cdf rand ~kind:Access.Write in
  let seq_writes = Footprint.lines_per_page_cdf seq ~kind:Access.Write in
  Report.note "shape: Rand pages are mostly 1-8 lines (P(<=8) = %.2f, paper ~0.8+)"
    (Cdf.at rand_writes 8);
  Report.note "shape: Seq pages skew towards fully-written (P(<=8) = %.2f, far lower)"
    (Cdf.at seq_writes 8);

  Report.section "Fig. 3: CDF of contiguous accessed cache-line segments (Redis)";
  Report.table ~header
    [
      cdf_row "Reads (Rand)" (Footprint.segment_length_cdf rand ~kind:Access.Read);
      cdf_row "Writes (Rand)" (Footprint.segment_length_cdf rand ~kind:Access.Write);
      cdf_row "Reads (Seq)" (Footprint.segment_length_cdf seq ~kind:Access.Read);
      cdf_row "Writes (Seq)" (Footprint.segment_length_cdf seq ~kind:Access.Write);
    ];
  let rand_segs = Footprint.segment_length_cdf rand ~kind:Access.Write in
  Report.note "shape: most segments are 1-4 contiguous lines (P(<=4) = %.2f, paper ~0.8+)"
    (Cdf.at rand_segs 4)
