(* Placement-policy comparison (lib/placement wired through lib/rack).

   A skewed two-tenant rack — Redis-Zipf (a concentrated hot set) next
   to Redis-Rand (no locality) — over 3 memory nodes of which only node
   0 is low-latency, with FMem squeezed to 64 frames so demand fetches
   actually hit the fabric.  Each placement policy replays the identical
   traces; what differs is where pages live:

   - first-fit: the controller's round-robin, no migration (baseline);
   - heat: same allocation, but a background migrator promotes pages
     whose decaying access heat crosses the threshold onto the fast
     tier — remote-hit ratio should drop well below the baseline;
   - centralized: MIND-style directory that balances capacity, not
     heat — at this scale it tracks the baseline.

   A final row drains node 1 mid-run under the heat policy: every page
   re-homed, zero divergence, and the drain traffic visible as WFQ
   queueing.

   Artifact: BENCH_placement.json (one row per policy, commit/seed and
   sim_accesses_per_sec stamped by Report). *)

module Rack = Kona_rack.Rack
module Rack_ops = Kona_rack.Rack_ops
module Workloads = Kona_workloads.Workloads
module Json = Kona_telemetry.Json

let artifact = "BENCH_placement.json"
let seed = 42

let tenants =
  [
    {
      Rack.name = "t0-kv-zipf";
      workload = "kv-zipf";
      bw_share = 1;
      mem_quota = None;
      seed;
    };
    {
      Rack.name = "t1-kv-uniform";
      workload = "kv-uniform";
      bw_share = 1;
      mem_quota = None;
      seed = seed + 1;
    };
  ]

let config ~scale ~policy ~ops =
  {
    Rack.default_config with
    Rack.scale;
    nodes = 3;
    fast_nodes = 1;
    slow_extra_ns = 2000;
    policy;
    ops;
    runtime = { Rack.default_config.Rack.runtime with Kona.Runtime.fmem_pages = 64 };
  }

let pml v = Printf.sprintf "%d.%d%%" (v / 10) (v mod 10)

let row ~label ~scale ~policy ~ops =
  let r = Rack.run (config ~scale ~policy ~ops) tenants in
  let mismatches =
    Array.fold_left
      (fun acc (t : Rack.tenant_result) -> acc + t.Rack.t_mismatches)
      0 r.Rack.r_tenants
  in
  Report.json_line
    [
      ("kind", Json.String "placement-policy");
      ("label", Json.String label);
      ("policy", Json.String r.Rack.r_policy);
      ("ops", Json.String (Rack_ops.to_string ops));
      ("migrations", Json.Int r.Rack.r_migrations);
      ("bytes_moved", Json.Int r.Rack.r_bytes_moved);
      ("failed_moves", Json.Int r.Rack.r_failed_moves);
      ("migrator_delay_ns", Json.Int r.Rack.r_migrator_delay_ns);
      ("fetches", Json.Int r.Rack.r_fetches);
      ("fetches_fast", Json.Int r.Rack.r_fetches_fast);
      ("remote_hit_pml", Json.Int r.Rack.r_remote_hit_pml);
      ("hot_hit_pml", Json.Int r.Rack.r_hot_hit_pml);
      ("drained_pages", Json.Int r.Rack.r_drained_pages);
      ("drain_failures", Json.Int r.Rack.r_drain_failures);
      ("elapsed_ns", Json.Int r.Rack.r_elapsed_ns);
      ("mismatches", Json.Int mismatches);
    ];
  [
    label;
    string_of_int r.Rack.r_migrations;
    pml r.Rack.r_remote_hit_pml;
    pml r.Rack.r_hot_hit_pml;
    Report.ns r.Rack.r_migrator_delay_ns;
    string_of_int r.Rack.r_drained_pages;
    Report.ns r.Rack.r_elapsed_ns;
    string_of_int mismatches;
  ]

let run ~scale () =
  Report.set_seed seed;
  Report.with_artifact ~path:artifact
    ~meta:
      [
        ("experiment", Json.String "placement");
        ( "scale",
          Json.String
            (match scale with Workloads.Smoke -> "smoke" | Workloads.Full -> "full")
        );
      ]
    (fun () ->
      Report.section "placement: policy comparison on a tiered rack";
      Report.note
        "Redis-Zipf + Redis-Rand, 3 nodes (node 0 fast, +2us to the rest), \
         64 FMem frames; identical traces per policy";
      let header =
        [
          "policy"; "migrations"; "remote-hit"; "hot-hit"; "mig-queued";
          "drained"; "elapsed"; "diverged";
        ]
      in
      let policy_rows =
        List.map
          (fun policy -> row ~label:policy ~scale ~policy ~ops:[])
          Kona_placement.Placement_policy.names
      in
      let drain_row =
        row ~label:"heat+drain" ~scale ~policy:"heat"
          ~ops:(Rack_ops.parse_exn "drain@5ms:id=1")
      in
      let rows = policy_rows @ [ drain_row ] in
      Report.table ~header rows;
      Report.note
        "heat must land under first-fit on remote-hit; diverged must be 0";
      Report.note "artifact: %s" artifact)
