(* §6.1 / §2.1 latency claims: per-operation remote-access and eviction
   latencies for each system, measured from the models that the rest of the
   evaluation builds on. *)

open Kona
module Units = Kona_util.Units
module Vm_runtime = Kona_baselines.Vm_runtime

let cost = Cost_model.default
let rdma = Kona_rdma.Cost.default

(* Send-queue window sweep: the same eviction stream (2048 pages, 8 dirty
   lines each, through a 64-entry CL log with selective signaling) under
   different SQ depths.  A depth-1 window serializes every log write; deeper
   windows recover the pipelining that unbounded posting gets for free,
   while bounding in-flight state. *)
let sweep_window_depth () =
  Report.section "Sec. 4.4: eviction throughput vs send-queue window depth";
  let rows =
    List.map
      (fun sq_depth ->
        let clock = Kona_util.Clock.create () in
        let qp = Kona_rdma.Qp.create ~cost:rdma ?sq_depth ~signal_interval:4 ~clock () in
        let node = Memory_node.create ~id:0 ~capacity:(Units.mib 64) in
        let log =
          Kona.Cl_log.create ~capacity:64 ~qp ~cost:rdma
            ~resolve:(fun ~node:_ -> node) ()
        in
        let run = String.make (8 * Units.cache_line) 'd' in
        for page = 0 to 2047 do
          Kona.Cl_log.note_bitmap_scan log ~lines:Units.lines_per_page;
          Kona.Cl_log.append_run log ~node:0 ~raddr:(page * Units.page_size) ~data:run
        done;
        Kona.Cl_log.flush log;
        let depth_label =
          match sq_depth with Some d -> string_of_int d | None -> "unbounded"
        in
        [
          depth_label;
          Report.ns (Kona_util.Clock.now clock);
          string_of_int (Kona_rdma.Qp.window_stalls qp);
          Report.ns (Kona_rdma.Qp.window_stall_ns qp);
          string_of_int (Kona_rdma.Qp.outstanding_peak qp);
          string_of_int (Kona.Cl_log.doorbell_batches log);
        ])
      [ Some 1; Some 4; Some 16; None ]
  in
  Report.table
    ~header:
      [ "sq_depth"; "eviction time"; "stalls"; "stall time"; "peak outst"; "doorbells" ]
    rows;
  Report.note
    "deeper windows hide log-write completions behind continued staging; \
     depth 1 exposes every round trip"

let run () =
  Report.section "Sec. 6.1: remote access and eviction path latencies";
  let raw_4k = Kona_rdma.Cost.batch_ns rdma ~sizes:[ Units.page_size ] in
  let p_vm = Vm_runtime.kona_vm_profile cost rdma in
  let p_lego = Vm_runtime.legoos_profile cost in
  let p_inf = Vm_runtime.infiniswap_profile cost in
  Report.table
    ~header:[ "operation"; "latency"; "paper" ]
    [
      [ "raw RDMA 4KB read/write"; Report.ns raw_4k; "~3us" ];
      [ "Kona remote fetch (no fault)"; Report.ns raw_4k; "~RDMA latency" ];
      [ "Kona-VM remote fault (userfaultfd)";
        Report.ns p_vm.Vm_runtime.remote_fetch_ns; "< Infiniswap by up to 60%" ];
      [ "LegoOS remote fault"; Report.ns p_lego.Vm_runtime.remote_fetch_ns; "10us" ];
      [ "Infiniswap remote fault"; Report.ns p_inf.Vm_runtime.remote_fetch_ns; "40us" ];
      [ "write-protect (minor) fault"; Report.ns cost.Cost_model.minor_fault_ns; "~us-scale" ];
      [ "TLB single invalidation"; Report.ns cost.Cost_model.tlb_invalidate_ns; "-" ];
      [ "Infiniswap page eviction";
        Report.ns
          (p_inf.Vm_runtime.eviction_extra_ns + raw_4k
          + Kona_rdma.Cost.memcpy_ns rdma ~bytes:Units.page_size);
        ">32us" ];
    ];
  Report.note "Kona-VM vs Infiniswap fault latency: %.0f%% lower (paper: up to 60%%)"
    (100.
    *. (1.
       -. float_of_int p_vm.Vm_runtime.remote_fetch_ns
          /. float_of_int p_inf.Vm_runtime.remote_fetch_ns));
  sweep_window_depth ()
