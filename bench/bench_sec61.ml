(* §6.1 / §2.1 latency claims: per-operation remote-access and eviction
   latencies for each system, measured from the models that the rest of the
   evaluation builds on. *)

open Kona
module Units = Kona_util.Units
module Vm_runtime = Kona_baselines.Vm_runtime

let cost = Cost_model.default
let rdma = Kona_rdma.Cost.default

let run () =
  Report.section "Sec. 6.1: remote access and eviction path latencies";
  let raw_4k = Kona_rdma.Cost.batch_ns rdma ~sizes:[ Units.page_size ] in
  let p_vm = Vm_runtime.kona_vm_profile cost rdma in
  let p_lego = Vm_runtime.legoos_profile cost in
  let p_inf = Vm_runtime.infiniswap_profile cost in
  Report.table
    ~header:[ "operation"; "latency"; "paper" ]
    [
      [ "raw RDMA 4KB read/write"; Report.ns raw_4k; "~3us" ];
      [ "Kona remote fetch (no fault)"; Report.ns raw_4k; "~RDMA latency" ];
      [ "Kona-VM remote fault (userfaultfd)";
        Report.ns p_vm.Vm_runtime.remote_fetch_ns; "< Infiniswap by up to 60%" ];
      [ "LegoOS remote fault"; Report.ns p_lego.Vm_runtime.remote_fetch_ns; "10us" ];
      [ "Infiniswap remote fault"; Report.ns p_inf.Vm_runtime.remote_fetch_ns; "40us" ];
      [ "write-protect (minor) fault"; Report.ns cost.Cost_model.minor_fault_ns; "~us-scale" ];
      [ "TLB single invalidation"; Report.ns cost.Cost_model.tlb_invalidate_ns; "-" ];
      [ "Infiniswap page eviction";
        Report.ns
          (p_inf.Vm_runtime.eviction_extra_ns + raw_4k
          + Kona_rdma.Cost.memcpy_ns rdma ~bytes:Units.page_size);
        ">32us" ];
    ];
  Report.note "Kona-VM vs Infiniswap fault latency: %.0f%% lower (paper: up to 60%%)"
    (100.
    *. (1.
       -. float_of_int p_vm.Vm_runtime.remote_fetch_ns
          /. float_of_int p_inf.Vm_runtime.remote_fetch_ns))
