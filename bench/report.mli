(** Console reporting helpers shared by all benchmark modules: fixed-width
    tables, section banners, and paper-vs-measured annotations.

    When a JSON-lines artifact is open ([open_json]), every printed table
    row is also appended to it as one object tagged with the current
    section, so the machine-readable record mirrors the console report. *)

val open_json :
  path:string -> ?meta:(string * Kona_telemetry.Json.t) list -> unit -> unit
(** Start the artifact; writes a header line [{"schema":"kona.bench.v1",
    ...meta}].  Without an open artifact [json_line] is a no-op.

    Every header is stamped with provenance: a ["commit"] field holding
    the git commit hash the bench was built from (resolved by following
    [.git/HEAD]; ["unknown"] outside a checkout) and a ["seed"] field
    holding the seed set via {!set_seed} — unless the caller's [meta]
    already supplies those keys. *)

val set_seed : int -> unit
(** Record the workload seed stamped into subsequent artifact headers
    (default 42, the bench suite's convention). *)

val set_sim_rate : float -> unit
(** Record the simulator's measured throughput (application accesses per
    host wall-clock second).  Once set to a positive value, every
    subsequent artifact header is stamped with a
    ["sim_accesses_per_sec"] field — unless the caller's [meta] already
    supplies it — so artifacts record how expensive they were to
    produce. *)

val close_json : unit -> unit

val with_artifact :
  path:string ->
  ?meta:(string * Kona_telemetry.Json.t) list ->
  (unit -> 'a) ->
  'a
(** Run [f] with its own artifact at [path] (header line included),
    then restore whichever artifact — if any — was open before.  Lets a
    bench write a dedicated machine-readable file without disturbing the
    process-wide one. *)

val json_line : (string * Kona_telemetry.Json.t) list -> unit
(** Append one object (plus a ["section"] field when inside a section). *)

val section : string -> unit
(** Banner with the experiment id and title; also tags subsequent
    [json_line]s. *)

val note : ('a, Format.formatter, unit) format -> 'a
(** One explanatory line. *)

val table : header:string list -> string list list -> unit
(** Column widths derived from contents; first row underlined.  Each data
    row is mirrored to the JSON artifact keyed by the header cells. *)

val f1 : float -> string
val f2 : float -> string
val ns : int -> string
val vs_paper : measured:float -> paper:float -> string
(** "measured (paper X, Y.Yx off)" annotation. *)
