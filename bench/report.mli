(** Console reporting helpers shared by all benchmark modules: fixed-width
    tables, section banners, and paper-vs-measured annotations. *)

val section : string -> unit
(** Banner with the experiment id and title. *)

val note : ('a, Format.formatter, unit) format -> 'a
(** One explanatory line. *)

val table : header:string list -> string list list -> unit
(** Column widths derived from contents; first row underlined. *)

val f1 : float -> string
val f2 : float -> string
val ns : int -> string
val vs_paper : measured:float -> paper:float -> string
(** "measured (paper X, Y.Yx off)" annotation. *)
