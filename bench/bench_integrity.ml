(* End-to-end integrity: sweep bit-flip rate x scrub interval under
   checksummed FMem with one replica and report what detection cost:
   flips armed vs found, detection latency, bytes re-fetched to repair,
   and pages the scrubber had to touch.

   The headline: every armed flip is accounted for (found by a scrub or
   healed by a later overwrite of the same line), and a shorter scrub
   interval buys lower detection latency at the price of more pages
   scanned per unit of virtual time. *)

open Kona
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Histogram = Kona_util.Histogram
module Rng = Kona_util.Rng
module Fault_spec = Kona_faults.Fault_spec

let artifact_path = "BENCH_integrity.json"

let run_one ~flip_p ~scrub_interval_ns =
  let faults = Fault_spec.parse_exn (Printf.sprintf "bit-flip:p=%g" flip_p) in
  let config =
    {
      Runtime.default_config with
      fmem_pages = 256;
      replicas = 1;
      faults;
      fault_seed = 11;
      scrub_interval_ns = Some scrub_interval_ns;
      verify_checksums = true;
    }
  in
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 64));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let rt = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 32) ~sink:(Runtime.sink rt) () in
  heap_ref := Some heap;
  let region = Units.mib 4 in
  let base = Heap.alloc heap region in
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 60_000 do
    Heap.write_u64 heap (base + (Rng.int rng (region / 8) * 8)) 1
  done;
  Runtime.drain rt;
  rt

let run () =
  Report.with_artifact ~path:artifact_path (fun () ->
      Report.section "Integrity: scrub-and-repair under bit flips";
      let rows =
        List.concat_map
          (fun flip_p ->
            List.map
              (fun scrub_interval_ns ->
                let rt = run_one ~flip_p ~scrub_interval_ns in
                let c = Runtime.integrity_counters rt in
                let get k = List.assoc k c in
                let lat = Runtime.detect_latency rt in
                [
                  Printf.sprintf "%g" flip_p;
                  Report.ns scrub_interval_ns;
                  string_of_int (get "integrity.flips_armed");
                  string_of_int (get "integrity.flips_found");
                  string_of_int (get "integrity.healed_overwrite");
                  (if Histogram.count lat = 0 then "-"
                   else Report.ns (Histogram.percentile lat 50.));
                  string_of_int (get "integrity.repair_bytes");
                  string_of_int (get "integrity.unrepairable");
                  string_of_int (get "scrub.pages");
                ])
              [ 50_000; 400_000 ])
          [ 0.02; 0.1 ]
      in
      Report.table
        ~header:
          [
            "flip p"; "scrub every"; "armed"; "found"; "healed"; "detect p50";
            "repair bytes"; "unrepairable"; "scrub pages";
          ]
        rows;
      Report.note "armed = found + healed on every row: no flip goes unaccounted;";
      Report.note "artifact mirrored to %s" artifact_path)
