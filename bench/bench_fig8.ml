(* Fig. 8: KCacheSim AMAT sweeps.

   8a-c: AMAT vs local-cache size (as % of workload footprint) for
   Redis-Rand, Linear Regression and Graph Coloring, under Infiniswap,
   LegoOS, Kona and Kona-main profiles.

   8d: AMAT vs fetch block size (64B..32KB) for Redis-Rand at several cache
   sizes. *)

open Kona
module Workloads = Kona_workloads.Workloads

let cost = Cost_model.default

let systems () =
  [
    Cost_model.infiniswap cost;
    Cost_model.legoos cost;
    Cost_model.kona cost;
    Cost_model.kona_main cost;
  ]

let fracs = [ 0.05; 0.1; 0.25; 0.5; 0.75; 1.0 ]

let sweep ~scale (spec : Workloads.spec) =
  let rss = Kcachesim.measure_rss ~spec ~scale ~seed:42 in
  List.map
    (fun frac ->
      let counts = Kcachesim.simulate ~rss ~spec ~scale ~seed:42 ~cache_frac:frac () in
      (frac, counts))
    fracs

let subfig ~scale label (spec : Workloads.spec) =
  Report.section (Printf.sprintf "Fig. 8%s: AMAT vs cache size (%s)" label spec.Workloads.name);
  let points = sweep ~scale spec in
  Report.table
    ~header:("cache %" :: List.map (fun p -> p.Cost_model.system ^ " (ns)") (systems ()))
    (List.map
       (fun (frac, counts) ->
         Printf.sprintf "%.0f" (100. *. frac)
         :: List.map
              (fun profile -> Report.f2 (Kcachesim.amat_ns ~cost ~profile counts))
              (systems ()))
       points);
  (* Headline: at 25% cache Kona is 1.7x better than LegoOS, 5x than
     Infiniswap (§6.2). *)
  let _, at25 = List.nth points 2 in
  let amat p = Kcachesim.amat_ns ~cost ~profile:p at25 in
  Report.note "@25%% cache: Kona vs LegoOS %.2fx (paper 1.7x); vs Infiniswap %.2fx (paper 5x)"
    (amat (Cost_model.legoos cost) /. amat (Cost_model.kona cost))
    (amat (Cost_model.infiniswap cost) /. amat (Cost_model.kona cost));
  Report.note "NUMA overhead (Kona vs Kona-main) @25%%: %.0f%% (paper 2-25%%)"
    (100. *. (amat (Cost_model.kona cost) /. amat (Cost_model.kona_main cost) -. 1.))

let blocks = [ 64; 256; 1024; 4096; 8192; 16384; 32768 ]
let d_fracs = [ (0.0, "0%"); (0.27, "27%"); (0.54, "54%"); (1.0, "100%") ]

let subfig_d ~scale () =
  let spec = Workloads.redis_rand in
  Report.section "Fig. 8d: AMAT vs fetch block size (Redis-Rand, Kona)";
  let rss = Kcachesim.measure_rss ~spec ~scale ~seed:42 in
  let profile = Cost_model.kona cost in
  let rows =
    List.map
      (fun block ->
        Printf.sprintf "%dB" block
        :: List.map
             (fun (frac, _) ->
               let counts =
                 Kcachesim.simulate ~rss ~block ~spec ~scale ~seed:42 ~cache_frac:frac ()
               in
               Report.f2 (Kcachesim.amat_ns ~cost ~profile counts))
             d_fracs)
      blocks
  in
  Report.table ~header:("block" :: List.map snd d_fracs) rows;
  Report.note "paper: ~1KB blocks minimize AMAT; 4KB adds a small margin but";
  Report.note "simplifies metadata, hence Kona fetches pages (§6.2)"

let run ~scale () =
  subfig ~scale "a" Workloads.redis_rand;
  subfig ~scale "b" Workloads.linear_regression;
  subfig ~scale "c" Workloads.graph_coloring;
  subfig_d ~scale ()
