(* Fig. 11: eviction goodput at cache-line granularity.

   A region of pages each with N dirty cache-lines (contiguous from the
   page start, or alternating) is written back to a remote host by four
   strategies:

   - Kona's CL log: bitmap scan + copy runs into the log + one large RDMA
     write per full log + remote unpack + ack;
   - Kona-VM: whole 4KB pages, memcpy into registered buffers, linked RDMA
     writes;
   - 4KB no-copy [idealized]: page writes straight from registered memory;
   - CL no-copy [idealized]: per-run RDMA writes, no copy, no receiver.

   Goodput is useful (dirty) bytes over total transfer time; the tables
   report it relative to Kona-VM, as the paper does. *)

open Kona
module Units = Kona_util.Units
module Clock = Kona_util.Clock
module Qp = Kona_rdma.Qp
module Cost = Kona_rdma.Cost

let pages = 8192 (* 32 MiB region; paper used 1 GB *)
let rdma_cost = Cost.default
let batch_size = 32 (* linked WQEs per doorbell for the page/CL writers *)

type layout = Contiguous | Alternate

(* Dirty-line runs within one page for a layout: (line_index, run_length). *)
let runs_of ~layout ~n =
  match layout with
  | Contiguous -> [ (0, n) ]
  | Alternate -> List.init n (fun i -> (2 * i, 1))

(* Kona's CL log path, timed end to end. *)
let kona_cl_log ~layout ~n =
  let node = Memory_node.create ~id:0 ~capacity:(pages * Units.page_size) in
  let clock = Clock.create () in
  let qp = Qp.create ~cost:rdma_cost ~clock () in
  let log = Cl_log.create ~capacity:512 ~qp ~cost:rdma_cost
      ~resolve:(fun ~node:_ -> node) () in
  let runs = runs_of ~layout ~n in
  for page = 0 to pages - 1 do
    Cl_log.note_bitmap_scan log ~lines:Units.lines_per_page;
    List.iter
      (fun (line, len) ->
        let raddr = (page * Units.page_size) + (line * Units.cache_line) in
        Cl_log.append_run log ~node:0 ~raddr ~data:(String.make (len * Units.cache_line) 'd'))
      runs
  done;
  Cl_log.flush log;
  (Clock.now clock, Cl_log.breakdown_ns log)

(* Page-granularity writer (Kona-VM), optionally skipping the local copy
   (the idealized no-copy baseline). *)
let page_writer ~copy =
  let clock = Clock.create () in
  let qp = Qp.create ~cost:rdma_cost ~clock () in
  let batch = ref [] in
  let flush () =
    if !batch <> [] then begin
      Qp.post qp (List.rev !batch);
      batch := []
    end
  in
  for page = 0 to pages - 1 do
    if copy then Clock.advance clock (Cost.memcpy_ns rdma_cost ~bytes:Units.page_size);
    batch := Qp.wqe ~signaled:(page mod batch_size = batch_size - 1) Qp.Write
               ~len:Units.page_size
             :: !batch;
    if List.length !batch >= batch_size then flush ()
  done;
  flush ();
  Qp.wait_idle qp;
  Clock.now clock

(* Per-run cache-line writer without copies (idealized CL no-copy). *)
let cl_writer_nocopy ~layout ~n =
  let clock = Clock.create () in
  let qp = Qp.create ~cost:rdma_cost ~clock () in
  let runs = runs_of ~layout ~n in
  let batch = ref [] in
  let count = ref 0 in
  let flush () =
    if !batch <> [] then begin
      Qp.post qp (List.rev !batch);
      batch := []
    end
  in
  for _page = 0 to pages - 1 do
    List.iter
      (fun (_line, len) ->
        incr count;
        batch := Qp.wqe ~signaled:(!count mod batch_size = 0) Qp.Write
                   ~len:(len * Units.cache_line)
                 :: !batch;
        if List.length !batch >= batch_size then flush ())
      runs
  done;
  flush ();
  Qp.wait_idle qp;
  Clock.now clock

let goodput_table ~layout ~ns_values =
  let vm_time = page_writer ~copy:true in
  let nocopy_4k = page_writer ~copy:false in
  List.map
    (fun n ->
      let kona, _ = kona_cl_log ~layout ~n in
      let cl_nocopy = cl_writer_nocopy ~layout ~n in
      let rel t = float_of_int vm_time /. float_of_int t in
      let useful = pages * n * Units.cache_line in
      let gbps t = float_of_int useful /. float_of_int t in
      [
        string_of_int n;
        Report.f2 (rel nocopy_4k);
        Report.f2 (rel cl_nocopy);
        Report.f2 (rel kona);
        Printf.sprintf "%.2f GB/s" (gbps kona);
      ])
    ns_values

let run () =
  Report.section "Fig. 11a: eviction goodput, contiguous dirty cache-lines";
  Report.note "%d pages, goodput relative to Kona-VM 4KB writes" pages;
  Report.table
    ~header:[ "dirty CLs"; "4KB no-copy"; "CL no-copy"; "Kona CL log"; "Kona abs" ]
    (goodput_table ~layout:Contiguous ~ns_values:[ 1; 2; 4; 6; 8; 12; 16; 32; 64 ]);
  Report.note "paper: Kona 4-5x for 1-4 contiguous; on par at 64 (full page)";

  Report.section "Fig. 11b: eviction goodput, alternate dirty cache-lines";
  Report.table
    ~header:[ "dirty CLs"; "4KB no-copy"; "CL no-copy"; "Kona CL log"; "Kona abs" ]
    (goodput_table ~layout:Alternate ~ns_values:[ 1; 2; 4; 8; 12; 16; 32 ]);
  Report.note "paper: Kona 2-3x for 2-4 random; below VM only past ~16 discontiguous";

  Report.section "Fig. 11c: Kona CL log time breakdown";
  let rows =
    List.map
      (fun n ->
        let total, breakdown = kona_cl_log ~layout:Contiguous ~n in
        (* Shares over the phase-attribution sum: rdma and ack overlap the
           CPU phases (async flushes), so they are attribution, not
           wall-clock slices. *)
        let attributed = List.fold_left (fun acc (_, v) -> acc + v) 0 breakdown in
        let pct phase =
          100. *. float_of_int (List.assoc phase breakdown) /. float_of_int attributed
        in
        [
          string_of_int n;
          Report.ns total;
          Report.f1 (pct "bitmap");
          Report.f1 (pct "copy");
          Report.f1 (pct "rdma");
          Report.f1 (pct "ack");
        ])
      [ 1; 8; 64 ]
  in
  Report.table
    ~header:[ "contig CLs"; "total"; "bitmap %"; "copy %"; "rdma %"; "ack %" ]
    rows;
  Report.note "paper (1 & 8 CLs): copy dominates; rdma 15-20%%; bitmap 15-20%%; small ack"
