(* Table 2: dirty data amplification for 4KB-page, 2MB-page and 64B
   cache-line tracking granularities, across all nine workloads. *)

open Kona_workloads
module Amp = Kona_trace.Amplification
module Window = Kona_trace.Window

type row = {
  spec : Workloads.spec;
  windows : int;
  written : int;
  amp : Amp.aggregate;
}

let run_one ~scale ~seed (spec : Workloads.spec) =
  let amp = Amp.create () in
  let w =
    Window.create
      ~quantum:(spec.Workloads.quantum scale)
      ~inner:(Amp.sink amp)
      ~on_boundary:(fun ~window -> Amp.close_window amp ~window)
  in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink:(Window.sink w) ()
  in
  spec.Workloads.run scale ~heap ~seed;
  Window.flush w;
  (* Like the paper, drop the tear-down window (§6.3). *)
  let aggregate = Amp.aggregate ~drop_last:true amp in
  {
    spec;
    windows = List.length (Amp.windows amp);
    written = aggregate.Amp.total_written_bytes;
    amp = aggregate;
  }

let run ~scale () =
  Report.section "Table 2: dirty data amplification by tracking granularity";
  Report.note
    "windows stand in for the paper's 10s wall-clock windows; memory scaled ~64-128x down";
  Report.note
    "2MB amplification is floored by the scaled-down heaps (few 2MB regions exist)";
  let rows = List.map (run_one ~scale ~seed:42) Workloads.all in
  Report.table
    ~header:
      [ "Application"; "windows"; "written"; "4KB"; "(paper)"; "2MB"; "(paper)";
        "64B CL"; "(paper)" ]
    (List.map
       (fun r ->
         [
           r.spec.Workloads.name;
           string_of_int r.windows;
           Printf.sprintf "%dKB" (r.written / 1024);
           Report.f2 r.amp.Amp.agg_amp_page;
           Report.f2 r.spec.Workloads.paper_amp_4k;
           Report.f2 r.amp.Amp.agg_amp_huge;
           Report.f2 r.spec.Workloads.paper_amp_2m;
           Report.f2 r.amp.Amp.agg_amp_line;
           Report.f2 r.spec.Workloads.paper_amp_cl;
         ])
       rows);
  (* Headline shape checks, printed so regressions are visible. *)
  let find name = List.find (fun r -> r.spec.Workloads.name = name) rows in
  let rand = find "Redis-Rand" and seq = find "Redis-Seq" in
  Report.note "shape: Redis-Rand has the highest 4KB amplification: %b"
    (List.for_all (fun r -> r.amp.Amp.agg_amp_page <= rand.amp.Amp.agg_amp_page) rows);
  Report.note "shape: every workload amplifies >2x at 4KB except Redis-Seq-like: %b"
    (List.for_all (fun r -> r.amp.Amp.agg_amp_page > 2.0) rows);
  Report.note "shape: cache-line amplification close to 1 (all < 3): %b"
    (List.for_all (fun r -> r.amp.Amp.agg_amp_line < 3.0) rows);
  Report.note "shape: 4KB->CL reduction for Redis-Rand: %.1fx (paper 2-10x windowed, 21x agg)"
    (rand.amp.Amp.agg_amp_page /. rand.amp.Amp.agg_amp_line);
  ignore seq
