(* Ablations of Kona's design choices, each tied to a claim in the paper:

   - FMem associativity "does not significantly impact overall latency"
     (§6.2 (2));
   - hardware prefetching past page boundaries, impossible under page
     faults (§3, §4.4) — the paper leaves it off and calls its results
     conservative; we quantify it;
   - huge pages couple movement size to translation size for VM systems
     while Kona keeps cache-line tracking (§3);
   - replication multiplies eviction traffic by the degree, but amplifies
     less than page-granularity replication would (§4.5);
   - CL-log aggregation (capacity) and slab batching (controller traffic),
     both §4.4 mechanisms. *)

open Kona
module Heap = Kona_workloads.Heap
module Workloads = Kona_workloads.Workloads
module Units = Kona_util.Units
module Rng = Kona_util.Rng
module Vm_runtime = Kona_baselines.Vm_runtime

let cost = Cost_model.default

(* ------------------------------------------------------------------ *)
(* 1. FMem associativity (KCacheSim) *)

let associativity ~scale () =
  Report.section "Ablation: DRAM-cache associativity (Redis-Rand, 25% cache)";
  let spec = Workloads.redis_rand in
  let rss = Kcachesim.measure_rss ~spec ~scale ~seed:42 in
  let profile = Cost_model.kona cost in
  let rows =
    List.map
      (fun assoc ->
        let counts =
          Kcachesim.simulate ~rss ~assoc ~spec ~scale ~seed:42 ~cache_frac:0.25 ()
        in
        [ string_of_int assoc; Report.f2 (Kcachesim.amat_ns ~cost ~profile counts) ])
      [ 1; 2; 4; 8; 16 ]
  in
  Report.table ~header:[ "assoc"; "Kona AMAT (ns)" ] rows;
  Report.note "paper: associativity does not significantly impact latency (4-way chosen)"

(* ------------------------------------------------------------------ *)
(* Common scaffolding: a Kona runtime over a fresh rack. *)

let kona_runtime ?(config = Runtime.default_config) () =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 64));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let rt = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 32) ~sink:(Runtime.sink rt) () in
  heap_ref := Some heap;
  (rt, heap, controller)

(* ------------------------------------------------------------------ *)
(* 2. Prefetching *)

let prefetch () =
  Report.section "Ablation: stream prefetching of remote pages";
  let run ~prefetch ~pattern =
    let config = { Runtime.default_config with fmem_pages = 512; prefetch } in
    let rt, heap, _controller = kona_runtime ~config () in
    let region = Units.mib 16 in
    let base = Heap.alloc heap region in
    let rng = Rng.create ~seed:4 in
    let pages = region / Units.page_size in
    for i = 0 to (2 * pages) - 1 do
      let page = match pattern with
        | `Seq -> i mod pages
        | `Rand -> Rng.int rng pages
      in
      ignore (Heap.read_u64 heap (base + (page * Units.page_size)))
    done;
    Runtime.drain rt;
    let stats = Runtime.stats rt in
    (Runtime.app_ns rt, List.assoc "prefetch.issued" stats,
     List.assoc "prefetch.useful" stats)
  in
  let rows =
    List.concat_map
      (fun (pattern, name) ->
        let off_ns, _, _ = run ~prefetch:false ~pattern in
        let on_ns, issued, useful = run ~prefetch:true ~pattern in
        [
          [
            name;
            Report.ns off_ns;
            Report.ns on_ns;
            Printf.sprintf "%.2fx" (float_of_int off_ns /. float_of_int on_ns);
            string_of_int issued;
            string_of_int useful;
          ];
        ])
      [ (`Seq, "sequential scan"); (`Rand, "random reads") ]
  in
  Report.table
    ~header:[ "pattern"; "no prefetch"; "prefetch"; "speedup"; "issued"; "useful" ]
    rows;
  Report.note "paper: prefetching benefits Kona only (faults serialize it away); results there are conservative without it"

(* ------------------------------------------------------------------ *)
(* 3. Huge pages *)

let huge_pages () =
  Report.section "Ablation: huge pages (scattered writes, VM vs Kona)";
  Report.note "64KB stands in for 2MB pages at our scaled footprints";
  let region = Units.mib 8 in
  let touch heap base =
    (* One 8-byte write per 4KB page, random order: the dirty-amplification
       worst case. *)
    let pages = region / Units.page_size in
    let order = Array.init pages Fun.id in
    Rng.shuffle (Rng.create ~seed:7) order;
    Array.iter
      (fun p -> Heap.write_u64 heap (base + (p * Units.page_size)) p)
      order
  in
  (* Kona *)
  let config = { Runtime.default_config with fmem_pages = 1024 } in
  let rt, heap, _controller = kona_runtime ~config () in
  let base = Heap.alloc heap region in
  touch heap base;
  Runtime.drain rt;
  let kona_bytes = List.assoc "log.lines" (Runtime.stats rt) * Cl_log.entry_bytes in
  (* VM at 4KB and 64KB pages *)
  let vm_run page_bytes =
    let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
    Rack_controller.register_node controller
      (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
    let heap_ref = ref None in
    let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
    let profile = Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default in
    let config =
      {
        Vm_runtime.default_config with
        cache_pages = Units.mib 4 / page_bytes;
        page_bytes;
      }
    in
    let vm = Vm_runtime.create ~config ~profile ~controller ~read_local () in
    let heap = Heap.create ~capacity:(Units.mib 32) ~sink:(Vm_runtime.sink vm) () in
    heap_ref := Some heap;
    let base = Heap.alloc heap region in
    touch heap base;
    Vm_runtime.drain vm;
    let stats = Vm_runtime.stats vm in
    (List.assoc "dirty_pages_written" stats * page_bytes, List.assoc "remote_faults" stats)
  in
  let vm4k_bytes, vm4k_faults = vm_run Units.page_size in
  let vm64k_bytes, vm64k_faults = vm_run (Units.kib 64) in
  let written = region / Units.page_size * 8 in
  let row name bytes faults =
    [
      name;
      Printf.sprintf "%dKB" (bytes / 1024);
      Printf.sprintf "%.0fx" (float_of_int bytes /. float_of_int written);
      (match faults with Some f -> string_of_int f | None -> "0 (no faults)");
    ]
  in
  Report.table
    ~header:[ "system"; "evicted"; "amplification"; "remote faults" ]
    [
      row "Kona (CL tracking)" kona_bytes None;
      row "Kona-VM 4KB pages" vm4k_bytes (Some vm4k_faults);
      row "Kona-VM 64KB pages" vm64k_bytes (Some vm64k_faults);
    ];
  Report.note "paper: huge pages multiply VM dirty amplification (Table 2: 31x -> 5516x);";
  Report.note "Kona keeps cache-line tracking regardless of translation page size"

(* ------------------------------------------------------------------ *)
(* 4. Replication *)

let replication () =
  Report.section "Ablation: eviction replication (SS4.5)";
  let run replicas =
    let config = { Runtime.default_config with fmem_pages = 256; replicas } in
    let rt, heap, controller = kona_runtime ~config () in
    let region = Units.mib 4 in
    let base = Heap.alloc heap region in
    let rng = Rng.create ~seed:9 in
    for _ = 1 to 100_000 do
      Heap.write_u64 heap (base + (Rng.int rng (region / 8) * 8)) 1
    done;
    Runtime.drain rt;
    (match Runtime.replication rt with
    | Some r -> assert (Replication.divergent_mirrors r ~controller = 0)
    | None -> ());
    let lines = List.assoc "log.lines" (Runtime.stats rt) in
    let replicated =
      match Runtime.replication rt with
      | Some r -> Replication.lines_replicated r
      | None -> 0
    in
    (Runtime.app_ns rt, Runtime.bg_ns rt, lines, replicated)
  in
  let rows =
    List.map
      (fun replicas ->
        let app, bg, lines, replicated = run replicas in
        [
          string_of_int replicas;
          Report.ns app;
          Report.ns bg;
          string_of_int lines;
          string_of_int replicated;
        ])
      [ 0; 1; 2 ]
  in
  Report.table
    ~header:[ "replicas"; "app time"; "eviction time"; "lines"; "replica lines" ]
    rows;
  Report.note "paper: replication slows eviction, rarely the application (off critical path)"

(* ------------------------------------------------------------------ *)
(* 5 & 6. Log capacity and slab size *)

let batching () =
  Report.section "Ablation: CL-log capacity and slab batching";
  let log_row capacity =
    let config = { Runtime.default_config with fmem_pages = 256; log_capacity = capacity } in
    let rt, heap, _controller = kona_runtime ~config () in
    let region = Units.mib 4 in
    let base = Heap.alloc heap region in
    let rng = Rng.create ~seed:3 in
    for _ = 1 to 50_000 do
      Heap.write_u64 heap (base + (Rng.int rng (region / 8) * 8)) 1
    done;
    Runtime.drain rt;
    let stats = Runtime.stats rt in
    [
      string_of_int capacity;
      string_of_int (List.assoc "log.flushes" stats);
      Report.ns (Runtime.bg_ns rt);
    ]
  in
  Report.table ~header:[ "log capacity (lines)"; "flushes"; "eviction time" ]
    (List.map log_row [ 16; 64; 256; 1024 ]);
  let slab_row slab_kib =
    let controller = Rack_controller.create ~slab_size:(Units.kib slab_kib) () in
    Rack_controller.register_node controller
      (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
    let rm = Resource_manager.create ~controller () in
    Resource_manager.ensure_backed rm ~addr:0 ~len:(Units.mib 16);
    [
      Printf.sprintf "%dKB" slab_kib;
      string_of_int (Resource_manager.controller_round_trips rm);
      string_of_int (List.length (Resource_manager.slabs rm));
    ]
  in
  Report.table ~header:[ "slab size"; "controller round trips"; "slabs" ]
    (List.map slab_row [ 64; 256; 1024; 4096 ]);
  Report.note "bigger logs amortize flushes; bigger slabs keep allocation off the critical path"

(* ------------------------------------------------------------------ *)
(* 7. FMem eviction policy (shared by Kona and the VM baseline) *)

let eviction_policy () =
  Report.section "Ablation: FMem eviction policy (random-access KV sweep)";
  let run policy =
    let config =
      { Runtime.default_config with fmem_pages = 256; fmem_policy = policy }
    in
    let rt, heap, _controller = kona_runtime ~config () in
    let region = Units.mib 4 in
    let base = Heap.alloc heap region in
    let rng = Rng.create ~seed:21 in
    for _ = 1 to 150_000 do
      (* zipf-hot page mix: a policy-sensitive reuse pattern *)
      let page = Rng.zipf rng ~n:(region / Units.page_size) ~theta:0.7 in
      ignore (Heap.read_u64 heap (base + (page * Units.page_size)))
    done;
    Runtime.drain rt;
    let stats = Runtime.stats rt in
    (Runtime.app_ns rt, List.assoc "fetch.pages" stats)
  in
  let rows =
    List.map
      (fun (policy, name) ->
        let app, fetches = run policy in
        [ name; Report.ns app; string_of_int fetches ])
      [
        (Kona_coherence.Fmem.Lru, "LRU (paper)");
        (Kona_coherence.Fmem.Fifo, "FIFO");
        (Kona_coherence.Fmem.Random 1, "random");
      ]
  in
  Report.table ~header:[ "policy"; "app time"; "remote fetches" ] rows;
  Report.note "LRU wins on reuse-heavy traffic; both runtimes share the policy, so";
  Report.note "Fig. 7 comparisons isolate granularity, not replacement quality"

let run ~scale () =
  associativity ~scale ();
  prefetch ();
  huge_pages ();
  replication ();
  eviction_policy ();
  batching ()
