(* Membership and recovery under partitions: sweep lease duration x
   partition length under a seeded asymmetric partition (the node stays
   alive, its links drop) and report what the failure detector did:
   detection latency at each death declaration, false positives (the
   partitioned node was healthy all along), fencing rejects when its
   stale deliveries replay at heal, and failover latency when a mirror
   was promoted.

   The headline trade-off: a short lease detects real failures quickly
   but declares a partitioned-but-alive node dead (false positive) as
   soon as the window outlives twice the lease; a long lease tolerates
   longer partitions at the price of detection latency.  Either way the
   fencing epoch keeps the returning node's stale writes out — zero
   divergence on every row. *)

open Kona
module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Histogram = Kona_util.Histogram
module Membership = Kona_membership.Membership
module Fault_spec = Kona_faults.Fault_spec

let artifact_path = "BENCH_recovery.json"

let run_one ~heartbeat_ns ~lease_ns ~partition_us =
  let faults =
    Fault_spec.parse_exn
      (* node 0 is where placement homes the working set first — a
         partition there actually cuts in-flight deliveries *)
      (Printf.sprintf "partition@200us:dur=%dus,nodes=0" partition_us)
  in
  let config =
    {
      Runtime.default_config with
      (* a small cache keeps the log shipping all run long, so stale
         in-flight deliveries exist for the fence to reject *)
      fmem_pages = 64;
      replicas = 1;
      faults;
      fault_seed = 11;
      heartbeat_ns = Some heartbeat_ns;
      lease_ns;
    }
  in
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let rt = Runtime.create ~config ~controller ~read_local () in
  let spec = Workloads.find "kv-uniform" in
  let heap =
    Heap.create
      ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke)
      ~sink:(Runtime.sink rt) ()
  in
  heap_ref := Some heap;
  spec.Workloads.run Workloads.Smoke ~heap ~seed:42;
  Runtime.drain rt;
  (match Runtime.replication rt with
  | Some r -> assert (Replication.divergent_mirrors r ~controller = 0)
  | None -> ());
  rt

let run () =
  Report.with_artifact ~path:artifact_path (fun () ->
      Report.section "Recovery: lease detection under asymmetric partitions";
      let rows =
        List.concat_map
          (fun (heartbeat_ns, lease_ns) ->
            List.map
              (fun partition_us ->
                let rt = run_one ~heartbeat_ns ~lease_ns ~partition_us in
                let m = Option.get (Runtime.membership rt) in
                let detect = Membership.detect_latency m in
                let fo = Runtime.failover_latency rt in
                [
                  Report.ns heartbeat_ns;
                  Report.ns lease_ns;
                  Printf.sprintf "%dus" partition_us;
                  string_of_int (Runtime.partitions_started rt);
                  string_of_int (Runtime.declared_dead rt);
                  string_of_int (Runtime.false_positives rt);
                  (if Histogram.count detect = 0 then "-"
                   else Report.ns (Histogram.percentile detect 50.));
                  (if Histogram.count fo = 0 then "-"
                   else Report.ns (Histogram.percentile fo 50.));
                  string_of_int (Runtime.fencing_rejects rt);
                  string_of_int (Runtime.post_fence_writes rt);
                  (match Runtime.degraded rt with
                  | Some _ -> "degraded"
                  | None -> "ok");
                ])
              [ 150; 2_000; 5_000 ])
          [ (10_000, 50_000); (100_000, 1_000_000) ]
      in
      Report.table
        ~header:
          [
            "heartbeat"; "lease"; "partition"; "windows"; "dead"; "false+";
            "detect p50"; "failover p50"; "fence rejects"; "post-fence wr";
            "status";
          ]
        rows;
      Report.note
        "windows outliving 2x the lease declare a healthy node dead (false+):";
      Report.note
        "failover promotes its mirror and the fencing epoch rejects the";
      Report.note
        "returning node's stale deliveries — zero divergence on every row;";
      Report.note "artifact mirrored to %s" artifact_path)
