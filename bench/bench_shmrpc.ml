(* Shared-memory RPC vs the QP message path (lib/shmem).

   The same request/response exchange priced two ways:

   - shm: the ring of Shm_rpc — coherent cache lines of a published
     rack segment, head/tail doorbells deliberately ping-ponging MSI
     ownership between client and server, every recall charged as wire
     time through the home node's WFQ link;
   - msg: the two-sided Rpc channel over the queue-pair model —
     request SEND + response SEND at matching byte counts (service time
     zeroed: the comparison is transport-only).

   Two sections: an idle rack (pure transport cost, swept over payload
   sizes) and a post-replay rack (the ring runs after the full woven
   workload, so its recalls contend with everything the replay queued).

   Artifact: BENCH_shmrpc.json (one row per configuration, commit/seed
   stamped by Report). *)

module Rack = Kona_rack.Rack
module Shm_rpc = Kona_shmem.Shm_rpc
module Rpc = Kona_rdma.Rpc
module Nic = Kona_rdma.Nic
module Workloads = Kona_workloads.Workloads
module Units = Kona_util.Units
module Clock = Kona_util.Clock
module Json = Kona_telemetry.Json

let artifact = "BENCH_shmrpc.json"
let seed = 42

let tenants =
  [
    { Rack.name = "server"; workload = "kv-seq"; bw_share = 1; mem_quota = None; seed };
    {
      Rack.name = "client";
      workload = "kv-uniform";
      bw_share = 1;
      mem_quota = None;
      seed = seed + 1;
    };
  ]

let engine ~drained () =
  let cfg =
    { Rack.default_config with Rack.scale = Workloads.Smoke; shared_pages = 0 }
  in
  let e = Rack.start cfg tenants in
  if drained then while Rack.step e > 0 do () done;
  e

(* The message-path baseline: one fresh channel per row, zero service
   time, request/response sized to the ring's line counts. *)
let msg_mean_ns ~req_lines ~resp_lines ~calls =
  let clock = Clock.create () in
  let rpc = Rpc.create ~service_ns:0 ~clock ~nic:(Nic.create ()) () in
  for _ = 1 to calls do
    ignore
      (Rpc.call rpc
         ~request_bytes:(req_lines * Units.cache_line)
         ~response_bytes:(resp_lines * Units.cache_line)
         (fun x -> x)
         ())
  done;
  Rpc.total_ns rpc / max 1 (Rpc.calls rpc)

let row ~label ~drained ~req_lines ~resp_lines ~calls =
  let e = engine ~drained () in
  let s = Shm_rpc.run e ~req_lines ~resp_lines ~client:1 ~server:0 ~calls () in
  let shm_mean = Shm_rpc.mean_ns s in
  let msg_mean = msg_mean_ns ~req_lines ~resp_lines ~calls in
  let speedup =
    if shm_mean > 0 then float_of_int msg_mean /. float_of_int shm_mean else 0.0
  in
  Report.json_line
    [
      ("kind", Json.String "shmrpc-config");
      ("label", Json.String label);
      ("drained", Json.Bool drained);
      ("req_lines", Json.Int req_lines);
      ("resp_lines", Json.Int resp_lines);
      ("calls", Json.Int s.Shm_rpc.s_calls);
      ("shm_mean_ns", Json.Int shm_mean);
      ("shm_max_ns", Json.Int s.Shm_rpc.s_max_ns);
      ("shm_total_ns", Json.Int s.Shm_rpc.s_total_ns);
      ("handoffs", Json.Int s.Shm_rpc.s_handoffs);
      ("invalidations", Json.Int s.Shm_rpc.s_invalidations);
      ("msg_mean_ns", Json.Int msg_mean);
      ("msg_over_shm", Json.Float speedup);
    ];
  [
    label;
    Printf.sprintf "%d+%d" req_lines resp_lines;
    string_of_int s.Shm_rpc.s_calls;
    Report.ns shm_mean;
    Report.ns s.Shm_rpc.s_max_ns;
    Printf.sprintf "%.1f" (float_of_int s.Shm_rpc.s_handoffs /. float_of_int (max 1 s.Shm_rpc.s_calls));
    Report.ns msg_mean;
    Printf.sprintf "%.1fx" speedup;
  ]

let run ~scale () =
  Report.set_seed seed;
  let calls = match scale with Workloads.Smoke -> 128 | Workloads.Full -> 1024 in
  Report.with_artifact ~path:artifact
    ~meta:
      [
        ("experiment", Json.String "shmrpc");
        ( "scale",
          Json.String
            (match scale with Workloads.Smoke -> "smoke" | Workloads.Full -> "full")
        );
      ]
    (fun () ->
      Report.section "shm-rpc: coherent shared lines vs QP messages";
      Report.note
        "same exchange both ways: MSI ring (head/tail doorbells ping-pong \
         ownership) vs two-sided SENDs at matching bytes, zero service time";
      let header =
        [
          "config"; "lines"; "calls"; "shm-mean"; "shm-max"; "handoffs/call";
          "msg-mean"; "msg/shm";
        ]
      in
      let idle =
        List.map
          (fun (r, p) ->
            row
              ~label:(Printf.sprintf "idle-%d+%d" r p)
              ~drained:false ~req_lines:r ~resp_lines:p ~calls)
          [ (1, 1); (2, 2); (4, 4) ]
      in
      let contended =
        [ row ~label:"post-replay-1+1" ~drained:true ~req_lines:1 ~resp_lines:1 ~calls ]
      in
      Report.table ~header (idle @ contended);
      Report.note "artifact: %s" artifact)
