(* Fig. 7: the end-to-end microbenchmark.  Each thread owns a region and
   reads + writes one cache-line in every page, twice; the local cache holds
   50% of the region (or 100%+ for the NoEvict variants).  Threads share one
   NIC.  Compared: Kona, Kona-VM, Kona-NoEvict, Kona-VM-NoEvict, and
   Kona-VM-NoWP (single fault, no dirty tracking). *)

open Kona
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Vm_runtime = Kona_baselines.Vm_runtime

let region = Units.mib 16 (* per thread; paper used 4 GB *)
let passes = 2
let pages = region / Units.page_size

type variant =
  | Kona of { evict : bool }
  | Vm of { evict : bool; wp : bool }

let variant_name = function
  | Kona { evict = true } -> "Kona"
  | Kona { evict = false } -> "Kona-NoEvict"
  | Vm { evict = true; wp = true } -> "Kona-VM"
  | Vm { evict = false; wp = true } -> "Kona-VM-NoEvict"
  | Vm { evict = false; wp = false } -> "Kona-VM-NoWP"
  | Vm { evict = true; wp = false } -> "Kona-VM-Evict-NoWP"

let cache_pages ~evict = if evict then pages / 2 else 2 * pages

(* One thread's context: its own runtime + heap on the shared NIC. *)
type thread = { heap : Heap.t; base : int; elapsed : unit -> int; drain : unit -> unit }

let make_thread ~nic variant =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(2 * region));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let sink, elapsed, drain =
    match variant with
    | Kona { evict } ->
        let config =
          { Runtime.default_config with fmem_pages = cache_pages ~evict }
        in
        let rt = Runtime.create ~config ~nic ~controller ~read_local () in
        (Runtime.sink rt, (fun () -> Runtime.elapsed_ns rt), fun () -> Runtime.drain rt)
    | Vm { evict; wp } ->
        let profile = Vm_runtime.kona_vm_profile Cost_model.default Kona_rdma.Cost.default in
        let config =
          {
            Vm_runtime.default_config with
            cache_pages = cache_pages ~evict;
            write_protect = wp;
          }
        in
        let vm = Vm_runtime.create ~config ~nic ~profile ~controller ~read_local () in
        ( Vm_runtime.sink vm,
          (fun () -> Vm_runtime.elapsed_ns vm),
          fun () -> Vm_runtime.drain vm )
  in
  let heap = Heap.create ~capacity:(region + Units.mib 1) ~sink () in
  heap_ref := Some heap;
  let base = Heap.alloc heap region in
  { heap; base; elapsed; drain }

(* Threads interleave page-by-page so their virtual clocks advance roughly
   together and genuinely contend for the shared NIC. *)
let run_variant ~threads variant =
  let nic = Kona_rdma.Nic.create () in
  let ts = List.init threads (fun _ -> make_thread ~nic variant) in
  for _pass = 1 to passes do
    for p = 0 to pages - 1 do
      List.iter
        (fun t ->
          let addr = t.base + (p * Units.page_size) in
          ignore (Heap.read_u64 t.heap addr);
          Heap.write_u64 t.heap addr p)
        ts
    done
  done;
  List.iter (fun t -> t.drain ()) ts;
  List.fold_left (fun acc t -> max acc (t.elapsed ())) 0 ts

let run () =
  Report.section "Fig. 7: microbenchmark total time, Kona vs Kona-VM";
  Report.note "%d pages/thread (%db region), %d passes, r+w 1 CL per page" pages region
    passes;
  Report.note "50%% local cache for evicting variants; shared NIC across threads";
  let variants =
    [
      Kona { evict = true };
      Vm { evict = true; wp = true };
      Kona { evict = false };
      Vm { evict = false; wp = true };
      Vm { evict = false; wp = false };
    ]
  in
  let threads_list = [ 1; 2; 4 ] in
  let results =
    List.map
      (fun v -> (v, List.map (fun threads -> run_variant ~threads v) threads_list))
      variants
  in
  Report.table
    ~header:[ "variant"; "1 thread"; "2 threads"; "4 threads" ]
    (List.map
       (fun (v, times) -> variant_name v :: List.map Report.ns times)
       results);
  let time v threads =
    let _, times = List.find (fun (v', _) -> v' = v) results in
    List.nth times (match threads with 1 -> 0 | 2 -> 1 | _ -> 2)
  in
  List.iter
    (fun threads ->
      Format.printf "  Kona speedup over Kona-VM at %d thread(s): %.1fx (paper: %s)@."
        threads
        (float_of_int (time (Vm { evict = true; wp = true }) threads)
        /. float_of_int (time (Kona { evict = true }) threads))
        (if threads = 1 then "6.6x" else "4-5x"))
    threads_list;
  Format.printf "  Kona-NoEvict speedup over Kona-VM-NoEvict: %.1fx (paper: 3-5x)@."
    (float_of_int (time (Vm { evict = false; wp = true }) 1)
    /. float_of_int (time (Kona { evict = false }) 1));
  Format.printf "  Kona-NoEvict speedup over Kona-VM-NoWP: %.1fx (paper: 1.2-2.9x)@."
    (float_of_int (time (Vm { evict = false; wp = false }) 1)
    /. float_of_int (time (Kona { evict = false }) 1))
