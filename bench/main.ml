(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe                 -- run everything, full scale
     dune exec bench/main.exe -- table2 fig8  -- run a subset
     dune exec bench/main.exe -- --quick      -- smoke scale (CI-fast)

   Experiment ids: table2 fig2 fig7 fig8 fig9 fig11 sec61 ablate micro
   (fig2 includes fig3; fig9 includes fig10; ablate covers the design-choice
   studies: associativity, prefetching, huge pages, replication,
   batching). *)

module Workloads = Kona_workloads.Workloads

let all_ids =
  [ "table2"; "fig2"; "fig7"; "fig8"; "fig9"; "fig11"; "sec61"; "ablate"; "system";
    "micro" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let ids = if ids = [] then all_ids else ids in
  let unknown = List.filter (fun id -> not (List.mem id all_ids)) ids in
  if unknown <> [] then begin
    Format.eprintf "unknown experiment(s): %s@.known: %s@."
      (String.concat " " unknown) (String.concat " " all_ids);
    exit 2
  end;
  let scale = if quick then Workloads.Smoke else Workloads.Full in
  Format.printf "Kona reproduction benchmarks (%s scale)@."
    (if quick then "smoke" else "full");
  let t0 = Sys.time () in
  let run id =
    match id with
    | "table2" -> Bench_table2.run ~scale ()
    | "fig2" -> Bench_fig2_3.run ~scale ()
    | "fig7" -> Bench_fig7.run ()
    | "fig8" -> Bench_fig8.run ~scale ()
    | "fig9" -> Bench_fig9_10.run ~scale ()
    | "fig11" -> Bench_fig11.run ()
    | "sec61" -> Bench_sec61.run ()
    | "ablate" -> Bench_ablation.run ~scale ()
    | "system" -> Bench_system.run ~scale ()
    | "micro" -> Bench_micro.run ()
    | _ -> assert false
  in
  List.iter run ids;
  Format.printf "@.done in %.1fs (host time)@." (Sys.time () -. t0)
