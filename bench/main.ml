(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe                 -- run everything, full scale
     dune exec bench/main.exe -- table2 fig8  -- run a subset
     dune exec bench/main.exe -- --quick      -- smoke scale (CI-fast)

   Experiment ids: table2 fig2 fig7 fig8 fig9 fig11 sec61 ablate faults
   recovery integrity micro (fig2 includes fig3; fig9 includes fig10;
   ablate covers the design-choice studies: associativity, prefetching,
   huge pages, replication, batching; faults sweeps replication degree x
   crash time under the fault injector; recovery sweeps membership lease
   x partition duration and writes its own BENCH_recovery.json;
   integrity sweeps bit-flip rate x scrub interval and writes its own
   BENCH_integrity.json).

   Every run also writes BENCH_telemetry.json: one JSON line per printed
   table row (see Report), closed by full runtime-telemetry snapshots of a
   smoke Redis-Rand run on Kona and Kona-VM. *)

module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Hub = Kona_telemetry.Hub
module Json = Kona_telemetry.Json
module Snapshot = Kona_telemetry.Snapshot

let all_ids =
  [ "table2"; "fig2"; "fig7"; "fig8"; "fig9"; "fig11"; "sec61"; "ablate"; "system";
    "faults"; "recovery"; "integrity"; "rack"; "placement"; "shmrpc"; "micro" ]

let artifact_path = "BENCH_telemetry.json"

(* One smoke Redis-Rand run on [system] with a telemetry hub attached;
   returns the hub and the run's virtual time. *)
let telemetry_run system =
  let controller = Kona.Rack_controller.create ~slab_size:(Units.mib 1) () in
  Kona.Rack_controller.register_node controller
    (Kona.Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Kona.Rack_controller.register_node controller
    (Kona.Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let hub = Hub.create () in
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let sink, drain, elapsed =
    match system with
    | `Kona ->
        let rt = Kona.Runtime.create ~hub ~controller ~read_local () in
        ( Kona.Runtime.sink rt,
          (fun () -> Kona.Runtime.drain rt),
          fun () -> Kona.Runtime.elapsed_ns rt )
    | `Vm ->
        let profile =
          Kona_baselines.Vm_runtime.kona_vm_profile Kona.Cost_model.default
            Kona_rdma.Cost.default
        in
        let vm =
          Kona_baselines.Vm_runtime.create ~hub ~profile ~controller ~read_local ()
        in
        ( Kona_baselines.Vm_runtime.sink vm,
          (fun () -> Kona_baselines.Vm_runtime.drain vm),
          fun () -> Kona_baselines.Vm_runtime.elapsed_ns vm )
  in
  let spec = Workloads.redis_rand in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke) ~sink ()
  in
  heap_ref := Some heap;
  spec.Workloads.run Workloads.Smoke ~heap ~seed:42;
  drain ();
  (hub, elapsed ())

(* How fast does the simulator itself run?  One smoke Redis-Rand pass on
   the Kona runtime, timed in host seconds: the resulting
   accesses-per-second rate is stamped into every artifact header so a
   BENCH_*.json also records what it cost to produce. *)
let calibrate_sim_rate () =
  let controller = Kona.Rack_controller.create ~slab_size:(Units.mib 1) () in
  Kona.Rack_controller.register_node controller
    (Kona.Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Kona.Rack_controller.register_node controller
    (Kona.Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let rt = Kona.Runtime.create ~controller ~read_local () in
  let accesses = ref 0 in
  let sink ev =
    incr accesses;
    Kona.Runtime.sink rt ev
  in
  let spec = Workloads.redis_rand in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke) ~sink ()
  in
  heap_ref := Some heap;
  let t0 = Sys.time () in
  spec.Workloads.run Workloads.Smoke ~heap ~seed:42;
  Kona.Runtime.drain rt;
  let dt = Sys.time () -. t0 in
  if dt > 0.0 then float_of_int !accesses /. dt else 0.0

let emit_telemetry () =
  Report.section "telemetry";
  List.iter
    (fun (name, sys) ->
      let hub, elapsed = telemetry_run sys in
      let snap = Hub.snapshot hub in
      Report.json_line
        [
          ("kind", Json.String "telemetry");
          ("system", Json.String name);
          ("workload", Json.String "Redis-Rand");
          ("elapsed_ns", Json.Int elapsed);
          ("metrics", Snapshot.to_json snap);
        ];
      Report.note "%s: %d metrics appended to %s" name (List.length snap)
        artifact_path)
    [ ("kona", `Kona); ("kona-vm", `Vm) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let ids = if ids = [] then all_ids else ids in
  let unknown = List.filter (fun id -> not (List.mem id all_ids)) ids in
  if unknown <> [] then begin
    Format.eprintf "unknown experiment(s): %s@.known: %s@."
      (String.concat " " unknown) (String.concat " " all_ids);
    exit 2
  end;
  let scale = if quick then Workloads.Smoke else Workloads.Full in
  Format.printf "Kona reproduction benchmarks (%s scale)@."
    (if quick then "smoke" else "full");
  Report.set_sim_rate (calibrate_sim_rate ());
  Report.open_json ~path:artifact_path
    ~meta:
      [
        ("scale", Json.String (if quick then "smoke" else "full"));
        ("experiments", Json.List (List.map (fun id -> Json.String id) ids));
      ]
    ();
  let t0 = Sys.time () in
  let run id =
    match id with
    | "table2" -> Bench_table2.run ~scale ()
    | "fig2" -> Bench_fig2_3.run ~scale ()
    | "fig7" -> Bench_fig7.run ()
    | "fig8" -> Bench_fig8.run ~scale ()
    | "fig9" -> Bench_fig9_10.run ~scale ()
    | "fig11" -> Bench_fig11.run ()
    | "sec61" -> Bench_sec61.run ()
    | "ablate" -> Bench_ablation.run ~scale ()
    | "system" -> Bench_system.run ~scale ()
    | "faults" -> Bench_faults.run ()
    | "recovery" -> Bench_recovery.run ()
    | "integrity" -> Bench_integrity.run ()
    | "rack" -> Bench_rack.run ~scale ()
    | "placement" -> Bench_placement.run ~scale ()
    | "shmrpc" -> Bench_shmrpc.run ~scale ()
    | "micro" -> Bench_micro.run ()
    | _ -> assert false
  in
  List.iter run ids;
  emit_telemetry ();
  Report.close_json ();
  Format.printf "@.done in %.1fs (host time); artifact: %s@." (Sys.time () -. t0)
    artifact_path
