(* Bechamel microbenchmarks of the hot data-path primitives: wall-clock
   cost of the simulator's building blocks (not virtual time).  These back
   the ablation discussion in EXPERIMENTS.md: the runtime's per-access
   overhead is dominated by the cache simulator, and CL-log staging is
   cheap relative to page copies. *)

open Bechamel
open Toolkit
module Units = Kona_util.Units
module Bitmap = Kona_util.Bitmap
module Rng = Kona_util.Rng
module Cache = Kona_cachesim.Cache
module Heap = Kona_workloads.Heap

let test_bitmap_segments =
  let bitmap = Bitmap.create 64 in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 12 do
    Bitmap.set bitmap (Rng.int rng 64)
  done;
  Test.make ~name:"bitmap.segments (64b, 12 set)"
    (Staged.stage (fun () -> ignore (Bitmap.segments bitmap : (int * int) list)))

let test_cache_access =
  let cache = Cache.create ~name:"bench" ~size:(Units.kib 32) ~assoc:8 ~block:64 in
  let rng = Rng.create ~seed:2 in
  Test.make ~name:"cache.access (32KB/8-way)"
    (Staged.stage (fun () ->
         ignore (Cache.access cache ~addr:(Rng.int rng 1_000_000) ~write:false)))

let test_heap_write =
  let heap = Heap.create ~capacity:(Units.mib 1) ~sink:Kona_trace.Access.Tap.ignore () in
  let addr = Heap.alloc heap 4096 in
  Test.make ~name:"heap.write_u64 (instrumented)"
    (Staged.stage (fun () -> Heap.write_u64 heap addr 42))

let test_kv_set =
  let heap = Heap.create ~capacity:(Units.mib 8) ~sink:Kona_trace.Access.Tap.ignore () in
  let kv = Kona_workloads.Kv_store.create heap ~nbuckets:1024 in
  let rng = Rng.create ~seed:3 in
  Test.make ~name:"kv_store.set (104B value)"
    (Staged.stage (fun () ->
         Kona_workloads.Kv_store.set kv
           (Kona_workloads.Kv_store.key_of_int (Rng.int rng 500))
           (String.make 104 'v')))

let test_fmem_lookup =
  let fmem = Kona_coherence.Fmem.create ~pages:1024 () in
  for p = 0 to 1023 do
    ignore (Kona_coherence.Fmem.insert fmem ~vpage:p)
  done;
  let rng = Rng.create ~seed:4 in
  Test.make ~name:"fmem.lookup (1024 frames)"
    (Staged.stage (fun () ->
         ignore (Kona_coherence.Fmem.lookup fmem ~vpage:(Rng.int rng 2048) : bool)))

let tests =
  [ test_bitmap_segments; test_cache_access; test_heap_write; test_kv_set;
    test_fmem_lookup ]

let run () =
  Report.section "Microbenchmarks (host wall-clock, bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "  %-36s %8.1f ns/op@." name est
          | _ -> Format.printf "  %-36s (no estimate)@." name)
        analyzed)
    tests
