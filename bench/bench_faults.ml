(* Fault injection and recovery (§4.5): sweep replication degree x crash
   time under a seeded fault plan (a node crash plus 0.5% WQE loss) and
   report what recovery cost: failover control-plane latency, background
   re-replication, and whether data was lost.

   The interesting contrast: with replicas the crash is absorbed — a
   mirror is promoted, zero divergence, bounded failover latency; without,
   the same plan degrades the run (lost log writes, unreachable pages) but
   never raises. *)

open Kona
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Histogram = Kona_util.Histogram
module Rng = Kona_util.Rng
module Fault_spec = Kona_faults.Fault_spec

let run_one ~replicas ~crash_us =
  let faults =
    Fault_spec.parse_exn
      (Printf.sprintf "node-crash@%dus:id=1;wqe-drop:p=0.005" crash_us)
  in
  let config =
    { Runtime.default_config with fmem_pages = 256; replicas; faults }
  in
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 64));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 64));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let rt = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 32) ~sink:(Runtime.sink rt) () in
  heap_ref := Some heap;
  let region = Units.mib 4 in
  let base = Heap.alloc heap region in
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 100_000 do
    Heap.write_u64 heap (base + (Rng.int rng (region / 8) * 8)) 1
  done;
  Runtime.drain rt;
  (match Runtime.replication rt with
  | Some r -> assert (Replication.divergent_mirrors r ~controller = 0)
  | None -> ());
  rt

let run () =
  Report.section "Faults: node crash, failover, recovery (SS4.5)";
  let rows =
    List.concat_map
      (fun replicas ->
        List.map
          (fun crash_us ->
            let rt = run_one ~replicas ~crash_us in
            let fo = Runtime.failover_latency rt in
            let rc = Runtime.recovery_latency rt in
            let stats = Runtime.stats rt in
            [
              string_of_int replicas;
              Printf.sprintf "%dus" crash_us;
              string_of_int (List.assoc "faults.injected" stats);
              (if Histogram.count fo = 0 then "-"
               else Report.ns (Histogram.percentile fo 50.));
              (if Histogram.count rc = 0 then "-"
               else Report.ns (int_of_float (Histogram.mean rc)));
              string_of_int (List.assoc "log.lost_writes" stats);
              (match Runtime.degraded rt with Some _ -> "degraded" | None -> "ok");
            ])
          [ 200; 600 ])
      [ 0; 1; 2 ]
  in
  Report.table
    ~header:
      [
        "replicas"; "crash at"; "faults"; "failover p50"; "re-replicate";
        "lost writes"; "status";
      ]
    rows;
  Report.note "with replicas the crash is absorbed: a mirror is promoted and";
  Report.note
    "re-replicated in the background; without, the run degrades (no raise)"
