let section title =
  let line = String.make (String.length title + 8) '=' in
  Format.printf "@.%s@.=== %s ===@.%s@." line title line

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Format.printf "  %-*s" (List.nth widths c) cell)
      row;
    Format.printf "@."
  in
  print_row header;
  Format.printf "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows;
  Format.printf "@."

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

let ns v =
  if v >= 1_000_000_000 then Printf.sprintf "%.2fs" (float_of_int v /. 1e9)
  else if v >= 1_000_000 then Printf.sprintf "%.1fms" (float_of_int v /. 1e6)
  else if v >= 1_000 then Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
  else Printf.sprintf "%dns" v

let vs_paper ~measured ~paper =
  Printf.sprintf "%.2f (paper %.2f)" measured paper
