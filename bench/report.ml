module Json = Kona_telemetry.Json

(* One optional JSON-lines artifact per bench process: every printed table
   row is mirrored there, so the console report and the machine-readable
   record cannot drift apart. *)
let json_out : out_channel option ref = ref None
let current_section = ref ""

(* Provenance stamp: every artifact header records the git commit it was
   produced from and the workload seed in effect, so a BENCH_*.json found
   in CI storage is traceable to an exact tree + run.  Resolved with plain
   Stdlib IO (bench does not link unix): follow .git/HEAD to the ref file
   or packed-refs. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let git_commit =
  lazy
    (let rec find_git dir depth =
       let candidate = Filename.concat dir ".git" in
       if Sys.file_exists candidate && Sys.is_directory candidate then
         Some candidate
       else if depth >= 6 then None
       else find_git (Filename.concat dir Filename.parent_dir_name) (depth + 1)
     in
     let resolve git_dir =
       match read_file (Filename.concat git_dir "HEAD") with
       | None -> None
       | Some head -> (
           let head = String.trim head in
           match String.length head >= 5 && String.sub head 0 5 = "ref: " with
           | false -> Some head (* detached HEAD: a bare hash *)
           | true -> (
               let refname =
                 String.trim (String.sub head 5 (String.length head - 5))
               in
               match read_file (Filename.concat git_dir refname) with
               | Some hash -> Some (String.trim hash)
               | None -> (
                   (* ref packed away: scan packed-refs for "<hash> <ref>" *)
                   match read_file (Filename.concat git_dir "packed-refs") with
                   | None -> None
                   | Some packed ->
                       String.split_on_char '\n' packed
                       |> List.find_map (fun line ->
                              match String.index_opt line ' ' with
                              | Some i
                                when String.sub line (i + 1)
                                       (String.length line - i - 1)
                                     = refname ->
                                  Some (String.sub line 0 i)
                              | _ -> None))))
     in
     match find_git (Sys.getcwd ()) 0 with
     | None -> "unknown"
     | Some git_dir -> (
         match resolve git_dir with Some h -> h | None -> "unknown"))

let seed = ref 42
let set_seed s = seed := s

(* Simulation throughput (application accesses simulated per host
   second), measured once by the harness at startup; 0.0 until set. *)
let sim_rate = ref 0.0
let set_sim_rate r = sim_rate := r

let stamp meta =
  let with_default key value meta =
    if List.mem_assoc key meta then meta else (key, value) :: meta
  in
  meta
  |> with_default "commit" (Json.String (Lazy.force git_commit))
  |> with_default "seed" (Json.Int !seed)
  |> fun meta ->
  if !sim_rate > 0.0 then
    with_default "sim_accesses_per_sec" (Json.Float !sim_rate) meta
  else meta

let json_line fields =
  match !json_out with
  | None -> ()
  | Some oc ->
      let fields =
        if !current_section = "" then fields
        else ("section", Json.String !current_section) :: fields
      in
      output_string oc (Json.to_string (Json.Obj fields));
      output_char oc '\n'

let open_json ~path ?(meta = []) () =
  (match !json_out with Some oc -> close_out_noerr oc | None -> ());
  let oc = open_out path in
  json_out := Some oc;
  current_section := "";
  json_line (("schema", Json.String "kona.bench.v1") :: stamp meta)

let close_json () =
  match !json_out with
  | None -> ()
  | Some oc ->
      close_out oc;
      json_out := None

let with_artifact ~path ?(meta = []) f =
  let saved_out = !json_out and saved_section = !current_section in
  let oc = open_out path in
  json_out := Some oc;
  current_section := "";
  json_line (("schema", Json.String "kona.bench.v1") :: stamp meta);
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      json_out := saved_out;
      current_section := saved_section)
    f

let section title =
  current_section := title;
  let line = String.make (String.length title + 8) '=' in
  Format.printf "@.%s@.=== %s ===@.%s@." line title line

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Format.printf "  %-*s" (List.nth widths c) cell)
      row;
    Format.printf "@."
  in
  print_row header;
  Format.printf "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows;
  Format.printf "@.";
  let rec fields hs cs =
    match (hs, cs) with
    | h :: hs, c :: cs -> (h, Json.String c) :: fields hs cs
    | _ -> []
  in
  List.iter
    (fun row -> json_line (("kind", Json.String "row") :: fields header row))
    rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

let ns v =
  if v >= 1_000_000_000 then Printf.sprintf "%.2fs" (float_of_int v /. 1e9)
  else if v >= 1_000_000 then Printf.sprintf "%.1fms" (float_of_int v /. 1e6)
  else if v >= 1_000 then Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
  else Printf.sprintf "%dns" v

let vs_paper ~measured ~paper =
  Printf.sprintf "%.2f (paper %.2f)" measured paper
