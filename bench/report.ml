module Json = Kona_telemetry.Json

(* One optional JSON-lines artifact per bench process: every printed table
   row is mirrored there, so the console report and the machine-readable
   record cannot drift apart. *)
let json_out : out_channel option ref = ref None
let current_section = ref ""

let json_line fields =
  match !json_out with
  | None -> ()
  | Some oc ->
      let fields =
        if !current_section = "" then fields
        else ("section", Json.String !current_section) :: fields
      in
      output_string oc (Json.to_string (Json.Obj fields));
      output_char oc '\n'

let open_json ~path ?(meta = []) () =
  (match !json_out with Some oc -> close_out_noerr oc | None -> ());
  let oc = open_out path in
  json_out := Some oc;
  current_section := "";
  json_line (("schema", Json.String "kona.bench.v1") :: meta)

let close_json () =
  match !json_out with
  | None -> ()
  | Some oc ->
      close_out oc;
      json_out := None

let with_artifact ~path ?(meta = []) f =
  let saved_out = !json_out and saved_section = !current_section in
  let oc = open_out path in
  json_out := Some oc;
  current_section := "";
  json_line (("schema", Json.String "kona.bench.v1") :: meta);
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      json_out := saved_out;
      current_section := saved_section)
    f

let section title =
  current_section := title;
  let line = String.make (String.length title + 8) '=' in
  Format.printf "@.%s@.=== %s ===@.%s@." line title line

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Format.printf "  %-*s" (List.nth widths c) cell)
      row;
    Format.printf "@."
  in
  print_row header;
  Format.printf "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows;
  Format.printf "@.";
  let rec fields hs cs =
    match (hs, cs) with
    | h :: hs, c :: cs -> (h, Json.String c) :: fields hs cs
    | _ -> []
  in
  List.iter
    (fun row -> json_line (("kind", Json.String "row") :: fields header row))
    rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

let ns v =
  if v >= 1_000_000_000 then Printf.sprintf "%.2fs" (float_of_int v /. 1e9)
  else if v >= 1_000_000 then Printf.sprintf "%.1fms" (float_of_int v /. 1e6)
  else if v >= 1_000 then Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
  else Printf.sprintf "%dns" v

let vs_paper ~measured ~paper =
  Printf.sprintf "%.2f (paper %.2f)" measured paper
