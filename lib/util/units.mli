(** Memory- and time-unit constants and pretty-printers shared by the whole
    simulator.  Addresses, sizes and times are plain [int]s: bytes for
    sizes/addresses, nanoseconds for times.  On a 64-bit platform this gives
    62 usable bits, plenty for both. *)

val cache_line : int
(** Bytes per cache-line (64). *)

val page_size : int
(** Bytes per base page (4096). *)

val huge_page_size : int
(** Bytes per 2 MiB huge page. *)

val lines_per_page : int
(** Cache-lines per base page (64). *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val us : int -> int
(** Microseconds to nanoseconds. *)

val ms : int -> int
(** Milliseconds to nanoseconds. *)

val sec : int -> int
(** Seconds to nanoseconds. *)

val line_of_addr : int -> int
(** Cache-line index of a byte address (address / 64). *)

val page_of_addr : int -> int
(** Base-page index of a byte address. *)

val huge_of_addr : int -> int
(** Huge-page index of a byte address. *)

val line_in_page : int -> int
(** Cache-line offset within its page, in [0, 63]. *)

val align_down : int -> alignment:int -> int
val align_up : int -> alignment:int -> int

val is_power_of_two : int -> bool

val log2 : int -> int
(** [log2 n] for positive power-of-two [n]. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count ("4.0KiB", "1.5GiB", ...). *)

val pp_ns : Format.formatter -> int -> unit
(** Human-readable duration ("250ns", "3.0us", "1.2ms", ...). *)
