(** Empirical cumulative distribution functions over integer samples.

    Figures 2 and 3 of the paper are CDFs (accessed cache-lines per page,
    contiguous-segment lengths); this module accumulates the samples and
    renders the same series. *)

type t

val create : unit -> t
val add : t -> int -> unit
val add_many : t -> int -> int -> unit
(** [add_many t v n] records value [v] [n] times. *)

val count : t -> int

val at : t -> int -> float
(** [at t v] is P(X <= v), in [0, 1].  0 when empty. *)

val quantile : t -> float -> int
(** [quantile t q] is the smallest value [v] with [at t v >= q].
    Raises [Invalid_argument] when empty or [q] outside (0, 1]. *)

val mean : t -> float

val series : t -> max_value:int -> (int * float) list
(** [(v, P(X <= v))] for v = 0 .. max_value — the plottable CDF curve. *)

val pp : Format.formatter -> t -> unit
