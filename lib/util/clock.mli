(** Virtual simulation clock.

    All latency accounting in the simulator advances a [Clock.t] by integer
    nanoseconds; no wall-clock time is ever involved, so runs are
    deterministic and independent of host speed. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val advance : t -> int -> unit
(** [advance t ns] moves time forward; [ns] must be non-negative. *)

val advance_to : t -> int -> unit
(** [advance_to t ns] sets the clock to [max (now t) ns]. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
