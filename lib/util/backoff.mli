(** Unified retry/backoff policy for every resending layer (QP
    retransmission, RPC timeout/resend).  One config threads from the CLI
    through the runtimes; per-layer bases stay separate but the retry
    budgets and backoff shape are set in one place. *)

type config = {
  base_ns : int;  (** QP retransmission timer / first backoff step *)
  qp_retry_max : int;  (** transmissions before [Qp.Retry_exhausted] *)
  rpc_retry_max : int;  (** resends before [Rpc.Timeout_exhausted] *)
  cap_shift : int;  (** backoff doubling capped at [2^cap_shift] *)
}

val default : config
(** [{ base_ns = 8_000; qp_retry_max = 7; rpc_retry_max = 5; cap_shift = 4 }] —
    bit-identical to the previously hardcoded per-layer values. *)

val delay_ns : config -> base:int -> attempt:int -> int
(** Backoff before resend number [attempt] (0-based):
    [base * 2^min(attempt, cap_shift)]. *)

val with_retry_max : config -> int -> config
(** Override both layers' retry budgets at once ([--retry-max]). *)

val with_base_ns : config -> int -> config
(** Override the first backoff step ([--backoff-base-ns]). *)
