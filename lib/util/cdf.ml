type t = { counts : (int, int ref) Hashtbl.t; mutable n : int; mutable sum : int }

let create () = { counts = Hashtbl.create 64; n = 0; sum = 0 }

let add_many t v k =
  assert (k >= 0);
  (match Hashtbl.find_opt t.counts v with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t.counts v (ref k));
  t.n <- t.n + k;
  t.sum <- t.sum + (v * k)

let add t v = add_many t v 1
let count t = t.n

let sorted t =
  Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let at t v =
  if t.n = 0 then 0.
  else
    let below =
      Hashtbl.fold (fun v' r acc -> if v' <= v then acc + !r else acc) t.counts 0
    in
    float_of_int below /. float_of_int t.n

let quantile t q =
  if t.n = 0 then invalid_arg "Cdf.quantile: empty";
  if q <= 0. || q > 1. then invalid_arg "Cdf.quantile: q outside (0,1]";
  let target = q *. float_of_int t.n in
  let rec loop acc = function
    | [] -> invalid_arg "Cdf.quantile: empty"
    | (v, k) :: rest ->
        let acc = acc + k in
        if float_of_int acc >= target then v else loop acc rest
  in
  loop 0 (sorted t)

let mean t = if t.n = 0 then nan else float_of_int t.sum /. float_of_int t.n

let series t ~max_value =
  let rec loop v acc below remaining =
    if v > max_value then List.rev acc
    else
      let here =
        match Hashtbl.find_opt t.counts v with Some r -> !r | None -> 0
      in
      let below = below + here in
      let p = if t.n = 0 then 0. else float_of_int below /. float_of_int t.n in
      loop (v + 1) ((v, p) :: acc) below remaining
  in
  loop 0 [] 0 t.n

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.2f" t.n (mean t);
  if t.n > 0 then
    Format.fprintf fmt " p50=%d p90=%d p99=%d" (quantile t 0.5) (quantile t 0.9)
      (quantile t 0.99)
