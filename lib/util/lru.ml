(* Classic hashtable + doubly-linked list. *)

type node = { key : int; mutable prev : node option; mutable next : node option }

type t = {
  table : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
}

let create () = { table = Hashtbl.create 256; head = None; tail = None }
let mem t key = Hashtbl.mem t.table key
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      push_front t node
  | None ->
      let node = { key; prev = None; next = None } in
      Hashtbl.add t.table key node;
      push_front t node

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key
  | None -> ()

let peek_lru t = Option.map (fun n -> n.key) t.tail

let evict_lru t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Some node.key

let to_list t =
  let rec loop acc = function
    | None -> acc
    | Some node -> loop (node.key :: acc) node.prev
  in
  loop [] t.tail |> List.rev
