(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible bit-for-bit from a seed, and
    independent components can use independent streams ([split]). *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator whose stream is independent of the parent's. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound-1].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Draw from a Zipf-like distribution over [0, n-1] with skew [theta]
    (0 < theta < 1; higher is more skewed).  Uses the standard YCSB
    rejection-free approximation. *)
