let cache_line = 64
let page_size = 4096
let huge_page_size = 2 * 1024 * 1024
let lines_per_page = page_size / cache_line
let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let line_of_addr a = a lsr 6
let page_of_addr a = a lsr 12
let huge_of_addr a = a lsr 21
let line_in_page a = (a lsr 6) land (lines_per_page - 1)

let align_down a ~alignment =
  assert (alignment > 0);
  a - (a mod alignment)

let align_up a ~alignment = align_down (a + alignment - 1) ~alignment
let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  assert (is_power_of_two n);
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let pp_scaled units factor fmt v =
  let rec pick v = function
    | [ last ] -> (v, last)
    | u :: rest -> if v < factor then (v, u) else pick (v /. factor) rest
    | [] -> assert false
  in
  let v, u = pick v units in
  if Float.is_integer v then Format.fprintf fmt "%.0f%s" v u
  else Format.fprintf fmt "%.1f%s" v u

let pp_bytes fmt n =
  pp_scaled [ "B"; "KiB"; "MiB"; "GiB"; "TiB" ] 1024. fmt (float_of_int n)

let pp_ns fmt n =
  pp_scaled [ "ns"; "us"; "ms"; "s" ] 1000. fmt (float_of_int n)
