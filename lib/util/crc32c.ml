(* CRC32C, reflected polynomial 0x82F63B78, standard init/xor-out
   0xFFFFFFFF.  Byte-at-a-time table lookup; plenty fast for a
   simulation and dependency-free. *)

let poly = 0x82F63B78

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := (!c lsr 1) lxor poly else c := !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let update crc byte =
  let t = Lazy.force table in
  (crc lsr 8) lxor t.((crc lxor byte) land 0xFF)

let digest_bytes buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32c.digest_bytes";
  let crc = ref mask32 in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get buf i))
  done;
  !crc lxor mask32

let digest_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.digest_sub";
  let crc = ref mask32 in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  !crc lxor mask32

let digest s = digest_sub s ~pos:0 ~len:(String.length s)
