(** Bounded FIFO ring buffer.

    The CL-log eviction path (§4.4 of the paper, "a software log based on a
    ring buffer design similar to FaRM") and the RDMA completion queues are
    built on this. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]; returns [false] (and does nothing) if full. *)

val force_push : 'a t -> 'a -> 'a option
(** [force_push t x] enqueues [x], displacing (and returning) the oldest
    element when full — the newest element is never lost.  Used by the
    telemetry tracer's keep-latest ring. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val pop_n : 'a t -> int -> 'a list
(** Pop up to [n] elements, oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Iterate oldest-to-newest without consuming. *)

val clear : 'a t -> unit
