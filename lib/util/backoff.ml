(* One retry/backoff policy shared by every layer that resends: the QP
   retransmission path (rx timer, RNR-style) and the RPC timeout/resend
   loop.  Both previously carried separate hardcoded parameters; a single
   config threads from konactl through Runtime/Vm_runtime so a fault
   sweep can turn one knob and move the whole stack.

   The delay for attempt [k] (0-based) is [base * 2^min(k, cap_shift)] —
   capped exponential backoff.  The base differs per layer (the QP uses
   its retransmission timer, the RPC its response timeout), so [delay_ns]
   takes the base as an argument and the config only fixes the shape. *)

type config = {
  base_ns : int;  (** QP retransmission timer / first backoff step *)
  qp_retry_max : int;  (** transmissions before [Qp.Retry_exhausted] *)
  rpc_retry_max : int;  (** resends before [Rpc.Timeout_exhausted] *)
  cap_shift : int;  (** backoff doubling capped at [2^cap_shift] *)
}

let default =
  { base_ns = 8_000; qp_retry_max = 7; rpc_retry_max = 5; cap_shift = 4 }

let delay_ns t ~base ~attempt =
  assert (base > 0 && attempt >= 0);
  base * (1 lsl min attempt t.cap_shift)

(* The single-knob override: [--retry-max n] caps every layer's retry
   budget at once without touching the timers. *)
let with_retry_max t n = { t with qp_retry_max = n; rpc_retry_max = n }
let with_base_ns t ns = { t with base_ns = ns }
