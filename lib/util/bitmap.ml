(* Bits are packed into OCaml ints, 62 usable bits per word.  62 is not a
   power of two so index arithmetic uses division, which is fine: these
   bitmaps are small and hot paths are word-level scans. *)

let bits_per_word = 62

type t = { words : int array; length : int }

let create n =
  assert (n >= 0);
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; length = n }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Bitmap: index %d out of bounds [0,%d)" i t.length)

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let get t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let set_range t pos len =
  for i = pos to pos + len - 1 do
    set t i
  done

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec loop acc w = if w = 0 then acc else loop (acc + 1) (w land (w - 1)) in
  loop 0 w

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let low = !word land - !word in
      let b = Units.log2 low in
      f ((w * bits_per_word) + b);
      word := !word land lnot low
    done
  done

let fold_set t ~init ~f =
  let acc = ref init in
  iter_set t (fun i -> acc := f !acc i);
  !acc

let segments t =
  let segs = ref [] in
  let start = ref (-1) in
  let prev = ref (-2) in
  let flush () = if !start >= 0 then segs := (!start, !prev - !start + 1) :: !segs in
  iter_set t (fun i ->
      if i <> !prev + 1 then begin
        flush ();
        start := i
      end;
      prev := i);
  flush ();
  List.rev !segs

let union_into ~dst ~src =
  if dst.length <> src.length then invalid_arg "Bitmap.union_into: capacity mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let copy t = { words = Array.copy t.words; length = t.length }
let equal a b = a.length = b.length && a.words = b.words

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  List.iter
    (fun (s, l) ->
      if not !first then Format.fprintf fmt ",";
      first := false;
      if l = 1 then Format.fprintf fmt "%d" s else Format.fprintf fmt "%d-%d" s (s + l - 1))
    (segments t);
  Format.fprintf fmt "}"
