(** O(1) least-recently-used ordering over integer keys.

    Backs page-eviction policy in the FMem cache and in the Kona-VM baseline:
    both runtimes share this exact policy so that measured differences come
    from tracking granularity, not from eviction decisions (§6.1). *)

type t

val create : unit -> t
val mem : t -> int -> bool

val touch : t -> int -> unit
(** Insert [key] as most-recently-used, or move it there if present. *)

val remove : t -> int -> unit
(** No-op if absent. *)

val evict_lru : t -> int option
(** Remove and return the least-recently-used key. *)

val peek_lru : t -> int option
val length : t -> int
val to_list : t -> int list
(** Keys ordered LRU-first. *)
