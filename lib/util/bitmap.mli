(** Fixed-capacity bitsets.

    Used pervasively: per-page dirty cache-line masks (64 bits), per-page
    byte-exact write masks (4096 bits), FMem frame occupancy, ...  Backed by
    an [int array] of 62-bit words for cheap popcount and segment scans. *)

type t

val create : int -> t
(** [create n] is an all-zeros bitmap of capacity [n] bits. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool

val set_range : t -> int -> int -> unit
(** [set_range t pos len] sets bits [pos .. pos+len-1]. *)

val clear_all : t -> unit
val is_empty : t -> bool

val count : t -> int
(** Number of set bits (popcount). *)

val iter_set : t -> (int -> unit) -> unit
(** Iterate set-bit indices in increasing order. *)

val fold_set : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val segments : t -> (int * int) list
(** Maximal runs of consecutive set bits as [(start, length)] pairs in
    increasing order of [start]. *)

val union_into : dst:t -> src:t -> unit
(** [union_into ~dst ~src] sets every bit of [src] in [dst]; capacities must
    match. *)

val copy : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
