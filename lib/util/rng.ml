type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf via the "quick and dirty" power-law inversion used by YCSB-style
   generators: draw u in (0,1] and map through u^(1/(1-theta)) scaling.
   This keeps the generator stateless w.r.t. n (no harmonic-sum table). *)
let zipf t ~n ~theta =
  assert (n > 0 && theta > 0. && theta < 1.);
  let u = 1. -. float t 1.0 in
  (* v = u^(1/(1-theta)) has density ~ x^(-theta) on (0,1], so low indices
     dominate after scaling by n. *)
  let v = Float.pow u (1. /. (1. -. theta)) in
  let idx = int_of_float (float_of_int n *. v) in
  if idx >= n then n - 1 else if idx < 0 then 0 else idx
