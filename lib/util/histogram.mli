(** Log2-bucketed histograms for latency-style quantities.

    Constant memory (one counter per power-of-two bucket), good enough for
    percentile reporting of fetch/eviction latencies spanning ns to ms. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record a non-negative sample. *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] (0 < p <= 100) returns the upper bound of the bucket
    containing the p-th percentile — an upward-rounded estimate.  0 when
    empty. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(inclusive lower bound, count)], ascending. *)

val pp : Format.formatter -> t -> unit
