(** Log2-bucketed histograms for latency-style quantities.

    Constant memory (one counter per power-of-two bucket), good enough for
    percentile reporting of fetch/eviction latencies spanning ns to ms. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record a non-negative sample. *)

val count : t -> int

val sum : t -> float
(** Sum of all recorded samples (exact, not bucket-approximated). *)

val mean : t -> float

val copy : t -> t
(** Independent copy; mutating either side leaves the other unchanged. *)

val merge : t -> t -> t
(** Bucket-wise sum: statistics of the two streams concatenated. *)

val diff : after:t -> before:t -> t
(** Bucket-wise subtraction, for per-phase deltas when [before] is an
    earlier snapshot of the same stream.  Raises [Invalid_argument] if any
    bucket would go negative ([before] not a prefix of [after]). *)

val percentile : t -> float -> int
(** [percentile t p] (0 < p <= 100) returns the upper bound of the bucket
    containing the p-th percentile — an upward-rounded estimate.  0 when
    empty. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(inclusive lower bound, count)], ascending. *)

val pp : Format.formatter -> t -> unit
