let nbuckets = 63 (* bucket b holds samples in [2^(b-1), 2^b), bucket 0 = {0} *)

type t = {
  counts : int array;
  mutable n : int;
  mutable total : float;
}

let create () = { counts = Array.make nbuckets 0; n = 0; total = 0. }

let bucket_of sample =
  if sample <= 0 then 0
  else
    let rec loop b v = if v = 0 then b else loop (b + 1) (v lsr 1) in
    min (nbuckets - 1) (loop 0 sample)

let add t sample =
  if sample < 0 then invalid_arg "Histogram.add: negative sample";
  t.counts.(bucket_of sample) <- t.counts.(bucket_of sample) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. float_of_int sample

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
let upper_bound b = if b = 0 then 0 else 1 lsl b

let copy t = { counts = Array.copy t.counts; n = t.n; total = t.total }

let merge a b =
  {
    counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i));
    n = a.n + b.n;
    total = a.total +. b.total;
  }

let diff ~after ~before =
  let counts = Array.init nbuckets (fun i -> after.counts.(i) - before.counts.(i)) in
  if Array.exists (fun c -> c < 0) counts then
    invalid_arg "Histogram.diff: before is not a prefix of after";
  { counts; n = after.n - before.n; total = after.total -. before.total }

let percentile t p =
  if p <= 0. || p > 100. then invalid_arg "Histogram.percentile: p outside (0,100]";
  if t.n = 0 then 0
  else begin
    let target = p /. 100. *. float_of_int t.n in
    let acc = ref 0 in
    let result = ref (upper_bound (nbuckets - 1)) in
    (try
       for b = 0 to nbuckets - 1 do
         acc := !acc + t.counts.(b);
         if float_of_int !acc >= target then begin
           result := upper_bound b;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let buckets t =
  let out = ref [] in
  for b = nbuckets - 1 downto 0 do
    if t.counts.(b) > 0 then
      out := ((if b = 0 then 0 else 1 lsl (b - 1)), t.counts.(b)) :: !out
  done;
  !out

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.0f p50<=%d p99<=%d" t.n (mean t)
    (if t.n = 0 then 0 else percentile t 50.)
    (if t.n = 0 then 0 else percentile t 99.)
