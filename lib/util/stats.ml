type t = {
  mutable n : int;
  mutable sum : float;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; sum = 0.; mean = 0.; m2 = 0.; min = nan; max = nan }
let copy t = { t with n = t.n }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_int t x = add t (float_of_int x)
let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      sum = a.sum +. b.sum;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
    (stddev t) t.min t.max

module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let cell t name =
    match Hashtbl.find_opt t name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t name r;
        r

  let add t name v = cell t name := !(cell t name) + v
  let incr t name = add t name 1
  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp fmt t =
    List.iter (fun (k, v) -> Format.fprintf fmt "%s=%d@ " k v) (to_list t)
end
