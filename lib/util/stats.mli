(** Online summary statistics (count / sum / min / max / mean / variance)
    using Welford's algorithm, plus named counters. *)

type t

val create : unit -> t

val copy : t -> t
(** Independent copy; mutating either side leaves the other unchanged. *)

val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
val variance : t -> float
val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val merge : t -> t -> t
(** Combined statistics of two independent streams. *)

val pp : Format.formatter -> t -> unit

(** A bag of named monotonic counters, used for per-component event
    accounting (faults taken, lines fetched, bytes written, ...). *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val pp : Format.formatter -> t -> unit
end
