(** CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
    the checksum used by iSCSI, ext4 and Btrfs metadata, and here for
    per-cache-line integrity of FMem pages and CL-log entries.  A CRC
    detects any single-bit error in its input, so every injected
    [bit-flip] fault is guaranteed-detectable by construction.

    Table-driven software implementation; one 256-entry table, no
    external dependencies. *)

val digest : string -> int
(** CRC32C of a whole string (initial value 0, final xor 0xFFFFFFFF,
    i.e. the standard reflected CRC32C). Result fits in 32 bits. *)

val digest_sub : string -> pos:int -> len:int -> int
(** CRC32C of a substring. Raises [Invalid_argument] when out of range. *)

val digest_bytes : Bytes.t -> pos:int -> len:int -> int
(** CRC32C of a byte-buffer slice, without copying. *)
