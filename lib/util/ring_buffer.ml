type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = capacity t

let push t x =
  if is_full t then false
  else begin
    let tail = (t.head + t.len) mod capacity t in
    t.slots.(tail) <- Some x;
    t.len <- t.len + 1;
    true
  end

let force_push t x =
  if is_full t then begin
    let displaced = t.slots.(t.head) in
    t.slots.(t.head) <- Some x;
    t.head <- (t.head + 1) mod capacity t;
    displaced
  end
  else begin
    ignore (push t x : bool);
    None
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.slots.(t.head)

let pop_n t n =
  let rec loop acc n =
    if n = 0 then List.rev acc
    else
      match pop t with None -> List.rev acc | Some x -> loop (x :: acc) (n - 1)
  in
  loop [] n

let iter t f =
  for i = 0 to t.len - 1 do
    match t.slots.((t.head + i) mod capacity t) with
    | Some x -> f x
    | None -> assert false
  done

let clear t =
  Array.fill t.slots 0 (capacity t) None;
  t.head <- 0;
  t.len <- 0
