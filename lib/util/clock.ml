type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now

let advance t ns =
  assert (ns >= 0);
  t.now <- t.now + ns

let advance_to t ns = if ns > t.now then t.now <- ns
let reset t = t.now <- 0
let pp fmt t = Units.pp_ns fmt t.now
