(** A growable array with amortized O(1) append and O(1) random access.

    The stdlib gains [Dynarray] only in OCaml 5.2; this is the small subset
    the simulator needs (the rack controller's node table, chiefly), kept
    API-compatible with the stdlib module so it can be dropped once the
    compiler floor moves. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val add_last : 'a t -> 'a -> unit
(** Append; amortized O(1). *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Raises [Invalid_argument] out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val find_index : ('a -> bool) -> 'a t -> int option
