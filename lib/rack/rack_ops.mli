(** Scheduled rack-controller operations, parsed from a compact spec
    string (the placement-era sibling of {!Kona_faults.Fault_spec}):

    {v add@3ms:cap=67108864;drain@5ms:id=1;rebalance@7ms v}

    - [add@T[:cap=BYTES]] — register a fresh memory node (capacity
      defaults to the rack's [node_capacity]);
    - [drain@T:id=N] — stop placing on node [N] and re-home every page
      it holds (composing with failover: a crashed-and-failed-over node
      drains from its promoted mirror);
    - [rebalance@T] — one forced capacity-balancing migration pass.

    Times accept the fault-spec duration grammar (bare ns, [us], [ms],
    [s]). *)

type op =
  | Add_node of { capacity : int option }
  | Drain of { id : int }
  | Rebalance

type clause = { at_ns : int; op : op }
type t = clause list

val parse : string -> (t, string) result
val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
