(** Multi-tenant rack simulation: N tenant runtimes share the memory
    nodes of one rack under a deterministic virtual clock.

    Each tenant is a full {!Kona.Runtime} driving one Table 2 workload.
    The rack adds the three things a single-tenant run cannot exhibit:

    - {e contended ingress bandwidth}: every message bound for a memory
      node — CL-log shipments, demand fetches, replication writes,
      invalidation recalls — passes the node's {!Wfq} scheduler, and the
      queueing it imposes lands in the sending tenant's completion
      latencies (weighted by [bw_share]);
    - {e admission control}: each tenant's slab allocations are charged
      against its [mem_quota] at the shared rack controller;
      {!Kona.Rack_controller.Quota_exceeded} names the offender;
    - {e cross-tenant shared segments}: tenant 0 publishes a read-mostly
      heap segment that the others map ({!Kona.Resource_manager.map_foreign});
      a rack-level {!Kona_coherence.Directory} tracks per-tenant sharers
      so the writer's evictions recall remote readers, and the recall
      traffic itself contends at the nodes.

    Execution is record-then-replay: each workload is first recorded
    against its private heap, then the traces are interleaved by always
    stepping the tenant whose virtual clock is furthest behind — a
    deterministic schedule, so the same seeds produce bit-identical
    per-tenant telemetry ({!tenant_result.t_fingerprint}). *)

type tenant_cfg = {
  name : string;  (** unique; quota accounting key *)
  workload : string;  (** a {!Kona_workloads.Workloads.find} slug *)
  bw_share : int;  (** WFQ weight at every node's ingress (>= 1) *)
  mem_quota : int option;  (** slab-allocation cap, bytes; [None] = unmetered *)
  seed : int;  (** workload RNG seed *)
}

type config = {
  scale : Kona_workloads.Workloads.scale;
  nodes : int;  (** memory nodes in the rack *)
  node_capacity : int;  (** bytes per node *)
  node_gbps : float;  (** per-node ingress link rate (WFQ wire time) *)
  replicas : int;
      (** eviction replication degree, shared across tenants: all
          tenants' CL-log shipments target the same mirrors, so a
          node failover is whole — it preserves every tenant's data *)
  faults : Kona_faults.Fault_spec.t;  (** injected via tenant 0's runtime *)
  fault_seed : int;
  shared_pages : int;
      (** pages in tenant 0's published segment; 0 disables sharing *)
  shared_ops : int;
      (** synthetic shared-segment operations woven into each tenant's
          replay (tenant 0 writes, the rest read) *)
  shared_writers : int;
      (** tenants allowed to write the shared segment: woven op [k]'s
          writer is tenant [k mod shared_writers].  1 (default) keeps the
          historical single-publisher read-mostly path byte-identical;
          > 1 routes every woven shared op through the per-line MSI home
          directory ({!Kona_coherence.Directory.acquire}) with writer
          handoff, RFO invalidation and recall traffic priced through the
          contended links *)
  quantum : int;  (** accesses per scheduling slice *)
  policy : string;
      (** placement policy slug ({!Kona_placement.Placement_policy.find}):
          "first-fit" reproduces the pre-placement allocator exactly and
          never migrates *)
  fast_nodes : int;  (** nodes [0, fast_nodes) form the low-latency tier *)
  slow_extra_ns : int;
      (** fixed fabric penalty added to every admit at a slow-tier node;
          0 (the default) disables tiering *)
  hot_threshold : int;  (** decayed heat at/above which a page counts hot *)
  migrate_epoch_ns : int;  (** heat-decay and migrator epoch *)
  migrate_budget : int;  (** max page moves per migrator epoch *)
  migrate_share : int;
      (** the migrator's WFQ weight at every node — its copies contend
          with tenant traffic like any other sender *)
  ops : Rack_ops.t;  (** scheduled add/drain/rebalance operations *)
  extra_node_slots : int;
      (** extra pre-created WFQ slots beyond [nodes] plus the adds in
          [ops], for nodes added mid-run through {!apply_op}; an add with
          no free slot is refused.  0 (default) for scheduled-ops runs *)
  runtime : Kona.Runtime.config;
      (** per-tenant base; the rack overrides [tenant], [stream_base],
          [replicas], [faults] and [fault_seed] per tenant.
          [heartbeat_ns] is honoured on tenant 0 only: one membership
          authority leases the rack's nodes and triggers failover, and
          its fencing epochs broadcast to every tenant's sender *)
}

val default_config : config
(** 2 nodes x 128 MiB at 1 Gbit/s ingress (low, so smoke runs actually
    saturate), smoke scale, no replication/faults, a 64-page shared
    segment with 256 woven ops, 256-access slices; placement "first-fit"
    with no latency tiering and no scheduled ops — byte-compatible with
    the pre-placement rack. *)

type tenant_result = {
  t_cfg : tenant_cfg;
  t_accesses : int;  (** replayed application accesses (woven ops included) *)
  t_app_ns : int;
  t_bg_ns : int;
  t_elapsed_ns : int;
  t_admitted_bytes : int;  (** payload admitted across all node schedulers *)
  t_contended_bytes : int;
  t_delay_ns : int;  (** total WFQ queueing imposed on this tenant *)
  t_achieved_gbps : float;
      (** bytes-weighted mean of per-node {!Wfq.achieved_gbps}; 0.0 if
          this tenant never contended *)
  t_invalidations : int;  (** shared-segment recalls received *)
  t_mismatches : int;  (** divergence-oracle failures (must be 0) *)
  t_lost_pages : int;  (** pages unreachable on crashed nodes *)
  t_degraded : string option;
  t_fingerprint : string;
      (** canonical JSON of this tenant's [tenant.<i>.*] snapshot: equal
          across same-seed runs (the determinism contract) *)
  t_snapshot : Kona_telemetry.Snapshot.t;
}

type result = {
  r_tenants : tenant_result array;
  r_elapsed_ns : int;  (** max over tenants *)
  r_total_admits : int;
  r_saturated_admits : int;
  r_snoops : int;  (** rack-directory recalls *)
  r_invalidations_sent : int;
  r_shared_writes : int;
  r_shared_reads : int;
  r_handoffs : int;
      (** writer handoffs: RFOs that recalled another tenant's dirty copy
          (multi-writer MSI directory) *)
  r_owner_changes : int;  (** exclusive grants handed out by the MSI home *)
  r_coh_invalidations : int;
      (** copies killed by RFOs and handoffs at the MSI home *)
  r_node_crashes : int;
  r_policy : string;
  r_migrations : int;  (** pages moved (migrator epochs + rebalance ops) *)
  r_bytes_moved : int;  (** migration + drain bytes across the fabric *)
  r_failed_moves : int;  (** planned moves declined (full/dead/unclean) *)
  r_migrator_delay_ns : int;
      (** WFQ queueing absorbed by migration traffic — nonzero means the
          migrator contended with tenants *)
  r_fetches : int;  (** demand fetches observed rack-wide *)
  r_fetches_fast : int;  (** of which served by the fast tier *)
  r_remote_hit_pml : int;
      (** permille of demand fetches served by the slow tier (lower is
          better; what the heat policy pushes down) *)
  r_hot_hit_pml : int;
      (** permille of hot-page fetches served by the fast tier *)
  r_drained_pages : int;  (** pages re-homed by drain ops *)
  r_drain_failures : int;
      (** drain victims with no readable copy or no destination — the
          degraded-drain signal (konactl exit 4) *)
  r_ops_applied : int;
  r_snapshot : Kona_telemetry.Snapshot.t;
      (** the whole hub: every [tenant.<i>.*] namespace plus the
          [rack.*] fairness/contention and [placement.*] counters *)
}

val run : config -> tenant_cfg list -> result
(** Runs every tenant to completion (record, replay interleaved, drain)
    and checks each tenant's divergence oracle: after the final drain,
    remote memory must equal the tenant's heap on every backed private
    page, and the shared segment must equal the publisher's view.

    Raises [Invalid_argument] on an empty or misconfigured tenant list
    and lets {!Kona.Rack_controller.Quota_exceeded} propagate when a
    tenant overruns its cap.

    [run] is exactly [start] + [step] to exhaustion + [finish]. *)

(** {2 Stepwise engine}

    The same simulation as {!run}, paused between scheduling slices so a
    driver (lib/scenario) can interleave rack operations, fault arming
    and invariant checks with replay.  All adapters are deterministic:
    the same [config], tenant list and op sequence reproduce the same
    telemetry bit for bit. *)

type engine

val start : config -> tenant_cfg list -> engine
(** Build the fabric, record every workload, and pause before the first
    slice.  Same validation and exceptions as {!run}. *)

val step : engine -> int
(** Advance one scheduling slice (up to [quantum] accesses on the tenant
    whose clock is furthest behind, then due scheduled ops and a migrator
    tick).  Returns accesses consumed; 0 means the replay is exhausted. *)

val finish : engine -> result
(** Drain every runtime, fire remaining scheduled ops, run the
    divergence oracles and freeze the result.  Idempotent. *)

val now_ns : engine -> int
(** The rack's virtual time: max over the tenants' clocks. *)

(** {3 Op adapters} *)

val apply_op : engine -> Rack_ops.op -> unit
(** Apply an add/drain/rebalance now.  Invalid targets (unknown drain
    id, add past the last pre-created WFQ slot) are quietly refused so
    generated op sequences stay total. *)

val crash_node : engine -> id:int -> unit
(** Fail-stop node [id] now via tenant 0's runtime — the same failover
    path a scheduled [node-crash] fault clause takes.  Unknown ids are
    refused. *)

val arm_fault : engine -> Kona_faults.Fault_spec.clause -> unit
(** Arm a probabilistic fault clause on tenant 0 (the corruption-target
    tenant, as in fault plans).  Requires the runtimes to carry an
    injector ([runtime.arm_injector] or a non-empty plan). *)

val flap_links : engine -> dur_ns:int -> unit
(** Outage every tenant's NIC port for [dur_ns] starting at each
    tenant's current virtual time. *)

val partition_nodes : engine -> dur_ns:int -> ids:int list -> unit
(** Asymmetric partition: cut the listed (healthy) nodes off from the
    whole rack for [dur_ns].  Every tenant's CL-log deliveries to those
    nodes are deferred with their stamps intact, and the membership
    authority (tenant 0, when [runtime.heartbeat_ns] is set) stops
    hearing their heartbeats — long partitions are declared dead and
    failed over; the deferred writes then meet the fencing epoch at heal
    and are rejected as stale.  Requires an injector, like
    {!arm_fault}.  No-op for [dur_ns <= 0] or an empty node list. *)

val step_recovery : engine -> unit
(** Advance the rack drain queue and every tenant's recovery queue one
    bounded step each — what {!step} does after each slice, exposed for
    drivers that need recovery to progress while replay is paused. *)

val recovery_pending : engine -> string list
(** Names of unfinished resumable recovery tasks, rack drain tasks
    first, then per-tenant failover/re-replication tasks. *)

val recovery_idle : engine -> bool
(** No resumable recovery work outstanding anywhere in the rack — the
    recovery-convergence invariant's engine-side predicate. *)

val force_scrub : engine -> unit
(** Run one full scrub sweep on every runtime configured with one. *)

val force_migration : engine -> unit
(** Run one migration epoch immediately ({!Kona_placement.Migrator.force}). *)

val publish : engine -> pages:int -> unit
(** Publish the shared segment mid-run (tenant 0 backs it, others map
    foreign).  No-op if already published or [pages <= 0]. *)

val shared_round : engine -> unit
(** One synthetic shared-segment round: tenant 0 writes the next op id,
    every other tenant reads it.  No-op before {!publish}. *)

val shared_line_write : engine -> tenant:int -> line:int -> payload:char -> unit
(** One coherent write of shared-segment cache line [line] (segment-
    relative index) by [tenant]: an RFO at the MSI home directory — the
    previous owner's dirty copy is recalled, every other sharer is
    invalidated, and each recall is a background control message priced
    through the line's home-node WFQ link.  The payload byte fills the
    line in the last-writer-wins image.  No-op before {!publish}, or when
    [tenant]/[line] is out of range. *)

val shared_line_read : engine -> tenant:int -> line:int -> unit
(** Coherent read of [line] by [tenant]: a Shared grant; reading another
    tenant's Modified line recalls its dirty copy (downgrade), priced
    like a write recall.  No-op outside the published segment. *)

val multi_writer_round : engine -> unit
(** One multi-writer shared round: the next op id's writer (rotating over
    the first [shared_writers] tenants) RFO-writes a line, every other
    tenant reads it back — by construction an ownership ping-pong.
    No-op before {!publish}. *)

val enable_multi_writer : engine -> unit
(** Turn on multi-writer coherence for the shared segment regardless of
    {!config.shared_writers}: installs the home-side stale-writeback
    filter that resolves cross-tenant writeback races (an eviction
    staged before the directory revoked its holder's grant must not
    land over a newer value).  Idempotent; implied by
    [shared_writers > 1].  {!Kona_shmem.Shm_rpc.create} calls it — ring
    doorbell lines always have two writers. *)

val coherence_audit : engine -> string list
(** The single-owner-per-line invariant, engine side: MSI home-table
    consistency ({!Kona_coherence.Directory.audit}) plus owner-id range
    checks over the published segment's lines.  Empty = coherent. *)

val shared_divergence : engine -> int
(** readers-observe-last-write, engine side: shared pages whose remote
    bytes differ from the last-writer-wins image under the virtual-clock
    total order.  Excludes pages that are unrepairable (armed bit-flips)
    or homed on a dead node — those belong to the integrity and fault
    oracles.  Meaningful after {!finish} (drains flush the CL logs). *)

val shared_owner : engine -> line:int -> int option
(** Current exclusive owner of a shared-segment line, if any. *)

val shared_handoffs : engine -> int
val shared_owner_changes : engine -> int
val shared_invalidations : engine -> int
(** Live MSI-home counters (also exported as [coherence.handoffs] /
    [coherence.owner_changes] / [coherence.invalidations] and the
    [coherence.recall_ns] histogram in the telemetry snapshot). *)

val flush_logs : engine -> unit
(** Flush every tenant's CL log. *)

val set_tenant_quota : engine -> tenant:int -> bytes:int -> unit
(** Set tenant [tenant]'s memory quota at the rack controller. *)

(** {3 Invariant accessors} *)

val tenant_count : engine -> int
val tenant_cfgs : engine -> tenant_cfg array
val runtime : engine -> tenant:int -> Kona.Runtime.t
val controller : engine -> Kona.Rack_controller.t
val node_count : engine -> int
val fast_node_count : engine -> int

val tenant_used : engine -> tenant:int -> int
(** Bytes currently charged to the tenant at the rack controller. *)

val scheduler : engine -> node:int -> Wfq.t
val scheduler_weights : engine -> int array
(** Tenant WFQ weights plus the migrator's slot at index [tenant_count]. *)

val drained_pages : engine -> int
val drain_failures : engine -> int
