(** Per-memory-node ingress scheduler: weighted fair queueing over wire
    time.

    Every RDMA message bound for a node — CL-log shipments, demand
    fetches, replication writes, invalidation recalls — is admitted here
    before it earns a completion.  The scheduler tracks when the node's
    ingress link would drain ([busy_until], in virtual ns): a message
    arriving while the link is still busy is {e contended} and is
    start-time fair queued — each backlogged tenant's next eligible slot
    advances by [wire_ns(bytes) * W / w_t], where [W] sums the weights of
    the currently backlogged tenants — so over any saturated interval
    tenant service rates converge to the ratio of their [bw_share]
    weights.

    The extra queueing shows up as added completion latency: [admit]
    returns the delay the caller must add to the message's completion
    time (the {!Kona_rdma.Qp} arbitration hook), never reordering or
    dropping anything, which keeps every tenant's virtual-time engine
    deterministic. *)

type t

val create : gbps:float -> weights:int array -> t
(** [weights.(i)] is tenant [i]'s bandwidth share (>= 1).  [gbps] is the
    node's ingress link rate in Gbit/s, the basis of wire time.  Raises
    [Invalid_argument] on an empty weight vector, a non-positive weight
    or rate. *)

val wire_ns : t -> bytes:int -> int
(** Serialization time of [bytes] on this link (>= 1 ns for a non-empty
    message). *)

val admit : t -> tenant:int -> bytes:int -> now:int -> int
(** Admit one [bytes]-sized message from [tenant] arriving at virtual
    time [now]: returns the queueing delay (ns, >= 0) to add to its
    completion, 0 when the link was idle. *)

(** {2 Accounting} *)

type tenant_stats = {
  admits : int;  (** messages admitted *)
  bytes : int;  (** payload bytes admitted *)
  delay_ns : int;  (** total queueing delay imposed *)
  contended_admits : int;
      (** admits that found the link busy with at least one {e other}
          tenant backlogged — the intervals over which fair-share
          bandwidth is defined *)
  contended_bytes : int;  (** bytes admitted under cross-tenant contention *)
  contended_ns : int;
      (** virtual time this tenant's contended traffic occupied of its
          weighted share: [contended_bytes / contended_ns] is the
          tenant's achieved service rate under cross-tenant saturation,
          and the ratio across tenants converges to the weight ratio *)
}

val tenant_stats : t -> tenant:int -> tenant_stats

val achieved_gbps : t -> tenant:int -> float
(** [8 * contended_bytes / contended_ns]: the tenant's achieved ingress
    bandwidth (Gbit/s) over its contended intervals; 0.0 when this
    tenant never contended here. *)

val total_admits : t -> int
val saturated_admits : t -> int
val busy_until : t -> int
(** Virtual time at which the link drains the work admitted so far. *)

val backlog_ns : t -> now:int -> int
(** Undrained wire time at [now] (>= 0). *)

val peak_backlog_ns : t -> int
(** Largest backlog observed at any admit. *)
