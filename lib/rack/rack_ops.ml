type op =
  | Add_node of { capacity : int option }
  | Drain of { id : int }
  | Rebalance

type clause = { at_ns : int; op : op }
type t = clause list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Same duration grammar as Fault_spec: "200us" -> 200_000, bare
   integers are nanoseconds. *)
let duration_of_string s =
  let num, mult =
    let n = String.length s in
    let split k m = (String.sub s 0 (n - k), m) in
    if n >= 2 && String.sub s (n - 2) 2 = "ns" then split 2 1
    else if n >= 2 && String.sub s (n - 2) 2 = "us" then split 2 1_000
    else if n >= 2 && String.sub s (n - 2) 2 = "ms" then split 2 1_000_000
    else if n >= 1 && s.[n - 1] = 's' then split 1 1_000_000_000
    else (s, 1)
  in
  match int_of_string_opt num with
  | Some v when v >= 0 -> v * mult
  | Some _ | None -> bad "bad duration %S (expected e.g. 500ns, 200us, 2ms, 1s)" s

let int_of_field ~key s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad "bad integer %S for %s" s key

(* "kind@time[:k=v,...]" -> (kind, time, assoc). *)
let split_clause s =
  let head, params =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, [])
  in
  let kind, at =
    match String.index_opt head '@' with
    | Some i ->
        ( String.sub head 0 i,
          Some
            (duration_of_string
               (String.sub head (i + 1) (String.length head - i - 1))) )
    | None -> (head, None)
  in
  let kv p =
    match String.index_opt p '=' with
    | Some i -> (String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
    | None -> bad "bad parameter %S (expected key=value)" p
  in
  (kind, at, List.map kv (List.filter (fun p -> p <> "") params))

let parse_clause s =
  let kind, at, params = split_clause s in
  let at_ns =
    match at with
    | Some t -> t
    | None -> bad "%s needs a trigger time (e.g. %s@2ms)" kind kind
  in
  let known ks =
    List.iter
      (fun (k, _) ->
        if not (List.mem k ks) then bad "unknown parameter %s for %s" k kind)
      params
  in
  let op =
    match kind with
    | "add" ->
        known [ "cap" ];
        let capacity =
          Option.map (int_of_field ~key:"cap") (List.assoc_opt "cap" params)
        in
        (match capacity with
        | Some c when c <= 0 -> bad "add capacity must be positive, got %d" c
        | _ -> ());
        Add_node { capacity }
    | "drain" ->
        known [ "id" ];
        let id =
          match List.assoc_opt "id" params with
          | Some v -> int_of_field ~key:"id" v
          | None -> bad "drain needs id= (e.g. drain@5ms:id=1)"
        in
        if id < 0 then bad "drain id must be >= 0, got %d" id;
        Drain { id }
    | "rebalance" ->
        known [];
        Rebalance
    | other -> bad "unknown rack op %S (add | drain | rebalance)" other
  in
  { at_ns; op }

let parse s =
  let clauses =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  match List.map parse_clause clauses with
  | plan -> Ok plan
  | exception Bad msg -> Error msg

let parse_exn s =
  match parse s with Ok p -> p | Error msg -> invalid_arg ("Rack_ops: " ^ msg)

let ns_to_string ns =
  if ns mod 1_000_000_000 = 0 && ns > 0 then
    Printf.sprintf "%ds" (ns / 1_000_000_000)
  else if ns mod 1_000_000 = 0 && ns > 0 then
    Printf.sprintf "%dms" (ns / 1_000_000)
  else if ns mod 1_000 = 0 && ns > 0 then Printf.sprintf "%dus" (ns / 1_000)
  else Printf.sprintf "%dns" ns

let clause_to_string { at_ns; op } =
  match op with
  | Add_node { capacity = None } -> Printf.sprintf "add@%s" (ns_to_string at_ns)
  | Add_node { capacity = Some cap } ->
      Printf.sprintf "add@%s:cap=%d" (ns_to_string at_ns) cap
  | Drain { id } -> Printf.sprintf "drain@%s:id=%d" (ns_to_string at_ns) id
  | Rebalance -> Printf.sprintf "rebalance@%s" (ns_to_string at_ns)

let to_string t = String.concat ";" (List.map clause_to_string t)
let pp fmt t = Format.pp_print_string fmt (to_string t)
