module Units = Kona_util.Units
module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Access = Kona_trace.Access
module Hub = Kona_telemetry.Hub
module Registry = Kona_telemetry.Registry
module Snapshot = Kona_telemetry.Snapshot
module Json = Kona_telemetry.Json
module Directory = Kona_coherence.Directory
open Kona

type tenant_cfg = {
  name : string;
  workload : string;
  bw_share : int;
  mem_quota : int option;
  seed : int;
}

type config = {
  scale : Workloads.scale;
  nodes : int;
  node_capacity : int;
  node_gbps : float;
  replicas : int;
  faults : Kona_faults.Fault_spec.t;
  fault_seed : int;
  shared_pages : int;
  shared_ops : int;
  quantum : int;
  runtime : Runtime.config;
}

let default_config =
  {
    scale = Workloads.Smoke;
    nodes = 2;
    node_capacity = Units.mib 128;
    node_gbps = 1.0;
    replicas = 0;
    faults = [];
    fault_seed = 42;
    shared_pages = 64;
    shared_ops = 256;
    quantum = 256;
    runtime = Runtime.default_config;
  }

type tenant_result = {
  t_cfg : tenant_cfg;
  t_accesses : int;
  t_app_ns : int;
  t_bg_ns : int;
  t_elapsed_ns : int;
  t_admitted_bytes : int;
  t_contended_bytes : int;
  t_delay_ns : int;
  t_achieved_gbps : float;
  t_invalidations : int;
  t_mismatches : int;
  t_lost_pages : int;
  t_degraded : string option;
  t_fingerprint : string;
  t_snapshot : Snapshot.t;
}

type result = {
  r_tenants : tenant_result array;
  r_elapsed_ns : int;
  r_total_admits : int;
  r_saturated_admits : int;
  r_snoops : int;
  r_invalidations_sent : int;
  r_shared_writes : int;
  r_shared_reads : int;
  r_node_crashes : int;
  r_snapshot : Snapshot.t;
}

(* The published segment lives at 1 GiB: far above any scaled-down heap
   (tens of MiB) and aligned for every slab size in use. *)
let shared_base = 1 lsl 30

(* One replay step: a recorded application access, or a synthetic
   shared-segment operation (the publisher writes, readers read). *)
type step = App of Access.t | Shared_write of int | Shared_read of int

let validate cfg tenants =
  if tenants = [] then invalid_arg "Rack.run: no tenants";
  if cfg.nodes < 1 then invalid_arg "Rack.run: need at least one node";
  if cfg.shared_pages < 0 || cfg.shared_ops < 0 then
    invalid_arg "Rack.run: negative shared-segment parameters";
  if cfg.quantum < 1 then invalid_arg "Rack.run: quantum must be positive";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun tc ->
      if tc.bw_share < 1 then
        invalid_arg
          (Printf.sprintf "Rack.run: tenant %s: bw_share must be >= 1" tc.name);
      if Hashtbl.mem seen tc.name then
        invalid_arg (Printf.sprintf "Rack.run: duplicate tenant name %s" tc.name);
      Hashtbl.add seen tc.name ();
      match Workloads.find tc.workload with
      | _ -> ()
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf "Rack.run: tenant %s: unknown workload %s" tc.name
               tc.workload))
    tenants

let run cfg tenants =
  validate cfg tenants;
  let tenants = Array.of_list tenants in
  let n = Array.length tenants in
  let page = Units.page_size in
  let seg_pages = if n >= 1 then cfg.shared_pages else 0 in
  let seg_first = shared_base / page in
  let in_seg vpage = seg_pages > 0 && vpage >= seg_first && vpage < seg_first + seg_pages in
  (* -------- rack fabric: controller, nodes, quotas, schedulers -------- *)
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  for id = 0 to cfg.nodes - 1 do
    Rack_controller.register_node controller
      (Memory_node.create ~id ~capacity:cfg.node_capacity)
  done;
  Array.iter
    (fun tc ->
      match tc.mem_quota with
      | Some bytes -> Rack_controller.set_quota controller ~tenant:tc.name ~bytes
      | None -> ())
    tenants;
  let weights = Array.map (fun tc -> tc.bw_share) tenants in
  let wfq =
    Array.init cfg.nodes (fun _ -> Wfq.create ~gbps:cfg.node_gbps ~weights)
  in
  let hub = Hub.create () in
  (* -------- record every tenant's workload against its own heap -------- *)
  let recorded =
    Array.map
      (fun tc ->
        let spec = Workloads.find tc.workload in
        let acc = ref [] in
        let heap =
          Heap.create
            ~capacity:(spec.Workloads.heap_capacity cfg.scale)
            ~sink:(fun ev -> acc := ev :: !acc)
            ()
        in
        spec.Workloads.run cfg.scale ~heap ~seed:tc.seed;
        (heap, Array.of_list (List.rev !acc)))
      tenants
  in
  let heaps = Array.map fst recorded in
  let traces = Array.map snd recorded in
  (* Segment store: rounded up to slab granularity so the publisher's
     backing slabs are fully representable in the buffer. *)
  let slab = Rack_controller.slab_size controller in
  let seg_len = (((seg_pages * page) + slab - 1) / slab * slab) in
  (* Zero-filled, matching the memory nodes' stores: the divergence oracle
     compares whole pages, including bytes no woven op ever writes. *)
  let seg = Bytes.make (max seg_len 0) '\000' in
  let read_locals =
    Array.init n (fun i ->
        fun ~addr ~len ->
          if seg_pages > 0 && addr >= shared_base then
            Bytes.sub_string seg (addr - shared_base) len
          else Heap.peek_bytes heaps.(i) addr len)
  in
  (* -------- per-tenant runtimes over the shared fabric -------- *)
  let replication =
    if cfg.replicas > 0 then
      Some (Replication.create ~degree:cfg.replicas ~controller)
    else None
  in
  let runtimes =
    Array.init n (fun i ->
        let tc = tenants.(i) in
        let config =
          {
            cfg.runtime with
            Runtime.tenant = Some tc.name;
            stream_base = i * 1024;
            replicas = cfg.replicas;
            faults = (if i = 0 then cfg.faults else []);
            fault_seed = cfg.fault_seed;
          }
        in
        let arbitrate ~node ~op:_ ~len ~now =
          match node with
          | Some id when id >= 0 && id < cfg.nodes ->
              Wfq.admit wfq.(id) ~tenant:i ~bytes:len ~now
          | _ -> 0
        in
        Runtime.create ~config
          ~hub:(Hub.scoped hub ~prefix:(Printf.sprintf "tenant.%d." i))
          ~arbitrate ?replication ~controller
          ~read_local:read_locals.(i) ())
  in
  (* -------- shared segment: tenant 0 publishes, the rest map -------- *)
  let rack_dir = Directory.create () in
  let invalidations_sent = ref 0 in
  let shared_writes = ref 0 in
  let shared_reads = ref 0 in
  let sharer_fills = ref 0 in
  if seg_pages > 0 then begin
    let rm0 = Runtime.resource_manager runtimes.(0) in
    Resource_manager.ensure_backed rm0 ~addr:shared_base ~len:(seg_pages * page);
    let seg_slabs =
      Resource_manager.slabs rm0
      |> List.filter (fun s ->
             s.Slab.vaddr >= shared_base && s.Slab.vaddr < shared_base + seg_len)
      |> List.sort (fun a b -> compare a.Slab.vaddr b.Slab.vaddr)
    in
    for i = 1 to n - 1 do
      Resource_manager.map_foreign
        (Runtime.resource_manager runtimes.(i))
        ~at:shared_base seg_slabs
    done;
    (* demand fetches of segment pages register the fetching tenant as a
       sharer with the rack directory *)
    Array.iteri
      (fun i rt ->
        Runtime.set_on_fetch rt (fun ~vpage ->
            if in_seg vpage then begin
              incr sharer_fills;
              Directory.on_fill ~sharer:i rack_dir ~line:(vpage - seg_first)
                ~write:false
            end))
      runtimes;
    (* the publisher's dirty evictions recall every remote reader; the
       recall is priced as a background control message that contends at
       the page's home node *)
    Runtime.set_on_evict runtimes.(0) (fun ~vpage ~dirty ->
        if dirty && in_seg vpage then
          let line = vpage - seg_first in
          let sharers = Directory.snoop_sharers rack_dir ~line in
          List.iter
            (fun s ->
              if s <> 0 then begin
                incr invalidations_sent;
                match Resource_manager.translate rm0 ~vaddr:(vpage * page) with
                | Some (node, _) ->
                    Runtime.post_bg_message runtimes.(0) ~node ~len:Units.cache_line
                      ~deliver:(fun () ->
                        Runtime.invalidate_page runtimes.(s) ~vpage)
                | None -> ()
              end)
            sharers)
  end;
  (* -------- rack-level telemetry -------- *)
  let reg = Hub.registry hub in
  Array.iteri
    (fun j w ->
      let labels = [ ("node", string_of_int j) ] in
      Registry.counter_fn reg ~labels "rack.node.admits" (fun () ->
          Wfq.total_admits w);
      Registry.counter_fn reg ~labels "rack.node.saturated_admits" (fun () ->
          Wfq.saturated_admits w);
      Registry.gauge_fn reg ~labels "rack.node.peak_backlog_ns" (fun () ->
          Wfq.peak_backlog_ns w))
    wfq;
  Array.iteri
    (fun i tc ->
      let labels = [ ("tenant", tc.name) ] in
      let sum f = Array.fold_left (fun a w -> a + f (Wfq.tenant_stats w ~tenant:i)) 0 wfq in
      Registry.gauge_fn reg ~labels "rack.tenant.bw_share" (fun () -> tc.bw_share);
      Registry.counter_fn reg ~labels "rack.tenant.bytes" (fun () ->
          sum (fun s -> s.Wfq.bytes));
      Registry.counter_fn reg ~labels "rack.tenant.contended_bytes" (fun () ->
          sum (fun s -> s.Wfq.contended_bytes));
      Registry.counter_fn reg ~labels "rack.tenant.delay_ns" (fun () ->
          sum (fun s -> s.Wfq.delay_ns)))
    tenants;
  Registry.counter_fn reg "rack.dir.fills" (fun () -> Directory.fills rack_dir);
  Registry.counter_fn reg "rack.dir.snoops" (fun () -> Directory.snoops rack_dir);
  Registry.counter_fn reg "rack.sharer_fills" (fun () -> !sharer_fills);
  Registry.counter_fn reg "rack.invalidations_sent" (fun () -> !invalidations_sent);
  Registry.counter_fn reg "rack.shared.writes" (fun () -> !shared_writes);
  Registry.counter_fn reg "rack.shared.reads" (fun () -> !shared_reads);
  (* -------- weave synthetic shared ops into each tenant's trace -------- *)
  let steps =
    Array.mapi
      (fun i trace ->
        let len = Array.length trace in
        if seg_pages = 0 || cfg.shared_ops = 0 || len = 0 || n < 2 then
          Array.map (fun e -> App e) trace
        else begin
          let stride = max 1 (len / cfg.shared_ops) in
          let out = ref [] and k = ref 0 in
          Array.iteri
            (fun j e ->
              out := App e :: !out;
              if (j + 1) mod stride = 0 && !k < cfg.shared_ops then begin
                out := (if i = 0 then Shared_write !k else Shared_read !k) :: !out;
                incr k
              end)
            trace;
          Array.of_list (List.rev !out)
        end)
      traces
  in
  (* -------- deterministic interleaved replay -------- *)
  let exec_step i = function
    | App ev -> Runtime.sink runtimes.(i) ev
    | Shared_write k ->
        incr shared_writes;
        let p = k mod seg_pages in
        Bytes.fill seg (p * page) Units.cache_line
          (Char.chr (((k * 37) + 1) land 0xff));
        Runtime.sink runtimes.(i)
          (Access.write ~addr:(shared_base + (p * page)) ~len:Units.cache_line);
        Directory.on_fill ~sharer:0 rack_dir ~line:p ~write:true
    | Shared_read k ->
        incr shared_reads;
        let p = k mod seg_pages in
        Runtime.sink runtimes.(i)
          (Access.read ~addr:(shared_base + (p * page)) ~len:Units.cache_line)
  in
  let lens = Array.map Array.length steps in
  let pos = Array.make n 0 in
  let remaining = ref (Array.fold_left ( + ) 0 lens) in
  while !remaining > 0 do
    (* always step the tenant whose virtual clock is furthest behind *)
    let best = ref (-1) and best_ns = ref max_int in
    for i = 0 to n - 1 do
      if pos.(i) < lens.(i) then begin
        let e = Runtime.elapsed_ns runtimes.(i) in
        if e < !best_ns then begin
          best := i;
          best_ns := e
        end
      end
    done;
    let i = !best in
    let budget = ref cfg.quantum in
    while !budget > 0 && pos.(i) < lens.(i) do
      exec_step i steps.(i).(pos.(i));
      pos.(i) <- pos.(i) + 1;
      decr budget;
      decr remaining
    done
  done;
  Array.iter Runtime.drain runtimes;
  (* -------- per-tenant divergence oracle and results -------- *)
  let tenant_result i =
    let tc = tenants.(i) in
    let rt = runtimes.(i) in
    let heap = heaps.(i) in
    let unrepairable = Runtime.unrepairable_pages rt in
    let mismatches = ref 0 and lost = ref 0 in
    Resource_manager.iter_backed_pages (Runtime.resource_manager rt)
      (fun ~vpage ~node ~remote_addr ->
        let base = vpage * page in
        let private_page =
          base + page <= Heap.capacity heap
          && not (Heap.page_poked heap ~page:vpage)
        in
        if (private_page || in_seg vpage) && not (List.mem vpage unrepairable)
        then
          match
            Memory_node.peek
              (Rack_controller.node controller ~id:node)
              ~addr:remote_addr ~len:page
          with
          | remote ->
              if remote <> read_locals.(i) ~addr:base ~len:page then
                incr mismatches
          | exception Memory_node.Crashed _ -> incr lost);
    let stats_sum f =
      Array.fold_left (fun a w -> a + f (Wfq.tenant_stats w ~tenant:i)) 0 wfq
    in
    let contended_bytes = stats_sum (fun s -> s.Wfq.contended_bytes) in
    let contended_ns = stats_sum (fun s -> s.Wfq.contended_ns) in
    let snap =
      Registry.snapshot
        (Registry.scoped (Hub.registry hub)
           ~prefix:(Printf.sprintf "tenant.%d." i))
    in
    {
      t_cfg = tc;
      t_accesses = lens.(i);
      t_app_ns = Runtime.app_ns rt;
      t_bg_ns = Runtime.bg_ns rt;
      t_elapsed_ns = Runtime.elapsed_ns rt;
      t_admitted_bytes = stats_sum (fun s -> s.Wfq.bytes);
      t_contended_bytes = contended_bytes;
      t_delay_ns = stats_sum (fun s -> s.Wfq.delay_ns);
      t_achieved_gbps =
        (if contended_ns = 0 then 0.0
         else 8.0 *. float_of_int contended_bytes /. float_of_int contended_ns);
      t_invalidations = Runtime.invalidations_received rt;
      t_mismatches = !mismatches;
      t_lost_pages = !lost;
      t_degraded = Runtime.degraded rt;
      t_fingerprint = Json.to_string (Snapshot.to_json snap);
      t_snapshot = snap;
    }
  in
  let r_tenants = Array.init n tenant_result in
  {
    r_tenants;
    r_elapsed_ns =
      Array.fold_left (fun a r -> max a r.t_elapsed_ns) 0 r_tenants;
    r_total_admits = Array.fold_left (fun a w -> a + Wfq.total_admits w) 0 wfq;
    r_saturated_admits =
      Array.fold_left (fun a w -> a + Wfq.saturated_admits w) 0 wfq;
    r_snoops = Directory.snoops rack_dir;
    r_invalidations_sent = !invalidations_sent;
    r_shared_writes = !shared_writes;
    r_shared_reads = !shared_reads;
    r_node_crashes =
      Array.fold_left (fun a rt -> a + Runtime.node_crashes rt) 0 runtimes;
    r_snapshot = Hub.snapshot hub;
  }
