module Units = Kona_util.Units
module Histogram = Kona_util.Histogram
module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Access = Kona_trace.Access
module Hub = Kona_telemetry.Hub
module Registry = Kona_telemetry.Registry
module Snapshot = Kona_telemetry.Snapshot
module Json = Kona_telemetry.Json
module Directory = Kona_coherence.Directory
module Heat = Kona_placement.Heat
module Placement_policy = Kona_placement.Placement_policy
module Migrator = Kona_placement.Migrator
module Recovery = Kona_membership.Recovery
open Kona

type tenant_cfg = {
  name : string;
  workload : string;
  bw_share : int;
  mem_quota : int option;
  seed : int;
}

type config = {
  scale : Workloads.scale;
  nodes : int;
  node_capacity : int;
  node_gbps : float;
  replicas : int;
  faults : Kona_faults.Fault_spec.t;
  fault_seed : int;
  shared_pages : int;
  shared_ops : int;
  shared_writers : int;
  quantum : int;
  policy : string;
  fast_nodes : int;
  slow_extra_ns : int;
  hot_threshold : int;
  migrate_epoch_ns : int;
  migrate_budget : int;
  migrate_share : int;
  ops : Rack_ops.t;
  extra_node_slots : int;
  runtime : Runtime.config;
}

let default_config =
  {
    scale = Workloads.Smoke;
    nodes = 2;
    node_capacity = Units.mib 128;
    node_gbps = 1.0;
    replicas = 0;
    faults = [];
    fault_seed = 42;
    shared_pages = 64;
    shared_ops = 256;
    shared_writers = 1;
    quantum = 256;
    policy = "first-fit";
    fast_nodes = 1;
    slow_extra_ns = 0;
    hot_threshold = 2;
    migrate_epoch_ns = 1_000_000;
    migrate_budget = 32;
    migrate_share = 1;
    ops = [];
    extra_node_slots = 0;
    runtime = Runtime.default_config;
  }

type tenant_result = {
  t_cfg : tenant_cfg;
  t_accesses : int;
  t_app_ns : int;
  t_bg_ns : int;
  t_elapsed_ns : int;
  t_admitted_bytes : int;
  t_contended_bytes : int;
  t_delay_ns : int;
  t_achieved_gbps : float;
  t_invalidations : int;
  t_mismatches : int;
  t_lost_pages : int;
  t_degraded : string option;
  t_fingerprint : string;
  t_snapshot : Snapshot.t;
}

type result = {
  r_tenants : tenant_result array;
  r_elapsed_ns : int;
  r_total_admits : int;
  r_saturated_admits : int;
  r_snoops : int;
  r_invalidations_sent : int;
  r_shared_writes : int;
  r_shared_reads : int;
  r_handoffs : int;
  r_owner_changes : int;
  r_coh_invalidations : int;
  r_node_crashes : int;
  r_policy : string;
  r_migrations : int;
  r_bytes_moved : int;
  r_failed_moves : int;
  r_migrator_delay_ns : int;
  r_fetches : int;
  r_fetches_fast : int;
  r_remote_hit_pml : int;
  r_hot_hit_pml : int;
  r_drained_pages : int;
  r_drain_failures : int;
  r_ops_applied : int;
  r_snapshot : Snapshot.t;
}

(* The published segment lives at 1 GiB: far above any scaled-down heap
   (tens of MiB) and aligned for every slab size in use. *)
let shared_base = 1 lsl 30

(* One replay step: a recorded application access, or a synthetic
   shared-segment operation (the publisher writes, readers read). *)
type step = App of Access.t | Shared_write of int | Shared_read of int

(* A paused rack simulation: [start] builds the fabric and recorded
   traces, [e_step] advances one scheduling slice, [e_finish] drains and
   runs the oracles.  The op closures are the scenario engine's adapters;
   the data fields are its invariant accessors. *)
type engine = {
  e_tenants : tenant_cfg array;
  e_controller : Rack_controller.t;
  e_runtimes : Runtime.t array;
  e_wfq : Wfq.t array;
  e_weights : int array;
  e_node_count : int ref;
  e_fast_nodes : int;
  e_drained_pages : int ref;
  e_drain_failures : int ref;
  e_recovery : Recovery.t;
  e_now : unit -> int;
  e_step : unit -> int;
  e_finish : unit -> result;
  e_apply : Rack_ops.op -> unit;
  e_publish : pages:int -> unit;
  e_shared_round : unit -> unit;
  e_shared_access :
    tenant:int -> line:int -> write:bool -> payload:char option -> unit;
  e_mw_round : unit -> unit;
  e_enable_mw : unit -> unit;
  e_mw_dir : Directory.t;
  e_coherence_audit : unit -> string list;
  e_shared_divergence : unit -> int;
  e_flush : unit -> unit;
  e_migrate : unit -> unit;
}

let validate cfg tenants =
  if tenants = [] then invalid_arg "Rack.run: no tenants";
  if cfg.nodes < 1 then invalid_arg "Rack.run: need at least one node";
  if cfg.shared_pages < 0 || cfg.shared_ops < 0 then
    invalid_arg "Rack.run: negative shared-segment parameters";
  if cfg.quantum < 1 then invalid_arg "Rack.run: quantum must be positive";
  if cfg.shared_writers < 1 then
    invalid_arg "Rack.run: shared_writers must be >= 1";
  (match Placement_policy.find cfg.policy with
  | (_ : Placement_policy.t) -> ()
  | exception Invalid_argument msg -> invalid_arg ("Rack.run: " ^ msg));
  let adds =
    List.length
      (List.filter
         (fun c -> match c.Rack_ops.op with Rack_ops.Add_node _ -> true | _ -> false)
         cfg.ops)
  in
  if cfg.fast_nodes < 0 || cfg.fast_nodes > cfg.nodes + adds then
    invalid_arg "Rack.run: fast_nodes out of range";
  if cfg.slow_extra_ns < 0 then invalid_arg "Rack.run: negative slow_extra_ns";
  if cfg.hot_threshold < 1 then invalid_arg "Rack.run: hot_threshold must be >= 1";
  if cfg.migrate_epoch_ns < 1 || cfg.migrate_budget < 1 || cfg.migrate_share < 1
  then invalid_arg "Rack.run: migration parameters must be positive";
  List.iter
    (fun c ->
      match c.Rack_ops.op with
      | Rack_ops.Drain { id } ->
          if id < 0 || id >= cfg.nodes + adds then
            invalid_arg (Printf.sprintf "Rack.run: drain of unknown node %d" id)
      | Rack_ops.Add_node _ | Rack_ops.Rebalance -> ())
    cfg.ops;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun tc ->
      if tc.bw_share < 1 then
        invalid_arg
          (Printf.sprintf "Rack.run: tenant %s: bw_share must be >= 1" tc.name);
      if Hashtbl.mem seen tc.name then
        invalid_arg (Printf.sprintf "Rack.run: duplicate tenant name %s" tc.name);
      Hashtbl.add seen tc.name ();
      match Workloads.find tc.workload with
      | _ -> ()
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf "Rack.run: tenant %s: unknown workload %s" tc.name
               tc.workload))
    tenants

let start cfg tenants =
  validate cfg tenants;
  let tenants = Array.of_list tenants in
  let n = Array.length tenants in
  let page = Units.page_size in
  (* Shared-segment state is mutable so publication can happen either up
     front ([cfg.shared_pages > 0], the historical path) or later through
     the [publish] engine adapter (scenario ops). *)
  let seg_pages = ref 0 in
  let seg = ref Bytes.empty in
  let seg_first = shared_base / page in
  let in_seg vpage =
    !seg_pages > 0 && vpage >= seg_first && vpage < seg_first + !seg_pages
  in
  (* -------- rack fabric: controller, nodes, quotas, schedulers -------- *)
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  for id = 0 to cfg.nodes - 1 do
    Rack_controller.register_node controller
      (Memory_node.create ~id ~capacity:cfg.node_capacity)
  done;
  Array.iter
    (fun tc ->
      match tc.mem_quota with
      | Some bytes -> Rack_controller.set_quota controller ~tenant:tc.name ~bytes
      | None -> ())
    tenants;
  (* The migrator is an extra WFQ weight slot (index [n]) at every node:
     its copies queue behind tenant traffic and tenant traffic queues
     behind its copies.  Idle slots never back-log, so a policy that
     never migrates leaves the schedule bit-identical. *)
  let weights =
    Array.append (Array.map (fun tc -> tc.bw_share) tenants)
      [| cfg.migrate_share |]
  in
  (* Nodes added by scheduled ops get ids [cfg.nodes ..]; their
     schedulers exist from the start (idle until registration). *)
  let adds =
    List.length
      (List.filter
         (fun c -> match c.Rack_ops.op with Rack_ops.Add_node _ -> true | _ -> false)
         cfg.ops)
  in
  let max_nodes = cfg.nodes + adds + max 0 cfg.extra_node_slots in
  let wfq =
    Array.init max_nodes (fun _ -> Wfq.create ~gbps:cfg.node_gbps ~weights)
  in
  let node_count = ref cfg.nodes in
  let policy =
    match cfg.policy with
    | "heat" -> Placement_policy.heat_aware ~hot_threshold:cfg.hot_threshold ()
    | name -> Placement_policy.find name
  in
  let node_infos () =
    let rec go id acc =
      if id < 0 then acc
      else
        let store = Rack_controller.node controller ~id in
        let acc =
          if Memory_node.alive store then
            {
              Placement_policy.ni_node = id;
              ni_fast = id < cfg.fast_nodes;
              ni_free = Memory_node.free_bytes store;
              ni_capacity = Memory_node.capacity store;
              ni_draining = Rack_controller.draining controller ~id;
            }
            :: acc
          else acc
        in
        go (id - 1) acc
    in
    go (!node_count - 1) []
  in
  let tenant_index = Hashtbl.create 8 in
  Array.iteri (fun i tc -> Hashtbl.add tenant_index tc.name i) tenants;
  (* first-fit must reproduce the pre-placement allocator exactly, so
     only the other policies install the controller hook. *)
  if policy.Placement_policy.name <> "first-fit" then
    Rack_controller.set_placement controller (fun ~vaddr:_ ~tenant ->
        let ti =
          match tenant with
          | Some name -> (
              match Hashtbl.find_opt tenant_index name with
              | Some i -> i
              | None -> 0)
          | None -> 0
        in
        policy.Placement_policy.choose_node ~nodes:(node_infos ()) ~tenant:ti);
  let hub = Hub.create () in
  (* -------- record every tenant's workload against its own heap -------- *)
  let recorded =
    Array.map
      (fun tc ->
        let spec = Workloads.find tc.workload in
        let acc = ref [] in
        let heap =
          Heap.create
            ~capacity:(spec.Workloads.heap_capacity cfg.scale)
            ~sink:(fun ev -> acc := ev :: !acc)
            ()
        in
        spec.Workloads.run cfg.scale ~heap ~seed:tc.seed;
        (heap, Array.of_list (List.rev !acc)))
      tenants
  in
  let heaps = Array.map fst recorded in
  let traces = Array.map snd recorded in
  let slab = Rack_controller.slab_size controller in
  let read_locals =
    Array.init n (fun i ->
        fun ~addr ~len ->
          if !seg_pages > 0 && addr >= shared_base then
            Bytes.sub_string !seg (addr - shared_base) len
          else Heap.peek_bytes heaps.(i) addr len)
  in
  (* -------- per-tenant runtimes over the shared fabric -------- *)
  let replication =
    if cfg.replicas > 0 then
      Some (Replication.create ~degree:cfg.replicas ~controller)
    else None
  in
  let runtimes =
    Array.init n (fun i ->
        let tc = tenants.(i) in
        let config =
          {
            cfg.runtime with
            Runtime.tenant = Some tc.name;
            stream_base = i * 1024;
            replicas = cfg.replicas;
            faults = (if i = 0 then cfg.faults else []);
            fault_seed = cfg.fault_seed;
            (* Exactly one membership authority per rack: tenant 0 leases
               the nodes and triggers failover; the others learn of it
               through the fencing-epoch broadcast below.  Two detectors
               would race to promote different mirrors for one slot. *)
            heartbeat_ns =
              (if i = 0 then cfg.runtime.Runtime.heartbeat_ns else None);
          }
        in
        let arbitrate ~node ~op:_ ~len ~now =
          match node with
          | Some id when id >= 0 && id < max_nodes ->
              (* Two latency tiers: nodes past [fast_nodes] pay a fixed
                 fabric penalty on top of WFQ queueing — what the heat
                 policy optimizes against. *)
              Wfq.admit wfq.(id) ~tenant:i ~bytes:len ~now
              + (if id >= cfg.fast_nodes then cfg.slow_extra_ns else 0)
          | _ -> 0
        in
        Runtime.create ~config
          ~hub:(Hub.scoped hub ~prefix:(Printf.sprintf "tenant.%d." i))
          ~arbitrate ?replication ~controller
          ~read_local:read_locals.(i) ())
  in
  (* A fencing epoch minted by any tenant's failover is rack-global: every
     tenant's CL-log sender must restamp at the new epoch, or its next
     flush to the displaced store would be applied rather than rejected.
     Adoption is a monotone no-op on the minter itself. *)
  Array.iter
    (fun rt ->
      Runtime.set_on_fence rt (fun ~epoch ->
          Array.iter
            (fun rt' -> Runtime.adopt_fencing_epoch rt' ~epoch)
            runtimes))
    runtimes;
  (* Rack-level recovery queue: drain re-homing runs here as a resumable
     task (a bounded batch of pages per engine step), so a crash or
     partition landing mid-drain interleaves with it instead of waiting
     behind a synchronous copy loop.  [finish] pumps it to idle. *)
  let rack_recovery = Recovery.create () in
  let partitions_over = ref false in
  (* -------- shared segment: tenant 0 publishes, the rest map -------- *)
  let rack_dir = Directory.create () in
  let invalidations_sent = ref 0 in
  let shared_writes = ref 0 in
  let shared_reads = ref 0 in
  let sharer_fills = ref 0 in
  let seg_fill = ref (fun (_ : int) (_ : int) -> ()) in
  let seg_recall = ref (fun (_ : int) -> ()) in
  (* Publish a shared segment: tenant 0 backs it, everyone else maps it
     foreign.  Runs at start when [cfg.shared_pages > 0], or mid-run via
     the engine adapter; a second publication is a no-op. *)
  let publish ~pages =
    if pages > 0 && !seg_pages = 0 then begin
      seg_pages := pages;
      (* Segment store: rounded up to slab granularity so the publisher's
         backing slabs are fully representable in the buffer.  Zero-
         filled, matching the memory nodes' stores: the divergence oracle
         compares whole pages, including bytes no woven op ever writes. *)
      let seg_len = ((pages * page) + slab - 1) / slab * slab in
      seg := Bytes.make seg_len '\000';
      let rm0 = Runtime.resource_manager runtimes.(0) in
      Resource_manager.ensure_backed rm0 ~addr:shared_base ~len:(pages * page);
      let seg_slabs =
        Resource_manager.slabs rm0
        |> List.filter (fun s ->
               s.Slab.vaddr >= shared_base && s.Slab.vaddr < shared_base + seg_len)
        |> List.sort (fun a b -> compare a.Slab.vaddr b.Slab.vaddr)
      in
      for i = 1 to n - 1 do
        Resource_manager.map_foreign
          (Runtime.resource_manager runtimes.(i))
          ~at:shared_base seg_slabs
      done;
      (* demand fetches of segment pages register the fetching tenant as a
         sharer with the rack directory *)
      seg_fill :=
        (fun i vpage ->
          if in_seg vpage then begin
            incr sharer_fills;
            Directory.on_fill ~sharer:i rack_dir ~line:(vpage - seg_first)
              ~write:false
          end);
      (* the publisher's dirty evictions recall every remote reader; the
         recall is priced as a background control message that contends at
         the page's home node *)
      seg_recall :=
        (fun vpage ->
          if in_seg vpage then
            let line = vpage - seg_first in
            let sharers = Directory.snoop_sharers rack_dir ~line in
            List.iter
              (fun s ->
                if s <> 0 then begin
                  incr invalidations_sent;
                  match Resource_manager.translate rm0 ~vaddr:(vpage * page) with
                  | Some (node, _) ->
                      Runtime.post_bg_message runtimes.(0) ~node ~len:Units.cache_line
                        ~deliver:(fun () ->
                          Runtime.invalidate_page runtimes.(s) ~vpage)
                  | None -> ()
                end)
              sharers)
    end
  in
  if cfg.shared_pages > 0 then publish ~pages:cfg.shared_pages;
  (* -------- multi-writer MSI over the shared segment -------- *)
  (* A second directory at cache-line granularity mediates concurrent
     writers: [mw_dir] tracks granted permissions (not residency), so it
     is driven only by explicit shared-line accesses, never by demand
     fetches.  The read-mostly [rack_dir] above keeps its historical
     byte-identical behavior for single-publisher segments. *)
  let mw_dir = Directory.create () in
  let mw_w = max 1 (min n cfg.shared_writers) in
  let recall_hist = Histogram.create () in
  let payload_char k = Char.chr (((k * 37) + 1) land 0xff) in
  (* Writeback-race resolution: with several writers, two tenants' CL
     logs can carry entries for the same segment line, and cross-log
     delivery order is not capture order — a capacity-evicted copy
     lingering in one log could land {e after} the line's next owner
     already wrote back a newer value.  The home drops exactly those
     stale lines: [!seg] is the coherence-ordered value sequence (every
     capture reads it), so a delivered line is stale iff its bytes no
     longer match.  Installed only in multi-writer mode — the
     single-publisher path never races and stays byte-identical. *)
  let seg_home_off ~node ~addr =
    let rm0 = Runtime.resource_manager runtimes.(0) in
    let rec scan p =
      if p >= !seg_pages then None
      else
        match
          Resource_manager.translate rm0 ~vaddr:((seg_first + p) * page)
        with
        | Some (n', raddr) when n' = node && addr >= raddr && addr < raddr + page
          ->
            Some ((p * page) + (addr - raddr))
        | _ -> scan (p + 1)
    in
    scan 0
  in
  let mw_filter_installed = ref false in
  let enable_mw_coherence () =
    if not !mw_filter_installed then begin
      mw_filter_installed := true;
      Array.iter
        (fun rt ->
          Runtime.set_writeback_filter rt (fun ~node ~addr ~data ->
              match seg_home_off ~node ~addr with
              | Some off ->
                  Bytes.sub_string !seg off (String.length data) <> data
              | None -> false))
        runtimes
    end
  in
  if mw_w > 1 then enable_mw_coherence ();
  (* One coherent access to shared-segment line [line] by [tenant]: the
     home directory grants it, and every copy the grant had to kill is
     recalled as a background control message through the requester's QP —
     it contends at the line's home node's WFQ link, so ownership
     ping-pong shows up in completion latencies.  The recalled holder's
     dirty data rides its own eviction/CL-log path (priced there). *)
  let shared_access ~tenant ~line ~write ~payload =
    if
      !seg_pages > 0 && tenant >= 0 && tenant < n && line >= 0
      && line < !seg_pages * Units.lines_per_page
    then begin
      let off = line * Units.cache_line in
      let vpage = seg_first + (line / Units.lines_per_page) in
      let g = Directory.acquire mw_dir ~line ~tenant ~write in
      let rt = runtimes.(tenant) in
      let rm0 = Runtime.resource_manager runtimes.(0) in
      let recall ~target =
        incr invalidations_sent;
        match Resource_manager.translate rm0 ~vaddr:(vpage * page) with
        | Some (node, _) ->
            let t0 = Runtime.elapsed_ns rt in
            Runtime.post_bg_message rt ~node ~len:Units.cache_line
              ~deliver:(fun () ->
                Histogram.add recall_hist (max 0 (Runtime.elapsed_ns rt - t0));
                Runtime.invalidate_page runtimes.(target) ~vpage)
        | None -> ()
      in
      (match g.Directory.g_peer with
      | Some o when o <> tenant -> recall ~target:o
      | Some _ | None -> ());
      List.iter
        (fun s -> if s <> tenant then recall ~target:s)
        g.Directory.g_invalidated;
      (match payload with
      | Some c -> Bytes.fill !seg off Units.cache_line c
      | None -> ());
      Runtime.sink rt
        (if write then Access.write ~addr:(shared_base + off) ~len:Units.cache_line
         else Access.read ~addr:(shared_base + off) ~len:Units.cache_line);
      true
    end
    else false
  in
  (* -------- heat feed and fetch attribution -------- *)
  (* Anything at or above the shared base belongs to the published
     segment's slabs (including slab-rounding slack that readers map
     foreign); the migrator leaves that whole range alone — only drain
     re-homes it, remapping owner and readers together. *)
  let in_seg_range vpage = !seg_pages > 0 && vpage >= seg_first in
  let heats = Array.init n (fun _ -> Heat.create ~epoch_ns:cfg.migrate_epoch_ns) in
  let fetch_total = ref 0 and fetch_fast = ref 0 in
  let hot_total = ref 0 and hot_fast = ref 0 in
  Array.iteri
    (fun i rt ->
      let rm = Runtime.resource_manager rt in
      Runtime.set_on_fetch rt (fun ~vpage ->
          let now = Runtime.elapsed_ns rt in
          Heat.touch heats.(i) ~vpage ~weight:2 ~now;
          incr fetch_total;
          let hot = Heat.heat heats.(i) ~vpage ~now >= cfg.hot_threshold in
          if hot then incr hot_total;
          (match Resource_manager.translate rm ~vaddr:(vpage * page) with
          | Some (node, _) when node < cfg.fast_nodes ->
              incr fetch_fast;
              if hot then incr hot_fast
          | _ -> ());
          !seg_fill i vpage);
      Runtime.set_on_evict rt (fun ~vpage ~dirty ->
          Heat.touch heats.(i) ~vpage ~weight:1 ~now:(Runtime.elapsed_ns rt);
          if i = 0 && dirty then !seg_recall vpage))
    runtimes;
  (* -------- migration machinery -------- *)
  let flush_all_logs () = Array.iter Runtime.flush_log runtimes in
  (* Read one page, preferring the (possibly failed-over) primary and
     falling back to any live replica; a copy whose lines fail their
     at-rest CRCs is not a migration source — the scrubber owns it. *)
  let read_page_bytes ~node ~addr =
    let try_store s =
      if not (Memory_node.alive s) then None
      else if Memory_node.verify_range s ~addr ~len:page <> [] then None
      else
        match Memory_node.peek s ~addr ~len:page with
        | data -> Some data
        | exception Memory_node.Crashed _ -> None
    in
    match try_store (Rack_controller.node controller ~id:node) with
    | Some data -> Some data
    | None -> (
        match replication with
        | None -> None
        | Some r ->
            List.fold_left
              (fun acc s -> match acc with Some _ -> acc | None -> try_store s)
              None
              (Replication.live_copies r ~controller ~node))
  in
  (* Land the page at its new home: primary plus the home's mirrors (at
     the same offset), so post-move CL-log replication stays coherent.
     Reserves bypass the controller's quota path on purpose — migration
     relocates a tenant's bytes, it doesn't grant more. *)
  let place_page ~dst ~data =
    let store = Rack_controller.node controller ~id:dst in
    if (not (Memory_node.alive store)) || Memory_node.free_bytes store < page
    then None
    else begin
      let addr = Memory_node.reserve store ~size:page in
      Memory_node.write store ~addr ~data;
      (match replication with
      | Some r ->
          List.iter
            (fun m -> if Memory_node.alive m then Memory_node.write m ~addr ~data)
            (Replication.targets r ~node:dst)
      | None -> ());
      Some addr
    end
  in
  let page_infos ~now =
    let acc = ref [] in
    Array.iteri
      (fun i rt ->
        Resource_manager.iter_backed_pages (Runtime.resource_manager rt)
          (fun ~vpage ~node ~remote_addr:_ ->
            if not (in_seg_range vpage) then
              acc :=
                {
                  Placement_policy.pi_vpage = vpage;
                  pi_tenant = i;
                  pi_node = node;
                  pi_heat = Heat.heat heats.(i) ~vpage ~now;
                }
                :: !acc))
      runtimes;
    List.sort
      (fun a b ->
        if a.Placement_policy.pi_heat <> b.Placement_policy.pi_heat then
          compare b.Placement_policy.pi_heat a.Placement_policy.pi_heat
        else
          compare
            (a.Placement_policy.pi_tenant, a.Placement_policy.pi_vpage)
            (b.Placement_policy.pi_tenant, b.Placement_policy.pi_vpage))
      !acc
  in
  let charge ~node ~bytes ~now = Wfq.admit wfq.(node) ~tenant:n ~bytes ~now in
  let move_page mv =
    let { Placement_policy.mv_tenant = ti; mv_vpage = vpage; mv_dst = dst } =
      mv
    in
    if in_seg_range vpage then None
    else
      let rt = runtimes.(ti) in
      let rm = Runtime.resource_manager rt in
      match Resource_manager.translate rm ~vaddr:(vpage * page) with
      | None -> None
      | Some (src, _) when src = dst -> None
      | Some (src, src_addr) -> (
          match read_page_bytes ~node:src ~addr:src_addr with
          | None -> None
          | Some data -> (
              match place_page ~dst ~data with
              | None -> None
              | Some dst_addr ->
                  Runtime.remap_page rt ~vpage ~node:dst ~remote_addr:dst_addr;
                  Some src))
  in
  let migrator =
    Migrator.create ~policy ~epoch_ns:cfg.migrate_epoch_ns
      ~budget:cfg.migrate_budget ~page_bytes:page
      {
        Migrator.nodes = node_infos;
        pages = page_infos;
        flush_logs = flush_all_logs;
        move_page;
        charge;
      }
  in
  (* -------- scheduled rack ops: add / drain / rebalance -------- *)
  let op_moves = ref 0 and op_failed = ref 0 in
  let drained_pages = ref 0 and drain_failures = ref 0 in
  let ops_applied = ref 0 in
  let exec_add ~capacity =
    (* Every node id needs its WFQ slot (pre-created from [cfg.ops] adds
       plus [extra_node_slots]); an add past the last slot is refused. *)
    if !node_count < max_nodes then begin
      let id = !node_count in
      Rack_controller.register_node controller
        (Memory_node.create ~id ~capacity);
      incr node_count;
      (* satellite 1: ids are minted by the controller's registry (this
         [id] is [!node_count], disjoint from failover's fresh-mirror ids
         minted via [Rack_controller.mint_backing_id]); the membership
         authority starts leasing the new node immediately *)
      Runtime.track_node runtimes.(0) ~id
    end
  in
  (* Most-free live non-draining node (node_infos ascending: ties break
     toward the lower id). *)
  let choose_rehome () =
    List.fold_left
      (fun best ni ->
        if ni.Placement_policy.ni_draining || ni.Placement_policy.ni_free < page
        then best
        else
          match best with
          | None -> Some ni
          | Some b ->
              if ni.Placement_policy.ni_free > b.Placement_policy.ni_free then
                Some ni
              else best)
      None (node_infos ())
  in
  (* Re-home one drain victim now; [false] only when the victim was
     already moved out from under us (migration or an earlier overlapping
     drain) — neither a drained page nor a failure. *)
  let drain_one ~now id (_, vpage, addr) =
    let still_homed =
      Array.exists
        (fun rt ->
          match
            Resource_manager.translate
              (Runtime.resource_manager rt)
              ~vaddr:(vpage * page)
          with
          | Some (node', addr') -> node' = id && addr' = addr
          | None -> false)
        runtimes
    in
    if not still_homed then false
    else begin
      (match read_page_bytes ~node:id ~addr with
      | None -> incr drain_failures
      | Some data -> (
          match choose_rehome () with
          | None -> incr drain_failures
          | Some ni -> (
              let dst = ni.Placement_policy.ni_node in
              match place_page ~dst ~data with
              | None -> incr drain_failures
              | Some dst_addr ->
                  (* retarget the owner and every foreign mapping that
                     still points at the drained copy *)
                  Array.iter
                    (fun rt ->
                      let rm = Runtime.resource_manager rt in
                      match
                        Resource_manager.translate rm ~vaddr:(vpage * page)
                      with
                      | Some (node', addr') when node' = id && addr' = addr ->
                          Resource_manager.remap_page rm ~vpage ~node:dst
                            ~remote_addr:dst_addr
                      | _ -> ())
                    runtimes;
                  incr drained_pages;
                  ignore (charge ~node:id ~bytes:page ~now);
                  ignore (charge ~node:dst ~bytes:page ~now))));
      true
    end
  in
  let drain_pages_per_step = 16 in
  let exec_drain ~now:_ id =
    let name = Printf.sprintf "drain:%d" id in
    (* an overlapping drain of the same node would double-move the pages
       the pending task hasn't reached yet *)
    if not (List.mem name (Recovery.pending rack_recovery)) then begin
      Rack_controller.set_draining controller ~id true;
      flush_all_logs ();
      (* Every owned page still homed on the node; a crashed-and-failed-
         over node drains from its promoted mirror (the controller's
         backing for [id]), or any live replica.  Victims are frozen now;
         each step revalidates its batch against the live translations. *)
      let victims = ref [] in
      Array.iteri
        (fun i rt ->
          Resource_manager.iter_backed_pages (Runtime.resource_manager rt)
            (fun ~vpage ~node ~remote_addr ->
              if node = id then victims := (i, vpage, remote_addr) :: !victims))
        runtimes;
      let todo = ref (List.sort compare !victims) in
      ignore
        (Recovery.enqueue rack_recovery ~name (fun ~now ->
             if !todo = [] then `Done
             else if
               (* the drained node is inside a partition window: its pages
                  are unreadable until the links heal, so the task parks
                  (resumable, not failed) — [finish] lifts the block along
                  with the runtimes' own deferred-delivery flush *)
               (not !partitions_over)
               && Runtime.partition_active runtimes.(0) ~id
             then `Again
             else begin
               (* fence before copying: lines staged since the previous
                  step (slices interleave with drain) still target the
                  old home — ship them so the batch reads fresh bytes,
                  while evictions of already-re-homed pages translate to
                  the new home on their own *)
               flush_all_logs ();
               let budget = ref drain_pages_per_step in
               while !budget > 0 && !todo <> [] do
                 (match !todo with
                 | [] -> ()
                 | v :: rest ->
                     todo := rest;
                     ignore (drain_one ~now id v));
                 decr budget
               done;
               if !todo = [] then `Done else `Again
             end))
    end
  in
  let exec_rebalance ~now =
    flush_all_logs ();
    let balance = Placement_policy.centralized () in
    List.iter
      (fun mv ->
        match move_page mv with
        | None -> incr op_failed
        | Some src ->
            incr op_moves;
            ignore (charge ~node:src ~bytes:page ~now);
            ignore
              (charge ~node:mv.Placement_policy.mv_dst ~bytes:page ~now))
      (balance.Placement_policy.plan ~nodes:(node_infos ())
         ~pages:(page_infos ~now) ~budget:cfg.migrate_budget)
  in
  let pending_ops =
    ref
      (List.stable_sort
         (fun a b -> compare a.Rack_ops.at_ns b.Rack_ops.at_ns)
         cfg.ops)
  in
  let fire_ops ~now =
    match !pending_ops with
    | [] -> ()
    | _ ->
        let due, rest =
          List.partition (fun c -> c.Rack_ops.at_ns <= now) !pending_ops
        in
        pending_ops := rest;
        List.iter
          (fun c ->
            incr ops_applied;
            match c.Rack_ops.op with
            | Rack_ops.Add_node { capacity } ->
                exec_add
                  ~capacity:(Option.value capacity ~default:cfg.node_capacity)
            | Rack_ops.Drain { id } -> exec_drain ~now id
            | Rack_ops.Rebalance -> exec_rebalance ~now)
          due
  in
  (* -------- rack-level telemetry -------- *)
  let reg = Hub.registry hub in
  Array.iteri
    (fun j w ->
      let labels = [ ("node", string_of_int j) ] in
      Registry.counter_fn reg ~labels "rack.node.admits" (fun () ->
          Wfq.total_admits w);
      Registry.counter_fn reg ~labels "rack.node.saturated_admits" (fun () ->
          Wfq.saturated_admits w);
      Registry.gauge_fn reg ~labels "rack.node.peak_backlog_ns" (fun () ->
          Wfq.peak_backlog_ns w))
    wfq;
  Array.iteri
    (fun i tc ->
      let labels = [ ("tenant", tc.name) ] in
      let sum f = Array.fold_left (fun a w -> a + f (Wfq.tenant_stats w ~tenant:i)) 0 wfq in
      Registry.gauge_fn reg ~labels "rack.tenant.bw_share" (fun () -> tc.bw_share);
      Registry.counter_fn reg ~labels "rack.tenant.bytes" (fun () ->
          sum (fun s -> s.Wfq.bytes));
      Registry.counter_fn reg ~labels "rack.tenant.contended_bytes" (fun () ->
          sum (fun s -> s.Wfq.contended_bytes));
      Registry.counter_fn reg ~labels "rack.tenant.delay_ns" (fun () ->
          sum (fun s -> s.Wfq.delay_ns)))
    tenants;
  Registry.counter_fn reg "rack.dir.fills" (fun () -> Directory.fills rack_dir);
  Registry.counter_fn reg "rack.dir.snoops" (fun () -> Directory.snoops rack_dir);
  Registry.counter_fn reg "rack.sharer_fills" (fun () -> !sharer_fills);
  Registry.counter_fn reg "rack.invalidations_sent" (fun () -> !invalidations_sent);
  Registry.counter_fn reg "rack.shared.writes" (fun () -> !shared_writes);
  Registry.counter_fn reg "rack.shared.reads" (fun () -> !shared_reads);
  Registry.counter_fn reg "coherence.handoffs" (fun () ->
      Directory.handoffs mw_dir);
  Registry.counter_fn reg "coherence.invalidations" (fun () ->
      Directory.invalidations mw_dir);
  Registry.counter_fn reg "coherence.owner_changes" (fun () ->
      Directory.owner_changes mw_dir);
  Registry.histogram_ref reg "coherence.recall_ns" recall_hist;
  let total_moves () = Migrator.migrations migrator + !op_moves in
  let permille num den = if den = 0 then 0 else num * 1000 / den in
  Registry.counter_fn reg "placement.migrations" (fun () -> total_moves ());
  Registry.counter_fn reg "placement.bytes_moved" (fun () ->
      Migrator.bytes_moved migrator + ((!op_moves + !drained_pages) * page));
  Registry.counter_fn reg "placement.failed_moves" (fun () ->
      Migrator.failed migrator + !op_failed);
  Registry.counter_fn reg "placement.remaps" (fun () ->
      Array.fold_left
        (fun a rt -> a + Resource_manager.remaps (Runtime.resource_manager rt))
        0 runtimes);
  Registry.counter_fn reg "placement.fetches" (fun () -> !fetch_total);
  Registry.counter_fn reg "placement.fetches_fast" (fun () -> !fetch_fast);
  (* permille of demand fetches served by the slow tier — the number the
     heat policy exists to push down *)
  Registry.gauge_fn reg "placement.remote_hit_ratio" (fun () ->
      permille (!fetch_total - !fetch_fast) !fetch_total);
  Registry.gauge_fn reg "placement.hot_hit_ratio" (fun () ->
      permille !hot_fast !hot_total);
  Registry.counter_fn reg "placement.drained_pages" (fun () -> !drained_pages);
  Registry.counter_fn reg "placement.drain_failures" (fun () ->
      !drain_failures);
  Registry.counter_fn reg "placement.ops_applied" (fun () -> !ops_applied);
  (* -------- weave synthetic shared ops into each tenant's trace -------- *)
  let steps =
    Array.mapi
      (fun i trace ->
        let len = Array.length trace in
        if cfg.shared_pages = 0 || cfg.shared_ops = 0 || len = 0 || n < 2 then
          Array.map (fun e -> App e) trace
        else begin
          let stride = max 1 (len / cfg.shared_ops) in
          let out = ref [] and k = ref 0 in
          Array.iteri
            (fun j e ->
              out := App e :: !out;
              if (j + 1) mod stride = 0 && !k < cfg.shared_ops then begin
                (* op k's writer rotates over the first [mw_w] tenants;
                   with one writer this is exactly the historical
                   publisher/reader weave *)
                out :=
                  (if !k mod mw_w = i then Shared_write !k else Shared_read !k)
                  :: !out;
                incr k
              end)
            trace;
          Array.of_list (List.rev !out)
        end)
      traces
  in
  (* -------- deterministic interleaved replay -------- *)
  let exec_step i = function
    | App ev -> Runtime.sink runtimes.(i) ev
    | Shared_write k ->
        incr shared_writes;
        let p = k mod !seg_pages in
        if mw_w > 1 then
          ignore
            (shared_access ~tenant:i ~line:(p * Units.lines_per_page)
               ~write:true ~payload:(Some (payload_char k)))
        else begin
          Bytes.fill !seg (p * page) Units.cache_line (payload_char k);
          Runtime.sink runtimes.(i)
            (Access.write ~addr:(shared_base + (p * page)) ~len:Units.cache_line);
          Directory.on_fill ~sharer:0 rack_dir ~line:p ~write:true
        end
    | Shared_read k ->
        incr shared_reads;
        let p = k mod !seg_pages in
        if mw_w > 1 then
          ignore
            (shared_access ~tenant:i ~line:(p * Units.lines_per_page)
               ~write:false ~payload:None)
        else
          Runtime.sink runtimes.(i)
            (Access.read ~addr:(shared_base + (p * page)) ~len:Units.cache_line)
  in
  let lens = Array.map Array.length steps in
  let pos = Array.make n 0 in
  let remaining = ref (Array.fold_left ( + ) 0 lens) in
  (* One scheduling slice: step the tenant whose virtual clock is
     furthest behind for up to one quantum, then fire due rack ops and
     tick the migrator on that tenant's clock — fully deterministic.
     Returns the number of accesses consumed; 0 = replay exhausted. *)
  let step () =
    if !remaining <= 0 then 0
    else begin
      let best = ref (-1) and best_ns = ref max_int in
      for i = 0 to n - 1 do
        if pos.(i) < lens.(i) then begin
          let e = Runtime.elapsed_ns runtimes.(i) in
          if e < !best_ns then begin
            best := i;
            best_ns := e
          end
        end
      done;
      let i = !best in
      let budget = ref cfg.quantum in
      let consumed = ref 0 in
      while !budget > 0 && pos.(i) < lens.(i) do
        exec_step i steps.(i).(pos.(i));
        pos.(i) <- pos.(i) + 1;
        decr budget;
        decr remaining;
        incr consumed
      done;
      let now = Runtime.elapsed_ns runtimes.(i) in
      fire_ops ~now;
      Migrator.tick migrator ~now;
      (* one bounded recovery step per slice: the rack's drain re-homing
         and each tenant's failover/re-replication tasks make progress
         even for tenants whose replay is already exhausted (their own
         fault polls have stopped) *)
      ignore (Recovery.step rack_recovery ~now);
      Array.iter (fun rt -> ignore (Runtime.step_recovery rt)) runtimes;
      !consumed
    end
  in
  (* -------- per-tenant divergence oracle and results -------- *)
  let tenant_result i =
    let tc = tenants.(i) in
    let rt = runtimes.(i) in
    let heap = heaps.(i) in
    let unrepairable = Runtime.unrepairable_pages rt in
    let mismatches = ref 0 and lost = ref 0 in
    Resource_manager.iter_backed_pages (Runtime.resource_manager rt)
      (fun ~vpage ~node ~remote_addr ->
        let base = vpage * page in
        let private_page =
          base + page <= Heap.capacity heap
          && not (Heap.page_poked heap ~page:vpage)
        in
        if (private_page || in_seg vpage) && not (List.mem vpage unrepairable)
        then
          match
            Memory_node.peek
              (Rack_controller.node controller ~id:node)
              ~addr:remote_addr ~len:page
          with
          | remote ->
              if remote <> read_locals.(i) ~addr:base ~len:page then
                incr mismatches
          | exception Memory_node.Crashed _ -> incr lost);
    let stats_sum f =
      Array.fold_left (fun a w -> a + f (Wfq.tenant_stats w ~tenant:i)) 0 wfq
    in
    let contended_bytes = stats_sum (fun s -> s.Wfq.contended_bytes) in
    let contended_ns = stats_sum (fun s -> s.Wfq.contended_ns) in
    let snap =
      Registry.snapshot
        (Registry.scoped (Hub.registry hub)
           ~prefix:(Printf.sprintf "tenant.%d." i))
    in
    {
      t_cfg = tc;
      t_accesses = lens.(i);
      t_app_ns = Runtime.app_ns rt;
      t_bg_ns = Runtime.bg_ns rt;
      t_elapsed_ns = Runtime.elapsed_ns rt;
      t_admitted_bytes = stats_sum (fun s -> s.Wfq.bytes);
      t_contended_bytes = contended_bytes;
      t_delay_ns = stats_sum (fun s -> s.Wfq.delay_ns);
      t_achieved_gbps =
        (if contended_ns = 0 then 0.0
         else 8.0 *. float_of_int contended_bytes /. float_of_int contended_ns);
      t_invalidations = Runtime.invalidations_received rt;
      t_mismatches = !mismatches;
      t_lost_pages = !lost;
      t_degraded = Runtime.degraded rt;
      t_fingerprint = Json.to_string (Snapshot.to_json snap);
      t_snapshot = snap;
    }
  in
  let finished = ref None in
  let finish () =
    match !finished with
    | Some r -> r
    | None ->
        (* every partition window is over by msync time: the runtimes'
           drains flush their deferred deliveries, and the rack drain
           tasks stop parking on partitioned sources *)
        partitions_over := true;
        Array.iter Runtime.drain runtimes;
        (* ops scheduled past the last replayed access still run (a drain
           must re-home its pages no matter how short the workload was) *)
        fire_ops ~now:max_int;
        (* pump the rack recovery queue dry: a drain interrupted by a
           crash or partition mid-run completes here, after the fault *)
        let final_now =
          Array.fold_left (fun a rt -> max a (Runtime.elapsed_ns rt)) 0 runtimes
        in
        let rec pump () =
          match Recovery.step rack_recovery ~now:final_now with
          | `Idle -> ()
          | `Stepped _ | `Finished _ -> pump ()
        in
        pump ();
        let r_tenants = Array.init n tenant_result in
        let r =
          {
            r_tenants;
            r_elapsed_ns =
              Array.fold_left (fun a r -> max a r.t_elapsed_ns) 0 r_tenants;
            r_total_admits =
              Array.fold_left (fun a w -> a + Wfq.total_admits w) 0 wfq;
            r_saturated_admits =
              Array.fold_left (fun a w -> a + Wfq.saturated_admits w) 0 wfq;
            r_snoops = Directory.snoops rack_dir;
            r_invalidations_sent = !invalidations_sent;
            r_shared_writes = !shared_writes;
            r_shared_reads = !shared_reads;
            r_handoffs = Directory.handoffs mw_dir;
            r_owner_changes = Directory.owner_changes mw_dir;
            r_coh_invalidations = Directory.invalidations mw_dir;
            r_node_crashes =
              Array.fold_left (fun a rt -> a + Runtime.node_crashes rt) 0 runtimes;
            r_policy = policy.Placement_policy.name;
            r_migrations = Migrator.migrations migrator + !op_moves;
            r_bytes_moved =
              Migrator.bytes_moved migrator + ((!op_moves + !drained_pages) * page);
            r_failed_moves = Migrator.failed migrator + !op_failed;
            r_migrator_delay_ns = Migrator.charged_ns migrator;
            r_fetches = !fetch_total;
            r_fetches_fast = !fetch_fast;
            r_remote_hit_pml =
              (if !fetch_total = 0 then 0
               else (!fetch_total - !fetch_fast) * 1000 / !fetch_total);
            r_hot_hit_pml =
              (if !hot_total = 0 then 0 else !hot_fast * 1000 / !hot_total);
            r_drained_pages = !drained_pages;
            r_drain_failures = !drain_failures;
            r_ops_applied = !ops_applied;
            r_snapshot = Hub.snapshot hub;
          }
        in
        finished := Some r;
        r
  in
  let engine_now () =
    Array.fold_left (fun a rt -> max a (Runtime.elapsed_ns rt)) 0 runtimes
  in
  (* Immediate op application for the scenario engine: same executors the
     scheduled-op calendar uses, run at the rack's current virtual time.
     Invalid targets (unknown drain id, add past the last WFQ slot) are
     quietly refused so randomly generated sequences stay total. *)
  let apply_now op =
    let now = engine_now () in
    match op with
    | Rack_ops.Add_node { capacity } ->
        if !node_count < max_nodes then begin
          incr ops_applied;
          exec_add ~capacity:(Option.value capacity ~default:cfg.node_capacity)
        end
    | Rack_ops.Drain { id } ->
        if id >= 0 && id < !node_count then begin
          incr ops_applied;
          exec_drain ~now id
        end
    | Rack_ops.Rebalance ->
        incr ops_applied;
        exec_rebalance ~now
  in
  (* Synthetic shared-segment rounds past the woven ones: ids continue
     where the weave stopped so payload bytes never repeat. *)
  let shared_k = ref cfg.shared_ops in
  let shared_round () =
    if !seg_pages > 0 then begin
      let k = !shared_k in
      incr shared_k;
      exec_step 0 (Shared_write k);
      for i = 1 to n - 1 do
        exec_step i (Shared_read k)
      done
    end
  in
  (* One multi-writer round: op ids share the [shared_k] sequence so
     payload bytes never collide with woven or single-writer rounds; the
     writer rotates over the first [mw_w] tenants, everyone else reads the
     same line — by construction an ownership ping-pong. *)
  let mw_round () =
    if !seg_pages > 0 then begin
      let k = !shared_k in
      incr shared_k;
      let writer = k mod mw_w in
      let line = k mod !seg_pages * Units.lines_per_page in
      incr shared_writes;
      ignore
        (shared_access ~tenant:writer ~line ~write:true
           ~payload:(Some (payload_char k)));
      for i = 0 to n - 1 do
        if i <> writer then begin
          incr shared_reads;
          ignore (shared_access ~tenant:i ~line ~write:false ~payload:None)
        end
      done
    end
  in
  (* The single-owner-per-line invariant: the MSI home table must be
     internally coherent and never grant ownership to a non-tenant. *)
  let coherence_audit () =
    let bad = ref (Directory.audit mw_dir) in
    for line = 0 to (!seg_pages * Units.lines_per_page) - 1 do
      match Directory.owner mw_dir ~line with
      | Some o when o < 0 || o >= n ->
          bad :=
            Printf.sprintf "line %d: owner %d is not a tenant" line o :: !bad
      | _ -> ()
    done;
    List.sort compare !bad
  in
  (* readers-observe-last-write: after draining, every readable shared
     page's remote bytes must equal the last-writer-wins image ([!seg],
     maintained under the deterministic replay's total order).  Pages made
     unrepairable by an armed bit-flip, or homed on a crashed node with no
     live copy, are the integrity/fault oracles' business, not this one's. *)
  let shared_divergence () =
    if !seg_pages = 0 then 0
    else begin
      let unrepairable =
        Array.fold_left
          (fun acc rt -> Runtime.unrepairable_pages rt @ acc)
          [] runtimes
      in
      let rm0 = Runtime.resource_manager runtimes.(0) in
      let bad = ref 0 in
      for p = 0 to !seg_pages - 1 do
        let vpage = seg_first + p in
        if not (List.mem vpage unrepairable) then
          match Resource_manager.translate rm0 ~vaddr:(vpage * page) with
          | None -> ()
          | Some (node, addr) -> (
              match
                Memory_node.peek
                  (Rack_controller.node controller ~id:node)
                  ~addr ~len:page
              with
              | remote ->
                  if remote <> Bytes.sub_string !seg (p * page) page then
                    incr bad
              | exception Memory_node.Crashed _ -> ())
      done;
      !bad
    end
  in
  {
    e_tenants = tenants;
    e_controller = controller;
    e_runtimes = runtimes;
    e_wfq = wfq;
    e_weights = weights;
    e_node_count = node_count;
    e_fast_nodes = cfg.fast_nodes;
    e_drained_pages = drained_pages;
    e_drain_failures = drain_failures;
    e_recovery = rack_recovery;
    e_now = engine_now;
    e_step = step;
    e_finish = finish;
    e_apply = apply_now;
    e_publish = publish;
    e_shared_round = shared_round;
    e_shared_access =
      (fun ~tenant ~line ~write ~payload ->
        if shared_access ~tenant ~line ~write ~payload then
          if write then incr shared_writes else incr shared_reads);
    e_mw_round = mw_round;
    e_enable_mw = enable_mw_coherence;
    e_mw_dir = mw_dir;
    e_coherence_audit = coherence_audit;
    e_shared_divergence = shared_divergence;
    e_flush = flush_all_logs;
    e_migrate = (fun () -> Migrator.force migrator ~now:(engine_now ()));
  }

let step e = e.e_step ()
let finish e = e.e_finish ()
let now_ns e = e.e_now ()
let apply_op e op = e.e_apply op
let publish e ~pages = e.e_publish ~pages
let shared_round e = e.e_shared_round ()

let shared_line_write e ~tenant ~line ~payload =
  e.e_shared_access ~tenant ~line ~write:true ~payload:(Some payload)

let shared_line_read e ~tenant ~line =
  e.e_shared_access ~tenant ~line ~write:false ~payload:None

let multi_writer_round e = e.e_mw_round ()
let enable_multi_writer e = e.e_enable_mw ()
let coherence_audit e = e.e_coherence_audit ()
let shared_divergence e = e.e_shared_divergence ()
let shared_owner e ~line = Directory.owner e.e_mw_dir ~line
let shared_handoffs e = Directory.handoffs e.e_mw_dir
let shared_owner_changes e = Directory.owner_changes e.e_mw_dir
let shared_invalidations e = Directory.invalidations e.e_mw_dir
let flush_logs e = e.e_flush ()
let force_migration e = e.e_migrate ()
let tenant_count e = Array.length e.e_tenants
let tenant_cfgs e = e.e_tenants
let runtime e ~tenant = e.e_runtimes.(tenant)
let controller e = e.e_controller
let node_count e = !(e.e_node_count)
let fast_node_count e = e.e_fast_nodes
let scheduler e ~node = e.e_wfq.(node)
let scheduler_weights e = e.e_weights
let drained_pages e = !(e.e_drained_pages)
let drain_failures e = !(e.e_drain_failures)

let crash_node e ~id =
  (* The crash rides tenant 0's runtime (same as fault plans): fail-stop
     is rack-global through the shared controller, and tenant 0 runs the
     failover control exchange.  The other tenants' translations retarget
     lazily through the controller's promoted backing. *)
  if id >= 0 && id < !(e.e_node_count) then
    Runtime.crash_node e.e_runtimes.(0) ~id

let arm_fault e clause = Runtime.arm_fault e.e_runtimes.(0) clause

let flap_links e ~dur_ns =
  (* Every tenant owns a NIC port; a rack-level flap outages them all. *)
  Array.iter
    (fun rt ->
      Runtime.arm_fault rt
        (Kona_faults.Fault_spec.Link_flap
           { at_ns = Runtime.elapsed_ns rt; dur_ns }))
    e.e_runtimes

let partition_nodes e ~dur_ns ~ids =
  (* An asymmetric partition cuts the listed nodes' links to the whole
     rack: every tenant opens its own deferral window (CL-log deliveries
     to those nodes park with their stamps intact), and tenant 0's
     membership detector stops hearing their heartbeats — the nodes stay
     healthy throughout, unlike a crash. *)
  if dur_ns > 0 && ids <> [] then
    Array.iter
      (fun rt ->
        Runtime.arm_fault rt
          (Kona_faults.Fault_spec.Partition
             { at_ns = Runtime.elapsed_ns rt; dur_ns; ids }))
      e.e_runtimes

let recovery_pending e =
  Recovery.pending e.e_recovery
  @ List.concat_map Runtime.recovery_pending (Array.to_list e.e_runtimes)

let recovery_idle e = recovery_pending e = []

let step_recovery e =
  ignore (Recovery.step e.e_recovery ~now:(e.e_now ()));
  Array.iter (fun rt -> ignore (Runtime.step_recovery rt)) e.e_runtimes

let force_scrub e = Array.iter Runtime.force_scrub e.e_runtimes

let set_tenant_quota e ~tenant ~bytes =
  if tenant >= 0 && tenant < Array.length e.e_tenants then
    Rack_controller.set_quota e.e_controller
      ~tenant:e.e_tenants.(tenant).name ~bytes

let tenant_used e ~tenant =
  if tenant >= 0 && tenant < Array.length e.e_tenants then
    Rack_controller.tenant_used e.e_controller ~tenant:e.e_tenants.(tenant).name
  else 0

let run cfg tenants =
  let e = start cfg tenants in
  while e.e_step () > 0 do
    ()
  done;
  e.e_finish ()
