type tenant_stats = {
  admits : int;
  bytes : int;
  delay_ns : int;
  contended_admits : int;
  contended_bytes : int;
  contended_ns : int;
}

type cell = {
  mutable admits : int;
  mutable bytes : int;
  mutable delay_ns : int;
  mutable contended_admits : int;
  mutable contended_bytes : int;
  mutable contended_ns : int;
  mutable fin : int;  (** virtual finish time of this tenant's last slot *)
}

type t = {
  byte_ns : float;  (** ns per byte on the wire *)
  weights : int array;
  cells : cell array;
  mutable busy_until : int;
  mutable total_admits : int;
  mutable saturated_admits : int;
  mutable peak_backlog_ns : int;
}

let create ~gbps ~weights =
  if Array.length weights = 0 then invalid_arg "Wfq.create: no tenants";
  if gbps <= 0.0 then invalid_arg "Wfq.create: non-positive link rate";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Wfq.create: non-positive weight")
    weights;
  {
    byte_ns = 8.0 /. gbps;
    weights = Array.copy weights;
    cells =
      Array.init (Array.length weights) (fun _ ->
          {
            admits = 0;
            bytes = 0;
            delay_ns = 0;
            contended_admits = 0;
            contended_bytes = 0;
            contended_ns = 0;
            fin = 0;
          });
    busy_until = 0;
    total_admits = 0;
    saturated_admits = 0;
    peak_backlog_ns = 0;
  }

let wire_ns t ~bytes =
  if bytes <= 0 then 0
  else max 1 (int_of_float (ceil (float_of_int bytes *. t.byte_ns)))

(* Weights of the tenants currently backlogged (their last slot's finish
   time lies in the future), always counting the arriving tenant. *)
let active_weight t ~tenant ~now =
  let sum = ref 0 in
  Array.iteri
    (fun j c -> if j = tenant || c.fin > now then sum := !sum + t.weights.(j))
    t.cells;
  !sum

let admit t ~tenant ~bytes ~now =
  let c = t.cells.(tenant) in
  let s = wire_ns t ~bytes in
  t.total_admits <- t.total_admits + 1;
  c.admits <- c.admits + 1;
  c.bytes <- c.bytes + bytes;
  let saturated = t.busy_until > now in
  t.busy_until <- max t.busy_until now + s;
  let backlog = t.busy_until - now in
  if backlog > t.peak_backlog_ns then t.peak_backlog_ns <- backlog;
  if not saturated then begin
    (* idle link: the message streams straight through *)
    c.fin <- now + s;
    0
  end
  else begin
    t.saturated_admits <- t.saturated_admits + 1;
    (* start-time fair queueing: the tenant's next slot is spaced by its
       weighted share of the contended link *)
    let wsum = active_weight t ~tenant ~now in
    let spacing = max s (s * wsum / t.weights.(tenant)) in
    let start = max now c.fin in
    c.fin <- start + spacing;
    (* achieved-bandwidth accounting covers only cross-tenant contention:
       bytes/spacing there is exactly the link rate times w_t/W, so the
       measured service-rate ratios converge to the weight ratios *)
    if wsum > t.weights.(tenant) then begin
      c.contended_admits <- c.contended_admits + 1;
      c.contended_bytes <- c.contended_bytes + bytes;
      c.contended_ns <- c.contended_ns + spacing
    end;
    let delay = max 0 (c.fin - now - s) in
    c.delay_ns <- c.delay_ns + delay;
    delay
  end

let tenant_stats t ~tenant =
  let c = t.cells.(tenant) in
  {
    admits = c.admits;
    bytes = c.bytes;
    delay_ns = c.delay_ns;
    contended_admits = c.contended_admits;
    contended_bytes = c.contended_bytes;
    contended_ns = c.contended_ns;
  }

let achieved_gbps t ~tenant =
  let c = t.cells.(tenant) in
  if c.contended_ns = 0 then 0.0
  else 8.0 *. float_of_int c.contended_bytes /. float_of_int c.contended_ns

let total_admits t = t.total_admits
let saturated_admits t = t.saturated_admits
let busy_until t = t.busy_until
let backlog_ns t ~now = max 0 (t.busy_until - now)
let peak_backlog_ns t = t.peak_backlog_ns
