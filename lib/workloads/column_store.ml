open Kona_util

(* Row widths: VoltDB updates whole tuples, not single fields.  Stock rows
   are 64B (quantity, ytd, order_cnt, remote_cnt, dist info) of which an
   update rewrites 48B; customer rows are 64B (balance, ytd_payment,
   payment_cnt, 40B last-payment data) of which a payment rewrites 56B. *)
let stock_row = 64
let customer_row = 64

type t = {
  heap : Heap.t;
  warehouses : int;
  items : int;
  customers : int;
  max_orders : int;
  (* order table columns (append-only) *)
  o_id : int;
  o_w_id : int;
  o_c_id : int;
  o_amount : int;
  stock : int; (* stock rows per (warehouse, item) *)
  customer : int; (* customer rows *)
  history : int; (* payment history append column *)
  mutable orders : int;
  mutable history_rows : int;
  initial_stock_total : int;
}

let initial_quantity = 100

let create heap ~warehouses ~items ~customers ~max_orders =
  assert (warehouses > 0 && items > 0 && customers > 0 && max_orders > 0);
  let col n width = Heap.alloc heap (width * n) in
  let t =
    {
      heap;
      warehouses;
      items;
      customers;
      max_orders;
      o_id = col max_orders 8;
      o_w_id = col max_orders 8;
      o_c_id = col max_orders 8;
      o_amount = col max_orders 8;
      stock = col (warehouses * items) stock_row;
      customer = col customers customer_row;
      history = col max_orders 8;
      orders = 0;
      history_rows = 0;
      initial_stock_total = warehouses * items * initial_quantity;
    }
  in
  for i = 0 to (warehouses * items) - 1 do
    let row = t.stock + (stock_row * i) in
    Heap.write_u64 heap row initial_quantity;
    Heap.write_u64 heap (row + 8) 0;
    Heap.write_u64 heap (row + 16) 0;
    Heap.write_u64 heap (row + 24) 0
  done;
  for c = 0 to customers - 1 do
    let row = t.customer + (customer_row * c) in
    Heap.write_u64 heap row 1000;
    Heap.write_u64 heap (row + 8) 0;
    Heap.write_u64 heap (row + 16) 0
  done;
  t

type txn_stats = { new_orders : int; payments : int; rollbacks : int }

let stock_addr t w i = t.stock + (stock_row * ((w * t.items) + i))
let customer_addr t c = t.customer + (customer_row * c)
let stock_dist_info = String.make 16 's'

let new_order t ~rng =
  let h = t.heap in
  let w = Rng.int rng t.warehouses in
  let c = Rng.zipf rng ~n:t.customers ~theta:0.8 in
  let n_items = 5 + Rng.int rng 11 in
  let rollback = Rng.int rng 100 = 0 in
  (* Items are zipf-hot: popular products cluster at low ids, so stock-row
     update traffic has clustered hot pages and a sparse tail. *)
  let picked = Array.init n_items (fun _ -> Rng.zipf rng ~n:t.items ~theta:0.85) in
  let amount = ref 0 in
  Array.iter
    (fun item ->
      let row = stock_addr t w item in
      let q = Heap.read_u64 h row in
      if not rollback then begin
        let q' = if q > 10 then q - 1 else q + 91 (* restock, per TPC-C *) in
        Heap.write_u64 h row q';
        Heap.write_u64 h (row + 8) (Heap.read_u64 h (row + 8) + 1);
        Heap.write_u64 h (row + 16) (Heap.read_u64 h (row + 16) + 1);
        Heap.write_u64 h (row + 24) 0;
        Heap.write_string h (row + 32) stock_dist_info;
        amount := !amount + 1 + (item mod 97)
      end)
    picked;
  if rollback then false
  else if t.orders >= t.max_orders then false
  else begin
    let r = t.orders in
    Heap.write_u64 h (t.o_id + (8 * r)) (r + 1);
    Heap.write_u64 h (t.o_w_id + (8 * r)) w;
    Heap.write_u64 h (t.o_c_id + (8 * r)) c;
    Heap.write_u64 h (t.o_amount + (8 * r)) !amount;
    t.orders <- t.orders + 1;
    true
  end

let payment_data = String.make 32 'p'

let payment t ~rng =
  let h = t.heap in
  let c = Rng.zipf rng ~n:t.customers ~theta:0.8 in
  let amount = 1 + Rng.int rng 5000 in
  let row = customer_addr t c in
  let b = Heap.read_u64 h row in
  Heap.write_u64 h row (b - amount);
  Heap.write_u64 h (row + 8) (Heap.read_u64 h (row + 8) + amount);
  Heap.write_u64 h (row + 16) (Heap.read_u64 h (row + 16) + 1);
  Heap.write_string h (row + 24) payment_data;
  if t.history_rows < t.max_orders then begin
    Heap.write_u64 h (t.history + (8 * t.history_rows)) amount;
    t.history_rows <- t.history_rows + 1
  end

let order_status t ~rng =
  (* Read-only: scan the last few orders of a random customer. *)
  let h = t.heap in
  let c = Rng.int rng t.customers in
  let scanned = ref 0 in
  let r = ref (t.orders - 1) in
  while !scanned < 8 && !r >= 0 do
    if Heap.read_u64 h (t.o_c_id + (8 * !r)) = c then
      ignore (Heap.read_u64 h (t.o_amount + (8 * !r)));
    incr scanned;
    decr r
  done

let run_mix t ~rng ~transactions =
  let stats = ref { new_orders = 0; payments = 0; rollbacks = 0 } in
  for _ = 1 to transactions do
    let dice = Rng.int rng 100 in
    if dice < 45 then begin
      if new_order t ~rng then stats := { !stats with new_orders = !stats.new_orders + 1 }
      else stats := { !stats with rollbacks = !stats.rollbacks + 1 }
    end
    else if dice < 88 then begin
      payment t ~rng;
      stats := { !stats with payments = !stats.payments + 1 }
    end
    else order_status t ~rng
  done;
  !stats

let order_count t = t.orders

let stock_total t =
  let total = ref 0 in
  for i = 0 to (t.warehouses * t.items) - 1 do
    total := !total + Heap.peek_u64 t.heap (t.stock + (stock_row * i))
  done;
  !total

let initial_stock_total t = t.initial_stock_total
