(** VoltDB-style in-memory column store running a TPC-C-flavoured OLTP mix
    (paper Table 2: "VoltDB", TPC-C).

    Tables are columnar arrays in the arena.  New-order transactions append
    to several order columns (sequential tail writes in widely separated
    arrays) and perform random read-modify-writes on the stock table;
    payment transactions update customer balances and append to a history
    column — together giving the moderate, mixed amplification the paper
    reports (3.74x at 4KB). *)

type t

val create :
  Heap.t -> warehouses:int -> items:int -> customers:int -> max_orders:int -> t

type txn_stats = { new_orders : int; payments : int; rollbacks : int }

val run_mix : t -> rng:Kona_util.Rng.t -> transactions:int -> txn_stats
(** Standard-ish mix: ~45% new-order, ~43% payment, rest order-status
    (read-only scans).  1% of new-orders roll back (per TPC-C), touching
    memory but appending nothing. *)

val order_count : t -> int
val stock_total : t -> int
(** Uninstrumented sum over the stock column; with the initial quantity
    known, tests can verify conservation of decremented stock. *)

val initial_stock_total : t -> int
