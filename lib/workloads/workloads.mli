(** Registry of the nine Table 2 workloads, with paper-reported reference
    values and two size presets.

    Paper memory footprints (0.13–40 GB) are scaled down so the full suite
    runs in minutes on one machine; the scaling factor per workload is
    visible in [heap_capacity] and recorded in EXPERIMENTS.md.  Access
    *patterns*, which determine every reproduced metric, are preserved. *)

type scale =
  | Smoke  (** seconds-fast, for unit tests *)
  | Full  (** bench-sized *)

type spec = {
  name : string;  (** exactly the Table 2 row label *)
  paper_mem_gb : float;
  paper_amp_4k : float;
  paper_amp_2m : float;
  paper_amp_cl : float;
  heap_capacity : scale -> int;
  quantum : scale -> int;
      (** Window size in accesses for this workload/scale, standing in for
          the paper's 10-second wall-clock windows.  Chosen so a window
          covers roughly the same fraction of the working set as the
          paper's windows do (tens of windows per run). *)
  run : scale -> heap:Heap.t -> seed:int -> unit;
      (** Runs the workload to completion on [heap]; raises on any internal
          correctness violation (wrong regression fit, lost histogram
          samples, improper coloring, ...). *)
}

val all : spec list
(** In Table 2 row order. *)

val extensions : spec list
(** Workloads beyond the paper's set (e.g. Redis-Zipf, a skewed-key driver
    between the paper's Rand/Seq extremes).  Runnable through every tool
    but excluded from Table 2 reproduction. *)

val find : string -> spec
(** Searches [all] then [extensions]; raises [Not_found] on unknown names.
    Besides the exact Table 2 labels, accepts lowercase dashed slugs
    ([page-rank], [linear-regression]) and the aliases [kv-uniform] /
    [kv-seq] / [kv-zipf] for Redis-Rand / Redis-Seq / Redis-Zipf. *)

val redis_rand : spec
val redis_seq : spec
val linear_regression : spec
val graph_coloring : spec
