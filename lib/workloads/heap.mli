(** Instrumented heap: a byte arena whose every load and store emits an
    {!Kona_trace.Access.t} event.

    This replaces Intel Pin binary instrumentation from the paper: the
    workloads are real programs whose data structures live in this arena, so
    the emitted stream has the genuine spatial/temporal structure of the
    algorithms (hash-chain walks, CSR scans, column appends, ...) while
    remaining observable.  Addresses start at one page (so 0 never aliases a
    live object) and are stable for the lifetime of the heap. *)

type t

val create : ?capacity:int -> sink:Kona_trace.Access.sink -> unit -> t
(** Default capacity 64 MiB. *)

val capacity : t -> int

val used : t -> int
(** High-water mark of allocated bytes (brk - base). *)

val base : t -> int
(** First valid address. *)

val set_sink : t -> Kona_trace.Access.sink -> unit
(** Swap the consumer; used to splice analyses in and out around phases. *)

val alloc : t -> ?align:int -> int -> int
(** Allocate [n] bytes ([n > 0]), default 8-byte aligned.  Reuses freed
    blocks of the exact same size.  Raises [Out_of_memory] when the arena is
    exhausted. *)

val free : t -> addr:int -> len:int -> unit
(** Return a block to the (size-segregated) free list. *)

(** {2 Instrumented accessors}

    Each call performs the real memory operation on the backing store and
    emits exactly one access event covering the touched byte range. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int
val write_u64 : t -> int -> int -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_bytes : t -> int -> int -> string
val write_string : t -> int -> string -> unit

val memcmp : t -> int -> string -> bool
(** [memcmp t addr s] reads [String.length s] bytes at [addr] (one event)
    and compares with [s]. *)

(** {2 Uninstrumented debug access (no events; for tests and integrity
    checks only)} *)

val peek_u64 : t -> int -> int
val peek_bytes : t -> int -> int -> string
val snapshot : t -> Bytes.t
(** Copy of the full backing store. *)

(** {2 Uninstrumented initialization}

    For data that the real application obtains without writing it — e.g. an
    input file mapped read-only into memory (the Metis workloads stream
    mmap'd datasets).  Populates the backing store without emitting write
    events; subsequent instrumented reads of the data are observed
    normally. *)

val poke_u64 : t -> int -> int -> unit
val poke_f64 : t -> int -> float -> unit

val page_poked : t -> page:int -> bool
(** Whether any byte of 4KB page index [page] was populated by a poke.
    Such pages model file-backed (mmap'd) input: they are clean from the
    remote-memory system's point of view and are excluded from
    remote-equals-heap integrity checks. *)

val restore_page : t -> addr:int -> data:string -> unit
(** Uninstrumented whole-page blit: recovery of a crashed host's heap image
    from disaggregated memory (failure mode 1, §4.5).  [data] must be
    page-sized and [addr] page-aligned. *)
