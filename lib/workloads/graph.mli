(** In-arena CSR graph substrate for the GraphLab-class workloads
    (Page Rank, Graph Coloring, Connected Components, Label Propagation).

    The offsets and edge arrays live in the instrumented heap; traversals
    produce the sequential-offset / random-neighbour access mix
    characteristic of graph analytics.  Graphs are undirected (every edge stored in both
    directions) and generated from a deterministic RNG. *)

type t

val generate :
  Heap.t -> rng:Kona_util.Rng.t -> vertices:int -> avg_degree:int -> t
(** Random multigraph-free undirected graph with [vertices * avg_degree / 2]
    edges, skewed towards low vertex ids (power-law-ish degree
    distribution), built and then written into the arena. *)

val vertex_count : t -> int
val edge_count : t -> int
(** Directed edge entries (twice the undirected edge count). *)

val degree : t -> int -> int
(** Reads the offsets array (instrumented). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Reads offsets then scans the edge slice (instrumented). *)

val alloc_vertex_array : t -> int
(** Allocate an 8-bytes-per-vertex array in the same arena; returns its
    address. *)

val alloc_vertex_records : t -> stride:int -> int
(** Allocate one [stride]-byte, cache-line-aligned record per vertex.
    GraphLab-class frameworks keep a substantial per-vertex structure
    (vertex data, adjacency metadata, scheduler state) of which an update
    rewrites only the algorithm's mutable fields; this layout is what gives
    graph analytics their characteristic page-level dirty amplification. *)

val heap_of : t -> Heap.t

val iter_neighbors_quiet : t -> int -> (int -> unit) -> unit
(** Like {!iter_neighbors} but via uninstrumented reads — emits no access
    events.  For validation code only. *)
