(** The four GraphLab-style analytics of Table 2, each operating entirely on
    in-arena vertex arrays so every rank/label/color read and write is
    observable.  Each returns a verifiable result. *)

val pagerank : Graph.t -> iterations:int -> float
(** Push-style damped PageRank; returns the sum of ranks (1.0 up to
    dangling-mass redistribution, used as a sanity value). *)

type coloring_result = { colors_used : int; colors_addr : int }

val coloring : Graph.t -> coloring_result
(** Greedy coloring.  [colors_addr] is the in-arena colors array, exposed so
    tests can validate properness. *)

type components_result = { component_count : int; comp_addr : int }

val connected_components : Graph.t -> components_result
(** Min-label propagation to a fixed point. *)

val label_propagation : Graph.t -> iterations:int -> int
(** Synchronous most-frequent-neighbour-label iterations; returns the number
    of distinct labels remaining. *)

(** Validation helpers (uninstrumented reads; tests only). *)
module Check : sig
  val coloring_is_proper : Graph.t -> colors_addr:int -> bool

  val components_consistent : Graph.t -> comp_addr:int -> bool
  (** Every edge joins vertices with equal component labels. *)
end
