(** Metis-style in-memory map-reduce workloads (paper Table 2: "Linear
    Regression" and "Histogram").

    Both stream a large in-arena input array through a map phase that emits
    per-chunk partial results into an output region, then reduce the
    partials — the streaming, low-reuse access pattern that makes these
    workloads nearly cache-oblivious in Fig. 8b. *)

type regression = { slope : float; intercept : float }

val linear_regression :
  Heap.t -> rng:Kona_util.Rng.t -> points:int -> chunk:int -> regression
(** Generate [points] (x, y) pairs with y = 2x + 1 + noise written
    sequentially into the arena, then map (per-[chunk] partial sums) and
    reduce to the least-squares fit. *)

val histogram :
  Heap.t -> rng:Kona_util.Rng.t -> samples:int -> bins:int -> int
(** Generate [samples] skewed values in the arena, bucket them into an
    in-arena [bins]-counter table with per-sample read-modify-writes, and
    return the total count accumulated across bins (must equal
    [samples]). *)
