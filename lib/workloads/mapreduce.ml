open Kona_util

type regression = { slope : float; intercept : float }

(* Partial-sum record layout: [sx sy sxx sxy n], 5 f64 = 40 bytes. *)
let record_len = 40

let linear_regression heap ~rng ~points ~chunk =
  assert (points > 1 && chunk > 0);
  (* Input: [x0 y0 x1 y1 ...] as f64 pairs.  Metis streams an mmap'd input
     file, so populating it is not application write traffic: poke. *)
  let input = Heap.alloc heap (16 * points) in
  for i = 0 to points - 1 do
    let x = float_of_int i /. float_of_int points in
    let noise = Rng.float rng 0.01 -. 0.005 in
    Heap.poke_f64 heap (input + (16 * i)) x;
    Heap.poke_f64 heap (input + (16 * i) + 8) ((2.0 *. x) +. 1.0 +. noise)
  done;
  let chunks = (points + chunk - 1) / chunk in
  let partials = Heap.alloc heap (record_len * chunks) in
  (* Map: stream the input, accumulating into the current chunk's partial
     record with in-memory read-modify-writes, as Metis map tasks update
     their intermediate buffers per input element. *)
  for c = 0 to chunks - 1 do
    let p = partials + (record_len * c) in
    Heap.write_f64 heap p 0.;
    Heap.write_f64 heap (p + 8) 0.;
    Heap.write_f64 heap (p + 16) 0.;
    Heap.write_f64 heap (p + 24) 0.;
    Heap.write_f64 heap (p + 32) 0.;
    let lo = c * chunk in
    let hi = min points (lo + chunk) - 1 in
    for i = lo to hi do
      let x = Heap.read_f64 heap (input + (16 * i)) in
      let y = Heap.read_f64 heap (input + (16 * i) + 8) in
      Heap.write_f64 heap p (Heap.read_f64 heap p +. x);
      Heap.write_f64 heap (p + 8) (Heap.read_f64 heap (p + 8) +. y);
      Heap.write_f64 heap (p + 16) (Heap.read_f64 heap (p + 16) +. (x *. x));
      Heap.write_f64 heap (p + 24) (Heap.read_f64 heap (p + 24) +. (x *. y));
      Heap.write_f64 heap (p + 32) (Heap.read_f64 heap (p + 32) +. 1.)
    done
  done;
  (* Reduce. *)
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. and n = ref 0. in
  for c = 0 to chunks - 1 do
    let p = partials + (record_len * c) in
    sx := !sx +. Heap.read_f64 heap p;
    sy := !sy +. Heap.read_f64 heap (p + 8);
    sxx := !sxx +. Heap.read_f64 heap (p + 16);
    sxy := !sxy +. Heap.read_f64 heap (p + 24);
    n := !n +. Heap.read_f64 heap (p + 32)
  done;
  let denom = (!n *. !sxx) -. (!sx *. !sx) in
  let slope = ((!n *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. !n in
  { slope; intercept }

let histogram heap ~rng ~samples ~bins =
  assert (samples > 0 && bins > 0);
  (* Input values are skewed (real-world histograms rarely see uniform
     data); the bin table takes read-modify-write traffic concentrated on
     the hot head with a long sparse tail. *)
  let input = Heap.alloc heap (8 * samples) in
  for i = 0 to samples - 1 do
    let bin = Rng.zipf rng ~n:bins ~theta:0.75 in
    (* store the value that falls into [bin]; mmap'd input file => poke *)
    let v = (float_of_int bin +. Rng.float rng 1.0) /. float_of_int bins in
    Heap.poke_f64 heap (input + (8 * i)) v
  done;
  let table = Heap.alloc heap (8 * bins) in
  for b = 0 to bins - 1 do
    Heap.write_u64 heap (table + (8 * b)) 0
  done;
  for i = 0 to samples - 1 do
    let v = Heap.read_f64 heap (input + (8 * i)) in
    let b = min (bins - 1) (int_of_float (v *. float_of_int bins)) in
    let cell = table + (8 * b) in
    Heap.write_u64 heap cell (Heap.read_u64 heap cell + 1)
  done;
  let total = ref 0 in
  for b = 0 to bins - 1 do
    total := !total + Heap.read_u64 heap (table + (8 * b))
  done;
  !total
