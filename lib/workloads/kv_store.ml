open Kona_util

(* Entry layout in the arena:
     [next:8][keylen:4][vallen:4][key bytes][value bytes]
   Buckets are an array of 8-byte entry addresses (0 = empty). *)

let header_len = 16

type t = { heap : Heap.t; buckets : int; table : int; mutable entries : int }

let create heap ~nbuckets =
  if not (Units.is_power_of_two nbuckets) then
    invalid_arg "Kv_store.create: nbuckets must be a power of two";
  let table = Heap.alloc heap (8 * nbuckets) in
  (* The arena is zero-initialized, but make the initial bucket clears
     explicit: a real server memsets its table. *)
  for i = 0 to nbuckets - 1 do
    Heap.write_u64 heap (table + (8 * i)) 0
  done;
  { heap; buckets = nbuckets; table; entries = 0 }

(* FNV-1a (62-bit truncated); computed on the OCaml string (register work,
   not memory). *)
let hash key =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let attach heap ~nbuckets ~table ~entries =
  if not (Units.is_power_of_two nbuckets) then
    invalid_arg "Kv_store.attach: nbuckets must be a power of two";
  { heap; buckets = nbuckets; table; entries }

let table_addr t = t.table
let bucket_addr t key = t.table + (8 * (hash key land (t.buckets - 1)))

(* Walk the chain; returns the entry whose key matches, if any. *)
let find_entry t key =
  let heap = t.heap in
  let rec walk addr =
    if addr = 0 then None
    else
      let keylen = Heap.read_u32 heap (addr + 8) in
      if keylen = String.length key && Heap.memcmp heap (addr + header_len) key then
        Some addr
      else walk (Heap.read_u64 heap addr)
  in
  walk (Heap.read_u64 heap (bucket_addr t key))

let entry_size ~keylen ~vallen = header_len + keylen + vallen

let set t key value =
  let heap = t.heap in
  match find_entry t key with
  | Some addr when Heap.read_u32 heap (addr + 12) = String.length value ->
      (* Same-size value: overwrite in place, like Redis SDS reuse. *)
      Heap.write_string heap (addr + header_len + String.length key) value
  | Some addr ->
      (* Size changed: unlink is skipped (we replace head-of-chain style by
         rewriting the entry's value storage).  Free old, allocate new, and
         splice it where the old one was reachable from. *)
      let keylen = String.length key in
      let old_vallen = Heap.read_u32 heap (addr + 12) in
      let next = Heap.read_u64 heap addr in
      Heap.free heap ~addr ~len:(entry_size ~keylen ~vallen:old_vallen);
      let fresh = Heap.alloc heap (entry_size ~keylen ~vallen:(String.length value)) in
      Heap.write_u64 heap fresh next;
      Heap.write_u32 heap (fresh + 8) keylen;
      Heap.write_u32 heap (fresh + 12) (String.length value);
      Heap.write_string heap (fresh + header_len) key;
      Heap.write_string heap (fresh + header_len + keylen) value;
      (* Re-walk the chain to relink the predecessor. *)
      let bucket = bucket_addr t key in
      let rec relink prev_slot cursor =
        if cursor = addr then Heap.write_u64 heap prev_slot fresh
        else if cursor = 0 then ()
        else relink cursor (Heap.read_u64 heap cursor)
      in
      relink bucket (Heap.read_u64 heap bucket)
  | None ->
      let keylen = String.length key in
      let addr = Heap.alloc heap (entry_size ~keylen ~vallen:(String.length value)) in
      let bucket = bucket_addr t key in
      let head = Heap.read_u64 heap bucket in
      Heap.write_u64 heap addr head;
      Heap.write_u32 heap (addr + 8) keylen;
      Heap.write_u32 heap (addr + 12) (String.length value);
      Heap.write_string heap (addr + header_len) key;
      Heap.write_string heap (addr + header_len + keylen) value;
      Heap.write_u64 heap bucket addr;
      t.entries <- t.entries + 1

let get t key =
  match find_entry t key with
  | None -> None
  | Some addr ->
      let keylen = Heap.read_u32 t.heap (addr + 8) in
      let vallen = Heap.read_u32 t.heap (addr + 12) in
      Some (Heap.read_bytes t.heap (addr + header_len + keylen) vallen)

let remove t key =
  let heap = t.heap in
  match find_entry t key with
  | None -> false
  | Some addr ->
      let keylen = Heap.read_u32 heap (addr + 8) in
      let vallen = Heap.read_u32 heap (addr + 12) in
      let next = Heap.read_u64 heap addr in
      (* Unlink: walk from the bucket head to the predecessor slot. *)
      let bucket = bucket_addr t key in
      let rec relink prev_slot cursor =
        if cursor = addr then Heap.write_u64 heap prev_slot next
        else if cursor = 0 then ()
        else relink cursor (Heap.read_u64 heap cursor)
      in
      relink bucket (Heap.read_u64 heap bucket);
      Heap.free heap ~addr ~len:(entry_size ~keylen ~vallen);
      t.entries <- t.entries - 1;
      true

let entries t = t.entries

type pattern = Rand | Seq | Zipf of float
type driver_result = { sets : int; gets : int; hits : int }

let key_of_int i = Printf.sprintf "key:%012d" i

(* Deterministic value content so integrity checks can recompute it. *)
let value_for ~value_len i generation =
  let seed = Printf.sprintf "v%d:%d:" generation i in
  let buf = Buffer.create value_len in
  while Buffer.length buf < value_len do
    Buffer.add_string buf seed
  done;
  Buffer.sub buf 0 value_len

let run_driver t ~rng ~pattern ~keys ~ops ~value_len ~set_ratio =
  assert (keys > 0 && ops >= 0 && set_ratio >= 0. && set_ratio <= 1.);
  (* Load phase. *)
  for i = 0 to keys - 1 do
    set t (key_of_int i) (value_for ~value_len i 0)
  done;
  let sets = ref keys and gets = ref 0 and hits = ref 0 in
  let next_seq = ref 0 in
  let pick () =
    match pattern with
    | Rand -> Rng.int rng keys
    | Zipf theta -> Rng.zipf rng ~n:keys ~theta
    | Seq ->
        let k = !next_seq in
        next_seq := (k + 1) mod keys;
        k
  in
  for op = 0 to ops - 1 do
    let k = pick () in
    if Rng.float rng 1.0 < set_ratio then begin
      set t (key_of_int k) (value_for ~value_len k (1 + (op / keys)));
      incr sets
    end
    else begin
      incr gets;
      match get t (key_of_int k) with Some _ -> incr hits | None -> ()
    end
  done;
  { sets = !sets; gets = !gets; hits = !hits }
