open Kona_util
module Access = Kona_trace.Access

type t = {
  mem : Bytes.t;
  base : int;
  mutable brk : int;
  free_lists : (int, int list ref) Hashtbl.t; (* block size -> addresses *)
  poked_pages : (int, unit) Hashtbl.t; (* file-backed (uninstrumented) data *)
  mutable sink : Access.sink;
}

let create ?(capacity = Units.mib 64) ~sink () =
  assert (capacity > 2 * Units.page_size);
  {
    mem = Bytes.make capacity '\000';
    base = Units.page_size;
    brk = Units.page_size;
    free_lists = Hashtbl.create 32;
    poked_pages = Hashtbl.create 256;
    sink;
  }

let capacity t = Bytes.length t.mem
let used t = t.brk - t.base
let base t = t.base
let set_sink t sink = t.sink <- sink

let check t addr len =
  if addr < t.base || addr + len > Bytes.length t.mem then
    invalid_arg
      (Printf.sprintf "Heap: access [%#x,+%d) outside arena [%#x,%#x)" addr len t.base
         (Bytes.length t.mem))

let alloc t ?(align = 8) n =
  if n <= 0 then invalid_arg "Heap.alloc: size must be positive";
  let size = Units.align_up n ~alignment:align in
  match Hashtbl.find_opt t.free_lists size with
  | Some ({ contents = addr :: rest } as cell) when addr mod align = 0 ->
      cell := rest;
      addr
  | _ ->
      let addr = Units.align_up t.brk ~alignment:align in
      if addr + size > Bytes.length t.mem then raise Out_of_memory;
      t.brk <- addr + size;
      addr

let free t ~addr ~len =
  let size = Units.align_up len ~alignment:8 in
  match Hashtbl.find_opt t.free_lists size with
  | Some cell -> cell := addr :: !cell
  | None -> Hashtbl.add t.free_lists size (ref [ addr ])

let emit t kind addr len =
  check t addr len;
  t.sink
    (match kind with
    | Access.Read -> Access.read ~addr ~len
    | Access.Write -> Access.write ~addr ~len)

let read_u8 t addr =
  emit t Access.Read addr 1;
  Char.code (Bytes.get t.mem addr)

let write_u8 t addr v =
  emit t Access.Write addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xff))

let read_u32 t addr =
  emit t Access.Read addr 4;
  Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xffffffff

let write_u32 t addr v =
  emit t Access.Write addr 4;
  Bytes.set_int32_le t.mem addr (Int32.of_int v)

let read_u64 t addr =
  emit t Access.Read addr 8;
  Int64.to_int (Bytes.get_int64_le t.mem addr)

let write_u64 t addr v =
  emit t Access.Write addr 8;
  Bytes.set_int64_le t.mem addr (Int64.of_int v)

let read_f64 t addr =
  emit t Access.Read addr 8;
  Int64.float_of_bits (Bytes.get_int64_le t.mem addr)

let write_f64 t addr v =
  emit t Access.Write addr 8;
  Bytes.set_int64_le t.mem addr (Int64.bits_of_float v)

let read_bytes t addr len =
  emit t Access.Read addr len;
  Bytes.sub_string t.mem addr len

let write_string t addr s =
  let len = String.length s in
  emit t Access.Write addr len;
  Bytes.blit_string s 0 t.mem addr len

let memcmp t addr s =
  let len = String.length s in
  emit t Access.Read addr len;
  Bytes.sub_string t.mem addr len = s

let note_poked t addr len =
  for page = Units.page_of_addr addr to Units.page_of_addr (addr + len - 1) do
    Hashtbl.replace t.poked_pages page ()
  done

let poke_u64 t addr v =
  check t addr 8;
  note_poked t addr 8;
  Bytes.set_int64_le t.mem addr (Int64.of_int v)

let poke_f64 t addr v =
  check t addr 8;
  note_poked t addr 8;
  Bytes.set_int64_le t.mem addr (Int64.bits_of_float v)

let page_poked t ~page = Hashtbl.mem t.poked_pages page

let restore_page t ~addr ~data =
  if String.length data <> Units.page_size || addr mod Units.page_size <> 0 then
    invalid_arg "Heap.restore_page: need a page-aligned, page-sized blit";
  if addr + Units.page_size > Bytes.length t.mem then
    invalid_arg "Heap.restore_page: outside the arena";
  Bytes.blit_string data 0 t.mem addr Units.page_size

let peek_u64 t addr = Int64.to_int (Bytes.get_int64_le t.mem addr)
let peek_bytes t addr len = Bytes.sub_string t.mem addr len
let snapshot t = Bytes.copy t.mem
