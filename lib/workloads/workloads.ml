open Kona_util

type scale = Smoke | Full

type spec = {
  name : string;
  paper_mem_gb : float;
  paper_amp_4k : float;
  paper_amp_2m : float;
  paper_amp_cl : float;
  heap_capacity : scale -> int;
  quantum : scale -> int;
  run : scale -> heap:Heap.t -> seed:int -> unit;
}

let expect name cond =
  if not cond then failwith (Printf.sprintf "workload self-check failed: %s" name)

let pick scale ~smoke ~full = match scale with Smoke -> smoke | Full -> full

(* ---------------- Redis ---------------- *)

let run_redis pattern scale ~heap ~seed =
  let keys = pick scale ~smoke:2_000 ~full:40_000 in
  let ops = pick scale ~smoke:10_000 ~full:400_000 in
  let nbuckets = pick scale ~smoke:4096 ~full:65_536 in
  let kv = Kv_store.create heap ~nbuckets in
  let rng = Rng.create ~seed in
  let r =
    Kv_store.run_driver kv ~rng ~pattern ~keys ~ops ~value_len:104 ~set_ratio:0.5
  in
  expect "redis: all GETs hit after load" (r.Kv_store.hits = r.Kv_store.gets);
  expect "redis: table populated" (Kv_store.entries kv = keys)

let redis_rand =
  {
    name = "Redis-Rand";
    paper_mem_gb = 4.0;
    paper_amp_4k = 31.36;
    paper_amp_2m = 5516.37;
    paper_amp_cl = 1.48;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 4) ~full:(Units.mib 32));
    quantum = (fun s -> pick s ~smoke:3_000 ~full:15_000);
    run = run_redis Kv_store.Rand;
  }

let redis_seq =
  {
    name = "Redis-Seq";
    paper_mem_gb = 0.13;
    paper_amp_4k = 2.76;
    paper_amp_2m = 54.76;
    paper_amp_cl = 1.08;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 4) ~full:(Units.mib 32));
    quantum = (fun s -> pick s ~smoke:3_000 ~full:20_000);
    run = run_redis Kv_store.Seq;
  }

(* ---------------- Metis map-reduce ---------------- *)

let linear_regression =
  {
    name = "Linear Regression";
    paper_mem_gb = 40.0;
    paper_amp_4k = 2.31;
    paper_amp_2m = 244.14;
    paper_amp_cl = 1.22;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 4) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:8_000 ~full:240_000);
    run =
      (fun scale ~heap ~seed ->
        let points = pick scale ~smoke:20_000 ~full:2_000_000 in
        let rng = Rng.create ~seed in
        let r = Mapreduce.linear_regression heap ~rng ~points ~chunk:512 in
        expect "linreg: slope" (abs_float (r.Mapreduce.slope -. 2.0) < 0.05);
        expect "linreg: intercept" (abs_float (r.Mapreduce.intercept -. 1.0) < 0.05));
  }

let histogram =
  {
    name = "Histogram";
    paper_mem_gb = 40.0;
    paper_amp_4k = 3.61;
    paper_amp_2m = 1050.73;
    paper_amp_cl = 1.84;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 4) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:3_000 ~full:60_000);
    run =
      (fun scale ~heap ~seed ->
        let samples = pick scale ~smoke:20_000 ~full:2_000_000 in
        let bins = pick scale ~smoke:256 ~full:32_768 in
        let rng = Rng.create ~seed in
        let total = Mapreduce.histogram heap ~rng ~samples ~bins in
        expect "histogram: conservation" (total = samples));
  }

(* ---------------- GraphLab analytics ---------------- *)

let graph_of scale ~heap ~seed =
  let vertices = pick scale ~smoke:600 ~full:60_000 in
  let avg_degree = pick scale ~smoke:6 ~full:12 in
  let rng = Rng.create ~seed in
  Graph.generate heap ~rng ~vertices ~avg_degree

let page_rank =
  {
    name = "Page Rank";
    paper_mem_gb = 4.2;
    paper_amp_4k = 4.38;
    paper_amp_2m = 80.71;
    paper_amp_cl = 1.47;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 2) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:6_000 ~full:2_600_000);
    run =
      (fun scale ~heap ~seed ->
        let g = graph_of scale ~heap ~seed in
        let iterations = pick scale ~smoke:3 ~full:6 in
        let sum = Graph_algos.pagerank g ~iterations in
        expect "pagerank: mass" (sum > 0.2 && sum < 1.2));
  }

let graph_coloring =
  {
    name = "Graph Coloring";
    paper_mem_gb = 8.2;
    paper_amp_4k = 5.57;
    paper_amp_2m = 90.37;
    paper_amp_cl = 1.57;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 2) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:6_000 ~full:50_000);
    run =
      (fun scale ~heap ~seed ->
        let g = graph_of scale ~heap ~seed in
        let r = Graph_algos.coloring g in
        expect "coloring: proper"
          (Graph_algos.Check.coloring_is_proper g ~colors_addr:r.Graph_algos.colors_addr));
  }

let connected_components =
  {
    name = "Connected Components";
    paper_mem_gb = 5.2;
    paper_amp_4k = 5.67;
    paper_amp_2m = 82.35;
    paper_amp_cl = 1.62;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 2) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:6_000 ~full:400_000);
    run =
      (fun scale ~heap ~seed ->
        let g = graph_of scale ~heap ~seed in
        let r = Graph_algos.connected_components g in
        expect "concomp: labels consistent"
          (Graph_algos.Check.components_consistent g ~comp_addr:r.Graph_algos.comp_addr);
        expect "concomp: count positive" (r.Graph_algos.component_count >= 1));
  }

let label_propagation =
  {
    name = "Label Propagation";
    paper_mem_gb = 5.6;
    paper_amp_4k = 8.14;
    paper_amp_2m = 95.0;
    paper_amp_cl = 1.85;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 2) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:6_000 ~full:1_100_000);
    run =
      (fun scale ~heap ~seed ->
        let g = graph_of scale ~heap ~seed in
        let iterations = pick scale ~smoke:3 ~full:5 in
        let labels = Graph_algos.label_propagation g ~iterations in
        expect "labelprop: labels in range"
          (labels >= 1 && labels <= Graph.vertex_count g));
  }

(* ---------------- VoltDB ---------------- *)

let voltdb =
  {
    name = "VoltDB";
    paper_mem_gb = 11.5;
    paper_amp_4k = 3.74;
    paper_amp_2m = 79.55;
    paper_amp_cl = 1.17;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 4) ~full:(Units.mib 48));
    quantum = (fun s -> pick s ~smoke:4_000 ~full:120_000);
    run =
      (fun scale ~heap ~seed ->
        let warehouses = pick scale ~smoke:2 ~full:4 in
        let items = pick scale ~smoke:1_000 ~full:10_000 in
        let customers = pick scale ~smoke:1_000 ~full:60_000 in
        let transactions = pick scale ~smoke:2_000 ~full:120_000 in
        let store =
          Column_store.create heap ~warehouses ~items ~customers
            ~max_orders:transactions
        in
        let rng = Rng.create ~seed in
        let stats = Column_store.run_mix store ~rng ~transactions in
        expect "voltdb: committed orders recorded"
          (Column_store.order_count store = stats.Column_store.new_orders);
        expect "voltdb: some of each"
          (stats.Column_store.new_orders > 0 && stats.Column_store.payments > 0));
  }

let redis_zipf =
  {
    name = "Redis-Zipf";
    (* Extension: skewed keys sit between the paper's Rand and Seq
       extremes; no paper reference values. *)
    paper_mem_gb = 0.;
    paper_amp_4k = 0.;
    paper_amp_2m = 0.;
    paper_amp_cl = 0.;
    heap_capacity = (fun s -> pick s ~smoke:(Units.mib 4) ~full:(Units.mib 32));
    quantum = (fun s -> pick s ~smoke:3_000 ~full:15_000);
    run = run_redis (Kv_store.Zipf 0.8);
  }

let extensions = [ redis_zipf ]

let all =
  [
    redis_rand;
    redis_seq;
    linear_regression;
    histogram;
    page_rank;
    graph_coloring;
    connected_components;
    label_propagation;
    voltdb;
  ]

(* Shell-friendly aliases for the Table 2 row labels. *)
let aliases =
  [ ("kv-uniform", "Redis-Rand"); ("kv-seq", "Redis-Seq"); ("kv-zipf", "Redis-Zipf") ]

let slug name =
  String.map (fun c -> if c = ' ' then '-' else Char.lowercase_ascii c) name

let find name =
  let lower = String.lowercase_ascii name in
  let canonical = List.assoc_opt lower aliases in
  List.find
    (fun s ->
      s.name = name
      || (match canonical with Some c -> s.name = c | None -> false)
      || slug s.name = lower)
    (all @ extensions)
