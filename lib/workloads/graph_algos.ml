module Heap_ops = Heap

(* Each algorithm keeps its per-vertex state in a GraphLab-style vertex
   record (192 or 256 bytes, cache-line aligned): a visit rewrites only the
   algorithm's mutable fields (~40 bytes at the record head), while the rest
   of the record (vertex metadata, adjacency index, scheduler state) is
   read-mostly.  See Graph.alloc_vertex_records. *)

let stride = 192

let pagerank g ~iterations =
  let n = Graph.vertex_count g in
  let records = Graph.alloc_vertex_records g ~stride in
  let h = Graph.heap_of g in
  let record v = records + (stride * v) in
  (* field offsets: rank@0, next@8, delta@16, last_update@24, scratch@32 *)
  let init = 1.0 /. float_of_int n in
  for v = 0 to n - 1 do
    Heap_ops.write_f64 h (record v) init;
    Heap_ops.write_u64 h (record v + 40) (Graph.degree g v) (* cached degree *)
  done;
  let damping = 0.85 in
  let base = (1.0 -. damping) /. float_of_int n in
  for iter = 1 to iterations do
    for v = 0 to n - 1 do
      Heap_ops.write_f64 h (record v + 8) base
    done;
    for v = 0 to n - 1 do
      let d = Heap_ops.read_u64 h (record v + 40) in
      if d > 0 then begin
        let contrib = damping *. Heap_ops.read_f64 h (record v) /. float_of_int d in
        Graph.iter_neighbors g v (fun u ->
            let cell = record u + 8 in
            Heap_ops.write_f64 h cell (Heap_ops.read_f64 h cell +. contrib))
      end
    done;
    (* Finalize each vertex: publish the new rank and update scheduler
       bookkeeping fields, as a GraphLab update function does. *)
    for v = 0 to n - 1 do
      let old_rank = Heap_ops.read_f64 h (record v) in
      let new_rank = Heap_ops.read_f64 h (record v + 8) in
      Heap_ops.write_f64 h (record v) new_rank;
      Heap_ops.write_f64 h (record v + 16) (new_rank -. old_rank);
      Heap_ops.write_u64 h (record v + 24) iter;
      Heap_ops.write_u64 h (record v + 32) v
    done
  done;
  let sum = ref 0.0 in
  for v = 0 to n - 1 do
    sum := !sum +. Heap_ops.read_f64 h (record v)
  done;
  !sum

type coloring_result = { colors_used : int; colors_addr : int }

let uncolored = 0xffffff

(* Coloring keeps color@0, saturation@8, visit_time@16, flags@24 per record;
   the validation helper reads colors at the record stride. *)
let coloring g =
  let n = Graph.vertex_count g in
  let records = Graph.alloc_vertex_records g ~stride in
  let h = Graph.heap_of g in
  let record v = records + (stride * v) in
  for v = 0 to n - 1 do
    Heap_ops.write_u64 h (record v) uncolored
  done;
  let max_color = ref 0 in
  for v = 0 to n - 1 do
    let taken = Hashtbl.create 8 in
    Graph.iter_neighbors g v (fun u ->
        let c = Heap_ops.read_u64 h (record u) in
        if c <> uncolored then Hashtbl.replace taken c ());
    let rec first_free c = if Hashtbl.mem taken c then first_free (c + 1) else c in
    let c = first_free 0 in
    if c > !max_color then max_color := c;
    Heap_ops.write_u64 h (record v) c;
    Heap_ops.write_u64 h (record v + 8) (Hashtbl.length taken);
    Heap_ops.write_u64 h (record v + 16) v;
    Heap_ops.write_u64 h (record v + 24) 1;
    Heap_ops.write_u64 h (record v + 32) (Graph.degree g v)
  done;
  { colors_used = !max_color + 1; colors_addr = records }

type components_result = { component_count : int; comp_addr : int }

(* comp@0, min_seen@8, visit_time@16, visit_count@24 *)
let connected_components g =
  let n = Graph.vertex_count g in
  let records = Graph.alloc_vertex_records g ~stride in
  let h = Graph.heap_of g in
  let record v = records + (stride * v) in
  for v = 0 to n - 1 do
    Heap_ops.write_u64 h (record v) v
  done;
  let changed = ref true in
  let round = ref 0 in
  while !changed do
    changed := false;
    incr round;
    for v = 0 to n - 1 do
      let mine = ref (Heap_ops.read_u64 h (record v)) in
      Graph.iter_neighbors g v (fun u ->
          let theirs = Heap_ops.read_u64 h (record u) in
          if theirs < !mine then begin
            mine := theirs;
            changed := true
          end);
      Heap_ops.write_u64 h (record v) !mine;
      Heap_ops.write_u64 h (record v + 8) !mine;
      Heap_ops.write_u64 h (record v + 16) !round;
      Heap_ops.write_u64 h
        (record v + 24)
        (Heap_ops.read_u64 h (record v + 24) + 1)
    done
  done;
  let distinct = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    Hashtbl.replace distinct (Heap_ops.read_u64 h (record v)) ()
  done;
  { component_count = Hashtbl.length distinct; comp_addr = records }

(* Label propagation uses a wider record (label histories, per-label score
   caches): 256 bytes.  label@0, next@8, changes@16, visit_time@24 *)
let lp_stride = 256

let label_propagation g ~iterations =
  let n = Graph.vertex_count g in
  let records = Graph.alloc_vertex_records g ~stride:lp_stride in
  let h = Graph.heap_of g in
  let record v = records + (lp_stride * v) in
  for v = 0 to n - 1 do
    Heap_ops.write_u64 h (record v) v
  done;
  for iter = 1 to iterations do
    for v = 0 to n - 1 do
      let freq = Hashtbl.create 8 in
      Graph.iter_neighbors g v (fun u ->
          let l = Heap_ops.read_u64 h (record u) in
          Hashtbl.replace freq l (1 + Option.value ~default:0 (Hashtbl.find_opt freq l)));
      let own = Heap_ops.read_u64 h (record v) in
      let best =
        Hashtbl.fold
          (fun l c (bl, bc) -> if c > bc || (c = bc && l < bl) then (l, c) else (bl, bc))
          freq (own, 0)
      in
      Heap_ops.write_u64 h (record v + 8) (fst best);
      Heap_ops.write_u64 h (record v + 24) iter
    done;
    for v = 0 to n - 1 do
      let next = Heap_ops.read_u64 h (record v + 8) in
      let changes = Heap_ops.read_u64 h (record v + 16) in
      Heap_ops.write_u64 h (record v + 16)
        (if next <> Heap_ops.read_u64 h (record v) then changes + 1 else changes);
      Heap_ops.write_u64 h (record v) next
    done
  done;
  let distinct = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    Hashtbl.replace distinct (Heap_ops.read_u64 h (record v)) ()
  done;
  Hashtbl.length distinct

module Check = struct
  let coloring_is_proper g ~colors_addr =
    let h = Graph.heap_of g in
    let ok = ref true in
    for v = 0 to Graph.vertex_count g - 1 do
      let cv = Heap_ops.peek_u64 h (colors_addr + (stride * v)) in
      Graph.iter_neighbors_quiet g v (fun u ->
          if u <> v && Heap_ops.peek_u64 h (colors_addr + (stride * u)) = cv then
            ok := false)
    done;
    !ok

  let components_consistent g ~comp_addr =
    let h = Graph.heap_of g in
    let ok = ref true in
    for v = 0 to Graph.vertex_count g - 1 do
      let cv = Heap_ops.peek_u64 h (comp_addr + (stride * v)) in
      Graph.iter_neighbors_quiet g v (fun u ->
          if Heap_ops.peek_u64 h (comp_addr + (stride * u)) <> cv then ok := false)
    done;
    !ok
end
