open Kona_util

type t = {
  heap : Heap.t;
  vertices : int;
  edges : int; (* directed entries *)
  offsets : int; (* addr of (vertices+1) u64 offsets *)
  adjacency : int; (* addr of [edges] u64 neighbour ids *)
}

let generate heap ~rng ~vertices ~avg_degree =
  assert (vertices > 1 && avg_degree >= 1);
  let undirected = vertices * avg_degree / 2 in
  (* Draw endpoints with mild skew towards low ids so some vertices are
     hubs, as in real graphs.  Self-loops are rejected; parallel edges are
     tolerated (multigraphs are fine for these algorithms). *)
  let adj = Array.make vertices [] in
  let degree = Array.make vertices 0 in
  let draw () =
    if Rng.bool rng then Rng.int rng vertices
    else Rng.zipf rng ~n:vertices ~theta:0.6
  in
  let added = ref 0 in
  while !added < undirected do
    let u = draw () and v = draw () in
    if u <> v then begin
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v);
      degree.(u) <- degree.(u) + 1;
      degree.(v) <- degree.(v) + 1;
      incr added
    end
  done;
  let edges = 2 * undirected in
  let offsets = Heap.alloc heap (8 * (vertices + 1)) in
  let adjacency = Heap.alloc heap (8 * edges) in
  (* Write CSR arrays sequentially (the "load the graph" phase). *)
  let cursor = ref 0 in
  for v = 0 to vertices - 1 do
    Heap.write_u64 heap (offsets + (8 * v)) !cursor;
    List.iter
      (fun n ->
        Heap.write_u64 heap (adjacency + (8 * !cursor)) n;
        incr cursor)
      (List.rev adj.(v))
  done;
  Heap.write_u64 heap (offsets + (8 * vertices)) !cursor;
  assert (!cursor = edges);
  { heap; vertices; edges; offsets; adjacency }

let vertex_count t = t.vertices
let edge_count t = t.edges

let offset t v = Heap.read_u64 t.heap (t.offsets + (8 * v))

let degree t v =
  let lo = offset t v and hi = offset t (v + 1) in
  hi - lo

let iter_neighbors t v f =
  let lo = offset t v and hi = offset t (v + 1) in
  for i = lo to hi - 1 do
    f (Heap.read_u64 t.heap (t.adjacency + (8 * i)))
  done

let alloc_vertex_array t = Heap.alloc t.heap (8 * t.vertices)

let alloc_vertex_records t ~stride =
  assert (stride > 0 && stride mod Units.cache_line = 0);
  Heap.alloc t.heap ~align:Units.cache_line (stride * t.vertices)

let heap_of t = t.heap

let iter_neighbors_quiet t v f =
  let lo = Heap.peek_u64 t.heap (t.offsets + (8 * v)) in
  let hi = Heap.peek_u64 t.heap (t.offsets + (8 * (v + 1))) in
  for i = lo to hi - 1 do
    f (Heap.peek_u64 t.heap (t.adjacency + (8 * i)))
  done
