(** Redis-like in-memory key-value store (paper workload: "Redis").

    A chaining hash table whose buckets, entry headers, keys and values all
    live in the instrumented heap, so a SET/GET touches memory exactly the
    way a data-structure server does: bucket probe, chain walk with key
    compares, then an in-place value overwrite or a fresh allocation.

    The two paper workloads are reproduced by the driver: {e Rand} issues
    operations over uniformly random keys (high dirty amplification — small
    writes scattered over many pages) and {e Seq} issues them in ascending
    key order (low amplification — consecutive values are adjacent in the
    arena thanks to the bump allocator). *)

type t

val create : Heap.t -> nbuckets:int -> t
(** [nbuckets] must be a power of two. *)

val attach : Heap.t -> nbuckets:int -> table:int -> entries:int -> t
(** Re-attach to a table that already lives in (possibly recovered) memory
    — the root-pointer handoff a server performs after restarting on
    disaggregated memory.  [table] is the bucket-array address returned by
    the original [create] ({!table_addr}); no initialization is
    performed. *)

val table_addr : t -> int
(** The bucket array's address (the store's root pointer). *)

val set : t -> string -> string -> unit
val get : t -> string -> string option

val remove : t -> string -> bool
(** Unlink and free the entry; [false] if the key was absent. *)

val entries : t -> int

type pattern =
  | Rand  (** uniform over the key space *)
  | Seq  (** ascending sweep *)
  | Zipf of float  (** skewed toward hot keys, theta in (0,1) — memtier's
                       gaussian/zipf-style option *)

type driver_result = {
  sets : int;
  gets : int;
  hits : int;  (** GETs that found their key *)
}

val run_driver :
  t ->
  rng:Kona_util.Rng.t ->
  pattern:pattern ->
  keys:int ->
  ops:int ->
  value_len:int ->
  set_ratio:float ->
  driver_result
(** Load phase (SET every key once, in pattern order) followed by [ops]
    mixed operations: each op is a SET with probability [set_ratio], else a
    GET.  Rand draws keys uniformly; Seq sweeps them in ascending order;
    Zipf concentrates on hot keys. *)

val key_of_int : int -> string
(** The canonical 16-byte key encoding used by the driver; exposed for
    tests. *)
