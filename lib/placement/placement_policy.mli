(** Pluggable rack-scale placement policies.

    A policy answers two questions for the rack controller:

    - {e where does a fresh slab go?} ([choose_node], consulted before the
      controller's round-robin fallback), and
    - {e which pages should move this epoch?} ([plan], consulted by the
      background migrator with the current heat ranking).

    Three implementations ship with the runtime:

    - [first_fit] — today's behavior: no opinion on allocation (the
      controller round-robins) and never migrates;
    - [heat_aware] — ships hot pages toward fast (low-latency) nodes and
      evicts cold pages off them to make room;
    - [centralized] — a MIND-style central directory: every placement
      decision goes through one stateful allocator that tracks per-node
      load and plans capacity-balancing moves.

    Policies must be deterministic: [plan] may depend only on its
    arguments and state accumulated from previous deterministic calls. *)

type node_info = {
  ni_node : int;  (** node id, index into the rack's WFQ array *)
  ni_fast : bool;  (** low-latency tier *)
  ni_free : int;  (** bytes still unreserved *)
  ni_capacity : int;  (** total bytes *)
  ni_draining : bool;  (** excluded from new placement; pages leaving *)
}

type page_info = {
  pi_vpage : int;  (** tenant-local virtual page index *)
  pi_tenant : int;  (** tenant index in the rack *)
  pi_node : int;  (** node currently holding the page *)
  pi_heat : int;  (** decayed heat counter *)
}

type move = {
  mv_tenant : int;
  mv_vpage : int;
  mv_dst : int;  (** destination node id *)
}

type t = {
  name : string;
  choose_node : nodes:node_info list -> tenant:int -> int option;
      (** Pick a node for a fresh slab; [None] defers to the
          controller's round-robin. Never returns a draining node. *)
  plan : nodes:node_info list -> pages:page_info list -> budget:int -> move list;
      (** Up to [budget] moves for this epoch. [pages] arrives hottest
          first. Returned moves must target live, non-draining nodes. *)
  stats : unit -> (string * int) list;
      (** Policy-internal counters for telemetry/debugging. *)
}

val first_fit : unit -> t
val heat_aware : ?hot_threshold:int -> unit -> t
val centralized : unit -> t

val names : string list
(** Accepted [--policy] spellings, in presentation order. *)

val find : string -> t
(** Policy by name ("first-fit" | "heat" | "centralized").
    Raises [Invalid_argument] on anything else. *)
