(** Background page migrator.

    Once per virtual-clock epoch the migrator snapshots the rack (node
    free space, per-page heat), asks the policy for a plan, flushes the
    tenants' CL logs (staged entries carry pre-move addresses), and
    executes the moves.  Every executed move is charged through the
    source and destination nodes' WFQ schedulers so migration traffic
    visibly contends with tenant traffic.

    The migrator is mechanism only — it owns no rack state.  The host
    (lib/rack) supplies everything through the [env] closures, which
    keeps this library free of dependencies on the core runtime. *)

type env = {
  nodes : unit -> Placement_policy.node_info list;
      (** Live rack topology snapshot. *)
  pages : now:int -> Placement_policy.page_info list;
      (** Every migratable page with its decayed heat, hottest first
          (deterministic tie-break). *)
  flush_logs : unit -> unit;
      (** Flush all tenants' CL logs.  Must run before any remap:
          staged log entries resolve (node, raddr) at append time. *)
  move_page : Placement_policy.move -> int option;
      (** Copy the page (and its replicas) to the destination and remap
          every translation that pointed at it.  Returns the source
          node id on success, [None] if the move was skipped (source
          unreadable, destination full, page already there). *)
  charge : node:int -> bytes:int -> now:int -> int;
      (** Admit migration traffic on [node]'s WFQ; returns the queueing
          delay in ns. *)
}

type t

val create :
  policy:Placement_policy.t ->
  epoch_ns:int ->
  budget:int ->
  page_bytes:int ->
  env ->
  t
(** [budget] is the maximum number of page moves per epoch.  Raises
    [Invalid_argument] on non-positive [epoch_ns], [budget] or
    [page_bytes]. *)

val tick : t -> now:int -> unit
(** Run at most one migration epoch if [now] has crossed an epoch
    boundary since the last run; otherwise a no-op.  Call it from the
    simulation's replay loop. *)

val force : t -> now:int -> unit
(** Run one migration epoch immediately, regardless of epoch boundaries
    (scenario-engine [migrate-epoch] op).  Consumes the current boundary
    so a following [tick] in the same epoch stays a no-op. *)

val migrations : t -> int
(** Pages successfully moved. *)

val bytes_moved : t -> int
val failed : t -> int
(** Planned moves that [env.move_page] declined. *)

val charged_ns : t -> int
(** Total WFQ queueing delay absorbed by migration traffic. *)

val epochs : t -> int
(** Epoch boundaries at which the migrator actually ran. *)

val policy : t -> Placement_policy.t
