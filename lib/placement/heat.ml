type cell = { mutable value : int; mutable epoch : int }

type t = {
  epoch_ns : int;
  cells : (int, cell) Hashtbl.t; (* vpage -> decaying counter *)
  mutable touches : int;
}

let create ~epoch_ns =
  if epoch_ns <= 0 then invalid_arg "Heat.create: non-positive epoch";
  { epoch_ns; cells = Hashtbl.create 256; touches = 0 }

let epoch_ns t = t.epoch_ns

(* Lazy decay: halve once per epoch elapsed since the cell was last
   brought current.  A shift by >= 63 would be undefined; past that the
   counter is simply gone. *)
let settle t cell ~now =
  let epoch = now / t.epoch_ns in
  if epoch > cell.epoch then begin
    let elapsed = epoch - cell.epoch in
    cell.value <- (if elapsed >= 63 then 0 else cell.value lsr elapsed);
    cell.epoch <- epoch
  end

let touch t ~vpage ~weight ~now =
  if weight < 0 then invalid_arg "Heat.touch: negative weight";
  t.touches <- t.touches + 1;
  match Hashtbl.find_opt t.cells vpage with
  | Some cell ->
      settle t cell ~now;
      cell.value <- cell.value + weight
  | None ->
      Hashtbl.add t.cells vpage { value = weight; epoch = now / t.epoch_ns }

let heat t ~vpage ~now =
  match Hashtbl.find_opt t.cells vpage with
  | None -> 0
  | Some cell ->
      settle t cell ~now;
      cell.value

let iter t ~now f =
  let pages =
    Hashtbl.fold (fun vpage _ acc -> vpage :: acc) t.cells []
    |> List.sort compare
  in
  List.iter
    (fun vpage ->
      match Hashtbl.find_opt t.cells vpage with
      | None -> ()
      | Some cell ->
          settle t cell ~now;
          if cell.value = 0 then Hashtbl.remove t.cells vpage
          else f ~vpage ~heat:cell.value)
    pages

let ranked t ~now =
  let acc = ref [] in
  iter t ~now (fun ~vpage ~heat -> acc := (vpage, heat) :: !acc);
  List.sort
    (fun (p1, h1) (p2, h2) ->
      if h1 <> h2 then compare h2 h1 else compare p1 p2)
    !acc

let tracked t = Hashtbl.length t.cells
let touches t = t.touches
