(** Per-page heat tracking on a virtual-clock epoch.

    Every demand fetch and eviction of a page bumps its counter; counters
    decay by halving once per elapsed [epoch_ns] of virtual time.  Decay
    is lazy — a counter is brought current only when touched or read — so
    tracking cost is O(1) per event and the table never needs a sweep.

    Determinism: heat is a pure function of the (event, virtual-time)
    stream, so the same seeds produce the same heat and hence the same
    migration plans. *)

type t

val create : epoch_ns:int -> t
(** Raises [Invalid_argument] on a non-positive epoch. *)

val epoch_ns : t -> int

val touch : t -> vpage:int -> weight:int -> now:int -> unit
(** Fold one access event of [weight] into [vpage]'s counter at virtual
    time [now] (decaying it first). *)

val heat : t -> vpage:int -> now:int -> int
(** [vpage]'s counter decayed to [now]; 0 for untracked pages. *)

val iter : t -> now:int -> (vpage:int -> heat:int -> unit) -> unit
(** Every tracked page with its decayed counter, in increasing [vpage]
    order (deterministic).  Pages whose counter decayed to 0 are dropped
    from the table as a side effect. *)

val ranked : t -> now:int -> (int * int) list
(** [(vpage, heat)] pairs sorted hottest first (ties broken by lower
    [vpage]) — the migrator's working set. *)

val tracked : t -> int
(** Pages currently tracked. *)

val touches : t -> int
(** Total events folded in. *)
