type node_info = {
  ni_node : int;
  ni_fast : bool;
  ni_free : int;
  ni_capacity : int;
  ni_draining : bool;
}

type page_info = {
  pi_vpage : int;
  pi_tenant : int;
  pi_node : int;
  pi_heat : int;
}

type move = { mv_tenant : int; mv_vpage : int; mv_dst : int }

type t = {
  name : string;
  choose_node : nodes:node_info list -> tenant:int -> int option;
  plan : nodes:node_info list -> pages:page_info list -> budget:int -> move list;
  stats : unit -> (string * int) list;
}

(* Policies plan in units of one page; the migrator re-checks capacity at
   execution time, so this is an estimate, not an invariant. *)
let page = 4096

(* ------------------------------------------------------------------ *)
(* first-fit: the controller's round-robin, no migration.              *)

let first_fit () =
  {
    name = "first-fit";
    choose_node = (fun ~nodes:_ ~tenant:_ -> None);
    plan = (fun ~nodes:_ ~pages:_ ~budget:_ -> []);
    stats = (fun () -> []);
  }

(* ------------------------------------------------------------------ *)
(* heat-aware: promote hot pages to the fast tier, demote cold ones.   *)

(* Mutable per-plan view of node free space so one epoch's moves don't
   all pile onto the same destination. *)
type slot = { info : node_info; mutable free : int }

let best_dst slots ~pred =
  let best = ref None in
  List.iter
    (fun s ->
      if
        pred s.info && (not s.info.ni_draining) && s.free >= page
        &&
        match !best with
        | None -> true
        | Some b ->
            s.free > b.free || (s.free = b.free && s.info.ni_node < b.info.ni_node)
      then best := Some s)
    slots;
  !best

let heat_aware ?(hot_threshold = 2) () =
  if hot_threshold <= 0 then
    invalid_arg "Placement_policy.heat_aware: non-positive threshold";
  let promotions = ref 0 and demotions = ref 0 and no_room = ref 0 in
  let plan ~nodes ~pages ~budget =
    let slots = List.map (fun info -> { info; free = info.ni_free }) nodes in
    let is_fast id =
      List.exists (fun n -> n.ni_node = id && n.ni_fast) nodes
    in
    let moves = ref [] and left = ref budget in
    let emit p dst =
      dst.free <- dst.free - page;
      moves := { mv_tenant = p.pi_tenant; mv_vpage = p.pi_vpage;
                 mv_dst = dst.info.ni_node }
               :: !moves;
      decr left
    in
    (* Hot pages stranded on the slow tier come first ([pages] arrives
       hottest-first). *)
    List.iter
      (fun p ->
        if !left > 0 && p.pi_heat >= hot_threshold && not (is_fast p.pi_node)
        then
          match best_dst slots ~pred:(fun n -> n.ni_fast) with
          | Some dst -> incr promotions; emit p dst
          | None -> incr no_room)
      pages;
    (* Demote cold residue off the fast tier only under pressure — when
       its headroom has fallen below 1/8 of its capacity — so a tier
       with room left doesn't churn. *)
    let fast_free () =
      List.fold_left
        (fun a s -> if s.info.ni_fast then a + s.free else a)
        0 slots
    in
    let fast_cap =
      List.fold_left
        (fun a n -> if n.ni_fast then a + n.ni_capacity else a)
        0 nodes
    in
    List.iter
      (fun p ->
        if
          !left > 0
          && fast_free () < fast_cap / 8
          && p.pi_heat < hot_threshold && is_fast p.pi_node
        then
          match best_dst slots ~pred:(fun n -> not n.ni_fast) with
          | Some dst -> incr demotions; emit p dst
          | None -> incr no_room)
      (List.rev pages);
    List.rev !moves
  in
  {
    name = "heat";
    (* Allocation stays the controller's round-robin (placement is not
       clairvoyant about future access patterns); only observed heat
       moves pages, so first-fit vs heat isolates what migration buys. *)
    choose_node = (fun ~nodes:_ ~tenant:_ -> None);
    plan;
    stats =
      (fun () ->
        [ ("promotions", !promotions); ("demotions", !demotions);
          ("no_room", !no_room) ]);
  }

(* ------------------------------------------------------------------ *)
(* centralized: MIND-style directory — one allocator sees every node's *)
(* load, spreads fresh slabs least-loaded-first, and plans capacity-   *)
(* balancing moves off overfull nodes.                                 *)

let centralized () =
  let lookups = ref 0 and rebalances = ref 0 in
  let used n = n.ni_capacity - n.ni_free in
  let plan ~nodes ~pages ~budget =
    let live = List.filter (fun n -> not n.ni_draining) nodes in
    match live with
    | [] | [ _ ] -> []
    | _ ->
        let total_used = List.fold_left (fun a n -> a + used n) 0 live in
        let mean = total_used / List.length live in
        (* A node is overfull once it exceeds the mean by more than one
           slab's worth of slack; shed its coldest pages to the node
           with the most headroom. *)
        let slack = 64 * page in
        let slots = List.map (fun info -> { info; free = info.ni_free }) live in
        let over id =
          List.exists
            (fun n -> n.ni_node = id && used n > mean + slack)
            live
        in
        let moves = ref [] and left = ref budget in
        List.iter
          (fun p ->
            if !left > 0 && over p.pi_node then
              match
                best_dst slots ~pred:(fun n -> n.ni_node <> p.pi_node)
              with
              | Some dst when used dst.info < mean + slack ->
                  incr rebalances;
                  dst.free <- dst.free - page;
                  moves :=
                    { mv_tenant = p.pi_tenant; mv_vpage = p.pi_vpage;
                      mv_dst = dst.info.ni_node }
                    :: !moves;
                  decr left
              | _ -> ())
          (List.rev pages) (* coldest first: balance with cheap pages *);
        List.rev !moves
  in
  {
    name = "centralized";
    choose_node =
      (fun ~nodes ~tenant:_ ->
        incr lookups;
        match
          best_dst
            (List.map (fun info -> { info; free = info.ni_free }) nodes)
            ~pred:(fun _ -> true)
        with
        | Some s -> Some s.info.ni_node
        | None -> None);
    plan;
    stats =
      (fun () -> [ ("lookups", !lookups); ("rebalances", !rebalances) ]);
  }

(* ------------------------------------------------------------------ *)

let names = [ "first-fit"; "heat"; "centralized" ]

let find = function
  | "first-fit" -> first_fit ()
  | "heat" -> heat_aware ()
  | "centralized" -> centralized ()
  | s ->
      invalid_arg
        (Printf.sprintf "unknown placement policy %S (expected %s)" s
           (String.concat " | " names))
