type env = {
  nodes : unit -> Placement_policy.node_info list;
  pages : now:int -> Placement_policy.page_info list;
  flush_logs : unit -> unit;
  move_page : Placement_policy.move -> int option;
  charge : node:int -> bytes:int -> now:int -> int;
}

type t = {
  policy : Placement_policy.t;
  epoch_ns : int;
  budget : int;
  page_bytes : int;
  env : env;
  mutable last_epoch : int;
  mutable epochs : int;
  mutable migrations : int;
  mutable bytes_moved : int;
  mutable failed : int;
  mutable charged_ns : int;
}

let create ~policy ~epoch_ns ~budget ~page_bytes env =
  if epoch_ns <= 0 then invalid_arg "Migrator.create: non-positive epoch";
  if budget <= 0 then invalid_arg "Migrator.create: non-positive budget";
  if page_bytes <= 0 then invalid_arg "Migrator.create: non-positive page size";
  {
    policy; epoch_ns; budget; page_bytes; env;
    last_epoch = 0; epochs = 0;
    migrations = 0; bytes_moved = 0; failed = 0; charged_ns = 0;
  }

let run_epoch t ~now =
  let nodes = t.env.nodes () in
  let pages = t.env.pages ~now in
  match t.policy.Placement_policy.plan ~nodes ~pages ~budget:t.budget with
  | [] -> ()
  | plan ->
      (* Staged CL-log entries resolve (node, raddr) at append time;
         flush them all before any translation changes underneath. *)
      t.env.flush_logs ();
      List.iter
        (fun mv ->
          match t.env.move_page mv with
          | None -> t.failed <- t.failed + 1
          | Some src ->
              t.migrations <- t.migrations + 1;
              t.bytes_moved <- t.bytes_moved + t.page_bytes;
              (* One read off the source link, one write onto the
                 destination's — both contend with tenant traffic. *)
              t.charged_ns <-
                t.charged_ns
                + t.env.charge ~node:src ~bytes:t.page_bytes ~now
                + t.env.charge ~node:mv.Placement_policy.mv_dst
                    ~bytes:t.page_bytes ~now)
        plan

let tick t ~now =
  let epoch = now / t.epoch_ns in
  if epoch > t.last_epoch then begin
    t.last_epoch <- epoch;
    t.epochs <- t.epochs + 1;
    run_epoch t ~now
  end

let force t ~now =
  (* An on-demand epoch consumes the current boundary: a subsequent
     [tick] in the same epoch stays a no-op, so forcing never doubles
     the migration rate. *)
  t.last_epoch <- max t.last_epoch (now / t.epoch_ns);
  t.epochs <- t.epochs + 1;
  run_epoch t ~now

let migrations t = t.migrations
let bytes_moved t = t.bytes_moved
let failed t = t.failed
let charged_ns t = t.charged_ns
let epochs t = t.epochs
let policy t = t.policy
