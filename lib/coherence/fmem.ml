open Kona_util

type policy = Lru | Fifo | Random of int

type frame = {
  mutable vpage : int; (* -1 = free *)
  mutable stamp : int; (* LRU: last touch; FIFO: insertion time *)
  dirty : Bitmap.t;
}

type t = {
  frames : frame array; (* nsets * assoc, way-major *)
  nsets : int;
  assoc : int;
  policy : policy;
  rng : Rng.t;
  mutable tick : int;
  (* Per-set probe accounting, indexed by set: cache-organization skew
     (which sets thrash) is invisible in aggregate hit rates. *)
  set_hits : int array;
  set_misses : int array;
  set_evictions : int array;
}

let create ?(assoc = 4) ?(policy = Lru) ~pages () =
  if pages <= 0 || assoc <= 0 || pages mod assoc <> 0 then
    invalid_arg "Fmem.create: pages must be a positive multiple of assoc";
  let nsets = pages / assoc in
  {
    frames =
      Array.init pages (fun _ ->
          { vpage = -1; stamp = 0; dirty = Bitmap.create Units.lines_per_page });
    nsets;
    assoc;
    policy;
    rng = Rng.create ~seed:(match policy with Random seed -> seed | Lru | Fifo -> 0);
    tick = 0;
    set_hits = Array.make nsets 0;
    set_misses = Array.make nsets 0;
    set_evictions = Array.make nsets 0;
  }

let pages t = Array.length t.frames
let assoc t = t.assoc

let resident t =
  Array.fold_left (fun acc f -> if f.vpage >= 0 then acc + 1 else acc) 0 t.frames

let base t vpage = vpage mod t.nsets * t.assoc

let find t vpage =
  let b = base t vpage in
  let rec loop way =
    if way = t.assoc then None
    else if t.frames.(b + way).vpage = vpage then Some t.frames.(b + way)
    else loop (way + 1)
  in
  loop 0

type victim = { vpage : int; dirty_lines : Bitmap.t }

let touch t (frame : frame) =
  t.tick <- t.tick + 1;
  frame.stamp <- t.tick

let set_of t vpage = vpage mod t.nsets

let lookup t ~vpage =
  match find t vpage with
  | Some frame ->
      (* FIFO keeps the insertion stamp; LRU refreshes on every touch. *)
      (match t.policy with Lru -> touch t frame | Fifo | Random _ -> ());
      t.set_hits.(set_of t vpage) <- t.set_hits.(set_of t vpage) + 1;
      true
  | None ->
      t.set_misses.(set_of t vpage) <- t.set_misses.(set_of t vpage) + 1;
      false

(* The set's next victim: a free frame if any, else per policy. *)
let lru_frame t vpage : frame =
  let b = base t vpage in
  let free = ref None in
  for way = 0 to t.assoc - 1 do
    if t.frames.(b + way).vpage = -1 && !free = None then free := Some t.frames.(b + way)
  done;
  match !free with
  | Some f -> f
  | None -> (
      match t.policy with
      | Lru | Fifo ->
          let best = ref t.frames.(b) in
          for way = 1 to t.assoc - 1 do
            let f = t.frames.(b + way) in
            if f.stamp < !best.stamp then best := f
          done;
          !best
      | Random _ -> t.frames.(b + Rng.int t.rng t.assoc))

let take_victim (frame : frame) =
  let v = { vpage = frame.vpage; dirty_lines = Bitmap.copy frame.dirty } in
  frame.vpage <- -1;
  frame.stamp <- 0;
  Bitmap.clear_all frame.dirty;
  v

let insert t ~vpage =
  match find t vpage with
  | Some frame ->
      touch t frame;
      None
  | None ->
      let frame = lru_frame t vpage in
      let victim = if frame.vpage = -1 then None else Some (take_victim frame) in
      if victim <> None then
        t.set_evictions.(set_of t vpage) <- t.set_evictions.(set_of t vpage) + 1;
      frame.vpage <- vpage;
      Bitmap.clear_all frame.dirty;
      touch t frame;
      victim

let mark_dirty t ~vpage ~line =
  assert (line >= 0 && line < Units.lines_per_page);
  match find t vpage with
  | Some frame ->
      Bitmap.set frame.dirty line;
      true
  | None -> false

let dirty_lines t ~vpage = Option.map (fun f -> Bitmap.copy f.dirty) (find t vpage)

let clear_dirty t ~vpage =
  match find t vpage with Some f -> Bitmap.clear_all f.dirty | None -> ()

let evict t ~vpage =
  match find t vpage with
  | None -> None
  | Some frame ->
      t.set_evictions.(set_of t vpage) <- t.set_evictions.(set_of t vpage) + 1;
      Some (take_victim frame)

let victim_candidate t ~vpage =
  let frame = lru_frame t vpage in
  if frame.vpage = -1 then None else Some frame.vpage

let nsets t = t.nsets
let sum = Array.fold_left ( + ) 0
let probe_hits t = sum t.set_hits
let probe_misses t = sum t.set_misses
let evictions t = sum t.set_evictions

let set_counters t ~set =
  if set < 0 || set >= t.nsets then invalid_arg "Fmem.set_counters: set out of range";
  (t.set_hits.(set), t.set_misses.(set), t.set_evictions.(set))

let iter_resident t f =
  Array.iter
    (fun (frame : frame) ->
      if frame.vpage >= 0 then f ~vpage:frame.vpage ~dirty:(Bitmap.count frame.dirty))
    t.frames
