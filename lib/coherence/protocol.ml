type state = Invalid | Shared | Exclusive | Modified
type processor_event = Read | Write | Evict
type bus_event = Bus_read | Bus_read_for_ownership | Bus_invalidate

type action =
  | No_bus_action
  | Issue_read
  | Issue_rfo
  | Issue_invalidate
  | Writeback
  | Supply_data

let on_processor state event =
  match (state, event) with
  (* misses *)
  | Invalid, Read -> (Exclusive, Issue_read)
  (* we model the uncontended case: a read fill arrives Exclusive; the
     home may downgrade it to Shared if other sharers exist *)
  | Invalid, Write -> (Modified, Issue_rfo)
  | Invalid, Evict -> (Invalid, No_bus_action)
  (* hits *)
  | Shared, Read -> (Shared, No_bus_action)
  | Shared, Write -> (Modified, Issue_invalidate)
  | Shared, Evict -> (Invalid, No_bus_action) (* silent drop of clean data *)
  | Exclusive, Read -> (Exclusive, No_bus_action)
  | Exclusive, Write -> (Modified, No_bus_action) (* the silent upgrade *)
  | Exclusive, Evict -> (Invalid, No_bus_action)
  | Modified, Read -> (Modified, No_bus_action)
  | Modified, Write -> (Modified, No_bus_action)
  | Modified, Evict -> (Invalid, Writeback)

let on_bus state event =
  match (state, event) with
  | Invalid, (Bus_read | Bus_read_for_ownership | Bus_invalidate) ->
      (Invalid, No_bus_action)
  | Shared, Bus_read -> (Shared, No_bus_action)
  | Shared, (Bus_read_for_ownership | Bus_invalidate) -> (Invalid, No_bus_action)
  | Exclusive, Bus_read -> (Shared, No_bus_action)
  | Exclusive, (Bus_read_for_ownership | Bus_invalidate) -> (Invalid, No_bus_action)
  | Modified, Bus_read -> (Shared, Supply_data)
  | Modified, Bus_read_for_ownership -> (Invalid, Supply_data)
  | Modified, Bus_invalidate ->
      (* An invalidate targets Shared copies; a Modified line cannot
         coexist with one, but degrade gracefully: supply and drop. *)
      (Invalid, Supply_data)

let home_observes = function
  | Issue_read | Issue_rfo | Issue_invalidate | Writeback | Supply_data -> true
  | No_bus_action -> false

let is_dirty = function Modified -> true | Invalid | Shared | Exclusive -> false

let pp fmt state =
  Format.pp_print_string fmt
    (match state with
    | Invalid -> "I"
    | Shared -> "S"
    | Exclusive -> "E"
    | Modified -> "M")
