(** MESI cache-coherence protocol state machine (§2.3).

    The paper's key observation is that the memory controller (and hence a
    cache-coherent FPGA acting as one) has "excellent visibility into when
    a cache-line is being read or written", because every transition that
    matters crosses the interconnect.  This module makes that visibility
    precise: it models one cache-line's state at a caching agent, the bus
    action each CPU/remote event triggers, and {e which of those actions
    the home agent (the FPGA) observes}.  {!Directory} is the home-side
    projection of exactly these observable actions; tests tie the two
    together. *)

type state =
  | Invalid
  | Shared  (** clean, possibly other sharers *)
  | Exclusive  (** clean, sole owner — silent upgrade to Modified allowed *)
  | Modified  (** dirty, sole owner *)

type processor_event =
  | Read  (** local load *)
  | Write  (** local store *)
  | Evict  (** capacity/conflict replacement *)

type bus_event =
  | Bus_read  (** another agent wants to read the line *)
  | Bus_read_for_ownership  (** another agent wants to write it *)
  | Bus_invalidate  (** another agent upgrades Shared -> Modified *)

type action =
  | No_bus_action  (** cache-internal; invisible to the home agent *)
  | Issue_read  (** miss: request the line (home sees a fill) *)
  | Issue_rfo  (** write miss: request for ownership (home sees a write fill) *)
  | Issue_invalidate  (** upgrade S->M: invalidation broadcast *)
  | Writeback  (** modified data leaves the cache (home sees the data) *)
  | Supply_data  (** respond to a snoop with the modified line *)

val on_processor : state -> processor_event -> state * action
(** Next state and bus action for a local CPU event. *)

val on_bus : state -> bus_event -> state * action
(** Next state and response for an observed bus event (a snoop). *)

val home_observes : action -> bool
(** Whether the home agent (the ccFPGA directory) learns anything from the
    action.  The crucial asymmetries, which drive Kona's design:
    [Evict] of a {e clean} line is silent (so the directory over-
    approximates sharers), and the [Exclusive -> Modified] upgrade is
    silent (so writes are only visible at writeback — hence eviction must
    snoop, §4.4). *)

val is_dirty : state -> bool
val pp : Format.formatter -> state -> unit
