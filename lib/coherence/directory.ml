type state = Invalid | Shared | Modified

type t = {
  lines : (int, state) Hashtbl.t; (* absent = Invalid *)
  sharers : (int, int list) Hashtbl.t; (* absent = no tracked sharers *)
  owners : (int, int) Hashtbl.t; (* absent = no exclusive owner *)
  mutable fills : int;
  mutable writebacks : int;
  mutable snoops : int;
  mutable handoffs : int;
  mutable owner_changes : int;
  mutable invalidations : int;
}

type grant = {
  g_peer : int option;
  g_peer_dirty : bool;
  g_invalidated : int list;
}

let no_grant = { g_peer = None; g_peer_dirty = false; g_invalidated = [] }

let create () =
  {
    lines = Hashtbl.create 4096;
    sharers = Hashtbl.create 64;
    owners = Hashtbl.create 64;
    fills = 0;
    writebacks = 0;
    snoops = 0;
    handoffs = 0;
    owner_changes = 0;
    invalidations = 0;
  }

let state t ~line =
  match Hashtbl.find_opt t.lines line with Some s -> s | None -> Invalid

let sharers t ~line =
  match Hashtbl.find_opt t.sharers line with
  | None -> []
  | Some l -> List.sort compare l

let owner t ~line = Hashtbl.find_opt t.owners line

let add_sharer t ~line s =
  let cur =
    match Hashtbl.find_opt t.sharers line with Some l -> l | None -> []
  in
  if not (List.mem s cur) then Hashtbl.replace t.sharers line (s :: cur)

let on_fill ?sharer t ~line ~write =
  t.fills <- t.fills + 1;
  let next =
    match (state t ~line, write) with
    | _, true -> Modified
    | Modified, false -> Modified (* already writable; read refill keeps it *)
    | (Invalid | Shared), false -> Shared
  in
  Hashtbl.replace t.lines line next;
  (if write then
     (* record who took the writable copy so [owner]/[audit] stay coherent
        even for callers that predate [acquire] *)
     Hashtbl.replace t.owners line (Option.value sharer ~default:0));
  match sharer with None -> () | Some s -> add_sharer t ~line s

let on_writeback t ~line =
  t.writebacks <- t.writebacks + 1;
  Hashtbl.remove t.lines line;
  Hashtbl.remove t.sharers line;
  Hashtbl.remove t.owners line

let snoop t ~line =
  t.snoops <- t.snoops + 1;
  let result = match state t ~line with Modified -> `Dirty | Shared | Invalid -> `Clean in
  Hashtbl.remove t.lines line;
  Hashtbl.remove t.sharers line;
  Hashtbl.remove t.owners line;
  result

let snoop_sharers t ~line =
  let who = sharers t ~line in
  (* one recall message per tracked sharer: invalidating a wide reader set
     costs proportionally, not a flat single snoop *)
  t.snoops <- t.snoops + List.length who;
  t.invalidations <- t.invalidations + List.length who;
  Hashtbl.remove t.lines line;
  Hashtbl.remove t.sharers line;
  Hashtbl.remove t.owners line;
  who

let acquire t ~line ~tenant ~write =
  let grant_exclusive ?(inv = []) ?peer ?(dirty = false) () =
    t.fills <- t.fills + 1;
    t.owner_changes <- t.owner_changes + 1;
    Hashtbl.replace t.lines line Modified;
    Hashtbl.replace t.owners line tenant;
    Hashtbl.replace t.sharers line [ tenant ];
    { g_peer = peer; g_peer_dirty = dirty; g_invalidated = inv }
  in
  if write then
    match (state t ~line, owner t ~line) with
    | Modified, Some o when o = tenant -> no_grant (* write hit *)
    | Modified, Some o ->
        (* writer handoff: recall the dirty owner's copy, transfer
           ownership to the requester *)
        t.snoops <- t.snoops + 1;
        t.invalidations <- t.invalidations + 1;
        t.writebacks <- t.writebacks + 1;
        t.handoffs <- t.handoffs + 1;
        grant_exclusive ~peer:o ~dirty:true ()
    | (Invalid | Shared), _ | Modified, None ->
        (* RFO over a (possibly empty) reader set: every other sharer's
           copy dies before the requester may write *)
        let inv = List.filter (fun s -> s <> tenant) (sharers t ~line) in
        t.snoops <- t.snoops + List.length inv;
        t.invalidations <- t.invalidations + List.length inv;
        grant_exclusive ~inv ()
  else
    match (state t ~line, owner t ~line) with
    | Modified, Some o when o = tenant -> no_grant (* owner reads own line *)
    | Modified, Some o ->
        (* dirty downgrade: the owner's copy comes home; both end Shared *)
        t.snoops <- t.snoops + 1;
        t.writebacks <- t.writebacks + 1;
        t.fills <- t.fills + 1;
        Hashtbl.remove t.owners line;
        Hashtbl.replace t.lines line Shared;
        Hashtbl.replace t.sharers line
          (if o = tenant then [ tenant ] else [ tenant; o ]);
        { g_peer = Some o; g_peer_dirty = true; g_invalidated = [] }
    | (Invalid | Shared), _ | Modified, None ->
        let cur =
          match Hashtbl.find_opt t.sharers line with Some l -> l | None -> []
        in
        if not (List.mem tenant cur) then begin
          t.fills <- t.fills + 1;
          add_sharer t ~line tenant
        end;
        Hashtbl.replace t.lines line Shared;
        no_grant

let audit t =
  let bad = ref [] in
  let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  Hashtbl.iter
    (fun line st ->
      let sh = sharers t ~line in
      let ow = owner t ~line in
      match st with
      | Invalid -> add "line %d: tracked as Invalid" line
      | Shared -> (
          match ow with
          | Some o -> add "line %d: Shared but owner %d recorded" line o
          | None -> ())
      | Modified -> (
          match ow with
          | None -> () (* single-agent legacy use records no owner *)
          | Some o ->
              List.iter
                (fun s ->
                  if s <> o then
                    add "line %d: owned by %d but %d still holds a copy" line
                      o s)
                sh))
    t.lines;
  Hashtbl.iter
    (fun line o ->
      if state t ~line <> Modified then
        add "line %d: stale owner %d on non-Modified line" line o)
    t.owners;
  List.sort compare !bad

let granted_lines t = Hashtbl.length t.lines
let fills t = t.fills
let writebacks t = t.writebacks
let snoops t = t.snoops
let handoffs t = t.handoffs
let owner_changes t = t.owner_changes
let invalidations t = t.invalidations
