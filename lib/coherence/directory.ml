type state = Invalid | Shared | Modified

type t = {
  lines : (int, state) Hashtbl.t; (* absent = Invalid *)
  sharers : (int, int list) Hashtbl.t; (* absent = no tracked sharers *)
  mutable fills : int;
  mutable writebacks : int;
  mutable snoops : int;
}

let create () =
  {
    lines = Hashtbl.create 4096;
    sharers = Hashtbl.create 64;
    fills = 0;
    writebacks = 0;
    snoops = 0;
  }

let state t ~line =
  match Hashtbl.find_opt t.lines line with Some s -> s | None -> Invalid

let on_fill ?sharer t ~line ~write =
  t.fills <- t.fills + 1;
  let next =
    match (state t ~line, write) with
    | _, true -> Modified
    | Modified, false -> Modified (* already writable; read refill keeps it *)
    | (Invalid | Shared), false -> Shared
  in
  Hashtbl.replace t.lines line next;
  match sharer with
  | None -> ()
  | Some s ->
      let cur =
        match Hashtbl.find_opt t.sharers line with Some l -> l | None -> []
      in
      if not (List.mem s cur) then Hashtbl.replace t.sharers line (s :: cur)

let on_writeback t ~line =
  t.writebacks <- t.writebacks + 1;
  Hashtbl.remove t.lines line;
  Hashtbl.remove t.sharers line

let snoop t ~line =
  t.snoops <- t.snoops + 1;
  let result = match state t ~line with Modified -> `Dirty | Shared | Invalid -> `Clean in
  Hashtbl.remove t.lines line;
  Hashtbl.remove t.sharers line;
  result

let sharers t ~line =
  match Hashtbl.find_opt t.sharers line with
  | None -> []
  | Some l -> List.sort compare l

let snoop_sharers t ~line =
  t.snoops <- t.snoops + 1;
  let who = sharers t ~line in
  Hashtbl.remove t.lines line;
  Hashtbl.remove t.sharers line;
  who

let granted_lines t = Hashtbl.length t.lines
let fills t = t.fills
let writebacks t = t.writebacks
let snoops t = t.snoops
