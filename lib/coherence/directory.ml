type state = Invalid | Shared | Modified

type t = {
  lines : (int, state) Hashtbl.t; (* absent = Invalid *)
  mutable fills : int;
  mutable writebacks : int;
}

let create () = { lines = Hashtbl.create 4096; fills = 0; writebacks = 0 }

let state t ~line =
  match Hashtbl.find_opt t.lines line with Some s -> s | None -> Invalid

let on_fill t ~line ~write =
  t.fills <- t.fills + 1;
  let next =
    match (state t ~line, write) with
    | _, true -> Modified
    | Modified, false -> Modified (* already writable; read refill keeps it *)
    | (Invalid | Shared), false -> Shared
  in
  Hashtbl.replace t.lines line next

let on_writeback t ~line =
  t.writebacks <- t.writebacks + 1;
  Hashtbl.remove t.lines line

let snoop t ~line =
  let result = match state t ~line with Modified -> `Dirty | Shared | Invalid -> `Clean in
  Hashtbl.remove t.lines line;
  result

let granted_lines t = Hashtbl.length t.lines
let fills t = t.fills
let writebacks t = t.writebacks
