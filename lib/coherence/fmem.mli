(** FMem: the FPGA-attached DRAM used as a page cache for VFMem (§4.3-4.4).

    Designed exactly as the paper specifies local translation: a 4-way
    set-associative cache whose block size equals the page size, caching
    whole pages so applications keep spatial locality, while the CPU's own
    caches provide temporal locality.  Each frame carries a 64-bit dirty
    cache-line bitmap — the hardware primitive (track-local-data) that
    enables cache-line granularity eviction. *)

type t

type policy =
  | Lru  (** least recently used within the set (the paper's choice) *)
  | Fifo  (** oldest insertion within the set *)
  | Random of int  (** uniform over the set, seeded *)

val create : ?assoc:int -> ?policy:policy -> pages:int -> unit -> t
(** Capacity of [pages] frames (must be a positive multiple of [assoc],
    default associativity 4, default policy [Lru]). *)

val pages : t -> int
val assoc : t -> int
val resident : t -> int

type victim = {
  vpage : int;  (** VFMem page index being evicted *)
  dirty_lines : Kona_util.Bitmap.t;  (** its dirty-line mask at eviction *)
}

val lookup : t -> vpage:int -> bool
(** Hit test; refreshes LRU state on hit. *)

val insert : t -> vpage:int -> victim option
(** Cache [vpage], evicting the set's LRU frame if full.  The caller (the
    eviction handler) owns the victim's writeback.  Inserting a resident
    page is a no-op returning [None]. *)

val mark_dirty : t -> vpage:int -> line:int -> bool
(** Record a dirty cache-line writeback observed by the directory; [line]
    in [0, 63].  Returns [false] if the page is not resident (the writeback
    raced with an eviction — caller must handle it). *)

val dirty_lines : t -> vpage:int -> Kona_util.Bitmap.t option
(** Copy of the resident page's dirty mask. *)

val clear_dirty : t -> vpage:int -> unit

val evict : t -> vpage:int -> victim option
(** Force out a specific resident page. *)

val victim_candidate : t -> vpage:int -> int option
(** Which page the set containing [vpage] would evict next (LRU), if the
    set is full. *)

val iter_resident : t -> (vpage:int -> dirty:int -> unit) -> unit
(** [dirty] is the number of dirty lines in the frame. *)

(** {2 Telemetry counters}

    Probe-level accounting, kept per set so organization skew (hot sets
    thrashing while others idle) is observable.  A "probe" is any [lookup];
    note the runtime probes more than once per demand access, so these are
    deliberately distinct from the caching handler's demand hit/miss
    counters. *)

val nsets : t -> int

val probe_hits : t -> int
val probe_misses : t -> int

val evictions : t -> int
(** Frames displaced by [insert] plus forced [evict]s. *)

val set_counters : t -> set:int -> int * int * int
(** [(hits, misses, evictions)] for one set. *)
