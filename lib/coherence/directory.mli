(** The VFMem coherence directory maintained by the FPGA memory agent
    (§4.3): tracks, per cache-line, what the interconnect protocol lets the
    agent know about the CPU's copy.

    The protocol view is deliberately the weak one the paper's design
    depends on: a fill tells the agent the CPU {e has} the line (and
    whether it was requested for writing), a writeback tells it the line
    was modified and has left the CPU, and a snoop forcibly recalls it.
    The agent learns nothing when a shared line is silently dropped — which
    is why eviction must snoop rather than trust the directory
    (§4.4, "Snooping is necessary").

    When the directory mediates a rack-level shared segment the same table
    doubles as a full per-line MSI home directory over multiple writers:
    [acquire] is the home side of {!Protocol.on_processor} — a write miss
    is an RFO that recalls the current owner's (possibly dirty) copy and
    invalidates every other sharer; a read miss on a Modified line forces a
    dirty downgrade.  Because the home always answers read misses with a
    Shared grant, the Exclusive state of the per-agent MESI reference is
    unreachable here and the directory is exactly the home-side projection
    of {!Protocol} onto MSI (checked by the qcheck property in
    [test_coherence]). *)

type state =
  | Invalid  (** not at the CPU, as far as the agent knows *)
  | Shared  (** granted for reading; CPU may silently drop it *)
  | Modified  (** granted for writing; CPU may hold newer data *)

type t

type grant = {
  g_peer : int option;
      (** previous exclusive owner whose copy had to be recalled; [None] on
          a hit, a fresh grant, or when the requester already owned it *)
  g_peer_dirty : bool;
      (** the recalled copy was writable, so the recall response carries
          data (writer handoff / dirty downgrade) *)
  g_invalidated : int list;
      (** sharers whose read-only copies died for this RFO, ascending; the
          requester itself is never listed *)
}
(** What the home had to do to satisfy an [acquire]: the caller charges one
    recall message (plus a data transfer when dirty) per peer listed. *)

val create : unit -> t

val state : t -> line:int -> state
(** [line] is a global cache-line index (byte address / 64). *)

val acquire : t -> line:int -> tenant:int -> write:bool -> grant
(** Tenant [tenant] requests [line].  Read misses are granted Shared;
    a read of another tenant's Modified line recalls the owner's dirty
    copy and downgrades both to Shared.  [write:true] is an RFO: the
    requester becomes the single owner, the previous owner (if any) is
    recalled as [g_peer] with [g_peer_dirty = true] (a writer handoff),
    and every other sharer appears in [g_invalidated].  Hits (requester
    already holds sufficient permission) return {!no_grant}-shaped values
    and charge nothing. *)

val owner : t -> line:int -> int option
(** The single tenant holding [line] in Modified, if any. *)

val audit : t -> string list
(** Internal MSI consistency check, sorted: an owned line must be Modified
    with no other tracked copy; a Shared line must have no owner; owner
    entries must not outlive their grant.  Empty = coherent. *)

val on_fill : ?sharer:int -> t -> line:int -> write:bool -> unit
(** The CPU requested the line from VFMem.  When the directory mediates a
    rack-level shared segment, [sharer] identifies which tenant took the
    copy; the set of sharers per line is tracked so a writer's eviction can
    recall every remote reader ([snoop_sharers]). *)

val on_writeback : t -> line:int -> unit
(** A modified line reached the agent; the CPU no longer holds it. *)

val snoop : t -> line:int -> [ `Clean | `Dirty ]
(** Recall the line: afterwards it is [Invalid].  [`Dirty] if the agent had
    granted write permission (the CPU's copy may contain new data that the
    snoop response carries). *)

val sharers : t -> line:int -> int list
(** Tenants currently holding a tracked copy of [line], sorted ascending.
    Non-destructive. *)

val snoop_sharers : t -> line:int -> int list
(** Recall the line from every tracked sharer: returns the sorted sharer
    list, then forgets both the line state and its sharers.  Counts one
    snoop (and one invalidation) per recalled sharer, so invalidating a
    wide reader set is charged proportionally. *)

val granted_lines : t -> int
(** Lines currently believed to be at the CPU. *)

val fills : t -> int
val writebacks : t -> int

val snoops : t -> int
(** Recalls issued ([snoop] + per-sharer [snoop_sharers] + [acquire]
    recalls/invalidations). *)

val handoffs : t -> int
(** Writer handoffs: RFOs that recalled another tenant's dirty copy. *)

val owner_changes : t -> int
(** Exclusive grants handed out by [acquire] (first grant included). *)

val invalidations : t -> int
(** Copies killed by RFOs, writer handoffs and [snoop_sharers] recalls. *)
