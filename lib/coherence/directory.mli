(** The VFMem coherence directory maintained by the FPGA memory agent
    (§4.3): tracks, per cache-line, what the interconnect protocol lets the
    agent know about the CPU's copy.

    The protocol view is deliberately the weak one the paper's design
    depends on: a fill tells the agent the CPU {e has} the line (and
    whether it was requested for writing), a writeback tells it the line
    was modified and has left the CPU, and a snoop forcibly recalls it.
    The agent learns nothing when a shared line is silently dropped — which
    is why eviction must snoop rather than trust the directory
    (§4.4, "Snooping is necessary"). *)

type state =
  | Invalid  (** not at the CPU, as far as the agent knows *)
  | Shared  (** granted for reading; CPU may silently drop it *)
  | Modified  (** granted for writing; CPU may hold newer data *)

type t

val create : unit -> t

val state : t -> line:int -> state
(** [line] is a global cache-line index (byte address / 64). *)

val on_fill : ?sharer:int -> t -> line:int -> write:bool -> unit
(** The CPU requested the line from VFMem.  When the directory mediates a
    rack-level shared segment, [sharer] identifies which tenant took the
    copy; the set of sharers per line is tracked so a writer's eviction can
    recall every remote reader ([snoop_sharers]). *)

val on_writeback : t -> line:int -> unit
(** A modified line reached the agent; the CPU no longer holds it. *)

val snoop : t -> line:int -> [ `Clean | `Dirty ]
(** Recall the line: afterwards it is [Invalid].  [`Dirty] if the agent had
    granted write permission (the CPU's copy may contain new data that the
    snoop response carries). *)

val sharers : t -> line:int -> int list
(** Tenants currently holding a tracked copy of [line], sorted ascending.
    Non-destructive. *)

val snoop_sharers : t -> line:int -> int list
(** Recall the line from every tracked sharer: returns the sorted sharer
    list, then forgets both the line state and its sharers.  Counts as one
    snoop. *)

val granted_lines : t -> int
(** Lines currently believed to be at the CPU. *)

val fills : t -> int
val writebacks : t -> int

val snoops : t -> int
(** Recalls issued ([snoop] + [snoop_sharers]). *)
