(** Fault-plan grammar (§4.5 failure modes, made injectable).

    A plan is a list of clauses separated by [';'].  Each clause is

    {v kind[@time][:key=value[,key=value...]] v}

    where durations accept [ns]/[us]/[ms]/[s] suffixes (bare integers are
    nanoseconds) and probabilities are floats in [0, 1].  Kinds:

    - [node-crash@2ms:id=1] — memory node [id] fail-stops at virtual time
      2 ms (failure mode 3; recovered by replica failover when mirrors
      exist, reported as graceful degradation otherwise);
    - [link-flap@1ms:dur=200us] — the shared NIC port carries no traffic
      for the window (failure mode 2; absorbed by the MCE path);
    - [rpc-timeout:p=0.01] — each control-plane RPC independently times
      out with probability [p] and is retried with backoff;
    - [wqe-drop:p=0.001] — each posted WQE transmission attempt is lost
      with probability [p], exercising the QP retransmission machinery;
    - [wqe-delay:p=0.01,ns=5us] — each WQE is delayed by [ns] with
      probability [p].

    All probabilistic draws come from a seeded splitmix stream, so a plan
    plus a seed reproduces the same faults bit-for-bit. *)

type clause =
  | Node_crash of { at_ns : int; id : int }
  | Link_flap of { at_ns : int; dur_ns : int }
  | Rpc_timeout of { p : float }
  | Wqe_drop of { p : float }
  | Wqe_delay of { p : float; delay_ns : int }

type t = clause list

val parse : string -> (t, string) result
(** Parse a [';']-separated plan; the empty string is the empty plan.
    [Error msg] pinpoints the offending clause. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val to_string : t -> string
(** Canonical round-trippable rendering ([parse (to_string p)] = [Ok p]). *)

val pp : Format.formatter -> t -> unit
