(** Fault-plan grammar (§4.5 failure modes, made injectable).

    A plan is a list of clauses separated by [';'].  Each clause is

    {v kind[@time][:key=value[,key=value...]] v}

    where durations accept [ns]/[us]/[ms]/[s] suffixes (bare integers are
    nanoseconds) and probabilities are floats in [0, 1].  Kinds:

    - [node-crash@2ms:id=1] — memory node [id] fail-stops at virtual time
      2 ms (failure mode 3; recovered by replica failover when mirrors
      exist, reported as graceful degradation otherwise);
    - [link-flap@1ms:dur=200us] — the shared NIC port carries no traffic
      for the window (failure mode 2; absorbed by the MCE path);
    - [partition@2ms:dur=500us,nodes=0|1] — an asymmetric partition: the
      named memory nodes stay alive but their links drop control and
      data traffic for the window.  Distinct from fail-stop [node-crash]:
      under lease-based membership a partitioned node misses heartbeats
      and can be {e falsely} declared dead, and its deferred writes land
      after the heal — the split-brain scenario fencing must absorb;
    - [rpc-timeout:p=0.01] — each control-plane RPC independently times
      out with probability [p] and is retried with backoff;
    - [wqe-drop:p=0.001] — each posted WQE transmission attempt is lost
      with probability [p], exercising the QP retransmission machinery;
    - [wqe-delay:p=0.01,ns=5us] — each WQE is delayed by [ns] with
      probability [p];
    - [bit-flip:p=0.01] — after a CL-log shipment lands, one bit of one
      delivered line is flipped at rest on one copy with probability [p]
      (per shipment), exercising checksum scrub-and-repair;
    - [torn-write:p=0.01] — one copy of a CL-log shipment arrives torn:
      the tail lines of one entry are corrupted in flight, exercising
      wire-CRC rejection and quarantine;
    - [stale-read:p=0.01] — each verified demand fetch independently
      returns a stale image with probability [p] and must be detected
      and retried (requires checksum verification to be on);
    - [dup-deliver:p=0.01] — each CL-log shipment is redelivered to the
      primary at the next flush with probability [p], exercising
      sequence-number duplicate rejection.

    All probabilistic draws come from a seeded splitmix stream, so a plan
    plus a seed reproduces the same faults bit-for-bit.

    A plan may not repeat a probabilistic kind (e.g. two [wqe-drop]
    clauses): [parse] rejects it with a named error rather than letting
    the last clause silently win.  Scheduled kinds ([node-crash],
    [link-flap], [partition]) may appear any number of times. *)

type clause =
  | Node_crash of { at_ns : int; id : int }
  | Link_flap of { at_ns : int; dur_ns : int }
  | Partition of { at_ns : int; dur_ns : int; ids : int list }
  | Rpc_timeout of { p : float }
  | Wqe_drop of { p : float }
  | Wqe_delay of { p : float; delay_ns : int }
  | Bit_flip of { p : float }
  | Torn_write of { p : float }
  | Stale_read of { p : float }
  | Dup_deliver of { p : float }

type t = clause list

val parse : string -> (t, string) result
(** Parse a [';']-separated plan; the empty string is the empty plan.
    [Error msg] pinpoints the offending clause. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val to_string : t -> string
(** Canonical round-trippable rendering ([parse (to_string p)] = [Ok p]). *)

val pp : Format.formatter -> t -> unit
