(** Deterministic fault injector: executes a {!Fault_spec} plan.

    Probabilistic decisions (WQE loss/delay, RPC timeouts) are drawn from
    independent seeded splitmix streams, one per decision point, so the
    same seed and plan reproduce the same faults regardless of how the
    surrounding simulation interleaves its draws.  Scheduled faults (node
    crashes) are virtual-clock triggered: the runtime polls
    [due_node_crashes] as its clocks advance.  Link flaps are returned
    once, at wiring time, for the NIC's outage calendar.

    The injector is pure decision-making plus counters; the components it
    hooks into (QP retransmission, RPC retry, node crash state, failover)
    own the recovery machinery. *)

type t

val create : seed:int -> plan:Fault_spec.t -> t

val plan : t -> Fault_spec.t

val arm : t -> Fault_spec.clause -> unit
(** Arm one more clause mid-run.  Probabilistic kinds combine with any
    already-armed probability as independent events (same rule as
    [create]); [Node_crash] is inserted into the pending-crash calendar.
    [Link_flap] only bumps the injected counter — installing the outage
    window on the NIC is the caller's job, since flap wiring happens via
    {!link_flaps} exactly once at create.  The decision streams are
    carved off at [create] independent of the plan, so arming never
    perturbs draws already made. *)

(** {2 Hooks} *)

val qp_inject : t -> unit -> [ `Drop | `Delay of int ] option
(** Per-WQE-transmission-attempt decision for {!Kona_rdma.Qp}; [None] means
    the attempt goes through clean.  Counts every injected fault. *)

val rpc_timeout : t -> unit -> bool
(** Per-RPC-attempt decision for {!Kona_rdma.Rpc}. *)

type delivery_fault = {
  torn : (int * int) option;
      (** Corrupt one copy's shipment in flight: [(target, entry)] raw
          picks; the CL log reduces them modulo copy/entry counts and
          tears the chosen entry's tail lines on that one copy. *)
  flip : (int * int * int * int) option;
      (** Flip one bit at rest after apply: [(target, entry, line, bit)]
          raw picks ([bit] < 512, a bit offset within a 64B line). *)
  dup : bool;
      (** Redeliver this shipment to the primary at the next flush. *)
}

val delivery_inject : t -> targets:int -> delivery_fault option
(** Per-CL-log-shipment decision ([targets] = number of copies the
    shipment fans out to: primary + live mirrors).  At most one copy is
    tampered per category per shipment, so a clean replica always
    exists for repair when replicas are configured.  No draws happen
    when no corruption clause is armed. *)

val corruption_armed : t -> bool
(** True when the plan contains bit-flip, torn-write or dup-deliver. *)

val read_inject : t -> unit -> bool
(** Per-verified-demand-fetch decision: [true] means this fetch
    observes a stale image and must be detected and retried.  Only
    consulted (and only draws) when checksum verification is on. *)

val stale_reads_armed : t -> bool

val link_flaps : t -> (int * int) list
(** [(at_ns, dur_ns)] outage windows to install on the NIC.  Calling this
    counts the flaps as injected (call it once, when wiring). *)

val due_node_crashes : t -> now:int -> int list
(** Node ids whose crash time has been reached; each id is returned once.
    O(1) when nothing is pending. *)

val crashes_pending : t -> int

val due_partitions : t -> now:int -> (int * int list) list
(** [(dur_ns, ids)] partitions whose start time has been reached; each is
    returned once.  The caller (the runtime) owns the partition windows —
    deferring deliveries, blocking heartbeats — like the NIC owns flap
    outages. *)

val partitions_pending : t -> int

(** {2 Accounting} *)

val injected : t -> int
(** Total faults injected across every category. *)

val counters : t -> (string * int) list
(** [(category, count)] pairs: node_crashes, link_flaps, rpc_timeouts,
    wqe_drops, wqe_delays, bit_flips, torn_writes, stale_reads,
    dup_delivers, partitions. *)
