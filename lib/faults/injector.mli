(** Deterministic fault injector: executes a {!Fault_spec} plan.

    Probabilistic decisions (WQE loss/delay, RPC timeouts) are drawn from
    independent seeded splitmix streams, one per decision point, so the
    same seed and plan reproduce the same faults regardless of how the
    surrounding simulation interleaves its draws.  Scheduled faults (node
    crashes) are virtual-clock triggered: the runtime polls
    [due_node_crashes] as its clocks advance.  Link flaps are returned
    once, at wiring time, for the NIC's outage calendar.

    The injector is pure decision-making plus counters; the components it
    hooks into (QP retransmission, RPC retry, node crash state, failover)
    own the recovery machinery. *)

type t

val create : seed:int -> plan:Fault_spec.t -> t

val plan : t -> Fault_spec.t

(** {2 Hooks} *)

val qp_inject : t -> unit -> [ `Drop | `Delay of int ] option
(** Per-WQE-transmission-attempt decision for {!Kona_rdma.Qp}; [None] means
    the attempt goes through clean.  Counts every injected fault. *)

val rpc_timeout : t -> unit -> bool
(** Per-RPC-attempt decision for {!Kona_rdma.Rpc}. *)

val link_flaps : t -> (int * int) list
(** [(at_ns, dur_ns)] outage windows to install on the NIC.  Calling this
    counts the flaps as injected (call it once, when wiring). *)

val due_node_crashes : t -> now:int -> int list
(** Node ids whose crash time has been reached; each id is returned once.
    O(1) when nothing is pending. *)

val crashes_pending : t -> int

(** {2 Accounting} *)

val injected : t -> int
(** Total faults injected across every category. *)

val counters : t -> (string * int) list
(** [(category, count)] pairs: node_crashes, link_flaps, rpc_timeouts,
    wqe_drops, wqe_delays. *)
