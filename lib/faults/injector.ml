open Kona_util

type t = {
  plan_ : Fault_spec.t;
  qp_rng : Rng.t;
  rpc_rng : Rng.t;
  p_drop : float;
  p_delay : float;
  delay_ns : int;
  p_rpc : float;
  mutable crashes : (int * int) list; (* (at_ns, id), sorted by time *)
  flaps : (int * int) list;
  mutable node_crashes : int;
  mutable link_flaps_applied : int;
  mutable rpc_timeouts : int;
  mutable wqe_drops : int;
  mutable wqe_delays : int;
}

let create ~seed ~plan =
  let root = Rng.create ~seed in
  let qp_rng = Rng.split root in
  let rpc_rng = Rng.split root in
  (* Independent clauses of the same kind compose: probabilities are
     combined as independent events, crash/flap schedules concatenate. *)
  let p_drop = ref 0. and p_delay = ref 0. and delay_ns = ref 0 and p_rpc = ref 0. in
  let crashes = ref [] and flaps = ref [] in
  let combine p q = 1. -. ((1. -. p) *. (1. -. q)) in
  List.iter
    (fun clause ->
      match clause with
      | Fault_spec.Node_crash { at_ns; id } -> crashes := (at_ns, id) :: !crashes
      | Fault_spec.Link_flap { at_ns; dur_ns } -> flaps := (at_ns, dur_ns) :: !flaps
      | Fault_spec.Rpc_timeout { p } -> p_rpc := combine !p_rpc p
      | Fault_spec.Wqe_drop { p } -> p_drop := combine !p_drop p
      | Fault_spec.Wqe_delay { p; delay_ns = d } ->
          p_delay := combine !p_delay p;
          delay_ns := max !delay_ns d)
    plan;
  {
    plan_ = plan;
    qp_rng;
    rpc_rng;
    p_drop = !p_drop;
    p_delay = !p_delay;
    delay_ns = !delay_ns;
    p_rpc = !p_rpc;
    crashes = List.sort compare !crashes;
    flaps = List.rev !flaps;
    node_crashes = 0;
    link_flaps_applied = 0;
    rpc_timeouts = 0;
    wqe_drops = 0;
    wqe_delays = 0;
  }

let plan t = t.plan_

let qp_inject t () =
  if t.p_drop = 0. && t.p_delay = 0. then None
  else begin
    (* Draws happen only for configured categories; a drop beats a delay
       when both fire (the lost attempt is retransmitted anyway). *)
    let drop = t.p_drop > 0. && Rng.float t.qp_rng 1.0 < t.p_drop in
    let delay = t.p_delay > 0. && Rng.float t.qp_rng 1.0 < t.p_delay in
    if drop then begin
      t.wqe_drops <- t.wqe_drops + 1;
      Some `Drop
    end
    else if delay then begin
      t.wqe_delays <- t.wqe_delays + 1;
      Some (`Delay t.delay_ns)
    end
    else None
  end

let rpc_timeout t () =
  t.p_rpc > 0.
  && Rng.float t.rpc_rng 1.0 < t.p_rpc
  && begin
       t.rpc_timeouts <- t.rpc_timeouts + 1;
       true
     end

let link_flaps t =
  t.link_flaps_applied <- List.length t.flaps;
  t.flaps

let crashes_pending t = List.length t.crashes

let due_node_crashes t ~now =
  match t.crashes with
  | [] -> []
  | _ ->
      let due, pending = List.partition (fun (at, _) -> at <= now) t.crashes in
      t.crashes <- pending;
      t.node_crashes <- t.node_crashes + List.length due;
      List.map snd due

let counters t =
  [
    ("node_crashes", t.node_crashes);
    ("link_flaps", t.link_flaps_applied);
    ("rpc_timeouts", t.rpc_timeouts);
    ("wqe_drops", t.wqe_drops);
    ("wqe_delays", t.wqe_delays);
  ]

let injected t = List.fold_left (fun acc (_, v) -> acc + v) 0 (counters t)
