open Kona_util

type delivery_fault = {
  torn : (int * int) option; (* (target pick, entry pick) *)
  flip : (int * int * int * int) option; (* (target, entry, line, bit picks) *)
  dup : bool;
}

type t = {
  plan_ : Fault_spec.t;
  qp_rng : Rng.t;
  rpc_rng : Rng.t;
  dlv_rng : Rng.t;
  read_rng : Rng.t;
  (* Probabilities are mutable so clauses can be armed mid-run (scenario
     engine); combining rules match [create].  The RNG streams are carved
     off at [create] independent of the plan, so arming later never
     perturbs the draw sequence of already-armed categories. *)
  mutable p_drop : float;
  mutable p_delay : float;
  mutable delay_ns : int;
  mutable p_rpc : float;
  mutable p_flip : float;
  mutable p_torn : float;
  mutable p_stale : float;
  mutable p_dup : float;
  mutable crashes : (int * int) list; (* (at_ns, id), sorted by time *)
  flaps : (int * int) list;
  (* (at_ns, dur_ns, ids), sorted by time: scheduled asymmetric
     partitions, handed out as they come due like crashes. *)
  mutable partitions : (int * int * int list) list;
  mutable node_crashes : int;
  mutable link_flaps_applied : int;
  mutable rpc_timeouts : int;
  mutable wqe_drops : int;
  mutable wqe_delays : int;
  mutable bit_flips : int;
  mutable torn_writes : int;
  mutable stale_reads : int;
  mutable dup_delivers : int;
  mutable partitions_applied : int;
}

(* Independent clauses of the same kind compose as independent events. *)
let combine p q = 1. -. ((1. -. p) *. (1. -. q))

let create ~seed ~plan =
  let root = Rng.create ~seed in
  (* Split order is ABI: streams must be carved off in the same order
     forever, and new streams appended after the existing ones, so an
     old (plan, seed) pair keeps reproducing the exact same faults. *)
  let qp_rng = Rng.split root in
  let rpc_rng = Rng.split root in
  let dlv_rng = Rng.split root in
  let read_rng = Rng.split root in
  (* Independent clauses of the same kind compose: probabilities are
     combined as independent events, crash/flap schedules concatenate. *)
  let p_drop = ref 0. and p_delay = ref 0. and delay_ns = ref 0 and p_rpc = ref 0. in
  let p_flip = ref 0. and p_torn = ref 0. and p_stale = ref 0. and p_dup = ref 0. in
  let crashes = ref [] and flaps = ref [] and partitions = ref [] in
  List.iter
    (fun clause ->
      match clause with
      | Fault_spec.Node_crash { at_ns; id } -> crashes := (at_ns, id) :: !crashes
      | Fault_spec.Link_flap { at_ns; dur_ns } -> flaps := (at_ns, dur_ns) :: !flaps
      | Fault_spec.Partition { at_ns; dur_ns; ids } ->
          partitions := (at_ns, dur_ns, ids) :: !partitions
      | Fault_spec.Rpc_timeout { p } -> p_rpc := combine !p_rpc p
      | Fault_spec.Wqe_drop { p } -> p_drop := combine !p_drop p
      | Fault_spec.Wqe_delay { p; delay_ns = d } ->
          p_delay := combine !p_delay p;
          delay_ns := max !delay_ns d
      | Fault_spec.Bit_flip { p } -> p_flip := combine !p_flip p
      | Fault_spec.Torn_write { p } -> p_torn := combine !p_torn p
      | Fault_spec.Stale_read { p } -> p_stale := combine !p_stale p
      | Fault_spec.Dup_deliver { p } -> p_dup := combine !p_dup p)
    plan;
  {
    plan_ = plan;
    qp_rng;
    rpc_rng;
    dlv_rng;
    read_rng;
    p_drop = !p_drop;
    p_delay = !p_delay;
    delay_ns = !delay_ns;
    p_rpc = !p_rpc;
    p_flip = !p_flip;
    p_torn = !p_torn;
    p_stale = !p_stale;
    p_dup = !p_dup;
    crashes = List.sort compare !crashes;
    flaps = List.rev !flaps;
    partitions = List.sort compare !partitions;
    node_crashes = 0;
    link_flaps_applied = 0;
    rpc_timeouts = 0;
    wqe_drops = 0;
    wqe_delays = 0;
    bit_flips = 0;
    torn_writes = 0;
    stale_reads = 0;
    dup_delivers = 0;
    partitions_applied = 0;
  }

let plan t = t.plan_

let arm t clause =
  match clause with
  | Fault_spec.Node_crash { at_ns; id } ->
      t.crashes <- List.sort compare ((at_ns, id) :: t.crashes)
  | Fault_spec.Link_flap _ ->
      (* The NIC outage calendar is installed by the caller (the injector
         only hands flaps out once, at wiring); record it as injected. *)
      t.link_flaps_applied <- t.link_flaps_applied + 1
  | Fault_spec.Partition { at_ns; dur_ns; ids } ->
      t.partitions <- List.sort compare ((at_ns, dur_ns, ids) :: t.partitions)
  | Fault_spec.Rpc_timeout { p } -> t.p_rpc <- combine t.p_rpc p
  | Fault_spec.Wqe_drop { p } -> t.p_drop <- combine t.p_drop p
  | Fault_spec.Wqe_delay { p; delay_ns = d } ->
      t.p_delay <- combine t.p_delay p;
      t.delay_ns <- max t.delay_ns d
  | Fault_spec.Bit_flip { p } -> t.p_flip <- combine t.p_flip p
  | Fault_spec.Torn_write { p } -> t.p_torn <- combine t.p_torn p
  | Fault_spec.Stale_read { p } -> t.p_stale <- combine t.p_stale p
  | Fault_spec.Dup_deliver { p } -> t.p_dup <- combine t.p_dup p

let qp_inject t () =
  if t.p_drop = 0. && t.p_delay = 0. then None
  else begin
    (* Draws happen only for configured categories; a drop beats a delay
       when both fire (the lost attempt is retransmitted anyway). *)
    let drop = t.p_drop > 0. && Rng.float t.qp_rng 1.0 < t.p_drop in
    let delay = t.p_delay > 0. && Rng.float t.qp_rng 1.0 < t.p_delay in
    if drop then begin
      t.wqe_drops <- t.wqe_drops + 1;
      Some `Drop
    end
    else if delay then begin
      t.wqe_delays <- t.wqe_delays + 1;
      Some (`Delay t.delay_ns)
    end
    else None
  end

let corruption_armed t =
  t.p_flip > 0. || t.p_torn > 0. || t.p_dup > 0.

let delivery_inject t ~targets =
  if not (corruption_armed t) then None
  else begin
    (* One decision per shipment per category.  The picks are raw draws;
       the CL log reduces them modulo its entry/line counts so the
       injector stays ignorant of shipment shapes (and the stream stays
       identical across shipment sizes). *)
    let torn =
      if t.p_torn > 0. && Rng.float t.dlv_rng 1.0 < t.p_torn then begin
        t.torn_writes <- t.torn_writes + 1;
        Some (Rng.int t.dlv_rng targets, Rng.int t.dlv_rng 1_000_000)
      end
      else None
    in
    let flip =
      if t.p_flip > 0. && Rng.float t.dlv_rng 1.0 < t.p_flip then begin
        t.bit_flips <- t.bit_flips + 1;
        Some
          ( Rng.int t.dlv_rng targets,
            Rng.int t.dlv_rng 1_000_000,
            Rng.int t.dlv_rng 1_000_000,
            Rng.int t.dlv_rng 512 )
      end
      else None
    in
    let dup =
      t.p_dup > 0.
      && Rng.float t.dlv_rng 1.0 < t.p_dup
      && begin
           t.dup_delivers <- t.dup_delivers + 1;
           true
         end
    in
    if torn = None && flip = None && not dup then None
    else Some { torn; flip; dup }
  end

let read_inject t () =
  t.p_stale > 0.
  && Rng.float t.read_rng 1.0 < t.p_stale
  && begin
       t.stale_reads <- t.stale_reads + 1;
       true
     end

let stale_reads_armed t = t.p_stale > 0.

let rpc_timeout t () =
  t.p_rpc > 0.
  && Rng.float t.rpc_rng 1.0 < t.p_rpc
  && begin
       t.rpc_timeouts <- t.rpc_timeouts + 1;
       true
     end

let link_flaps t =
  t.link_flaps_applied <- List.length t.flaps;
  t.flaps

let crashes_pending t = List.length t.crashes

let due_node_crashes t ~now =
  match t.crashes with
  | [] -> []
  | _ ->
      let due, pending = List.partition (fun (at, _) -> at <= now) t.crashes in
      t.crashes <- pending;
      t.node_crashes <- t.node_crashes + List.length due;
      List.map snd due

let partitions_pending t = List.length t.partitions

let due_partitions t ~now =
  match t.partitions with
  | [] -> []
  | _ ->
      let due, pending =
        List.partition (fun (at, _, _) -> at <= now) t.partitions
      in
      t.partitions <- pending;
      t.partitions_applied <- t.partitions_applied + List.length due;
      List.map (fun (_, dur_ns, ids) -> (dur_ns, ids)) due

let counters t =
  [
    ("node_crashes", t.node_crashes);
    ("link_flaps", t.link_flaps_applied);
    ("rpc_timeouts", t.rpc_timeouts);
    ("wqe_drops", t.wqe_drops);
    ("wqe_delays", t.wqe_delays);
    ("bit_flips", t.bit_flips);
    ("torn_writes", t.torn_writes);
    ("stale_reads", t.stale_reads);
    ("dup_delivers", t.dup_delivers);
    ("partitions", t.partitions_applied);
  ]

let injected t = List.fold_left (fun acc (_, v) -> acc + v) 0 (counters t)
