type clause =
  | Node_crash of { at_ns : int; id : int }
  | Link_flap of { at_ns : int; dur_ns : int }
  | Partition of { at_ns : int; dur_ns : int; ids : int list }
  | Rpc_timeout of { p : float }
  | Wqe_drop of { p : float }
  | Wqe_delay of { p : float; delay_ns : int }
  | Bit_flip of { p : float }
  | Torn_write of { p : float }
  | Stale_read of { p : float }
  | Dup_deliver of { p : float }

type t = clause list

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* "200us" -> 200_000; bare integers are nanoseconds. *)
let duration_of_string s =
  let num, mult =
    let n = String.length s in
    let split k m = (String.sub s 0 (n - k), m) in
    if n >= 2 && String.sub s (n - 2) 2 = "ns" then split 2 1
    else if n >= 2 && String.sub s (n - 2) 2 = "us" then split 2 1_000
    else if n >= 2 && String.sub s (n - 2) 2 = "ms" then split 2 1_000_000
    else if n >= 1 && s.[n - 1] = 's' then split 1 1_000_000_000
    else (s, 1)
  in
  match int_of_string_opt num with
  | Some v when v >= 0 -> v * mult
  | Some _ | None -> bad "bad duration %S (expected e.g. 500ns, 200us, 2ms, 1s)" s

let prob_of_string s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> p
  | Some _ | None -> bad "bad probability %S (expected a float in [0,1])" s

let int_of_field ~key s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad "bad integer %S for %s" s key

(* "kind[@time][:k=v,...]" -> (kind, time option, assoc). *)
let split_clause s =
  let head, params =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, [])
  in
  let kind, at =
    match String.index_opt head '@' with
    | Some i ->
        ( String.sub head 0 i,
          Some (duration_of_string (String.sub head (i + 1) (String.length head - i - 1)))
        )
    | None -> (head, None)
  in
  let kv p =
    match String.index_opt p '=' with
    | Some i -> (String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
    | None -> bad "bad parameter %S (expected key=value)" p
  in
  (kind, at, List.map kv (List.filter (fun p -> p <> "") params))

let field params key =
  match List.assoc_opt key params with
  | Some v -> v
  | None -> bad "missing required parameter %s=" key

let require_at kind = function
  | Some t -> t
  | None -> bad "%s needs a trigger time (e.g. %s@2ms)" kind kind

let parse_clause s =
  let kind, at, params = split_clause s in
  let known ks =
    List.iter
      (fun (k, _) -> if not (List.mem k ks) then bad "unknown parameter %s for %s" k kind)
      params
  in
  match kind with
  | "node-crash" ->
      known [ "id" ];
      Node_crash
        { at_ns = require_at kind at; id = int_of_field ~key:"id" (field params "id") }
  | "link-flap" ->
      known [ "dur" ];
      Link_flap
        { at_ns = require_at kind at; dur_ns = duration_of_string (field params "dur") }
  | "partition" ->
      (* Asymmetric partition: the named nodes stay alive but their links
         drop control + data traffic for the window — distinct from the
         fail-stop [node-crash]. *)
      known [ "dur"; "nodes" ];
      let ids =
        String.split_on_char '|' (field params "nodes")
        |> List.filter (fun x -> x <> "")
        |> List.map (fun x ->
               let id = int_of_field ~key:"nodes" x in
               if id < 0 then bad "partition node ids must be >= 0 (got %d)" id;
               id)
      in
      if ids = [] then bad "partition needs a non-empty nodes= list (e.g. nodes=0|1)";
      let dur_ns = duration_of_string (field params "dur") in
      if dur_ns < 1 then bad "partition dur must be positive";
      Partition { at_ns = require_at kind at; dur_ns; ids }
  | "rpc-timeout" ->
      known [ "p" ];
      Rpc_timeout { p = prob_of_string (field params "p") }
  | "wqe-drop" ->
      known [ "p" ];
      Wqe_drop { p = prob_of_string (field params "p") }
  | "wqe-delay" ->
      known [ "p"; "ns" ];
      Wqe_delay
        {
          p = prob_of_string (field params "p");
          delay_ns = duration_of_string (field params "ns");
        }
  | "bit-flip" ->
      known [ "p" ];
      Bit_flip { p = prob_of_string (field params "p") }
  | "torn-write" ->
      known [ "p" ];
      Torn_write { p = prob_of_string (field params "p") }
  | "stale-read" ->
      known [ "p" ];
      Stale_read { p = prob_of_string (field params "p") }
  | "dup-deliver" ->
      known [ "p" ];
      Dup_deliver { p = prob_of_string (field params "p") }
  | other ->
      bad
        "unknown fault kind %S (node-crash | link-flap | partition | rpc-timeout | \
         wqe-drop | wqe-delay | bit-flip | torn-write | stale-read | dup-deliver)"
        other

(* Probabilistic kinds may appear at most once per plan; a silent
   last-wins would make e.g. "wqe-drop:p=0.1;wqe-drop:p=0" a no-op
   plan that looks loaded.  Scheduled kinds (node-crash, link-flap)
   legitimately repeat. *)
let prob_kind = function
  | Node_crash _ | Link_flap _ | Partition _ -> None
  | Rpc_timeout _ -> Some "rpc-timeout"
  | Wqe_drop _ -> Some "wqe-drop"
  | Wqe_delay _ -> Some "wqe-delay"
  | Bit_flip _ -> Some "bit-flip"
  | Torn_write _ -> Some "torn-write"
  | Stale_read _ -> Some "stale-read"
  | Dup_deliver _ -> Some "dup-deliver"

let check_duplicates plan =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun clause ->
      match prob_kind clause with
      | None -> ()
      | Some kind ->
          if Hashtbl.mem seen kind then
            bad "duplicate clause kind %S in one plan (each probabilistic kind \
                 may appear at most once)" kind
          else Hashtbl.add seen kind ())
    plan

let parse s =
  let clauses =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  match
    let plan = List.map parse_clause clauses in
    check_duplicates plan;
    plan
  with
  | plan -> Ok plan
  | exception Bad msg -> Error msg

let parse_exn s =
  match parse s with Ok p -> p | Error msg -> invalid_arg ("Fault_spec: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let ns_to_string ns =
  if ns mod 1_000_000_000 = 0 && ns > 0 then Printf.sprintf "%ds" (ns / 1_000_000_000)
  else if ns mod 1_000_000 = 0 && ns > 0 then Printf.sprintf "%dms" (ns / 1_000_000)
  else if ns mod 1_000 = 0 && ns > 0 then Printf.sprintf "%dus" (ns / 1_000)
  else Printf.sprintf "%dns" ns

let clause_to_string = function
  | Node_crash { at_ns; id } -> Printf.sprintf "node-crash@%s:id=%d" (ns_to_string at_ns) id
  | Link_flap { at_ns; dur_ns } ->
      Printf.sprintf "link-flap@%s:dur=%s" (ns_to_string at_ns) (ns_to_string dur_ns)
  | Partition { at_ns; dur_ns; ids } ->
      Printf.sprintf "partition@%s:dur=%s,nodes=%s" (ns_to_string at_ns)
        (ns_to_string dur_ns)
        (String.concat "|" (List.map string_of_int ids))
  | Rpc_timeout { p } -> Printf.sprintf "rpc-timeout:p=%g" p
  | Wqe_drop { p } -> Printf.sprintf "wqe-drop:p=%g" p
  | Wqe_delay { p; delay_ns } ->
      Printf.sprintf "wqe-delay:p=%g,ns=%s" p (ns_to_string delay_ns)
  | Bit_flip { p } -> Printf.sprintf "bit-flip:p=%g" p
  | Torn_write { p } -> Printf.sprintf "torn-write:p=%g" p
  | Stale_read { p } -> Printf.sprintf "stale-read:p=%g" p
  | Dup_deliver { p } -> Printf.sprintf "dup-deliver:p=%g" p

let to_string t = String.concat ";" (List.map clause_to_string t)
let pp fmt t = Format.pp_print_string fmt (to_string t)
