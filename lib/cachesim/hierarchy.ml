open Kona_util
module Access = Kona_trace.Access

type level_config = { size : int; assoc : int }
type config = { l1 : level_config; l2 : level_config; llc : level_config }

let default_config =
  {
    l1 = { size = Units.kib 32; assoc = 8 };
    l2 = { size = Units.kib 128; assoc = 8 };
    llc = { size = Units.mib 1; assoc = 16 };
  }

type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  llc : Cache.t;
  on_fill : addr:int -> write:bool -> unit;
  on_writeback : addr:int -> unit;
  mutable memory_accesses : int;
  mutable writebacks : int;
}

let create ?(config = default_config) ?(on_fill = fun ~addr:_ ~write:_ -> ())
    ?(on_writeback = fun ~addr:_ -> ()) () =
  let line = Units.cache_line in
  let mk name (c : level_config) = Cache.create ~name ~size:c.size ~assoc:c.assoc ~block:line in
  {
    l1 = mk "L1d" config.l1;
    l2 = mk "L2" config.l2;
    llc = mk "LLC" config.llc;
    on_fill;
    on_writeback;
    memory_accesses = 0;
    writebacks = 0;
  }

(* Evicting a victim from [level]: upper levels may hold the line (inclusion
   violation about to happen) — flush them and fold their dirty bits in. *)
let back_invalidate uppers (victim : Cache.evicted) =
  List.fold_left
    (fun (v : Cache.evicted) upper ->
      match Cache.flush_block upper ~addr:v.Cache.block_addr with
      | Some { Cache.dirty = true; _ } -> { v with Cache.dirty = true }
      | Some _ | None -> v)
    victim uppers

let handle_l2_victim t = function
  | None -> ()
  | Some victim ->
      let victim = back_invalidate [ t.l1 ] victim in
      if victim.Cache.dirty then
        ignore (Cache.set_dirty t.llc ~addr:victim.Cache.block_addr : bool)

let handle_llc_victim t = function
  | None -> ()
  | Some victim ->
      let victim = back_invalidate [ t.l2; t.l1 ] victim in
      if victim.Cache.dirty then begin
        t.writebacks <- t.writebacks + 1;
        t.on_writeback ~addr:victim.Cache.block_addr
      end

let access_line t ~addr ~write =
  match Cache.access t.l1 ~addr ~write with
  | Cache.Hit -> 1
  | Cache.Miss l1_victim ->
      (* An L1 victim is present in L2 by inclusion; sink its dirt there. *)
      (match l1_victim with
      | Some { Cache.block_addr; dirty = true } ->
          ignore (Cache.set_dirty t.l2 ~addr:block_addr : bool)
      | Some _ | None -> ());
      (match Cache.access t.l2 ~addr ~write:false with
      | Cache.Hit -> 2
      | Cache.Miss l2_victim -> (
          handle_l2_victim t l2_victim;
          match Cache.access t.llc ~addr ~write:false with
          | Cache.Hit -> 3
          | Cache.Miss llc_victim ->
              handle_llc_victim t llc_victim;
              t.memory_accesses <- t.memory_accesses + 1;
              t.on_fill ~addr:(Units.align_down addr ~alignment:Units.cache_line) ~write;
              4))

let access t event =
  let write = Access.is_write event in
  Access.iter_lines event (fun line ->
      ignore (access_line t ~addr:(line * Units.cache_line) ~write : int))

let flush_page t ~page =
  let dirty = ref [] in
  for i = 0 to Units.lines_per_page - 1 do
    let addr = (page * Units.page_size) + (i * Units.cache_line) in
    let d1 =
      match Cache.flush_block t.l1 ~addr with Some v -> v.Cache.dirty | None -> false
    in
    let d2 =
      match Cache.flush_block t.l2 ~addr with Some v -> v.Cache.dirty | None -> false
    in
    let d3 =
      match Cache.flush_block t.llc ~addr with Some v -> v.Cache.dirty | None -> false
    in
    if d1 || d2 || d3 then dirty := addr :: !dirty
  done;
  List.rev !dirty

let resident_dirty_lines t ~page =
  let dirty = ref [] in
  for i = 0 to Units.lines_per_page - 1 do
    let addr = (page * Units.page_size) + (i * Units.cache_line) in
    if Cache.is_dirty t.l1 ~addr || Cache.is_dirty t.l2 ~addr || Cache.is_dirty t.llc ~addr
    then dirty := addr :: !dirty
  done;
  List.rev !dirty

let l1 t = t.l1
let l2 t = t.l2
let llc t = t.llc
let memory_accesses t = t.memory_accesses
let writebacks t = t.writebacks
