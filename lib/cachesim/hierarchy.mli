(** Three-level inclusive CPU cache hierarchy (L1D / L2 / LLC) over 64-byte
    lines, with the two event streams the ccFPGA agent observes (§2.3,
    §4.3 of the paper):

    - [on_fill]: a line enters the hierarchy from memory (LLC miss) — the
      directory sees the CPU {e requesting} the line;
    - [on_writeback]: a dirty line leaves the LLC towards memory — the
      directory sees modified data.

    Inclusion is enforced by back-invalidating upper levels when an LLC or
    L2 victim is chosen, merging their dirty bits into the victim, so no
    modified line can escape unobserved.  [flush_page] models the snoop the
    FPGA must perform before evicting a page (§4.4 "Tracking dirty
    data"). *)

type level_config = { size : int; assoc : int }

type config = { l1 : level_config; l2 : level_config; llc : level_config }

val default_config : config
(** 32 KiB/8-way L1, 128 KiB/8-way L2, 1 MiB/16-way LLC — scaled so that
    the LLC : workload-footprint ratio matches the paper's testbed
    (tens-of-MB LLC vs multi-GB workloads). *)

type t

val create :
  ?config:config ->
  ?on_fill:(addr:int -> write:bool -> unit) ->
  ?on_writeback:(addr:int -> unit) ->
  unit ->
  t
(** Event callbacks receive the 64-byte-aligned byte address of the line;
    [on_fill] also reports whether the triggering access was a write (a
    request-for-ownership at the directory). *)

val access : t -> Kona_trace.Access.t -> unit
(** Run the access through the hierarchy (split per line). *)

val access_line : t -> addr:int -> write:bool -> int
(** Single-line access; returns the level that hit (1, 2, 3) or 4 for
    memory. *)

val flush_page : t -> page:int -> int list
(** Invalidate every line of 4KB page index [page] from all levels; returns
    the (64B-aligned) addresses of lines that were dirty anywhere in the
    hierarchy.  Does NOT invoke [on_writeback]: the caller receives the
    dirty data directly, as a snoop does. *)

val resident_dirty_lines : t -> page:int -> int list
(** Dirty lines of [page] without invalidating (diagnostics/tests). *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t
val llc : t -> Cache.t

val memory_accesses : t -> int
(** Number of line fills from memory (= LLC misses). *)

val writebacks : t -> int
(** Dirty LLC victims pushed to memory (each also invoked [on_writeback]). *)
