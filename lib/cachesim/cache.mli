(** A single set-associative, write-back, write-allocate cache level with
    true-LRU replacement.

    Block granularity is configurable: 64B for CPU cache levels, 4KB (page)
    blocks when the same structure models Kona's FMem page cache or the
    KCacheSim DRAM-cache stage (the paper's Fig. 8d sweeps this block
    size). *)

type t

val create : name:string -> size:int -> assoc:int -> block:int -> t
(** [size] and [block] in bytes; [assoc] ways.  All three must be positive,
    [block] a power of two, and [size] a multiple of [assoc * block]. *)

val name : t -> string
val block_size : t -> int
val sets : t -> int

type evicted = { block_addr : int; dirty : bool }
(** A victim block: [block_addr] is the byte address of the block start. *)

type outcome =
  | Hit
  | Miss of evicted option
      (** The access missed; the block was filled, evicting the returned
          victim if the set was full. *)

val access : t -> addr:int -> write:bool -> outcome
(** Look up the block containing byte [addr]; on miss, allocate it (for
    both reads and writes: write-allocate).  A write marks the block
    dirty. *)

val probe : t -> addr:int -> bool
(** Presence check without touching LRU state or statistics. *)

val is_dirty : t -> addr:int -> bool

val flush_block : t -> addr:int -> evicted option
(** Invalidate the block containing [addr] if present; returns it (with its
    dirty bit) so the caller can propagate the writeback. *)

val set_dirty : t -> addr:int -> bool
(** Mark the block containing [addr] dirty if resident (no LRU/stat
    effects); returns whether it was resident.  Used by the hierarchy to
    sink an upper level's writeback into this level. *)

val iter_resident : t -> (block_addr:int -> dirty:bool -> unit) -> unit
(** Enumerate resident blocks (tests, snooping sweeps). *)

(** {2 Statistics} *)

type stats = {
  reads : int;
  writes : int;
  read_misses : int;
  write_misses : int;
  evictions : int;
  dirty_evictions : int;
}

val stats : t -> stats
val miss_rate : stats -> float
(** Total misses over total accesses; 0 when idle. *)

val reset_stats : t -> unit
