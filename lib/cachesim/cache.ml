open Kona_util

type t = {
  cache_name : string;
  block : int;
  block_bits : int;
  nsets : int;
  assoc : int;
  (* way-major state, indexed [set * assoc + way] *)
  tags : int array; (* block address; -1 = invalid *)
  dirty : bool array;
  stamp : int array; (* LRU timestamp *)
  mutable tick : int;
  mutable reads : int;
  mutable writes : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
}

let create ~name ~size ~assoc ~block =
  if size <= 0 || assoc <= 0 || block <= 0 then
    invalid_arg "Cache.create: sizes must be positive";
  if not (Units.is_power_of_two block) then
    invalid_arg "Cache.create: block must be a power of two";
  if size mod (assoc * block) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of assoc * block";
  let nsets = size / (assoc * block) in
  let n = nsets * assoc in
  {
    cache_name = name;
    block;
    block_bits = Units.log2 block;
    nsets;
    assoc;
    tags = Array.make n (-1);
    dirty = Array.make n false;
    stamp = Array.make n 0;
    tick = 0;
    reads = 0;
    writes = 0;
    read_misses = 0;
    write_misses = 0;
    evictions = 0;
    dirty_evictions = 0;
  }

let name t = t.cache_name
let block_size t = t.block
let sets t = t.nsets
(* lsl/lsr are right-associative in OCaml: parenthesize the align-down. *)
let block_addr_of t addr = (addr lsr t.block_bits) lsl t.block_bits
let set_of t block_addr = (block_addr lsr t.block_bits) mod t.nsets

type evicted = { block_addr : int; dirty : bool }
type outcome = Hit | Miss of evicted option

let find_way t set block_addr =
  let base = set * t.assoc in
  let rec loop way =
    if way = t.assoc then None
    else if t.tags.(base + way) = block_addr then Some (base + way)
    else loop (way + 1)
  in
  loop 0

let victim_way t set =
  (* Prefer an invalid way; otherwise least-recent stamp. *)
  let base = set * t.assoc in
  let best = ref base in
  let found_invalid = ref (t.tags.(base) = -1) in
  for way = 1 to t.assoc - 1 do
    let i = base + way in
    if not !found_invalid then
      if t.tags.(i) = -1 then begin
        best := i;
        found_invalid := true
      end
      else if t.stamp.(i) < t.stamp.(!best) then best := i
  done;
  !best

let touch t i =
  t.tick <- t.tick + 1;
  t.stamp.(i) <- t.tick

let access t ~addr ~write =
  let block_addr = block_addr_of t addr in
  let set = set_of t block_addr in
  if write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
  match find_way t set block_addr with
  | Some i ->
      touch t i;
      if write then t.dirty.(i) <- true;
      Hit
  | None ->
      if write then t.write_misses <- t.write_misses + 1
      else t.read_misses <- t.read_misses + 1;
      let i = victim_way t set in
      let victim =
        if t.tags.(i) = -1 then None
        else begin
          t.evictions <- t.evictions + 1;
          if t.dirty.(i) then t.dirty_evictions <- t.dirty_evictions + 1;
          Some { block_addr = t.tags.(i); dirty = t.dirty.(i) }
        end
      in
      t.tags.(i) <- block_addr;
      t.dirty.(i) <- write;
      touch t i;
      Miss victim

let probe t ~addr =
  let block_addr = block_addr_of t addr in
  find_way t (set_of t block_addr) block_addr <> None

let is_dirty t ~addr =
  let block_addr = block_addr_of t addr in
  match find_way t (set_of t block_addr) block_addr with
  | Some i -> t.dirty.(i)
  | None -> false

let flush_block t ~addr =
  let block_addr = block_addr_of t addr in
  match find_way t (set_of t block_addr) block_addr with
  | None -> None
  | Some i ->
      let victim = { block_addr = t.tags.(i); dirty = t.dirty.(i) } in
      t.tags.(i) <- -1;
      t.dirty.(i) <- false;
      t.stamp.(i) <- 0;
      Some victim

let set_dirty t ~addr =
  let block_addr = block_addr_of t addr in
  match find_way t (set_of t block_addr) block_addr with
  | Some i ->
      t.dirty.(i) <- true;
      true
  | None -> false

let iter_resident t f =
  for i = 0 to Array.length t.tags - 1 do
    if t.tags.(i) <> -1 then f ~block_addr:t.tags.(i) ~dirty:t.dirty.(i)
  done

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.read_misses <- 0;
  t.write_misses <- 0;
  t.evictions <- 0;
  t.dirty_evictions <- 0

type stats = {
  reads : int;
  writes : int;
  read_misses : int;
  write_misses : int;
  evictions : int;
  dirty_evictions : int;
}

let stats (t : t) =
  {
    reads = t.reads;
    writes = t.writes;
    read_misses = t.read_misses;
    write_misses = t.write_misses;
    evictions = t.evictions;
    dirty_evictions = t.dirty_evictions;
  }

let miss_rate s =
  let total = s.reads + s.writes in
  if total = 0 then 0.
  else float_of_int (s.read_misses + s.write_misses) /. float_of_int total
