(** Lease-based failure detection over the virtual clock.

    Each tracked node owes the detector one heartbeat per
    [heartbeat_ns], evaluated at quantized virtual-time instants when
    the owner calls {!tick}.  Whether a heartbeat arrives is answered by
    the [reachable] callback — the caller's composition of fail-stop
    crashes and partition windows — because the detector, like a real
    one, cannot tell a crashed node from a partitioned one.  Silence
    longer than [lease_ns] moves a node to [Suspected]; silence longer
    than [2 * lease_ns] declares it [Dead] and fires [on_dead], which is
    what triggers failover (the crash hook no longer does).  A declared-
    dead node that heartbeats again was a {e false positive}: the
    declaration stands (its store is fenced), and the comeback is
    counted once per node in [false_positives].

    Every evaluated heartbeat instant charges a small control-path cost
    through [charge], so detection is not free time. *)

type t

type state = Alive | Suspected | Dead

val state_to_string : state -> string

val create :
  heartbeat_ns:int ->
  lease_ns:int ->
  reachable:(id:int -> at:int -> bool) ->
  on_dead:(id:int -> at:int -> unit) ->
  charge:(ns:int -> unit) ->
  unit ->
  t
(** Raises [Invalid_argument] unless [heartbeat_ns > 0] and
    [lease_ns >= heartbeat_ns]. *)

val track : t -> id:int -> now:int -> unit
(** Start monitoring [id]; its lease begins at [now].  Idempotent. *)

val tracked : t -> int list
(** Ids under monitoring, in tracking order. *)

val tick : t -> now:int -> unit
(** Evaluate every heartbeat instant that has elapsed up to [now] for
    every tracked node, advancing suspicion state machines and firing
    [on_dead] for freshly declared deaths. *)

val state : t -> id:int -> state option

val detect_latency : t -> Kona_util.Histogram.t
(** Silence duration at each death declaration (detection latency). *)

val heartbeats : t -> int
val suspicions : t -> int
val suspicions_cleared : t -> int
val declared_dead : t -> int

val false_positives : t -> int
(** Nodes declared dead that later heartbeated again (counted once per
    node). *)

val counters : t -> (string * int) list
(** Stable-order counter list for fingerprints and metrics. *)
