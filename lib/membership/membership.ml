open Kona_util

(* Lease-based failure detection over the virtual clock (control path).

   Every tracked node owes the detector a heartbeat each [heartbeat_ns];
   the detector evaluates the quantized heartbeat instants that have
   passed since the last [tick], asking [reachable] whether the node
   could deliver one at that instant.  Reachability is the caller's
   composition of fail-stop state and partition windows — the detector
   itself cannot tell a crashed node from a partitioned one, which is
   exactly the point: after [2 * lease_ns] of silence it declares the
   node dead either way, and a wrong guess (the node was merely
   partitioned) is a {e false positive} the fencing machinery must
   absorb. *)

type state = Alive | Suspected | Dead

let state_to_string = function
  | Alive -> "alive"
  | Suspected -> "suspected"
  | Dead -> "dead"

type entry = {
  id : int;
  mutable st : state;
  mutable last_heartbeat : int; (* instant of the last heartbeat received *)
  mutable next_beat : int; (* next quantized instant to evaluate *)
  mutable fp_counted : bool; (* this Dead node already proved us wrong *)
}

type t = {
  heartbeat_ns : int;
  lease_ns : int;
  reachable : id:int -> at:int -> bool;
  on_dead : id:int -> at:int -> unit;
  charge : ns:int -> unit;
  mutable nodes : entry list; (* tracking order; racks track a handful *)
  detect_latency : Histogram.t;
  mutable heartbeats : int;
  mutable suspicions : int;
  mutable suspicions_cleared : int;
  mutable declared_dead : int;
  mutable false_positives : int;
}

(* Control-path cost of receiving and evaluating one heartbeat. *)
let heartbeat_cost_ns = 100

let create ~heartbeat_ns ~lease_ns ~reachable ~on_dead ~charge () =
  if heartbeat_ns <= 0 then invalid_arg "Membership: heartbeat_ns must be positive";
  if lease_ns < heartbeat_ns then
    invalid_arg "Membership: lease_ns must be >= heartbeat_ns";
  {
    heartbeat_ns;
    lease_ns;
    reachable;
    on_dead;
    charge;
    nodes = [];
    detect_latency = Histogram.create ();
    heartbeats = 0;
    suspicions = 0;
    suspicions_cleared = 0;
    declared_dead = 0;
    false_positives = 0;
  }

let track t ~id ~now =
  if not (List.exists (fun e -> e.id = id) t.nodes) then
    t.nodes <-
      t.nodes
      @ [
          {
            id;
            st = Alive;
            last_heartbeat = now;
            (* First owed beat is the next quantized instant. *)
            next_beat = ((now / t.heartbeat_ns) + 1) * t.heartbeat_ns;
            fp_counted = false;
          };
        ]

let tracked t = List.map (fun e -> e.id) t.nodes

let state t ~id =
  List.find_opt (fun e -> e.id = id) t.nodes |> Option.map (fun e -> e.st)

let tick_entry t e ~now =
  while e.next_beat <= now do
    let at = e.next_beat in
    e.next_beat <- e.next_beat + t.heartbeat_ns;
    t.charge ~ns:heartbeat_cost_ns;
    if t.reachable ~id:e.id ~at then begin
      t.heartbeats <- t.heartbeats + 1;
      e.last_heartbeat <- at;
      match e.st with
      | Alive -> ()
      | Suspected ->
          (* The lease was renewed in time: suspicion clears quietly. *)
          e.st <- Alive;
          t.suspicions_cleared <- t.suspicions_cleared + 1
      | Dead ->
          (* A declared-dead node is heartbeating again: we failed over
             away from a live node.  The declaration stands (its store
             is fenced); the comeback is counted once. *)
          if not e.fp_counted then begin
            e.fp_counted <- true;
            t.false_positives <- t.false_positives + 1
          end
    end
    else begin
      let age = at - e.last_heartbeat in
      (match e.st with
      | Alive when age > t.lease_ns ->
          e.st <- Suspected;
          t.suspicions <- t.suspicions + 1
      | _ -> ());
      if e.st = Suspected && age > 2 * t.lease_ns then begin
        e.st <- Dead;
        t.declared_dead <- t.declared_dead + 1;
        Histogram.add t.detect_latency age;
        t.on_dead ~id:e.id ~at
      end
    end
  done

let tick t ~now = List.iter (fun e -> tick_entry t e ~now) t.nodes

let detect_latency t = t.detect_latency
let heartbeats t = t.heartbeats
let suspicions t = t.suspicions
let suspicions_cleared t = t.suspicions_cleared
let declared_dead t = t.declared_dead
let false_positives t = t.false_positives

let counters t =
  [
    ("heartbeats", t.heartbeats);
    ("suspicions", t.suspicions);
    ("suspicions_cleared", t.suspicions_cleared);
    ("declared_dead", t.declared_dead);
    ("false_positives", t.false_positives);
  ]
