(* Interruptible recovery: a FIFO queue of named resumable tasks.

   Failover, re-replication and drain each enqueue a task whose [step]
   does one bounded unit of work and reports [`Again] or [`Done].  The
   engine pumps the head task from its own step loop, so a second crash
   or partition arriving mid-recovery simply interleaves: the in-flight
   task either keeps stepping against the new world (its step function
   re-reads live state each call) or is cancelled and re-planned by the
   fault handler — nothing raises from half-finished recovery. *)

type task = { name : string; seq : int; step : now:int -> [ `Again | `Done ] }

type t = {
  mutable queue : task list; (* head = in-flight task *)
  mutable next_seq : int;
  mutable enqueued : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable steps : int;
}

let create () =
  { queue = []; next_seq = 0; enqueued = 0; completed = 0; cancelled = 0; steps = 0 }

let enqueue t ~name step =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.enqueued <- t.enqueued + 1;
  t.queue <- t.queue @ [ { name; seq; step } ];
  seq

let cancel t ~handle =
  let before = List.length t.queue in
  t.queue <- List.filter (fun task -> task.seq <> handle) t.queue;
  if List.length t.queue < before then begin
    t.cancelled <- t.cancelled + 1;
    true
  end
  else false

let cancel_named t ~name =
  let matches, rest = List.partition (fun task -> task.name = name) t.queue in
  t.queue <- rest;
  t.cancelled <- t.cancelled + List.length matches;
  List.length matches

let step t ~now =
  match t.queue with
  | [] -> `Idle
  | task :: _ -> (
      t.steps <- t.steps + 1;
      match task.step ~now with
      | `Again -> `Stepped task.name
      | `Done ->
          (* Filter by seq rather than dropping the captured tail: the
             step may itself have enqueued follow-up work (failover
             queues re-replication from inside its own step), and a
             stale tail would silently discard it. *)
          t.queue <- List.filter (fun x -> x.seq <> task.seq) t.queue;
          t.completed <- t.completed + 1;
          `Finished task.name)

let pending t = List.map (fun task -> task.name) t.queue
let idle t = t.queue = []
let enqueued t = t.enqueued
let completed t = t.completed
let cancelled t = t.cancelled
let steps t = t.steps

let counters t =
  [
    ("enqueued", t.enqueued);
    ("completed", t.completed);
    ("cancelled", t.cancelled);
    ("steps", t.steps);
  ]
