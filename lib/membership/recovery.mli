(** Interruptible recovery: a FIFO queue of named resumable tasks.

    Failover, re-replication and drain enqueue tasks whose [step] does
    one bounded unit of work and reports [`Again] or [`Done].  The
    engine pumps the head task from its own step loop; a second fault
    arriving mid-recovery interleaves instead of raising — the task's
    step function re-reads live state each call, or the fault handler
    cancels and re-plans it. *)

type t

val create : unit -> t

val enqueue : t -> name:string -> (now:int -> [ `Again | `Done ]) -> int
(** Append a task; returns a handle usable with {!cancel}. *)

val cancel : t -> handle:int -> bool
(** Remove a queued task by handle; [false] if already finished. *)

val cancel_named : t -> name:string -> int
(** Remove every queued task with this name; returns how many. *)

val step : t -> now:int -> [ `Idle | `Stepped of string | `Finished of string ]
(** Advance the head task one unit.  [`Idle] when the queue is empty;
    [`Stepped name] when it made progress and remains in flight;
    [`Finished name] when it completed and was dequeued. *)

val pending : t -> string list
(** Names of queued tasks, head first. *)

val idle : t -> bool
val enqueued : t -> int
val completed : t -> int
val cancelled : t -> int
val steps : t -> int

val counters : t -> (string * int) list
(** Stable-order counter list for fingerprints and metrics. *)
