(** Per-page cache-line footprint analysis (paper §2.2, Figs. 2 and 3).

    Within each window this records, for every touched 4KB page, which of
    its 64 cache-lines were read and which were written.  Closing a window
    feeds two families of CDFs:

    - {e spatial locality} (Fig. 2): distribution of pages by number of
      accessed cache-lines, reads and writes separately;
    - {e contiguity} (Fig. 3): distribution of maximal runs ("segments") of
      contiguous accessed cache-lines within a page, by run length. *)

type t

val create : unit -> t
val sink : t -> Access.sink
val close_window : t -> window:int -> unit

val lines_per_page_cdf : t -> kind:Access.kind -> Kona_util.Cdf.t
(** Fig. 2 data: one sample per (window, page) pair that had at least one
    access of [kind]; the sample is the number of distinct cache-lines of
    that kind accessed in the page. *)

val segment_length_cdf : t -> kind:Access.kind -> Kona_util.Cdf.t
(** Fig. 3 data: one sample per maximal contiguous run of accessed
    cache-lines, the sample being the run length (1..64). *)
