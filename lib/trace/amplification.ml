open Kona_util

type window_stats = {
  window : int;
  written_bytes : int;
  dirty_line_bytes : int;
  dirty_page_bytes : int;
  dirty_huge_bytes : int;
}

let ratio granule_bytes written =
  if written = 0 then 0. else float_of_int granule_bytes /. float_of_int written

let amp_line w = ratio w.dirty_line_bytes w.written_bytes
let amp_page w = ratio w.dirty_page_bytes w.written_bytes
let amp_huge w = ratio w.dirty_huge_bytes w.written_bytes

type t = {
  (* page index -> byte-exact write mask for the current window *)
  pages : (int, Bitmap.t) Hashtbl.t;
  mutable closed : window_stats list; (* newest first *)
}

let create () = { pages = Hashtbl.create 1024; closed = [] }

let page_mask t page =
  match Hashtbl.find_opt t.pages page with
  | Some mask -> mask
  | None ->
      let mask = Bitmap.create Units.page_size in
      Hashtbl.add t.pages page mask;
      mask

let sink t event =
  if Access.is_write event then begin
    (* Split the write at page boundaries and set byte bits. *)
    let rec mark addr remaining =
      if remaining > 0 then begin
        let page = Units.page_of_addr addr in
        let offset = addr land (Units.page_size - 1) in
        let len = min remaining (Units.page_size - offset) in
        Bitmap.set_range (page_mask t page) offset len;
        mark (addr + len) (remaining - len)
      end
    in
    mark event.Access.addr event.Access.len
  end

let close_window t ~window =
  let written = ref 0 in
  let lines = ref 0 in
  let pages = ref 0 in
  let huges = Hashtbl.create 16 in
  Hashtbl.iter
    (fun page mask ->
      incr pages;
      Hashtbl.replace huges (page lsr 9) ();
      written := !written + Bitmap.count mask;
      (* A cache-line granule is dirty iff any of its 64 bytes is set. *)
      let line_dirty = Array.make Units.lines_per_page false in
      Bitmap.iter_set mask (fun byte -> line_dirty.(byte lsr 6) <- true);
      Array.iter (fun d -> if d then incr lines) line_dirty)
    t.pages;
  let stats =
    {
      window;
      written_bytes = !written;
      dirty_line_bytes = !lines * Units.cache_line;
      dirty_page_bytes = !pages * Units.page_size;
      dirty_huge_bytes = Hashtbl.length huges * Units.huge_page_size;
    }
  in
  t.closed <- stats :: t.closed;
  Hashtbl.reset t.pages

type aggregate = {
  total_written_bytes : int;
  agg_amp_line : float;
  agg_amp_page : float;
  agg_amp_huge : float;
}

let windows t = List.rev t.closed

let aggregate ?(drop_last = false) t =
  let ws = windows t in
  let ws =
    if drop_last then match List.rev ws with [] -> [] | _ :: rest -> List.rev rest
    else ws
  in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 ws in
  let written = sum (fun w -> w.written_bytes) in
  {
    total_written_bytes = written;
    agg_amp_line = ratio (sum (fun w -> w.dirty_line_bytes)) written;
    agg_amp_page = ratio (sum (fun w -> w.dirty_page_bytes)) written;
    agg_amp_huge = ratio (sum (fun w -> w.dirty_huge_bytes)) written;
  }
