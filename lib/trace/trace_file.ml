let magic = "KONATRACE1\000\000\000\000\000\000"
let record_bytes = 13

let writer ~path =
  let oc = open_out_bin path in
  output_string oc magic;
  let events = ref 0 in
  let buf = Bytes.create record_bytes in
  let sink (event : Access.t) =
    Bytes.set buf 0 (if Access.is_write event then '\001' else '\000');
    Bytes.set_int64_le buf 1 (Int64.of_int event.Access.addr);
    Bytes.set_int32_le buf 9 (Int32.of_int event.Access.len);
    output_bytes oc buf;
    incr events
  in
  let close () =
    close_out oc;
    !events
  in
  (sink, close)

let open_checked path =
  let ic = open_in_bin path in
  let header = really_input_string ic (String.length magic) in
  if header <> magic then begin
    close_in ic;
    failwith (Printf.sprintf "Trace_file: %s is not a kona trace" path)
  end;
  ic

let iter ~path sink =
  let ic = open_checked path in
  let buf = Bytes.create record_bytes in
  let events = ref 0 in
  (try
     while true do
       really_input ic buf 0 record_bytes;
       let kind = Bytes.get buf 0 in
       let addr = Int64.to_int (Bytes.get_int64_le buf 1) in
       let len = Int32.to_int (Bytes.get_int32_le buf 9) in
       (match kind with
       | '\000' -> sink (Access.read ~addr ~len)
       | '\001' -> sink (Access.write ~addr ~len)
       | c ->
           close_in ic;
           failwith (Printf.sprintf "Trace_file: bad record kind %#x" (Char.code c)));
       incr events
     done
   with End_of_file -> close_in ic);
  !events

let count ~path =
  let ic = open_checked path in
  let len = in_channel_length ic - String.length magic in
  close_in ic;
  if len mod record_bytes <> 0 then
    failwith (Printf.sprintf "Trace_file: %s is truncated" path);
  len / record_bytes
