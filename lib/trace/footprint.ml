open Kona_util

type page_masks = { reads : Bitmap.t; writes : Bitmap.t }

type t = {
  pages : (int, page_masks) Hashtbl.t; (* current window *)
  lines_read : Cdf.t;
  lines_written : Cdf.t;
  segs_read : Cdf.t;
  segs_written : Cdf.t;
}

let create () =
  {
    pages = Hashtbl.create 1024;
    lines_read = Cdf.create ();
    lines_written = Cdf.create ();
    segs_read = Cdf.create ();
    segs_written = Cdf.create ();
  }

let masks t page =
  match Hashtbl.find_opt t.pages page with
  | Some m -> m
  | None ->
      let m =
        { reads = Bitmap.create Units.lines_per_page;
          writes = Bitmap.create Units.lines_per_page }
      in
      Hashtbl.add t.pages page m;
      m

let sink t event =
  let mark line =
    let page = line lsr 6 in
    let idx = line land (Units.lines_per_page - 1) in
    let m = masks t page in
    match event.Access.kind with
    | Access.Read -> Bitmap.set m.reads idx
    | Access.Write -> Bitmap.set m.writes idx
  in
  Access.iter_lines event mark

let close_window t ~window:_ =
  Hashtbl.iter
    (fun _page m ->
      let record mask lines_cdf segs_cdf =
        let n = Bitmap.count mask in
        if n > 0 then begin
          Cdf.add lines_cdf n;
          List.iter (fun (_start, len) -> Cdf.add segs_cdf len) (Bitmap.segments mask)
        end
      in
      record m.reads t.lines_read t.segs_read;
      record m.writes t.lines_written t.segs_written)
    t.pages;
  Hashtbl.reset t.pages

let lines_per_page_cdf t ~kind =
  match kind with Access.Read -> t.lines_read | Access.Write -> t.lines_written

let segment_length_cdf t ~kind =
  match kind with Access.Read -> t.segs_read | Access.Write -> t.segs_written
