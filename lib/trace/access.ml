open Kona_util

type kind = Read | Write
type t = { addr : int; len : int; kind : kind }
type sink = t -> unit

let make kind ~addr ~len =
  assert (addr >= 0 && len > 0);
  { addr; len; kind }

let read = make Read
let write = make Write
let is_write t = t.kind = Write
let end_addr t = t.addr + t.len

let iter_lines t f =
  let first = Units.line_of_addr t.addr in
  let last = Units.line_of_addr (end_addr t - 1) in
  for line = first to last do
    f line
  done

let iter_pages t f =
  let first = Units.page_of_addr t.addr in
  let last = Units.page_of_addr (end_addr t - 1) in
  for page = first to last do
    f page
  done

let split_at_lines t =
  let rec loop acc addr remaining =
    if remaining = 0 then List.rev acc
    else
      let line_end = Units.align_down addr ~alignment:Units.cache_line + Units.cache_line in
      let len = min remaining (line_end - addr) in
      loop ({ t with addr; len } :: acc) (addr + len) (remaining - len)
  in
  loop [] t.addr t.len

let pp fmt t =
  Format.fprintf fmt "%s[%#x,+%d]"
    (match t.kind with Read -> "R" | Write -> "W")
    t.addr t.len

module Tap = struct
  let tee sinks event = List.iter (fun sink -> sink event) sinks
  let filter pred sink event = if pred event then sink event
  let ignore (_ : t) = ()

  let counting () =
    let n = ref 0 in
    ((fun (_ : t) -> incr n), fun () -> !n)
end
