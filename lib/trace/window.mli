(** Fixed-quantum windowing of an access stream.

    The paper splits executions into discrete 10-second windows and measures
    behaviour per window (§2.1, §6.3).  Our simulation has no wall clock, so
    a window is a fixed number of accesses (the quantum); the mapping is
    recorded in EXPERIMENTS.md. *)

type t

val create : quantum:int -> inner:Access.sink -> on_boundary:(window:int -> unit) -> t
(** [create ~quantum ~inner ~on_boundary] forwards every access to [inner];
    after each [quantum] accesses it calls [on_boundary ~window] with the
    0-based index of the window that just closed.  [quantum] must be
    positive. *)

val sink : t -> Access.sink

val flush : t -> unit
(** Close the current (possibly partial) window, if it contains at least one
    access.  Call once at end of workload. *)

val windows_closed : t -> int
