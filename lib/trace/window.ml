type t = {
  quantum : int;
  inner : Access.sink;
  on_boundary : window:int -> unit;
  mutable in_window : int;
  mutable closed : int;
}

let create ~quantum ~inner ~on_boundary =
  if quantum <= 0 then invalid_arg "Window.create: quantum must be positive";
  { quantum; inner; on_boundary; in_window = 0; closed = 0 }

let close t =
  t.on_boundary ~window:t.closed;
  t.closed <- t.closed + 1;
  t.in_window <- 0

let sink t event =
  t.inner event;
  t.in_window <- t.in_window + 1;
  if t.in_window = t.quantum then close t

let flush t = if t.in_window > 0 then close t
let windows_closed t = t.closed
