(** Memory-access events.

    Workloads running on the instrumented heap emit one event per load or
    store; every analysis and runtime in the reproduction consumes this
    stream.  This mirrors the role of Intel Pin instrumentation in the
    paper (§2.1) and of the application instrumentation used for the
    emulated Kona runtime (§5). *)

type kind = Read | Write

type t = { addr : int; len : int; kind : kind }
(** A contiguous access of [len] bytes starting at byte address [addr].
    [len] is positive and accesses may span cache-line and page
    boundaries. *)

type sink = t -> unit
(** Consumers of the access stream. *)

val read : addr:int -> len:int -> t
val write : addr:int -> len:int -> t
val is_write : t -> bool

val end_addr : t -> int
(** One past the last byte touched. *)

val iter_lines : t -> (int -> unit) -> unit
(** Apply to each global cache-line index touched by the access. *)

val iter_pages : t -> (int -> unit) -> unit
(** Apply to each base-page index touched by the access. *)

val split_at_lines : t -> t list
(** Split into per-cache-line sub-accesses (used when feeding line-grain
    consumers such as the cache simulator). *)

val pp : Format.formatter -> t -> unit

(** Sink combinators. *)
module Tap : sig
  val tee : sink list -> sink
  val filter : (t -> bool) -> sink -> sink
  val ignore : sink

  val counting : unit -> sink * (unit -> int)
  (** A sink plus a getter for how many events it absorbed. *)
end
