(** Dirty-data amplification measurement (paper §2.1, Table 2, Fig. 9).

    Amplification at a tracking granularity is the ratio of bytes marked
    dirty (number of touched granules times granule size) to the number of
    bytes actually written by the application, measured per window.  The
    written-byte count is byte-exact and de-duplicated within a window:
    writing the same byte twice in one window counts once, exactly as a
    dirty-tracking mechanism would observe. *)

type window_stats = {
  window : int;
  written_bytes : int;  (** unique bytes written in the window *)
  dirty_line_bytes : int;  (** 64B-granule dirty footprint *)
  dirty_page_bytes : int;  (** 4KB-granule dirty footprint *)
  dirty_huge_bytes : int;  (** 2MB-granule dirty footprint *)
}

val amp_line : window_stats -> float
val amp_page : window_stats -> float
val amp_huge : window_stats -> float

type t

val create : unit -> t

val sink : t -> Access.sink
(** Feed the access stream; reads are ignored. *)

val close_window : t -> window:int -> unit
(** Snapshot the current window's statistics and reset for the next window.
    Windows that saw no writes are recorded with all-zero fields.
    Typically wired to {!Window.create}'s [on_boundary]. *)

type aggregate = {
  total_written_bytes : int;
  agg_amp_line : float;
  agg_amp_page : float;
  agg_amp_huge : float;
}

val windows : t -> window_stats list
(** Closed windows, oldest first. *)

val aggregate : ?drop_last:bool -> t -> aggregate
(** Whole-run amplification: summed granule bytes over summed written bytes.
    [drop_last] (default [false]) excludes the final window, as the paper
    does to avoid skew from process tear-down writes (§6.3). *)
