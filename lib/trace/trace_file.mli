(** Binary access-trace files: record a workload's access stream once,
    replay it through any analysis or runtime later.

    The paper's methodology relies on instrumentation traces (Intel Pin);
    this gives the reproduction the same record/replay decoupling — e.g.
    capture an expensive workload once and sweep KCacheSim configurations
    over the file.

    Format: a 16-byte header ("KONATRACE1", padded) followed by 13-byte
    records: 1 byte kind (0 read / 1 write), 8 bytes little-endian address,
    4 bytes little-endian length. *)

val writer : path:string -> Access.sink * (unit -> int)
(** [writer ~path] opens [path] for writing and returns the recording sink
    plus a [close] function returning the number of events written.
    Raises [Sys_error] on I/O failure. *)

val iter : path:string -> Access.sink -> int
(** Replay every event of the file into the sink, in order; returns the
    event count.  Raises [Failure] on a malformed file. *)

val count : path:string -> int
(** Events in the file (header-validated, no replay). *)
