(** Per-process page table over 4KB pages.

    This is the mechanism the virtual-memory-based baselines (Kona-VM,
    Infiniswap-like, LegoOS-like) use for all three remote-memory
    operations; Kona itself keeps pages permanently present in VFMem and
    only uses the table for translation (§4.4). *)

type protection = Read_only | Read_write

type pte = {
  mutable present : bool;
  mutable protection : protection;
  mutable dirty : bool;
  mutable accessed : bool;
}

type t

val create : unit -> t

val map : t -> page:int -> protection:protection -> unit
(** Install (or overwrite) a present mapping. *)

val unmap : t -> page:int -> unit
(** Mark not-present (keeps the entry so flags can be inspected). *)

val lookup : t -> page:int -> pte option
(** The entry, present or not; [None] if never mapped. *)

val is_present : t -> page:int -> bool

val write_protect : t -> page:int -> unit
(** Downgrade to read-only (no-op if unmapped).  The caller is responsible
    for the corresponding TLB invalidation. *)

val make_writable : t -> page:int -> unit

val fault_kind :
  t -> page:int -> write:bool -> [ `None | `Not_present | `Protection ]
(** What a hardware access would raise: [`Not_present] (major/remote
    fault), [`Protection] (write to a read-only page), or [`None].  Updates
    accessed/dirty bits exactly when the access would succeed. *)

val mapped_count : t -> int
val present_count : t -> int
