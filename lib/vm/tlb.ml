(* A TLB is structurally a tiny set-associative cache keyed by page number.
   Kept self-contained (no kona_cachesim dependency): entries are
   (tag, stamp) pairs with true LRU per set. *)

type entry = { mutable tag : int; mutable stamp : int }

type t = {
  entries : entry array; (* nsets * assoc, way-major *)
  nsets : int;
  assoc : int;
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable single_invalidations : int;
  mutable full_flushes : int;
}

let create ?(entries = 64) ?(assoc = 4) () =
  if entries <= 0 || assoc <= 0 || entries mod assoc <> 0 then
    invalid_arg "Tlb.create: entries must be a positive multiple of assoc";
  {
    entries = Array.init entries (fun _ -> { tag = -1; stamp = 0 });
    nsets = entries / assoc;
    assoc;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    single_invalidations = 0;
    full_flushes = 0;
  }

let access t ~page =
  let base = page mod t.nsets * t.assoc in
  t.tick <- t.tick + 1;
  let rec find way =
    if way = t.assoc then None
    else if t.entries.(base + way).tag = page then Some (base + way)
    else find (way + 1)
  in
  match find 0 with
  | Some i ->
      t.entries.(i).stamp <- t.tick;
      t.hit_count <- t.hit_count + 1;
      `Hit
  | None ->
      t.miss_count <- t.miss_count + 1;
      let victim = ref base in
      for way = 1 to t.assoc - 1 do
        let i = base + way in
        let v = t.entries.(!victim) and e = t.entries.(i) in
        if v.tag <> -1 && (e.tag = -1 || e.stamp < v.stamp) then victim := i
      done;
      let v = t.entries.(!victim) in
      v.tag <- page;
      v.stamp <- t.tick;
      `Miss

let invalidate_page t ~page =
  let base = page mod t.nsets * t.assoc in
  for way = 0 to t.assoc - 1 do
    let e = t.entries.(base + way) in
    if e.tag = page then e.tag <- -1
  done;
  t.single_invalidations <- t.single_invalidations + 1

let flush_all t =
  Array.iter (fun e -> e.tag <- -1) t.entries;
  t.full_flushes <- t.full_flushes + 1

let hits t = t.hit_count
let misses t = t.miss_count
let single_invalidations t = t.single_invalidations
let full_flushes t = t.full_flushes
