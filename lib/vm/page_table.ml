type protection = Read_only | Read_write

type pte = {
  mutable present : bool;
  mutable protection : protection;
  mutable dirty : bool;
  mutable accessed : bool;
}

type t = (int, pte) Hashtbl.t

let create () : t = Hashtbl.create 4096

let map t ~page ~protection =
  match Hashtbl.find_opt t page with
  | Some pte ->
      pte.present <- true;
      pte.protection <- protection
  | None ->
      Hashtbl.add t page { present = true; protection; dirty = false; accessed = false }

let unmap t ~page =
  match Hashtbl.find_opt t page with Some pte -> pte.present <- false | None -> ()

let lookup t ~page = Hashtbl.find_opt t page

let is_present t ~page =
  match Hashtbl.find_opt t page with Some pte -> pte.present | None -> false

let write_protect t ~page =
  match Hashtbl.find_opt t page with
  | Some pte -> pte.protection <- Read_only
  | None -> ()

let make_writable t ~page =
  match Hashtbl.find_opt t page with
  | Some pte -> pte.protection <- Read_write
  | None -> ()

let fault_kind t ~page ~write =
  match Hashtbl.find_opt t page with
  | None -> `Not_present
  | Some pte ->
      if not pte.present then `Not_present
      else if write && pte.protection = Read_only then `Protection
      else begin
        pte.accessed <- true;
        if write then pte.dirty <- true;
        `None
      end

let mapped_count t = Hashtbl.length t

let present_count t =
  Hashtbl.fold (fun _ pte acc -> if pte.present then acc + 1 else acc) t 0
