(** Translation look-aside buffer model: a small set-associative cache of
    page translations with invalidation accounting.

    The cost the paper attributes to virtual-memory remote memory comes
    largely from here: write-protecting or unmapping a page forces
    single-page invalidations (and shootdown IPIs on real multicores), and
    each post-invalidation access pays a page-table walk. *)

type t

val create : ?entries:int -> ?assoc:int -> unit -> t
(** Default 64 entries, 4-way. *)

val access : t -> page:int -> [ `Hit | `Miss ]
(** Look up a translation, inserting it on miss (the walk result). *)

val invalidate_page : t -> page:int -> unit
(** Single-page invlpg; counted. *)

val flush_all : t -> unit
(** Full flush (counted once; resident entries are dropped). *)

val hits : t -> int
val misses : t -> int
val single_invalidations : t -> int
val full_flushes : t -> int
