open Kona_util

type t = {
  qp : Qp.t;
  service_ns : int;
  clock : Clock.t;
  mutable calls : int;
  mutable total_ns : int;
}

let create ?cost ?(service_ns = 1_500) ~clock ~nic () =
  { qp = Qp.create ?cost ~nic ~clock (); service_ns; clock; calls = 0; total_ns = 0 }

let call t ~request_bytes ~response_bytes f x =
  assert (request_bytes >= 0 && response_bytes >= 0);
  let before = Clock.now t.clock in
  (* Request SEND: the caller blocks for the round trip, so both messages
     complete on its clock. *)
  Qp.post t.qp [ Qp.wqe ~signaled:true Qp.Write ~len:request_bytes ];
  Qp.wait_idle t.qp;
  Clock.advance t.clock t.service_ns;
  let result = f x in
  Qp.post t.qp [ Qp.wqe ~signaled:true Qp.Write ~len:response_bytes ];
  Qp.wait_idle t.qp;
  t.calls <- t.calls + 1;
  t.total_ns <- t.total_ns + (Clock.now t.clock - before);
  result

let calls t = t.calls
let total_ns t = t.total_ns
