open Kona_util

exception Timeout_exhausted of { attempts : int }

type t = {
  qp : Qp.t;
  service_ns : int;
  timeout_ns : int;
  retry_limit : int;
  cap_shift : int;
  fail : (unit -> bool) option;
  clock : Clock.t;
  mutable calls : int;
  mutable total_ns : int;
  mutable timeouts : int;
  mutable retries : int;
}

let create ?cost ?(service_ns = 1_500) ?(timeout_ns = 10_000) ?retry_limit
    ?backoff ?fail ?inject ~clock ~nic () =
  (* The stack-wide backoff policy sets the retry budget and backoff
     shape; an explicit [retry_limit] still wins for targeted tests. *)
  let cfg = Option.value backoff ~default:Backoff.default in
  let retry_limit =
    match retry_limit with Some n -> n | None -> cfg.Backoff.rpc_retry_max
  in
  assert (timeout_ns > 0 && retry_limit >= 0);
  {
    qp = Qp.create ?cost ?inject ~nic ~clock ();
    service_ns;
    timeout_ns;
    retry_limit;
    cap_shift = cfg.Backoff.cap_shift;
    fail;
    clock;
    calls = 0;
    total_ns = 0;
    timeouts = 0;
    retries = 0;
  }

let call t ~request_bytes ~response_bytes f x =
  assert (request_bytes >= 0 && response_bytes >= 0);
  let before = Clock.now t.clock in
  (* Timeout/retry wrapper: an injected fault loses the exchange before the
     handler runs, so the caller burns the timeout (with capped exponential
     backoff) and resends.  The handler itself executes exactly once, on
     the attempt that goes through. *)
  let rec attempt k =
    match t.fail with
    | Some failing when failing () ->
        t.timeouts <- t.timeouts + 1;
        Clock.advance t.clock (t.timeout_ns * (1 lsl min k t.cap_shift));
        if k >= t.retry_limit then raise (Timeout_exhausted { attempts = k + 1 });
        t.retries <- t.retries + 1;
        attempt (k + 1)
    | Some _ | None -> (
        let send len =
          Qp.post t.qp [ Qp.wqe ~signaled:true Qp.Write ~len ];
          Qp.wait_idle t.qp
        in
        (* Request SEND: the caller blocks for the round trip, so both
           messages complete on its clock. *)
        match send request_bytes with
        | exception e ->
            (* The request never reached the peer (e.g. the QP exhausted
               its retransmissions under wqe-drop), so resending cannot
               double-execute the handler.  When retries run out the
               {e underlying} failure surfaces — a transport death must
               not be masked as [Timeout_exhausted]. *)
            t.timeouts <- t.timeouts + 1;
            Clock.advance t.clock (t.timeout_ns * (1 lsl min k t.cap_shift));
            if k >= t.retry_limit then raise e;
            t.retries <- t.retries + 1;
            attempt (k + 1)
        | () ->
            Clock.advance t.clock t.service_ns;
            (* Handler and response exceptions propagate immediately:
               the handler has executed, so a retry would break the
               exactly-once guarantee — and the caller must see the real
               error, not a timeout. *)
            let result = f x in
            send response_bytes;
            result)
  in
  let result = attempt 0 in
  t.calls <- t.calls + 1;
  t.total_ns <- t.total_ns + (Clock.now t.clock - before);
  result

let calls t = t.calls
let total_ns t = t.total_ns
let timeouts t = t.timeouts
let retries t = t.retries
