(** Two-sided messaging on top of the queue-pair model: the control path.

    Kona's data path is one-sided (reads, writes, the CL log), but control
    operations — a compute node asking the rack controller for slabs, a
    memory node registering its capacity — are request/response exchanges
    (§4.1).  This module prices those exchanges: a call costs a request
    SEND, the callee's service time, and a response SEND, charged to the
    caller's clock (control-path operations are synchronous but rare and
    batched). *)

type t

exception Timeout_exhausted of { attempts : int }
(** Every retry of a call timed out: the control-plane peer is
    unreachable. *)

val create :
  ?cost:Cost.t ->
  ?service_ns:int ->
  ?timeout_ns:int ->
  ?retry_limit:int ->
  ?fail:(unit -> bool) ->
  clock:Kona_util.Clock.t ->
  nic:Nic.t ->
  unit ->
  t
(** An RPC channel clocked by the caller.  [service_ns] models the callee's
    handling time per call (default 1.5 us: a controller allocation or
    registration handler).

    [fail] is the fault-injection hook, consulted once per attempt: [true]
    loses the exchange, costing [timeout_ns] (doubling per consecutive
    loss, capped at 16x; default 10 us) before a resend, up to
    [retry_limit] retries (default 5) and then {!Timeout_exhausted}. *)

val call : t -> request_bytes:int -> response_bytes:int -> ('a -> 'b) -> 'a -> 'b
(** Execute [f] as the remote handler: charges request wire + service +
    response wire to the caller's clock and returns [f]'s result.  Under
    injected timeouts the exchange is retried; [f] runs exactly once, on
    the successful attempt. *)

val calls : t -> int
val total_ns : t -> int
(** Cumulative time spent in [call] (wire + service + timeout waits). *)

val timeouts : t -> int
(** Attempts lost to injected timeouts. *)

val retries : t -> int
(** Resends after a timeout (= [timeouts] minus exhausted failures). *)
