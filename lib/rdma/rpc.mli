(** Two-sided messaging on top of the queue-pair model: the control path.

    Kona's data path is one-sided (reads, writes, the CL log), but control
    operations — a compute node asking the rack controller for slabs, a
    memory node registering its capacity — are request/response exchanges
    (§4.1).  This module prices those exchanges: a call costs a request
    SEND, the callee's service time, and a response SEND, charged to the
    caller's clock (control-path operations are synchronous but rare and
    batched). *)

type t

exception Timeout_exhausted of { attempts : int }
(** Every retry of a call timed out: the control-plane peer is
    unreachable. *)

val create :
  ?cost:Cost.t ->
  ?service_ns:int ->
  ?timeout_ns:int ->
  ?retry_limit:int ->
  ?backoff:Kona_util.Backoff.config ->
  ?fail:(unit -> bool) ->
  ?inject:(unit -> [ `Drop | `Delay of int ] option) ->
  clock:Kona_util.Clock.t ->
  nic:Nic.t ->
  unit ->
  t
(** An RPC channel clocked by the caller.  [service_ns] models the callee's
    handling time per call (default 1.5 us: a controller allocation or
    registration handler).

    [fail] is the fault-injection hook, consulted once per attempt: [true]
    loses the exchange, costing [timeout_ns] (doubling per consecutive
    loss, capped at [2^cap_shift]; default 10 us) before a resend, up to
    [retry_limit] retries and then {!Timeout_exhausted}.  The retry
    budget and backoff cap come from [backoff] (default
    {!Kona_util.Backoff.default}: 5 resends, cap 16x); an explicit
    [retry_limit] overrides the policy's budget.

    [inject] is forwarded to the channel's internal queue pair, so
    wqe-drop/wqe-delay plans also stress the control path's SENDs. *)

val call : t -> request_bytes:int -> response_bytes:int -> ('a -> 'b) -> 'a -> 'b
(** Execute [f] as the remote handler: charges request wire + service +
    response wire to the caller's clock and returns [f]'s result.  Under
    injected timeouts the exchange is retried; [f] runs exactly once, on
    the successful attempt.

    Failure surfacing: a {e request-send} failure (the message never
    reached the peer, e.g. {!Qp.Retry_exhausted}) is retried with the
    same backoff, and when retries run out the underlying exception is
    re-raised — not masked as {!Timeout_exhausted}.  An exception from
    the {e handler} (or the response send) propagates immediately: the
    handler has already executed, so retrying would break exactly-once,
    and the caller must see the real error. *)

val calls : t -> int
val total_ns : t -> int
(** Cumulative time spent in [call] (wire + service + timeout waits). *)

val timeouts : t -> int
(** Attempts lost to injected timeouts. *)

val retries : t -> int
(** Resends after a timeout (= [timeouts] minus exhausted failures). *)
