(** Two-sided messaging on top of the queue-pair model: the control path.

    Kona's data path is one-sided (reads, writes, the CL log), but control
    operations — a compute node asking the rack controller for slabs, a
    memory node registering its capacity — are request/response exchanges
    (§4.1).  This module prices those exchanges: a call costs a request
    SEND, the callee's service time, and a response SEND, charged to the
    caller's clock (control-path operations are synchronous but rare and
    batched). *)

type t

val create :
  ?cost:Cost.t ->
  ?service_ns:int ->
  clock:Kona_util.Clock.t ->
  nic:Nic.t ->
  unit ->
  t
(** An RPC channel clocked by the caller.  [service_ns] models the callee's
    handling time per call (default 1.5 us: a controller allocation or
    registration handler). *)

val call : t -> request_bytes:int -> response_bytes:int -> ('a -> 'b) -> 'a -> 'b
(** Execute [f] as the remote handler: charges request wire + service +
    response wire to the caller's clock and returns [f]'s result. *)

val calls : t -> int
val total_ns : t -> int
(** Cumulative time spent in [call] (wire + service). *)
