(** A shared NIC: the serialization point between queue pairs of the same
    adapter.  Threads (and the background eviction path) own separate QPs,
    but wire time on one port is exclusive — this is what erodes Kona's
    speedup as thread counts grow (paper Fig. 7: 6.6x at one thread,
    4-5x at 2-4). *)

type t

val create : unit -> t

val occupy : t -> start:int -> duration:int -> int
(** Reserve the wire: returns the actual start time (>= [start], after any
    earlier occupancy and outside any injected outage) and records the port
    busy until start + duration. *)

val free_at : t -> int

(** {2 Failure injection (§4.5, failure mode 2)}

    An outage stalls all traffic for its duration: transfers that would
    start inside the window begin when it lifts.  Kona detects the
    resulting coherence-protocol timeout as a machine-check exception (see
    {!Kona.Caching_handler}). *)

val inject_outage : t -> at:int -> duration:int -> unit
val outage_total : t -> int
(** Total injected outage time (diagnostics). *)

(** {2 Telemetry counters} *)

val ops : t -> int
(** Wire occupations granted. *)

val busy_ns : t -> int
(** Total serialization time the port spent occupied. *)

val stall_ns : t -> int
(** Total time occupations waited behind earlier traffic or outages — the
    port-contention cost that erodes multi-QP speedup (Fig. 7). *)
