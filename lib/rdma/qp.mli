(** A simulated RDMA queue pair with one-sided verbs.

    Supports the optimizations the paper evaluates for eviction (§5.1):
    batching + linking (one doorbell for a list of WQEs), unsignaled and
    selective signaling (a CQE every Nth signal-requested WQE), and inline
    data.  Delivery side-effects (actually moving the bytes) are supplied
    by the caller as thunks, so the module stays a pure timing/accounting
    model usable by both the runtime and the microbenchmarks.

    {b Completion-driven delivery.}  [post] never executes delivery
    thunks: a WQE's side-effect fires only once the virtual clock reaches
    the WQE's completion timestamp, when due completions are drained by
    [post], [poll] or [wait_idle].  A reader polling remote state between
    post and completion therefore never observes bytes "from the future".

    {b Windowed flow control.}  With [sq_depth] set, the modeled send
    queue exerts backpressure: posting into a full window advances the
    caller's clock to the oldest in-flight completion until the batch
    fits ([window_stalls]/[window_stall_ns] account for it).

    {b Fault injection and retransmission.}  With an [inject] hook, every
    transmission attempt may be dropped or delayed.  A dropped attempt is
    retransmitted after the retransmission timer with capped exponential
    backoff (RNR-retry semantics); the WQE's completion — and therefore
    its single delivery — moves later by the accumulated backoff, clamped
    monotone so the reliable connection stays in-order.  Exceeding
    [retry_limit] raises {!Retry_exhausted} (the QP's error state). *)

type op = Read | Write

type wqe = {
  op : op;
  len : int;  (** payload bytes *)
  signaled : bool;
  deliver : unit -> unit;  (** executed when the verb completes *)
  node : int option;
      (** destination memory-node logical id, for ingress arbitration *)
}

val wqe :
  ?signaled:bool -> ?deliver:(unit -> unit) -> ?node:int -> op -> len:int -> wqe
(** Defaults: unsignaled, no-op delivery, no destination tag. *)

type retry = {
  rx_timeout_ns : int;  (** Retransmission timer for a lost attempt. *)
  retry_limit : int;  (** Attempts beyond the first before the QP errors. *)
  backoff_cap : int;  (** Backoff doubles at most this many times. *)
}

val default_retry : retry
(** 8 us timer, 7 retries, backoff capped at 16x. *)

val retry_of : Kona_util.Backoff.config -> retry
(** Derive the transport's retransmission parameters from the
    stack-wide backoff policy ([retry_of Backoff.default] equals
    {!default_retry}). *)

exception Retry_exhausted of { attempts : int }
(** A WQE exhausted its retransmission budget: the QP enters the error
    state (callers surface this as a failed operation, not a hang). *)

type t

val create :
  ?cost:Cost.t ->
  ?nic:Nic.t ->
  ?sq_depth:int ->
  ?signal_interval:int ->
  ?inject:(unit -> [ `Drop | `Delay of int ] option) ->
  ?arbitrate:(node:int option -> op:op -> len:int -> now:int -> int) ->
  ?retry:retry ->
  clock:Kona_util.Clock.t ->
  unit ->
  t
(** [clock] is the posting thread's virtual clock; posting charges doorbell
    time to it, while wire time elapses asynchronously.  QPs sharing a
    [nic] contend for wire time.

    [sq_depth] bounds outstanding (posted-but-not-completed) WQEs; [post]
    blocks — advancing the caller's clock — until a slot frees (default:
    unbounded).  [signal_interval] implements selective signaling: of the
    WQEs the caller requests signaled, only every Nth raises a CQE
    (default 1 = every requested one).

    [inject] is consulted once per transmission attempt (so a dropped
    attempt draws again for its retransmission); [retry] tunes the
    retransmission state machine (default {!default_retry}).

    [arbitrate] is consulted once per WQE with its destination [node] tag
    and nominal completion time [now]; a positive return value defers the
    completion by that many ns (rack ingress scheduling: queueing behind
    other tenants' traffic at a contended memory node).  Accounted in
    {!arb_delay_ns}, separate from fault delays. *)

val clock : t -> Kona_util.Clock.t

val post : t -> wqe list -> unit
(** Post one linked batch (one doorbell).  Applies window backpressure,
    stamps every WQE with the batch completion time, and fires any
    already-due delivery thunks from earlier posts.  The new batch's own
    deliveries fire later, when the clock reaches their completion time. *)

val poll : t -> max:int -> int list
(** Drain due completions: fires delivery thunks of WQEs whose completion
    time has passed the posting clock, then reaps up to [max] CQEs,
    returning their completion times (non-blocking; charges
    [Cost.cqe_ns] per reaped CQE). *)

val wait_idle : t -> unit
(** Block (advance the clock) until every posted verb has completed, fire
    all pending deliveries, and drain the CQ.  This is how a synchronous
    caller waits for a fence. *)

val in_flight : t -> int
(** Posted-but-not-completed WQEs relative to the current clock —
    unsignaled WQEs included (posted minus completed). *)

(** {2 Accounting} *)

val payload_bytes : t -> int
val wire_bytes : t -> int
val posts : t -> int
val verbs : t -> int

val signaled : t -> int
(** WQEs that actually carried a CQE (after selective signaling). *)

val completed : t -> int
(** CQEs drained by [poll] or [wait_idle]; [signaled - completed -
    outstanding = 0] always holds. *)

val outstanding : t -> int
(** Signaled WQEs whose CQE has not been reaped yet. *)

val window_stalls : t -> int
(** Posts that blocked on a full send-queue window. *)

val window_stall_ns : t -> int
(** Total clock time posts spent waiting for a window slot. *)

val outstanding_peak : t -> int
(** Peak send-queue occupancy (WQEs in flight at once). *)

val sq_depth : t -> int option
(** The configured window, if any. *)

val retransmits : t -> int
(** Transmission attempts lost to injected faults and resent. *)

val fault_delay_ns : t -> int
(** Total completion-time slip from injected drops (backoff waits) and
    delays. *)

val arb_delay_ns : t -> int
(** Total completion-time slip imposed by the [arbitrate] hook (contended
    memory-node ingress queueing). *)
