(** A simulated RDMA queue pair with one-sided verbs.

    Supports the optimizations the paper evaluates for eviction (§5.1):
    batching + linking (one doorbell for a list of WQEs), unsignaled
    completions (only the last WQE of a batch raises a CQE), and inline
    data.  Delivery side-effects (actually moving the bytes) are supplied by
    the caller as thunks, so the module stays a pure timing/accounting
    model usable by both the runtime and the microbenchmarks. *)

type op = Read | Write

type wqe = {
  op : op;
  len : int;  (** payload bytes *)
  signaled : bool;
  deliver : unit -> unit;  (** executed when the verb completes *)
}

val wqe : ?signaled:bool -> ?deliver:(unit -> unit) -> op -> len:int -> wqe
(** Defaults: unsignaled, no-op delivery. *)

type t

val create : ?cost:Cost.t -> ?nic:Nic.t -> clock:Kona_util.Clock.t -> unit -> t
(** [clock] is the posting thread's virtual clock; posting charges doorbell
    time to it, while wire time elapses asynchronously.  QPs sharing a
    [nic] contend for wire time. *)

val clock : t -> Kona_util.Clock.t

val post : t -> wqe list -> unit
(** Post one linked batch (one doorbell).  Executes delivery thunks and
    enqueues a CQE per signaled WQE, stamped with the batch completion
    time. *)

val poll : t -> max:int -> int list
(** Completion times of up to [max] CQEs whose completion time has passed
    the posting clock (non-blocking poll). *)

val wait_idle : t -> unit
(** Block (advance the clock) until every posted verb has completed; drains
    the CQ.  This is how a synchronous caller waits for a fence. *)

val in_flight : t -> int
(** Posted-but-not-completed verbs (relative to the current clock). *)

(** {2 Accounting} *)

val payload_bytes : t -> int
val wire_bytes : t -> int
val posts : t -> int
val verbs : t -> int

val signaled : t -> int
(** Signaled WQEs posted (CQEs ever enqueued). *)

val completed : t -> int
(** CQEs drained by [poll] or [wait_idle]; [signaled - completed -
    outstanding = 0] always holds. *)

val outstanding : t -> int
(** CQEs enqueued but not yet drained. *)
