type t = {
  base_ns : float;
  doorbell_ns : float;
  wqe_ns : float;
  byte_ns : float;
  header_bytes : int;
  memcpy_base_ns : float;
  memcpy_byte_ns : float;
  bitmap_line_ns : float;
  ack_ns : float;
  cqe_ns : float;
}

(* byte_ns: 100 Gbps = 12.5 GB/s = 0.08 ns/B.
   base 2.55us + 4096 * 0.08 = 2.88us + doorbell/wqe ≈ 3.0us for a 4KB op. *)
let default =
  {
    base_ns = 2_550.;
    doorbell_ns = 250.;
    wqe_ns = 120.;
    byte_ns = 0.08;
    header_bytes = 42;
    (* AVX-accelerated copies into registered buffers (§5.1) are fast per
       byte; the base covers log bookkeeping per staged entry. *)
    memcpy_base_ns = 25.;
    memcpy_byte_ns = 0.05;
    bitmap_line_ns = 1.0;
    ack_ns = 2_900.;
    (* Reaping one CQE: cacheline read of the CQ + bookkeeping.  This is
       what selective signaling (signal every Nth WQE) amortizes. *)
    cqe_ns = 150.;
  }

let batch_ns t ~sizes =
  match sizes with
  | [] -> 0
  | _ ->
      let n = List.length sizes in
      let payload = List.fold_left ( + ) 0 sizes in
      let wire = payload + (n * t.header_bytes) in
      int_of_float
        (t.base_ns +. t.doorbell_ns
        +. (t.wqe_ns *. float_of_int n)
        +. (t.byte_ns *. float_of_int wire))

let wire_bytes t ~sizes =
  List.fold_left (fun acc s -> acc + s + t.header_bytes) 0 sizes

let memcpy_ns t ~bytes =
  int_of_float (t.memcpy_base_ns +. (t.memcpy_byte_ns *. float_of_int bytes))

let bitmap_scan_ns t ~lines = int_of_float (t.bitmap_line_ns *. float_of_int lines)
