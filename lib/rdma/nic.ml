type t = {
  mutable busy_until : int;
  mutable outages : (int * int) list; (* (start, end), sorted by start *)
}

let create () = { busy_until = 0; outages = [] }

let inject_outage t ~at ~duration =
  assert (duration > 0);
  t.outages <- List.sort compare ((at, at + duration) :: t.outages)

let rec skip_outages outages time =
  match outages with
  | (s, e) :: rest when time >= s -> skip_outages rest (max time e)
  | _ -> time

let occupy t ~start ~duration =
  let actual = skip_outages t.outages (max start t.busy_until) in
  t.busy_until <- actual + duration;
  actual

let free_at t = t.busy_until

let outage_total t = List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 t.outages
