type t = {
  mutable busy_until : int;
  mutable outages : (int * int) list; (* (start, end), sorted by start *)
  (* Telemetry: shared-port contention is the quantity Fig. 11's goodput
     story turns on, so the NIC accounts for it directly. *)
  mutable ops : int;
  mutable busy_ns : int;
  mutable stall_ns : int;
}

let create () = { busy_until = 0; outages = []; ops = 0; busy_ns = 0; stall_ns = 0 }

let inject_outage t ~at ~duration =
  assert (duration > 0);
  t.outages <- List.sort compare ((at, at + duration) :: t.outages)

let rec skip_outages outages time =
  match outages with
  | (s, e) :: rest when time >= s -> skip_outages rest (max time e)
  | _ -> time

let occupy t ~start ~duration =
  let actual = skip_outages t.outages (max start t.busy_until) in
  t.busy_until <- actual + duration;
  t.ops <- t.ops + 1;
  t.busy_ns <- t.busy_ns + duration;
  (* Everything between the requested start and the actual one is a stall:
     the port was serializing someone else's batch or riding out an
     outage. *)
  t.stall_ns <- t.stall_ns + (actual - start);
  actual

let free_at t = t.busy_until

let outage_total t = List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 t.outages

let ops t = t.ops
let busy_ns t = t.busy_ns
let stall_ns t = t.stall_ns
