(** RDMA NIC cost model, calibrated against the paper's testbed (Mellanox
    ConnectX-5, 100 Gbps RoCE): a 4KB one-sided read/write completes in
    about 3 us, small verbs in about 2.9 us, and batching/linking amortizes
    the per-operation software+doorbell overhead (§5.1).  The same model
    also prices local memcpy into RDMA-registered buffers (the "Copy"
    share of Fig. 11c) and bitmap scans. *)

type t = {
  base_ns : float;  (** one-sided verb end-to-end latency floor *)
  doorbell_ns : float;  (** per-post (per-doorbell) software + MMIO cost *)
  wqe_ns : float;  (** marginal cost of each linked WQE in a batch *)
  byte_ns : float;  (** wire transfer per payload byte (line rate) *)
  header_bytes : int;  (** per-WQE wire overhead (headers/CRC) *)
  memcpy_base_ns : float;  (** fixed cost of a local copy call *)
  memcpy_byte_ns : float;  (** per-byte cost of copying into an RDMA buffer *)
  bitmap_line_ns : float;  (** per-cache-line cost of scanning a dirty bitmap *)
  ack_ns : float;  (** remote log-receiver acknowledgment latency *)
  cqe_ns : float;
      (** cost of reaping one completion-queue entry — the overhead
          selective signaling (a CQE every Nth WQE) amortizes *)
}

val default : t

val batch_ns : t -> sizes:int list -> int
(** Completion time of one posted batch (one doorbell, linked WQEs, shared
    latency floor, pipelined payloads). *)

val wire_bytes : t -> sizes:int list -> int
(** Bytes on the wire including per-WQE headers. *)

val memcpy_ns : t -> bytes:int -> int
val bitmap_scan_ns : t -> lines:int -> int
