open Kona_util

type op = Read | Write

type wqe = { op : op; len : int; signaled : bool; deliver : unit -> unit }

let wqe ?(signaled = false) ?(deliver = fun () -> ()) op ~len =
  assert (len >= 0);
  { op; len; signaled; deliver }

type t = {
  cost : Cost.t;
  clock : Clock.t;
  nic : Nic.t;
  cq : int Queue.t; (* completion times of signaled WQEs *)
  mutable nic_free_at : int; (* this QP's wire busy until *)
  mutable last_completion : int;
  mutable payload_bytes : int;
  mutable wire_bytes : int;
  mutable posts : int;
  mutable verbs : int;
  mutable signaled : int;
  mutable completed : int;
}

let create ?(cost = Cost.default) ?nic ~clock () =
  {
    cost;
    clock;
    nic = (match nic with Some n -> n | None -> Nic.create ());
    cq = Queue.create ();
    nic_free_at = 0;
    last_completion = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    posts = 0;
    verbs = 0;
    signaled = 0;
    completed = 0;
  }

let clock t = t.clock

let post t wqes =
  if wqes <> [] then begin
    let sizes = List.map (fun w -> w.len) wqes in
    (* The posting thread pays only the doorbell; the NIC pipeline starts
       when it is free and the batch occupies it for the remainder. *)
    Clock.advance t.clock (int_of_float t.cost.Cost.doorbell_ns);
    (* The port is exclusively occupied only for serialization (WQE
       processing + bytes on the wire); the propagation/latency floor is
       pipelined with other QPs' traffic. *)
    let n = List.length sizes in
    let wire =
      int_of_float
        ((t.cost.Cost.wqe_ns *. float_of_int n)
        +. (t.cost.Cost.byte_ns *. float_of_int (Cost.wire_bytes t.cost ~sizes)))
    in
    let latency = Cost.batch_ns t.cost ~sizes - wire in
    let start =
      Nic.occupy t.nic ~start:(max (Clock.now t.clock) t.nic_free_at) ~duration:wire
    in
    let finish = start + wire + latency in
    t.nic_free_at <- start + wire;
    t.last_completion <- max t.last_completion finish;
    t.posts <- t.posts + 1;
    t.verbs <- t.verbs + List.length wqes;
    t.payload_bytes <- t.payload_bytes + List.fold_left ( + ) 0 sizes;
    t.wire_bytes <- t.wire_bytes + Cost.wire_bytes t.cost ~sizes;
    List.iter
      (fun w ->
        w.deliver ();
        if w.signaled then begin
          t.signaled <- t.signaled + 1;
          Queue.push finish t.cq
        end)
      wqes
  end

let poll t ~max:n =
  let rec loop acc n =
    if n = 0 then List.rev acc
    else
      match Queue.peek_opt t.cq with
      | Some finish when finish <= Clock.now t.clock ->
          ignore (Queue.pop t.cq : int);
          t.completed <- t.completed + 1;
          loop (finish :: acc) (n - 1)
      | Some _ | None -> List.rev acc
  in
  loop [] n

let wait_idle t =
  Clock.advance_to t.clock t.last_completion;
  t.completed <- t.completed + Queue.length t.cq;
  Queue.clear t.cq

let in_flight t =
  if t.nic_free_at > Clock.now t.clock then Queue.length t.cq else 0

let payload_bytes t = t.payload_bytes
let wire_bytes t = t.wire_bytes
let posts t = t.posts
let verbs t = t.verbs
let signaled t = t.signaled
let completed t = t.completed
let outstanding t = Queue.length t.cq
