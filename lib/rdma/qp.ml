open Kona_util

type op = Read | Write

type wqe = {
  op : op;
  len : int;
  signaled : bool;
  deliver : unit -> unit;
  node : int option;
}

let wqe ?(signaled = false) ?(deliver = fun () -> ()) ?node op ~len =
  assert (len >= 0);
  { op; len; signaled; deliver; node }

type retry = { rx_timeout_ns : int; retry_limit : int; backoff_cap : int }

(* Defaults mirror RNR-retry practice: a short retransmission timer,
   seven retries, backoff doubling capped at 16x. *)
let default_retry = { rx_timeout_ns = 8_000; retry_limit = 7; backoff_cap = 4 }

(* The transport's view of the stack-wide backoff policy. *)
let retry_of (b : Backoff.config) =
  {
    rx_timeout_ns = b.Backoff.base_ns;
    retry_limit = b.Backoff.qp_retry_max;
    backoff_cap = b.Backoff.cap_shift;
  }

exception Retry_exhausted of { attempts : int }

(* A posted WQE awaiting its completion time.  Batches occupy the wire in
   post order; injected retransmission delays are clamped monotone (a
   reliable connection delivers in order, so a retransmitted WQE holds
   back everything behind it) and a FIFO queue stays clock-ordered. *)
type pending = { finish : int; p_signaled : bool; p_deliver : unit -> unit }

type t = {
  cost : Cost.t;
  clock : Clock.t;
  nic : Nic.t;
  sq_depth : int option; (* modeled send-queue depth; None = unbounded *)
  signal_interval : int; (* raise a CQE every Nth signal-requested WQE *)
  inject : (unit -> [ `Drop | `Delay of int ] option) option;
  arbitrate : (node:int option -> op:op -> len:int -> now:int -> int) option;
  retry : retry;
  sq : pending Queue.t; (* posted, not yet completed (clock-ordered) *)
  cq : int Queue.t; (* completion times of signaled WQEs, ready to reap *)
  mutable since_signal : int;
  mutable nic_free_at : int; (* this QP's wire busy until *)
  mutable last_completion : int;
  mutable payload_bytes : int;
  mutable wire_bytes : int;
  mutable posts : int;
  mutable verbs : int;
  mutable signaled : int;
  mutable completed : int;
  mutable window_stalls : int;
  mutable window_stall_ns : int;
  mutable outstanding_peak : int;
  mutable retransmits : int;
  mutable fault_delay_ns : int;
  mutable arb_delay_ns : int;
}

let create ?(cost = Cost.default) ?nic ?sq_depth ?(signal_interval = 1) ?inject
    ?arbitrate ?(retry = default_retry) ~clock () =
  assert (signal_interval > 0);
  assert (retry.rx_timeout_ns > 0 && retry.retry_limit >= 0 && retry.backoff_cap >= 0);
  (match sq_depth with Some d -> assert (d > 0) | None -> ());
  {
    cost;
    clock;
    nic = (match nic with Some n -> n | None -> Nic.create ());
    sq_depth;
    signal_interval;
    inject;
    arbitrate;
    retry;
    sq = Queue.create ();
    cq = Queue.create ();
    since_signal = 0;
    nic_free_at = 0;
    last_completion = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    posts = 0;
    verbs = 0;
    signaled = 0;
    completed = 0;
    window_stalls = 0;
    window_stall_ns = 0;
    outstanding_peak = 0;
    retransmits = 0;
    fault_delay_ns = 0;
    arb_delay_ns = 0;
  }

let clock t = t.clock

(* Retire WQEs whose completion time the clock has reached: fire their
   delivery side-effects (the bytes land at the memory node now, not at
   post time) and make signaled ones reapable. *)
let retire_due t =
  let rec loop () =
    match Queue.peek_opt t.sq with
    | Some p when p.finish <= Clock.now t.clock ->
        ignore (Queue.pop t.sq : pending);
        p.p_deliver ();
        if p.p_signaled then Queue.push p.finish t.cq;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let post t wqes =
  if wqes <> [] then begin
    retire_due t;
    let n = List.length wqes in
    (* Windowed flow control: the send queue holds at most [sq_depth]
       WQEs, so a full window blocks the posting thread — its clock
       advances to the oldest in-flight completion — until the batch
       fits.  A batch larger than the window waits for a full drain. *)
    (match t.sq_depth with
    | Some depth ->
        let needed = min n depth in
        let stalled = ref false in
        while Queue.length t.sq > depth - needed do
          let head = Queue.peek t.sq in
          if head.finish > Clock.now t.clock then begin
            stalled := true;
            t.window_stall_ns <-
              t.window_stall_ns + (head.finish - Clock.now t.clock);
            Clock.advance_to t.clock head.finish
          end;
          retire_due t
        done;
        if !stalled then t.window_stalls <- t.window_stalls + 1
    | None -> ());
    let sizes = List.map (fun w -> w.len) wqes in
    (* The posting thread pays only the doorbell; the NIC pipeline starts
       when it is free and the batch occupies it for the remainder. *)
    Clock.advance t.clock (int_of_float t.cost.Cost.doorbell_ns);
    (* The port is exclusively occupied only for serialization (WQE
       processing + bytes on the wire); the propagation/latency floor is
       pipelined with other QPs' traffic. *)
    let wire =
      int_of_float
        ((t.cost.Cost.wqe_ns *. float_of_int n)
        +. (t.cost.Cost.byte_ns *. float_of_int (Cost.wire_bytes t.cost ~sizes)))
    in
    let latency = Cost.batch_ns t.cost ~sizes - wire in
    let start =
      Nic.occupy t.nic ~start:(max (Clock.now t.clock) t.nic_free_at) ~duration:wire
    in
    let base_finish = start + wire + latency in
    t.nic_free_at <- start + wire;
    t.posts <- t.posts + 1;
    t.verbs <- t.verbs + n;
    t.payload_bytes <- t.payload_bytes + List.fold_left ( + ) 0 sizes;
    t.wire_bytes <- t.wire_bytes + Cost.wire_bytes t.cost ~sizes;
    List.iter
      (fun (w : wqe) ->
        (* Fault injection: each transmission attempt may be dropped (the
           retransmission timer fires and the WQE is resent after capped
           exponential backoff) or delayed.  The final completion time is
           clamped monotone against earlier WQEs — in-order delivery on a
           reliable connection means a retransmit holds back its
           successors. *)
        let fin = ref (max base_finish t.last_completion) in
        (* Ingress arbitration: a contended memory-node scheduler may defer
           this WQE's completion (queueing behind other tenants' traffic).
           The added wait surfaces exactly like a fault delay — later
           completion, in-order clamp — but is accounted separately. *)
        (match t.arbitrate with
        | None -> ()
        | Some f ->
            let d = f ~node:w.node ~op:w.op ~len:w.len ~now:!fin in
            if d > 0 then begin
              t.arb_delay_ns <- t.arb_delay_ns + d;
              fin := !fin + d
            end);
        (match t.inject with
        | None -> ()
        | Some draw ->
            let attempt = ref 0 in
            let sending = ref true in
            while !sending do
              match draw () with
              | None -> sending := false
              | Some (`Delay d) ->
                  t.fault_delay_ns <- t.fault_delay_ns + d;
                  fin := !fin + d;
                  sending := false
              | Some `Drop ->
                  if !attempt >= t.retry.retry_limit then
                    raise (Retry_exhausted { attempts = !attempt + 1 });
                  let backoff =
                    t.retry.rx_timeout_ns
                    * (1 lsl min !attempt t.retry.backoff_cap)
                  in
                  t.retransmits <- t.retransmits + 1;
                  t.fault_delay_ns <- t.fault_delay_ns + backoff;
                  fin := !fin + backoff;
                  incr attempt
            done);
        t.last_completion <- max t.last_completion !fin;
        (* Selective signaling: only every [signal_interval]-th WQE the
           caller asked to signal actually raises a CQE. *)
        let signaled =
          w.signaled
          && begin
               t.since_signal <- t.since_signal + 1;
               if t.since_signal >= t.signal_interval then begin
                 t.since_signal <- 0;
                 true
               end
               else false
             end
        in
        if signaled then t.signaled <- t.signaled + 1;
        Queue.push { finish = !fin; p_signaled = signaled; p_deliver = w.deliver } t.sq)
      wqes;
    if Queue.length t.sq > t.outstanding_peak then
      t.outstanding_peak <- Queue.length t.sq
  end

let poll t ~max:n =
  retire_due t;
  let rec loop acc n =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.cq with
      | Some finish ->
          t.completed <- t.completed + 1;
          Clock.advance t.clock (int_of_float t.cost.Cost.cqe_ns);
          loop (finish :: acc) (n - 1)
      | None -> List.rev acc
  in
  loop [] n

let wait_idle t =
  Clock.advance_to t.clock t.last_completion;
  retire_due t;
  let n = Queue.length t.cq in
  t.completed <- t.completed + n;
  Clock.advance t.clock (n * int_of_float t.cost.Cost.cqe_ns);
  Queue.clear t.cq

(* Posted-but-not-completed WQEs relative to the clock, unsignaled ones
   included: CQ depth alone under-reports in-flight work, and wire
   occupancy alone over-reports it once the port is free but completions
   are still outstanding. *)
let in_flight t =
  let now = Clock.now t.clock in
  Queue.fold (fun acc p -> if p.finish > now then acc + 1 else acc) 0 t.sq

let payload_bytes t = t.payload_bytes
let wire_bytes t = t.wire_bytes
let posts t = t.posts
let verbs t = t.verbs
let signaled t = t.signaled
let completed t = t.completed
let outstanding t = t.signaled - t.completed
let window_stalls t = t.window_stalls
let window_stall_ns t = t.window_stall_ns
let outstanding_peak t = t.outstanding_peak
let sq_depth t = t.sq_depth
let retransmits t = t.retransmits
let fault_delay_ns t = t.fault_delay_ns
let arb_delay_ns t = t.arb_delay_ns
