(** Shared-memory RPC: requests and responses carried through coherent
    cache lines of a published rack segment instead of QP messages — the
    "Telepathic Datacenters" idea, rebuilt on the rack's multi-writer MSI
    directory.

    The ring lives in the first shared page: a head line (the client's
    doorbell), a tail line (the server's completion doorbell), then
    [slots] request-line groups and [slots] response-line groups.  Every
    write is an RFO through {!Kona_rack.Rack.shared_line_write}, so the
    head and tail lines ping-pong ownership between client and server by
    construction; each handoff's recall is priced through the contended
    home-node link, which is exactly what the {!Rpc} message path it is
    benched against pays in NIC and service time instead.

    All traffic is deterministic replay — same engine, same seeds, same
    fingerprints — so a ring run is bit-reproducible like everything else
    in the rack. *)

type t

type stats = {
  s_calls : int;
  s_total_ns : int;  (** sum of per-call latencies (client+server clocks) *)
  s_max_ns : int;
  s_req_lines : int;
  s_resp_lines : int;
  s_handoffs : int;  (** writer handoffs the ring caused at the MSI home *)
  s_invalidations : int;  (** copies its RFOs killed *)
}

val create :
  ?slots:int ->
  ?req_lines:int ->
  ?resp_lines:int ->
  ?base_line:int ->
  Kona_rack.Rack.engine ->
  client:int ->
  server:int ->
  unit ->
  t
(** A ring between two distinct tenants on [e]'s shared segment
    (published on demand: one page if none yet).  Defaults: 4 slots, one
    request and one response line per call, ring based at line 1 (line 0
    of each page belongs to the woven rack traffic).  Raises
    [Invalid_argument] if the tenants are not distinct, the geometry is
    non-positive, or the ring overflows the first page's lines. *)

val call : t -> payload:int -> int
(** One round trip: the client writes the request lines and rings the
    head doorbell; the server claims the doorbell with an atomic swap (an
    RFO that recalls the client's dirty copy — a writer handoff), reads
    the request, writes the response lines and rings the tail doorbell;
    the client claims that the same way and reads the response.  Returns
    the call's latency in virtual ns (the max of client and server
    clocks, before vs after). *)

val stats : t -> stats

val mean_ns : stats -> int
(** Mean ns per call; 0 before any call. *)

val run :
  ?slots:int ->
  ?req_lines:int ->
  ?resp_lines:int ->
  Kona_rack.Rack.engine ->
  client:int ->
  server:int ->
  calls:int ->
  unit ->
  stats
(** Convenience: a fresh ring and [calls] sequential calls with payload
    [0..calls-1].  Deterministic for a deterministic engine. *)
