module Rack = Kona_rack.Rack
module Units = Kona_util.Units
module Runtime = Kona.Runtime

type t = {
  e : Rack.engine;
  client : int;
  server : int;
  slots : int;
  req_lines : int;
  resp_lines : int;
  base_line : int;
  mutable seq : int;
  mutable calls : int;
  mutable total_ns : int;
  mutable max_ns : int;
  handoffs0 : int;
  invalidations0 : int;
}

type stats = {
  s_calls : int;
  s_total_ns : int;
  s_max_ns : int;
  s_req_lines : int;
  s_resp_lines : int;
  s_handoffs : int;
  s_invalidations : int;
}

let ring_lines t = 2 + (t.slots * (t.req_lines + t.resp_lines))

let create ?(slots = 4) ?(req_lines = 1) ?(resp_lines = 1) ?(base_line = 1) e
    ~client ~server () =
  if slots < 1 || req_lines < 1 || resp_lines < 1 || base_line < 0 then
    invalid_arg "Shm_rpc.create: ring geometry must be positive";
  let n = Rack.tenant_count e in
  if client < 0 || client >= n || server < 0 || server >= n || client = server
  then invalid_arg "Shm_rpc.create: client and server must be distinct tenants";
  (* the ring must fit in the first shared page's lines; the woven rack
     traffic only ever writes line 0 of each page, so [base_line >= 1]
     keeps the data plane out of its way *)
  let t =
    {
      e;
      client;
      server;
      slots;
      req_lines;
      resp_lines;
      base_line;
      seq = 0;
      calls = 0;
      total_ns = 0;
      max_ns = 0;
      handoffs0 = Rack.shared_handoffs e;
      invalidations0 = Rack.shared_invalidations e;
    }
  in
  Rack.publish e ~pages:1;
  (* doorbell lines always have two writers, whatever the engine's
     [shared_writers] says: writeback races need the home-side filter *)
  Rack.enable_multi_writer e;
  if base_line + ring_lines t > Units.lines_per_page then
    invalid_arg "Shm_rpc.create: ring does not fit in one shared page";
  t

let now t =
  max
    (Runtime.elapsed_ns (Rack.runtime t.e ~tenant:t.client))
    (Runtime.elapsed_ns (Rack.runtime t.e ~tenant:t.server))

let call t ~payload =
  let slot = t.seq mod t.slots in
  let head = t.base_line and tail = t.base_line + 1 in
  let req0 = t.base_line + 2 + (slot * t.req_lines) in
  let resp0 = t.base_line + 2 + (t.slots * t.req_lines) + (slot * t.resp_lines) in
  let byte k = Char.chr ((payload + k) land 0xff) in
  let t0 = now t in
  (* client stages the request, then rings the doorbell: each write is an
     RFO that steals the line back from whoever last touched it *)
  for j = 0 to t.req_lines - 1 do
    Rack.shared_line_write t.e ~tenant:t.client ~line:(req0 + j)
      ~payload:(byte j)
  done;
  Rack.shared_line_write t.e ~tenant:t.client ~line:head ~payload:(byte t.seq);
  (* the server claims the doorbell with an atomic swap — a single RFO
     that both observes the sequence number and takes ownership (a
     read-then-upgrade would cost two bus transactions): this is the
     writer handoff that recalls the client's dirty head line *)
  Rack.shared_line_write t.e ~tenant:t.server ~line:head
    ~payload:(byte (t.seq + 1));
  for j = 0 to t.req_lines - 1 do
    Rack.shared_line_read t.e ~tenant:t.server ~line:(req0 + j)
  done;
  (* response plus completion doorbell *)
  for j = 0 to t.resp_lines - 1 do
    Rack.shared_line_write t.e ~tenant:t.server ~line:(resp0 + j)
      ~payload:(byte (j + 1))
  done;
  Rack.shared_line_write t.e ~tenant:t.server ~line:tail ~payload:(byte t.seq);
  (* client claims the completion doorbell the same way — ownership of
     both doorbell lines ping-pongs once per direction per call *)
  Rack.shared_line_write t.e ~tenant:t.client ~line:tail
    ~payload:(byte (t.seq + 1));
  for j = 0 to t.resp_lines - 1 do
    Rack.shared_line_read t.e ~tenant:t.client ~line:(resp0 + j)
  done;
  t.seq <- t.seq + 1;
  let dt = max 0 (now t - t0) in
  t.calls <- t.calls + 1;
  t.total_ns <- t.total_ns + dt;
  if dt > t.max_ns then t.max_ns <- dt;
  dt

let stats t =
  {
    s_calls = t.calls;
    s_total_ns = t.total_ns;
    s_max_ns = t.max_ns;
    s_req_lines = t.req_lines;
    s_resp_lines = t.resp_lines;
    s_handoffs = Rack.shared_handoffs t.e - t.handoffs0;
    s_invalidations = Rack.shared_invalidations t.e - t.invalidations0;
  }

let mean_ns s = if s.s_calls = 0 then 0 else s.s_total_ns / s.s_calls

let run ?slots ?req_lines ?resp_lines e ~client ~server ~calls () =
  let t = create ?slots ?req_lines ?resp_lines e ~client ~server () in
  for k = 0 to calls - 1 do
    ignore (call t ~payload:k)
  done;
  stats t
