(** The Caching Handler: services VFMem cache-line requests that miss the
    CPU hierarchy — the cache-remote-data primitive (§4.2).

    On an LLC miss to VFMem the directory consults FMem: a hit costs one
    FPGA-memory access (NUMA-like latency); a miss triggers an on-demand
    RDMA read of the enclosing fetch block (a page by default — FMem always
    caches whole pages, §4.4) on the {e application's} clock, since demand
    misses are synchronous.  Inserting the fetched page may produce an FMem
    victim, which is handed to the eviction handler (background clock).

    There are no page faults anywhere on this path.

    {b Failure handling (§4.5).}  A network outage delays the coherence
    response past the protocol's tolerance; the CPU surfaces this as a
    machine-check exception.  When [mce_threshold_ns] is set, any fetch
    whose completion exceeds it raises the MCE path: the runtime charges
    the MCA recovery cost and retries — the paper's option (i), handling
    the MCE on Intel's machine-check architecture. *)

type t

val create :
  cost:Cost_model.t ->
  ?fetch_block:int ->
  ?mce_threshold_ns:int ->
  ?prefetch_qp:Kona_rdma.Qp.t ->
  ?tracer:Kona_telemetry.Tracer.t ->
  fmem:Kona_coherence.Fmem.t ->
  rm:Resource_manager.t ->
  fetch_qp:Kona_rdma.Qp.t ->
  on_victim:(vpage:int -> dirty:Kona_util.Bitmap.t -> unit) ->
  unit ->
  t
(** [fetch_block] bytes per remote fetch (default one page; must be a
    multiple of the page size — sub-page blocks are modeled by KCacheSim
    only).  [fetch_qp] must be clocked by the application thread.

    [prefetch_qp] enables next-page stream prefetching (see
    {!Prefetcher}): sequential demand misses trigger asynchronous fetches
    on that queue pair (a background clock — the application does not
    wait), which is only possible because Kona's fetches are cache misses
    rather than serializing page faults.

    [tracer] receives a [fetch.page] span per demand fetch and a
    [fetch.mce] instant per machine-check raised. *)

val on_fill : t -> addr:int -> unit
(** Handle one LLC-miss line request for VFMem address [addr]. *)

val set_on_fetch_verify : t -> (vpage:int -> unit) -> unit
(** Install the integrity hook run after every synchronous demand fetch
    (eviction-fetch included): the runtime uses it for stale-read
    detection and on-fetch checksum verification of the remote page the
    fetch just read. *)

val set_on_fetch : t -> (vpage:int -> unit) -> unit
(** Install an observation hook run after every synchronous demand fetch,
    after verification: the rack layer uses it to register shared-segment
    sharers with the rack-level directory. *)

val fmem_hits : t -> int
val fmem_misses : t -> int
val pages_fetched : t -> int
val bytes_fetched : t -> int

val mce_raised : t -> int
(** Machine-check exceptions taken on over-latency fetches. *)

val prefetches_issued : t -> int
val prefetches_useful : t -> int
(** Prefetched pages that later absorbed a demand miss. *)

val fetch_latency : t -> Kona_util.Histogram.t
(** Distribution of demand-fetch completion latencies (observability; the
    MCE threshold is exactly a bound on this distribution's tail). *)
