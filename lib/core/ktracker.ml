open Kona_util
module Access = Kona_trace.Access
module Heap = Kona_workloads.Heap

type t = {
  heap : Heap.t;
  snapshots : (int, string) Hashtbl.t; (* page -> 4KB content at window start *)
  touched : (int, unit) Hashtbl.t; (* pages touched this window *)
  write_seen : (int, unit) Hashtbl.t; (* pages written this window (wp fault taken) *)
  mutable reports : window_report list; (* newest first *)
  mutable wp_faults_window : int;
  mutable reprotect_pending : int; (* pages to re-protect at next window = last dirty *)
}

and window_report = {
  window : int;
  dirty_lines : int;
  dirty_pages : int;
  wp_faults : int;
  tlb_invalidations : int;
}

let create ~heap () =
  {
    heap;
    snapshots = Hashtbl.create 4096;
    touched = Hashtbl.create 1024;
    write_seen = Hashtbl.create 1024;
    reports = [];
    wp_faults_window = 0;
    reprotect_pending = 0;
  }

let page_content t page =
  Heap.peek_bytes t.heap (page * Units.page_size) Units.page_size

let snapshot_if_needed t page =
  if not (Hashtbl.mem t.snapshots page) then
    Hashtbl.replace t.snapshots page (page_content t page)

let sink t event =
  Access.iter_pages event (fun page ->
      if not (Hashtbl.mem t.touched page) then begin
        Hashtbl.replace t.touched page ();
        snapshot_if_needed t page
      end;
      if Access.is_write event && not (Hashtbl.mem t.write_seen page) then begin
        Hashtbl.replace t.write_seen page ();
        t.wp_faults_window <- t.wp_faults_window + 1
      end)

let diff_lines old_content new_content =
  let dirty = ref 0 in
  for line = 0 to Units.lines_per_page - 1 do
    let off = line * Units.cache_line in
    if String.sub old_content off Units.cache_line <> String.sub new_content off Units.cache_line
    then incr dirty
  done;
  !dirty

let close_window t ~window =
  let dirty_lines = ref 0 in
  let dirty_pages = ref 0 in
  Hashtbl.iter
    (fun page () ->
      let current = page_content t page in
      let old = Hashtbl.find t.snapshots page in
      let d = diff_lines old current in
      if d > 0 then begin
        dirty_lines := !dirty_lines + d;
        incr dirty_pages
      end;
      Hashtbl.replace t.snapshots page current)
    t.touched;
  let report =
    {
      window;
      dirty_lines = !dirty_lines;
      dirty_pages = !dirty_pages;
      wp_faults = t.wp_faults_window;
      (* Re-arming write protection invalidates the TLB entry of every page
         that was writable (faulted) this window. *)
      tlb_invalidations = t.reprotect_pending;
    }
  in
  t.reprotect_pending <- t.wp_faults_window;
  t.reports <- report :: t.reports;
  Hashtbl.reset t.touched;
  Hashtbl.reset t.write_seen;
  t.wp_faults_window <- 0

let windows t = List.rev t.reports

let amp_ratio r =
  if r.dirty_lines = 0 then 0.
  else
    float_of_int (r.dirty_pages * Units.page_size)
    /. float_of_int (r.dirty_lines * Units.cache_line)

let wp_overhead_ns ~cost t =
  List.fold_left
    (fun acc r ->
      acc
      + (r.wp_faults * cost.Cost_model.minor_fault_ns)
      + (r.tlb_invalidations * cost.Cost_model.tlb_invalidate_ns))
    0 (windows t)

let pml_overhead_ns ~cost t =
  let logged =
    List.fold_left (fun acc r -> acc + r.wp_faults) 0 (windows t)
    (* PML logs one entry per newly-dirtied page, the same events that
       would have faulted under write protection. *)
  in
  (logged + 511) / 512 * cost.Cost_model.pml_drain_ns

let speedup_percent ~cost ~app_ns t =
  let overhead = wp_overhead_ns ~cost t in
  if app_ns = 0 then 0. else 100. *. float_of_int overhead /. float_of_int app_ns
