module Qp = Kona_rdma.Qp

type t = { mutable qps : (string * Qp.t) list; mutable reaped : int }

let create () = { qps = []; reaped = 0 }
let register t ~name qp = t.qps <- t.qps @ [ (name, qp) ]

let poll t =
  List.filter_map
    (fun (name, qp) ->
      match Qp.poll qp ~max:64 with
      | [] -> None
      | completions ->
          let n = List.length completions in
          t.reaped <- t.reaped + n;
          Some (name, n))
    t.qps

let drain t = List.iter (fun (_, qp) -> Qp.wait_idle qp) t.qps
let reaped t = t.reaped
