open Kona_util

type t = {
  slab_size : int;
  mutable node_list : Memory_node.t list; (* registration order *)
  mutable next_node : int; (* round-robin cursor *)
  mutable next_slab_id : int;
}

let create ?(slab_size = Units.mib 1) () =
  assert (slab_size > 0 && slab_size mod Units.page_size = 0);
  { slab_size; node_list = []; next_node = 0; next_slab_id = 0 }

let slab_size t = t.slab_size
let register_node t node = t.node_list <- t.node_list @ [ node ]
let nodes t = t.node_list

let node t ~id =
  match List.find_opt (fun n -> Memory_node.id n = id) t.node_list with
  | Some n -> n
  | None -> raise Not_found

let allocate_slab t ~vaddr =
  let n = List.length t.node_list in
  if n = 0 then failwith "Rack_controller: no memory nodes registered";
  let rec try_node attempts =
    if attempts = n then raise Out_of_memory
    else begin
      let candidate = List.nth t.node_list (t.next_node mod n) in
      t.next_node <- t.next_node + 1;
      if Memory_node.free_bytes candidate >= t.slab_size then begin
        let remote_addr = Memory_node.reserve candidate ~size:t.slab_size in
        let slab =
          {
            Slab.id = t.next_slab_id;
            node = Memory_node.id candidate;
            vaddr;
            remote_addr;
            size = t.slab_size;
          }
        in
        t.next_slab_id <- t.next_slab_id + 1;
        slab
      end
      else try_node (attempts + 1)
    end
  in
  try_node 0

let total_free t =
  List.fold_left (fun acc n -> acc + Memory_node.free_bytes n) 0 t.node_list

let slabs_allocated t = t.next_slab_id
