open Kona_util

(* One registered node: [logical_id] is the rack-wide identity slabs refer
   to; [backing] is the store currently serving it — swapped on replica
   failover, so translations outlive the crash of the original hardware.
   A draining slot keeps serving existing slabs but takes no new ones;
   the slot stays registered even after the drain completes so logical
   ids (and everything indexed by them) remain stable. *)
type slot = {
  logical_id : int;
  mutable backing : Memory_node.t;
  mutable draining : bool;
}

exception
  Quota_exceeded of { tenant : string; quota : int; used : int; requested : int }

let () =
  Printexc.register_printer (function
    | Quota_exceeded { tenant; quota; used; requested } ->
        Some
          (Printf.sprintf
             "Rack_controller.Quota_exceeded: tenant %S at %d/%d bytes, slab \
              of %d rejected"
             tenant used quota requested)
    | _ -> None)

type t = {
  slab_size : int;
  slots : slot Dynarray.t; (* registration order *)
  index : (int, int) Hashtbl.t; (* logical id -> slot position *)
  quotas : (string, int) Hashtbl.t; (* tenant -> byte cap *)
  used : (string, int) Hashtbl.t; (* tenant -> bytes allocated *)
  mutable next_node : int; (* round-robin cursor *)
  mutable next_slab_id : int;
  (* placement hook: consulted before the round-robin for every slab;
     returning a logical id steers the slab there if that node can take
     it. *)
  mutable placement : (vaddr:int -> tenant:string option -> int option) option;
}

let create ?(slab_size = Units.mib 1) () =
  assert (slab_size > 0 && slab_size mod Units.page_size = 0);
  {
    slab_size;
    slots = Dynarray.create ();
    index = Hashtbl.create 8;
    quotas = Hashtbl.create 8;
    used = Hashtbl.create 8;
    next_node = 0;
    next_slab_id = 0;
    placement = None;
  }

let slab_size t = t.slab_size

let register_node t node =
  let id = Memory_node.id node in
  if Hashtbl.mem t.index id then
    invalid_arg (Printf.sprintf "Rack_controller: memory node id %d already registered" id);
  Hashtbl.add t.index id (Dynarray.length t.slots);
  Dynarray.add_last t.slots { logical_id = id; backing = node; draining = false }

let nodes t = List.map (fun s -> s.backing) (Dynarray.to_list t.slots)

let slot t ~id =
  match Hashtbl.find_opt t.index id with
  | Some pos -> Dynarray.get t.slots pos
  | None ->
      invalid_arg (Printf.sprintf "Rack_controller.node: unknown memory node id %d" id)

let node t ~id = (slot t ~id).backing

let replace_node t ~id ~node = (slot t ~id).backing <- node
let set_draining t ~id draining = (slot t ~id).draining <- draining
let draining t ~id = (slot t ~id).draining
let set_placement t choose = t.placement <- Some choose
let free_bytes t ~id = Memory_node.free_bytes (slot t ~id).backing
let used_bytes t ~id = Memory_node.used (slot t ~id).backing

let set_quota t ~tenant ~bytes =
  if bytes < 0 then invalid_arg "Rack_controller.set_quota: negative quota";
  Hashtbl.replace t.quotas tenant bytes

let quota t ~tenant = Hashtbl.find_opt t.quotas tenant

let tenant_used t ~tenant =
  match Hashtbl.find_opt t.used tenant with Some b -> b | None -> 0

(* Admission control: reject past the cap before touching any node; usage
   is committed only once a slab is actually handed out. *)
let admit t ~tenant =
  match tenant with
  | None -> ()
  | Some tenant -> (
      let used = tenant_used t ~tenant in
      match Hashtbl.find_opt t.quotas tenant with
      | Some quota when used + t.slab_size > quota ->
          raise
            (Quota_exceeded { tenant; quota; used; requested = t.slab_size })
      | Some _ | None -> ())

let commit t ~tenant =
  match tenant with
  | None -> ()
  | Some tenant ->
      Hashtbl.replace t.used tenant (tenant_used t ~tenant + t.slab_size)

let usable t s =
  Memory_node.alive s.backing
  && (not s.draining)
  && Memory_node.free_bytes s.backing >= t.slab_size

let grant t ~tenant ~vaddr s =
  let remote_addr = Memory_node.reserve s.backing ~size:t.slab_size in
  let slab =
    {
      Slab.id = t.next_slab_id;
      node = s.logical_id;
      vaddr;
      remote_addr;
      size = t.slab_size;
    }
  in
  t.next_slab_id <- t.next_slab_id + 1;
  commit t ~tenant;
  slab

let allocate_slab ?tenant t ~vaddr =
  let n = Dynarray.length t.slots in
  if n = 0 then failwith "Rack_controller: no memory nodes registered";
  admit t ~tenant;
  let preferred =
    match t.placement with
    | None -> None
    | Some choose -> (
        match choose ~vaddr ~tenant with
        | None -> None
        | Some id -> (
            match Hashtbl.find_opt t.index id with
            | Some pos ->
                let s = Dynarray.get t.slots pos in
                if usable t s then Some s else None
            | None -> None))
  in
  match preferred with
  | Some s -> grant t ~tenant ~vaddr s
  | None ->
      let rec try_node attempts =
        if attempts = n then raise Out_of_memory
        else begin
          let candidate = Dynarray.get t.slots (t.next_node mod n) in
          t.next_node <- t.next_node + 1;
          if usable t candidate then grant t ~tenant ~vaddr candidate
          else try_node (attempts + 1)
        end
      in
      try_node 0

let total_free t =
  Dynarray.fold_left
    (fun acc s ->
      if Memory_node.alive s.backing then acc + Memory_node.free_bytes s.backing else acc)
    0 t.slots

let slabs_allocated t = t.next_slab_id
