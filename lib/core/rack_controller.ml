open Kona_util

(* One registered node: [logical_id] is the rack-wide identity slabs refer
   to; [backing] is the store currently serving it — swapped on replica
   failover, so translations outlive the crash of the original hardware.
   A draining slot keeps serving existing slabs but takes no new ones;
   the slot stays registered even after the drain completes so logical
   ids (and everything indexed by them) remain stable. *)
type slot = {
  logical_id : int;
  mutable backing : Memory_node.t;
  mutable draining : bool;
  (* Stores that used to serve this slot, newest first: failover swaps
     the backing but a falsely-declared-dead predecessor may still be
     live behind a partition — fencing and the at-most-one-primary
     invariant need to find it. *)
  mutable former : Memory_node.t list;
}

exception
  Quota_exceeded of { tenant : string; quota : int; used : int; requested : int }

let () =
  Printexc.register_printer (function
    | Quota_exceeded { tenant; quota; used; requested } ->
        Some
          (Printf.sprintf
             "Rack_controller.Quota_exceeded: tenant %S at %d/%d bytes, slab \
              of %d rejected"
             tenant used quota requested)
    | _ -> None)

type t = {
  slab_size : int;
  slots : slot Dynarray.t; (* registration order *)
  index : (int, int) Hashtbl.t; (* logical id -> slot position *)
  quotas : (string, int) Hashtbl.t; (* tenant -> byte cap *)
  used : (string, int) Hashtbl.t; (* tenant -> bytes allocated *)
  mutable next_node : int; (* round-robin cursor *)
  mutable next_slab_id : int;
  (* Backing-store id mint: replicas and promoted mirrors get their
     physical ids here so they can never collide with a logical id
     registered by a rack op.  [minted] remembers every id handed out —
     registering one of them later is a hard error, not a collision. *)
  mutable next_backing_id : int;
  minted : (int, unit) Hashtbl.t;
  (* Rack-global fencing epoch, monotone: bumped on every membership-
     triggered failover and stamped through every tenant's sequencer so
     a fenced store can reject stale cross-tenant writes uniformly. *)
  mutable fencing_epoch : int;
  (* placement hook: consulted before the round-robin for every slab;
     returning a logical id steers the slab there if that node can take
     it. *)
  mutable placement : (vaddr:int -> tenant:string option -> int option) option;
}

let create ?(slab_size = Units.mib 1) () =
  assert (slab_size > 0 && slab_size mod Units.page_size = 0);
  {
    slab_size;
    slots = Dynarray.create ();
    index = Hashtbl.create 8;
    quotas = Hashtbl.create 8;
    used = Hashtbl.create 8;
    next_node = 0;
    next_slab_id = 0;
    next_backing_id = 1_000;
    minted = Hashtbl.create 8;
    fencing_epoch = 0;
    placement = None;
  }

let slab_size t = t.slab_size

let register_node t node =
  let id = Memory_node.id node in
  if Hashtbl.mem t.index id then
    invalid_arg (Printf.sprintf "Rack_controller: memory node id %d already registered" id);
  if Hashtbl.mem t.minted id then
    invalid_arg
      (Printf.sprintf
         "Rack_controller: node id %d was minted for a replica backing store \
          (mint_backing_id); registering it as a logical node would alias two \
          physical stores"
         id);
  Hashtbl.add t.index id (Dynarray.length t.slots);
  Dynarray.add_last t.slots
    { logical_id = id; backing = node; draining = false; former = [] }

(* Physical ids for replica/mirror stores: skip every registered logical
   id so a rack-op [add@T] and a re-replication can never mint the same
   id, whatever order they land in. *)
let mint_backing_id t =
  while Hashtbl.mem t.index t.next_backing_id || Hashtbl.mem t.minted t.next_backing_id
  do
    t.next_backing_id <- t.next_backing_id + 1
  done;
  let id = t.next_backing_id in
  Hashtbl.add t.minted id ();
  t.next_backing_id <- t.next_backing_id + 1;
  id

let nodes t = List.map (fun s -> s.backing) (Dynarray.to_list t.slots)

let slot t ~id =
  match Hashtbl.find_opt t.index id with
  | Some pos -> Dynarray.get t.slots pos
  | None ->
      invalid_arg (Printf.sprintf "Rack_controller.node: unknown memory node id %d" id)

let node t ~id = (slot t ~id).backing

let replace_node t ~id ~node =
  let s = slot t ~id in
  s.former <- s.backing :: s.former;
  s.backing <- node

let former_backings t ~id = (slot t ~id).former
let logical_ids t = List.map (fun s -> s.logical_id) (Dynarray.to_list t.slots)

(* Physical-store lookups: membership leases and fencing follow the
   store, not the logical slot — a displaced ex-backing keeps its
   physical id while the slot's backing moves on. *)
let find_physical t ~id =
  Dynarray.fold_left
    (fun acc s ->
      match acc with
      | Some _ -> acc
      | None ->
          if Memory_node.id s.backing = id then Some s.backing
          else List.find_opt (fun n -> Memory_node.id n = id) s.former)
    None t.slots

let logical_backed_by t ~physical =
  Dynarray.fold_left
    (fun acc s ->
      match acc with
      | Some _ -> acc
      | None ->
          if Memory_node.id s.backing = physical then Some s.logical_id
          else None)
    None t.slots

let all_physical t =
  List.concat_map
    (fun s -> s.backing :: s.former)
    (Dynarray.to_list t.slots)
let bump_fencing_epoch t =
  t.fencing_epoch <- t.fencing_epoch + 1;
  t.fencing_epoch

let fencing_epoch t = t.fencing_epoch
let set_draining t ~id draining = (slot t ~id).draining <- draining
let draining t ~id = (slot t ~id).draining
let set_placement t choose = t.placement <- Some choose
let free_bytes t ~id = Memory_node.free_bytes (slot t ~id).backing
let used_bytes t ~id = Memory_node.used (slot t ~id).backing

let set_quota t ~tenant ~bytes =
  if bytes < 0 then invalid_arg "Rack_controller.set_quota: negative quota";
  Hashtbl.replace t.quotas tenant bytes

let quota t ~tenant = Hashtbl.find_opt t.quotas tenant

let tenant_used t ~tenant =
  match Hashtbl.find_opt t.used tenant with Some b -> b | None -> 0

(* Admission control: reject past the cap before touching any node; usage
   is committed only once a slab is actually handed out. *)
let admit t ~tenant =
  match tenant with
  | None -> ()
  | Some tenant -> (
      let used = tenant_used t ~tenant in
      match Hashtbl.find_opt t.quotas tenant with
      | Some quota when used + t.slab_size > quota ->
          raise
            (Quota_exceeded { tenant; quota; used; requested = t.slab_size })
      | Some _ | None -> ())

let commit t ~tenant =
  match tenant with
  | None -> ()
  | Some tenant ->
      Hashtbl.replace t.used tenant (tenant_used t ~tenant + t.slab_size)

let usable t s =
  Memory_node.alive s.backing
  && (not s.draining)
  && Memory_node.free_bytes s.backing >= t.slab_size

let grant t ~tenant ~vaddr s =
  let remote_addr = Memory_node.reserve s.backing ~size:t.slab_size in
  let slab =
    {
      Slab.id = t.next_slab_id;
      node = s.logical_id;
      vaddr;
      remote_addr;
      size = t.slab_size;
    }
  in
  t.next_slab_id <- t.next_slab_id + 1;
  commit t ~tenant;
  slab

let allocate_slab ?tenant t ~vaddr =
  let n = Dynarray.length t.slots in
  if n = 0 then failwith "Rack_controller: no memory nodes registered";
  admit t ~tenant;
  let preferred =
    match t.placement with
    | None -> None
    | Some choose -> (
        match choose ~vaddr ~tenant with
        | None -> None
        | Some id -> (
            match Hashtbl.find_opt t.index id with
            | Some pos ->
                let s = Dynarray.get t.slots pos in
                if usable t s then Some s else None
            | None -> None))
  in
  match preferred with
  | Some s -> grant t ~tenant ~vaddr s
  | None ->
      let rec try_node attempts =
        if attempts = n then raise Out_of_memory
        else begin
          let candidate = Dynarray.get t.slots (t.next_node mod n) in
          t.next_node <- t.next_node + 1;
          if usable t candidate then grant t ~tenant ~vaddr candidate
          else try_node (attempts + 1)
        end
      in
      try_node 0

let total_free t =
  Dynarray.fold_left
    (fun acc s ->
      if Memory_node.alive s.backing then acc + Memory_node.free_bytes s.backing else acc)
    0 t.slots

let slabs_allocated t = t.next_slab_id
