open Kona_util
module Access = Kona_trace.Access
module Hierarchy = Kona_cachesim.Hierarchy
module Fmem = Kona_coherence.Fmem
module Directory = Kona_coherence.Directory
module Nic = Kona_rdma.Nic
module Qp = Kona_rdma.Qp
module Rpc = Kona_rdma.Rpc
module Cache = Kona_cachesim.Cache
module Hub = Kona_telemetry.Hub
module Registry = Kona_telemetry.Registry
module Tracer = Kona_telemetry.Tracer
module Fault_spec = Kona_faults.Fault_spec
module Injector = Kona_faults.Injector
module Sequencer = Kona_integrity.Sequencer
module Scrubber = Kona_integrity.Scrubber
module Membership = Kona_membership.Membership
module Recovery = Kona_membership.Recovery

type config = {
  cost : Cost_model.t;
  rdma : Kona_rdma.Cost.t;
  cache_config : Hierarchy.config;
  fmem_pages : int;
  fmem_assoc : int;
  fmem_policy : Fmem.policy;
  fetch_block : int;
  log_capacity : int;
  replicas : int;
  mce_threshold_ns : int option;
  prefetch : bool;
  sq_depth : int option;
  signal_interval : int;
  faults : Fault_spec.t;
  fault_seed : int;
  arm_injector : bool;
  check_replicas : bool;
  scrub_interval_ns : int option;
  scrub_budget : int;
  verify_checksums : bool;
  tenant : string option;
  stream_base : int;
  backoff : Backoff.config;
  heartbeat_ns : int option;
  lease_ns : int;
}

let default_config =
  {
    cost = Cost_model.default;
    rdma = Kona_rdma.Cost.default;
    cache_config = Hierarchy.default_config;
    fmem_pages = 1024;
    fmem_assoc = 4;
    fmem_policy = Fmem.Lru;
    fetch_block = Units.page_size;
    log_capacity = 512;
    replicas = 0;
    mce_threshold_ns = None;
    prefetch = false;
    sq_depth = None;
    signal_interval = 1;
    faults = [];
    fault_seed = 42;
    arm_injector = false;
    check_replicas = false;
    scrub_interval_ns = None;
    scrub_budget = 8;
    verify_checksums = false;
    tenant = None;
    stream_base = 0;
    backoff = Backoff.default;
    heartbeat_ns = None;
    lease_ns = 200_000;
  }

(* End-to-end integrity accounting: the detection side feeds from CL-log
   delivery reports (wire-CRC rejects, sequence verdicts) and the scrub
   side from at-rest checksum sweeps.  Quarantine and the flip-arming
   registry are keyed by (copy node id, absolute line address) — copies
   are physical nodes, so the keys survive failover re-targeting. *)
type integrity_state = {
  quarantine : (int * int, unit) Hashtbl.t;
  armed : (int * int, int) Hashtbl.t; (* -> virtual time the flip landed *)
  detect_latency : Histogram.t;
  unrepairable_pages : (int, unit) Hashtbl.t; (* vpage -> declared lost *)
  mutable flips_armed : int;
  mutable flips_found : int;
  mutable flips_healed : int;
  mutable torn_events : int;
  mutable crc_rejected_lines : int;
  mutable seq_duplicates : int;
  mutable seq_gaps : int;
  mutable seq_stale : int;
  mutable stale_reads_detected : int;
  mutable repaired_lines : int;
  mutable repair_bytes : int;
  mutable unrepairable_lines : int;
}

let create_integrity_state () =
  {
    quarantine = Hashtbl.create 32;
    armed = Hashtbl.create 32;
    detect_latency = Histogram.create ();
    unrepairable_pages = Hashtbl.create 8;
    flips_armed = 0;
    flips_found = 0;
    flips_healed = 0;
    torn_events = 0;
    crc_rejected_lines = 0;
    seq_duplicates = 0;
    seq_gaps = 0;
    seq_stale = 0;
    stale_reads_detected = 0;
    repaired_lines = 0;
    repair_bytes = 0;
    unrepairable_lines = 0;
  }

type t = {
  config : config;
  app_clock : Clock.t;
  bg_clock : Clock.t;
  controller : Rack_controller.t;
  hierarchy : Hierarchy.t;
  fmem : Fmem.t;
  directory : Directory.t;
  rm : Resource_manager.t;
  rpc : Rpc.t;
  log : Cl_log.t;
  replication : Replication.t option;
  injector : Injector.t option;
  caching : Caching_handler.t;
  tracker : Dirty_tracker.t;
  evictor : Eviction_handler.t;
  nic : Nic.t;
  fetch_qp : Qp.t;
  evict_qp : Qp.t;
  prefetch_qp : Qp.t option;
  hub : Hub.t option;
  tracer : Tracer.t option;
  failover_latency : Histogram.t;
  recovery_latency : Histogram.t;
  integrity : integrity_state;
  mutable scrubber : Scrubber.t option; (* tied after [t] exists *)
  mutable membership : Membership.t option; (* tied after [t] exists *)
  recovery : Recovery.t;
  (* Asymmetric partitions: physical node id -> heal virtual time.  A
     partitioned node is healthy but unreachable — heartbeats miss and
     CL-log deliveries are deferred (below) instead of lost. *)
  partition_until : (int, int) Hashtbl.t;
  mutable deferred : (int * (unit -> unit)) list; (* (heal_ns, fire), FIFO *)
  mutable partitions_started : int;
  mutable deferred_deliveries : int;
  mutable deferred_flushed : int;
  (* Rack broadcast hook: a membership failover's fencing epoch is pushed
     through here so every tenant's sender adopts it. *)
  on_fence : (epoch:int -> unit) ref;
  mutable node_crashes : int;
  mutable recovery_bytes : int;
  mutable heap_pages_restored : int;
  mutable heap_pages_lost : int;
  mutable degraded_reason : string option;
  mutable accesses : int;
  on_evict : (vpage:int -> dirty:bool -> unit) ref;
  mutable invalidations_received : int;
}

(* Fencing counters are summed over every store the controller knows of
   (current and former backings): rejects land on displaced ex-primaries,
   which only the former lists still reach. *)
let fencing_rejects t =
  List.fold_left
    (fun acc n -> acc + Memory_node.fenced_rejects n)
    0
    (Rack_controller.all_physical t.controller)

let post_fence_writes t =
  List.fold_left
    (fun acc n -> acc + Memory_node.post_fence_writes n)
    0
    (Rack_controller.all_physical t.controller)

(* Publish the whole runtime namespace into [reg].  Everything is pull-style
   ([counter_fn]/[gauge_fn] over existing component tallies) except the fetch
   latency distribution, which is the caching handler's own histogram
   registered by reference — components stay telemetry-free. *)
let register_metrics t reg =
  let c ?labels name f = Registry.counter_fn reg ?labels name f in
  let g ?labels name f = Registry.gauge_fn reg ?labels name f in
  (* Application / clocks *)
  c "runtime.accesses" (fun () -> t.accesses);
  g "clock.app_ns" (fun () -> Clock.now t.app_clock);
  g "clock.bg_ns" (fun () -> Clock.now t.bg_clock);
  (* Demand-fetch path *)
  Registry.histogram_ref reg "fetch.latency_ns"
    (Caching_handler.fetch_latency t.caching);
  c "fetch.pages" (fun () -> Caching_handler.pages_fetched t.caching);
  c "fetch.bytes" (fun () -> Caching_handler.bytes_fetched t.caching);
  c "fetch.mce_raised" (fun () -> Caching_handler.mce_raised t.caching);
  c "prefetch.issued" (fun () -> Caching_handler.prefetches_issued t.caching);
  c "prefetch.useful" (fun () -> Caching_handler.prefetches_useful t.caching);
  (* FMem: demand-level hit/miss plus probe-level and per-set skew *)
  c "fmem.hits" (fun () -> Caching_handler.fmem_hits t.caching);
  c "fmem.misses" (fun () -> Caching_handler.fmem_misses t.caching);
  g "fmem.resident" (fun () -> Fmem.resident t.fmem);
  c "fmem.evictions" (fun () -> Fmem.evictions t.fmem);
  c "fmem.probe.hits" (fun () -> Fmem.probe_hits t.fmem);
  c "fmem.probe.misses" (fun () -> Fmem.probe_misses t.fmem);
  g "fmem.set.max_misses" (fun () ->
      let worst = ref 0 in
      for s = 0 to Fmem.nsets t.fmem - 1 do
        let _, misses, _ = Fmem.set_counters t.fmem ~set:s in
        if misses > !worst then worst := misses
      done;
      !worst);
  (* CPU cache hierarchy *)
  List.iter
    (fun (lvl, cache) ->
      let labels = [ ("level", lvl) ] in
      c ~labels "cache.accesses" (fun () ->
          let s = Cache.stats cache in
          s.Cache.reads + s.Cache.writes);
      c ~labels "cache.misses" (fun () ->
          let s = Cache.stats cache in
          s.Cache.read_misses + s.Cache.write_misses))
    [
      ("l1", Hierarchy.l1 t.hierarchy);
      ("l2", Hierarchy.l2 t.hierarchy);
      ("llc", Hierarchy.llc t.hierarchy);
    ];
  c "hierarchy.memory_accesses" (fun () -> Hierarchy.memory_accesses t.hierarchy);
  c "hierarchy.writebacks" (fun () -> Hierarchy.writebacks t.hierarchy);
  c "directory.fills" (fun () -> Directory.fills t.directory);
  c "directory.writebacks" (fun () -> Directory.writebacks t.directory);
  c "directory.snoops" (fun () -> Directory.snoops t.directory);
  c "coherence.invalidations" (fun () -> t.invalidations_received);
  (* Dirty tracking and eviction *)
  g "tracker.lines" (fun () -> Dirty_tracker.lines_tracked t.tracker);
  c "tracker.orphans" (fun () -> Dirty_tracker.orphans t.tracker);
  c "evict.pages" (fun () -> Eviction_handler.pages_evicted t.evictor);
  c "evict.clean_pages" (fun () -> Eviction_handler.clean_pages t.evictor);
  c "evict.lines" (fun () -> Eviction_handler.lines_evicted t.evictor);
  c "evict.snooped_lines" (fun () -> Eviction_handler.snooped_dirty_lines t.evictor);
  (* CL log: volume, amplification, per-phase time (Fig. 11) *)
  c "cllog.lines" (fun () -> Cl_log.lines_logged t.log);
  c "cllog.appends" (fun () -> Cl_log.appends t.log);
  c "cllog.stale_writebacks" (fun () -> Cl_log.stale_lines t.log);
  c "cllog.flushes" (fun () -> Cl_log.flushes t.log);
  c "cllog.payload_bytes" (fun () -> Cl_log.payload_bytes t.log);
  c "cllog.wire_bytes" (fun () -> Cl_log.wire_bytes t.log);
  c "cllog.amp_bytes" (fun () -> Cl_log.overhead_bytes t.log);
  c "cllog.doorbell_batches" (fun () -> Cl_log.doorbell_batches t.log);
  c "cllog.doorbell_wqes" (fun () -> Cl_log.doorbell_wqes t.log);
  g "cllog.doorbell_batch_peak" (fun () -> Cl_log.doorbell_batch_peak t.log);
  List.iter
    (fun phase ->
      c ~labels:[ ("phase", phase) ] "cllog.phase_ns" (fun () ->
          match List.assoc_opt phase (Cl_log.breakdown_ns t.log) with
          | Some ns -> ns
          | None -> 0))
    [ "bitmap"; "copy"; "rdma"; "ack" ];
  (* RDMA: per-QP accounting plus the shared NIC port *)
  let qps =
    [ ("fetch", Some t.fetch_qp); ("evict", Some t.evict_qp);
      ("prefetch", t.prefetch_qp) ]
  in
  List.iter
    (fun (name, qp) ->
      match qp with
      | None -> ()
      | Some qp ->
          let labels = [ ("qp", name) ] in
          c ~labels "qp.wire_bytes" (fun () -> Qp.wire_bytes qp);
          c ~labels "qp.payload_bytes" (fun () -> Qp.payload_bytes qp);
          c ~labels "qp.posts" (fun () -> Qp.posts qp);
          c ~labels "qp.verbs" (fun () -> Qp.verbs qp);
          c ~labels "qp.signaled" (fun () -> Qp.signaled qp);
          c ~labels "qp.completed" (fun () -> Qp.completed qp);
          c ~labels "qp.window_stalls" (fun () -> Qp.window_stalls qp);
          c ~labels "qp.window_stall_ns" (fun () -> Qp.window_stall_ns qp);
          c ~labels "qp.retransmits" (fun () -> Qp.retransmits qp);
          c ~labels "qp.fault_delay_ns" (fun () -> Qp.fault_delay_ns qp);
          c ~labels "qp.arb_delay_ns" (fun () -> Qp.arb_delay_ns qp);
          g ~labels "qp.outstanding_peak" (fun () -> Qp.outstanding_peak qp);
          g ~labels "qp.in_flight" (fun () -> Qp.in_flight qp))
    qps;
  c "nic.ops" (fun () -> Nic.ops t.nic);
  c "nic.busy_ns" (fun () -> Nic.busy_ns t.nic);
  c "nic.stall_ns" (fun () -> Nic.stall_ns t.nic);
  c "nic.wire_bytes" (fun () ->
      List.fold_left
        (fun acc (_, qp) ->
          match qp with None -> acc | Some qp -> acc + Qp.wire_bytes qp)
        0 qps);
  (* Resource manager / control plane *)
  g "rm.slabs" (fun () -> List.length (Resource_manager.slabs t.rm));
  c "rm.controller_round_trips" (fun () ->
      Resource_manager.controller_round_trips t.rm);
  c "rpc.calls" (fun () -> Rpc.calls t.rpc);
  c "rpc.timeouts" (fun () -> Rpc.timeouts t.rpc);
  c "rpc.retries" (fun () -> Rpc.retries t.rpc);
  (* Fault injection, failover and recovery (§4.5) *)
  c "faults.injected" (fun () ->
      match t.injector with Some inj -> Injector.injected inj | None -> 0);
  List.iter
    (fun category ->
      c ("faults." ^ category) (fun () ->
          match t.injector with
          | Some inj ->
              Option.value ~default:0 (List.assoc_opt category (Injector.counters inj))
          | None -> 0))
    [
      "node_crashes"; "link_flaps"; "rpc_timeouts"; "wqe_drops"; "wqe_delays";
      "bit_flips"; "torn_writes"; "stale_reads"; "dup_delivers"; "partitions";
    ];
  (* Membership, fencing, partitions, interruptible recovery (PR 9) *)
  let mem f = match t.membership with Some m -> f m | None -> 0 in
  c "membership.heartbeats" (fun () -> mem Membership.heartbeats);
  c "membership.suspicions" (fun () -> mem Membership.suspicions);
  c "membership.suspicions_cleared" (fun () -> mem Membership.suspicions_cleared);
  c "membership.declared_dead" (fun () -> mem Membership.declared_dead);
  c "membership.false_positives" (fun () -> mem Membership.false_positives);
  (match t.membership with
  | Some m ->
      Registry.histogram_ref reg "membership.detect_latency_ns"
        (Membership.detect_latency m)
  | None -> ());
  g "fencing.epoch" (fun () -> Rack_controller.fencing_epoch t.controller);
  c "fencing.rejects" (fun () -> fencing_rejects t);
  c "fencing.post_fence_writes" (fun () -> post_fence_writes t);
  c "partition.started" (fun () -> t.partitions_started);
  c "partition.deferred" (fun () -> t.deferred_deliveries);
  c "partition.flushed" (fun () -> t.deferred_flushed);
  g "partition.active" (fun () ->
      let now = max (Clock.now t.app_clock) (Clock.now t.bg_clock) in
      Hashtbl.fold
        (fun _ heal acc -> if now < heal then acc + 1 else acc)
        t.partition_until 0);
  c "recovery.steps" (fun () -> Recovery.steps t.recovery);
  c "recovery.tasks" (fun () -> Recovery.enqueued t.recovery);
  c "recovery.tasks_completed" (fun () -> Recovery.completed t.recovery);
  c "recovery.tasks_cancelled" (fun () -> Recovery.cancelled t.recovery);
  c "cllog.lost_writes" (fun () -> Cl_log.lost_deliveries t.log);
  c "cllog.lost_lines" (fun () -> Cl_log.lost_lines t.log);
  Registry.histogram_ref reg "failover.latency_ns" t.failover_latency;
  Registry.histogram_ref reg "recovery.latency_ns" t.recovery_latency;
  c "recovery.bytes" (fun () -> t.recovery_bytes);
  c "recovery.heap_pages" (fun () -> t.heap_pages_restored);
  c "recovery.heap_pages_lost" (fun () -> t.heap_pages_lost);
  (* End-to-end integrity: detection, repair, sequencing, scrub (PR 4) *)
  let ist = t.integrity in
  c "integrity.detected" (fun () ->
      ist.flips_found + ist.crc_rejected_lines + ist.seq_duplicates
      + ist.seq_gaps + ist.seq_stale + ist.stale_reads_detected);
  c "integrity.repaired" (fun () -> ist.repaired_lines);
  c "integrity.unrepairable" (fun () -> ist.unrepairable_lines);
  c "integrity.repair_bytes" (fun () -> ist.repair_bytes);
  c "integrity.healed_overwrite" (fun () -> ist.flips_healed);
  c "integrity.crc_rejects" (fun () -> ist.crc_rejected_lines);
  c "integrity.torn_events" (fun () -> ist.torn_events);
  c "integrity.flips_armed" (fun () -> ist.flips_armed);
  c "integrity.flips_found" (fun () -> ist.flips_found);
  c "integrity.stale_reads" (fun () -> ist.stale_reads_detected);
  c "seq.duplicates" (fun () -> ist.seq_duplicates);
  c "seq.gaps" (fun () -> ist.seq_gaps);
  c "seq.stale_epochs" (fun () -> ist.seq_stale);
  g "integrity.quarantined" (fun () -> Hashtbl.length ist.quarantine);
  Registry.histogram_ref reg "integrity.detect_latency_ns" ist.detect_latency;
  c "scrub.pages" (fun () ->
      match t.scrubber with Some s -> Scrubber.pages_scrubbed s | None -> 0);
  c "scrub.repairs" (fun () ->
      match t.scrubber with Some s -> Scrubber.repairs s | None -> 0);
  c "scrub.sweeps" (fun () ->
      match t.scrubber with Some s -> Scrubber.sweeps s | None -> 0);
  match t.replication with
  | Some r ->
      c "replication.lines" (fun () -> Replication.lines_replicated r);
      c "replication.failovers" (fun () -> Replication.failovers r);
      g "replication.divergent" (fun () ->
          Replication.divergent_mirrors r ~controller:t.controller)
  | None -> ()

(* Debug invariant ([config.check_replicas]): fence the eviction QP —
   firing any in-flight (possibly retransmission-delayed) mirror writes —
   then assert that no live mirror diverges from its primary.  Data staged
   in the CL log but not yet flushed is absent from primary and mirrors
   alike, so it cannot produce a false positive. *)
let check_replicas_now t =
  match t.replication with
  | None -> ()
  | Some r ->
      Qp.wait_idle t.evict_qp;
      let divergent = Replication.divergent_mirrors r ~controller:t.controller in
      if divergent > 0 then
        failwith
          (Printf.sprintf
             "Runtime: replica divergence after eviction: %d mirror(s) differ \
              from their primary"
             divergent)

let app_ns t = Clock.now t.app_clock
let bg_ns t = Clock.now t.bg_clock
let elapsed_ns t = max (app_ns t) (bg_ns t)

let note_degraded t reason =
  if t.degraded_reason = None then t.degraded_reason <- Some reason

(* ------------------------------------------------------------------ *)
(* Integrity: delivery-report accounting and scrub-and-repair (PR 4) *)

(* Quarantined line addresses of copy [tid] within [raddr, raddr+len). *)
let quarantined_lines t ~tid ~raddr ~len =
  Hashtbl.fold
    (fun (id, l) () acc ->
      if id = tid && l >= raddr && l < raddr + len then l :: acc else acc)
    t.integrity.quarantine []

(* CL-log delivery landed on [target]: fold its classification into the
   detection counters and quarantine any wire-CRC-rejected (torn) lines
   so the scrubber repairs them from a clean copy instead of the store
   serving stale data indefinitely. *)
let on_delivery_report t ~node:_ ~target (report : Memory_node.report) =
  let ist = t.integrity in
  let tid = Memory_node.id target in
  (match report.Memory_node.verdict with
  | Sequencer.Rx.Ok -> ()
  | Sequencer.Rx.Gap n -> ist.seq_gaps <- ist.seq_gaps + n
  | Sequencer.Rx.Duplicate -> ist.seq_duplicates <- ist.seq_duplicates + 1
  | Sequencer.Rx.Stale_epoch -> ist.seq_stale <- ist.seq_stale + 1);
  (match report.Memory_node.rejected with
  | [] -> ()
  | rejected ->
      ist.torn_events <- ist.torn_events + 1;
      ist.crc_rejected_lines <- ist.crc_rejected_lines + List.length rejected;
      List.iter (fun l -> Hashtbl.replace ist.quarantine (tid, l) ()) rejected;
      match t.tracer with
      | Some tr ->
          Tracer.instant tr "integrity.torn_rejected"
            ~args:[ ("node", tid); ("lines", List.length rejected) ]
      | None -> ());
  (* Lines that were corrupt at rest but have just been overwritten with
     verified data: the corruption healed before the scrubber saw it. *)
  List.iter
    (fun l ->
      if Hashtbl.mem ist.armed (tid, l) then begin
        Hashtbl.remove ist.armed (tid, l);
        ist.flips_healed <- ist.flips_healed + 1
      end)
    report.Memory_node.healed

(* An injected at-rest bit flip landed on [target]. [fresh] means the
   line verified clean beforehand, i.e. a new detectable corruption was
   armed; re-flipping a bit of an already-corrupt line can also cancel
   the corruption, which must disarm the registry to keep the
   armed = found + healed invariant exact. *)
let on_flip_armed t ~target ~addr ~fresh =
  let ist = t.integrity in
  let key = (Memory_node.id target, addr) in
  if fresh then begin
    ist.flips_armed <- ist.flips_armed + 1;
    Hashtbl.replace ist.armed key (Clock.now t.bg_clock)
  end
  else if
    Hashtbl.mem ist.armed key
    && Memory_node.verify_range target ~addr ~len:Units.cache_line = []
  then begin
    (* Same-bit double flip restored the original bytes. *)
    Hashtbl.remove ist.armed key;
    ist.flips_armed <- ist.flips_armed - 1
  end

(* Verify one remote page across every live copy and repair each corrupt
   or quarantined line from a copy whose line is clean.  Corruption with
   no clean source anywhere is declared unrepairable: counted, the page
   recorded as lost, and the run degraded. *)
let verify_and_repair_page t ~vpage =
  let ist = t.integrity in
  let page = Units.page_size in
  match Resource_manager.translate t.rm ~vaddr:(vpage * page) with
  | None -> Scrubber.Clean
  | Some (node, raddr) ->
      let copies =
        match t.replication with
        | Some r -> Replication.live_copies r ~controller:t.controller ~node
        | None -> (
            match Rack_controller.node t.controller ~id:node with
            | p when Memory_node.alive p -> [ p ]
            | _ -> []
            | exception Invalid_argument _ -> [])
      in
      if copies = [] then Scrubber.Clean
      else begin
        let now = elapsed_ns t in
        let infos =
          List.map
            (fun copy ->
              let tid = Memory_node.id copy in
              let at_rest = Memory_node.verify_range copy ~addr:raddr ~len:page in
              let bad =
                List.sort_uniq compare
                  (at_rest @ quarantined_lines t ~tid ~raddr ~len:page)
              in
              (copy, tid, at_rest, bad))
            copies
        in
        (* Detection accounting: every at-rest mismatch found here is a
           bit flip surfacing; stamp its detection latency if armed. *)
        List.iter
          (fun (_, tid, at_rest, _) ->
            List.iter
              (fun l ->
                ist.flips_found <- ist.flips_found + 1;
                match Hashtbl.find_opt ist.armed (tid, l) with
                | Some t0 ->
                    Histogram.add ist.detect_latency (max 0 (now - t0));
                    Hashtbl.remove ist.armed (tid, l)
                | None -> ())
              at_rest)
          infos;
        let repaired = ref 0 and unrepairable = ref 0 in
        List.iter
          (fun (copy, tid, _, bad) ->
            List.iter
              (fun l ->
                (match
                   List.find_opt
                     (fun (src, _, _, src_bad) ->
                       src != copy
                       && Memory_node.alive src
                       && not (List.mem l src_bad))
                     infos
                 with
                | Some (src, _, _, _) ->
                    (* Copy the clean line over; [write] records a fresh
                       CRC, so the repair is itself verifiable. *)
                    let data = Memory_node.peek src ~addr:l ~len:Units.cache_line in
                    (try
                       Memory_node.write copy ~addr:l ~data;
                       incr repaired;
                       ist.repaired_lines <- ist.repaired_lines + 1;
                       ist.repair_bytes <- ist.repair_bytes + Units.cache_line;
                       Clock.advance t.bg_clock
                         (Kona_rdma.Cost.memcpy_ns t.config.rdma
                            ~bytes:Units.cache_line)
                     with Memory_node.Crashed _ | Memory_node.Fenced _ -> ())
                | None ->
                    incr unrepairable;
                    ist.unrepairable_lines <- ist.unrepairable_lines + 1;
                    Hashtbl.replace ist.unrepairable_pages vpage ();
                    note_degraded t
                      (Printf.sprintf
                         "corrupt line %#x on node %d has no clean copy to \
                          repair from"
                         l tid));
                Hashtbl.remove ist.quarantine (tid, l))
              bad)
          infos;
        if !unrepairable > 0 then Scrubber.Unrepairable !unrepairable
        else if !repaired > 0 then Scrubber.Repaired !repaired
        else Scrubber.Clean
      end

(* ------------------------------------------------------------------ *)
(* Partitions, membership and interruptible recovery (PR 9).           *)

let partitioned t ~id ~at =
  match Hashtbl.find_opt t.partition_until id with
  | Some heal -> at < heal
  | None -> false

let start_partition t ~dur_ns ~ids =
  let now = elapsed_ns t in
  t.partitions_started <- t.partitions_started + 1;
  (match t.tracer with
  | Some tr ->
      Tracer.instant tr "faults.partition"
        ~args:[ ("dur_ns", dur_ns); ("nodes", List.length ids) ]
  | None -> ());
  List.iter
    (fun id ->
      let heal = now + dur_ns in
      let cur = Option.value (Hashtbl.find_opt t.partition_until id) ~default:0 in
      Hashtbl.replace t.partition_until id (max cur heal))
    ids

(* Replay deferred deliveries whose partition has healed, in defer order
   (List.partition is stable, and the deferred list is appended FIFO). *)
let flush_healed_deferred t ~now =
  match t.deferred with
  | [] -> ()
  | _ ->
      let due, later = List.partition (fun (heal, _) -> heal <= now) t.deferred in
      t.deferred <- later;
      List.iter
        (fun (_, fire) ->
          t.deferred_flushed <- t.deferred_flushed + 1;
          fire ())
        due

(* End-of-run msync: every partition heals eventually, so [drain] lands
   all deferred deliveries regardless of their heal time — fenced targets
   reject theirs as stale. *)
let flush_deferred_all t =
  let all = t.deferred in
  t.deferred <- [];
  List.iter
    (fun (_, fire) ->
      t.deferred_flushed <- t.deferred_flushed + 1;
      fire ())
    all

(* Restore the replication degree as a resumable task: one 1 MiB chunk
   posted per [Recovery.step].  The source is re-read from the controller
   every step, so a second failover mid-clone switches source instead of
   raising; a dead source scraps the half-cloned mirror (an incomplete
   copy must never become promotable) and completes — the next failover
   re-plans from whichever full mirror survives. *)
let enqueue_re_replication t ~replication ~logical =
  let chunk = 1 lsl 20 in
  let state = ref `Init in
  ignore
    (Recovery.enqueue t.recovery
       ~name:(Printf.sprintf "re-replicate:%d" logical)
       (fun ~now:_ ->
         let source () =
           match Rack_controller.node t.controller ~id:logical with
           | primary when Memory_node.alive primary -> Some primary
           | _ -> None
           | exception Invalid_argument _ -> None
         in
         match !state with
         | `Init -> (
             match source () with
             | None -> `Done (* nothing live to clone from; re-planned later *)
             | Some primary ->
                 let used = Memory_node.used primary in
                 let mirror =
                   Memory_node.create
                     ~id:(Replication.fresh_replica_id replication)
                     ~capacity:(Memory_node.capacity primary)
                 in
                 Memory_node.adopt_reservations mirror ~brk:used;
                 Replication.add_mirror replication ~node:logical mirror;
                 let t0 = Clock.now t.bg_clock in
                 if used = 0 then begin
                   Histogram.add t.recovery_latency 0;
                   `Done
                 end
                 else begin
                   state := `Copy (mirror, used, ref 0, t0);
                   `Again
                 end)
         | `Copy (mirror, used, next, t0) -> (
             match source () with
             | None ->
                 Replication.remove_mirror replication ~node:logical
                   ~id:(Memory_node.id mirror);
                 `Done
             | Some primary ->
                 let off = !next * chunk in
                 let len = min chunk (used - off) in
                 let nchunks = (used + chunk - 1) / chunk in
                 let last = !next = nchunks - 1 in
                 incr next;
                 Qp.post t.evict_qp
                   [
                     Qp.wqe ~signaled:last
                       ~deliver:(fun () ->
                         (try
                            Memory_node.write mirror ~addr:off
                              ~data:(Memory_node.peek primary ~addr:off ~len);
                            t.recovery_bytes <- t.recovery_bytes + len
                          with
                         | Memory_node.Crashed _ | Memory_node.Fenced _ -> ());
                         if last then begin
                           Histogram.add t.recovery_latency
                             (Clock.now t.bg_clock - t0);
                           match t.tracer with
                           | Some tr ->
                               Tracer.instant tr
                                 ~args:[ ("node", logical); ("bytes", used) ]
                                 "faults.re_replicated"
                           | None -> ()
                         end)
                       Qp.Write ~len;
                   ];
                 if last then `Done else `Again)))

(* Membership declared the store with physical id [phys] dead: run the
   failover control exchange with the rack controller, fence the
   displaced store at a fresh rack-global epoch, broadcast the epoch,
   and queue re-replication.  One bounded attempt per recovery step —
   an unreachable controller retries next step instead of burying the
   engine in a synchronous retry loop. *)
let run_failover_attempt t ~logical ~phys =
  let emit name args =
    match t.tracer with Some tr -> Tracer.instant tr ~args name | None -> ()
  in
  match t.replication with
  | None ->
      note_degraded t
        (Printf.sprintf
           "memory node %d declared dead with no replicas configured" logical);
      `Done
  | Some r -> (
      let t0 = Clock.now t.app_clock in
      match
        Rpc.call t.rpc ~request_bytes:64 ~response_bytes:64
          (fun () -> Replication.failover r ~controller:t.controller ~node:logical)
          ()
      with
      | exception (Rpc.Timeout_exhausted _ | Qp.Retry_exhausted _) -> `Retry
      | None ->
          Histogram.add t.failover_latency (Clock.now t.app_clock - t0);
          note_degraded t
            (Printf.sprintf
               "memory node %d declared dead with no live mirror to promote"
               logical);
          `Done
      | Some promoted ->
          Histogram.add t.failover_latency (Clock.now t.app_clock - t0);
          emit "faults.failover"
            [ ("node", logical); ("promoted", Memory_node.id promoted) ];
          (* Fence the displaced store: it may be alive behind a
             partition (false positive), and its epoch comparison is what
             rejects the split-brain writes when the partition heals. *)
          let epoch = Rack_controller.bump_fencing_epoch t.controller in
          (match Rack_controller.find_physical t.controller ~id:phys with
          | Some displaced -> Memory_node.set_fence displaced ~epoch
          | None -> ());
          Cl_log.advance_epoch t.log ~to_:epoch;
          !(t.on_fence) ~epoch;
          (* The promoted store owes heartbeats now. *)
          (match t.membership with
          | Some m ->
              Membership.track m ~id:(Memory_node.id promoted) ~now:(elapsed_ns t)
          | None -> ());
          enqueue_re_replication t ~replication:r ~logical;
          `Done)

let schedule_failover t ~phys =
  match Rack_controller.logical_backed_by t.controller ~physical:phys with
  | None -> () (* a former backing or mirror: already displaced *)
  | Some logical ->
      let name = Printf.sprintf "failover:%d" logical in
      if not (List.mem name (Recovery.pending t.recovery)) then begin
        let attempts = ref 0 in
        ignore
          (Recovery.enqueue t.recovery ~name (fun ~now:_ ->
               match run_failover_attempt t ~logical ~phys with
               | `Done -> `Done
               | `Retry ->
                   incr attempts;
                   if !attempts >= 3 then begin
                     note_degraded t
                       (Printf.sprintf
                          "failover of memory node %d failed: rack controller \
                           unreachable after %d recovery steps"
                          logical !attempts);
                     `Done
                   end
                   else `Again))
      end

let create ?(config = default_config) ?nic ?hub ?arbitrate ?replication
    ~controller ~read_local () =
  let app_clock = Clock.create () in
  let bg_clock = Clock.create () in
  let tracer = Option.map Hub.tracer hub in
  (match tracer with
  | Some tr ->
      Tracer.set_clock tr (fun () -> (Clock.now app_clock, Clock.now bg_clock))
  | None -> ());
  let nic = match nic with Some n -> n | None -> Kona_rdma.Nic.create () in
  let injector =
    match config.faults with
    | [] when not config.arm_injector -> None
    | plan -> Some (Injector.create ~seed:config.fault_seed ~plan)
  in
  (* Link flaps become NIC outage windows up front; per-WQE and per-RPC
     decisions are drawn through the hooks below as traffic flows. *)
  (match injector with
  | Some inj ->
      List.iter
        (fun (at, dur) -> Nic.inject_outage nic ~at ~duration:dur)
        (Injector.link_flaps inj)
  | None -> ());
  let inject = Option.map Injector.qp_inject injector in
  (* Demand fetches stay signal-every-WQE (they are synchronous); the
     background paths take both the send-queue window and selective
     signaling. *)
  let retry = Qp.retry_of config.backoff in
  let fetch_qp =
    Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth ?inject
      ?arbitrate ~retry ~clock:app_clock ()
  in
  let evict_qp =
    Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth ?inject
      ?arbitrate ~retry ~signal_interval:config.signal_interval ~clock:bg_clock ()
  in
  let rpc =
    (* The control path's SENDs ride the same loss/delay hook as the
       data QPs, so wqe-drop plans can kill a control exchange outright
       (surfaced as the underlying transport error, not a timeout). *)
    Kona_rdma.Rpc.create ~cost:config.rdma ~backoff:config.backoff
      ?fail:(Option.map Injector.rpc_timeout injector)
      ?inject ~clock:app_clock ~nic ()
  in
  let rm = Resource_manager.create ~rpc ?tenant:config.tenant ~controller () in
  let fmem =
    Fmem.create ~assoc:config.fmem_assoc ~policy:config.fmem_policy
      ~pages:config.fmem_pages ()
  in
  let directory = Directory.create () in
  let replication =
    (* A shared instance (multi-tenant rack) takes precedence: mirrors must
       hold every tenant's writes for a failover to be whole-node. *)
    match replication with
    | Some _ as shared -> shared
    | None ->
        if config.replicas > 0 then
          Some (Replication.create ~degree:config.replicas ~controller)
        else None
  in
  let extra_targets ~node =
    match replication with Some r -> Replication.targets r ~node | None -> []
  in
  let log =
    Cl_log.create ~capacity:config.log_capacity ~stream_base:config.stream_base
      ~extra_targets ?tracer ~qp:evict_qp ~cost:config.rdma
      ~resolve:(fun ~node -> Rack_controller.node controller ~id:node)
      ()
  in
  (* The hierarchy is created first without hooks, then hooks close over the
     record; OCaml needs the recursive knot tied by a forward reference. *)
  let evictor_ref = ref None in
  let caching_ref = ref None in
  let tracker_ref = ref None in
  let hierarchy =
    Hierarchy.create ~config:config.cache_config
      ~on_fill:(fun ~addr ~write ->
        Directory.on_fill directory ~line:(Units.line_of_addr addr) ~write;
        match !caching_ref with Some c -> Caching_handler.on_fill c ~addr | None -> ())
      ~on_writeback:(fun ~addr ->
        Directory.on_writeback directory ~line:(Units.line_of_addr addr);
        match !tracker_ref with Some d -> Dirty_tracker.on_writeback d ~addr | None -> ())
      ()
  in
  let snoop ~page =
    let dirty = Hierarchy.flush_page hierarchy ~page in
    List.iter
      (fun line_addr ->
        ignore (Directory.snoop directory ~line:(Units.line_of_addr line_addr)
                 : [ `Clean | `Dirty ]))
      dirty;
    dirty
  in
  let evictor = Eviction_handler.create ?tracer ~log ~rm ~read_local ~snoop () in
  let tracker =
    Dirty_tracker.create ~fmem
      ~on_orphan:(fun ~line_addr -> Eviction_handler.write_line_through evictor ~line_addr)
      ()
  in
  let prefetch_qp =
    if config.prefetch then
      Some
        (Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth ?inject
           ~retry ~signal_interval:config.signal_interval ~clock:bg_clock ())
    else None
  in
  (* The check_replicas invariant runs after each eviction batch; it needs
     the full runtime record, which does not exist yet at hook-wiring time.
     [on_evict] is the rack's page-departure observation point (shared-
     segment writers snoop remote readers from it). *)
  let post_evict_ref = ref (fun () -> ()) in
  let on_evict : (vpage:int -> dirty:bool -> unit) ref =
    ref (fun ~vpage:_ ~dirty:_ -> ())
  in
  let caching =
    Caching_handler.create ~cost:config.cost ~fetch_block:config.fetch_block
      ?mce_threshold_ns:config.mce_threshold_ns ?prefetch_qp ?tracer ~fmem ~rm ~fetch_qp
      ~on_victim:(fun ~vpage ~dirty ->
        let shipped = Eviction_handler.evict evictor ~vpage ~dirty in
        !on_evict ~vpage ~dirty:shipped;
        !post_evict_ref ())
      ()
  in
  evictor_ref := Some evictor;
  caching_ref := Some caching;
  tracker_ref := Some tracker;
  let t =
    {
      config;
      app_clock;
      bg_clock;
      controller;
      hierarchy;
      fmem;
      directory;
      rm;
      rpc;
      log;
      replication;
      injector;
      caching;
      tracker;
      evictor;
      nic;
      fetch_qp;
      evict_qp;
      prefetch_qp;
      hub;
      tracer;
      failover_latency = Histogram.create ();
      recovery_latency = Histogram.create ();
      integrity = create_integrity_state ();
      scrubber = None;
      membership = None;
      recovery = Recovery.create ();
      partition_until = Hashtbl.create 4;
      deferred = [];
      partitions_started = 0;
      deferred_deliveries = 0;
      deferred_flushed = 0;
      on_fence = ref (fun ~epoch:_ -> ());
      node_crashes = 0;
      recovery_bytes = 0;
      heap_pages_restored = 0;
      heap_pages_lost = 0;
      degraded_reason = None;
      accesses = 0;
      on_evict;
      invalidations_received = 0;
    }
  in
  if config.check_replicas then post_evict_ref := (fun () -> check_replicas_now t);
  (* Integrity wiring: every delivery's classification feeds detection
     accounting; corruption faults are decided per shipment. *)
  Cl_log.set_on_report log (fun ~node ~target report ->
      on_delivery_report t ~node ~target report);
  Cl_log.set_on_flip log (fun ~target ~addr ~fresh -> on_flip_armed t ~target ~addr ~fresh);
  (* Wired whenever an injector exists, not just when corruption is in
     the create-time plan: [delivery_inject] draws nothing while
     unarmed, and clauses can now be armed mid-run via [arm_fault]. *)
  (match injector with
  | Some inj ->
      Cl_log.set_inject log (fun ~targets -> Injector.delivery_inject inj ~targets)
  | None -> ());
  (* On-fetch verification: every synchronous demand fetch re-checks the
     remote page's checksums (and repairs on the spot), after the
     stale-read fault decides whether this fetch must burn a retry. *)
  if config.verify_checksums then
    Caching_handler.set_on_fetch_verify caching (fun ~vpage ->
        (match injector with
        | Some inj when Injector.stale_reads_armed inj && Injector.read_inject inj () ->
            t.integrity.stale_reads_detected <-
              t.integrity.stale_reads_detected + 1;
            (match tracer with
            | Some tr -> Tracer.instant tr "integrity.stale_read" ~args:[ ("vpage", vpage) ]
            | None -> ());
            (* The stale image fails verification; re-read the page. *)
            Qp.post fetch_qp [ Qp.wqe ~signaled:true Qp.Read ~len:Units.page_size ];
            Qp.wait_idle fetch_qp
        | Some _ | None -> ());
        (* The CRC pass over the fetched page is demand-path CPU work. *)
        Clock.advance app_clock
          (Kona_rdma.Cost.memcpy_ns config.rdma ~bytes:Units.page_size);
        ignore (verify_and_repair_page t ~vpage : Scrubber.outcome));
  (* Background scrubber: budgeted sweeps over the backed pages, driven
     off the virtual clock from [poll_faults]. *)
  (match config.scrub_interval_ns with
  | Some interval ->
      let scan () =
        let acc = ref [] in
        Resource_manager.iter_backed_pages t.rm (fun ~vpage ~node:_ ~remote_addr:_ ->
            acc := vpage :: !acc);
        Array.of_list (List.rev !acc)
      in
      let check ~page =
        (* Per-page verify cost: one CRC pass over the page, background. *)
        Clock.advance bg_clock
          (Kona_rdma.Cost.memcpy_ns config.rdma ~bytes:Units.page_size);
        verify_and_repair_page t ~vpage:page
      in
      t.scrubber <-
        Some (Scrubber.create ~interval_ns:interval ~budget:config.scrub_budget ~scan ~check)
  | None -> ());
  (* Partition gate: a delivery completing inside a partition window of
     its physical target is captured and deferred until heal time. *)
  Cl_log.set_gate log (fun ~node ~fire ->
      if partitioned t ~id:node ~at:(elapsed_ns t) then begin
        let heal = Hashtbl.find t.partition_until node in
        t.deferred_deliveries <- t.deferred_deliveries + 1;
        t.deferred <- t.deferred @ [ (heal, fire) ];
        true
      end
      else false);
  (* Lease-based membership: failover is triggered by lease expiry, not
     by the crash hook — a partitioned node and a crashed one look the
     same here, which is what makes false positives possible. *)
  (match config.heartbeat_ns with
  | None -> ()
  | Some heartbeat_ns ->
      let reachable ~id ~at =
        (match Rack_controller.find_physical controller ~id with
        | Some n -> Memory_node.alive n
        | None -> false)
        && not (partitioned t ~id ~at)
      in
      let m =
        Membership.create ~heartbeat_ns ~lease_ns:config.lease_ns ~reachable
          ~on_dead:(fun ~id ~at:_ -> schedule_failover t ~phys:id)
          ~charge:(fun ~ns -> Clock.advance bg_clock ns)
          ()
      in
      (* Initial backings carry their logical ids as physical ids. *)
      List.iter
        (fun id -> Membership.track m ~id ~now:0)
        (Rack_controller.logical_ids controller);
      t.membership <- Some m);
  (match hub with Some h -> register_metrics t (Hub.registry h) | None -> ());
  t

(* Restore the replication degree after a promotion (or a mirror loss):
   clone the current primary onto a fresh mirror in 1 MiB chunks over the
   eviction QP.  The copy is asynchronous background traffic — it completes
   as the background clock advances past each chunk — and the final chunk's
   delivery stamps the recovery-latency histogram.  Mirrors store data at
   primary offsets, so the clone is a straight prefix copy of the primary's
   reserved range. *)
let re_replicate t ~replication ~node =
  match Rack_controller.node t.controller ~id:node with
  | exception Invalid_argument _ -> ()
  | primary when not (Memory_node.alive primary) -> ()
  | primary ->
      let used = Memory_node.used primary in
      let mirror =
        Memory_node.create
          ~id:(Replication.fresh_replica_id replication)
          ~capacity:(Memory_node.capacity primary)
      in
      Memory_node.adopt_reservations mirror ~brk:used;
      Replication.add_mirror replication ~node mirror;
      let t0 = Clock.now t.bg_clock in
      if used = 0 then Histogram.add t.recovery_latency 0
      else begin
        let chunk = 1 lsl 20 in
        let nchunks = (used + chunk - 1) / chunk in
        let wqes =
          List.init nchunks (fun i ->
              let off = i * chunk in
              let len = min chunk (used - off) in
              let last = i = nchunks - 1 in
              Qp.wqe ~signaled:last
                ~deliver:(fun () ->
                  (* The source may crash again before the copy lands;
                     that abandons this clone (the next failover will
                     re-replicate from whichever primary survives). *)
                  (try
                     Memory_node.write mirror ~addr:off
                       ~data:(Memory_node.peek primary ~addr:off ~len);
                     t.recovery_bytes <- t.recovery_bytes + len
                   with Memory_node.Crashed _ -> ());
                  if last then begin
                    Histogram.add t.recovery_latency (Clock.now t.bg_clock - t0);
                    match t.tracer with
                    | Some tr ->
                        Tracer.instant tr
                          ~args:[ ("node", node); ("bytes", used) ]
                          "faults.re_replicated"
                    | None -> ()
                  end)
                Qp.Write ~len)
        in
        Qp.post t.evict_qp wqes
      end

(* Membership mode: a crash is only a fail-stop — failover waits for the
   lease to expire, exactly like a partition, because the detector cannot
   tell the two apart.  Mirror crashes still queue re-replication
   directly: mirrors hold no leases. *)
let handle_node_crash_leased t ~id =
  t.node_crashes <- t.node_crashes + 1;
  let emit name args =
    match t.tracer with Some tr -> Tracer.instant tr ~args name | None -> ()
  in
  match Rack_controller.find_physical t.controller ~id with
  | Some store ->
      Memory_node.crash store;
      emit "faults.node_crash" [ ("node", id) ]
  | None -> (
      match t.replication with
      | Some r -> (
          match Replication.crash_mirror r ~id with
          | Some primary_id ->
              emit "faults.mirror_crash" [ ("node", id); ("primary", primary_id) ];
              enqueue_re_replication t ~replication:r ~logical:primary_id
          | None ->
              note_degraded t
                (Printf.sprintf "fault plan crashed unknown memory node %d" id))
      | None ->
          note_degraded t
            (Printf.sprintf "fault plan crashed unknown memory node %d" id))

(* A scheduled node crash fired.  Without membership (legacy omniscient
   detection): fail-stop the target, then run the control-plane failover
   exchange with the rack controller synchronously — promote a live
   mirror (§4.5, failure mode 3) and start background re-replication.
   Without a live mirror the runtime degrades — the node's data is lost,
   and subsequent CL-log deliveries to it are counted, not raised. *)
let rec handle_node_crash t ~id =
  match t.membership with
  | Some _ -> handle_node_crash_leased t ~id
  | None -> handle_node_crash_legacy t ~id

and handle_node_crash_legacy t ~id =
  t.node_crashes <- t.node_crashes + 1;
  let note_degraded reason = note_degraded t reason in
  let emit name args =
    match t.tracer with Some tr -> Tracer.instant tr ~args name | None -> ()
  in
  match Rack_controller.node t.controller ~id with
  | primary -> (
      Memory_node.crash primary;
      emit "faults.node_crash" [ ("node", id) ];
      match t.replication with
      | None ->
          note_degraded
            (Printf.sprintf
               "memory node %d crashed with no replicas configured" id)
      | Some r -> (
          let t0 = Clock.now t.app_clock in
          match
            Rpc.call t.rpc ~request_bytes:64 ~response_bytes:64
              (fun () -> Replication.failover r ~controller:t.controller ~node:id)
              ()
          with
          | exception Rpc.Timeout_exhausted { attempts } ->
              note_degraded
                (Printf.sprintf
                   "failover of memory node %d failed: rack controller \
                    unreachable after %d attempts"
                   id attempts)
          | exception Qp.Retry_exhausted { attempts } ->
              (* The Rpc wrapper surfaced the transport's own death
                 instead of masking it as a timeout. *)
              note_degraded
                (Printf.sprintf
                   "failover of memory node %d failed: control-path send \
                    dead after %d transmission attempts"
                   id attempts)
          | promoted -> (
              Histogram.add t.failover_latency (Clock.now t.app_clock - t0);
              match promoted with
              | Some p ->
                  emit "faults.failover"
                    [ ("node", id); ("promoted", Memory_node.id p) ];
                  (* New configuration, new delivery epoch: stragglers
                     stamped before the failover are rejected as stale. *)
                  Cl_log.bump_epoch t.log;
                  re_replicate t ~replication:r ~node:id
              | None ->
                  note_degraded
                    (Printf.sprintf
                       "memory node %d crashed with no live mirror to promote"
                       id))))
  | exception Invalid_argument _ -> (
      (* Not a registered primary — the plan may target a mirror. *)
      match t.replication with
      | Some r -> (
          match Replication.crash_mirror r ~id with
          | Some primary_id ->
              emit "faults.mirror_crash"
                [ ("node", id); ("primary", primary_id) ];
              re_replicate t ~replication:r ~node:primary_id
          | None ->
              note_degraded
                (Printf.sprintf "fault plan crashed unknown memory node %d" id))
      | None ->
          note_degraded
            (Printf.sprintf "fault plan crashed unknown memory node %d" id))

(* Polled as the clocks advance (every access sink and drain): fire node
   crashes and partitions whose scheduled virtual time has been reached,
   replay deliveries whose partition healed, evaluate heartbeat leases,
   and advance the in-flight recovery task one bounded step.  O(1) when
   nothing is pending. *)
let poll_faults t =
  let now = elapsed_ns t in
  (match t.injector with
  | None -> ()
  | Some inj ->
      if Injector.crashes_pending inj > 0 then
        List.iter (fun id -> handle_node_crash t ~id) (Injector.due_node_crashes inj ~now);
      if Injector.partitions_pending inj > 0 then
        List.iter
          (fun (dur_ns, ids) -> start_partition t ~dur_ns ~ids)
          (Injector.due_partitions inj ~now));
  flush_healed_deferred t ~now;
  (match t.membership with Some m -> Membership.tick m ~now | None -> ());
  (match Recovery.step t.recovery ~now with
  | `Idle | `Stepped _ | `Finished _ -> ());
  (* The scrubber shares the poll: cheap when no sweep is due. *)
  match t.scrubber with
  | Some s -> Scrubber.tick s ~now:(elapsed_ns t)
  | None -> ()

let charge_level t level =
  let c = t.config.cost in
  let ns =
    match level with
    | 1 -> c.Cost_model.l1_ns
    | 2 -> c.Cost_model.l1_ns +. c.Cost_model.l2_ns
    | _ -> c.Cost_model.l1_ns +. c.Cost_model.l2_ns +. c.Cost_model.llc_ns
  in
  Clock.advance t.app_clock (int_of_float ns)

let sink t event =
  poll_faults t;
  t.accesses <- t.accesses + 1;
  let write = Access.is_write event in
  Access.iter_lines event (fun line ->
      let level = Hierarchy.access_line t.hierarchy ~addr:(line * Units.cache_line) ~write in
      charge_level t level)

let drain t =
  poll_faults t;
  (* Pages needing writeback: FMem residents plus any page holding dirty
     CPU lines (possible after an FMem eviction raced a cached write). *)
  let pages = Hashtbl.create 256 in
  Fmem.iter_resident t.fmem (fun ~vpage ~dirty:_ -> Hashtbl.replace pages vpage ());
  let note_dirty ~block_addr ~dirty =
    if dirty then Hashtbl.replace pages (Units.page_of_addr block_addr) ()
  in
  Cache.iter_resident (Hierarchy.l1 t.hierarchy) note_dirty;
  Cache.iter_resident (Hierarchy.l2 t.hierarchy) note_dirty;
  Cache.iter_resident (Hierarchy.llc t.hierarchy) note_dirty;
  Hashtbl.iter
    (fun vpage () ->
      let dirty =
        match Fmem.evict t.fmem ~vpage with
        | Some victim -> victim.Fmem.dirty_lines
        | None -> Bitmap.create Units.lines_per_page
      in
      let shipped = Eviction_handler.evict t.evictor ~vpage ~dirty in
      !(t.on_evict) ~vpage ~dirty:shipped)
    pages;
  Cl_log.flush t.log;
  (* Final membership evaluation, then drive interruptible recovery to
     completion: queued failovers fence their displaced stores before
     the deferred (partition-captured) deliveries below land on them. *)
  (match t.membership with Some m -> Membership.tick m ~now:(elapsed_ns t) | None -> ());
  let rec pump () =
    match Recovery.step t.recovery ~now:(elapsed_ns t) with
    | `Idle -> ()
    | `Stepped _ | `Finished _ -> pump ()
  in
  pump ();
  Qp.wait_idle t.evict_qp;
  (* Every partition heals by msync: land all deferred deliveries —
     fenced targets reject theirs as stale (the split-brain writes). *)
  flush_deferred_all t;
  (* Close the integrity loop before any end-of-run oracle looks at the
     rack: a forced full sweep verifies (and repairs) every backed page,
     including quarantined lines whose torn delivery was rejected. *)
  (match t.scrubber with Some s -> Scrubber.force_sweep s | None -> ());
  if t.config.check_replicas then check_replicas_now t

(* Compute-node crash recovery (§4.5, failure mode 1): the local cache and
   heap are gone but remote memory survives.  Flush the CL-log tail first —
   unacked dirty lines must land remotely before pages are read back — then
   rebuild every backed page over batched RDMA reads, handing each to
   [restore] (e.g. {!Kona_workloads.Heap.restore_page}).  Pages whose node
   is crashed and un-failed-over are lost and counted.  Returns
   [(restored, lost)] page counts for this call. *)
let recover_heap t ~restore =
  let t0 = elapsed_ns t in
  let restored0 = t.heap_pages_restored and lost0 = t.heap_pages_lost in
  Cl_log.flush t.log;
  let page = Units.page_size in
  let pending = ref [] in
  let flush_batch () =
    if !pending <> [] then begin
      Qp.post t.fetch_qp (List.rev !pending);
      pending := []
    end
  in
  Resource_manager.iter_backed_pages t.rm (fun ~vpage ~node ~remote_addr ->
      match Rack_controller.node t.controller ~id:node with
      | remote when Memory_node.alive remote ->
          let wqe =
            Qp.wqe ~signaled:true
              ~deliver:(fun () ->
                match Memory_node.peek remote ~addr:remote_addr ~len:page with
                | data ->
                    restore ~addr:(vpage * page) ~data;
                    t.heap_pages_restored <- t.heap_pages_restored + 1;
                    t.recovery_bytes <- t.recovery_bytes + page
                | exception Memory_node.Crashed _ ->
                    t.heap_pages_lost <- t.heap_pages_lost + 1)
              Qp.Read ~len:page
          in
          pending := wqe :: !pending;
          if List.length !pending >= 64 then flush_batch ()
      | _ -> t.heap_pages_lost <- t.heap_pages_lost + 1
      | exception Invalid_argument _ ->
          t.heap_pages_lost <- t.heap_pages_lost + 1);
  flush_batch ();
  Qp.wait_idle t.fetch_qp;
  let dur = elapsed_ns t - t0 in
  Histogram.add t.recovery_latency dur;
  let restored = t.heap_pages_restored - restored0
  and lost = t.heap_pages_lost - lost0 in
  (match t.tracer with
  | Some tr ->
      Tracer.span tr ~dur_ns:dur
        ~args:[ ("restored", restored); ("lost", lost) ]
        "runtime.recover_heap"
  | None -> ());
  (restored, lost)

let degraded t =
  match t.degraded_reason with
  | Some _ as r -> r
  | None -> (
      match t.replication with
      | Some _ -> None (* lost primary deliveries are covered by mirrors *)
      | None ->
          let lost = Cl_log.lost_deliveries t.log in
          if lost > 0 then
            Some
              (Printf.sprintf
                 "%d cache-line log write(s) (%d lines) lost to crashed \
                  memory nodes"
                 lost (Cl_log.lost_lines t.log))
          else None)

let stats t =
  let h = t.hierarchy in
  let level name cache =
    let s = Cache.stats cache in
    [
      (name ^ ".accesses", s.Cache.reads + s.Cache.writes);
      (name ^ ".misses", s.Cache.read_misses + s.Cache.write_misses);
    ]
  in
  level "l1" (Hierarchy.l1 h)
  @ level "l2" (Hierarchy.l2 h)
  @ level "llc" (Hierarchy.llc h)
  @ [
      ("accesses", t.accesses);
      ("fmem.hits", Caching_handler.fmem_hits t.caching);
      ("fmem.misses", Caching_handler.fmem_misses t.caching);
      ("fetch.pages", Caching_handler.pages_fetched t.caching);
      ("fetch.bytes", Caching_handler.bytes_fetched t.caching);
      ("mce.raised", Caching_handler.mce_raised t.caching);
      ("prefetch.issued", Caching_handler.prefetches_issued t.caching);
      ("prefetch.useful", Caching_handler.prefetches_useful t.caching);
      ( "fetch.p50_ns",
        (let h = Caching_handler.fetch_latency t.caching in
         if Kona_util.Histogram.count h = 0 then 0
         else Kona_util.Histogram.percentile h 50.) );
      ( "fetch.p99_ns",
        (let h = Caching_handler.fetch_latency t.caching in
         if Kona_util.Histogram.count h = 0 then 0
         else Kona_util.Histogram.percentile h 99.) );
      ("tracker.lines", Dirty_tracker.lines_tracked t.tracker);
      ("tracker.orphans", Dirty_tracker.orphans t.tracker);
      ("evict.pages", Eviction_handler.pages_evicted t.evictor);
      ("evict.clean_pages", Eviction_handler.clean_pages t.evictor);
      ("evict.lines", Eviction_handler.lines_evicted t.evictor);
      ("evict.snooped", Eviction_handler.snooped_dirty_lines t.evictor);
      ("log.lines", Cl_log.lines_logged t.log);
      ("log.flushes", Cl_log.flushes t.log);
      ("log.doorbell_batches", Cl_log.doorbell_batches t.log);
      ("evict.window_stalls", Qp.window_stalls t.evict_qp);
      ("rdma.fetch_wire_bytes", Qp.wire_bytes t.fetch_qp);
      ("directory.fills", Directory.fills t.directory);
      ("directory.writebacks", Directory.writebacks t.directory);
      ("directory.snoops", Directory.snoops t.directory);
      ("slabs", List.length (Resource_manager.slabs t.rm));
      ("controller.round_trips", Resource_manager.controller_round_trips t.rm);
      ( "faults.injected",
        match t.injector with Some i -> Injector.injected i | None -> 0 );
      ("faults.node_crashes", t.node_crashes);
      ( "failover.count",
        match t.replication with Some r -> Replication.failovers r | None -> 0 );
      ("log.lost_writes", Cl_log.lost_deliveries t.log);
      ("faults.partitions", t.partitions_started);
      ( "membership.false_positives",
        match t.membership with
        | Some m -> Membership.false_positives m
        | None -> 0 );
      ("fencing.rejects", fencing_rejects t);
    ]

(* Canonical ordered integrity counters — the soak harness compares two
   runs of the same (plan, seed) for bit-for-bit equality over this list,
   so the order and names are part of the reproducibility contract. *)
let integrity_counters t =
  let ist = t.integrity in
  let scrub f = match t.scrubber with Some s -> f s | None -> 0 in
  let mem f = match t.membership with Some m -> f m | None -> 0 in
  [
    ("integrity.flips_armed", ist.flips_armed);
    ("integrity.flips_found", ist.flips_found);
    ("integrity.healed_overwrite", ist.flips_healed);
    ("integrity.torn_events", ist.torn_events);
    ("integrity.crc_rejects", ist.crc_rejected_lines);
    ("seq.duplicates", ist.seq_duplicates);
    ("seq.gaps", ist.seq_gaps);
    ("seq.stale_epochs", ist.seq_stale);
    ("integrity.stale_reads", ist.stale_reads_detected);
    ("integrity.repaired", ist.repaired_lines);
    ("integrity.repair_bytes", ist.repair_bytes);
    ("integrity.unrepairable", ist.unrepairable_lines);
    ("integrity.quarantined", Hashtbl.length ist.quarantine);
    ("scrub.pages", scrub Scrubber.pages_scrubbed);
    ("scrub.repairs", scrub Scrubber.repairs);
    ("scrub.sweeps", scrub Scrubber.sweeps);
    (* PR 9: partitions, membership, fencing, interruptible recovery —
       appended so the pre-existing prefix order is untouched. *)
    ("partition.started", t.partitions_started);
    ("partition.deferred", t.deferred_deliveries);
    ("partition.flushed", t.deferred_flushed);
    ("membership.heartbeats", mem Membership.heartbeats);
    ("membership.suspicions", mem Membership.suspicions);
    ("membership.suspicions_cleared", mem Membership.suspicions_cleared);
    ("membership.declared_dead", mem Membership.declared_dead);
    ("membership.false_positives", mem Membership.false_positives);
    ("fencing.epoch", Rack_controller.fencing_epoch t.controller);
    ("fencing.rejects", fencing_rejects t);
    ("fencing.post_fence_writes", post_fence_writes t);
    ("recovery.steps", Recovery.steps t.recovery);
    ("recovery.tasks_completed", Recovery.completed t.recovery);
    ("recovery.tasks_cancelled", Recovery.cancelled t.recovery);
  ]

let unrepairable_pages t =
  Hashtbl.fold (fun vpage () acc -> vpage :: acc) t.integrity.unrepairable_pages
    []
  |> List.sort compare

let detect_latency t = t.integrity.detect_latency

(* ------------------------------------------------------------------ *)
(* Rack hooks: tenant-level observation and cross-tenant coherence.    *)

let set_on_evict t f = t.on_evict := f
let set_on_fetch t f = Caching_handler.set_on_fetch t.caching f

(* A remote writer's eviction recalled a page this tenant had fetched
   (shared read-mostly segment): drop the local copy so the next access
   re-fetches fresh bytes.  Routed through the normal eviction path — the
   snoop flushes any CPU-cached lines of the page — then charged one
   FMem invalidation access. *)
let invalidate_page t ~vpage =
  t.invalidations_received <- t.invalidations_received + 1;
  let dirty =
    match Fmem.evict t.fmem ~vpage with
    | Some victim -> victim.Fmem.dirty_lines
    | None -> Bitmap.create Units.lines_per_page
  in
  let (_ : bool) = Eviction_handler.evict t.evictor ~vpage ~dirty in
  Clock.advance t.bg_clock (int_of_float t.config.cost.Cost_model.fmem_ns)

let invalidations_received t = t.invalidations_received

(* Multi-writer coherence: the rack installs the home-side judgment of
   which delivered writeback lines are stale (ownership revoked, newer
   value already home) — see {!Cl_log.set_stale_filter}. *)
let set_writeback_filter t f = Cl_log.set_stale_filter t.log f
let stale_writebacks t = Cl_log.stale_lines t.log

(* Page migration support.  Staged CL-log entries resolve (node, raddr)
   at append time, so the migrator flushes before any remap; the remap
   itself is just a translation update — the caller has already copied
   the bytes (and replicas) to the new home. *)
let flush_log t = Cl_log.flush t.log

let remap_page t ~vpage ~node ~remote_addr =
  Resource_manager.remap_page t.rm ~vpage ~node ~remote_addr

(* Post one background control message (e.g. a shared-segment invalidation)
   to [node]: rides the eviction QP, so it pays wire time, contends at the
   node's ingress scheduler, and [deliver] fires when the background clock
   reaches its completion. *)
let post_bg_message t ~node ~len ~deliver =
  Qp.post t.evict_qp [ Qp.wqe ~signaled:true ~deliver ~node Qp.Write ~len ]

let replication t = t.replication
let injector t = t.injector

(* Scenario-engine adapters: immediate fail-stop crash, on-demand scrub
   sweep, and mid-run fault arming (the injector must exist — create the
   runtime with [arm_injector = true] or a non-empty plan). *)
let crash_node t ~id = handle_node_crash t ~id

let force_scrub t =
  match t.scrubber with Some s -> Scrubber.force_sweep s | None -> ()

let arm_fault t clause =
  match t.injector with
  | None -> invalid_arg "Runtime.arm_fault: runtime created without an injector"
  | Some inj ->
      (match clause with
      | Fault_spec.Link_flap { dur_ns; _ } ->
          (* The [at_ns] in the clause is relative spec text; a mid-run
             flap starts now on this runtime's NIC. *)
          Nic.inject_outage t.nic ~at:(elapsed_ns t) ~duration:dur_ns
      | _ -> ());
      Injector.arm inj clause
let controller t = t.controller
let node_crashes t = t.node_crashes
let failover_latency t = t.failover_latency
let recovery_latency t = t.recovery_latency

(* Membership / partition / recovery surface (PR 9). *)
let membership t = t.membership
let partition_active t ~id = partitioned t ~id ~at:(elapsed_ns t)
let partitions_started t = t.partitions_started
let deferred_pending t = List.length t.deferred
let recovery_pending t = Recovery.pending t.recovery
let recovery_idle t = Recovery.idle t.recovery
let recovery_counters t = Recovery.counters t.recovery
let step_recovery t = Recovery.step t.recovery ~now:(elapsed_ns t)
let set_on_fence t f = t.on_fence := f
let adopt_fencing_epoch t ~epoch = Cl_log.advance_epoch t.log ~to_:epoch

let track_node t ~id =
  match t.membership with
  | Some m -> Membership.track m ~id ~now:(elapsed_ns t)
  | None -> ()

let false_positives t =
  match t.membership with Some m -> Membership.false_positives m | None -> 0

let declared_dead t =
  match t.membership with Some m -> Membership.declared_dead m | None -> 0
let hub t = t.hub
let resource_manager t = t.rm
let fmem t = t.fmem
let hierarchy t = t.hierarchy
let cl_log t = t.log
let directory t = t.directory
