open Kona_util
module Access = Kona_trace.Access
module Hierarchy = Kona_cachesim.Hierarchy
module Fmem = Kona_coherence.Fmem
module Directory = Kona_coherence.Directory
module Nic = Kona_rdma.Nic
module Qp = Kona_rdma.Qp
module Cache = Kona_cachesim.Cache
module Hub = Kona_telemetry.Hub
module Registry = Kona_telemetry.Registry
module Tracer = Kona_telemetry.Tracer

type config = {
  cost : Cost_model.t;
  rdma : Kona_rdma.Cost.t;
  cache_config : Hierarchy.config;
  fmem_pages : int;
  fmem_assoc : int;
  fmem_policy : Fmem.policy;
  fetch_block : int;
  log_capacity : int;
  replicas : int;
  mce_threshold_ns : int option;
  prefetch : bool;
  sq_depth : int option;
  signal_interval : int;
}

let default_config =
  {
    cost = Cost_model.default;
    rdma = Kona_rdma.Cost.default;
    cache_config = Hierarchy.default_config;
    fmem_pages = 1024;
    fmem_assoc = 4;
    fmem_policy = Fmem.Lru;
    fetch_block = Units.page_size;
    log_capacity = 512;
    replicas = 0;
    mce_threshold_ns = None;
    prefetch = false;
    sq_depth = None;
    signal_interval = 1;
  }

type t = {
  config : config;
  app_clock : Clock.t;
  bg_clock : Clock.t;
  hierarchy : Hierarchy.t;
  fmem : Fmem.t;
  directory : Directory.t;
  rm : Resource_manager.t;
  log : Cl_log.t;
  replication : Replication.t option;
  caching : Caching_handler.t;
  tracker : Dirty_tracker.t;
  evictor : Eviction_handler.t;
  nic : Nic.t;
  fetch_qp : Qp.t;
  evict_qp : Qp.t;
  prefetch_qp : Qp.t option;
  hub : Hub.t option;
  mutable accesses : int;
}

(* Publish the whole runtime namespace into [reg].  Everything is pull-style
   ([counter_fn]/[gauge_fn] over existing component tallies) except the fetch
   latency distribution, which is the caching handler's own histogram
   registered by reference — components stay telemetry-free. *)
let register_metrics t reg =
  let c ?labels name f = Registry.counter_fn reg ?labels name f in
  let g ?labels name f = Registry.gauge_fn reg ?labels name f in
  (* Application / clocks *)
  c "runtime.accesses" (fun () -> t.accesses);
  g "clock.app_ns" (fun () -> Clock.now t.app_clock);
  g "clock.bg_ns" (fun () -> Clock.now t.bg_clock);
  (* Demand-fetch path *)
  Registry.histogram_ref reg "fetch.latency_ns"
    (Caching_handler.fetch_latency t.caching);
  c "fetch.pages" (fun () -> Caching_handler.pages_fetched t.caching);
  c "fetch.bytes" (fun () -> Caching_handler.bytes_fetched t.caching);
  c "fetch.mce_raised" (fun () -> Caching_handler.mce_raised t.caching);
  c "prefetch.issued" (fun () -> Caching_handler.prefetches_issued t.caching);
  c "prefetch.useful" (fun () -> Caching_handler.prefetches_useful t.caching);
  (* FMem: demand-level hit/miss plus probe-level and per-set skew *)
  c "fmem.hits" (fun () -> Caching_handler.fmem_hits t.caching);
  c "fmem.misses" (fun () -> Caching_handler.fmem_misses t.caching);
  g "fmem.resident" (fun () -> Fmem.resident t.fmem);
  c "fmem.evictions" (fun () -> Fmem.evictions t.fmem);
  c "fmem.probe.hits" (fun () -> Fmem.probe_hits t.fmem);
  c "fmem.probe.misses" (fun () -> Fmem.probe_misses t.fmem);
  g "fmem.set.max_misses" (fun () ->
      let worst = ref 0 in
      for s = 0 to Fmem.nsets t.fmem - 1 do
        let _, misses, _ = Fmem.set_counters t.fmem ~set:s in
        if misses > !worst then worst := misses
      done;
      !worst);
  (* CPU cache hierarchy *)
  List.iter
    (fun (lvl, cache) ->
      let labels = [ ("level", lvl) ] in
      c ~labels "cache.accesses" (fun () ->
          let s = Cache.stats cache in
          s.Cache.reads + s.Cache.writes);
      c ~labels "cache.misses" (fun () ->
          let s = Cache.stats cache in
          s.Cache.read_misses + s.Cache.write_misses))
    [
      ("l1", Hierarchy.l1 t.hierarchy);
      ("l2", Hierarchy.l2 t.hierarchy);
      ("llc", Hierarchy.llc t.hierarchy);
    ];
  c "hierarchy.memory_accesses" (fun () -> Hierarchy.memory_accesses t.hierarchy);
  c "hierarchy.writebacks" (fun () -> Hierarchy.writebacks t.hierarchy);
  c "directory.fills" (fun () -> Directory.fills t.directory);
  c "directory.writebacks" (fun () -> Directory.writebacks t.directory);
  (* Dirty tracking and eviction *)
  g "tracker.lines" (fun () -> Dirty_tracker.lines_tracked t.tracker);
  c "tracker.orphans" (fun () -> Dirty_tracker.orphans t.tracker);
  c "evict.pages" (fun () -> Eviction_handler.pages_evicted t.evictor);
  c "evict.clean_pages" (fun () -> Eviction_handler.clean_pages t.evictor);
  c "evict.lines" (fun () -> Eviction_handler.lines_evicted t.evictor);
  c "evict.snooped_lines" (fun () -> Eviction_handler.snooped_dirty_lines t.evictor);
  (* CL log: volume, amplification, per-phase time (Fig. 11) *)
  c "cllog.lines" (fun () -> Cl_log.lines_logged t.log);
  c "cllog.appends" (fun () -> Cl_log.appends t.log);
  c "cllog.flushes" (fun () -> Cl_log.flushes t.log);
  c "cllog.payload_bytes" (fun () -> Cl_log.payload_bytes t.log);
  c "cllog.wire_bytes" (fun () -> Cl_log.wire_bytes t.log);
  c "cllog.amp_bytes" (fun () -> Cl_log.overhead_bytes t.log);
  c "cllog.doorbell_batches" (fun () -> Cl_log.doorbell_batches t.log);
  c "cllog.doorbell_wqes" (fun () -> Cl_log.doorbell_wqes t.log);
  g "cllog.doorbell_batch_peak" (fun () -> Cl_log.doorbell_batch_peak t.log);
  List.iter
    (fun phase ->
      c ~labels:[ ("phase", phase) ] "cllog.phase_ns" (fun () ->
          match List.assoc_opt phase (Cl_log.breakdown_ns t.log) with
          | Some ns -> ns
          | None -> 0))
    [ "bitmap"; "copy"; "rdma"; "ack" ];
  (* RDMA: per-QP accounting plus the shared NIC port *)
  let qps =
    [ ("fetch", Some t.fetch_qp); ("evict", Some t.evict_qp);
      ("prefetch", t.prefetch_qp) ]
  in
  List.iter
    (fun (name, qp) ->
      match qp with
      | None -> ()
      | Some qp ->
          let labels = [ ("qp", name) ] in
          c ~labels "qp.wire_bytes" (fun () -> Qp.wire_bytes qp);
          c ~labels "qp.payload_bytes" (fun () -> Qp.payload_bytes qp);
          c ~labels "qp.posts" (fun () -> Qp.posts qp);
          c ~labels "qp.verbs" (fun () -> Qp.verbs qp);
          c ~labels "qp.signaled" (fun () -> Qp.signaled qp);
          c ~labels "qp.completed" (fun () -> Qp.completed qp);
          c ~labels "qp.window_stalls" (fun () -> Qp.window_stalls qp);
          c ~labels "qp.window_stall_ns" (fun () -> Qp.window_stall_ns qp);
          g ~labels "qp.outstanding_peak" (fun () -> Qp.outstanding_peak qp);
          g ~labels "qp.in_flight" (fun () -> Qp.in_flight qp))
    qps;
  c "nic.ops" (fun () -> Nic.ops t.nic);
  c "nic.busy_ns" (fun () -> Nic.busy_ns t.nic);
  c "nic.stall_ns" (fun () -> Nic.stall_ns t.nic);
  c "nic.wire_bytes" (fun () ->
      List.fold_left
        (fun acc (_, qp) ->
          match qp with None -> acc | Some qp -> acc + Qp.wire_bytes qp)
        0 qps);
  (* Resource manager / control plane *)
  g "rm.slabs" (fun () -> List.length (Resource_manager.slabs t.rm));
  c "rm.controller_round_trips" (fun () ->
      Resource_manager.controller_round_trips t.rm)

let create ?(config = default_config) ?nic ?hub ~controller ~read_local () =
  let app_clock = Clock.create () in
  let bg_clock = Clock.create () in
  let tracer = Option.map Hub.tracer hub in
  (match tracer with
  | Some tr ->
      Tracer.set_clock tr (fun () -> (Clock.now app_clock, Clock.now bg_clock))
  | None -> ());
  let nic = match nic with Some n -> n | None -> Kona_rdma.Nic.create () in
  (* Demand fetches stay signal-every-WQE (they are synchronous); the
     background paths take both the send-queue window and selective
     signaling. *)
  let fetch_qp =
    Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth ~clock:app_clock ()
  in
  let evict_qp =
    Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth
      ~signal_interval:config.signal_interval ~clock:bg_clock ()
  in
  let rpc = Kona_rdma.Rpc.create ~cost:config.rdma ~clock:app_clock ~nic () in
  let rm = Resource_manager.create ~rpc ~controller () in
  let fmem =
    Fmem.create ~assoc:config.fmem_assoc ~policy:config.fmem_policy
      ~pages:config.fmem_pages ()
  in
  let directory = Directory.create () in
  let replication =
    if config.replicas > 0 then Some (Replication.create ~degree:config.replicas ~controller)
    else None
  in
  let extra_targets ~node =
    match replication with Some r -> Replication.targets r ~node | None -> []
  in
  let log =
    Cl_log.create ~capacity:config.log_capacity ~extra_targets ?tracer ~qp:evict_qp
      ~cost:config.rdma
      ~resolve:(fun ~node -> Rack_controller.node controller ~id:node)
      ()
  in
  (* The hierarchy is created first without hooks, then hooks close over the
     record; OCaml needs the recursive knot tied by a forward reference. *)
  let evictor_ref = ref None in
  let caching_ref = ref None in
  let tracker_ref = ref None in
  let hierarchy =
    Hierarchy.create ~config:config.cache_config
      ~on_fill:(fun ~addr ~write ->
        Directory.on_fill directory ~line:(Units.line_of_addr addr) ~write;
        match !caching_ref with Some c -> Caching_handler.on_fill c ~addr | None -> ())
      ~on_writeback:(fun ~addr ->
        Directory.on_writeback directory ~line:(Units.line_of_addr addr);
        match !tracker_ref with Some d -> Dirty_tracker.on_writeback d ~addr | None -> ())
      ()
  in
  let snoop ~page =
    let dirty = Hierarchy.flush_page hierarchy ~page in
    List.iter
      (fun line_addr ->
        ignore (Directory.snoop directory ~line:(Units.line_of_addr line_addr)
                 : [ `Clean | `Dirty ]))
      dirty;
    dirty
  in
  let evictor = Eviction_handler.create ?tracer ~log ~rm ~read_local ~snoop () in
  let tracker =
    Dirty_tracker.create ~fmem
      ~on_orphan:(fun ~line_addr -> Eviction_handler.write_line_through evictor ~line_addr)
      ()
  in
  let prefetch_qp =
    if config.prefetch then
      Some
        (Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth
           ~signal_interval:config.signal_interval ~clock:bg_clock ())
    else None
  in
  let caching =
    Caching_handler.create ~cost:config.cost ~fetch_block:config.fetch_block
      ?mce_threshold_ns:config.mce_threshold_ns ?prefetch_qp ?tracer ~fmem ~rm ~fetch_qp
      ~on_victim:(fun ~vpage ~dirty -> Eviction_handler.evict evictor ~vpage ~dirty)
      ()
  in
  evictor_ref := Some evictor;
  caching_ref := Some caching;
  tracker_ref := Some tracker;
  let t =
    {
      config;
      app_clock;
      bg_clock;
      hierarchy;
      fmem;
      directory;
      rm;
      log;
      replication;
      caching;
      tracker;
      evictor;
      nic;
      fetch_qp;
      evict_qp;
      prefetch_qp;
      hub;
      accesses = 0;
    }
  in
  (match hub with Some h -> register_metrics t (Hub.registry h) | None -> ());
  t

let charge_level t level =
  let c = t.config.cost in
  let ns =
    match level with
    | 1 -> c.Cost_model.l1_ns
    | 2 -> c.Cost_model.l1_ns +. c.Cost_model.l2_ns
    | _ -> c.Cost_model.l1_ns +. c.Cost_model.l2_ns +. c.Cost_model.llc_ns
  in
  Clock.advance t.app_clock (int_of_float ns)

let sink t event =
  t.accesses <- t.accesses + 1;
  let write = Access.is_write event in
  Access.iter_lines event (fun line ->
      let level = Hierarchy.access_line t.hierarchy ~addr:(line * Units.cache_line) ~write in
      charge_level t level)

let drain t =
  (* Pages needing writeback: FMem residents plus any page holding dirty
     CPU lines (possible after an FMem eviction raced a cached write). *)
  let pages = Hashtbl.create 256 in
  Fmem.iter_resident t.fmem (fun ~vpage ~dirty:_ -> Hashtbl.replace pages vpage ());
  let note_dirty ~block_addr ~dirty =
    if dirty then Hashtbl.replace pages (Units.page_of_addr block_addr) ()
  in
  Cache.iter_resident (Hierarchy.l1 t.hierarchy) note_dirty;
  Cache.iter_resident (Hierarchy.l2 t.hierarchy) note_dirty;
  Cache.iter_resident (Hierarchy.llc t.hierarchy) note_dirty;
  Hashtbl.iter
    (fun vpage () ->
      let dirty =
        match Fmem.evict t.fmem ~vpage with
        | Some victim -> victim.Fmem.dirty_lines
        | None -> Bitmap.create Units.lines_per_page
      in
      Eviction_handler.evict t.evictor ~vpage ~dirty)
    pages;
  Cl_log.flush t.log

let app_ns t = Clock.now t.app_clock
let bg_ns t = Clock.now t.bg_clock
let elapsed_ns t = max (app_ns t) (bg_ns t)

let stats t =
  let h = t.hierarchy in
  let level name cache =
    let s = Cache.stats cache in
    [
      (name ^ ".accesses", s.Cache.reads + s.Cache.writes);
      (name ^ ".misses", s.Cache.read_misses + s.Cache.write_misses);
    ]
  in
  level "l1" (Hierarchy.l1 h)
  @ level "l2" (Hierarchy.l2 h)
  @ level "llc" (Hierarchy.llc h)
  @ [
      ("accesses", t.accesses);
      ("fmem.hits", Caching_handler.fmem_hits t.caching);
      ("fmem.misses", Caching_handler.fmem_misses t.caching);
      ("fetch.pages", Caching_handler.pages_fetched t.caching);
      ("fetch.bytes", Caching_handler.bytes_fetched t.caching);
      ("mce.raised", Caching_handler.mce_raised t.caching);
      ("prefetch.issued", Caching_handler.prefetches_issued t.caching);
      ("prefetch.useful", Caching_handler.prefetches_useful t.caching);
      ( "fetch.p50_ns",
        (let h = Caching_handler.fetch_latency t.caching in
         if Kona_util.Histogram.count h = 0 then 0
         else Kona_util.Histogram.percentile h 50.) );
      ( "fetch.p99_ns",
        (let h = Caching_handler.fetch_latency t.caching in
         if Kona_util.Histogram.count h = 0 then 0
         else Kona_util.Histogram.percentile h 99.) );
      ("tracker.lines", Dirty_tracker.lines_tracked t.tracker);
      ("tracker.orphans", Dirty_tracker.orphans t.tracker);
      ("evict.pages", Eviction_handler.pages_evicted t.evictor);
      ("evict.clean_pages", Eviction_handler.clean_pages t.evictor);
      ("evict.lines", Eviction_handler.lines_evicted t.evictor);
      ("evict.snooped", Eviction_handler.snooped_dirty_lines t.evictor);
      ("log.lines", Cl_log.lines_logged t.log);
      ("log.flushes", Cl_log.flushes t.log);
      ("log.doorbell_batches", Cl_log.doorbell_batches t.log);
      ("evict.window_stalls", Qp.window_stalls t.evict_qp);
      ("rdma.fetch_wire_bytes", Qp.wire_bytes t.fetch_qp);
      ("directory.fills", Directory.fills t.directory);
      ("directory.writebacks", Directory.writebacks t.directory);
      ("slabs", List.length (Resource_manager.slabs t.rm));
      ("controller.round_trips", Resource_manager.controller_round_trips t.rm);
    ]

let replication t = t.replication
let hub t = t.hub
let resource_manager t = t.rm
let fmem t = t.fmem
let hierarchy t = t.hierarchy
let cl_log t = t.log
let directory t = t.directory
