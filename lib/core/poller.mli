(** The Poller (§4.1): reaps RDMA completions across the runtime's queue
    pairs so handlers never busy-wait on individual CQs. *)

type t

val create : unit -> t
val register : t -> name:string -> Kona_rdma.Qp.t -> unit

val poll : t -> (string * int) list
(** One round over all registered QPs; returns (name, completions reaped)
    for QPs that had any.  Polling also retires WQEs whose completion time
    the clock has reached, firing their delivery side-effects in
    completion order — the poller is what drives asynchronous (eviction,
    prefetch) deliveries forward between fences. *)

val drain : t -> unit
(** Advance each QP's clock to idle and clear its CQ. *)

val reaped : t -> int
(** Total completions reaped over the poller's lifetime. *)
