(** Latency constants for every mechanism in the simulation, in one place.

    Memory-level latencies follow commodity servers; remote-fault latencies
    are the paper's own measurements (§2.1, §6.2): Infiniswap ≈ 40 us and
    LegoOS ≈ 10 us per remote fetch including the fault-handling software
    stack, a user-space (userfaultfd) handler in between, and raw RDMA at
    ≈ 3 us per 4KB.  Kona replaces the fault with a cache miss served by the
    FPGA: FMem hit at NUMA-like latency, miss at RDMA latency with no fault
    overhead. *)

type t = {
  l1_ns : float;
  l2_ns : float;
  llc_ns : float;
  cmem_ns : float;  (** CPU-attached DRAM *)
  fmem_ns : float;  (** FPGA-attached DRAM (≈1.5x CMem: NUMA-like, §4.3) *)
  minor_fault_ns : int;  (** kernel entry/exit + PTE fix-up (write-protect fault) *)
  userfault_extra_ns : int;  (** extra for routing a fault to user space *)
  tlb_invalidate_ns : int;  (** single-page invalidation + IPI share *)
  tlb_walk_ns : int;  (** page-table walk after a TLB miss *)
  remote_fault_infiniswap_ns : int;  (** measured end-to-end (block layer) *)
  remote_fault_legoos_ns : int;
  eviction_infiniswap_ns : int;  (** measured page eviction (§2.1, >32us) *)
  mce_recovery_ns : int;
      (** handling a machine-check exception raised by a coherence-protocol
          timeout during a network outage (§4.5, Intel MCA path) *)
  pml_drain_ns : int;
      (** draining one full 512-entry Page Modification Log buffer (§8:
          Intel PML removes write faults but stays page-granular) *)
}

val default : t

(** Per-system remote-access profiles used by KCacheSim (Fig. 8): the DRAM
    cache level's latency and the remote-miss latency. *)
type system_profile = {
  system : string;
  dram_cache_ns : float;  (** CMem for the baselines, FMem for Kona *)
  remote_ns : float;  (** one remote fetch, software stack included *)
}

val kona : ?rdma:Kona_rdma.Cost.t -> t -> system_profile
(** Remote = RDMA page read, no faults; cache in FMem. *)

val kona_main : ?rdma:Kona_rdma.Cost.t -> t -> system_profile
(** Kona if it could track CMem (no NUMA penalty) — upper bound (§6.2). *)

val kona_vm : ?rdma:Kona_rdma.Cost.t -> t -> system_profile
(** Page faults handled in user space; similar remote latency to LegoOS. *)

val legoos : t -> system_profile
val infiniswap : t -> system_profile
