(** KLib's resource manager: pre-allocates disaggregated memory from the
    rack controller in slab batches (off the critical path) and maintains
    the {e remote translation} hashmap from VFMem pages to (node, remote
    address) that the FPGA consults on fetch and writeback (§4.4).

    The VFMem address space is identified with the application heap's
    address space: logically pre-populated, always mapped present. *)

type t

val create :
  ?batch:int -> ?rpc:Kona_rdma.Rpc.t -> controller:Rack_controller.t -> unit -> t
(** [batch]: how many slabs to request per controller round-trip
    (default 4).  When [rpc] is given, each round-trip is priced as a
    two-sided exchange on that channel (request + controller service +
    slab-list response). *)

val ensure_backed : t -> addr:int -> len:int -> unit
(** Guarantee every page of [addr, addr+len) has a backing slab, allocating
    (in batches) as needed.  AllocLib calls this on each interposed
    allocation. *)

val translate : t -> vaddr:int -> (int * int) option
(** [(node, remote_addr)] for a backed VFMem address. *)

val slab_of : t -> vaddr:int -> Slab.t option
val slabs : t -> Slab.t list
val controller_round_trips : t -> int

val iter_backed_pages : t -> (vpage:int -> node:int -> remote_addr:int -> unit) -> unit
(** Every backed page with its remote location (integrity checks). *)
