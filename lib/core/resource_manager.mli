(** KLib's resource manager: pre-allocates disaggregated memory from the
    rack controller in slab batches (off the critical path) and maintains
    the {e remote translation} hashmap from VFMem pages to (node, remote
    address) that the FPGA consults on fetch and writeback (§4.4).

    The VFMem address space is identified with the application heap's
    address space: logically pre-populated, always mapped present. *)

type t

val create :
  ?batch:int ->
  ?rpc:Kona_rdma.Rpc.t ->
  ?tenant:string ->
  controller:Rack_controller.t ->
  unit ->
  t
(** [batch]: how many slabs to request per controller round-trip
    (default 4).  When [rpc] is given, each round-trip is priced as a
    two-sided exchange on that channel (request + controller service +
    slab-list response).  When [tenant] is given, every slab allocation is
    charged against that tenant's quota at the controller
    ({!Rack_controller.Quota_exceeded} on rejection). *)

val ensure_backed : t -> addr:int -> len:int -> unit
(** Guarantee every page of [addr, addr+len) has a backing slab, allocating
    (in batches) as needed.  AllocLib calls this on each interposed
    allocation. *)

val translate : t -> vaddr:int -> (int * int) option
(** [(node, remote_addr)] for a backed VFMem address.  A page-grain
    remap ({!remap_page}) takes precedence over the slab map. *)

val remap_page : t -> vpage:int -> node:int -> remote_addr:int -> unit
(** Point [vpage]'s translation at a new home — the migrator's hook.
    [remote_addr] is the page-base address on [node]; subsequent
    {!translate} and {!iter_backed_pages} calls see the new location.
    The caller must have copied the bytes (and replicas) first and
    flushed any staged CL-log entries, which resolve addresses at
    append time.  Raises [Invalid_argument] on an unaligned address. *)

val remaps : t -> int
(** Page remaps applied so far. *)

val map_foreign : t -> at:int -> Slab.t list -> unit
(** Map another tenant's published slabs (in order) into this address
    space starting at slab-aligned [at]: purely translation entries — the
    pages stay owned and backed by the publisher.  Foreign slabs are
    excluded from [slabs]/[iter_backed_pages], so owner-only sweeps (the
    scrubber, divergence oracles) skip borrowed pages.  Raises
    [Invalid_argument] on misalignment, a size mismatch, or an index that
    is already mapped. *)

val slab_of : t -> vaddr:int -> Slab.t option

(** [slabs] lists what this manager allocated for its own tenant (foreign
    mappings excluded), oldest first. *)
val slabs : t -> Slab.t list
val controller_round_trips : t -> int

val iter_backed_pages : t -> (vpage:int -> node:int -> remote_addr:int -> unit) -> unit
(** Every backed page with its remote location (integrity checks). *)
