(** Stream prefetch detection for remote pages.

    With Kona, pages stay mapped and fetches are plain cache misses, so the
    hardware prefetcher keeps running past page boundaries and its requests
    reach the FPGA, which can fetch the {e next pages} from remote memory
    ahead of demand (§3, §4.4).  Page-fault-based systems cannot do this:
    faults serialize and prefetchers do not cross faulting pages.

    This module is the detection logic only: it watches the demand-miss
    page stream, recognizes sequential streams, and asks the owner (the
    caching handler) to prefetch ahead.  Deterministic and purely
    mechanical, so it is testable in isolation. *)

type t

type policy =
  | Next_page  (** sequential stream detection, prefetch the next pages *)
  | Majority_stride
      (** Leap-style (Maruf & Chowdhury, ATC'20 — the paper's [57]):
          majority vote over the recent miss-delta window picks a stride,
          and prefetching runs [depth] strides ahead.  Catches strided
          scans that [Next_page] misses. *)

val create :
  ?policy:policy ->
  ?streams:int ->
  ?depth:int ->
  ?requested_cap:int ->
  on_prefetch:(vpage:int -> unit) ->
  unit ->
  t
(** Track up to [streams] (default 8) concurrent sequential streams
    ([Next_page]) or an 8-delta history window ([Majority_stride]); on a
    detection hit, request the next [depth] (default 2) pages/strides via
    [on_prefetch] (never re-requesting pages already asked for).  The
    stride-mode dedup table is LRU-bounded to [requested_cap] pages
    (default 4096) so memory stays bounded on unbounded scans. *)

val observe_miss : t -> vpage:int -> unit
(** Feed one demand miss. *)

val forget : t -> vpage:int -> unit
(** The page was evicted from the local cache: clear it from the dedup
    table so a later stream can prefetch it again. *)

val requested_pending : t -> int
(** Pages currently held in the stride-mode dedup table (bounded by
    [requested_cap]). *)

val issued : t -> int
(** Prefetch requests emitted. *)

val streams_active : t -> int
