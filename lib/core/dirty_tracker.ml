open Kona_util
module Fmem = Kona_coherence.Fmem

type t = {
  fmem : Fmem.t;
  on_orphan : line_addr:int -> unit;
  mutable lines_tracked : int;
  mutable orphans : int;
}

let create ~fmem ~on_orphan () = { fmem; on_orphan; lines_tracked = 0; orphans = 0 }

let on_writeback t ~addr =
  let vpage = Units.page_of_addr addr in
  let line = Units.line_in_page addr in
  if Fmem.mark_dirty t.fmem ~vpage ~line then t.lines_tracked <- t.lines_tracked + 1
  else begin
    t.orphans <- t.orphans + 1;
    t.on_orphan ~line_addr:addr
  end

let lines_tracked t = t.lines_tracked
let orphans t = t.orphans
