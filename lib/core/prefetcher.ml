type policy = Next_page | Majority_stride

type stream = {
  mutable last : int; (* last page of the recognized run *)
  mutable ahead : int; (* highest page already requested *)
  mutable stamp : int;
}

type t = {
  policy : policy;
  streams : stream array;
  depth : int;
  on_prefetch : vpage:int -> unit;
  (* Majority_stride state: a sliding window of recent miss deltas. *)
  deltas : int array;
  mutable delta_cursor : int;
  mutable last_miss : int;
  requested : Kona_util.Lru.t; (* stride-mode dedup, LRU-bounded *)
  requested_cap : int;
  mutable tick : int;
  mutable issued : int;
}

let history = 8

let create ?(policy = Next_page) ?(streams = 8) ?(depth = 2) ?(requested_cap = 4096)
    ~on_prefetch () =
  assert (streams > 0 && depth > 0 && requested_cap > 0);
  {
    policy;
    streams = Array.init streams (fun _ -> { last = -2; ahead = -2; stamp = 0 });
    depth;
    on_prefetch;
    deltas = Array.make history 0;
    delta_cursor = 0;
    last_miss = min_int;
    requested = Kona_util.Lru.create ();
    requested_cap;
    tick = 0;
    issued = 0;
  }

let request t stream upto =
  let first = max (stream.last + 1) (stream.ahead + 1) in
  for page = first to upto do
    t.issued <- t.issued + 1;
    t.on_prefetch ~vpage:page
  done;
  if upto > stream.ahead then stream.ahead <- upto

(* Majority vote over the delta window: the stride appearing in more than
   half the history slots, if any. *)
let majority_delta t =
  let best = ref 0 and best_count = ref 0 in
  Array.iter
    (fun d ->
      if d <> 0 then begin
        let c = Array.fold_left (fun acc d' -> if d' = d then acc + 1 else acc) 0 t.deltas in
        if c > !best_count then begin
          best := d;
          best_count := c
        end
      end)
    t.deltas;
  if 2 * !best_count > history then Some !best else None

let observe_stride t ~vpage =
  if t.last_miss <> min_int then begin
    t.deltas.(t.delta_cursor) <- vpage - t.last_miss;
    t.delta_cursor <- (t.delta_cursor + 1) mod history
  end;
  t.last_miss <- vpage;
  match majority_delta t with
  | None -> ()
  | Some stride ->
      for k = 1 to t.depth do
        let target = vpage + (k * stride) in
        if target >= 0 && not (Kona_util.Lru.mem t.requested target) then begin
          Kona_util.Lru.touch t.requested target;
          if Kona_util.Lru.length t.requested > t.requested_cap then
            ignore (Kona_util.Lru.evict_lru t.requested : int option);
          t.issued <- t.issued + 1;
          t.on_prefetch ~vpage:target
        end
      done

let observe_next_page t ~vpage =
  let rec find i =
    if i = Array.length t.streams then None
    else if t.streams.(i).last = vpage - 1 || t.streams.(i).last = vpage then Some t.streams.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some stream ->
      (* Sequential continuation: run ahead of the demand stream. *)
      stream.last <- max stream.last vpage;
      stream.stamp <- t.tick;
      request t stream (vpage + t.depth)
  | None ->
      (* New stream: steal the least recently advanced slot. *)
      let victim = ref t.streams.(0) in
      Array.iter (fun s -> if s.stamp < !victim.stamp then victim := s) t.streams;
      !victim.last <- vpage;
      !victim.ahead <- vpage;
      !victim.stamp <- t.tick

let observe_miss t ~vpage =
  t.tick <- t.tick + 1;
  match t.policy with
  | Next_page -> observe_next_page t ~vpage
  | Majority_stride -> observe_stride t ~vpage

(* The page left the local cache: dropping it from the dedup table lets a
   later stream over the same region prefetch it again. *)
let forget t ~vpage = Kona_util.Lru.remove t.requested vpage
let requested_pending t = Kona_util.Lru.length t.requested

let issued t = t.issued
let streams_active t =
  Array.fold_left (fun acc s -> if s.last >= 0 then acc + 1 else acc) 0 t.streams
