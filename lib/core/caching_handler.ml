open Kona_util
module Fmem = Kona_coherence.Fmem
module Qp = Kona_rdma.Qp
module Tracer = Kona_telemetry.Tracer

type t = {
  cost : Cost_model.t;
  fetch_block : int;
  mce_threshold_ns : int option;
  fmem : Fmem.t;
  rm : Resource_manager.t;
  fetch_qp : Qp.t;
  prefetch_qp : Qp.t option;
  tracer : Tracer.t option;
  mutable prefetcher : Prefetcher.t option;
  prefetched : (int, unit) Hashtbl.t; (* prefetched, not yet demanded *)
  on_victim : vpage:int -> dirty:Bitmap.t -> unit;
  mutable on_fetch_verify : (vpage:int -> unit) option;
  mutable on_fetch : (vpage:int -> unit) option;
  mutable fmem_hits : int;
  mutable fmem_misses : int;
  mutable pages_fetched : int;
  mutable bytes_fetched : int;
  mutable mce_raised : int;
  mutable prefetch_useful : int;
  fetch_latency : Histogram.t;
}

(* A page leaving FMem must also leave the prefetch bookkeeping, or the
   prefetcher would never re-request it and [prefetched] would grow without
   bound. *)
let note_victim t (victim : Fmem.victim) =
  (match t.prefetcher with
  | Some p -> Prefetcher.forget p ~vpage:victim.Fmem.vpage
  | None -> ());
  Hashtbl.remove t.prefetched victim.Fmem.vpage;
  t.on_victim ~vpage:victim.Fmem.vpage ~dirty:victim.Fmem.dirty_lines

let create ~cost ?(fetch_block = Units.page_size) ?mce_threshold_ns ?prefetch_qp ?tracer
    ~fmem ~rm ~fetch_qp ~on_victim () =
  if fetch_block < Units.page_size || fetch_block mod Units.page_size <> 0 then
    invalid_arg "Caching_handler: fetch_block must be a positive multiple of the page size";
  let t =
    {
      cost;
      fetch_block;
      mce_threshold_ns;
      fmem;
      rm;
      fetch_qp;
      prefetch_qp;
      tracer;
      prefetcher = None;
      prefetched = Hashtbl.create 64;
      on_victim;
      on_fetch_verify = None;
      on_fetch = None;
      fmem_hits = 0;
      fmem_misses = 0;
      pages_fetched = 0;
      bytes_fetched = 0;
      mce_raised = 0;
      prefetch_useful = 0;
      fetch_latency = Histogram.create ();
    }
  in
  (match prefetch_qp with
  | Some qp ->
      let on_prefetch ~vpage =
        if not (Fmem.lookup t.fmem ~vpage) then begin
          Resource_manager.ensure_backed t.rm ~addr:(vpage * Units.page_size)
            ~len:Units.page_size;
          let node =
            Option.map fst
              (Resource_manager.translate t.rm ~vaddr:(vpage * Units.page_size))
          in
          (* Asynchronous: posted on the background queue pair; the demand
             stream never waits for it. *)
          Qp.post qp [ Qp.wqe ?node Qp.Read ~len:Units.page_size ];
          t.bytes_fetched <- t.bytes_fetched + Units.page_size;
          Hashtbl.replace t.prefetched vpage ();
          match Fmem.insert t.fmem ~vpage with
          | None -> ()
          | Some victim -> note_victim t victim
        end
      in
      t.prefetcher <- Some (Prefetcher.create ~on_prefetch ())
  | None -> ());
  t

let app_clock t = Qp.clock t.fetch_qp

let fetch_page t ~vpage =
  (* The remote read is demand-synchronous: post and wait on the app clock.
     Data is already locally visible in our emulation (the application heap
     is the single store), so only timing and accounting flow here. *)
  Resource_manager.ensure_backed t.rm ~addr:(vpage * Units.page_size) ~len:Units.page_size;
  let node =
    Option.map fst
      (Resource_manager.translate t.rm ~vaddr:(vpage * Units.page_size))
  in
  let before = Clock.now (app_clock t) in
  let wqe = Qp.wqe ~signaled:true ?node Qp.Read ~len:Units.page_size in
  Qp.post t.fetch_qp [ wqe ];
  Qp.wait_idle t.fetch_qp;
  let wait_ns = Clock.now (app_clock t) - before in
  Histogram.add t.fetch_latency wait_ns;
  (match t.tracer with
  | Some tr -> Tracer.span tr "fetch.page" ~dur_ns:wait_ns ~args:[ ("vpage", vpage) ]
  | None -> ());
  (match t.mce_threshold_ns with
  | Some threshold when wait_ns > threshold ->
      (* The coherence protocol timed out waiting for the response: the CPU
         raises a machine check; recovery re-arms the line request. *)
      t.mce_raised <- t.mce_raised + 1;
      (match t.tracer with
      | Some tr ->
          Tracer.instant tr "fetch.mce"
            ~args:[ ("vpage", vpage); ("wait_ns", wait_ns) ]
      | None -> ());
      Clock.advance (app_clock t) t.cost.Cost_model.mce_recovery_ns
  | Some _ | None -> ());
  t.pages_fetched <- t.pages_fetched + 1;
  t.bytes_fetched <- t.bytes_fetched + Units.page_size;
  (* Integrity hook: stale-read detection and on-fetch checksum
     verification run against the remote image the fetch just read. *)
  (match t.on_fetch_verify with Some f -> f ~vpage | None -> ());
  (match t.on_fetch with Some f -> f ~vpage | None -> ());
  match Fmem.insert t.fmem ~vpage with
  | None -> ()
  | Some victim -> note_victim t victim

let set_on_fetch_verify t f = t.on_fetch_verify <- Some f
let set_on_fetch t f = t.on_fetch <- Some f

let on_fill t ~addr =
  let vpage = Units.page_of_addr addr in
  if Fmem.lookup t.fmem ~vpage then begin
    t.fmem_hits <- t.fmem_hits + 1;
    if Hashtbl.mem t.prefetched vpage then begin
      t.prefetch_useful <- t.prefetch_useful + 1;
      Hashtbl.remove t.prefetched vpage
    end;
    Clock.advance (app_clock t) (int_of_float t.cost.Cost_model.fmem_ns)
  end
  else begin
    t.fmem_misses <- t.fmem_misses + 1;
    (match t.prefetcher with
    | Some p -> Prefetcher.observe_miss p ~vpage
    | None -> ());
    (* Fetch the whole block containing the page. *)
    let pages_per_block = t.fetch_block / Units.page_size in
    let first = vpage - (vpage mod pages_per_block) in
    for p = first to first + pages_per_block - 1 do
      if not (Fmem.lookup t.fmem ~vpage:p) then fetch_page t ~vpage:p
    done;
    Clock.advance (app_clock t) (int_of_float t.cost.Cost_model.fmem_ns)
  end

let mce_raised t = t.mce_raised
let prefetches_issued t =
  match t.prefetcher with Some p -> Prefetcher.issued p | None -> 0

let prefetches_useful t = t.prefetch_useful
let fetch_latency t = t.fetch_latency
let fmem_hits t = t.fmem_hits
let fmem_misses t = t.fmem_misses
let pages_fetched t = t.pages_fetched
let bytes_fetched t = t.bytes_fetched
