(** KCacheSim (§5): the simulator behind Fig. 8.

    Replays a workload's access stream through the CPU cache hierarchy plus
    a fourth, DRAM-cache stage (FMem for Kona, CMem for the baselines) of
    configurable size / associativity / block size, then computes the
    average memory access time (AMAT) under each system's latency profile.

    Because every system shares the caching structure and differs only in
    latencies (exactly the paper's conservative methodology — the software
    stack is folded into the remote-access latency), one simulation yields
    the hit counts for all systems at once. *)

type counts = {
  line_accesses : int;  (** total 64B-line accesses issued by the workload *)
  l1_hits : int;
  l2_hits : int;
  llc_hits : int;
  dram_hits : int;  (** hits in the DRAM-cache stage *)
  remote_fetches : int;  (** DRAM-cache misses: remote memory reached *)
  rss_bytes : int;  (** workload peak footprint (sizes the cache) *)
  dram_cache_bytes : int;  (** actual configured stage-4 capacity *)
}

val measure_rss :
  spec:Kona_workloads.Workloads.spec ->
  scale:Kona_workloads.Workloads.scale ->
  seed:int ->
  int
(** One uninstrumented run to learn the workload's footprint; pass the
    result as [?rss] to avoid re-running it per sweep point. *)

val simulate :
  ?cache_config:Kona_cachesim.Hierarchy.config ->
  ?block:int ->
  ?assoc:int ->
  ?rss:int ->
  spec:Kona_workloads.Workloads.spec ->
  scale:Kona_workloads.Workloads.scale ->
  seed:int ->
  cache_frac:float ->
  unit ->
  counts
(** [cache_frac] sizes the DRAM cache as a fraction of the workload's
    measured footprint ("Cache Size (% Local memory)" in Fig. 8);
    [block] is the stage-4 block size (default 4KB; 64B..32KB in Fig. 8d);
    [assoc] its associativity (default 4, as FMem).  [cache_frac >= 1]
    means everything fits: no remote fetches after cold misses. *)

val amat_ns :
  cost:Cost_model.t -> profile:Cost_model.system_profile -> counts -> float
(** Average memory access time under a system profile.  Hits at each level
    pay the cumulative latency down to that level; remote fetches
    additionally pay the profile's remote latency. *)
