type t = { id : int; node : int; vaddr : int; remote_addr : int; size : int }

let contains t ~addr = addr >= t.vaddr && addr < t.vaddr + t.size

let remote_of_vaddr t ~vaddr =
  if not (contains t ~addr:vaddr) then
    invalid_arg (Printf.sprintf "Slab.remote_of_vaddr: %#x outside slab %d" vaddr t.id);
  t.remote_addr + (vaddr - t.vaddr)

let pp fmt t =
  Format.fprintf fmt "slab%d@@node%d[%#x..%#x)" t.id t.node t.vaddr (t.vaddr + t.size)
