(** Disaggregated-memory replication (§4.5, failure mode 3).

    Kona replicates data during eviction: each CL-log write is sent to the
    primary memory node and to [degree] mirror nodes in the same batch,
    waiting for all acknowledgments.  Because Kona ships only dirty
    cache-lines, the network cost of each extra replica is amplified less
    than under page-granularity eviction — the paper's argument that
    "write amplification reduction increases with the number of
    replicas". *)

type t

val create : degree:int -> controller:Rack_controller.t -> t
(** Build [degree] mirror nodes for every node currently registered with
    the controller.  Mirrors are dedicated stores (they accept writes at
    primary-node offsets), not additional allocation targets. *)

val degree : t -> int

val targets : t -> node:int -> Memory_node.t list
(** The mirrors of [node] (possibly empty; never includes the primary). *)

(** {2 Failover (§4.5, failure mode 3)} *)

val failover : t -> controller:Rack_controller.t -> node:int -> Memory_node.t option
(** The primary backing logical node [node] crashed: promote its first
    live mirror — it inherits the crashed node's reservation mark and
    replaces it at the controller — and return it.  [None] when no live
    mirror exists (data loss; the caller reports degradation).  The
    promoted node leaves the mirror set; restoring the replication degree
    is the caller's re-replication job ({!add_mirror}). *)

val add_mirror : t -> node:int -> Memory_node.t -> unit
(** Attach a (re-replicated) mirror to logical node [node]. *)

val remove_mirror : t -> node:int -> id:int -> unit
(** Detach the mirror with physical id [id] from logical node [node].
    Used to scrap a half-cloned mirror when its re-replication source
    dies mid-copy: an incomplete copy must never become promotable. *)

val crash_mirror : t -> id:int -> int option
(** If [id] names one of the mirrors, fail-stop and remove it, returning
    the logical id of the primary that lost a replica; [None] otherwise. *)

val fresh_replica_id : t -> int
(** A backing-store id for a re-replication target, minted by the rack
    controller ({!Rack_controller.mint_backing_id}) so it can never
    collide with a logical node id registered by a rack op. *)

val live_copies : t -> controller:Rack_controller.t -> node:int -> Memory_node.t list
(** Every live copy of logical node [node]'s data — the current primary
    (when alive) followed by its live mirrors.  The scrub-and-repair
    path's source pool: any copy whose line verifies clean can repair
    the others. *)

val failovers : t -> int
(** Promotions performed. *)

val lines_replicated : t -> int
(** Total cache-lines received across all mirrors. *)

val divergent_mirrors : t -> controller:Rack_controller.t -> int
(** Number of live mirrors whose used range differs from their (live)
    primary — 0 means every replica is byte-identical (checked over each
    node's reserved range).  Crashed mirrors are lost, not divergent;
    mirrors of a crashed, un-failed-over primary have no reference to
    check against and are skipped. *)
