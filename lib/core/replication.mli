(** Disaggregated-memory replication (§4.5, failure mode 3).

    Kona replicates data during eviction: each CL-log write is sent to the
    primary memory node and to [degree] mirror nodes in the same batch,
    waiting for all acknowledgments.  Because Kona ships only dirty
    cache-lines, the network cost of each extra replica is amplified less
    than under page-granularity eviction — the paper's argument that
    "write amplification reduction increases with the number of
    replicas". *)

type t

val create : degree:int -> controller:Rack_controller.t -> t
(** Build [degree] mirror nodes for every node currently registered with
    the controller.  Mirrors are dedicated stores (they accept writes at
    primary-node offsets), not additional allocation targets. *)

val degree : t -> int

val targets : t -> node:int -> Memory_node.t list
(** The mirrors of [node] (possibly empty; never includes the primary). *)

val lines_replicated : t -> int
(** Total cache-lines received across all mirrors. *)

val divergent_mirrors : t -> controller:Rack_controller.t -> int
(** Number of mirrors whose used range differs from their primary —
    0 means every replica is byte-identical (checked over each node's
    reserved range). *)
