open Kona_util
module Hierarchy = Kona_cachesim.Hierarchy
module Cache = Kona_cachesim.Cache
module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Access = Kona_trace.Access

type counts = {
  line_accesses : int;
  l1_hits : int;
  l2_hits : int;
  llc_hits : int;
  dram_hits : int;
  remote_fetches : int;
  rss_bytes : int;
  dram_cache_bytes : int;
}

let measure_rss ~spec ~scale ~seed =
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink:Access.Tap.ignore ()
  in
  spec.Workloads.run scale ~heap ~seed;
  Heap.used heap

let simulate ?cache_config ?(block = Units.page_size) ?(assoc = 4) ?rss ~spec ~scale
    ~seed ~cache_frac () =
  assert (cache_frac >= 0.);
  if not (Units.is_power_of_two block && block >= Units.cache_line) then
    invalid_arg "Kcachesim.simulate: block must be a power of two >= 64";
  let rss = match rss with Some r -> r | None -> measure_rss ~spec ~scale ~seed in
  (* Size the DRAM-cache stage; keep at least one full set. *)
  let want = int_of_float (cache_frac *. float_of_int rss) in
  let size = max (assoc * block) (Units.align_up want ~alignment:(assoc * block)) in
  let dram = Cache.create ~name:"dram-cache" ~size ~assoc ~block in
  let dram_hits = ref 0 in
  let remote = ref 0 in
  let hierarchy =
    Hierarchy.create ?config:cache_config
      ~on_fill:(fun ~addr ~write ->
        match Cache.access dram ~addr ~write with
        | Cache.Hit -> incr dram_hits
        | Cache.Miss _ -> incr remote)
      ()
  in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale)
      ~sink:(Hierarchy.access hierarchy) ()
  in
  spec.Workloads.run scale ~heap ~seed;
  let hits cache =
    let s = Cache.stats cache in
    s.Cache.reads + s.Cache.writes - s.Cache.read_misses - s.Cache.write_misses
  in
  let l1 = Hierarchy.l1 hierarchy and l2 = Hierarchy.l2 hierarchy in
  let llc = Hierarchy.llc hierarchy in
  let s1 = Cache.stats l1 in
  {
    line_accesses = s1.Cache.reads + s1.Cache.writes;
    l1_hits = hits l1;
    l2_hits = hits l2;
    llc_hits = hits llc;
    dram_hits = !dram_hits;
    remote_fetches = !remote;
    rss_bytes = rss;
    dram_cache_bytes = size;
  }

let amat_ns ~cost ~profile counts =
  let c = cost in
  let lat_l1 = c.Cost_model.l1_ns in
  let lat_l2 = lat_l1 +. c.Cost_model.l2_ns in
  let lat_llc = lat_l2 +. c.Cost_model.llc_ns in
  let lat_dram = lat_llc +. profile.Cost_model.dram_cache_ns in
  let lat_remote = lat_dram +. profile.Cost_model.remote_ns in
  let f = float_of_int in
  let total =
    (f counts.l1_hits *. lat_l1)
    +. (f counts.l2_hits *. lat_l2)
    +. (f counts.llc_hits *. lat_llc)
    +. (f counts.dram_hits *. lat_dram)
    +. (f counts.remote_fetches *. lat_remote)
  in
  total /. f counts.line_accesses
