open Kona_util
open Kona_integrity

exception Crashed of int
exception Fenced of int

type t = {
  node_id : int;
  store : Bytes.t;
  chk : Checksums.t;
  seq_rx : Sequencer.Rx.t;
  mutable brk : int;
  mutable is_alive : bool;
  (* Fencing (split-brain prevention): once a store is displaced by a
     membership-triggered failover it carries the fencing epoch that
     displaced it.  Shipments stamped with an older epoch are stale
     writes from the pre-failover configuration and are rejected whole;
     the trusted write path refuses outright. *)
  mutable fence : int option;
  mutable fenced_rejects : int;
  mutable post_fence_writes : int;
  mutable lines_received : int;
  mutable logs_received : int;
}

let create ~id ~capacity =
  assert (capacity > 0);
  {
    node_id = id;
    store = Bytes.make capacity '\000';
    chk = Checksums.create ~capacity;
    seq_rx = Sequencer.Rx.create ();
    brk = 0;
    is_alive = true;
    fence = None;
    fenced_rejects = 0;
    post_fence_writes = 0;
    lines_received = 0;
    logs_received = 0;
  }

let id t = t.node_id
let capacity t = Bytes.length t.store
let used t = t.brk
let free_bytes t = capacity t - t.brk
let alive t = t.is_alive
let crash t = t.is_alive <- false

let set_fence t ~epoch =
  match t.fence with
  | Some e when e >= epoch -> ()
  | _ -> t.fence <- Some epoch

let fenced t = t.fence <> None
let fence_epoch t = t.fence
let fenced_rejects t = t.fenced_rejects
let post_fence_writes t = t.post_fence_writes

let check_alive t = if not t.is_alive then raise (Crashed t.node_id)
let check_fence t = match t.fence with Some _ -> raise (Fenced t.node_id) | None -> ()

let reserve t ~size =
  check_alive t;
  let size = Units.align_up size ~alignment:Units.page_size in
  if t.brk + size > capacity t then raise Out_of_memory;
  let addr = t.brk in
  t.brk <- t.brk + size;
  addr

let adopt_reservations t ~brk =
  if brk < 0 || brk > capacity t then
    invalid_arg
      (Printf.sprintf "Memory_node %d: adopt_reservations brk %d outside [0,%d]"
         t.node_id brk (capacity t));
  t.brk <- max t.brk brk

let check t addr len =
  check_alive t;
  if addr < 0 || addr + len > Bytes.length t.store then
    invalid_arg
      (Printf.sprintf "Memory_node %d: access [%#x,+%d) out of range" t.node_id addr len)

let write t ~addr ~data =
  check t addr (String.length data);
  check_fence t;
  Bytes.blit_string data 0 t.store addr (String.length data);
  Checksums.record t.chk ~store:t.store ~addr ~len:(String.length data)

let read t ~addr ~len =
  check t addr len;
  Bytes.sub_string t.store addr len

type log_entry = { addr : int; data : string; crcs : int array }

let entry ~addr ~data =
  let len = String.length data in
  assert (len > 0 && len mod Units.cache_line = 0);
  assert (addr mod Units.cache_line = 0);
  let crcs =
    Array.init (len / Units.cache_line) (fun i ->
        Crc32c.digest_sub data ~pos:(i * Units.cache_line) ~len:Units.cache_line)
  in
  { addr; data; crcs }

type delivery = { stream : int; epoch : int; seq : int }

type report = {
  verdict : Sequencer.Rx.verdict;
  applied_lines : int;
  rejected : int list;
  healed : int list;
}

let receive_log ?delivery t entries =
  check_alive t;
  t.logs_received <- t.logs_received + 1;
  (* The fence check comes before sequence observation: a rejected stale
     shipment must not perturb the receiver's per-stream cursors.  An
     unstamped shipment carries no epoch proof, so a fenced store rejects
    it too. *)
  let fence_rejected =
    match (t.fence, delivery) with
    | Some fence_epoch, Some { epoch; _ } -> epoch < fence_epoch
    | Some _, None -> true
    | None, _ -> false
  in
  if fence_rejected then begin
    t.fenced_rejects <- t.fenced_rejects + 1;
    { verdict = Sequencer.Rx.Stale_epoch; applied_lines = 0; rejected = []; healed = [] }
  end
  else begin
  (* A shipment at or above the fencing epoch reaching a fenced store is
     structurally a post-fence write — it is applied below (dropping
     bytes silently would be worse) but counted, so the
     no-post-fence-write invariant trips. *)
  let verdict =
    match delivery with
    | None -> Sequencer.Rx.Ok
    | Some { stream; epoch; seq } -> Sequencer.Rx.observe t.seq_rx ~stream ~epoch ~seq
  in
  match verdict with
  | Sequencer.Rx.Duplicate | Sequencer.Rx.Stale_epoch ->
      (* Replays and stragglers from a previous configuration are
         dropped whole: applying them would roll lines backwards. *)
      { verdict; applied_lines = 0; rejected = []; healed = [] }
  | Sequencer.Rx.Ok | Sequencer.Rx.Gap _ ->
      let applied = ref 0 and rejected = ref [] and healed = ref [] in
      List.iter
        (fun e ->
          let len = String.length e.data in
          assert (len > 0 && len mod Units.cache_line = 0);
          assert (e.addr mod Units.cache_line = 0);
          let nlines = len / Units.cache_line in
          assert (Array.length e.crcs = nlines);
          for i = 0 to nlines - 1 do
            let addr = e.addr + (i * Units.cache_line) in
            let wire =
              Crc32c.digest_sub e.data ~pos:(i * Units.cache_line)
                ~len:Units.cache_line
            in
            if wire <> e.crcs.(i) then rejected := addr :: !rejected
            else begin
              check t addr Units.cache_line;
              let line = addr / Units.cache_line in
              if
                Checksums.recorded t.chk ~line
                && not (Checksums.line_ok t.chk ~store:t.store ~line)
              then healed := addr :: !healed;
              Bytes.blit_string e.data (i * Units.cache_line) t.store addr
                Units.cache_line;
              Checksums.set_line t.chk ~line ~crc:wire;
              incr applied
            end
          done;
          t.lines_received <- t.lines_received + nlines)
        entries;
      if t.fence <> None then
        t.post_fence_writes <- t.post_fence_writes + !applied;
      {
        verdict;
        applied_lines = !applied;
        rejected = List.rev !rejected;
        healed = List.rev !healed;
      }
  end

let lines_received t = t.lines_received
let logs_received t = t.logs_received
let peek = read

let verify_range t ~addr ~len = Checksums.corrupt_lines t.chk ~store:t.store ~addr ~len

let corrupt_bit t ~addr ~bit =
  if addr mod Units.cache_line <> 0 then invalid_arg "Memory_node.corrupt_bit: addr";
  if bit < 0 || bit >= Units.cache_line * 8 then
    invalid_arg "Memory_node.corrupt_bit: bit";
  let line = addr / Units.cache_line in
  let was_clean =
    Checksums.recorded t.chk ~line && Checksums.line_ok t.chk ~store:t.store ~line
  in
  let byte = addr + (bit / 8) in
  Bytes.set t.store byte
    (Char.chr (Char.code (Bytes.get t.store byte) lxor (1 lsl (bit land 7))));
  if was_clean then `Fresh else `Already_corrupt
