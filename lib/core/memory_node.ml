open Kona_util

exception Crashed of int

type t = {
  node_id : int;
  store : Bytes.t;
  mutable brk : int;
  mutable is_alive : bool;
  mutable lines_received : int;
  mutable logs_received : int;
}

let create ~id ~capacity =
  assert (capacity > 0);
  { node_id = id; store = Bytes.make capacity '\000'; brk = 0; is_alive = true;
    lines_received = 0; logs_received = 0 }

let id t = t.node_id
let capacity t = Bytes.length t.store
let used t = t.brk
let free_bytes t = capacity t - t.brk
let alive t = t.is_alive
let crash t = t.is_alive <- false

let check_alive t = if not t.is_alive then raise (Crashed t.node_id)

let reserve t ~size =
  check_alive t;
  let size = Units.align_up size ~alignment:Units.page_size in
  if t.brk + size > capacity t then raise Out_of_memory;
  let addr = t.brk in
  t.brk <- t.brk + size;
  addr

let adopt_reservations t ~brk =
  if brk < 0 || brk > capacity t then
    invalid_arg
      (Printf.sprintf "Memory_node %d: adopt_reservations brk %d outside [0,%d]"
         t.node_id brk (capacity t));
  t.brk <- max t.brk brk

let check t addr len =
  check_alive t;
  if addr < 0 || addr + len > Bytes.length t.store then
    invalid_arg
      (Printf.sprintf "Memory_node %d: access [%#x,+%d) out of range" t.node_id addr len)

let write t ~addr ~data =
  check t addr (String.length data);
  Bytes.blit_string data 0 t.store addr (String.length data)

let read t ~addr ~len =
  check t addr len;
  Bytes.sub_string t.store addr len

type log_entry = { addr : int; data : string }

let receive_log t entries =
  check_alive t;
  t.logs_received <- t.logs_received + 1;
  List.iter
    (fun e ->
      let len = String.length e.data in
      assert (len > 0 && len mod Units.cache_line = 0);
      write t ~addr:e.addr ~data:e.data;
      t.lines_received <- t.lines_received + (len / Units.cache_line))
    entries

let lines_received t = t.lines_received
let logs_received t = t.logs_received
let peek = read
