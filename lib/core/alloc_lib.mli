(** AllocLib: the allocation-interposition layer (§4.1).  Applications call
    plain [malloc]/[free]; AllocLib carves fine-grained allocations out of
    slab-backed VFMem and guarantees, via the resource manager, that
    disaggregated memory stands behind every returned address before the
    application touches it. *)

type t

val create : rm:Resource_manager.t -> unit -> t

val malloc : t -> ?align:int -> int -> int
(** Allocate (default 8-byte aligned); the returned VFMem address range is
    backed.  Exact-size free-list reuse, bump growth. *)

val free : t -> addr:int -> len:int -> unit
val allocated_bytes : t -> int
val live_bytes : t -> int
