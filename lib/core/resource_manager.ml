open Kona_util

type t = {
  controller : Rack_controller.t;
  batch : int;
  rpc : Kona_rdma.Rpc.t option;
  tenant : string option; (* quota identity for controller allocations *)
  (* slab-grain translation: VFMem slab index -> slab *)
  by_slab_index : (int, Slab.t) Hashtbl.t;
  (* page-grain overlay written by the migrator: vpage -> (node,
     page-base remote addr).  Consulted before the slab map, so a moved
     page translates to its new home while its slab-mates stay put. *)
  overrides : (int, int * int) Hashtbl.t;
  mutable slab_list : Slab.t list;
  mutable round_trips : int;
  mutable remaps : int;
}

let create ?(batch = 4) ?rpc ?tenant ~controller () =
  assert (batch > 0);
  {
    controller;
    batch;
    rpc;
    tenant;
    by_slab_index = Hashtbl.create 64;
    overrides = Hashtbl.create 64;
    slab_list = [];
    round_trips = 0;
    remaps = 0;
  }

let slab_bytes t = Rack_controller.slab_size t.controller
let slab_index t addr = addr / slab_bytes t

let slab_of t ~vaddr = Hashtbl.find_opt t.by_slab_index (slab_index t vaddr)

let allocate_batch t ~first_index =
  (* One controller round-trip provisions [batch] consecutive slabs,
     starting at the first unbacked index >= first_index. *)
  t.round_trips <- t.round_trips + 1;
  let serve () =
    let allocated = ref 0 in
    let index = ref first_index in
    while !allocated < t.batch do
      if not (Hashtbl.mem t.by_slab_index !index) then begin
        let slab =
          Rack_controller.allocate_slab ?tenant:t.tenant t.controller
            ~vaddr:(!index * slab_bytes t)
        in
        Hashtbl.add t.by_slab_index !index slab;
        t.slab_list <- slab :: t.slab_list;
        incr allocated
      end;
      incr index
    done
  in
  match t.rpc with
  | None -> serve ()
  | Some rpc ->
      (* request: one allocation descriptor; response: [batch] slab records *)
      Kona_rdma.Rpc.call rpc ~request_bytes:64 ~response_bytes:(t.batch * 64) serve ()

let ensure_backed t ~addr ~len =
  assert (len > 0);
  let first = slab_index t addr and last = slab_index t (addr + len - 1) in
  for index = first to last do
    if not (Hashtbl.mem t.by_slab_index index) then allocate_batch t ~first_index:index
  done

(* Map another tenant's published slabs into this address space at [at]:
   translation entries only, pointing at the publisher's remote locations.
   Foreign slabs are deliberately kept out of [slab_list], so owner-only
   sweeps ([slabs], [iter_backed_pages] — the integrity scrubber and
   divergence oracles) never claim pages this tenant merely borrows. *)
let map_foreign t ~at slabs =
  if at mod slab_bytes t <> 0 then
    invalid_arg "Resource_manager.map_foreign: unaligned map address";
  List.iteri
    (fun i (slab : Slab.t) ->
      if slab.Slab.size <> slab_bytes t then
        invalid_arg "Resource_manager.map_foreign: slab size mismatch";
      let vaddr = at + (i * slab_bytes t) in
      let index = slab_index t vaddr in
      if Hashtbl.mem t.by_slab_index index then
        invalid_arg
          (Printf.sprintf
             "Resource_manager.map_foreign: slab index %d already mapped" index);
      Hashtbl.add t.by_slab_index index { slab with Slab.vaddr })
    slabs

let translate t ~vaddr =
  match Hashtbl.find_opt t.overrides (vaddr / Units.page_size) with
  | Some (node, base) -> Some (node, base + (vaddr mod Units.page_size))
  | None ->
      Option.map
        (fun slab -> (slab.Slab.node, Slab.remote_of_vaddr slab ~vaddr))
        (slab_of t ~vaddr)

let remap_page t ~vpage ~node ~remote_addr =
  if remote_addr mod Units.page_size <> 0 then
    invalid_arg "Resource_manager.remap_page: unaligned remote address";
  Hashtbl.replace t.overrides vpage (node, remote_addr);
  t.remaps <- t.remaps + 1

let remaps t = t.remaps

let slabs t = List.rev t.slab_list
let controller_round_trips t = t.round_trips

let iter_backed_pages t f =
  List.iter
    (fun (slab : Slab.t) ->
      let pages = slab.Slab.size / Units.page_size in
      let first_page = slab.Slab.vaddr / Units.page_size in
      for i = 0 to pages - 1 do
        let vpage = first_page + i in
        let node, remote_addr =
          match Hashtbl.find_opt t.overrides vpage with
          | Some home -> home
          | None ->
              (slab.Slab.node, slab.Slab.remote_addr + (i * Units.page_size))
        in
        f ~vpage ~node ~remote_addr
      done)
    (slabs t)
