open Kona_util

type t = {
  controller : Rack_controller.t;
  batch : int;
  rpc : Kona_rdma.Rpc.t option;
  (* slab-grain translation: VFMem slab index -> slab *)
  by_slab_index : (int, Slab.t) Hashtbl.t;
  mutable slab_list : Slab.t list;
  mutable round_trips : int;
}

let create ?(batch = 4) ?rpc ~controller () =
  assert (batch > 0);
  {
    controller;
    batch;
    rpc;
    by_slab_index = Hashtbl.create 64;
    slab_list = [];
    round_trips = 0;
  }

let slab_bytes t = Rack_controller.slab_size t.controller
let slab_index t addr = addr / slab_bytes t

let slab_of t ~vaddr = Hashtbl.find_opt t.by_slab_index (slab_index t vaddr)

let allocate_batch t ~first_index =
  (* One controller round-trip provisions [batch] consecutive slabs,
     starting at the first unbacked index >= first_index. *)
  t.round_trips <- t.round_trips + 1;
  let serve () =
    let allocated = ref 0 in
    let index = ref first_index in
    while !allocated < t.batch do
      if not (Hashtbl.mem t.by_slab_index !index) then begin
        let slab =
          Rack_controller.allocate_slab t.controller ~vaddr:(!index * slab_bytes t)
        in
        Hashtbl.add t.by_slab_index !index slab;
        t.slab_list <- slab :: t.slab_list;
        incr allocated
      end;
      incr index
    done
  in
  match t.rpc with
  | None -> serve ()
  | Some rpc ->
      (* request: one allocation descriptor; response: [batch] slab records *)
      Kona_rdma.Rpc.call rpc ~request_bytes:64 ~response_bytes:(t.batch * 64) serve ()

let ensure_backed t ~addr ~len =
  assert (len > 0);
  let first = slab_index t addr and last = slab_index t (addr + len - 1) in
  for index = first to last do
    if not (Hashtbl.mem t.by_slab_index index) then allocate_batch t ~first_index:index
  done

let translate t ~vaddr =
  Option.map
    (fun slab -> (slab.Slab.node, Slab.remote_of_vaddr slab ~vaddr))
    (slab_of t ~vaddr)

let slabs t = List.rev t.slab_list
let controller_round_trips t = t.round_trips

let iter_backed_pages t f =
  List.iter
    (fun (slab : Slab.t) ->
      let pages = slab.Slab.size / Units.page_size in
      let first_page = slab.Slab.vaddr / Units.page_size in
      for i = 0 to pages - 1 do
        f ~vpage:(first_page + i)
          ~node:slab.Slab.node
          ~remote_addr:(slab.Slab.remote_addr + (i * Units.page_size))
      done)
    (slabs t)
