open Kona_util
module Tracer = Kona_telemetry.Tracer

type t = {
  log : Cl_log.t;
  rm : Resource_manager.t;
  read_local : addr:int -> len:int -> string;
  snoop : page:int -> int list;
  tracer : Tracer.t option;
  mutable pages_evicted : int;
  mutable clean_pages : int;
  mutable lines_evicted : int;
  mutable snooped_dirty_lines : int;
}

let create ?tracer ~log ~rm ~read_local ~snoop () =
  {
    log;
    rm;
    read_local;
    snoop;
    tracer;
    pages_evicted = 0;
    clean_pages = 0;
    lines_evicted = 0;
    snooped_dirty_lines = 0;
  }

let stage_run t ~run_addr ~lines =
  match Resource_manager.translate t.rm ~vaddr:run_addr with
  | None ->
      (* Every cached page came from a backed slab; an untranslatable line
         indicates runtime corruption. *)
      failwith (Printf.sprintf "Eviction_handler: no backing for %#x" run_addr)
  | Some (node, raddr) ->
      let data = t.read_local ~addr:run_addr ~len:(lines * Units.cache_line) in
      Cl_log.append_run t.log ~node ~raddr ~data;
      t.lines_evicted <- t.lines_evicted + lines

let evict t ~vpage ~dirty =
  let began = Clock.now (Cl_log.clock t.log) in
  let dirty = Bitmap.copy dirty in
  (* Snoop: lines of this page still modified inside CPU caches have not
     been written back yet; recall them and fold into the mask. *)
  List.iter
    (fun line_addr ->
      t.snooped_dirty_lines <- t.snooped_dirty_lines + 1;
      Bitmap.set dirty (Units.line_in_page line_addr))
    (t.snoop ~page:vpage);
  Cl_log.note_bitmap_scan t.log ~lines:Units.lines_per_page;
  let dirty_count = Bitmap.count dirty in
  if dirty_count = 0 then t.clean_pages <- t.clean_pages + 1
  else begin
    (* Contiguous dirty lines ship as single run entries (§2.2: dirty
       cache-line contiguity is paramount for network transfer). *)
    let page_base = vpage * Units.page_size in
    List.iter
      (fun (start, lines) ->
        stage_run t ~run_addr:(page_base + (start * Units.cache_line)) ~lines)
      (Bitmap.segments dirty)
  end;
  t.pages_evicted <- t.pages_evicted + 1;
  (match t.tracer with
  | Some tr ->
      Tracer.span tr "evict.page"
        ~dur_ns:(Clock.now (Cl_log.clock t.log) - began)
        ~args:[ ("vpage", vpage); ("dirty_lines", dirty_count) ]
  | None -> ());
  dirty_count > 0

let write_line_through t ~line_addr =
  stage_run t ~run_addr:line_addr ~lines:1;
  Cl_log.flush t.log;
  match t.tracer with
  | Some tr -> Tracer.instant tr "evict.orphan_write_through" ~args:[ ("addr", line_addr) ]
  | None -> ()

let pages_evicted t = t.pages_evicted
let clean_pages t = t.clean_pages
let lines_evicted t = t.lines_evicted
let snooped_dirty_lines t = t.snooped_dirty_lines
