open Kona_util

type t = {
  log : Cl_log.t;
  rm : Resource_manager.t;
  read_local : addr:int -> len:int -> string;
  snoop : page:int -> int list;
  mutable pages_evicted : int;
  mutable clean_pages : int;
  mutable lines_evicted : int;
  mutable snooped_dirty_lines : int;
}

let create ~log ~rm ~read_local ~snoop () =
  {
    log;
    rm;
    read_local;
    snoop;
    pages_evicted = 0;
    clean_pages = 0;
    lines_evicted = 0;
    snooped_dirty_lines = 0;
  }

let stage_run t ~run_addr ~lines =
  match Resource_manager.translate t.rm ~vaddr:run_addr with
  | None ->
      (* Every cached page came from a backed slab; an untranslatable line
         indicates runtime corruption. *)
      failwith (Printf.sprintf "Eviction_handler: no backing for %#x" run_addr)
  | Some (node, raddr) ->
      let data = t.read_local ~addr:run_addr ~len:(lines * Units.cache_line) in
      Cl_log.append_run t.log ~node ~raddr ~data;
      t.lines_evicted <- t.lines_evicted + lines

let evict t ~vpage ~dirty =
  let dirty = Bitmap.copy dirty in
  (* Snoop: lines of this page still modified inside CPU caches have not
     been written back yet; recall them and fold into the mask. *)
  List.iter
    (fun line_addr ->
      t.snooped_dirty_lines <- t.snooped_dirty_lines + 1;
      Bitmap.set dirty (Units.line_in_page line_addr))
    (t.snoop ~page:vpage);
  Cl_log.note_bitmap_scan t.log ~lines:Units.lines_per_page;
  if Bitmap.is_empty dirty then t.clean_pages <- t.clean_pages + 1
  else begin
    (* Contiguous dirty lines ship as single run entries (§2.2: dirty
       cache-line contiguity is paramount for network transfer). *)
    let page_base = vpage * Units.page_size in
    List.iter
      (fun (start, lines) ->
        stage_run t ~run_addr:(page_base + (start * Units.cache_line)) ~lines)
      (Bitmap.segments dirty)
  end;
  t.pages_evicted <- t.pages_evicted + 1

let write_line_through t ~line_addr =
  stage_run t ~run_addr:line_addr ~lines:1;
  Cl_log.flush t.log

let pages_evicted t = t.pages_evicted
let clean_pages t = t.clean_pages
let lines_evicted t = t.lines_evicted
let snooped_dirty_lines t = t.snooped_dirty_lines
