(** The Dirty Data Tracker: consumes cache-line writebacks observed by the
    VFMem directory and records them, at cache-line granularity, in the
    owning FMem frame's dirty bitmap — the track-local-data hardware
    primitive (§4.2).  No page faults, no write protection.

    A writeback can race with an FMem eviction of its page (the line left
    the CPU after the page left FMem); such orphan lines are handed to the
    [on_orphan] callback, which writes them through to remote memory
    directly. *)

type t

val create :
  fmem:Kona_coherence.Fmem.t -> on_orphan:(line_addr:int -> unit) -> unit -> t

val on_writeback : t -> addr:int -> unit
(** [addr] is the 64B-aligned VFMem address of a written-back line. *)

val lines_tracked : t -> int
val orphans : t -> int
