(** KTracker (§5, Fig. 6): the emulator for cache-line dirty-data tracking.

    The real tool ptrace-attaches to a process, snapshots its mapped pages,
    and diffs the snapshots each window to find dirty cache-lines; here the
    same snapshot-diff runs against the instrumented heap's backing store.
    Like the real tool (and unlike byte-exact tracking), a window that
    rewrites a byte with the value it already had is {e not} seen as dirty.

    It also models the baseline the paper compares against — 4KB
    write-protection — by counting, per window, the write-protection faults
    (first write to each page) and the TLB invalidations needed to re-arm
    protection, turning them into modeled run times for Fig. 10. *)

type t

val create : heap:Kona_workloads.Heap.t -> unit -> t

val sink : t -> Kona_trace.Access.t -> unit
(** Observe one access: snapshots a page on its first touch in the current
    window, and counts write-protect faults (first write per page per
    window). *)

val close_window : t -> window:int -> unit
(** Diff touched pages against their snapshots at cache-line granularity;
    refresh snapshots. *)

type window_report = {
  window : int;
  dirty_lines : int;  (** lines whose content changed (snapshot diff) *)
  dirty_pages : int;  (** pages with at least one changed line *)
  wp_faults : int;  (** write-protect faults the 4KB baseline would take *)
  tlb_invalidations : int;  (** invalidations to re-arm protection *)
}

val windows : t -> window_report list
(** Closed windows, oldest first. *)

val amp_ratio : window_report -> float
(** 4KB-tracked dirty bytes over cache-line-tracked dirty bytes: the Fig. 9
    y-axis.  0 for windows with no dirty data. *)

val wp_overhead_ns : cost:Cost_model.t -> t -> int
(** Total modeled fault + invalidation time the write-protection baseline
    spends across the run (zero for coherence-based tracking). *)

val pml_overhead_ns : cost:Cost_model.t -> t -> int
(** The same run's tracking overhead under Intel Page Modification Logging
    (§8): no write faults, but the hypervisor drains a 512-entry log of
    dirty-page GPAs.  Far cheaper than write protection — yet PML stays at
    page granularity, so it fixes none of the dirty-data amplification
    Kona's cache-line tracking removes. *)

val speedup_percent : cost:Cost_model.t -> app_ns:int -> t -> float
(** Fig. 10: speedup of coherence-based tracking over write-protection,
    given the application's base run time [app_ns]:
    100 * (T_wp - T_base) / T_base, where T_wp = app_ns + overhead and
    T_base = app_ns. *)
