open Kona_util

type t = {
  rm : Resource_manager.t;
  free_lists : (int, int list ref) Hashtbl.t;
  mutable brk : int;
  mutable allocated : int;
  mutable freed : int;
}

let create ~rm () =
  { rm; free_lists = Hashtbl.create 32; brk = Units.page_size; allocated = 0; freed = 0 }

let malloc t ?(align = 8) n =
  if n <= 0 then invalid_arg "Alloc_lib.malloc: size must be positive";
  let size = Units.align_up n ~alignment:align in
  t.allocated <- t.allocated + size;
  match Hashtbl.find_opt t.free_lists size with
  | Some ({ contents = addr :: rest } as cell) when addr mod align = 0 ->
      cell := rest;
      addr
  | _ ->
      let addr = Units.align_up t.brk ~alignment:align in
      t.brk <- addr + size;
      Resource_manager.ensure_backed t.rm ~addr ~len:size;
      addr

let free t ~addr ~len =
  let size = Units.align_up len ~alignment:8 in
  t.freed <- t.freed + size;
  match Hashtbl.find_opt t.free_lists size with
  | Some cell -> cell := addr :: !cell
  | None -> Hashtbl.add t.free_lists size (ref [ addr ])

let allocated_bytes t = t.allocated
let live_bytes t = t.allocated - t.freed
