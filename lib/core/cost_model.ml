type t = {
  l1_ns : float;
  l2_ns : float;
  llc_ns : float;
  cmem_ns : float;
  fmem_ns : float;
  minor_fault_ns : int;
  userfault_extra_ns : int;
  tlb_invalidate_ns : int;
  tlb_walk_ns : int;
  remote_fault_infiniswap_ns : int;
  remote_fault_legoos_ns : int;
  eviction_infiniswap_ns : int;
  mce_recovery_ns : int;
  pml_drain_ns : int;
}

let default =
  {
    l1_ns = 1.5;
    l2_ns = 5.0;
    llc_ns = 20.0;
    cmem_ns = 90.0;
    fmem_ns = 140.0;
    minor_fault_ns = 4_500;
    userfault_extra_ns = 3_500;
    tlb_invalidate_ns = 1_200;
    tlb_walk_ns = 100;
    remote_fault_infiniswap_ns = 40_000;
    remote_fault_legoos_ns = 10_000;
    eviction_infiniswap_ns = 32_000;
    mce_recovery_ns = 50_000;
    pml_drain_ns = 8_000;
  }

type system_profile = { system : string; dram_cache_ns : float; remote_ns : float }

let rdma_page_read_ns rdma =
  float_of_int (Kona_rdma.Cost.batch_ns rdma ~sizes:[ Kona_util.Units.page_size ])

let kona ?(rdma = Kona_rdma.Cost.default) t =
  { system = "Kona"; dram_cache_ns = t.fmem_ns; remote_ns = rdma_page_read_ns rdma }

let kona_main ?(rdma = Kona_rdma.Cost.default) t =
  { system = "Kona-main"; dram_cache_ns = t.cmem_ns; remote_ns = rdma_page_read_ns rdma }

let kona_vm ?(rdma = Kona_rdma.Cost.default) t =
  {
    system = "Kona-VM";
    dram_cache_ns = t.cmem_ns;
    remote_ns =
      rdma_page_read_ns rdma
      +. float_of_int (t.minor_fault_ns + t.userfault_extra_ns + t.tlb_walk_ns);
  }

let legoos t =
  {
    system = "LegoOS";
    dram_cache_ns = t.cmem_ns;
    remote_ns = float_of_int t.remote_fault_legoos_ns;
  }

let infiniswap t =
  {
    system = "Infiniswap";
    dram_cache_ns = t.cmem_ns;
    remote_ns = float_of_int t.remote_fault_infiniswap_ns;
  }
