type t = {
  degree : int;
  mirrors : (int, Memory_node.t list) Hashtbl.t; (* primary id -> mirrors *)
}

let create ~degree ~controller =
  assert (degree >= 0);
  let mirrors = Hashtbl.create 8 in
  List.iter
    (fun primary ->
      let id = Memory_node.id primary in
      let copies =
        List.init degree (fun k ->
            Memory_node.create
              ~id:(1000 + (id * 10) + k)
              ~capacity:(Memory_node.capacity primary))
      in
      Hashtbl.replace mirrors id copies)
    (Rack_controller.nodes controller);
  { degree; mirrors }

let degree t = t.degree

let targets t ~node =
  match Hashtbl.find_opt t.mirrors node with Some l -> l | None -> []

let lines_replicated t =
  Hashtbl.fold
    (fun _ copies acc ->
      acc + List.fold_left (fun a m -> a + Memory_node.lines_received m) 0 copies)
    t.mirrors 0

let divergent_mirrors t ~controller =
  Hashtbl.fold
    (fun id copies acc ->
      match Rack_controller.node controller ~id with
      | primary ->
          let used = Memory_node.used primary in
          let reference =
            if used = 0 then "" else Memory_node.peek primary ~addr:0 ~len:used
          in
          List.fold_left
            (fun a mirror ->
              let copy =
                if used = 0 then "" else Memory_node.peek mirror ~addr:0 ~len:used
              in
              if copy <> reference then a + 1 else a)
            acc copies
      | exception Not_found -> acc + List.length copies)
    t.mirrors 0
