type t = {
  degree : int;
  controller : Rack_controller.t; (* the id mint — see fresh_replica_id *)
  mirrors : (int, Memory_node.t list) Hashtbl.t; (* primary id -> mirrors *)
  mutable failovers : int;
}

let create ~degree ~controller =
  assert (degree >= 0);
  let mirrors = Hashtbl.create 8 in
  List.iter
    (fun primary ->
      let id = Memory_node.id primary in
      let copies =
        List.init degree (fun _ ->
            Memory_node.create
              ~id:(Rack_controller.mint_backing_id controller)
              ~capacity:(Memory_node.capacity primary))
      in
      Hashtbl.replace mirrors id copies)
    (Rack_controller.nodes controller);
  { degree; controller; mirrors; failovers = 0 }

let degree t = t.degree

let targets t ~node =
  match Hashtbl.find_opt t.mirrors node with Some l -> l | None -> []

(* All replica ids come from the controller's mint: a rack-op node add
   and a re-replication can interleave arbitrarily without ever minting
   the same id (the old local counter at 2000 collided once rack-op adds
   pushed logical ids into its range). *)
let fresh_replica_id t = Rack_controller.mint_backing_id t.controller

let add_mirror t ~node mirror =
  Hashtbl.replace t.mirrors node (targets t ~node @ [ mirror ])

(* Scrap a half-cloned mirror: when the re-replication source dies before
   the clone completes, the incomplete copy must not stay promotable — a
   later failover onto it would serve partial data.  Any still-live full
   mirror holds everything the scrapped copy did. *)
let remove_mirror t ~node ~id =
  Hashtbl.replace t.mirrors node
    (List.filter (fun m -> Memory_node.id m <> id) (targets t ~node))

(* Promote the first live mirror of [node]: it inherits the crashed
   backing's reservation mark (so existing slab translations stay valid)
   and takes over the logical id at the controller.  Mirrors store data at
   primary-node offsets, so the promotion itself moves no bytes — only the
   re-replication that restores the degree does. *)
let failover t ~controller ~node =
  let crashed = Rack_controller.node controller ~id:node in
  let live, dead = List.partition Memory_node.alive (targets t ~node) in
  match live with
  | [] ->
      Hashtbl.replace t.mirrors node dead;
      None
  | promoted :: rest ->
      Memory_node.adopt_reservations promoted ~brk:(Memory_node.used crashed);
      Rack_controller.replace_node controller ~id:node ~node:promoted;
      Hashtbl.replace t.mirrors node rest;
      t.failovers <- t.failovers + 1;
      Some promoted

(* A crash target that is not a controller-registered primary may be one
   of our mirrors: fail-stop it, drop it from its list, and report which
   primary lost a replica so the caller can re-replicate. *)
let crash_mirror t ~id =
  Hashtbl.fold
    (fun primary copies acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match List.find_opt (fun m -> Memory_node.id m = id) copies with
          | Some m ->
              Memory_node.crash m;
              Hashtbl.replace t.mirrors primary
                (List.filter (fun c -> Memory_node.id c <> id) copies);
              Some primary
          | None -> None))
    t.mirrors None

(* Every live copy of logical node [node]'s data, primary first — the
   scrubber's repair-source pool. *)
let live_copies t ~controller ~node =
  let primary =
    match Rack_controller.node controller ~id:node with
    | p when Memory_node.alive p -> [ p ]
    | _ -> []
    | exception Invalid_argument _ -> []
  in
  primary @ List.filter Memory_node.alive (targets t ~node)

let failovers t = t.failovers

let lines_replicated t =
  Hashtbl.fold
    (fun _ copies acc ->
      acc + List.fold_left (fun a m -> a + Memory_node.lines_received m) 0 copies)
    t.mirrors 0

let divergent_mirrors t ~controller =
  Hashtbl.fold
    (fun id copies acc ->
      match Rack_controller.node controller ~id with
      | primary when Memory_node.alive primary ->
          let used = Memory_node.used primary in
          let reference =
            if used = 0 then "" else Memory_node.peek primary ~addr:0 ~len:used
          in
          List.fold_left
            (fun a mirror ->
              (* A crashed mirror is a lost replica, not a divergent one. *)
              if not (Memory_node.alive mirror) then a
              else
                let copy =
                  if used = 0 then "" else Memory_node.peek mirror ~addr:0 ~len:used
                in
                if copy <> reference then a + 1 else a)
            acc copies
      | _ ->
          (* Primary crashed with no promoted replacement: its mirrors
             cannot be checked against anything. *)
          acc
      | exception Invalid_argument _ -> acc + List.length copies)
    t.mirrors 0
