(** The cache-line eviction log (§4.4 "Evicting dirty data"): a FaRM-style
    ring-buffer software log that aggregates dirty cache-lines — contiguous
    or not, even from different pages — into RDMA-registered buffers, so a
    whole batch ships as a single large RDMA write per memory node.

    Each log entry is an 8-byte destination address plus a {e run} of one
    or more contiguous dirty cache-lines: runs coalesce, so a fully dirty
    page costs one entry (this is why Kona is "on par when the whole page
    is dirty", Fig. 11a).  The per-flush time decomposes exactly as
    Fig. 11c: scanning the dirty bitmap, copying lines into the log buffer,
    the RDMA write, and waiting for the remote log receiver's
    acknowledgment. *)

type t

val header_bytes : int
(** 8: per-entry destination address. *)

val entry_bytes : int
(** Wire size of a single-line entry (72); longer runs cost
    [header_bytes + 64 * lines]. *)

val create :
  ?capacity:int ->
  ?stream_base:int ->
  ?extra_targets:(node:int -> Memory_node.t list) ->
  ?tracer:Kona_telemetry.Tracer.t ->
  qp:Kona_rdma.Qp.t ->
  cost:Kona_rdma.Cost.t ->
  resolve:(node:int -> Memory_node.t) ->
  unit ->
  t
(** [capacity] in cache-lines per node buffer (default 512; ~36KB logs).
    [resolve] maps node ids to their (simulated) hosts; [extra_targets]
    supplies replica mirrors — each flush is posted to the primary and all
    mirrors in one linked batch, and the (parallel) acknowledgments are
    awaited together (§4.5).  [tracer] receives a [cllog.flush_node] event
    per shipped batch and a [cllog.fence] span per synchronous flush.

    [stream_base] (default 0) offsets the sequencer stream ids this log
    stamps shipments with ([stream_base + node]): in a multi-tenant rack
    each tenant gets a disjoint base, so the per-stream Rx sequencers at
    shared memory nodes never see two tenants interleaved in one sequence
    space. *)

val clock : t -> Kona_util.Clock.t
(** The background (eviction-path) clock the log charges to. *)

(** {2 Integrity wiring (PR 4)}

    Every shipment carries a [(stream, epoch, seq)] stamp (stream = the
    destination's logical node id) and per-line CRC32C values computed
    when the lines were staged; the receiving {!Memory_node} classifies
    the stamp and verifies every line before applying.  The CRC pass is
    folded into the copy-into-log memcpy charge — it touches the same
    bytes in the same loop. *)

val set_inject :
  t -> (targets:int -> Kona_faults.Injector.delivery_fault option) -> unit
(** Install the per-shipment corruption decision hook (torn-write,
    bit-flip, dup-deliver).  At most one copy per shipment is tampered
    per category; dup'd shipments are replayed to the primary, with
    their original stamp, at the next flush touching that node. *)

val set_on_report :
  t -> (node:int -> target:Memory_node.t -> Memory_node.report -> unit) -> unit
(** Observe every delivery's {!Memory_node.report} (quarantine, detection
    counters); called after the receiver classified and applied it. *)

val set_on_flip : t -> (target:Memory_node.t -> addr:int -> fresh:bool -> unit) -> unit
(** Observe every armed at-rest bit flip ([fresh] = the line verified
    clean beforehand) — the oracle's arming registry. *)

val set_gate : t -> (node:int -> fire:(unit -> unit) -> bool) -> unit
(** Install the partition gate, consulted at each delivery's completion
    time with the {e physical} target id.  Returning [true] means the
    gate captured [fire]: the runtime defers the delivery (stamp intact)
    until the partition heals, at which point a fenced target rejects it
    as stale — the split-brain write path. *)

val set_stale_filter : t -> (node:int -> addr:int -> data:string -> bool) -> unit
(** Install the stale-writeback filter, consulted per cache-line at each
    delivery's completion time.  Returning [true] drops that line: under
    multi-writer coherence, an eviction staged before the directory
    revoked the holder's grant can deliver {e after} the line's next
    owner wrote back a newer value, and the home resolves the race by
    NACKing the stale copy (runs split so fresh lines still land).
    Without a filter the delivery path is unchanged. *)

val stale_lines : t -> int
(** Cache-lines dropped by the stale-writeback filter. *)

val bump_epoch : t -> unit
(** Start a new delivery epoch (called after failover): stragglers
    stamped with the old epoch are rejected as stale by receivers. *)

val advance_epoch : t -> to_:int -> unit
(** Adopt the rack-global fencing epoch (monotone no-op when already at
    or past it): a membership-triggered failover anywhere in the rack
    broadcasts its epoch to every tenant's sender. *)

val epoch : t -> int

val append_run : t -> node:int -> raddr:int -> data:string -> unit
(** Stage one run of contiguous dirty cache-lines ([data] length must be a
    positive multiple of 64) bound for [node]/[raddr]; charges the
    copy-into-log cost (one memcpy per run) and auto-flushes the node's
    buffer when full. *)

val note_bitmap_scan : t -> lines:int -> unit
(** Charge (and attribute) the dirty-bitmap scan the eviction handler just
    performed while collecting lines. *)

val flush : t -> unit
(** Fence: ship all staged entries — one RDMA write per destination node,
    coalesced under a {e single} doorbell across nodes — wait for every
    outstanding log write to complete (which fires their deliveries into
    the memory nodes), plus the final receiver acknowledgment.  The ack
    round-trip is charged only when something shipped since the previous
    fence: an empty fence advances the clock by zero.  Auto-flushes
    triggered by [append_run] are asynchronous — their acks are hidden by
    continued staging, as in the paper, and their bytes become visible at
    the memory node only once the clock reaches the write's completion
    time. *)

val lines_logged : t -> int
val flushes : t -> int

val appends : t -> int
(** Runs staged via [append_run]. *)

val payload_bytes : t -> int
(** Application cache-line bytes staged into the log. *)

val wire_bytes : t -> int
(** Bytes shipped over RDMA for flushed batches, headers and replica copies
    included. *)

val overhead_bytes : t -> int
(** [wire_bytes - payload_bytes] floored at zero while a batch is staged:
    the log's own dirty-data amplification in bytes. *)

val doorbell_batches : t -> int
(** Linked posts issued (auto-flushes plus fence-coalesced batches). *)

val doorbell_wqes : t -> int
(** WQEs shipped across all doorbells; [doorbell_wqes /
    doorbell_batches] is the mean doorbell batch size. *)

val doorbell_batch_peak : t -> int
(** Largest number of WQEs ever coalesced under one doorbell. *)

val lost_deliveries : t -> int
(** Log writes whose destination node had crashed by completion time.
    With mirrors configured the data survives on them; without, this is
    data loss and the runtime reports degradation. *)

val lost_lines : t -> int
(** Cache-lines carried by lost deliveries. *)

val breakdown_ns : t -> (string * int) list
(** [("bitmap", ns); ("copy", ns); ("rdma", ns); ("ack", ns)] — Fig. 11c.
    Phase attribution: bitmap and copy are synchronous CPU time; rdma is
    doorbell and send-window time plus the fence's completion wait; ack is
    the unhidden fence acknowledgment.  Every nanosecond charged to the
    log's (background) clock lands in exactly one phase, so the phases sum
    to the log's background-clock contribution. *)
