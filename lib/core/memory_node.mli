(** A disaggregated memory node: a dumb byte store serving one-sided RDMA
    reads/writes, plus the one piece of near-data compute Kona needs — the
    {e cache-line log receiver} thread that unpacks aggregated dirty
    cache-lines and scatters them to their home addresses (§4.4).

    Since PR 4 the node also keeps a per-cache-line CRC32C table (the
    software stand-in for the FPGA's per-line ECC): trusted writes record
    checksums, the log receiver verifies every delivered line against the
    CRC computed at staging before applying it, and deliveries carry
    (stream, epoch, seq) stamps so replays and gaps are classified
    instead of applied blindly. *)

type t

exception Crashed of int
(** Raised (with the node id) by every data-path operation on a crashed
    node. *)

exception Fenced of int
(** Raised (with the node id) by the trusted write path on a fenced
    store: a displaced ex-primary must not accept new bytes. *)

val create : id:int -> capacity:int -> t
val id : t -> int
val capacity : t -> int
val used : t -> int
val free_bytes : t -> int

(** {2 Failure state (§4.5, failure mode 3)}

    A crash is fail-stop: the node's data becomes unreachable, while its
    {e metadata} ([id]/[capacity]/[used]) stays readable — the rack
    controller tracks reservations, and failover needs them to promote a
    mirror. *)

val alive : t -> bool
val crash : t -> unit

(** {2 Fencing (split-brain prevention)}

    When membership declares a node dead and fails over, the displaced
    store is {e fenced} with the new configuration's fencing epoch.  A
    fenced store may still be alive behind a partition — the false-
    positive case — so its data paths reject rather than trust:
    shipments stamped below the fencing epoch (and unstamped ones) are
    dropped whole and counted in [fenced_rejects]; the trusted [write]
    path raises {!Fenced}; any lines a stamped-current shipment does
    land on a fenced store are counted in [post_fence_writes] (the
    no-post-fence-write invariant checks it stays 0). *)

val set_fence : t -> epoch:int -> unit
(** Fence at [epoch]; monotone (a lower epoch never unfences). *)

val fenced : t -> bool
val fence_epoch : t -> int option
val fenced_rejects : t -> int
(** Stale shipments rejected by the fence — one per delivery attempt. *)

val post_fence_writes : t -> int
(** Lines applied to this store while fenced (should always be 0). *)

val reserve : t -> size:int -> int
(** Carve out a slab-sized region; returns its node-local base offset.
    Raises [Out_of_memory] if the node is full. *)

val adopt_reservations : t -> brk:int -> unit
(** Failover bookkeeping: a promoted mirror (or a fresh replica) inherits
    the crashed primary's reservation high-water mark, so existing slab
    translations stay valid and future [reserve]s do not overlap them.
    Never shrinks. *)

(** {2 Data-path operations (invoked by delivered RDMA verbs)} *)

val write : t -> addr:int -> data:string -> unit
(** Trusted write: stores the bytes and records fresh CRCs for every
    line the write overlaps.  This is also the repair primitive — a
    scrub repair is a [write] of a clean replica's line. *)

val read : t -> addr:int -> len:int -> string

(** {2 Cache-line log receiver} *)

type log_entry = { addr : int; data : string; crcs : int array }
(** [data] is a run of one or more whole cache-lines (length a positive
    multiple of 64, [addr] line-aligned): the log aggregates contiguous
    dirty lines into single entries.  [crcs] holds one CRC32C per line,
    computed at staging time from the sender's heap — the receiver
    verifies the payload against them before applying. *)

val entry : addr:int -> data:string -> log_entry
(** Build an entry, computing its per-line CRCs. *)

type delivery = { stream : int; epoch : int; seq : int }
(** Ordering stamp carried by a CL-log shipment (see
    {!Kona_integrity.Sequencer}). *)

type report = {
  verdict : Kona_integrity.Sequencer.Rx.verdict;
  applied_lines : int;  (** lines verified and scattered to the store *)
  rejected : int list;
      (** line addresses whose payload failed its wire CRC (torn write):
          the store keeps its previous, still-consistent contents *)
  healed : int list;
      (** line addresses that were corrupt at rest (recorded CRC did not
          match the store) and have now been overwritten with verified
          data — an at-rest flip healed before the scrubber saw it *)
}

val receive_log : ?delivery:delivery -> t -> log_entry list -> report
(** Unpack a received CL log.  With a [delivery] stamp the shipment is
    first classified: [Duplicate]/[Stale_epoch] shipments are dropped
    whole (nothing applied); [Ok]/[Gap _] shipments are applied
    line-by-line, each line verified against its wire CRC first.  The
    remote thread's work; cheap (a few reads, CRCs and writes per
    line). *)

val lines_received : t -> int
val logs_received : t -> int

val peek : t -> addr:int -> len:int -> string
(** Uninstrumented inspection for integrity checks. *)

(** {2 Integrity inspection and fault backdoors} *)

val verify_range : t -> addr:int -> len:int -> int list
(** Line addresses in [addr, addr+len) whose store contents no longer
    match their recorded CRC.  Works on crashed nodes (an offline fsck);
    never-written lines are skipped. *)

val corrupt_bit : t -> addr:int -> bit:int -> [ `Fresh | `Already_corrupt ]
(** Fault-injection backdoor: flip bit [bit] (0..511) of the cache line
    at line-aligned [addr].  Returns [`Fresh] when the line verified
    clean beforehand (a new detectable corruption was armed),
    [`Already_corrupt] otherwise. *)
