(** A disaggregated memory node: a dumb byte store serving one-sided RDMA
    reads/writes, plus the one piece of near-data compute Kona needs — the
    {e cache-line log receiver} thread that unpacks aggregated dirty
    cache-lines and scatters them to their home addresses (§4.4). *)

type t

exception Crashed of int
(** Raised (with the node id) by every data-path operation on a crashed
    node. *)

val create : id:int -> capacity:int -> t
val id : t -> int
val capacity : t -> int
val used : t -> int
val free_bytes : t -> int

(** {2 Failure state (§4.5, failure mode 3)}

    A crash is fail-stop: the node's data becomes unreachable, while its
    {e metadata} ([id]/[capacity]/[used]) stays readable — the rack
    controller tracks reservations, and failover needs them to promote a
    mirror. *)

val alive : t -> bool
val crash : t -> unit

val reserve : t -> size:int -> int
(** Carve out a slab-sized region; returns its node-local base offset.
    Raises [Out_of_memory] if the node is full. *)

val adopt_reservations : t -> brk:int -> unit
(** Failover bookkeeping: a promoted mirror (or a fresh replica) inherits
    the crashed primary's reservation high-water mark, so existing slab
    translations stay valid and future [reserve]s do not overlap them.
    Never shrinks. *)

(** {2 Data-path operations (invoked by delivered RDMA verbs)} *)

val write : t -> addr:int -> data:string -> unit
val read : t -> addr:int -> len:int -> string

(** {2 Cache-line log receiver} *)

type log_entry = { addr : int; data : string }
(** [data] is a run of one or more whole cache-lines (length a positive
    multiple of 64): the log aggregates contiguous dirty lines into single
    entries. *)

val receive_log : t -> log_entry list -> unit
(** Unpack a received CL log: scatter each entry to its address.  The
    remote thread's work; cheap (a few reads and writes per line). *)

val lines_received : t -> int
val logs_received : t -> int

val peek : t -> addr:int -> len:int -> string
(** Uninstrumented inspection for integrity checks. *)
