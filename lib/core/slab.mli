(** Slabs: the coarse allocation unit between compute nodes and the rack
    controller (§4.1).  A slab is a contiguous, page-aligned range of a
    memory node's store, mapped 1:1 onto a contiguous range of the
    application's VFMem address space. *)

type t = {
  id : int;
  node : int;  (** owning memory node id *)
  vaddr : int;  (** base VFMem (application) address *)
  remote_addr : int;  (** base offset within the node's store *)
  size : int;  (** bytes; page-aligned *)
}

val contains : t -> addr:int -> bool

val remote_of_vaddr : t -> vaddr:int -> int
(** Translate an application address inside this slab to the node-local
    offset.  Raises [Invalid_argument] if outside the slab. *)

val pp : Format.formatter -> t -> unit
