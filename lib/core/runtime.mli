(** KLib: the Kona application runtime (§4.1).

    Wires the simulated CPU cache hierarchy's fill/writeback streams to the
    caching handler, dirty data tracker and eviction handler, charging
    virtual time to two clocks:

    - the {e application clock}: cache-level latencies, FMem accesses, and
      synchronous remote fetches (no page faults — this is the point);
    - the {e background clock}: eviction work (bitmap scans, log copies,
      RDMA writes, acks), off the critical path.

    Both share one NIC, so heavy eviction traffic delays fetches — the
    contention visible in Fig. 7's multi-threaded runs.

    The application heap remains the single byte store (as in the paper's
    instrumentation-based emulation, §5); the runtime moves real bytes only
    outward, into the memory nodes, which lets tests verify the end-to-end
    invariant: after [drain], remote memory equals the application's
    heap for every backed page. *)

type config = {
  cost : Cost_model.t;
  rdma : Kona_rdma.Cost.t;
  cache_config : Kona_cachesim.Hierarchy.config;
  fmem_pages : int;  (** local DRAM cache capacity, in 4KB frames *)
  fmem_assoc : int;
  fmem_policy : Kona_coherence.Fmem.policy;
  fetch_block : int;  (** bytes fetched per FMem miss (multiple of 4KB) *)
  log_capacity : int;  (** CL-log entries per memory node before auto-flush *)
  replicas : int;  (** eviction replication degree (§4.5); 0 = off *)
  mce_threshold_ns : int option;
      (** raise a machine-check exception when a fetch exceeds this latency
          (coherence-protocol timeout under network outage, §4.5);
          [None] = never *)
  prefetch : bool;
      (** stream-prefetch sequential remote pages on the background queue
          pair — the prefetcher-crosses-page-faults advantage (§3) *)
  sq_depth : int option;
      (** per-QP send-queue window: at most this many WQEs outstanding;
          [post] stalls the caller until a slot frees.  [None] = unbounded *)
  signal_interval : int;
      (** selective signaling on the background queue pairs: of the WQEs
          requesting a completion, only every Nth raises a CQE.  1 = every
          one (default).  The demand-fetch QP always signals — its fetches
          are synchronous *)
  faults : Kona_faults.Fault_spec.t;
      (** fault-injection plan (§4.5): scheduled node crashes and link
          flaps plus probabilistic WQE loss/delay and RPC timeouts.  [[]]
          (default) = no injector, zero overhead *)
  fault_seed : int;
      (** seed for the injector's splitmix streams; the same seed and plan
          reproduce bit-identical fault sequences *)
  arm_injector : bool;
      (** create the injector even when [faults = []], so clauses can be
          armed mid-run with {!arm_fault} (scenario engine).  The decision
          streams are seeded at create, independent of what gets armed, so
          determinism is preserved.  Off by default *)
  check_replicas : bool;
      (** debug invariant: after every eviction batch (and after [drain]),
          fence the eviction QP and [failwith] if any live mirror diverges
          from its primary.  Expensive; off by default *)
  scrub_interval_ns : int option;
      (** background scrub-and-repair: walk every backed FMem page's
          at-rest checksums once per interval (virtual background clock),
          repairing corrupt lines from live replicas.  [None] = off *)
  scrub_budget : int;
      (** pages verified per scrubber tick once a sweep is due — bounds
          the background-clock burst each poll (default 8) *)
  verify_checksums : bool;
      (** verify per-line checksums of the remote page on every
          synchronous demand fetch (and re-read once when a stale read is
          detected), charging one page memcpy to the app clock.  Off by
          default — the paranoid read path *)
  tenant : string option;
      (** multi-tenant identity: slab allocations are charged against this
          tenant's quota at the rack controller
          ({!Rack_controller.Quota_exceeded} past the cap).  [None]
          (default) = unmetered *)
  stream_base : int;
      (** offset for CL-log sequencer stream ids ([stream_base + node]):
          tenants sharing memory nodes need disjoint bases so the
          receivers' per-stream sequencers never interleave two tenants in
          one sequence space.  Default 0 *)
  backoff : Kona_util.Backoff.config;
      (** stack-wide retry/backoff policy: shapes the queue pairs'
          retransmission state machine and the control-path RPC
          timeout/resend loop from one knob set
          (default {!Kona_util.Backoff.default}) *)
  heartbeat_ns : int option;
      (** lease-based failure detection: each memory node heartbeats the
          membership tracker every interval (charged to the background
          clock).  A node whose lease expires is {e suspected}, then
          {e declared dead} — and only then does failover run, so a
          partitioned-but-alive node can be declared dead wrongly (the
          false-positive path that fencing must absorb).  [None]
          (default) = legacy omniscient detection: only an actual crash
          triggers failover, synchronously *)
  lease_ns : int;
      (** lease duration: a node is suspected when its last heartbeat is
          older than this, and declared dead at twice this age (default
          200 us).  Meaningful only with [heartbeat_ns] set *)
}

val default_config : config
(** 1024 FMem frames (4 MiB), 4-way, page-sized fetch, 512-entry log,
    no replication. *)

type t

val create :
  ?config:config ->
  ?nic:Kona_rdma.Nic.t ->
  ?hub:Kona_telemetry.Hub.t ->
  ?arbitrate:
    (node:int option -> op:Kona_rdma.Qp.op -> len:int -> now:int -> int) ->
  ?replication:Replication.t ->
  controller:Rack_controller.t ->
  read_local:(addr:int -> len:int -> string) ->
  unit ->
  t
(** [read_local] reads application memory (e.g. [Heap.peek_bytes]); it is
    the eviction data path.  Pass a shared [nic] to model multiple runtime
    threads contending for one adapter.

    [hub] attaches telemetry: the runtime installs its virtual clocks on the
    hub's tracer, hands the tracer to the fetch/eviction/log components, and
    registers the full metric namespace ([fetch.*], [fmem.*], [cllog.*],
    [qp.*{qp=...}], [cache.*{level=...}], [nic.*], ...) in the hub's
    registry.  Use one hub per runtime instance — registering two runtimes
    in one registry raises on the duplicate names (the rack passes each
    tenant a {!Kona_telemetry.Hub.scoped} view instead).

    [arbitrate] is installed on every queue pair this runtime creates (see
    {!Kona_rdma.Qp.create}): the rack's per-memory-node ingress schedulers
    use it to queue this tenant's traffic behind other tenants'.

    [replication] shares an externally created replication instance
    (multi-tenant rack): every tenant's CL-log shipments then target the
    same mirrors, so one node's failover is whole — it preserves all
    tenants' data.  Takes precedence over [config.replicas]. *)

val sink : t -> Kona_trace.Access.t -> unit
(** Feed one application access: runs the cache hierarchy, triggers
    fetches/tracking/eviction, and advances the clocks. *)

val drain : t -> unit
(** Write back every remaining dirty cache-line (CPU caches and FMem) and
    flush the CL log — a final msync.  After this, remote memory is
    byte-identical to the application's view. *)

val app_ns : t -> int
(** Application-clock time. *)

val bg_ns : t -> int
(** Background (eviction) clock time. *)

val elapsed_ns : t -> int
(** max(app, bg): the run's wall-clock analogue. *)

val stats : t -> (string * int) list
(** Flat counter dump across all components (fetches, FMem hit/miss,
    tracked lines, evicted pages/lines, log flushes, RDMA bytes, ...). *)

(** {2 Failure recovery (§4.5)}

    Fault handling is driven by the virtual clocks: [sink] and [drain]
    poll the injector for due node crashes.  A crashed primary is failed
    over to its first live mirror through a rack-controller RPC exchange
    (latency recorded in [failover.latency_ns]); the replication degree is
    then restored by an asynchronous background copy onto a fresh mirror
    ([recovery.latency_ns], [recovery.bytes]).  Without replicas the crash
    degrades the run instead of raising: lost CL-log deliveries are
    counted and {!degraded} reports the reason. *)

val recover_heap :
  t -> restore:(addr:int -> data:string -> unit) -> int * int
(** Compute-node crash recovery (failure mode 1): rebuild the application
    heap from remote memory.  Flushes the CL-log tail (the unacked dirty
    lines), then reads every backed page over batched RDMA and hands it to
    [restore] (e.g. [Heap.restore_page] of a fresh heap).  Pages on
    crashed, un-failed-over nodes are lost.  Returns
    [(pages_restored, pages_lost)] for this call; the duration lands in
    the [recovery.latency_ns] histogram. *)

val degraded : t -> string option
(** [Some reason] when the run lost data or a recovery path failed: a node
    crashed with no (live) replica, the failover RPC exhausted its
    retries, or — with replication off — CL-log writes were lost to a
    crashed node.  [None] means every injected fault was absorbed. *)

val node_crashes : t -> int
(** Node-crash faults handled (primaries and mirrors). *)

(** {2 Partition-tolerant membership (PR 9)}

    With [heartbeat_ns] set, failover is triggered by lease expiry — the
    detector cannot tell a crashed node from a partitioned one, so a
    node cut off longer than twice its lease is declared dead even when
    healthy (a {e false positive}).  Failover then fences the displaced
    store at a fresh rack-global epoch: when the partition heals, the
    deferred deliveries (captured by the CL-log partition gate, stamps
    intact) land on the fenced store and are rejected as stale — the
    split-brain writes are counted ([fencing.rejects]), never applied.
    Failover, re-replication and drain run as resumable tasks on an
    interruptible recovery queue, advanced one bounded step per fault
    poll (or explicitly via {!step_recovery}), so overlapping faults
    interleave with recovery instead of raising. *)

val membership : t -> Kona_membership.Membership.t option
(** Present when [config.heartbeat_ns] is set. *)

val partition_active : t -> id:int -> bool
(** Is physical node [id] currently inside a partition window? *)

val partitions_started : t -> int
(** Partition windows opened so far. *)

val deferred_pending : t -> int
(** Deliveries captured by the partition gate and not yet replayed. *)

val recovery_pending : t -> string list
(** Names of queued recovery tasks, in-flight head first. *)

val recovery_idle : t -> bool

val recovery_counters : t -> (string * int) list

val step_recovery :
  t -> [ `Idle | `Stepped of string | `Finished of string ]
(** Advance the in-flight recovery task one bounded unit — the rack
    engine's step loop drives recovery through this between ops. *)

val set_on_fence : t -> (epoch:int -> unit) -> unit
(** Observe every fencing epoch this runtime mints (one per membership
    failover): the rack broadcasts it to all tenants via
    {!adopt_fencing_epoch}. *)

val adopt_fencing_epoch : t -> epoch:int -> unit
(** Adopt a rack-global fencing epoch minted elsewhere (monotone no-op
    when already at or past it): this tenant's CL-log sender restamps
    subsequent shipments at the new epoch. *)

val track_node : t -> id:int -> unit
(** Start leasing physical node [id] (no-op without membership) — rack
    node-add ops register fresh nodes here. *)

val false_positives : t -> int
(** Nodes declared dead that later proved alive (0 without membership). *)

val declared_dead : t -> int

val fencing_rejects : t -> int
(** Stale shipments rejected by fenced stores, summed rack-wide. *)

val post_fence_writes : t -> int
(** Lines applied to fenced stores (the no-post-fence-write invariant
    requires 0), summed rack-wide. *)

val failover_latency : t -> Kona_util.Histogram.t
(** App-clock latency of each failover control-plane exchange. *)

val recovery_latency : t -> Kona_util.Histogram.t
(** Latency of each re-replication copy and each {!recover_heap} call. *)

(** {2 End-to-end data integrity (PR 4)}

    Every FMem page carries per-cache-line CRC32C checksums at the memory
    nodes, and every CL-log delivery is stamped with an (epoch, sequence)
    pair per destination stream.  Detection happens at three points: on
    delivery (wire-CRC rejects of torn lines, sequence-verdict drops of
    duplicated or stale shipments), on verified demand fetches
    ([verify_checksums]), and during background scrub sweeps
    ([scrub_interval_ns]).  Corrupt lines are quarantined and repaired
    from the first live replica holding a clean copy; a line with no
    clean copy anywhere marks the run {!degraded} and its page is
    excluded from byte-level oracles via {!unrepairable_pages}. *)

val integrity_counters : t -> (string * int) list
(** Canonical ordered dump of every [integrity.*], [seq.*] and [scrub.*]
    counter.  Two runs of the same (plan, seed) must produce identical
    lists — the soak harness's reproducibility check compares these
    bit-for-bit. *)

val unrepairable_pages : t -> int list
(** Virtual pages declared unrepairable (sorted, deduplicated): a corrupt
    line was found there and no live copy had a clean version.  Byte-level
    divergence oracles must exclude these pages. *)

val detect_latency : t -> Kona_util.Histogram.t
(** Virtual-time lag between a bit-flip landing and its detection
    ([integrity.detect_latency_ns]). *)

(** {2 Rack hooks (multi-tenant simulation)} *)

val set_on_fetch : t -> (vpage:int -> unit) -> unit
(** Observe every synchronous demand fetch (after verification): the rack
    registers shared-segment sharers with its rack-level directory here. *)

val set_on_evict : t -> (vpage:int -> dirty:bool -> unit) -> unit
(** Observe every page leaving FMem (capacity victims and [drain]
    writebacks), after its dirty lines shipped.  [dirty] = the page held
    dirty FMem lines.  The rack uses it to snoop remote readers when a
    shared-segment writer evicts. *)

val invalidate_page : t -> vpage:int -> unit
(** A remote writer recalled [vpage] (shared read-mostly segment): drop
    this tenant's local copy — CPU-cached lines are snooped and any dirty
    lines written back — so the next access re-fetches.  Counted in
    [coherence.invalidations]. *)

val invalidations_received : t -> int

val set_writeback_filter : t -> (node:int -> addr:int -> data:string -> bool) -> unit
(** Install the home-side stale-writeback judgment on this tenant's CL
    log ({!Cl_log.set_stale_filter}): under multi-writer coherence a
    writeback staged before the directory revoked the holder's grant can
    deliver after the line's next owner already wrote back a newer
    value, and the home drops exactly those lines. *)

val stale_writebacks : t -> int
(** Cache-lines the stale-writeback filter dropped at delivery. *)

val flush_log : t -> unit
(** Flush the CL log's staged buffers.  The migrator calls this before
    remapping: staged entries resolve (node, raddr) at append time and
    must land at the pre-move address. *)

val remap_page : t -> vpage:int -> node:int -> remote_addr:int -> unit
(** Retarget [vpage]'s translation at its new home ([remote_addr] is the
    page base on logical node [node]).  The caller must have copied the
    page bytes and replicas first and called {!flush_log}. *)

val post_bg_message :
  t -> node:int -> len:int -> deliver:(unit -> unit) -> unit
(** Post one background control message of [len] bytes to [node] on the
    eviction QP: it pays wire time, contends at the node's ingress
    scheduler ([arbitrate]), and [deliver] fires when the background clock
    reaches its completion — how the rack prices invalidation traffic. *)

(** {2 Component access (examples, tests, benches)} *)

val replication : t -> Replication.t option
(** Present when [config.replicas > 0]; mirrors can then be checked for
    divergence after [drain]. *)

val injector : t -> Kona_faults.Injector.t option
(** Present when [config.faults] is non-empty or [config.arm_injector]. *)

(** {2 Scenario-engine adapters}

    Mid-run op hooks for the autonomous scenario engine (lib/scenario):
    the same machinery fault plans trigger on the virtual clock, exposed
    as immediate, deterministic actions. *)

val crash_node : t -> id:int -> unit
(** Fail-stop [id] now: mark it crashed, run the failover control
    exchange for affected pages, re-replicate or degrade — exactly what
    a due [node-crash] plan clause does. *)

val force_scrub : t -> unit
(** Run one complete scrub sweep immediately (no-op when the runtime has
    no scrubber configured). *)

val arm_fault : t -> Kona_faults.Fault_spec.clause -> unit
(** Arm one more fault clause mid-run.  Probabilistic kinds combine with
    already-armed probabilities; [Link_flap] starts a NIC outage of the
    clause's duration now; [Node_crash] joins the crash calendar.
    @raise Invalid_argument when the runtime has no injector. *)

val controller : t -> Rack_controller.t
(** The rack controller passed at [create] (failover retargets logical
    node ids inside it). *)

val hub : t -> Kona_telemetry.Hub.t option
(** The telemetry hub passed at [create], if any. *)

val resource_manager : t -> Resource_manager.t
val fmem : t -> Kona_coherence.Fmem.t
val hierarchy : t -> Kona_cachesim.Hierarchy.t
val cl_log : t -> Cl_log.t
val directory : t -> Kona_coherence.Directory.t
