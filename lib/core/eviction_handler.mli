(** The Eviction Handler: given an FMem victim page, snoops the CPU caches
    for still-resident dirty lines of that page (the FPGA only learns of
    modifications at writeback, §4.4), merges them with the frame's dirty
    bitmap, and stages exactly the dirty cache-lines into the CL log.
    Clean pages are dropped silently.

    Runs on the background clock (the CL log's queue pair's clock): eviction
    is off the application's critical path unless the cache is full.  Log
    writes staged here are delivered completion-driven — the bytes reach
    the memory node when the background clock passes the write's completion
    time (driven by later posts, the {!Poller}, or the fence), subject to
    the queue pair's send-window backpressure. *)

type t

val create :
  ?tracer:Kona_telemetry.Tracer.t ->
  log:Cl_log.t ->
  rm:Resource_manager.t ->
  read_local:(addr:int -> len:int -> string) ->
  snoop:(page:int -> int list) ->
  unit ->
  t
(** [read_local] reads the application's memory (the data to ship);
    [snoop] flushes one page out of the CPU hierarchy and returns the
    addresses of lines that were dirty there.  [tracer] receives an
    [evict.page] span per victim (duration on the background clock) and an
    instant per orphan write-through. *)

val evict : t -> vpage:int -> dirty:Kona_util.Bitmap.t -> bool
(** Process one victim.  Returns [true] when the page shipped dirty lines
    (the frame's bitmap merged with lines snooped out of the CPU caches),
    [false] for a silently dropped clean page — the signal the rack layer
    uses to decide whether a shared-segment eviction must recall remote
    readers. *)

val write_line_through : t -> line_addr:int -> unit
(** Ship one orphan line immediately (dirty-tracker race path). *)

val pages_evicted : t -> int
val clean_pages : t -> int
val lines_evicted : t -> int
val snooped_dirty_lines : t -> int
