open Kona_util
module Qp = Kona_rdma.Qp
module Cost = Kona_rdma.Cost
module Tracer = Kona_telemetry.Tracer

let header_bytes = 8
let entry_bytes = header_bytes + Units.cache_line

type t = {
  capacity : int;
  qp : Qp.t;
  cost : Cost.t;
  resolve : node:int -> Memory_node.t;
  extra_targets : node:int -> Memory_node.t list;
  tracer : Tracer.t option;
  buffers : (int, Memory_node.log_entry list ref) Hashtbl.t; (* node -> staged, newest first *)
  staged : (int, int) Hashtbl.t; (* node -> count *)
  mutable lines_logged : int;
  mutable appends : int;
  mutable payload_bytes : int;
  mutable wire_bytes : int;
  mutable flushes : int;
  mutable unfenced_flushes : int; (* node batches shipped since the last fence *)
  mutable doorbell_batches : int;
  mutable doorbell_wqes : int;
  mutable doorbell_batch_peak : int;
  mutable lost_deliveries : int;
  mutable lost_lines : int;
  mutable bitmap_ns : int;
  mutable copy_ns : int;
  mutable rdma_ns : int;
  mutable ack_ns : int;
}

let create ?(capacity = 512) ?(extra_targets = fun ~node:_ -> []) ?tracer ~qp ~cost
    ~resolve () =
  assert (capacity > 0);
  {
    capacity;
    qp;
    cost;
    resolve;
    extra_targets;
    tracer;
    buffers = Hashtbl.create 4;
    staged = Hashtbl.create 4;
    lines_logged = 0;
    appends = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    flushes = 0;
    unfenced_flushes = 0;
    doorbell_batches = 0;
    doorbell_wqes = 0;
    doorbell_batch_peak = 0;
    lost_deliveries = 0;
    lost_lines = 0;
    bitmap_ns = 0;
    copy_ns = 0;
    rdma_ns = 0;
    ack_ns = 0;
  }

let clock t = Qp.clock t.qp

let charge t phase ns =
  Clock.advance (clock t) ns;
  match phase with
  | `Bitmap -> t.bitmap_ns <- t.bitmap_ns + ns
  | `Copy -> t.copy_ns <- t.copy_ns + ns
  | `Rdma -> t.rdma_ns <- t.rdma_ns + ns
  | `Ack -> t.ack_ns <- t.ack_ns + ns

let note_bitmap_scan t ~lines = charge t `Bitmap (Cost.bitmap_scan_ns t.cost ~lines)

let staged_count t node = Option.value ~default:0 (Hashtbl.find_opt t.staged node)

(* Take one node's staged entries off the buffer and build the WQEs
   shipping them to the primary and its mirrors — without posting, so a
   fence can coalesce several nodes under one doorbell. *)
let take_node_wqes t node =
  match Hashtbl.find_opt t.buffers node with
  | None -> []
  | Some { contents = [] } -> []
  | Some entries_ref ->
      let entries = List.rev !entries_ref in
      entries_ref := [];
      Hashtbl.replace t.staged node 0;
      let wire =
        List.fold_left
          (fun acc (e : Memory_node.log_entry) ->
            acc + header_bytes + String.length e.Memory_node.data)
          0 entries
      in
      let targets = t.resolve ~node :: t.extra_targets ~node in
      t.wire_bytes <- t.wire_bytes + (wire * List.length targets);
      t.flushes <- t.flushes + 1;
      t.unfenced_flushes <- t.unfenced_flushes + 1;
      (match t.tracer with
      | Some tr ->
          Tracer.instant tr "cllog.flush_node"
            ~args:
              [
                ("node", node);
                ("entries", List.length entries);
                ("wire_bytes", wire);
                ("replicas", List.length targets - 1);
              ]
      | None -> ());
      let lines =
        List.fold_left
          (fun acc (e : Memory_node.log_entry) ->
            acc + (String.length e.Memory_node.data / Units.cache_line))
          0 entries
      in
      List.map
        (fun target ->
          Qp.wqe ~signaled:true
            ~deliver:(fun () ->
              (* A write to a node that crashed while the WQE was in flight
                 is lost, not fatal: with replicas the same batch lands on
                 the mirrors (failover preserves it); without, the loss is
                 counted and surfaced as graceful degradation. *)
              try Memory_node.receive_log target entries
              with Memory_node.Crashed _ ->
                t.lost_deliveries <- t.lost_deliveries + 1;
                t.lost_lines <- t.lost_lines + lines)
            Qp.Write ~len:wire)
        targets

(* Ship one linked batch (one doorbell): the post returns after the
   doorbell (plus any send-window backpressure) and the acknowledgment
   latency is hidden by continuing to stage more dirty cache-lines
   (§4.4).  Only the clock delta the post actually cost is attributed to
   the rdma phase; wire time is charged where it blocks, at [flush]. *)
let post_wqes t wqes =
  if wqes <> [] then begin
    let before = Clock.now (clock t) in
    Qp.post t.qp wqes;
    t.rdma_ns <- t.rdma_ns + (Clock.now (clock t) - before);
    t.doorbell_batches <- t.doorbell_batches + 1;
    let n = List.length wqes in
    t.doorbell_wqes <- t.doorbell_wqes + n;
    if n > t.doorbell_batch_peak then t.doorbell_batch_peak <- n
  end

let flush_node t node = post_wqes t (take_node_wqes t node)

let append_run t ~node ~raddr ~data =
  let len = String.length data in
  if len = 0 || len mod Units.cache_line <> 0 then
    invalid_arg "Cl_log.append_run: data must be whole cache-lines";
  let lines = len / Units.cache_line in
  charge t `Copy (Cost.memcpy_ns t.cost ~bytes:(header_bytes + len));
  let entries_ref =
    match Hashtbl.find_opt t.buffers node with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.buffers node r;
        r
  in
  entries_ref := { Memory_node.addr = raddr; data } :: !entries_ref;
  Hashtbl.replace t.staged node (staged_count t node + lines);
  t.lines_logged <- t.lines_logged + lines;
  t.appends <- t.appends + 1;
  t.payload_bytes <- t.payload_bytes + len;
  if staged_count t node >= t.capacity then flush_node t node

let flush t =
  let began = Clock.now (clock t) in
  let nodes = Hashtbl.fold (fun node _ acc -> node :: acc) t.buffers [] in
  (* Doorbell batching: the fence coalesces every staged node's log write
     into a single linked post — one doorbell for the whole rack. *)
  post_wqes t (List.concat_map (fun node -> take_node_wqes t node) nodes);
  (* Fence: wait for outstanding log writes (this fires their deliveries),
     then the last (unhidden) acknowledgment round-trip — but only when
     something actually shipped since the previous fence. *)
  let before_wait = Clock.now (clock t) in
  Qp.wait_idle t.qp;
  t.rdma_ns <- t.rdma_ns + (Clock.now (clock t) - before_wait);
  if t.unfenced_flushes > 0 then begin
    charge t `Ack (int_of_float t.cost.Cost.ack_ns);
    t.unfenced_flushes <- 0
  end;
  match t.tracer with
  | Some tr ->
      Tracer.span tr "cllog.fence" ~dur_ns:(Clock.now (clock t) - began)
        ~args:[ ("flushes", t.flushes) ]
  | None -> ()

let lines_logged t = t.lines_logged
let flushes t = t.flushes
let appends t = t.appends
let payload_bytes t = t.payload_bytes
let wire_bytes t = t.wire_bytes
let doorbell_batches t = t.doorbell_batches
let doorbell_wqes t = t.doorbell_wqes
let doorbell_batch_peak t = t.doorbell_batch_peak
let lost_deliveries t = t.lost_deliveries
let lost_lines t = t.lost_lines

(* Bytes shipped beyond the application payload: entry headers, wire
   framing, replica copies — the log's own amplification. *)
let overhead_bytes t = Stdlib.max 0 (t.wire_bytes - t.payload_bytes)

let breakdown_ns t =
  [ ("bitmap", t.bitmap_ns); ("copy", t.copy_ns); ("rdma", t.rdma_ns); ("ack", t.ack_ns) ]
