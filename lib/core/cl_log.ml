open Kona_util
module Qp = Kona_rdma.Qp
module Cost = Kona_rdma.Cost
module Tracer = Kona_telemetry.Tracer

let header_bytes = 8
let entry_bytes = header_bytes + Units.cache_line

type t = {
  capacity : int;
  qp : Qp.t;
  cost : Cost.t;
  resolve : node:int -> Memory_node.t;
  extra_targets : node:int -> Memory_node.t list;
  tracer : Tracer.t option;
  buffers : (int, Memory_node.log_entry list ref) Hashtbl.t; (* node -> staged, newest first *)
  staged : (int, int) Hashtbl.t; (* node -> count *)
  mutable lines_logged : int;
  mutable appends : int;
  mutable payload_bytes : int;
  mutable wire_bytes : int;
  mutable flushes : int;
  mutable bitmap_ns : int;
  mutable copy_ns : int;
  mutable rdma_ns : int;
  mutable ack_ns : int;
}

let create ?(capacity = 512) ?(extra_targets = fun ~node:_ -> []) ?tracer ~qp ~cost
    ~resolve () =
  assert (capacity > 0);
  {
    capacity;
    qp;
    cost;
    resolve;
    extra_targets;
    tracer;
    buffers = Hashtbl.create 4;
    staged = Hashtbl.create 4;
    lines_logged = 0;
    appends = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    flushes = 0;
    bitmap_ns = 0;
    copy_ns = 0;
    rdma_ns = 0;
    ack_ns = 0;
  }

let clock t = Qp.clock t.qp

let charge t phase ns =
  Clock.advance (clock t) ns;
  match phase with
  | `Bitmap -> t.bitmap_ns <- t.bitmap_ns + ns
  | `Copy -> t.copy_ns <- t.copy_ns + ns
  | `Rdma -> t.rdma_ns <- t.rdma_ns + ns
  | `Ack -> t.ack_ns <- t.ack_ns + ns

let note_bitmap_scan t ~lines = charge t `Bitmap (Cost.bitmap_scan_ns t.cost ~lines)

let staged_count t node = Option.value ~default:0 (Hashtbl.find_opt t.staged node)

(* Ship one node's staged entries asynchronously: the post returns
   immediately and acknowledgment latency is hidden by continuing to stage
   more dirty cache-lines (§4.4).  Wire serialization and ack costs are
   attributed to their phases; the clock only blocks at [flush] (the
   fence). *)
let flush_node t node =
  match Hashtbl.find_opt t.buffers node with
  | None -> ()
  | Some { contents = [] } -> ()
  | Some entries_ref ->
      let entries = List.rev !entries_ref in
      entries_ref := [];
      Hashtbl.replace t.staged node 0;
      let wire =
        List.fold_left
          (fun acc (e : Memory_node.log_entry) ->
            acc + header_bytes + String.length e.Memory_node.data)
          0 entries
      in
      let targets = t.resolve ~node :: t.extra_targets ~node in
      let wqes =
        List.map
          (fun target ->
            Qp.wqe ~signaled:true
              ~deliver:(fun () -> Memory_node.receive_log target entries)
              Qp.Write ~len:wire)
          targets
      in
      Qp.post t.qp wqes;
      t.wire_bytes <- t.wire_bytes + (wire * List.length targets);
      t.rdma_ns <-
        t.rdma_ns
        + (List.length targets
          * int_of_float
              (t.cost.Cost.wqe_ns
              +. (t.cost.Cost.byte_ns *. float_of_int (wire + t.cost.Cost.header_bytes))));
      (* Replica acks are awaited in parallel: one ack latency per flush. *)
      t.ack_ns <- t.ack_ns + int_of_float t.cost.Cost.ack_ns;
      t.flushes <- t.flushes + 1;
      match t.tracer with
      | Some tr ->
          Tracer.instant tr "cllog.flush_node"
            ~args:
              [
                ("node", node);
                ("entries", List.length entries);
                ("wire_bytes", wire);
                ("replicas", List.length targets - 1);
              ]
      | None -> ()

let append_run t ~node ~raddr ~data =
  let len = String.length data in
  if len = 0 || len mod Units.cache_line <> 0 then
    invalid_arg "Cl_log.append_run: data must be whole cache-lines";
  let lines = len / Units.cache_line in
  charge t `Copy (Cost.memcpy_ns t.cost ~bytes:(header_bytes + len));
  let entries_ref =
    match Hashtbl.find_opt t.buffers node with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.buffers node r;
        r
  in
  entries_ref := { Memory_node.addr = raddr; data } :: !entries_ref;
  Hashtbl.replace t.staged node (staged_count t node + lines);
  t.lines_logged <- t.lines_logged + lines;
  t.appends <- t.appends + 1;
  t.payload_bytes <- t.payload_bytes + len;
  if staged_count t node >= t.capacity then flush_node t node

let flush t =
  let nodes = Hashtbl.fold (fun node _ acc -> node :: acc) t.buffers [] in
  List.iter (fun node -> flush_node t node) nodes;
  (* Fence: wait for outstanding log writes, then the last (unhidden)
     acknowledgment round-trip. *)
  let before = Clock.now (clock t) in
  Qp.wait_idle t.qp;
  t.rdma_ns <- t.rdma_ns + (Clock.now (clock t) - before);
  if t.flushes > 0 then Clock.advance (clock t) (int_of_float t.cost.Cost.ack_ns);
  match t.tracer with
  | Some tr ->
      Tracer.span tr "cllog.fence" ~dur_ns:(Clock.now (clock t) - before)
        ~args:[ ("flushes", t.flushes) ]
  | None -> ()

let lines_logged t = t.lines_logged
let flushes t = t.flushes
let appends t = t.appends
let payload_bytes t = t.payload_bytes
let wire_bytes t = t.wire_bytes

(* Bytes shipped beyond the application payload: entry headers, wire
   framing, replica copies — the log's own amplification. *)
let overhead_bytes t = Stdlib.max 0 (t.wire_bytes - t.payload_bytes)

let breakdown_ns t =
  [ ("bitmap", t.bitmap_ns); ("copy", t.copy_ns); ("rdma", t.rdma_ns); ("ack", t.ack_ns) ]
