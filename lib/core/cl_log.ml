open Kona_util
open Kona_integrity
module Qp = Kona_rdma.Qp
module Cost = Kona_rdma.Cost
module Tracer = Kona_telemetry.Tracer

let header_bytes = 8
let entry_bytes = header_bytes + Units.cache_line

type t = {
  capacity : int;
  qp : Qp.t;
  cost : Cost.t;
  stream_base : int; (* tenant offset for sequencer streams (stream_base + node) *)
  resolve : node:int -> Memory_node.t;
  extra_targets : node:int -> Memory_node.t list;
  tracer : Tracer.t option;
  buffers : (int, Memory_node.log_entry list ref) Hashtbl.t; (* node -> staged, newest first *)
  staged : (int, int) Hashtbl.t; (* node -> count *)
  seq_tx : Sequencer.Tx.t; (* per-destination-node shipment stamps *)
  pending_dups :
    (int, (Memory_node.log_entry list * Memory_node.delivery) list ref) Hashtbl.t;
      (* dup-deliver fault: shipments to replay at the next flush *)
  mutable inject :
    (targets:int -> Kona_faults.Injector.delivery_fault option) option;
  (* Partition gate: consulted at each delivery's completion time with
     the physical target id; returning true means the gate captured
     [fire] (the runtime defers it until the partition heals). *)
  mutable gate : (node:int -> fire:(unit -> unit) -> bool) option;
  mutable stale_filter : (node:int -> addr:int -> data:string -> bool) option;
  mutable on_report :
    (node:int -> target:Memory_node.t -> Memory_node.report -> unit) option;
  mutable on_flip : (target:Memory_node.t -> addr:int -> fresh:bool -> unit) option;
  mutable lines_logged : int;
  mutable appends : int;
  mutable payload_bytes : int;
  mutable wire_bytes : int;
  mutable flushes : int;
  mutable unfenced_flushes : int; (* node batches shipped since the last fence *)
  mutable doorbell_batches : int;
  mutable doorbell_wqes : int;
  mutable doorbell_batch_peak : int;
  mutable lost_deliveries : int;
  mutable lost_lines : int;
  mutable stale_lines : int;
  mutable bitmap_ns : int;
  mutable copy_ns : int;
  mutable rdma_ns : int;
  mutable ack_ns : int;
}

let create ?(capacity = 512) ?(stream_base = 0)
    ?(extra_targets = fun ~node:_ -> []) ?tracer ~qp ~cost ~resolve () =
  assert (capacity > 0);
  assert (stream_base >= 0);
  {
    capacity;
    qp;
    cost;
    stream_base;
    resolve;
    extra_targets;
    tracer;
    buffers = Hashtbl.create 4;
    staged = Hashtbl.create 4;
    seq_tx = Sequencer.Tx.create ();
    pending_dups = Hashtbl.create 4;
    inject = None;
    gate = None;
    stale_filter = None;
    on_report = None;
    on_flip = None;
    lines_logged = 0;
    appends = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    flushes = 0;
    unfenced_flushes = 0;
    doorbell_batches = 0;
    doorbell_wqes = 0;
    doorbell_batch_peak = 0;
    lost_deliveries = 0;
    lost_lines = 0;
    stale_lines = 0;
    bitmap_ns = 0;
    copy_ns = 0;
    rdma_ns = 0;
    ack_ns = 0;
  }

let clock t = Qp.clock t.qp

let charge t phase ns =
  Clock.advance (clock t) ns;
  match phase with
  | `Bitmap -> t.bitmap_ns <- t.bitmap_ns + ns
  | `Copy -> t.copy_ns <- t.copy_ns + ns
  | `Rdma -> t.rdma_ns <- t.rdma_ns + ns
  | `Ack -> t.ack_ns <- t.ack_ns + ns

let note_bitmap_scan t ~lines = charge t `Bitmap (Cost.bitmap_scan_ns t.cost ~lines)

let staged_count t node = Option.value ~default:0 (Hashtbl.find_opt t.staged node)
let set_inject t f = t.inject <- Some f
let set_on_report t f = t.on_report <- Some f
let set_on_flip t f = t.on_flip <- Some f
let set_gate t f = t.gate <- Some f
let set_stale_filter t f = t.stale_filter <- Some f
let stale_lines t = t.stale_lines
let bump_epoch t = Sequencer.Tx.bump_epoch t.seq_tx
let advance_epoch t ~to_ = Sequencer.Tx.advance_epoch t.seq_tx ~to_
let epoch t = Sequencer.Tx.epoch t.seq_tx

let wire_of entries =
  List.fold_left
    (fun acc (e : Memory_node.log_entry) ->
      acc + header_bytes + String.length e.Memory_node.data)
    0 entries

let lines_of entries =
  List.fold_left
    (fun acc (e : Memory_node.log_entry) ->
      acc + (String.length e.Memory_node.data / Units.cache_line))
    0 entries

(* torn-write fault: corrupt the tail lines of one entry in one copy's
   shipment, leaving the CRCs as computed at staging — the receiver's
   per-line wire-CRC check rejects exactly the torn lines.  A one-line
   entry is torn whole. *)
let tamper_entry (e : Memory_node.log_entry) =
  let nlines = Array.length e.Memory_node.crcs in
  let from = nlines / 2 in
  let data = Bytes.of_string e.Memory_node.data in
  for i = from to nlines - 1 do
    let pos = i * Units.cache_line in
    Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1))
  done;
  { e with Memory_node.data = Bytes.to_string data }

(* Writeback-race resolution under multi-writer coherence: an eviction
   staged before the directory revoked the holder's ownership can
   deliver after the line's next owner already wrote back a newer value.
   A real home NACKs such a writeback — the holder's grant is stale —
   so, when a filter is installed, stale lines are dropped at delivery
   time.  Runs split so the fresh lines of a mixed run still land. *)
let drop_stale t ~node entries =
  match t.stale_filter with
  | None -> entries
  | Some stale ->
      List.concat_map
        (fun (e : Memory_node.log_entry) ->
          let nlines = Array.length e.Memory_node.crcs in
          let line i =
            {
              Memory_node.addr = e.Memory_node.addr + (i * Units.cache_line);
              data =
                String.sub e.Memory_node.data (i * Units.cache_line)
                  Units.cache_line;
              crcs = [| e.Memory_node.crcs.(i) |];
            }
          in
          let fresh = ref [] in
          for i = nlines - 1 downto 0 do
            let le = line i in
            if
              stale ~node ~addr:le.Memory_node.addr ~data:le.Memory_node.data
            then t.stale_lines <- t.stale_lines + 1
            else fresh := le :: !fresh
          done;
          if List.length !fresh = nlines then [ e ] else !fresh)
        entries

(* Delivery body: classify + verify + apply on the target, then arm
   any at-rest bit flip the injector scheduled for this copy. *)
let deliver_now t ~node ~target ~entries ~delivery ~lines ~flip =
  try
    let entries = drop_stale t ~node entries in
    let report = Memory_node.receive_log ~delivery target entries in
    (match t.on_report with Some f -> f ~node ~target report | None -> ());
    match flip with
    | None -> ()
    | Some _ when entries = [] -> ()
    | Some (entry_pick, line_pick, bit_pick) ->
        let e = List.nth entries (entry_pick mod List.length entries) in
        let nlines = Array.length e.Memory_node.crcs in
        let addr =
          e.Memory_node.addr + (line_pick mod nlines * Units.cache_line)
        in
        let fresh = Memory_node.corrupt_bit target ~addr ~bit:bit_pick in
        (match t.on_flip with
        | Some f -> f ~target ~addr ~fresh:(fresh = `Fresh)
        | None -> ())
  with Memory_node.Crashed _ ->
    (* A write to a node that crashed while the WQE was in flight is
       lost, not fatal: with replicas the same batch lands on the
       mirrors (failover preserves it); without, the loss is counted
       and surfaced as graceful degradation. *)
    t.lost_deliveries <- t.lost_deliveries + 1;
    t.lost_lines <- t.lost_lines + lines

(* Delivery closure fired at WQE completion: a partition gate may capture
   it — the runtime stashes [fire] and replays it, stamp intact, when the
   partition heals (where a fenced target then rejects it as stale). *)
let deliver t ~node ~target ~entries ~delivery ~lines ~flip () =
  let fire () = deliver_now t ~node ~target ~entries ~delivery ~lines ~flip in
  match t.gate with
  | Some gate when gate ~node:(Memory_node.id target) ~fire -> ()
  | Some _ | None -> fire ()

(* Take one node's staged entries off the buffer and build the WQEs
   shipping them to the primary and its mirrors — without posting, so a
   fence can coalesce several nodes under one doorbell.  Any shipments
   the dup-deliver fault queued for this node are replayed here too
   (primary only, original stamp), exercising duplicate rejection. *)
let take_node_wqes t node =
  let fresh_wqes =
    match Hashtbl.find_opt t.buffers node with
    | None | Some { contents = [] } -> []
    | Some entries_ref ->
        let entries = List.rev !entries_ref in
        entries_ref := [];
        Hashtbl.replace t.staged node 0;
        let wire = wire_of entries in
        let targets = t.resolve ~node :: t.extra_targets ~node in
        let ntargets = List.length targets in
        t.wire_bytes <- t.wire_bytes + (wire * ntargets);
        t.flushes <- t.flushes + 1;
        t.unfenced_flushes <- t.unfenced_flushes + 1;
        (match t.tracer with
        | Some tr ->
            Tracer.instant tr "cllog.flush_node"
              ~args:
                [
                  ("node", node);
                  ("entries", List.length entries);
                  ("wire_bytes", wire);
                  ("replicas", ntargets - 1);
                ]
        | None -> ());
        let lines = lines_of entries in
        (* Streams are namespaced per tenant (stream_base + node): two
           tenants shipping to one node must not interleave one sequence
           space, or the receiver's gap/duplicate verdicts would fire on
           perfectly ordered cross-tenant traffic. *)
        let stream = t.stream_base + node in
        let delivery =
          {
            Memory_node.stream;
            epoch = Sequencer.Tx.epoch t.seq_tx;
            seq = Sequencer.Tx.next t.seq_tx ~stream;
          }
        in
        let fault =
          match t.inject with Some f -> f ~targets:ntargets | None -> None
        in
        (match fault with
        | Some { Kona_faults.Injector.dup = true; _ } ->
            let r =
              match Hashtbl.find_opt t.pending_dups node with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add t.pending_dups node r;
                  r
            in
            r := (entries, delivery) :: !r
        | _ -> ());
        List.mapi
          (fun i target ->
            (* At most one copy per shipment is tampered per category,
               so when replicas exist a clean source always survives. *)
            let entries_i, flip_i =
              match fault with
              | None -> (entries, None)
              | Some { Kona_faults.Injector.torn; flip; _ } ->
                  let entries_i =
                    match torn with
                    | Some (tpick, epick) when tpick mod ntargets = i ->
                        let victim = epick mod List.length entries in
                        List.mapi
                          (fun j e -> if j = victim then tamper_entry e else e)
                          entries
                    | _ -> entries
                  in
                  let flip_i =
                    match flip with
                    | Some (tpick, epick, lpick, bpick) when tpick mod ntargets = i
                      ->
                        Some (epick, lpick, bpick)
                    | _ -> None
                  in
                  (entries_i, flip_i)
            in
            Qp.wqe ~signaled:true
              ~deliver:
                (deliver t ~node ~target ~entries:entries_i ~delivery ~lines
                   ~flip:flip_i)
              ~node Qp.Write ~len:wire)
          targets
  in
  let dup_wqes =
    match Hashtbl.find_opt t.pending_dups node with
    | None | Some { contents = [] } -> []
    | Some r ->
        let dups = List.rev !r in
        r := [];
        List.map
          (fun (entries, delivery) ->
            let wire = wire_of entries in
            t.wire_bytes <- t.wire_bytes + wire;
            t.unfenced_flushes <- t.unfenced_flushes + 1;
            let target = t.resolve ~node in
            Qp.wqe ~signaled:true
              ~deliver:
                (deliver t ~node ~target ~entries ~delivery
                   ~lines:(lines_of entries) ~flip:None)
              ~node Qp.Write ~len:wire)
          dups
  in
  fresh_wqes @ dup_wqes

(* Ship one linked batch (one doorbell): the post returns after the
   doorbell (plus any send-window backpressure) and the acknowledgment
   latency is hidden by continuing to stage more dirty cache-lines
   (§4.4).  Only the clock delta the post actually cost is attributed to
   the rdma phase; wire time is charged where it blocks, at [flush]. *)
let post_wqes t wqes =
  if wqes <> [] then begin
    let before = Clock.now (clock t) in
    Qp.post t.qp wqes;
    t.rdma_ns <- t.rdma_ns + (Clock.now (clock t) - before);
    t.doorbell_batches <- t.doorbell_batches + 1;
    let n = List.length wqes in
    t.doorbell_wqes <- t.doorbell_wqes + n;
    if n > t.doorbell_batch_peak then t.doorbell_batch_peak <- n
  end

let flush_node t node = post_wqes t (take_node_wqes t node)

let append_run t ~node ~raddr ~data =
  let len = String.length data in
  if len = 0 || len mod Units.cache_line <> 0 then
    invalid_arg "Cl_log.append_run: data must be whole cache-lines";
  let lines = len / Units.cache_line in
  charge t `Copy (Cost.memcpy_ns t.cost ~bytes:(header_bytes + len));
  let entries_ref =
    match Hashtbl.find_opt t.buffers node with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.buffers node r;
        r
  in
  (* Per-line CRCs are computed during the same pass that copies lines
     into the log buffer, so they ride the memcpy charge above. *)
  entries_ref := Memory_node.entry ~addr:raddr ~data :: !entries_ref;
  Hashtbl.replace t.staged node (staged_count t node + lines);
  t.lines_logged <- t.lines_logged + lines;
  t.appends <- t.appends + 1;
  t.payload_bytes <- t.payload_bytes + len;
  if staged_count t node >= t.capacity then flush_node t node

let flush t =
  let began = Clock.now (clock t) in
  let nodes = Hashtbl.fold (fun node _ acc -> node :: acc) t.buffers [] in
  (* Nodes with only a pending dup redelivery still need a shipment. *)
  let nodes =
    Hashtbl.fold
      (fun node r acc ->
        if !r <> [] && not (List.mem node acc) then node :: acc else acc)
      t.pending_dups nodes
  in
  (* Doorbell batching: the fence coalesces every staged node's log write
     into a single linked post — one doorbell for the whole rack. *)
  post_wqes t (List.concat_map (fun node -> take_node_wqes t node) nodes);
  (* Fence: wait for outstanding log writes (this fires their deliveries),
     then the last (unhidden) acknowledgment round-trip — but only when
     something actually shipped since the previous fence. *)
  let before_wait = Clock.now (clock t) in
  Qp.wait_idle t.qp;
  t.rdma_ns <- t.rdma_ns + (Clock.now (clock t) - before_wait);
  if t.unfenced_flushes > 0 then begin
    charge t `Ack (int_of_float t.cost.Cost.ack_ns);
    t.unfenced_flushes <- 0
  end;
  match t.tracer with
  | Some tr ->
      Tracer.span tr "cllog.fence" ~dur_ns:(Clock.now (clock t) - began)
        ~args:[ ("flushes", t.flushes) ]
  | None -> ()

let lines_logged t = t.lines_logged
let flushes t = t.flushes
let appends t = t.appends
let payload_bytes t = t.payload_bytes
let wire_bytes t = t.wire_bytes
let doorbell_batches t = t.doorbell_batches
let doorbell_wqes t = t.doorbell_wqes
let doorbell_batch_peak t = t.doorbell_batch_peak
let lost_deliveries t = t.lost_deliveries
let lost_lines t = t.lost_lines

(* Bytes shipped beyond the application payload: entry headers, wire
   framing, replica copies — the log's own amplification. *)
let overhead_bytes t = Stdlib.max 0 (t.wire_bytes - t.payload_bytes)

let breakdown_ns t =
  [ ("bitmap", t.bitmap_ns); ("copy", t.copy_ns); ("rdma", t.rdma_ns); ("ack", t.ack_ns) ]
