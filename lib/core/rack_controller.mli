(** The rack controller: a (logically centralized, §4.1) allocator that
    memory nodes register with and from which compute nodes obtain slabs.
    Off the application's critical path — the resource manager calls it in
    batches. *)

type t

val create : ?slab_size:int -> unit -> t
(** Default slab size 1 MiB (the paper uses large slabs; scaled with our
    workloads). *)

val slab_size : t -> int

val register_node : t -> Memory_node.t -> unit

val nodes : t -> Memory_node.t list

val node : t -> id:int -> Memory_node.t
(** Raises [Not_found] for unknown ids. *)

val allocate_slab : t -> vaddr:int -> Slab.t
(** Allocate one slab backing the VFMem range starting at [vaddr],
    round-robin across registered nodes (skipping full ones).  Raises
    [Out_of_memory] when no node has room. *)

val total_free : t -> int
val slabs_allocated : t -> int
