(** The rack controller: a (logically centralized, §4.1) allocator that
    memory nodes register with and from which compute nodes obtain slabs.
    Off the application's critical path — the resource manager calls it in
    batches.

    The controller separates a node's {e logical id} (what slabs record)
    from the store backing it: replica failover swaps the backing via
    [replace_node] and every existing translation keeps working.  The node
    table is a dynarray — [register_node] and the per-slab round-robin
    probe are O(1). *)

type t

val create : ?slab_size:int -> unit -> t
(** Default slab size 1 MiB (the paper uses large slabs; scaled with our
    workloads). *)

val slab_size : t -> int

val register_node : t -> Memory_node.t -> unit
(** Raises [Invalid_argument] if the node's id is already registered. *)

val nodes : t -> Memory_node.t list
(** Current backings, in registration order. *)

val node : t -> id:int -> Memory_node.t
(** The store currently backing logical node [id].  Raises
    [Invalid_argument] naming the id when it is unknown. *)

val replace_node : t -> id:int -> node:Memory_node.t -> unit
(** Failover: make [node] the backing of logical id [id] (the promoted
    mirror takes over the crashed primary's identity).  Raises
    [Invalid_argument] for unknown ids. *)

val allocate_slab : t -> vaddr:int -> Slab.t
(** Allocate one slab backing the VFMem range starting at [vaddr],
    round-robin across registered nodes (skipping full or crashed ones).
    Raises [Out_of_memory] when no live node has room. *)

val total_free : t -> int
(** Free bytes across live nodes. *)

val slabs_allocated : t -> int
