(** The rack controller: a (logically centralized, §4.1) allocator that
    memory nodes register with and from which compute nodes obtain slabs.
    Off the application's critical path — the resource manager calls it in
    batches.

    The controller separates a node's {e logical id} (what slabs record)
    from the store backing it: replica failover swaps the backing via
    [replace_node] and every existing translation keeps working.  The node
    table is a dynarray — [register_node] and the per-slab round-robin
    probe are O(1). *)

exception
  Quota_exceeded of { tenant : string; quota : int; used : int; requested : int }
(** Admission control rejected an allocation: [tenant] already holds
    [used] bytes against a cap of [quota]; granting [requested] more would
    exceed it.  Nothing is charged on rejection. *)

type t

val create : ?slab_size:int -> unit -> t
(** Default slab size 1 MiB (the paper uses large slabs; scaled with our
    workloads). *)

val slab_size : t -> int

val register_node : t -> Memory_node.t -> unit
(** Raises [Invalid_argument] if the node's id is already registered, or
    was minted for a replica backing store by {!mint_backing_id} (the two
    id spaces must never alias a store). *)

val mint_backing_id : t -> int
(** Allocate a physical id for a replica/mirror backing store.  Ids are
    handed out from 1000 upward, skipping every registered logical id,
    and each minted id is remembered: {!register_node} refuses it
    afterwards, so rack-op node adds and re-replication can never mint
    colliding ids regardless of order. *)

val nodes : t -> Memory_node.t list
(** Current backings, in registration order. *)

val node : t -> id:int -> Memory_node.t
(** The store currently backing logical node [id].  Raises
    [Invalid_argument] naming the id when it is unknown. *)

val replace_node : t -> id:int -> node:Memory_node.t -> unit
(** Failover: make [node] the backing of logical id [id] (the promoted
    mirror takes over the crashed primary's identity).  The displaced
    store is remembered in the slot's former-backing list (see
    {!former_backings}).  Raises [Invalid_argument] for unknown ids. *)

val former_backings : t -> id:int -> Memory_node.t list
(** Stores that previously backed logical node [id], newest first.  A
    falsely-declared-dead predecessor may still be live behind a
    partition; fencing and the at-most-one-primary invariant inspect
    this list. *)

val logical_ids : t -> int list
(** Registered logical node ids, in registration order. *)

val find_physical : t -> id:int -> Memory_node.t option
(** The store with physical id [id], whether it currently backs a slot or
    was displaced by a failover (former backing).  Membership leases and
    fencing follow the store, not the slot. *)

val logical_backed_by : t -> physical:int -> int option
(** The logical slot the store with physical id [physical] currently
    backs, if any ([None] for formers, mirrors and unknown ids). *)

val all_physical : t -> Memory_node.t list
(** Every store the controller knows of: current backings and former
    (displaced) backings, in registration order, formers newest first —
    the fencing counters are summed over this list. *)

val bump_fencing_epoch : t -> int
(** Advance the rack-global fencing epoch (monotone) and return the new
    value.  Called once per membership-triggered failover; the new epoch
    fences the displaced store and is stamped through every tenant's
    CL-log sequencer. *)

val fencing_epoch : t -> int
(** Current rack-global fencing epoch (0 until the first failover). *)

val set_draining : t -> id:int -> bool -> unit
(** Mark/unmark logical node [id] as draining: it keeps serving its
    existing slabs but receives no new allocations.  The slot stays
    registered after the drain completes, so logical ids (and anything
    indexed by them) remain stable.  Raises [Invalid_argument] for
    unknown ids. *)

val draining : t -> id:int -> bool

val set_placement :
  t -> (vaddr:int -> tenant:string option -> int option) -> unit
(** Install a placement hook consulted before the round-robin on every
    slab allocation.  Returning [Some id] steers the slab to that node
    if it is live, not draining, and has room; [None] (or an unusable
    choice) falls back to the round-robin.  Quota admission happens
    before the hook either way. *)

val free_bytes : t -> id:int -> int
(** Free bytes on the store currently backing logical node [id].  Raises
    [Invalid_argument] for unknown ids. *)

val used_bytes : t -> id:int -> int
(** Bytes reserved on the store currently backing logical node [id]. *)

val set_quota : t -> tenant:string -> bytes:int -> unit
(** Cap [tenant]'s total slab allocation at [bytes] (rounded up only by
    slab granularity — a slab is admitted iff it fits entirely).  Replaces
    any previous cap.  Raises [Invalid_argument] on a negative cap. *)

val quota : t -> tenant:string -> int option
val tenant_used : t -> tenant:string -> int
(** Bytes of slabs granted to [tenant] so far (0 for unknown tenants). *)

val allocate_slab : ?tenant:string -> t -> vaddr:int -> Slab.t
(** Allocate one slab backing the VFMem range starting at [vaddr],
    round-robin across registered nodes (skipping full or crashed ones).
    Raises [Out_of_memory] when no live node has room.  With [tenant] set,
    the allocation is charged against that tenant's quota and raises
    {!Quota_exceeded} — before reserving anything — once the cap would be
    crossed. *)

val total_free : t -> int
(** Free bytes across live nodes. *)

val slabs_allocated : t -> int
