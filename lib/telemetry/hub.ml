type t = { registry : Registry.t; tracer : Tracer.t }

let create ?trace_capacity ?sample () =
  {
    registry = Registry.create ();
    tracer = Tracer.create ?capacity:trace_capacity ?sample ();
  }

let registry t = t.registry
let tracer t = t.tracer

let scoped t ~prefix =
  { registry = Registry.scoped t.registry ~prefix; tracer = t.tracer }
let snapshot t = Registry.snapshot t.registry

let write_metrics_json ~path ?meta t = Snapshot.write_json ~path ?meta (snapshot t)
let write_trace ~path t = Tracer.write_jsonl ~path t.tracer
