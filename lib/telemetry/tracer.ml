open Kona_util

type kind = Instant | Span of { dur_ns : int }

type event = {
  seq : int;
  name : string;
  kind : kind;
  app_ns : int;
  bg_ns : int;
  args : (string * int) list;
}

type t = {
  ring : event Ring_buffer.t;
  sample : int;
  mutable now : unit -> int * int;
  mutable offered : int; (* events presented, pre-sampling *)
  mutable accepted : int; (* events that entered the ring *)
  mutable overwritten : int; (* accepted events later displaced *)
}

let create ?(capacity = 4096) ?(sample = 1) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  if sample <= 0 then invalid_arg "Tracer.create: sample must be positive";
  {
    ring = Ring_buffer.create ~capacity;
    sample;
    now = (fun () -> (0, 0));
    offered = 0;
    accepted = 0;
    overwritten = 0;
  }

let set_clock t f = t.now <- f

let record t name kind args =
  t.offered <- t.offered + 1;
  (* Deterministic 1-in-N sampling: keeps hot paths cheap without an RNG,
     and identical runs produce identical traces. *)
  if t.offered mod t.sample = 0 then begin
    let app_ns, bg_ns = t.now () in
    let e = { seq = t.accepted; name; kind; app_ns; bg_ns; args } in
    t.accepted <- t.accepted + 1;
    match Ring_buffer.force_push t.ring e with
    | Some _ -> t.overwritten <- t.overwritten + 1
    | None -> ()
  end

let instant t ?(args = []) name = record t name Instant args
let span t ?(args = []) ~dur_ns name = record t name (Span { dur_ns }) args

let events t =
  let out = ref [] in
  Ring_buffer.iter t.ring (fun e -> out := e :: !out);
  List.rev !out

let length t = Ring_buffer.length t.ring
let capacity t = Ring_buffer.capacity t.ring
let offered t = t.offered
let accepted t = t.accepted
let overwritten t = t.overwritten

let event_to_json e =
  let base =
    [
      ("seq", Json.Int e.seq);
      ("name", Json.String e.name);
      ( "kind",
        Json.String (match e.kind with Instant -> "instant" | Span _ -> "span") );
      ("app_ns", Json.Int e.app_ns);
      ("bg_ns", Json.Int e.bg_ns);
    ]
  in
  let dur = match e.kind with Span { dur_ns } -> [ ("dur_ns", Json.Int dur_ns) ] | Instant -> [] in
  let args =
    match e.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) args)) ]
  in
  Json.Obj (base @ dur @ args)

let write_jsonl ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let n = ref 0 in
      Ring_buffer.iter t.ring (fun e ->
          output_string oc (Json.to_string (event_to_json e));
          output_char oc '\n';
          incr n);
      !n)
