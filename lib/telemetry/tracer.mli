(** Event tracer: a fixed-capacity ring of typed span/instant events stamped
    with the runtime's virtual app/background clocks.

    Designed to be left on: recording is a couple of stores, the ring
    overwrites its {e oldest} entries (the newest events — usually the ones
    near the anomaly you are chasing — are never lost), and a deterministic
    1-in-N [sample] knob thins hot paths without an RNG. *)

type kind = Instant | Span of { dur_ns : int }

type event = {
  seq : int;  (** Per-tracer monotonic id (post-sampling). *)
  name : string;  (** Hierarchical, e.g. [runtime.fetch.page]. *)
  kind : kind;
  app_ns : int;  (** Application virtual clock at record time. *)
  bg_ns : int;  (** Background virtual clock at record time. *)
  args : (string * int) list;
}

type t

val create : ?capacity:int -> ?sample:int -> unit -> t
(** [capacity] defaults to 4096 events, [sample] to 1 (keep everything);
    [sample = n] keeps every n-th offered event. *)

val set_clock : t -> (unit -> int * int) -> unit
(** Install the virtual clock pair [(app_ns, bg_ns)]; the runtime does this
    at construction.  Before installation events are stamped (0, 0). *)

val instant : t -> ?args:(string * int) list -> string -> unit
val span : t -> ?args:(string * int) list -> dur_ns:int -> string -> unit

val events : t -> event list
(** Oldest to newest. *)

val length : t -> int
val capacity : t -> int

val offered : t -> int
(** Events presented, before sampling. *)

val accepted : t -> int
(** Events that entered the ring (post-sampling). *)

val overwritten : t -> int
(** Accepted events later displaced by newer ones. *)

val event_to_json : event -> Json.t

val write_jsonl : path:string -> t -> int
(** One JSON object per line, oldest first; returns the number written. *)
