(** A registry + tracer pair: the unit of telemetry a runtime instance is
    wired to.  The CLI creates one hub per system under measurement and
    passes it to [Runtime.create] / [Vm_runtime.create]; both publish into
    the same namespace so their exports are directly comparable. *)

type t

val create : ?trace_capacity:int -> ?sample:int -> unit -> t
val registry : t -> Registry.t
val tracer : t -> Tracer.t

val scoped : t -> prefix:string -> t
(** A view sharing this hub's tracer whose registry prepends [prefix]
    (see {!Registry.scoped}): the rack hands each tenant runtime a
    [tenant.<i>.] view so N tenants publish into one comparable
    namespace without name collisions. *)

val snapshot : t -> Snapshot.t

val write_metrics_json :
  path:string -> ?meta:(string * Json.t) list -> t -> unit

val write_trace : path:string -> t -> int
(** Returns the number of trace events written. *)
