(** Typed metrics registry: the single namespace every component publishes
    into, so Kona and the VM baselines are compared through one pipeline.

    Metrics have hierarchical dot names ([runtime.fetch.latency_ns]) plus
    optional labels ([cache.misses{level=l1}]).  Registering the same full
    name twice raises [Invalid_argument] — silent double-counting is the
    failure mode this subsystem exists to prevent.

    Two publication styles:
    - {e push}: [counter]/[gauge]/[histogram]/[summary] return live handles
      the hot path mutates directly (a counter bump is one store);
    - {e pull}: [counter_fn]/[gauge_fn] register a closure read only at
      [snapshot] time, for components that already keep their own tallies.

    Not thread-safe; the simulator is single-threaded by design. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

type t

val create : unit -> t

val scoped : t -> prefix:string -> t
(** A view onto the same table that prepends [prefix] to every name it
    registers and restricts [mem]/[size]/[snapshot] to names under that
    prefix.  Used for per-tenant scoping ([tenant.0.] etc.): components
    keep registering their usual names, the rack hands them a scoped view.
    Prefixes compose ([scoped (scoped r "a.") "b."] registers under
    ["a.b."]). *)

val counter : t -> ?labels:(string * string) list -> string -> Counter.t
val counter_fn : t -> ?labels:(string * string) list -> string -> (unit -> int) -> unit
val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t
val gauge_fn : t -> ?labels:(string * string) list -> string -> (unit -> int) -> unit

val histogram : t -> ?labels:(string * string) list -> string -> Kona_util.Histogram.t
(** A fresh log2-bucketed histogram owned by the registry; record with
    [Histogram.add]. *)

val histogram_ref :
  t -> ?labels:(string * string) list -> string -> Kona_util.Histogram.t -> unit
(** Register an existing histogram (a component's private one) under a
    name; snapshots copy it. *)

val summary : t -> ?labels:(string * string) list -> string -> Kona_util.Stats.t

val mem : t -> ?labels:(string * string) list -> string -> bool
val size : t -> int

val snapshot : t -> Snapshot.t
(** Immutable view: pull closures are evaluated, histograms and summaries
    copied. *)
