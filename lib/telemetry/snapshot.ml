open Kona_util

type value =
  | Counter of int
  | Gauge of int
  | Hist of Histogram.t
  | Summary of Stats.t

type t = (string * value) list

let find t name = List.assoc_opt name t

let counter_value t name =
  match find t name with
  | Some (Counter v) | Some (Gauge v) -> Some v
  | Some (Hist _) | Some (Summary _) | None -> None

(* ------------------------------------------------------------------ *)
(* Phase deltas and cross-run aggregation *)

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      let v' =
        match (v, find before name) with
        | Counter a, Some (Counter b) -> Counter (a - b)
        | Hist a, Some (Hist b) -> (
            (* A component reset between snapshots makes [b] no longer a
               prefix; fall back to the absolute view rather than raising. *)
            match Histogram.diff ~after:a ~before:b with
            | d -> Hist d
            | exception Invalid_argument _ -> Hist (Histogram.copy a))
        (* Gauges and summaries are level quantities: the delta of a level
           is the level at the end of the phase. *)
        | v, _ -> v
      in
      (name, v'))
    after

let merge a b =
  let merged_from_a =
    List.map
      (fun (name, va) ->
        let v =
          match (va, find b name) with
          | Counter x, Some (Counter y) -> Counter (x + y)
          | Gauge x, Some (Gauge y) -> Gauge (max x y)
          | Hist x, Some (Hist y) -> Hist (Histogram.merge x y)
          | Summary x, Some (Summary y) -> Summary (Stats.merge x y)
          | v, _ -> v
        in
        (name, v))
      a
  in
  let only_b = List.filter (fun (name, _) -> find a name = None) b in
  List.sort (fun (x, _) (y, _) -> String.compare x y) (merged_from_a @ only_b)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let float_or_null f = if Float.is_nan f then Json.Null else Json.Float f

let value_to_json = function
  | Counter v -> [ ("type", Json.String "counter"); ("value", Json.Int v) ]
  | Gauge v -> [ ("type", Json.String "gauge"); ("value", Json.Int v) ]
  | Hist h ->
      [
        ("type", Json.String "histogram");
        ("count", Json.Int (Histogram.count h));
        ("sum", Json.Float (Histogram.sum h));
        ("mean", float_or_null (Histogram.mean h));
        ( "p50",
          Json.Int (if Histogram.count h = 0 then 0 else Histogram.percentile h 50.) );
        ( "p99",
          Json.Int (if Histogram.count h = 0 then 0 else Histogram.percentile h 99.) );
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ])
               (Histogram.buckets h)) );
      ]
  | Summary s ->
      [
        ("type", Json.String "summary");
        ("n", Json.Int (Stats.count s));
        ("sum", Json.Float (Stats.sum s));
        ("mean", float_or_null (Stats.mean s));
        ("stddev", float_or_null (Stats.stddev s));
        ("min", float_or_null (Stats.min s));
        ("max", float_or_null (Stats.max s));
      ]

let to_json t =
  Json.List
    (List.map (fun (name, v) -> Json.Obj (("name", Json.String name) :: value_to_json v)) t)

let document ?(meta = []) t =
  Json.Obj
    ((("schema", Json.String "kona.telemetry.v1") :: meta) @ [ ("metrics", to_json t) ])

let write_json ~path ?meta t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (document ?meta t));
      output_char oc '\n')

let pp_value fmt = function
  | Counter v -> Format.fprintf fmt "%d" v
  | Gauge v -> Format.fprintf fmt "%d (gauge)" v
  | Hist h -> Histogram.pp fmt h
  | Summary s -> Stats.pp fmt s

let pp_table fmt t =
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 t
  in
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-*s  %a@." width name pp_value v)
    t
