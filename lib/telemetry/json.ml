(* Minimal JSON document type with a compact encoder and a strict parser.

   The repository deliberately avoids external serialization dependencies
   (the container bakes in only the core toolchain); the telemetry exporters
   and their tests need exactly this much JSON and nothing more. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/Infinity; empty-stream stats degrade to null. *)
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (strict; good enough to validate our own exporters) *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.s
    && match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> cur.pos <- cur.pos + 1
    | Some '\\' -> (
        cur.pos <- cur.pos + 1;
        match peek cur with
        | Some '"' -> Buffer.add_char buf '"'; cur.pos <- cur.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; cur.pos <- cur.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; cur.pos <- cur.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; cur.pos <- cur.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; cur.pos <- cur.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; cur.pos <- cur.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; cur.pos <- cur.pos + 1; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; cur.pos <- cur.pos + 1; loop ()
        | Some 'u' ->
            if cur.pos + 5 > String.length cur.s then fail cur "short \\u escape";
            let hex = String.sub cur.s (cur.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape"
            in
            (* Only BMP code points below 0x80 round-trip as single bytes; our
               exporters never emit higher ones unescaped. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            cur.pos <- cur.pos + 5;
            loop ()
        | _ -> fail cur "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        cur.pos <- cur.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while cur.pos < String.length cur.s && is_num_char cur.s.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  if text = "" then fail cur "expected number";
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad float"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
      expect cur '{';
      skip_ws cur;
      if peek cur = Some '}' then begin
        cur.pos <- cur.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              cur.pos <- cur.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              cur.pos <- cur.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected , or }"
        in
        Obj (fields [])
      end
  | Some '[' ->
      expect cur '[';
      skip_ws cur;
      if peek cur = Some ']' then begin
        cur.pos <- cur.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              cur.pos <- cur.pos + 1;
              items (v :: acc)
          | Some ']' ->
              cur.pos <- cur.pos + 1;
              List.rev (v :: acc)
          | _ -> fail cur "expected , or ]"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

let of_string s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors used by tests and the CLI assertions *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None
let to_int_opt = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
