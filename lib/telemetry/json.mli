(** Minimal JSON documents: the telemetry exporters' wire format.

    Compact encoder plus a strict parser ([of_string]) so tests and the CLI
    can validate exporter output without external dependencies.  NaN and
    infinite floats encode as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) encoding. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete document; [Error] carries a position. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
