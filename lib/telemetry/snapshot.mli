(** Immutable point-in-time view of a metrics registry.

    Snapshots are plain data: taking one copies every histogram and summary,
    so later mutation of the live registry cannot leak in.  Benches take a
    snapshot per phase and export [diff]s; multi-run aggregation uses
    [merge]. *)

type value =
  | Counter of int  (** Monotonic event count. *)
  | Gauge of int  (** Instantaneous level (resident pages, queue depth). *)
  | Hist of Kona_util.Histogram.t  (** Log2-bucketed latency distribution. *)
  | Summary of Kona_util.Stats.t  (** Welford mean/variance/min/max. *)

type t = (string * value) list
(** Sorted by metric name. *)

val find : t -> string -> value option

val counter_value : t -> string -> int option
(** Integer value of a counter or gauge by name. *)

val diff : before:t -> after:t -> t
(** Per-phase delta: counters subtract, histograms subtract bucket-wise,
    gauges and summaries report the [after] level.  Metrics absent from
    [before] pass through unchanged. *)

val merge : t -> t -> t
(** Cross-stream union: counters add, histograms and summaries merge,
    gauges take the max. *)

val to_json : t -> Json.t
(** The metrics array: one object per metric with a ["type"] tag. *)

val document : ?meta:(string * Json.t) list -> t -> Json.t
(** Self-describing export document: schema tag, caller metadata (system,
    workload, seed, ...), then ["metrics"]. *)

val write_json : path:string -> ?meta:(string * Json.t) list -> t -> unit

val pp_table : Format.formatter -> t -> unit
(** Human-readable aligned table, one metric per line. *)
