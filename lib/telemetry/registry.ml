open Kona_util

module Counter = struct
  type t = { mutable count : int }

  let incr t = t.count <- t.count + 1
  let add t v = t.count <- t.count + v
  let value t = t.count
end

module Gauge = struct
  type t = { mutable level : int }

  let set t v = t.level <- v
  let add t v = t.level <- t.level + v
  let value t = t.level
end

type source =
  | S_counter of Counter.t
  | S_counter_fn of (unit -> int)
  | S_gauge of Gauge.t
  | S_gauge_fn of (unit -> int)
  | S_hist of Histogram.t
  | S_summary of Stats.t

type t = { tbl : (string, source) Hashtbl.t; prefix : string }

let create () = { tbl = Hashtbl.create 64; prefix = "" }
let scoped t ~prefix = { tbl = t.tbl; prefix = t.prefix ^ prefix }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       name

let full_name name labels =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  match labels with
  | [] -> name
  | labels ->
      List.iter
        (fun (k, v) ->
          if not (valid_name k && valid_name v) then
            invalid_arg
              (Printf.sprintf "Registry: invalid label %S=%S on metric %S" k v name))
        labels;
      let rendered =
        List.map (fun (k, v) -> k ^ "=" ^ v)
          (List.sort (fun (a, _) (b, _) -> String.compare a b) labels)
      in
      name ^ "{" ^ String.concat "," rendered ^ "}"

let register t name labels source =
  let fn = t.prefix ^ full_name name labels in
  if Hashtbl.mem t.tbl fn then
    invalid_arg (Printf.sprintf "Registry: duplicate metric %S" fn);
  Hashtbl.add t.tbl fn source

let counter t ?(labels = []) name =
  let c = { Counter.count = 0 } in
  register t name labels (S_counter c);
  c

let counter_fn t ?(labels = []) name f = register t name labels (S_counter_fn f)

let gauge t ?(labels = []) name =
  let g = { Gauge.level = 0 } in
  register t name labels (S_gauge g);
  g

let gauge_fn t ?(labels = []) name f = register t name labels (S_gauge_fn f)

let histogram t ?(labels = []) name =
  let h = Histogram.create () in
  register t name labels (S_hist h);
  h

let histogram_ref t ?(labels = []) name h = register t name labels (S_hist h)

let summary t ?(labels = []) name =
  let s = Stats.create () in
  register t name labels (S_summary s);
  s

let mem t ?(labels = []) name =
  Hashtbl.mem t.tbl (t.prefix ^ full_name name labels)

let in_scope t name = t.prefix = "" || String.starts_with ~prefix:t.prefix name

let size t =
  Hashtbl.fold (fun name _ n -> if in_scope t name then n + 1 else n) t.tbl 0

let snapshot t : Snapshot.t =
  Hashtbl.fold
    (fun name source acc ->
      if not (in_scope t name) then acc
      else
        let value =
          match source with
          | S_counter c -> Snapshot.Counter (Counter.value c)
          | S_counter_fn f -> Snapshot.Counter (f ())
          | S_gauge g -> Snapshot.Gauge (Gauge.value g)
          | S_gauge_fn f -> Snapshot.Gauge (f ())
          | S_hist h -> Snapshot.Hist (Histogram.copy h)
          | S_summary s -> Snapshot.Summary (Stats.copy s)
        in
        (name, value) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
