module Rack = Kona_rack.Rack
module Rack_controller = Kona.Rack_controller
module Runtime = Kona.Runtime
module Workloads = Kona_workloads.Workloads
module Injector = Kona_faults.Injector

type outcome = {
  oc_spec : Spec.t;
  oc_fingerprint : string;
  oc_violations : Invariants.violation list;
  oc_aborted : string option;
  oc_integrity : (string * int) list;
  oc_injected : (string * int) list;
  oc_divergent : int;
  oc_unrepairable : int;
  oc_degraded : string option;
  oc_result : Rack.result option;
}

let nth_cyclic l i default =
  match l with [] -> default | _ -> List.nth l (i mod List.length l)

let config_of_setup (s : Spec.setup) ~extra_node_slots =
  {
    Rack.default_config with
    scale = Workloads.Smoke;
    nodes = s.Spec.nodes;
    node_capacity = s.Spec.node_cap;
    node_gbps = s.Spec.gbps;
    replicas = s.Spec.replicas;
    faults = [];
    fault_seed = s.Spec.fault_seed;
    shared_pages = 0 (* published through ops, never at start *);
    shared_ops = 0;
    shared_writers = s.Spec.writers;
    quantum = s.Spec.quantum;
    policy = s.Spec.policy;
    fast_nodes = min s.Spec.fast_nodes s.Spec.nodes;
    slow_extra_ns = s.Spec.slow_extra_ns;
    ops = [];
    extra_node_slots;
    runtime =
      {
        Runtime.default_config with
        fmem_pages = s.Spec.fmem;
        scrub_interval_ns =
          (if s.Spec.scrub_ns > 0 then Some s.Spec.scrub_ns else None);
        verify_checksums = s.Spec.verify;
        arm_injector = true (* fault clauses arrive as ops, mid-replay *);
        heartbeat_ns =
          (if s.Spec.heartbeat_ns > 0 then Some s.Spec.heartbeat_ns else None);
        lease_ns = s.Spec.lease_ns;
      };
  }

let tenants_of_setup (s : Spec.setup) =
  List.init s.Spec.tenants (fun i ->
      {
        Rack.name = Printf.sprintf "t%d" i;
        workload = nth_cyclic s.Spec.workloads i "kv-seq";
        bw_share = max 1 (nth_cyclic s.Spec.shares i 1);
        mem_quota =
          (match nth_cyclic s.Spec.quotas i 0 with 0 -> None | q -> Some q);
        seed = s.Spec.seed + i;
      })

let apply_op e op =
  match op with
  | Spec.Run { n } ->
      let consumed = ref 0 in
      let continue_ = ref true in
      while !continue_ && !consumed < n do
        let c = Rack.step e in
        if c = 0 then continue_ := false else consumed := !consumed + c
      done
  | Spec.Crash { id } -> Rack.crash_node e ~id
  | Spec.Flap { dur_ns } -> Rack.flap_links e ~dur_ns
  | Spec.Partition { dur_ns; ids } -> Rack.partition_nodes e ~dur_ns ~ids
  | Spec.Corrupt clause -> Rack.arm_fault e clause
  | Spec.Quota { tenant; bytes } ->
      if tenant < Rack.tenant_count e then
        (* Never set a cap below what is already charged: admission of
           bytes the tenant holds must stay well-defined. *)
        Rack.set_tenant_quota e ~tenant
          ~bytes:(max bytes (Rack.tenant_used e ~tenant))
  | Spec.Publish { pages } -> Rack.publish e ~pages
  | Spec.Shared { rounds } ->
      for _ = 1 to rounds do
        Rack.shared_round e
      done
  | Spec.Mwrite { rounds } ->
      for _ = 1 to rounds do
        Rack.multi_writer_round e
      done
  | Spec.Shm_rpc { calls } ->
      (* fixed roles: tenant 1 calls into tenant 0; a one-tenant rack has
         no peer to ring, so the op degenerates to a no-op *)
      if Rack.tenant_count e >= 2 then
        ignore (Kona_shmem.Shm_rpc.run e ~client:1 ~server:0 ~calls ())
  | Spec.Scrub ->
      Rack.flush_logs e;
      Rack.force_scrub e
  | Spec.Add_node { capacity } -> Rack.apply_op e (Kona_rack.Rack_ops.Add_node { capacity })
  | Spec.Drain { id } -> Rack.apply_op e (Kona_rack.Rack_ops.Drain { id })
  | Spec.Rebalance -> Rack.apply_op e Kona_rack.Rack_ops.Rebalance
  | Spec.Migrate_epoch -> Rack.force_migration e

let fingerprint (r : Rack.result) =
  Array.to_list r.Rack.r_tenants
  |> List.map (fun (tr : Rack.tenant_result) -> tr.Rack.t_fingerprint)
  |> String.concat "|"
  |> Digest.string
  |> Digest.to_hex

let execute ?plant ?(check_end = true) (spec : Spec.t) =
  let extra_node_slots =
    List.length
      (List.filter (function Spec.Add_node _ -> true | _ -> false) spec.Spec.ops)
  in
  let config = config_of_setup spec.Spec.setup ~extra_node_slots in
  let tenants = tenants_of_setup spec.Spec.setup in
  let violations = ref [] in
  let aborted = ref None in
  let result = ref None in
  let engine = ref None in
  (try
     let e = Rack.start config tenants in
     engine := Some e;
     let ctx result = { Invariants.engine = e; spec; result } in
     let boundary () =
       match Invariants.check Invariants.Boundary (ctx None) with
       | [] -> true
       | vs ->
           violations := vs;
           false
     in
     let rec apply ops i =
       match ops with
       | [] -> true
       | op :: rest ->
           apply_op e op;
           (match plant with Some f -> f i op e | None -> ());
           boundary () && apply rest (i + 1)
     in
     if apply spec.Spec.ops 0 && check_end then begin
       (* The shadow-heap oracle compares final bytes: the replay must
          run to exhaustion before the divergence check means anything. *)
       while Rack.step e > 0 do
         ()
       done;
       let r = Rack.finish e in
       result := Some r;
       violations :=
         Invariants.check Invariants.Boundary (ctx (Some r))
         @ Invariants.check Invariants.End (ctx (Some r))
     end
   with
  | Rack_controller.Quota_exceeded { tenant; quota; used; requested } ->
      aborted :=
        Some
          (Printf.sprintf "quota-exceeded: tenant %s at %d/%d, requested %d"
             tenant used quota requested)
  | Out_of_memory -> aborted := Some "out-of-memory: a node's capacity ran out");
  let rt0 = Option.map (fun e -> Rack.runtime e ~tenant:0) !engine in
  {
    oc_spec = spec;
    oc_fingerprint =
      (match !result with Some r -> fingerprint r | None -> "");
    oc_violations = !violations;
    oc_aborted = !aborted;
    oc_integrity =
      (match rt0 with Some rt -> Runtime.integrity_counters rt | None -> []);
    oc_injected =
      (match rt0 with
      | Some rt -> (
          match Runtime.injector rt with
          | Some inj -> Injector.counters inj
          | None -> [])
      | None -> []);
    oc_divergent =
      (match !result with
      | Some r ->
          Array.fold_left
            (fun acc (tr : Rack.tenant_result) -> acc + tr.Rack.t_mismatches)
            0 r.Rack.r_tenants
      | None -> 0);
    oc_unrepairable =
      (match rt0 with
      | Some rt -> List.length (Runtime.unrepairable_pages rt)
      | None -> 0);
    oc_degraded = Option.join (Option.map Runtime.degraded rt0);
    oc_result = !result;
  }

let passed o = o.oc_violations = []
