(** Scenario grammar: one line describes one whole episode.

    A spec is a [';']-separated clause list.  The first clause is the
    setup (rack shape, workloads, seeds); every following clause is one
    op, applied in sequence order between replay slices:

    {v
    setup:tenants=2,nodes=3,...;run:n=512;bit-flip:p=0.1;drain:id=1;run:n=512
    v}

    Ops cover the whole public surface:

    - [run:n=N] — replay at least [N] recorded workload accesses
      (interleaved across tenants in scheduler quanta);
    - [crash:id=N] — fail-stop memory node [N] now (failover/degrade);
    - [flap:dur=D] — outage every tenant's NIC port for [D];
    - [partition:dur=D,nodes=A|B] — asymmetric partition: the listed
      nodes stay healthy but their links to the whole rack drop for [D]
      (deliveries defer, heartbeats go silent; with [hb] set in the
      setup, long partitions are falsely declared dead and fenced);
    - any probabilistic {!Kona_faults.Fault_spec} clause
      ([bit-flip:p=0.1], [torn-write:p=...], [stale-read:p=...],
      [dup-deliver:p=...], [wqe-drop:p=...], [wqe-delay:p=...,ns=...],
      [rpc-timeout:p=...]) — armed on tenant 0 from this point on;
    - [quota:t=I,bytes=B] — reset tenant [I]'s memory quota (clamped to
      its current usage at execution, so admission stays well-defined);
    - [publish:pages=N] — tenant 0 publishes an [N]-page shared segment,
      the others map it foreign;
    - [shared:rounds=N] — [N] synthetic shared-segment rounds (tenant 0
      writes, the rest read);
    - [mwrite:rounds=N] — [N] multi-writer rounds: the writer rotates
      over the setup's [writers] tenants, every other tenant reads the
      line back through the MSI directory (writer handoffs, RFO
      invalidations);
    - [shmrpc:calls=N] — [N] shared-memory RPC calls between tenant 1
      (client) and tenant 0 (server) over coherent ring lines; no-op
      with fewer than two tenants;
    - [scrub] — force one full scrub sweep on every runtime;
    - [add[:cap=B]] / [drain:id=N] / [rebalance] — rack reconfiguration
      ops applied immediately;
    - [migrate-epoch] — force one placement-migrator epoch.

    Durations accept ns/us/ms/s suffixes; lists (workloads, shares,
    quotas) use ['|'] so [','] stays the parameter separator.  Rendering
    is canonical and total: [parse (to_string t) = Ok t]. *)

type op =
  | Run of { n : int }
  | Crash of { id : int }
  | Flap of { dur_ns : int }
  | Partition of { dur_ns : int; ids : int list }
  | Corrupt of Kona_faults.Fault_spec.clause  (** probabilistic kinds only *)
  | Quota of { tenant : int; bytes : int }
  | Publish of { pages : int }
  | Shared of { rounds : int }
  | Mwrite of { rounds : int }
  | Shm_rpc of { calls : int }
  | Scrub
  | Add_node of { capacity : int option }
  | Drain of { id : int }
  | Rebalance
  | Migrate_epoch

type setup = {
  tenants : int;
  nodes : int;
  node_cap : int;  (** bytes per memory node *)
  gbps : float;  (** per-node ingress rate *)
  replicas : int;
  fmem : int;  (** per-tenant local-cache pages *)
  quantum : int;  (** accesses per scheduling slice *)
  seed : int;  (** workload seed base (tenant [i] gets [seed + i]) *)
  fault_seed : int;
  scrub_ns : int;  (** background scrub interval; 0 = no scrubber *)
  verify : bool;  (** on-fetch checksum verification *)
  workloads : string list;  (** cyclic per tenant *)
  shares : int list;  (** cyclic per tenant, all >= 1 *)
  quotas : int list;  (** cyclic per tenant; 0 = unmetered *)
  policy : string;  (** placement policy slug *)
  fast_nodes : int;
  slow_extra_ns : int;
  heartbeat_ns : int;
      (** [hb=]: membership heartbeat interval; 0 (default) = legacy
          omniscient failure detection, no lease machinery *)
  lease_ns : int;
      (** [lease=]: membership lease; must be >= [hb] when [hb > 0] *)
  writers : int;
      (** [writers=]: tenants allowed to write the shared segment
          ({!Kona_rack.Rack.config.shared_writers}); 1 (default) keeps
          the single-publisher read-mostly path *)
}

type t = { setup : setup; ops : op list }

val default_setup : setup
(** Single tenant on 2 x 128 MiB nodes, kv-seq, one replica, 256-page
    cache, 200 us scrub, verification on, first-fit placement. *)

val parse : string -> (t, string) result
val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val to_string : t -> string
(** Canonical one-line rendering ([parse (to_string t) = Ok t]). *)

val pp : Format.formatter -> t -> unit

val ns_to_string : int -> string
val duration_of_string : string -> int
(** Shared duration helpers (same grammar as {!Kona_faults.Fault_spec}).
    [duration_of_string] raises on malformed input. *)
