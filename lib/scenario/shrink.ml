(* Delta debugging over op sequences.  Because episodes are bit-exact
   deterministic in their spec, "re-run and compare the first violated
   invariant's name" is a sound oracle: a candidate either reproduces
   the same named failure or it does not — there is no flakiness to
   confound the search. *)

type result = { minimal : Spec.t; attempts : int }

let shrink_op (op : Spec.op) =
  let halve v floor = if v > floor then [ max floor (v / 2) ] else [] in
  match op with
  | Spec.Run { n } -> List.map (fun n -> Spec.Run { n }) (halve n 1)
  | Spec.Flap { dur_ns } ->
      List.map (fun dur_ns -> Spec.Flap { dur_ns }) (halve dur_ns 1_000)
  | Spec.Partition { dur_ns; ids } ->
      List.map (fun dur_ns -> Spec.Partition { dur_ns; ids }) (halve dur_ns 1_000)
  | Spec.Shared { rounds } ->
      List.map (fun rounds -> Spec.Shared { rounds }) (halve rounds 1)
  | Spec.Mwrite { rounds } ->
      List.map (fun rounds -> Spec.Mwrite { rounds }) (halve rounds 1)
  | Spec.Shm_rpc { calls } ->
      List.map (fun calls -> Spec.Shm_rpc { calls }) (halve calls 1)
  | Spec.Publish { pages } ->
      List.map (fun pages -> Spec.Publish { pages }) (halve pages 1)
  | Spec.Quota { tenant; bytes } ->
      List.map (fun bytes -> Spec.Quota { tenant; bytes }) (halve bytes 0)
  | Spec.Crash _ | Spec.Corrupt _ | Spec.Scrub | Spec.Add_node _
  | Spec.Drain _ | Spec.Rebalance | Spec.Migrate_epoch ->
      []

let run ?(max_attempts = 400) ~oracle spec =
  match oracle spec with
  | None -> invalid_arg "Shrink.run: spec does not fail the oracle"
  | Some key ->
      let attempts = ref 0 in
      let still_fails candidate =
        !attempts < max_attempts
        && begin
             incr attempts;
             oracle candidate = Some key
           end
      in
      let best = ref spec in
      (* Phase 1: remove op windows, large to small.  On success retry
         the same window size from the left; otherwise halve it. *)
      let try_window len =
        let ops = !best.Spec.ops in
        let n = List.length ops in
        let rec scan start =
          if start + len > n then false
          else
            let cand_ops =
              List.filteri (fun i _ -> i < start || i >= start + len) ops
            in
            let cand = { !best with Spec.ops = cand_ops } in
            if still_fails cand then begin
              best := cand;
              true
            end
            else scan (start + 1)
        in
        scan 0
      in
      let rec minimize len =
        if len >= 1 then
          if try_window len then
            minimize (min len (max 1 (List.length !best.Spec.ops / 2)))
          else minimize (len / 2)
      in
      minimize (max 1 (List.length spec.Spec.ops / 2));
      (* Phase 2: shrink numeric fields of the surviving ops to a
         fixpoint (halving toward each field's floor). *)
      let rec fields () =
        let ops = Array.of_list !best.Spec.ops in
        let improved = ref false in
        Array.iteri
          (fun i op ->
            List.iter
              (fun op' ->
                if not !improved then begin
                  let cand_ops =
                    Array.to_list
                      (Array.mapi (fun j o -> if j = i then op' else o) ops)
                  in
                  let cand = { !best with Spec.ops = cand_ops } in
                  if still_fails cand then begin
                    best := cand;
                    improved := true
                  end
                end)
              (shrink_op op))
          ops;
        if !improved then fields ()
      in
      fields ();
      { minimal = !best; attempts = !attempts }
