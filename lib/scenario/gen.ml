module Rng = Kona_util.Rng
module Units = Kona_util.Units
module Fault_spec = Kona_faults.Fault_spec

(* Probabilities live on a 1/10000 grid so the canonical %g rendering of
   a generated clause re-parses to the exact same float — generated
   specs must round-trip bit-for-bit for replay. *)
let grid_p rng ~lo ~hi =
  let lo = int_of_float (lo *. 10000.) and hi = int_of_float (hi *. 10000.) in
  float_of_int (lo + Rng.int rng (hi - lo + 1)) /. 10000.

let pick rng l = List.nth l (Rng.int rng (List.length l))

let workload_pool = [ "kv-seq"; "kv-uniform"; "kv-zipf" ]

(* Corruption family: single tenant, verification + scrubber on, every
   probabilistic fault kind in play.  Kept crash/drain/migration-free so
   the integrity-accounting invariant's detection equalities stay exact
   (failover and page moves heal corruption outside the detection
   paths). *)
let corruption_setup rng =
  {
    Spec.default_setup with
    tenants = 1;
    nodes = 2;
    fmem = pick rng [ 128; 256 ];
    quantum = pick rng [ 128; 256; 512 ];
    seed = Rng.int rng 1_000_000;
    fault_seed = Rng.int rng 1_000_000;
    scrub_ns = pick rng [ 100_000; 200_000; 500_000 ];
    workloads = [ pick rng workload_pool ];
    gbps = pick rng [ 0.5; 1.0; 2.0 ];
  }

let corruption_op rng ~published =
  match Rng.int rng 11 with
  | 0 | 1 | 2 ->
      Spec.Run { n = 256 * (1 + Rng.int rng 8) }
  | 3 ->
      Spec.Corrupt (Fault_spec.Bit_flip { p = grid_p rng ~lo:0.02 ~hi:0.2 })
  | 4 ->
      Spec.Corrupt (Fault_spec.Torn_write { p = grid_p rng ~lo:0.02 ~hi:0.2 })
  | 5 ->
      Spec.Corrupt (Fault_spec.Dup_deliver { p = grid_p rng ~lo:0.02 ~hi:0.2 })
  | 6 ->
      Spec.Corrupt (Fault_spec.Stale_read { p = grid_p rng ~lo:0.01 ~hi:0.08 })
  | 7 -> Spec.Scrub
  | 8 ->
      if published then Spec.Shared { rounds = 8 + Rng.int rng 24 }
      else Spec.Publish { pages = 16 + Rng.int rng 48 }
  | 9 ->
      (* no membership here (hb=0): the window defers deliveries and
         replays them at heal; corruption riding a deferred delivery must
         still be detected when it finally lands (the exactness ledger
         excludes partition runs — deferral heals some injections) *)
      Spec.Partition
        { dur_ns = 1_000 * (20 + Rng.int rng 80); ids = [ Rng.int rng 2 ] }
  | _ ->
      Spec.Quota
        { tenant = 0; bytes = Units.mib (16 + Rng.int rng 48) }

(* Ops family: multi-tenant rack reconfiguration — crash/flap/quota
   changes, node adds and drains, forced rebalance and migration epochs.
   Corruption clauses are excluded (their accounting invariant does not
   survive page moves); at most [replicas] crashes so failover keeps
   every page reachable and the placement-coherence invariant stays
   checkable. *)
let ops_setup rng =
  let tenants = 1 + Rng.int rng 3 in
  let nodes = 2 + Rng.int rng 3 in
  (* Membership on a grid: off (legacy detection) or a short lease so
     generated partitions actually expire leases within an episode.
     With membership on, crashes are excluded (ops_op) — failover waits
     for lease expiry, and a too-short episode would leave pages homed
     on the dead store with the detector still counting down. *)
  let heartbeat_ns = pick rng [ 0; 0; 10_000; 20_000 ] in
  let lease_ns = pick rng [ 50_000; 100_000 ] in
  {
    Spec.default_setup with
    tenants;
    nodes;
    replicas = 1;
    heartbeat_ns;
    lease_ns;
    fmem = pick rng [ 128; 256 ];
    quantum = pick rng [ 128; 256; 512 ];
    seed = Rng.int rng 1_000_000;
    fault_seed = Rng.int rng 1_000_000;
    workloads =
      List.init tenants (fun _ -> pick rng workload_pool);
    shares = List.init tenants (fun _ -> 1 + Rng.int rng 4);
    quotas = [ 0 ];
    policy = pick rng [ "first-fit"; "heat"; "centralized" ];
    fast_nodes = 1 + Rng.int rng nodes;
    slow_extra_ns = pick rng [ 0; 200; 500 ];
    gbps = pick rng [ 0.5; 1.0; 2.0; 4.0 ];
  }

let ops_op rng ~setup ~crashes ~adds ~published =
  let tenants = setup.Spec.tenants in
  match Rng.int rng 13 with
  | 0 | 1 | 2 | 3 ->
      Spec.Run { n = 256 * (1 + Rng.int rng 8) }
  | 4 when !crashes < setup.Spec.replicas && setup.Spec.heartbeat_ns = 0 ->
      incr crashes;
      Spec.Crash { id = Rng.int rng setup.Spec.nodes }
  | 5 -> Spec.Flap { dur_ns = 1_000 * (10 + Rng.int rng 90) }
  | 12 ->
      (* partitions never touch mirror stores (minted physical ids), so
         every write made during the window survives on a mirror even
         when a long window triggers a false-positive failover *)
      Spec.Partition
        {
          dur_ns = 1_000 * (50 + Rng.int rng 250);
          ids = [ Rng.int rng setup.Spec.nodes ];
        }
  | 6 ->
      Spec.Quota
        {
          tenant = Rng.int rng tenants;
          bytes = Units.mib (16 + Rng.int rng 48);
        }
  | 7 when !adds < 2 ->
      incr adds;
      Spec.Add_node
        {
          capacity =
            (if Rng.bool rng then Some (Units.mib (64 + 64 * Rng.int rng 2))
             else None);
        }
  | 8 -> Spec.Drain { id = Rng.int rng setup.Spec.nodes }
  | 9 -> Spec.Rebalance
  | 10 -> Spec.Migrate_epoch
  | _ ->
      if published then Spec.Shared { rounds = 8 + Rng.int rng 24 }
      else Spec.Publish { pages = 16 + Rng.int rng 48 }

(* Shmem family: multi-writer shared traffic through the MSI directory —
   rotating writers, shared-memory RPC rings, crashes of the node homing
   the segment (owner data) and partitions landing mid-handoff (recall
   deliveries defer and replay at heal).  Corruption is excluded for the
   same reason as the ops family; crashes are bounded by the replica
   degree so the last-writer-wins oracle keeps something to read. *)
let shmem_setup rng =
  let tenants = 2 + Rng.int rng 2 in
  {
    Spec.default_setup with
    tenants;
    nodes = 2;
    replicas = 1;
    writers = 2 + Rng.int rng (tenants - 1);
    fmem = pick rng [ 64; 128; 256 ];
    quantum = pick rng [ 128; 256 ];
    seed = Rng.int rng 1_000_000;
    fault_seed = Rng.int rng 1_000_000;
    workloads = List.init tenants (fun _ -> pick rng workload_pool);
    shares = List.init tenants (fun _ -> 1 + Rng.int rng 3);
    quotas = [ 0 ];
    gbps = pick rng [ 0.5; 1.0; 2.0 ];
  }

let shmem_op rng ~setup ~crashes ~published =
  let publish () = Spec.Publish { pages = 8 + Rng.int rng 24 } in
  match Rng.int rng 12 with
  | 0 | 1 | 2 -> Spec.Run { n = 256 * (1 + Rng.int rng 6) }
  | 3 | 4 | 5 ->
      if published then Spec.Mwrite { rounds = 8 + Rng.int rng 24 }
      else publish ()
  | 6 | 7 ->
      if published then Spec.Shm_rpc { calls = 4 + Rng.int rng 12 }
      else publish ()
  | 8 when !crashes < setup.Spec.replicas ->
      (* with the segment published, this can be the node homing the
         current owner's lines: the handoff state must survive failover *)
      incr crashes;
      Spec.Crash { id = Rng.int rng setup.Spec.nodes }
  | 9 ->
      Spec.Partition
        {
          dur_ns = 1_000 * (20 + Rng.int rng 80);
          ids = [ Rng.int rng setup.Spec.nodes ];
        }
  | 10 -> Spec.Flap { dur_ns = 1_000 * (10 + Rng.int rng 50) }
  | _ ->
      if published then Spec.Shared { rounds = 4 + Rng.int rng 12 }
      else publish ()

let generate ~seed ~ops =
  let rng = Rng.create ~seed in
  let family = Rng.int rng 3 in
  let setup =
    match family with
    | 0 -> corruption_setup rng
    | 1 -> ops_setup rng
    | _ -> shmem_setup rng
  in
  let crashes = ref 0 and adds = ref 0 and published = ref false in
  let n = max 1 ops in
  let op_list =
    List.init n (fun i ->
        let op =
          if i = 0 then Spec.Run { n = 256 * (1 + Rng.int rng 4) }
          else
            match family with
            | 0 -> corruption_op rng ~published:!published
            | 1 -> ops_op rng ~setup ~crashes ~adds ~published:!published
            | _ -> shmem_op rng ~setup ~crashes ~published:!published
        in
        (match op with Spec.Publish _ -> published := true | _ -> ());
        op)
  in
  { Spec.setup; ops = op_list }
