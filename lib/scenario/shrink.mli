(** Seeded shrinking: delta-debug a failing episode down to a minimal
    repro.

    The oracle maps a spec to the {e name} of the first invariant it
    violates ([None] = passes).  Determinism makes this sound: a
    candidate spec either reproduces the same named failure or it does
    not.  Shrinking first removes op windows (classic ddmin, window size
    halving from |ops|/2 to 1), then halves numeric op fields (run
    lengths, flap durations, shared rounds, ...) to a fixpoint. *)

type result = {
  minimal : Spec.t;  (** still fails the oracle with the original name *)
  attempts : int;  (** oracle evaluations spent *)
}

val shrink_op : Spec.op -> Spec.op list
(** Numeric-field shrink candidates for one op (empty if none). *)

val run :
  ?max_attempts:int ->
  oracle:(Spec.t -> string option) ->
  Spec.t ->
  result
(** [run ~oracle spec] requires [oracle spec = Some _] (raises
    [Invalid_argument] otherwise) and returns a sub-spec that still
    fails with the same invariant name.  [max_attempts] (default 400)
    bounds oracle evaluations; the best-so-far spec is returned when the
    budget runs out. *)
