(** Cross-subsystem invariant registry.

    Each invariant is a named, documented check over a paused
    {!Kona_rack.Rack.engine}.  [Boundary] invariants are cheap enough to
    evaluate after every op; [End] invariants need the frozen
    {!Kona_rack.Rack.result} (divergence oracles, final counters).  A
    failing check names the invariant and describes the offending state,
    so a fuzz report reads as a bug report, not a diff. *)

type scope = Boundary | End

type ctx = {
  engine : Kona_rack.Rack.engine;
  spec : Spec.t;  (** guards that depend on what the episode did *)
  result : Kona_rack.Rack.result option;  (** [Some] only for [End] checks *)
}

type violation = { inv : string; detail : string }

type t = {
  name : string;
  scope : scope;
  doc : string;
  check : ctx -> string list;  (** one string per violation, empty = holds *)
}

val registry : t list
(** node-accounting, quota-conservation, placement-coherence,
    at-most-one-primary, no-post-fence-write and single-owner-per-line
    at every boundary; shadow-heap, integrity-accounting,
    recovery-convergence, wfq-bounds and readers-observe-last-write at
    the end of the episode. *)

val names : string list

val check : scope -> ctx -> violation list
(** Evaluate every registered invariant of [scope] against [ctx]. *)
