module Rack = Kona_rack.Rack
module Rack_controller = Kona.Rack_controller
module Resource_manager = Kona.Resource_manager
module Memory_node = Kona.Memory_node
module Runtime = Kona.Runtime
module Injector = Kona_faults.Injector
module Membership = Kona_membership.Membership
module Units = Kona_util.Units

type scope = Boundary | End

type ctx = {
  engine : Rack.engine;
  spec : Spec.t;
  result : Rack.result option;  (** [Some] only for [End] checks *)
}

type violation = { inv : string; detail : string }

type t = { name : string; scope : scope; doc : string; check : ctx -> string list }

let find k l = try List.assoc k l with Not_found -> 0

let crash_ops spec =
  List.length
    (List.filter (function Spec.Crash _ -> true | _ -> false) spec.Spec.ops)

(* ------------------------------------------------------------------ *)

(* Node bookkeeping: the rack always has at least one node, the fast
   tier never outgrows it, and every registered node's break pointer
   stays inside its capacity. *)
let node_accounting ctx =
  let e = ctx.engine in
  let bad = ref [] in
  let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  if Rack.node_count e < 1 then add "rack has %d nodes" (Rack.node_count e);
  if Rack.fast_node_count e > Rack.node_count e then
    add "fast tier (%d) larger than the rack (%d)" (Rack.fast_node_count e)
      (Rack.node_count e);
  List.iter
    (fun node ->
      let id = Memory_node.id node in
      let used = Memory_node.used node and cap = Memory_node.capacity node in
      if used < 0 || used > cap then
        add "node %d used %d outside [0,%d]" id used cap;
      if Memory_node.free_bytes node <> cap - used then
        add "node %d free_bytes inconsistent with used" id)
    (Rack_controller.nodes (Rack.controller e));
  List.rev !bad

(* Quota conservation: every slab the controller has handed out is owned
   by some tenant's resource manager (physical identity, shared-segment
   mappings deduplicated), the controller's per-tenant charges sum to
   exactly those slabs, and no tenant exceeds its cap.  Migration and
   drains move pages, never slabs, so this holds across every op. *)
let quota_conservation ctx =
  let e = ctx.engine in
  let c = Rack.controller e in
  let slab_size = Rack_controller.slab_size c in
  let bad = ref [] in
  let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  let owned = ref [] in
  let charged = ref 0 in
  for i = 0 to Rack.tenant_count e - 1 do
    let rm = Runtime.resource_manager (Rack.runtime e ~tenant:i) in
    List.iter
      (fun slab -> if not (List.memq slab !owned) then owned := slab :: !owned)
      (Resource_manager.slabs rm);
    let used = Rack.tenant_used e ~tenant:i in
    if used < 0 then add "tenant %d charged %d bytes" i used;
    charged := !charged + used;
    let name = (Rack.tenant_cfgs e).(i).Rack.name in
    match Rack_controller.quota c ~tenant:name with
    | Some q when used > q -> add "tenant %d used %d over quota %d" i used q
    | Some _ | None -> ()
  done;
  let allocated = Rack_controller.slabs_allocated c in
  if allocated <> List.length !owned then
    add "%d slab(s) allocated but %d owned by resource managers" allocated
      (List.length !owned);
  if !charged <> allocated * slab_size then
    add "charges total %d bytes but %d slab(s) of %d were allocated" !charged
      allocated slab_size;
  List.rev !bad

(* Page-table / replication coherence: every backed page translates to a
   node the controller knows, at an address inside that node's capacity;
   and when the replication degree covers every crash in the spec,
   failover must have kept each page's home alive. *)
let placement_coherence ctx =
  let e = ctx.engine in
  let c = Rack.controller e in
  let bad = ref [] in
  let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  let require_alive = crash_ops ctx.spec <= ctx.spec.Spec.setup.Spec.replicas in
  (* With lease-based membership, a crashed home is only a violation once
     the detector has declared that store dead AND its queued failover
     finished — mid-lease (or mid-recovery) boundaries legitimately see
     pages homed on a dead store. *)
  let converged_dead n =
    if ctx.spec.Spec.setup.Spec.heartbeat_ns = 0 then true
    else
      match Runtime.membership (Rack.runtime e ~tenant:0) with
      | None -> true
      | Some m ->
          Membership.state m ~id:(Memory_node.id n) = Some Membership.Dead
          && Rack.recovery_idle e
  in
  for i = 0 to Rack.tenant_count e - 1 do
    let rm = Runtime.resource_manager (Rack.runtime e ~tenant:i) in
    Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
        match Rack_controller.node c ~id:node with
        | exception _ ->
            add "tenant %d page %d homed on unknown node %d" i vpage node
        | n ->
            if remote_addr < 0
               || remote_addr + Units.page_size > Memory_node.capacity n
            then
              add "tenant %d page %d at %#x outside node %d (cap %d)" i vpage
                remote_addr node (Memory_node.capacity n)
            else if
              require_alive && (not (Memory_node.alive n)) && converged_dead n
            then
              add "tenant %d page %d homed on dead node %d despite %d replica(s)"
                i vpage node ctx.spec.Spec.setup.Spec.replicas)
  done;
  List.rev !bad

(* Shadow-heap oracle: the divergence check [Rack.finish] runs per
   tenant found no mismatched byte, and pages only go unreachable when a
   node actually crashed. *)
let shadow_heap ctx =
  match ctx.result with
  | None -> []
  | Some r ->
      let bad = ref [] in
      let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
      Array.iteri
        (fun i (tr : Rack.tenant_result) ->
          if tr.Rack.t_mismatches > 0 then
            add "tenant %d: %d page(s) diverged from the shadow heap" i
              tr.Rack.t_mismatches;
          if tr.Rack.t_lost_pages > 0 && r.Rack.r_node_crashes = 0 then
            add "tenant %d lost %d page(s) without any node crash" i
              tr.Rack.t_lost_pages)
        r.Rack.r_tenants;
      List.rev !bad

(* Integrity accounting (the soak harness's detection ledger): every
   injected torn write, duplicate delivery and stale read was reported,
   and every armed bit-flip was found or healed by a clean overwrite.
   Only exact when nothing moved pages out from under the detectors —
   failover, migration and drains re-copy data through paths that heal
   corruption silently — and no delivery was lost outright. *)
let integrity_accounting ctx =
  match ctx.result with
  | None -> []
  | Some r -> (
      let e = ctx.engine in
      let rt = Rack.runtime e ~tenant:0 in
      match Runtime.injector rt with
      | None -> []
      | Some inj ->
          let injected = Injector.counters inj in
          let exact =
            r.Rack.r_node_crashes = 0
            && r.Rack.r_migrations = 0
            && r.Rack.r_drained_pages = 0
            && Rack.drain_failures e = 0
            && find "log.lost_writes" (Runtime.stats rt) = 0
            (* a partition defers deliveries across the detectors' replay
               and a membership failover re-copies pages wholesale — both
               heal or reject corruption outside the detection ledger *)
            && find "partitions" injected = 0
            && Runtime.declared_dead rt = 0
          in
          if not exact then []
          else begin
            let counters = Runtime.integrity_counters rt in
            let bad = ref [] in
            let expect what got want =
              if got <> want then
                bad := Printf.sprintf "%s: %d, expected %d" what got want :: !bad
            in
            expect "torn events detected vs injected"
              (find "integrity.torn_events" counters)
              (find "torn_writes" injected);
            expect "duplicate deliveries detected vs injected"
              (find "seq.duplicates" counters)
              (find "dup_delivers" injected);
            expect "stale reads detected vs injected"
              (find "integrity.stale_reads" counters)
              (find "stale_reads" injected);
            expect "armed bit-flips accounted (found + healed)"
              (find "integrity.flips_armed" counters)
              (find "integrity.flips_found" counters
              + find "integrity.healed_overwrite" counters);
            List.rev !bad
          end)

(* Split-brain exclusion: for every logical slot, the store currently
   backing it is the only one allowed to be alive and unfenced.  Every
   former backing — displaced by a failover — must be either actually
   crashed or fenced at a failover epoch; a falsely-declared-dead node
   returning from a partition shows up here alive, and MUST be fenced. *)
let at_most_one_primary ctx =
  let e = ctx.engine in
  let c = Rack.controller e in
  let bad = ref [] in
  let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  List.iter
    (fun id ->
      let backing = Rack_controller.node c ~id in
      List.iter
        (fun f ->
          if Memory_node.alive f && not (Memory_node.fenced f) then
            add
              "slot %d: former backing %d is alive and unfenced alongside \
               backing %d"
              id (Memory_node.id f) (Memory_node.id backing))
        (Rack_controller.former_backings c ~id))
    (Rack_controller.logical_ids c);
  List.rev !bad

(* Fences are absolute: a fenced store never absorbs another line, not
   even from a delivery stamped at the current epoch. *)
let no_post_fence_write ctx =
  let n = Runtime.post_fence_writes (Rack.runtime ctx.engine ~tenant:0) in
  if n > 0 then
    [ Printf.sprintf "%d line(s) were applied to fenced stores" n ]
  else []

(* Interruptible recovery must converge: once the episode has drained,
   no resumable task (failover, re-replication, rack drain) is still
   queued and no partition-deferred delivery is still parked — whatever
   overlapping faults interrupted them mid-run. *)
let recovery_convergence ctx =
  match ctx.result with
  | None -> []
  | Some _ ->
      let e = ctx.engine in
      let bad = ref [] in
      let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
      (match Rack.recovery_pending e with
      | [] -> ()
      | pending ->
          add "unfinished recovery task(s): %s" (String.concat ", " pending));
      for i = 0 to Rack.tenant_count e - 1 do
        let d = Runtime.deferred_pending (Rack.runtime e ~tenant:i) in
        if d > 0 then
          add "tenant %d still holds %d deferred deliveries after drain" i d
      done;
      List.rev !bad

(* WFQ sanity: no tenant's achieved rate beats the link, contended bytes
   are a subset of admitted bytes, and saturation never exceeds the
   admit count. *)
let wfq_bounds ctx =
  match ctx.result with
  | None -> []
  | Some r ->
      let gbps = ctx.spec.Spec.setup.Spec.gbps in
      let bad = ref [] in
      let add fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
      Array.iteri
        (fun i (tr : Rack.tenant_result) ->
          if tr.Rack.t_achieved_gbps > (gbps *. 1.0001) +. 1e-6 then
            add "tenant %d achieved %.3f Gbit/s over the %.3f Gbit/s link" i
              tr.Rack.t_achieved_gbps gbps;
          if tr.Rack.t_contended_bytes > tr.Rack.t_admitted_bytes then
            add "tenant %d contended %d bytes but admitted only %d" i
              tr.Rack.t_contended_bytes tr.Rack.t_admitted_bytes;
          if tr.Rack.t_delay_ns < 0 then
            add "tenant %d negative queueing delay %d" i tr.Rack.t_delay_ns)
        r.Rack.r_tenants;
      if r.Rack.r_saturated_admits > r.Rack.r_total_admits then
        add "%d saturated admits out of %d total" r.Rack.r_saturated_admits
          r.Rack.r_total_admits;
      List.rev !bad

(* Single owner per line: the multi-writer MSI home table must stay
   internally coherent at every op boundary — at most one tenant holds a
   line Modified, no other tracked copy survives a grant, owners are
   real tenants. *)
let single_owner_per_line ctx = Rack.coherence_audit ctx.engine

(* Readers observe the last write: after drain, every readable shared
   page's remote bytes equal the per-line last-writer-wins image under
   the virtual-clock total order — however many tenants wrote it. *)
let readers_observe_last_write ctx =
  match ctx.result with
  | None -> []
  | Some _ ->
      let n = Rack.shared_divergence ctx.engine in
      if n > 0 then
        [
          Printf.sprintf
            "%d shared page(s) diverged from the last-writer-wins image" n;
        ]
      else []

let registry =
  [
    {
      name = "node-accounting";
      scope = Boundary;
      doc = "node count, fast-tier size and per-node break pointers stay sane";
      check = node_accounting;
    };
    {
      name = "quota-conservation";
      scope = Boundary;
      doc =
        "every allocated slab is owned by a resource manager and per-tenant \
         charges sum to exactly the allocated slabs, within quota";
      check = quota_conservation;
    };
    {
      name = "placement-coherence";
      scope = Boundary;
      doc =
        "every backed page translates into a registered node's address \
         space; failover keeps homes alive when replicas cover the crashes";
      check = placement_coherence;
    };
    {
      name = "shadow-heap";
      scope = End;
      doc = "remote memory is byte-identical to each tenant's heap after drain";
      check = shadow_heap;
    };
    {
      name = "integrity-accounting";
      scope = End;
      doc =
        "injected corruption is detected or healed, exactly, when no page \
         moved out from under the detectors";
      check = integrity_accounting;
    };
    {
      name = "at-most-one-primary";
      scope = Boundary;
      doc =
        "every displaced former backing is crashed or fenced — a returning \
         false positive never serves alongside its successor";
      check = at_most_one_primary;
    };
    {
      name = "no-post-fence-write";
      scope = Boundary;
      doc = "no line is ever applied to a fenced store";
      check = no_post_fence_write;
    };
    {
      name = "recovery-convergence";
      scope = End;
      doc =
        "after drain no resumable recovery task is queued and no deferred \
         delivery is parked, however faults overlapped";
      check = recovery_convergence;
    };
    {
      name = "wfq-bounds";
      scope = End;
      doc = "achieved rates, contended bytes and saturation respect the link";
      check = wfq_bounds;
    };
    {
      name = "single-owner-per-line";
      scope = Boundary;
      doc =
        "the multi-writer MSI directory grants each shared line to at most \
         one owner, with no stale copy or non-tenant owner";
      check = single_owner_per_line;
    };
    {
      name = "readers-observe-last-write";
      scope = End;
      doc =
        "after drain, shared pages match the per-line last-writer-wins image \
         under the virtual-clock total order";
      check = readers_observe_last_write;
    };
  ]

let names = List.map (fun i -> i.name) registry

let check scope ctx =
  List.concat_map
    (fun i ->
      if i.scope <> scope then []
      else List.map (fun detail -> { inv = i.name; detail }) (i.check ctx))
    registry
