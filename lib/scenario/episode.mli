(** Episode executor: run one {!Spec.t} through the stepwise rack engine,
    evaluating the {!Invariants} registry at every op boundary and (by
    default) at the end of the episode.

    Execution is deterministic: the same spec yields the same telemetry,
    the same fingerprint and the same violations, bit for bit — which is
    what makes {!Shrink} sound and [konactl fuzz --replay] meaningful. *)

type outcome = {
  oc_spec : Spec.t;
  oc_fingerprint : string;
      (** digest over every tenant's telemetry fingerprint; [""] when the
          episode stopped early (boundary violation, abort or
          [check_end:false]) *)
  oc_violations : Invariants.violation list;
      (** empty = every invariant held.  Execution stops at the first
          violating boundary, so these all name the same boundary (or the
          episode end). *)
  oc_aborted : string option;
      (** a deterministic resource abort (quota admission, node capacity)
          — not a violation: the run is reported and replayable, but the
          end-state oracles were unreachable *)
  oc_integrity : (string * int) list;  (** tenant 0 integrity counters *)
  oc_injected : (string * int) list;  (** tenant 0 injector counters *)
  oc_divergent : int;  (** shadow-heap mismatches summed over tenants *)
  oc_unrepairable : int;  (** tenant 0 pages declared unrepairable *)
  oc_degraded : string option;  (** tenant 0 degraded-mode reason *)
  oc_result : Kona_rack.Rack.result option;
}

val execute :
  ?plant:(int -> Spec.op -> Kona_rack.Rack.engine -> unit) ->
  ?check_end:bool ->
  Spec.t ->
  outcome
(** [execute spec] starts the rack, applies each op in order, then drives
    the replay to exhaustion, finishes, and runs the end-of-episode
    invariants.

    [?plant] is a test hook called after each op is applied (with the op's
    index) — used to inject known bugs under the invariant registry.
    [?check_end:false] skips the drive-to-exhaustion, the finish and the
    end invariants: boundary-scoped checking only, for fast shrinking of
    failures that fire at an op boundary. *)

val passed : outcome -> bool
(** No invariant violations (aborts still count as passed). *)

val config_of_setup :
  Spec.setup -> extra_node_slots:int -> Kona_rack.Rack.config

val tenants_of_setup : Spec.setup -> Kona_rack.Rack.tenant_cfg list
