module Units = Kona_util.Units
module Fault_spec = Kona_faults.Fault_spec

type op =
  | Run of { n : int }
  | Crash of { id : int }
  | Flap of { dur_ns : int }
  | Partition of { dur_ns : int; ids : int list }
  | Corrupt of Fault_spec.clause
  | Quota of { tenant : int; bytes : int }
  | Publish of { pages : int }
  | Shared of { rounds : int }
  | Mwrite of { rounds : int }
  | Shm_rpc of { calls : int }
  | Scrub
  | Add_node of { capacity : int option }
  | Drain of { id : int }
  | Rebalance
  | Migrate_epoch

type setup = {
  tenants : int;
  nodes : int;
  node_cap : int;
  gbps : float;
  replicas : int;
  fmem : int;
  quantum : int;
  seed : int;
  fault_seed : int;
  scrub_ns : int;
  verify : bool;
  workloads : string list;
  shares : int list;
  quotas : int list;
  policy : string;
  fast_nodes : int;
  slow_extra_ns : int;
  heartbeat_ns : int;
  lease_ns : int;
  writers : int;
}

type t = { setup : setup; ops : op list }

let default_setup =
  {
    tenants = 1;
    nodes = 2;
    node_cap = Units.mib 128;
    gbps = 1.0;
    replicas = 1;
    fmem = 256;
    quantum = 256;
    seed = 42;
    fault_seed = 42;
    scrub_ns = 200_000;
    verify = true;
    workloads = [ "kv-seq" ];
    shares = [ 1 ];
    quotas = [ 0 ];
    policy = "first-fit";
    fast_nodes = 1;
    slow_extra_ns = 0;
    heartbeat_ns = 0;
    lease_ns = 200_000;
    writers = 1;
  }

(* ------------------------------------------------------------------ *)
(* Parsing.  Same conventions as {!Kona_faults.Fault_spec}: clauses are
   [';']-separated, each clause is [kind[:key=value,...]], durations take
   ns/us/ms/s suffixes.  Lists use ['|'] so [','] stays the parameter
   separator. *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let duration_of_string s =
  let num, mult =
    let n = String.length s in
    let split k m = (String.sub s 0 (n - k), m) in
    if n >= 2 && String.sub s (n - 2) 2 = "ns" then split 2 1
    else if n >= 2 && String.sub s (n - 2) 2 = "us" then split 2 1_000
    else if n >= 2 && String.sub s (n - 2) 2 = "ms" then split 2 1_000_000
    else if n >= 1 && s.[n - 1] = 's' then split 1 1_000_000_000
    else (s, 1)
  in
  match int_of_string_opt num with
  | Some v when v >= 0 -> v * mult
  | Some _ | None -> bad "bad duration %S (expected e.g. 500ns, 200us, 2ms, 1s)" s

let ns_to_string ns =
  if ns mod 1_000_000_000 = 0 && ns > 0 then Printf.sprintf "%ds" (ns / 1_000_000_000)
  else if ns mod 1_000_000 = 0 && ns > 0 then Printf.sprintf "%dms" (ns / 1_000_000)
  else if ns mod 1_000 = 0 && ns > 0 then Printf.sprintf "%dus" (ns / 1_000)
  else Printf.sprintf "%dns" ns

let int_of_field ~key s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad "bad integer %S for %s" s key

let pos_of_field ~key s =
  let v = int_of_field ~key s in
  if v < 1 then bad "%s must be >= 1 (got %d)" key v;
  v

let nonneg_of_field ~key s =
  let v = int_of_field ~key s in
  if v < 0 then bad "%s must be >= 0 (got %d)" key v;
  v

(* "kind[:k=v,...]" -> (kind, assoc, raw clause).  The raw clause is kept
   so corrupt ops can be re-parsed by Fault_spec verbatim. *)
let split_clause s =
  let head, params =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, [])
  in
  let kv p =
    match String.index_opt p '=' with
    | Some i -> (String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
    | None -> bad "bad parameter %S (expected key=value)" p
  in
  (head, List.map kv (List.filter (fun p -> p <> "") params))

let field params key =
  match List.assoc_opt key params with
  | Some v -> v
  | None -> bad "missing required parameter %s=" key

let known kind params ks =
  List.iter
    (fun (k, _) ->
      if not (List.mem k ks) then bad "unknown parameter %s for %s" k kind)
    params

let int_list ~key s =
  match
    String.split_on_char '|' s
    |> List.filter (fun x -> x <> "")
    |> List.map (fun x -> nonneg_of_field ~key x)
  with
  | [] -> bad "%s: empty list" key
  | l -> l

let string_list ~key s =
  match String.split_on_char '|' s |> List.filter (fun x -> x <> "") with
  | [] -> bad "%s: empty list" key
  | l -> l

let parse_setup clause =
  let kind, params = split_clause clause in
  if kind <> "setup" then bad "spec must start with a setup: clause, got %S" kind;
  known "setup" params
    [ "tenants"; "nodes"; "cap"; "gbps"; "replicas"; "fmem"; "quantum"; "seed";
      "fseed"; "scrub"; "verify"; "workloads"; "shares"; "quotas"; "policy";
      "fast"; "slowns"; "hb"; "lease"; "writers" ];
  let get key f default =
    match List.assoc_opt key params with Some v -> f v | None -> default
  in
  let s =
    {
      tenants = get "tenants" (pos_of_field ~key:"tenants") default_setup.tenants;
      nodes = get "nodes" (pos_of_field ~key:"nodes") default_setup.nodes;
      node_cap = get "cap" (pos_of_field ~key:"cap") default_setup.node_cap;
      gbps =
        get "gbps"
          (fun v ->
            match float_of_string_opt v with
            | Some g when g > 0. -> g
            | Some _ | None -> bad "bad gbps %S (expected a positive float)" v)
          default_setup.gbps;
      replicas = get "replicas" (nonneg_of_field ~key:"replicas") default_setup.replicas;
      fmem = get "fmem" (pos_of_field ~key:"fmem") default_setup.fmem;
      quantum = get "quantum" (pos_of_field ~key:"quantum") default_setup.quantum;
      seed = get "seed" (nonneg_of_field ~key:"seed") default_setup.seed;
      fault_seed = get "fseed" (nonneg_of_field ~key:"fseed") default_setup.fault_seed;
      scrub_ns = get "scrub" duration_of_string default_setup.scrub_ns;
      verify =
        get "verify"
          (fun v ->
            match v with
            | "0" -> false
            | "1" -> true
            | _ -> bad "bad verify %S (expected 0 or 1)" v)
          default_setup.verify;
      workloads = get "workloads" (string_list ~key:"workloads") default_setup.workloads;
      shares = get "shares" (int_list ~key:"shares") default_setup.shares;
      quotas = get "quotas" (int_list ~key:"quotas") default_setup.quotas;
      policy = get "policy" (fun v -> v) default_setup.policy;
      fast_nodes = get "fast" (nonneg_of_field ~key:"fast") default_setup.fast_nodes;
      slow_extra_ns = get "slowns" duration_of_string default_setup.slow_extra_ns;
      heartbeat_ns = get "hb" duration_of_string default_setup.heartbeat_ns;
      lease_ns = get "lease" duration_of_string default_setup.lease_ns;
      writers = get "writers" (pos_of_field ~key:"writers") default_setup.writers;
    }
  in
  List.iter
    (fun share -> if share < 1 then bad "shares entries must be >= 1 (got %d)" share)
    s.shares;
  if s.heartbeat_ns > 0 && s.lease_ns < s.heartbeat_ns then
    bad "lease (%d ns) must be >= hb (%d ns)" s.lease_ns s.heartbeat_ns;
  s

let parse_op clause =
  let kind, params = split_clause clause in
  match kind with
  | "run" ->
      known kind params [ "n" ];
      Run { n = pos_of_field ~key:"n" (field params "n") }
  | "crash" ->
      known kind params [ "id" ];
      Crash { id = nonneg_of_field ~key:"id" (field params "id") }
  | "flap" ->
      known kind params [ "dur" ];
      let dur_ns = duration_of_string (field params "dur") in
      if dur_ns < 1 then bad "flap dur must be positive";
      Flap { dur_ns }
  | "partition" ->
      known kind params [ "dur"; "nodes" ];
      let dur_ns = duration_of_string (field params "dur") in
      if dur_ns < 1 then bad "partition dur must be positive";
      Partition { dur_ns; ids = int_list ~key:"nodes" (field params "nodes") }
  | "quota" ->
      known kind params [ "t"; "bytes" ];
      Quota
        {
          tenant = nonneg_of_field ~key:"t" (field params "t");
          bytes = nonneg_of_field ~key:"bytes" (field params "bytes");
        }
  | "publish" ->
      known kind params [ "pages" ];
      Publish { pages = pos_of_field ~key:"pages" (field params "pages") }
  | "shared" ->
      known kind params [ "rounds" ];
      Shared { rounds = pos_of_field ~key:"rounds" (field params "rounds") }
  | "mwrite" ->
      known kind params [ "rounds" ];
      Mwrite { rounds = pos_of_field ~key:"rounds" (field params "rounds") }
  | "shmrpc" ->
      known kind params [ "calls" ];
      Shm_rpc { calls = pos_of_field ~key:"calls" (field params "calls") }
  | "scrub" ->
      known kind params [];
      Scrub
  | "add" ->
      known kind params [ "cap" ];
      Add_node
        {
          capacity =
            (match List.assoc_opt "cap" params with
            | Some v -> Some (pos_of_field ~key:"cap" v)
            | None -> None);
        }
  | "drain" ->
      known kind params [ "id" ];
      Drain { id = nonneg_of_field ~key:"id" (field params "id") }
  | "rebalance" ->
      known kind params [];
      Rebalance
  | "migrate-epoch" ->
      known kind params [];
      Migrate_epoch
  | _ -> (
      (* Not a scenario op: a fault clause in Fault_spec grammar, armed
         mid-sequence.  Scheduled kinds have dedicated scenario ops
         (crash:, flap:) that act at the op's position in the sequence
         rather than at an absolute virtual time. *)
      match Fault_spec.parse clause with
      | Ok
          [
            ( Fault_spec.Node_crash _ | Fault_spec.Link_flap _
            | Fault_spec.Partition _ );
          ] ->
          bad
            "scheduled fault %S not allowed here (use \
             crash:id=/flap:dur=/partition:dur=,nodes=)"
            clause
      | Ok [ c ] -> Corrupt c
      | Ok _ -> bad "expected exactly one clause in %S" clause
      | Error msg -> bad "unknown op %S (%s)" clause msg)

let parse s =
  match
    let clauses =
      String.split_on_char ';' s |> List.map String.trim
      |> List.filter (fun c -> c <> "")
    in
    match clauses with
    | [] -> bad "empty spec (expected setup:...[;op...])"
    | setup :: ops -> { setup = parse_setup setup; ops = List.map parse_op ops }
  with
  | spec -> Ok spec
  | exception Bad msg -> Error msg

let parse_exn s =
  match parse s with Ok t -> t | Error msg -> invalid_arg ("Scenario spec: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Rendering: canonical and total — every setup field is always emitted,
   so [parse (to_string t) = Ok t] holds structurally. *)

let setup_to_string s =
  Printf.sprintf
    "setup:tenants=%d,nodes=%d,cap=%d,gbps=%g,replicas=%d,fmem=%d,quantum=%d,seed=%d,fseed=%d,scrub=%s,verify=%d,workloads=%s,shares=%s,quotas=%s,policy=%s,fast=%d,slowns=%s,hb=%s,lease=%s,writers=%d"
    s.tenants s.nodes s.node_cap s.gbps s.replicas s.fmem s.quantum s.seed
    s.fault_seed (ns_to_string s.scrub_ns)
    (if s.verify then 1 else 0)
    (String.concat "|" s.workloads)
    (String.concat "|" (List.map string_of_int s.shares))
    (String.concat "|" (List.map string_of_int s.quotas))
    s.policy s.fast_nodes
    (ns_to_string s.slow_extra_ns)
    (ns_to_string s.heartbeat_ns)
    (ns_to_string s.lease_ns)
    s.writers

let op_to_string = function
  | Run { n } -> Printf.sprintf "run:n=%d" n
  | Crash { id } -> Printf.sprintf "crash:id=%d" id
  | Flap { dur_ns } -> Printf.sprintf "flap:dur=%s" (ns_to_string dur_ns)
  | Partition { dur_ns; ids } ->
      Printf.sprintf "partition:dur=%s,nodes=%s" (ns_to_string dur_ns)
        (String.concat "|" (List.map string_of_int ids))
  | Corrupt c -> Fault_spec.to_string [ c ]
  | Quota { tenant; bytes } -> Printf.sprintf "quota:t=%d,bytes=%d" tenant bytes
  | Publish { pages } -> Printf.sprintf "publish:pages=%d" pages
  | Shared { rounds } -> Printf.sprintf "shared:rounds=%d" rounds
  | Mwrite { rounds } -> Printf.sprintf "mwrite:rounds=%d" rounds
  | Shm_rpc { calls } -> Printf.sprintf "shmrpc:calls=%d" calls
  | Scrub -> "scrub"
  | Add_node { capacity = None } -> "add"
  | Add_node { capacity = Some c } -> Printf.sprintf "add:cap=%d" c
  | Drain { id } -> Printf.sprintf "drain:id=%d" id
  | Rebalance -> "rebalance"
  | Migrate_epoch -> "migrate-epoch"

let to_string t =
  String.concat ";" (setup_to_string t.setup :: List.map op_to_string t.ops)

let pp fmt t = Format.pp_print_string fmt (to_string t)
