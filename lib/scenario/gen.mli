(** Seeded whole-surface op-sequence generator.

    Every episode is drawn from one of three families, chosen by the
    seed:

    - the {e corruption} family — a single tenant with verification and a
      background scrubber on, exercising every probabilistic fault kind
      plus scrubs, quota resets and shared-segment traffic.  Crash,
      drain and migration ops are excluded so the integrity-accounting
      invariant's detection equalities stay exact;
    - the {e ops} family — a multi-tenant rack under reconfiguration:
      crashes (at most [replicas], so failover keeps every page
      reachable), link flaps, quota changes, node adds/drains, forced
      rebalances and migration epochs.  Corruption clauses are excluded;
    - the {e shmem} family — 2-3 tenants with multiple shared-segment
      writers, driving multi-writer rounds and shared-memory RPC rings
      through the MSI directory while crashing nodes (bounded by
      [replicas]) and partitioning them mid-handoff.

    Numeric parameters are drawn from grids whose canonical rendering
    re-parses exactly, so [Spec.parse (Spec.to_string (generate ...))]
    reproduces the episode bit-for-bit. *)

val generate : seed:int -> ops:int -> Spec.t
(** [generate ~seed ~ops] draws a spec with [max 1 ops] ops; the first
    op is always a [run:] slice.  Deterministic in [seed]. *)
