open Kona_util

type t = {
  crcs : int array; (* per-line CRC32C; meaningful only when recorded *)
  recorded : Bytes.t; (* bitmap, one bit per line *)
  lines : int;
  mutable nrecorded : int;
}

let create ~capacity =
  if capacity <= 0 || capacity mod Units.cache_line <> 0 then
    invalid_arg "Checksums.create: capacity must be a positive multiple of 64";
  let lines = capacity / Units.cache_line in
  {
    crcs = Array.make lines 0;
    recorded = Bytes.make ((lines + 7) / 8) '\000';
    lines;
    nrecorded = 0;
  }

let is_recorded t line =
  Char.code (Bytes.get t.recorded (line lsr 3)) land (1 lsl (line land 7)) <> 0

let mark_recorded t line =
  if not (is_recorded t line) then begin
    let byte = line lsr 3 in
    Bytes.set t.recorded byte
      (Char.chr (Char.code (Bytes.get t.recorded byte) lor (1 lsl (line land 7))));
    t.nrecorded <- t.nrecorded + 1
  end

let recorded t ~line =
  if line < 0 || line >= t.lines then invalid_arg "Checksums.recorded";
  is_recorded t line

let set_line t ~line ~crc =
  if line < 0 || line >= t.lines then invalid_arg "Checksums.set_line";
  t.crcs.(line) <- crc;
  mark_recorded t line

let record t ~store ~addr ~len =
  if len <= 0 then ()
  else begin
    let first = addr / Units.cache_line in
    let last = (addr + len - 1) / Units.cache_line in
    if addr < 0 || last >= t.lines then invalid_arg "Checksums.record";
    for line = first to last do
      t.crcs.(line) <-
        Crc32c.digest_bytes store ~pos:(line * Units.cache_line)
          ~len:Units.cache_line;
      mark_recorded t line
    done
  end

let line_ok t ~store ~line =
  if line < 0 || line >= t.lines then invalid_arg "Checksums.line_ok";
  (not (is_recorded t line))
  || t.crcs.(line)
     = Crc32c.digest_bytes store ~pos:(line * Units.cache_line)
         ~len:Units.cache_line

let corrupt_lines t ~store ~addr ~len =
  if len <= 0 then []
  else begin
    let first = addr / Units.cache_line in
    let last = (addr + len - 1) / Units.cache_line in
    if addr < 0 || last >= t.lines then invalid_arg "Checksums.corrupt_lines";
    let acc = ref [] in
    for line = last downto first do
      if is_recorded t line && not (line_ok t ~store ~line) then
        acc := (line * Units.cache_line) :: !acc
    done;
    !acc
  end

let recorded_count t = t.nrecorded
