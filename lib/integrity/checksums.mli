(** Per-cache-line CRC32C table over a flat byte store.

    A memory node keeps one of these alongside its backing bytes: every
    trusted write recomputes the CRCs of the lines it touched and marks
    them {e recorded}; verification only ever considers recorded lines,
    so untouched (never-written) memory is never a false positive.

    The table is the software stand-in for the per-line ECC the paper's
    FPGA memory node would provide in hardware. *)

type t

val create : capacity:int -> t
(** [capacity] is the store size in bytes; must be a multiple of the
    cache-line size (64B). All lines start unrecorded. *)

val record : t -> store:Bytes.t -> addr:int -> len:int -> unit
(** Recompute and record the CRCs of every line overlapping
    [addr, addr+len) from the current store contents.  This is the
    trusted-write primitive: callers must only invoke it when the
    store bytes are known-good. *)

val set_line : t -> line:int -> crc:int -> unit
(** Record a precomputed CRC for line index [line] (addr / 64) — used
    when the payload CRC was already verified on the wire, avoiding a
    recompute. *)

val recorded : t -> line:int -> bool

val line_ok : t -> store:Bytes.t -> line:int -> bool
(** [true] when the line is unrecorded or its stored CRC matches the
    store contents. *)

val corrupt_lines : t -> store:Bytes.t -> addr:int -> len:int -> int list
(** Absolute byte addresses (line-aligned, ascending) of recorded lines
    in [addr, addr+len) whose current store contents no longer match
    their recorded CRC. *)

val recorded_count : t -> int
(** Number of recorded lines (for metrics/tests). *)
