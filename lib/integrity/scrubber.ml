type outcome = Clean | Repaired of int | Unrepairable of int

type t = {
  interval_ns : int;
  budget : int;
  scan : unit -> int array;
  check : page:int -> outcome;
  mutable next_due : int; (* virtual time the next sweep may start *)
  mutable worklist : int array; (* pages of the in-flight sweep *)
  mutable cursor : int; (* next index into [worklist] *)
  mutable pages_scrubbed : int;
  mutable repairs : int;
  mutable unrepairable : int;
  mutable sweeps : int;
}

let create ~interval_ns ~budget ~scan ~check =
  if interval_ns <= 0 then invalid_arg "Scrubber.create: interval_ns";
  if budget < 1 then invalid_arg "Scrubber.create: budget";
  {
    interval_ns;
    budget;
    scan;
    check;
    next_due = interval_ns;
    worklist = [||];
    cursor = 0;
    pages_scrubbed = 0;
    repairs = 0;
    unrepairable = 0;
    sweeps = 0;
  }

let sweep_in_flight t = t.cursor < Array.length t.worklist

let start_sweep t =
  t.worklist <- t.scan ();
  t.cursor <- 0;
  t.sweeps <- t.sweeps + 1

let check_one t =
  let page = t.worklist.(t.cursor) in
  t.cursor <- t.cursor + 1;
  t.pages_scrubbed <- t.pages_scrubbed + 1;
  match t.check ~page with
  | Clean -> ()
  | Repaired n -> t.repairs <- t.repairs + n
  | Unrepairable n -> t.unrepairable <- t.unrepairable + n

let tick t ~now =
  if (not (sweep_in_flight t)) && now >= t.next_due then begin
    start_sweep t;
    t.next_due <- now + t.interval_ns
  end;
  let quota = ref t.budget in
  while sweep_in_flight t && !quota > 0 do
    check_one t;
    decr quota
  done

(* A complete sweep from scratch, ignoring interval and budget.  Any
   in-flight sweep is abandoned: its cursor may already have passed pages
   corrupted after it started (deliveries burst at fences), and the fresh
   worklist re-covers whatever remained of it anyway. *)
let force_sweep t =
  start_sweep t;
  while sweep_in_flight t do
    check_one t
  done

let pages_scrubbed t = t.pages_scrubbed
let repairs t = t.repairs
let unrepairable t = t.unrepairable
let sweeps t = t.sweeps
