(** Epoch + per-stream sequence numbers for CL-log deliveries.

    Every CL-log shipment to a destination node carries a
    [(stream, epoch, seq)] stamp: [stream] identifies the sender's
    per-destination ordering domain (one per logical node id), [seq]
    increments by one per shipment on that stream, and [epoch] bumps on
    reconfiguration (failover), invalidating any stragglers from the
    previous epoch.  The receiver tracks the last stamp seen per stream
    and classifies each delivery instead of applying blindly. *)

module Tx : sig
  type t

  val create : unit -> t
  val epoch : t -> int

  val bump_epoch : t -> unit
  (** Start a new epoch; all per-stream sequence counters restart at 0. *)

  val advance_epoch : t -> to_:int -> unit
  (** Adopt a rack-global fencing epoch (monotone): jump directly to
      [to_] and restart the per-stream counters, or do nothing when the
      sender is already at or past it.  Used to broadcast a failover's
      fencing epoch to every tenant's sender in one step. *)

  val next : t -> stream:int -> int
  (** Allocate the next sequence number on [stream] (0, 1, 2, ...). *)
end

module Rx : sig
  type t

  type verdict =
    | Ok  (** next-in-order (or first ever seen on this stream) *)
    | Gap of int  (** [n] shipments were skipped before this one *)
    | Duplicate  (** seq at or below the last applied — replay *)
    | Stale_epoch  (** from an epoch older than the newest seen *)

  val create : unit -> t

  val observe : t -> stream:int -> epoch:int -> seq:int -> verdict
  (** Classify a delivery and advance the stream state.  A newer epoch
      always resets the stream (first shipment of an epoch is [Ok] even
      if its seq restarts at 0); an unknown stream adopts whatever seq
      it first sees, so a freshly re-replicated mirror joining
      mid-stream does not report a spurious gap.  [Gap] advances the
      cursor past the missing range (the gap is reported exactly once). *)

  val pp_verdict : Format.formatter -> verdict -> unit
end
