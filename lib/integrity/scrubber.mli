(** Background FMem scrubber: a budgeted, virtual-clock-driven sweep
    over remote pages, calling back into the runtime to verify-and-
    repair each one.  The scrubber owns only pacing and accounting; the
    runtime supplies the worklist and the repair action, mirroring how
    PR 3's re-replication copies are budgeted. *)

type outcome =
  | Clean  (** page verified, nothing to do *)
  | Repaired of int  (** [n] corrupt lines repaired from a replica *)
  | Unrepairable of int  (** [n] corrupt lines with no clean copy *)

type t

val create :
  interval_ns:int ->
  budget:int ->
  scan:(unit -> int array) ->
  check:(page:int -> outcome) ->
  t
(** [interval_ns] paces full-sweep starts: a new sweep may begin once
    per interval.  [budget] caps pages checked per [tick] (>= 1).
    [scan] snapshots the worklist (page indices) at the start of each
    sweep; [check] verifies one page and reports what happened. *)

val tick : t -> now:int -> unit
(** Advance the scrubber to virtual time [now]: start a sweep if one is
    due and none is in flight, then check up to [budget] pages. *)

val force_sweep : t -> unit
(** Run one complete fresh sweep to the end immediately, ignoring
    interval and budget.  Any in-flight sweep is abandoned — its cursor
    may already have passed pages corrupted after it started, so only a
    from-scratch sweep guarantees every page is verified before the
    end-of-run oracle.  Used at drain. *)

val pages_scrubbed : t -> int
val repairs : t -> int
val unrepairable : t -> int
val sweeps : t -> int
