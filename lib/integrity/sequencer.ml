module Tx = struct
  type t = { mutable epoch : int; next_seq : (int, int) Hashtbl.t }

  let create () = { epoch = 0; next_seq = Hashtbl.create 8 }
  let epoch t = t.epoch

  let bump_epoch t =
    t.epoch <- t.epoch + 1;
    Hashtbl.reset t.next_seq

  (* Adopt a rack-global fencing epoch: a failover anywhere advances
     every tenant's sender to the same epoch so a fenced store can
     compare any shipment against one number.  Monotone — an epoch at or
     below the current one is a no-op (the local sender is already
     ahead or level, and its seq spaces must not reset twice). *)
  let advance_epoch t ~to_ =
    if to_ > t.epoch then begin
      t.epoch <- to_;
      Hashtbl.reset t.next_seq
    end

  let next t ~stream =
    let seq = Option.value (Hashtbl.find_opt t.next_seq stream) ~default:0 in
    Hashtbl.replace t.next_seq stream (seq + 1);
    seq
end

module Rx = struct
  type stream_state = { mutable epoch : int; mutable last_seq : int }
  type t = { streams : (int, stream_state) Hashtbl.t }

  type verdict = Ok | Gap of int | Duplicate | Stale_epoch

  let create () = { streams = Hashtbl.create 8 }

  let observe t ~stream ~epoch ~seq =
    match Hashtbl.find_opt t.streams stream with
    | None ->
        (* Unknown stream: adopt the first stamp we see.  A mirror
           created mid-run (re-replication) starts here and must not
           flag the sender's pre-existing seq as a gap. *)
        Hashtbl.replace t.streams stream { epoch; last_seq = seq };
        Ok
    | Some st ->
        if epoch < st.epoch then Stale_epoch
        else if epoch > st.epoch then begin
          st.epoch <- epoch;
          st.last_seq <- seq;
          Ok
        end
        else if seq <= st.last_seq then Duplicate
        else begin
          let missed = seq - st.last_seq - 1 in
          st.last_seq <- seq;
          if missed = 0 then Ok else Gap missed
        end

  let pp_verdict fmt = function
    | Ok -> Format.pp_print_string fmt "ok"
    | Gap n -> Format.fprintf fmt "gap:%d" n
    | Duplicate -> Format.pp_print_string fmt "duplicate"
    | Stale_epoch -> Format.pp_print_string fmt "stale-epoch"
end
