(** Kona-VM: the virtual-memory-based remote-memory runtime used as the
    principal baseline (§6.1), also configurable with Infiniswap-like and
    LegoOS-like cost profiles.

    It shares Kona's caching structure and eviction policy (same
    set-associative page cache), so measured differences come from the
    mechanism, exactly as in the paper:

    - fetch: page fault on first touch of a non-resident page
      (fault + user-space handling + RDMA, folded into the profile's
      remote-fetch latency), then a second, minor fault on the first write
      because pages are mapped read-only for dirty tracking;
    - dirty tracking: write-protection faults, page granularity;
    - eviction: whole dirty 4KB pages over RDMA, plus the unmap TLB
      invalidations charged to the application (shootdowns stall it). *)

type profile = {
  profile_name : string;
  remote_fetch_ns : int;  (** end-to-end not-present fault service time *)
  eviction_extra_ns : int;  (** extra per-page eviction software cost *)
}

val kona_vm_profile : Kona.Cost_model.t -> Kona_rdma.Cost.t -> profile
(** userfaultfd handling + raw RDMA page read. *)

val legoos_profile : Kona.Cost_model.t -> profile
val infiniswap_profile : Kona.Cost_model.t -> profile

type config = {
  cost : Kona.Cost_model.t;
  rdma : Kona_rdma.Cost.t;
  cache_config : Kona_cachesim.Hierarchy.config;
  cache_pages : int;  (** local DRAM page-cache capacity (in [page_bytes] units) *)
  cache_assoc : int;
  write_protect : bool;
      (** [false] = the paper's NoWP variant: one fault per fetch, but no
          dirty tracking, so every evicted page must be written back. *)
  page_bytes : int;
      (** translation/tracking/movement granularity (default 4096).  Larger
          values model huge pages: fewer faults, but fetches, protection and
          eviction all coarsen with it — the coupling Kona's design breaks
          (§3 "Decouple data movement size from the virtual memory page
          size"). *)
  sq_depth : int option;
      (** eviction QP send-queue window; [None] = unbounded (default). *)
  signal_interval : int;
      (** selective signaling on the eviction QP (1 = every WQE, default). *)
  backoff : Kona_util.Backoff.config;
      (** stack-wide retry/backoff policy for the eviction QP and the
          control-path RPC (default {!Kona_util.Backoff.default}). *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?nic:Kona_rdma.Nic.t ->
  ?hub:Kona_telemetry.Hub.t ->
  profile:profile ->
  controller:Kona.Rack_controller.t ->
  read_local:(addr:int -> len:int -> string) ->
  unit ->
  t
(** [hub] attaches telemetry through the same pipeline as Kona's runtime:
    the shared metric names ([fetch.latency_ns], [fmem.hits]/[fmem.misses],
    [nic.wire_bytes], [cache.*{level=...}], ...) are registered alongside
    the fault-specific [vm.*] counters, and the tracer receives
    [fetch.page]/[evict.page] spans and [vm.wp_fault] instants.  One hub per
    runtime instance. *)

val sink : t -> Kona_trace.Access.t -> unit
val drain : t -> unit

val app_ns : t -> int
val bg_ns : t -> int
val elapsed_ns : t -> int
val stats : t -> (string * int) list

val page_table : t -> Kona_vm.Page_table.t
val tlb : t -> Kona_vm.Tlb.t
val resource_manager : t -> Kona.Resource_manager.t
