open Kona_util
module Access = Kona_trace.Access
module Hierarchy = Kona_cachesim.Hierarchy
module Fmem = Kona_coherence.Fmem
module Page_table = Kona_vm.Page_table
module Tlb = Kona_vm.Tlb
module Nic = Kona_rdma.Nic
module Qp = Kona_rdma.Qp
module Hub = Kona_telemetry.Hub
module Registry = Kona_telemetry.Registry
module Tracer = Kona_telemetry.Tracer
module Cost_model = Kona.Cost_model
module Resource_manager = Kona.Resource_manager
module Rack_controller = Kona.Rack_controller
module Memory_node = Kona.Memory_node

type profile = {
  profile_name : string;
  remote_fetch_ns : int;
  eviction_extra_ns : int;
}

let kona_vm_profile cost rdma =
  {
    profile_name = "Kona-VM";
    remote_fetch_ns =
      Kona_rdma.Cost.batch_ns rdma ~sizes:[ Units.page_size ]
      + cost.Cost_model.minor_fault_ns + cost.Cost_model.userfault_extra_ns
      + cost.Cost_model.tlb_walk_ns;
    eviction_extra_ns = 2_000;
  }

let legoos_profile cost =
  {
    profile_name = "LegoOS";
    remote_fetch_ns = cost.Cost_model.remote_fault_legoos_ns;
    eviction_extra_ns = 4_000;
  }

let infiniswap_profile cost =
  {
    profile_name = "Infiniswap";
    remote_fetch_ns = cost.Cost_model.remote_fault_infiniswap_ns;
    eviction_extra_ns = cost.Cost_model.eviction_infiniswap_ns - 3_000;
  }

type config = {
  cost : Cost_model.t;
  rdma : Kona_rdma.Cost.t;
  cache_config : Hierarchy.config;
  cache_pages : int;
  cache_assoc : int;
  write_protect : bool;
  page_bytes : int;
  sq_depth : int option;
  signal_interval : int;
  backoff : Backoff.config;
}

let default_config =
  {
    cost = Cost_model.default;
    rdma = Kona_rdma.Cost.default;
    cache_config = Hierarchy.default_config;
    cache_pages = 1024;
    cache_assoc = 4;
    write_protect = true;
    page_bytes = Units.page_size;
    sq_depth = None;
    signal_interval = 1;
    backoff = Backoff.default;
  }

type t = {
  config : config;
  profile : profile;
  app_clock : Clock.t;
  bg_clock : Clock.t;
  hierarchy : Hierarchy.t;
  page_cache : Fmem.t; (* same structure/policy as Kona's FMem *)
  pt : Page_table.t;
  tlb : Tlb.t;
  rm : Resource_manager.t;
  controller : Rack_controller.t;
  nic : Nic.t;
  evict_qp : Qp.t;
  tracer : Tracer.t option;
  fetch_latency : Histogram.t;
  read_local : addr:int -> len:int -> string;
  mutable accesses : int;
  mutable page_hits : int;
  mutable remote_faults : int;
  mutable wp_faults : int;
  mutable pages_evicted : int;
  mutable dirty_pages_written : int;
  mutable shootdowns : int;
}

(* Same namespace as {!Kona.Runtime.register_metrics} where the concepts
   coincide ([fetch.latency_ns], [fmem.hits]/[fmem.misses],
   [nic.wire_bytes], ...), so one pipeline compares the two systems; the
   fault machinery publishes under [vm.*]. *)
let register_metrics t reg =
  let c ?labels name f = Registry.counter_fn reg ?labels name f in
  let g ?labels name f = Registry.gauge_fn reg ?labels name f in
  c "runtime.accesses" (fun () -> t.accesses);
  g "clock.app_ns" (fun () -> Clock.now t.app_clock);
  g "clock.bg_ns" (fun () -> Clock.now t.bg_clock);
  Registry.histogram_ref reg "fetch.latency_ns" t.fetch_latency;
  c "fetch.pages" (fun () -> t.remote_faults);
  c "fetch.bytes" (fun () -> t.remote_faults * t.config.page_bytes);
  c "fmem.hits" (fun () -> t.page_hits);
  c "fmem.misses" (fun () -> t.remote_faults);
  g "fmem.resident" (fun () -> Fmem.resident t.page_cache);
  c "fmem.evictions" (fun () -> Fmem.evictions t.page_cache);
  c "vm.remote_faults" (fun () -> t.remote_faults);
  c "vm.wp_faults" (fun () -> t.wp_faults);
  c "vm.shootdowns" (fun () -> t.shootdowns);
  c "vm.tlb_misses" (fun () -> Tlb.misses t.tlb);
  c "evict.pages" (fun () -> t.pages_evicted);
  c "wb.pages" (fun () -> t.dirty_pages_written);
  c "wb.bytes" (fun () -> t.dirty_pages_written * t.config.page_bytes);
  List.iter
    (fun (lvl, cache) ->
      let labels = [ ("level", lvl) ] in
      c ~labels "cache.accesses" (fun () ->
          let s = Kona_cachesim.Cache.stats cache in
          s.Kona_cachesim.Cache.reads + s.Kona_cachesim.Cache.writes);
      c ~labels "cache.misses" (fun () ->
          let s = Kona_cachesim.Cache.stats cache in
          s.Kona_cachesim.Cache.read_misses + s.Kona_cachesim.Cache.write_misses))
    [
      ("l1", Hierarchy.l1 t.hierarchy);
      ("l2", Hierarchy.l2 t.hierarchy);
      ("llc", Hierarchy.llc t.hierarchy);
    ];
  let labels = [ ("qp", "evict") ] in
  c ~labels "qp.wire_bytes" (fun () -> Qp.wire_bytes t.evict_qp);
  c ~labels "qp.payload_bytes" (fun () -> Qp.payload_bytes t.evict_qp);
  c ~labels "qp.posts" (fun () -> Qp.posts t.evict_qp);
  c ~labels "qp.verbs" (fun () -> Qp.verbs t.evict_qp);
  c ~labels "qp.window_stalls" (fun () -> Qp.window_stalls t.evict_qp);
  c ~labels "qp.window_stall_ns" (fun () -> Qp.window_stall_ns t.evict_qp);
  g ~labels "qp.outstanding_peak" (fun () -> Qp.outstanding_peak t.evict_qp);
  c "nic.ops" (fun () -> Nic.ops t.nic);
  c "nic.busy_ns" (fun () -> Nic.busy_ns t.nic);
  c "nic.stall_ns" (fun () -> Nic.stall_ns t.nic);
  (* Evictions go out on the QP; fetched pages also cross the NIC, but the
     fault path folds their wire time into the profile latency, so their
     bytes are accounted from the fault count. *)
  c "nic.wire_bytes" (fun () ->
      Qp.wire_bytes t.evict_qp + (t.remote_faults * t.config.page_bytes));
  g "rm.slabs" (fun () -> List.length (Resource_manager.slabs t.rm));
  c "rm.controller_round_trips" (fun () ->
      Resource_manager.controller_round_trips t.rm)

let create ?(config = default_config) ?nic ?hub ~profile ~controller ~read_local () =
  if config.page_bytes < Units.page_size || config.page_bytes mod Units.page_size <> 0
  then invalid_arg "Vm_runtime: page_bytes must be a positive multiple of 4096";
  let app_clock = Clock.create () in
  let bg_clock = Clock.create () in
  let tracer = Option.map Hub.tracer hub in
  (match tracer with
  | Some tr ->
      Tracer.set_clock tr (fun () -> (Clock.now app_clock, Clock.now bg_clock))
  | None -> ());
  let nic = match nic with Some n -> n | None -> Kona_rdma.Nic.create () in
  let t =
    {
      config;
      profile;
      app_clock;
      bg_clock;
      hierarchy =
        Hierarchy.create ~config:config.cache_config
          ~on_fill:(fun ~addr:_ ~write:_ -> ())
          ();
      page_cache = Fmem.create ~assoc:config.cache_assoc ~pages:config.cache_pages ();
      pt = Page_table.create ();
      tlb = Tlb.create ();
      rm =
        Resource_manager.create
          ~rpc:
            (Kona_rdma.Rpc.create ~cost:config.rdma ~backoff:config.backoff
               ~clock:app_clock ~nic ())
          ~controller ();
      controller;
      nic;
      evict_qp =
        Qp.create ~cost:config.rdma ~nic ?sq_depth:config.sq_depth
          ~retry:(Qp.retry_of config.backoff)
          ~signal_interval:config.signal_interval ~clock:bg_clock ();
      tracer;
      fetch_latency = Histogram.create ();
      read_local;
      accesses = 0;
      page_hits = 0;
      remote_faults = 0;
      wp_faults = 0;
      pages_evicted = 0;
      dirty_pages_written = 0;
      shootdowns = 0;
    }
  in
  (match hub with Some h -> register_metrics t (Hub.registry h) | None -> ());
  t

let charge_app t ns = Clock.advance t.app_clock ns
let charge_bg t ns = Clock.advance t.bg_clock ns

let page_bytes t = t.config.page_bytes

(* Write one whole dirty page back over RDMA (the page-granularity
   eviction path), on the background clock. *)
let writeback_page t ~vpage =
  match Resource_manager.translate t.rm ~vaddr:(vpage * page_bytes t) with
  | None -> failwith (Printf.sprintf "Vm_runtime: no backing for page %#x" vpage)
  | Some (node, raddr) ->
      let data = t.read_local ~addr:(vpage * page_bytes t) ~len:(page_bytes t) in
      let target = Rack_controller.node t.controller ~id:node in
      charge_bg t (Kona_rdma.Cost.memcpy_ns t.config.rdma ~bytes:(page_bytes t));
      charge_bg t t.profile.eviction_extra_ns;
      Qp.post t.evict_qp
        [
          Qp.wqe ~signaled:true
            ~deliver:(fun () -> Memory_node.write target ~addr:raddr ~data)
            Qp.Write ~len:(page_bytes t);
        ];
      t.dirty_pages_written <- t.dirty_pages_written + 1

let evict_victim t ~vpage =
  t.pages_evicted <- t.pages_evicted + 1;
  let bg_before = Clock.now t.bg_clock in
  let dirty =
    match Page_table.lookup t.pt ~page:vpage with
    | Some pte -> pte.Page_table.dirty || not t.config.write_protect
    | None -> false
  in
  if dirty then writeback_page t ~vpage;
  (* Unmapping requires invalidating the page's translation everywhere:
     this is the TLB shootdown the application pays for (§2.1). *)
  Page_table.unmap t.pt ~page:vpage;
  (match Page_table.lookup t.pt ~page:vpage with
  | Some pte -> pte.Page_table.dirty <- false
  | None -> ());
  Tlb.invalidate_page t.tlb ~page:vpage;
  t.shootdowns <- t.shootdowns + 1;
  charge_app t t.config.cost.Cost_model.tlb_invalidate_ns;
  ignore (Fmem.evict t.page_cache ~vpage : Fmem.victim option);
  match t.tracer with
  | Some tr ->
      Tracer.span tr "evict.page"
        ~dur_ns:(Clock.now t.bg_clock - bg_before)
        ~args:[ ("vpage", vpage); ("dirty", if dirty then 1 else 0) ]
  | None -> ()

let fetch_page t ~vpage =
  t.remote_faults <- t.remote_faults + 1;
  let app_before = Clock.now t.app_clock in
  (* The fault's latency floor is the profile's; bigger pages additionally
     pay their extra wire time relative to a 4KB transfer. *)
  charge_app t t.profile.remote_fetch_ns;
  if page_bytes t > Units.page_size then
    charge_app t
      (Kona_rdma.Cost.batch_ns t.config.rdma ~sizes:[ page_bytes t ]
      - Kona_rdma.Cost.batch_ns t.config.rdma ~sizes:[ Units.page_size ]);
  Resource_manager.ensure_backed t.rm ~addr:(vpage * page_bytes t)
    ~len:(page_bytes t);
  (* Pre-evict the set's LRU page if the set is full, so page-table state
     stays in sync with the page cache. *)
  (match Fmem.victim_candidate t.page_cache ~vpage with
  | Some victim -> evict_victim t ~vpage:victim
  | None -> ());
  ignore (Fmem.insert t.page_cache ~vpage : Fmem.victim option);
  let protection =
    if t.config.write_protect then Page_table.Read_only else Page_table.Read_write
  in
  Page_table.map t.pt ~page:vpage ~protection;
  let wait_ns = Clock.now t.app_clock - app_before in
  Histogram.add t.fetch_latency wait_ns;
  match t.tracer with
  | Some tr -> Tracer.span tr "fetch.page" ~dur_ns:wait_ns ~args:[ ("vpage", vpage) ]
  | None -> ()

let note_wp_fault t ~page =
  t.wp_faults <- t.wp_faults + 1;
  match t.tracer with
  | Some tr -> Tracer.instant tr "vm.wp_fault" ~args:[ ("vpage", page) ]
  | None -> ()

let page_access t ~page ~write =
  (match Tlb.access t.tlb ~page with
  | `Hit -> ()
  | `Miss -> charge_app t t.config.cost.Cost_model.tlb_walk_ns);
  match Page_table.fault_kind t.pt ~page ~write with
  | `None -> t.page_hits <- t.page_hits + 1
  | `Not_present -> (
      fetch_page t ~vpage:page;
      (* The triggering access retries: a write now takes the second,
         write-protection fault (§6.1: "Kona-VM incurs two page faults"). *)
      match Page_table.fault_kind t.pt ~page ~write with
      | `None -> ()
      | `Protection ->
          note_wp_fault t ~page;
          charge_app t t.config.cost.Cost_model.minor_fault_ns;
          Page_table.make_writable t.pt ~page;
          ignore (Page_table.fault_kind t.pt ~page ~write : [ `None | `Not_present | `Protection ])
      | `Not_present -> assert false)
  | `Protection ->
      t.page_hits <- t.page_hits + 1;
      note_wp_fault t ~page;
      charge_app t t.config.cost.Cost_model.minor_fault_ns;
      Page_table.make_writable t.pt ~page;
      ignore (Page_table.fault_kind t.pt ~page ~write : [ `None | `Not_present | `Protection ])

let charge_level t level =
  let c = t.config.cost in
  let ns =
    match level with
    | 1 -> c.Cost_model.l1_ns
    | 2 -> c.Cost_model.l1_ns +. c.Cost_model.l2_ns
    | 3 -> c.Cost_model.l1_ns +. c.Cost_model.l2_ns +. c.Cost_model.llc_ns
    | _ ->
        c.Cost_model.l1_ns +. c.Cost_model.l2_ns +. c.Cost_model.llc_ns
        +. c.Cost_model.cmem_ns
  in
  charge_app t (int_of_float ns)

let sink t event =
  t.accesses <- t.accesses + 1;
  let write = Access.is_write event in
  if page_bytes t = Units.page_size then
    Access.iter_pages event (fun page -> page_access t ~page ~write)
  else begin
    let first = event.Access.addr / page_bytes t in
    let last = (Access.end_addr event - 1) / page_bytes t in
    for page = first to last do
      page_access t ~page ~write
    done
  end;
  Access.iter_lines event (fun line ->
      let level = Hierarchy.access_line t.hierarchy ~addr:(line * Units.cache_line) ~write in
      charge_level t level)

let drain t =
  let resident = ref [] in
  Fmem.iter_resident t.page_cache (fun ~vpage ~dirty:_ -> resident := vpage :: !resident);
  List.iter (fun vpage -> evict_victim t ~vpage) !resident;
  Qp.wait_idle t.evict_qp

let app_ns t = Clock.now t.app_clock
let bg_ns t = Clock.now t.bg_clock
let elapsed_ns t = max (app_ns t) (bg_ns t)

let stats t =
  [
    ("accesses", t.accesses);
    ("remote_faults", t.remote_faults);
    ("wp_faults", t.wp_faults);
    ("pages_evicted", t.pages_evicted);
    ("dirty_pages_written", t.dirty_pages_written);
    ("shootdowns", t.shootdowns);
    ("tlb_misses", Tlb.misses t.tlb);
    ("evict_wire_bytes", Qp.wire_bytes t.evict_qp);
    ("resident_pages", Fmem.resident t.page_cache);
    ("page_hits", t.page_hits);
  ]

let page_table t = t.pt
let tlb t = t.tlb
let resource_manager t = t.rm
