(* Tests for Kona_vm: page-table fault semantics and the TLB model. *)

open Kona_vm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fault = Alcotest.of_pp (fun fmt k ->
    Format.pp_print_string fmt
      (match k with
      | `None -> "none"
      | `Not_present -> "not-present"
      | `Protection -> "protection"))

(* ------------------------------------------------------------------ *)
(* Page_table *)

let test_pt_lifecycle () =
  let pt = Page_table.create () in
  Alcotest.check fault "unmapped read" `Not_present
    (Page_table.fault_kind pt ~page:5 ~write:false);
  Page_table.map pt ~page:5 ~protection:Page_table.Read_only;
  Alcotest.check fault "read ok" `None (Page_table.fault_kind pt ~page:5 ~write:false);
  Alcotest.check fault "write protected" `Protection
    (Page_table.fault_kind pt ~page:5 ~write:true);
  Page_table.make_writable pt ~page:5;
  Alcotest.check fault "write ok" `None (Page_table.fault_kind pt ~page:5 ~write:true);
  Page_table.unmap pt ~page:5;
  Alcotest.check fault "unmapped again" `Not_present
    (Page_table.fault_kind pt ~page:5 ~write:true)

let test_pt_flags () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:1 ~protection:Page_table.Read_write;
  let pte = Option.get (Page_table.lookup pt ~page:1) in
  check_bool "fresh not accessed" false pte.Page_table.accessed;
  ignore (Page_table.fault_kind pt ~page:1 ~write:false);
  check_bool "accessed after read" true pte.Page_table.accessed;
  check_bool "not dirty after read" false pte.Page_table.dirty;
  ignore (Page_table.fault_kind pt ~page:1 ~write:true);
  check_bool "dirty after write" true pte.Page_table.dirty

let test_pt_write_protect_again () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:2 ~protection:Page_table.Read_write;
  ignore (Page_table.fault_kind pt ~page:2 ~write:true);
  Page_table.write_protect pt ~page:2;
  Alcotest.check fault "re-protected" `Protection
    (Page_table.fault_kind pt ~page:2 ~write:true);
  check_int "counts" 1 (Page_table.mapped_count pt);
  check_int "present" 1 (Page_table.present_count pt)

let test_pt_faults_dont_set_flags () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:3 ~protection:Page_table.Read_only;
  ignore (Page_table.fault_kind pt ~page:3 ~write:true);
  let pte = Option.get (Page_table.lookup pt ~page:3) in
  check_bool "faulting write does not dirty" false pte.Page_table.dirty

(* ------------------------------------------------------------------ *)
(* Tlb *)

let hit_t = Alcotest.of_pp (fun fmt -> function
  | `Hit -> Format.pp_print_string fmt "hit"
  | `Miss -> Format.pp_print_string fmt "miss")

let test_tlb_basic () =
  let tlb = Tlb.create ~entries:8 ~assoc:2 () in
  Alcotest.check hit_t "cold miss" `Miss (Tlb.access tlb ~page:1);
  Alcotest.check hit_t "warm hit" `Hit (Tlb.access tlb ~page:1);
  check_int "hits" 1 (Tlb.hits tlb);
  check_int "misses" 1 (Tlb.misses tlb)

let test_tlb_lru_within_set () =
  (* 8 entries 2-way -> 4 sets; pages 0, 4, 8 share set 0. *)
  let tlb = Tlb.create ~entries:8 ~assoc:2 () in
  ignore (Tlb.access tlb ~page:0);
  ignore (Tlb.access tlb ~page:4);
  ignore (Tlb.access tlb ~page:0);
  ignore (Tlb.access tlb ~page:8) (* evicts 4 *);
  Alcotest.check hit_t "0 still cached" `Hit (Tlb.access tlb ~page:0);
  Alcotest.check hit_t "4 evicted" `Miss (Tlb.access tlb ~page:4)

let test_tlb_invalidations () =
  let tlb = Tlb.create () in
  ignore (Tlb.access tlb ~page:7);
  Tlb.invalidate_page tlb ~page:7;
  Alcotest.check hit_t "invalidated" `Miss (Tlb.access tlb ~page:7);
  check_int "single invalidations" 1 (Tlb.single_invalidations tlb);
  ignore (Tlb.access tlb ~page:9);
  Tlb.flush_all tlb;
  Alcotest.check hit_t "flushed" `Miss (Tlb.access tlb ~page:9);
  check_int "full flushes" 1 (Tlb.full_flushes tlb)

let prop_tlb_hit_after_access =
  QCheck.Test.make ~name:"tlb access then access hits" ~count:200
    QCheck.(int_bound 100_000)
    (fun page ->
      let tlb = Tlb.create () in
      ignore (Tlb.access tlb ~page);
      Tlb.access tlb ~page = `Hit)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_vm"
    [
      ( "page_table",
        [
          Alcotest.test_case "lifecycle" `Quick test_pt_lifecycle;
          Alcotest.test_case "accessed/dirty flags" `Quick test_pt_flags;
          Alcotest.test_case "re-protection" `Quick test_pt_write_protect_again;
          Alcotest.test_case "faults leave flags clean" `Quick
            test_pt_faults_dont_set_flags;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "basic" `Quick test_tlb_basic;
          Alcotest.test_case "LRU within set" `Quick test_tlb_lru_within_set;
          Alcotest.test_case "invalidations" `Quick test_tlb_invalidations;
        ] );
      qsuite "tlb-props" [ prop_tlb_hit_after_access ];
    ]
