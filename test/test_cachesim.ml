(* Tests for Kona_cachesim: single-level cache behaviour and the 3-level
   inclusive hierarchy with its fill/writeback event streams. *)

open Kona_cachesim
module Access = Kona_trace.Access

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_cache ?(size = 512) ?(assoc = 2) ?(block = 64) () =
  Cache.create ~name:"test" ~size ~assoc ~block

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_miss () =
  let c = small_cache () in
  (match Cache.access c ~addr:0 ~write:false with
  | Cache.Miss None -> ()
  | _ -> Alcotest.fail "cold access must miss with no victim");
  (match Cache.access c ~addr:32 ~write:false with
  | Cache.Hit -> ()
  | _ -> Alcotest.fail "same line must hit");
  let s = Cache.stats c in
  check_int "reads" 2 s.Cache.reads;
  check_int "read misses" 1 s.Cache.read_misses

let test_cache_lru_eviction () =
  (* 512B, 2-way, 64B blocks -> 4 sets. Lines 0, 4, 8 map to set 0. *)
  let c = small_cache () in
  let addr line = line * 64 in
  ignore (Cache.access c ~addr:(addr 0) ~write:false);
  ignore (Cache.access c ~addr:(addr 4) ~write:false);
  ignore (Cache.access c ~addr:(addr 0) ~write:false) (* refresh line 0 *);
  (match Cache.access c ~addr:(addr 8) ~write:false with
  | Cache.Miss (Some v) -> check_int "LRU victim is line 4" (addr 4) v.Cache.block_addr
  | _ -> Alcotest.fail "expected eviction");
  check_bool "line 0 kept" true (Cache.probe c ~addr:(addr 0));
  check_bool "line 4 gone" false (Cache.probe c ~addr:(addr 4))

let test_cache_dirty_writeback () =
  let c = small_cache () in
  let addr line = line * 64 in
  ignore (Cache.access c ~addr:(addr 0) ~write:true);
  check_bool "dirty after write" true (Cache.is_dirty c ~addr:(addr 0));
  ignore (Cache.access c ~addr:(addr 4) ~write:false);
  (match Cache.access c ~addr:(addr 8) ~write:false with
  | Cache.Miss (Some v) ->
      check_int "victim addr" (addr 0) v.Cache.block_addr;
      check_bool "victim dirty" true v.Cache.dirty
  | _ -> Alcotest.fail "expected dirty eviction");
  check_int "dirty evictions counted" 1 (Cache.stats c).Cache.dirty_evictions

let test_cache_flush_and_set_dirty () =
  let c = small_cache () in
  ignore (Cache.access c ~addr:100 ~write:false);
  check_bool "set_dirty on resident" true (Cache.set_dirty c ~addr:100);
  (match Cache.flush_block c ~addr:100 with
  | Some v -> check_bool "flushed dirty" true v.Cache.dirty
  | None -> Alcotest.fail "expected resident block");
  check_bool "gone after flush" false (Cache.probe c ~addr:100);
  check_bool "set_dirty on absent" false (Cache.set_dirty c ~addr:100);
  Alcotest.(check (option reject)) "flush absent" None (Cache.flush_block c ~addr:100)

let test_cache_create_validation () =
  check_bool "bad block" true
    (try
       ignore (Cache.create ~name:"x" ~size:512 ~assoc:2 ~block:65);
       false
     with Invalid_argument _ -> true);
  check_bool "bad size" true
    (try
       ignore (Cache.create ~name:"x" ~size:500 ~assoc:2 ~block:64);
       false
     with Invalid_argument _ -> true)

let prop_cache_capacity =
  QCheck.Test.make ~name:"resident blocks never exceed capacity" ~count:100
    QCheck.(list_of_size Gen.(50 -- 200) (int_bound 10_000))
    (fun addrs ->
      let c = small_cache () in
      List.iter (fun addr -> ignore (Cache.access c ~addr ~write:false)) addrs;
      let resident = ref 0 in
      Cache.iter_resident c (fun ~block_addr:_ ~dirty:_ -> incr resident);
      !resident <= 512 / 64)

let prop_cache_hit_after_access =
  QCheck.Test.make ~name:"probe hits immediately after access" ~count:200
    QCheck.(int_bound 100_000)
    (fun addr ->
      let c = small_cache () in
      ignore (Cache.access c ~addr ~write:false);
      Cache.probe c ~addr)

(* ------------------------------------------------------------------ *)
(* Hierarchy *)

let tiny_config =
  {
    Hierarchy.l1 = { Hierarchy.size = 512; assoc = 2 };
    l2 = { Hierarchy.size = 1024; assoc = 2 };
    llc = { Hierarchy.size = 2048; assoc = 4 };
  }

let test_hierarchy_levels () =
  let h = Hierarchy.create ~config:tiny_config () in
  check_int "first access goes to memory" 4 (Hierarchy.access_line h ~addr:0 ~write:false);
  check_int "second hits L1" 1 (Hierarchy.access_line h ~addr:0 ~write:false);
  check_int "memory accesses" 1 (Hierarchy.memory_accesses h)

let test_hierarchy_fill_events () =
  let fills = ref [] in
  let h =
    Hierarchy.create ~config:tiny_config
      ~on_fill:(fun ~addr ~write -> fills := (addr, write) :: !fills)
      ()
  in
  ignore (Hierarchy.access_line h ~addr:70 ~write:true);
  ignore (Hierarchy.access_line h ~addr:70 ~write:false);
  Alcotest.(check (list (pair int bool))) "one fill, write-flagged" [ (64, true) ] !fills

let test_hierarchy_writeback_reaches_memory () =
  (* Write a line, then stream enough conflicting lines to push it out of
     all three levels; the dirty line must surface exactly once. *)
  let writebacks = ref [] in
  let h =
    Hierarchy.create ~config:tiny_config
      ~on_writeback:(fun ~addr -> writebacks := addr :: !writebacks)
      ()
  in
  ignore (Hierarchy.access_line h ~addr:0 ~write:true);
  for i = 1 to 512 do
    ignore (Hierarchy.access_line h ~addr:(i * 64) ~write:false)
  done;
  check_bool "dirty line written back" true (List.mem 0 !writebacks);
  check_int "exactly once" 1 (List.length (List.filter (fun a -> a = 0) !writebacks))

let test_hierarchy_flush_page () =
  let h = Hierarchy.create ~config:tiny_config () in
  ignore (Hierarchy.access_line h ~addr:4096 ~write:true);
  ignore (Hierarchy.access_line h ~addr:4160 ~write:false);
  let dirty = Hierarchy.flush_page h ~page:1 in
  Alcotest.(check (list int)) "only written line dirty" [ 4096 ] dirty;
  check_int "line gone from caches" 4 (Hierarchy.access_line h ~addr:4096 ~write:false);
  Alcotest.(check (list int)) "second flush finds nothing" []
    (Hierarchy.flush_page h ~page:1)

let test_hierarchy_resident_dirty () =
  let h = Hierarchy.create ~config:tiny_config () in
  ignore (Hierarchy.access_line h ~addr:8192 ~write:true);
  Alcotest.(check (list int)) "resident dirty" [ 8192 ]
    (Hierarchy.resident_dirty_lines h ~page:2);
  Alcotest.(check (list int)) "still resident (no invalidate)" [ 8192 ]
    (Hierarchy.resident_dirty_lines h ~page:2)

let prop_no_lost_writes =
  (* Every written line is either still resident (dirty) or was written
     back: stream random accesses, then flush everything and check the
     union of writebacks + flush results covers all written lines. *)
  QCheck.Test.make ~name:"hierarchy never loses a dirty line" ~count:50
    QCheck.(list_of_size Gen.(1 -- 300) (pair (int_bound 16_383) bool))
    (fun ops ->
      let writebacks = Hashtbl.create 64 in
      let h =
        Hierarchy.create ~config:tiny_config
          ~on_writeback:(fun ~addr -> Hashtbl.replace writebacks addr ())
          ()
      in
      let written = Hashtbl.create 64 in
      List.iter
        (fun (addr, write) ->
          if write then
            Hashtbl.replace written (Kona_util.Units.align_down addr ~alignment:64) ();
          ignore (Hierarchy.access_line h ~addr ~write))
        ops;
      for page = 0 to 3 do
        List.iter (fun a -> Hashtbl.replace writebacks a ()) (Hierarchy.flush_page h ~page)
      done;
      Hashtbl.fold (fun addr () acc -> acc && Hashtbl.mem writebacks addr) written true)

(* A reference model: fully-associative LRU as a plain list.  A Cache
   configured with a single set must agree with it exactly. *)
let prop_cache_matches_lru_model =
  QCheck.Test.make ~name:"single-set cache == list-based LRU model" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (pair (int_bound 2_000) bool))
    (fun ops ->
      let ways = 4 in
      let c = Cache.create ~name:"ref" ~size:(ways * 64) ~assoc:ways ~block:64 in
      let model = ref [] (* MRU first; (block, dirty) *) in
      List.for_all
        (fun (addr, write) ->
          let block = addr / 64 * 64 in
          let model_hit = List.mem_assoc block !model in
          (if model_hit then begin
             let dirty = List.assoc block !model || write in
             model := (block, dirty) :: List.remove_assoc block !model
           end
           else begin
             let kept = if List.length !model >= ways then
                 List.filteri (fun i _ -> i < ways - 1) !model
               else !model
             in
             model := (block, write) :: kept
           end);
          match Cache.access c ~addr ~write with
          | Cache.Hit -> model_hit
          | Cache.Miss _ -> not model_hit)
        ops)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "dirty writeback" `Quick test_cache_dirty_writeback;
          Alcotest.test_case "flush + set_dirty" `Quick test_cache_flush_and_set_dirty;
          Alcotest.test_case "create validation" `Quick test_cache_create_validation;
        ] );
      qsuite "cache-props"
        [ prop_cache_capacity; prop_cache_hit_after_access; prop_cache_matches_lru_model ];
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick test_hierarchy_levels;
          Alcotest.test_case "fill events" `Quick test_hierarchy_fill_events;
          Alcotest.test_case "writeback reaches memory" `Quick
            test_hierarchy_writeback_reaches_memory;
          Alcotest.test_case "flush page" `Quick test_hierarchy_flush_page;
          Alcotest.test_case "resident dirty lines" `Quick test_hierarchy_resident_dirty;
        ] );
      qsuite "hierarchy-props" [ prop_no_lost_writes ];
    ]
