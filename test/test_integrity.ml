(* Tests for the end-to-end data-integrity subsystem: CRC32C, per-line
   at-rest checksums, delivery sequencing, wire-CRC rejection of torn
   entries, duplicate/reordered-delivery handling, and the runtime's
   scrub-and-repair path restoring a seeded bit-flip bit-for-bit. *)

open Kona
module Units = Kona_util.Units
module Rng = Kona_util.Rng
module Heap = Kona_workloads.Heap
module Crc32c = Kona_util.Crc32c
module Checksums = Kona_integrity.Checksums
module Sequencer = Kona_integrity.Sequencer
module Scrubber = Kona_integrity.Scrubber
module Fault_spec = Kona_faults.Fault_spec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* CRC32C *)

(* Reference vectors: RFC 3720 (iSCSI) appendix B.4 test patterns. *)
let test_crc32c_vectors () =
  check_int "empty" 0 (Crc32c.digest "");
  check_int "'123456789'" 0xE3069283 (Crc32c.digest "123456789");
  check_int "32 zero bytes" 0x8A9136AA (Crc32c.digest (String.make 32 '\000'));
  check_int "32 0xFF bytes" 0x62A8AB43 (Crc32c.digest (String.make 32 '\xff'));
  let inc = String.init 32 Char.chr in
  check_int "32 incrementing bytes" 0x46DD794E (Crc32c.digest inc);
  (* digest_sub agrees with digest of the slice. *)
  let s = "abcdefghijklmnop" in
  check_int "digest_sub" (Crc32c.digest "defgh") (Crc32c.digest_sub s ~pos:3 ~len:5)

let test_crc32c_bit_sensitivity () =
  (* Any single-bit flip must change the digest — the guarantee the
     bit-flip fault relies on for detectability. *)
  let base = String.init 64 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let d0 = Crc32c.digest base in
  for bit = 0 to (64 * 8) - 1 do
    let b = Bytes.of_string base in
    Bytes.set b (bit / 8)
      (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
    if Crc32c.digest (Bytes.to_string b) = d0 then
      Alcotest.failf "bit %d flip left the CRC unchanged" bit
  done

(* ------------------------------------------------------------------ *)
(* Checksums *)

let test_checksums_record_verify () =
  let store = Bytes.make 512 '\000' in
  let chk = Checksums.create ~capacity:512 in
  check_int "nothing recorded" 0 (Checksums.recorded_count chk);
  (* Unrecorded lines never report corruption. *)
  check_bool "unrecorded is ok" true (Checksums.line_ok chk ~store ~line:0);
  check_int "no corrupt lines" 0
    (List.length (Checksums.corrupt_lines chk ~store ~addr:0 ~len:512));
  Bytes.blit_string (String.make 128 'x') 0 store 64 128;
  Checksums.record chk ~store ~addr:64 ~len:128;
  check_int "two lines recorded" 2 (Checksums.recorded_count chk);
  check_bool "recorded" true (Checksums.recorded chk ~line:1);
  check_bool "clean" true (Checksums.line_ok chk ~store ~line:1);
  (* Corrupt one byte of line 2: only that line reports. *)
  Bytes.set store 130 'y';
  check_int "line 2 corrupt" 1
    (List.length (Checksums.corrupt_lines chk ~store ~addr:0 ~len:512));
  (match Checksums.corrupt_lines chk ~store ~addr:0 ~len:512 with
  | [ addr ] -> check_int "corrupt addr is line-aligned" 128 addr
  | _ -> Alcotest.fail "expected one corrupt line");
  (* Re-recording over the corruption accepts the new bytes as truth. *)
  Checksums.record chk ~store ~addr:128 ~len:64;
  check_int "re-record clears" 0
    (List.length (Checksums.corrupt_lines chk ~store ~addr:0 ~len:512))

(* ------------------------------------------------------------------ *)
(* Sequencer *)

let test_sequencer_verdicts () =
  let tx = Sequencer.Tx.create () in
  let rx = Sequencer.Rx.create () in
  let obs seq = Sequencer.Rx.observe rx ~stream:7 ~epoch:(Sequencer.Tx.epoch tx) ~seq in
  let s1 = Sequencer.Tx.next tx ~stream:7 in
  check_bool "first stamp adopted" true (obs s1 = Sequencer.Rx.Ok);
  let s2 = Sequencer.Tx.next tx ~stream:7 in
  check_bool "in order" true (obs s2 = Sequencer.Rx.Ok);
  check_bool "replay is duplicate" true (obs s2 = Sequencer.Rx.Duplicate);
  check_bool "older is duplicate" true (obs s1 = Sequencer.Rx.Duplicate);
  let _s3 = Sequencer.Tx.next tx ~stream:7 in
  let s4 = Sequencer.Tx.next tx ~stream:7 in
  check_bool "gap of one" true (obs s4 = Sequencer.Rx.Gap 1);
  (* Streams are independent: another stream adopts its own first stamp. *)
  let t1 = Sequencer.Tx.next tx ~stream:9 in
  check_bool "independent stream" true
    (Sequencer.Rx.observe rx ~stream:9 ~epoch:(Sequencer.Tx.epoch tx) ~seq:t1
    = Sequencer.Rx.Ok);
  (* Epoch bump (failover) resets the counters; stragglers from the old
     epoch are stale. *)
  Sequencer.Tx.bump_epoch tx;
  let old_epoch = Sequencer.Tx.epoch tx - 1 in
  let n1 = Sequencer.Tx.next tx ~stream:7 in
  check_bool "new epoch accepted" true (obs n1 = Sequencer.Rx.Ok);
  check_bool "old epoch stale" true
    (Sequencer.Rx.observe rx ~stream:7 ~epoch:old_epoch ~seq:99
    = Sequencer.Rx.Stale_epoch)

(* ------------------------------------------------------------------ *)
(* Memory node: wire CRCs, duplicates, reordering *)

let line c = String.make Units.cache_line c

let test_receive_log_rejects_torn_lines () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 4) in
  Memory_node.write node ~addr:0 ~data:(line 'a');
  let e = Memory_node.entry ~addr:0 ~data:(line 'b' ^ line 'c') in
  (* Tear the second line after staging: CRCs no longer match the data. *)
  let torn_data = line 'b' ^ line 'z' in
  let torn = { e with Memory_node.data = torn_data } in
  let r = Memory_node.receive_log node [ torn ] in
  check_int "one line applied" 1 r.Memory_node.applied_lines;
  (match r.Memory_node.rejected with
  | [ addr ] -> check_int "second line rejected" Units.cache_line addr
  | _ -> Alcotest.fail "expected one rejected line");
  (* The store kept its old, consistent bytes for the rejected line. *)
  check_string "rejected line untouched" (String.make 1 '\000')
    (String.sub (Memory_node.read node ~addr:Units.cache_line ~len:1) 0 1);
  check_string "clean line applied" "b"
    (String.sub (Memory_node.read node ~addr:0 ~len:1) 0 1)

let test_receive_log_duplicate_and_reorder () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 4) in
  let d seq = { Memory_node.stream = 0; epoch = 0; seq } in
  let e1 = Memory_node.entry ~addr:0 ~data:(line '1') in
  let e2 = Memory_node.entry ~addr:0 ~data:(line '2') in
  let r1 = Memory_node.receive_log ~delivery:(d 1) node [ e1 ] in
  check_bool "first ok" true (r1.Memory_node.verdict = Sequencer.Rx.Ok);
  let r2 = Memory_node.receive_log ~delivery:(d 2) node [ e2 ] in
  check_bool "second ok" true (r2.Memory_node.verdict = Sequencer.Rx.Ok);
  (* Replay of the first shipment: dropped whole — applying it would roll
     the line back to '1'. *)
  let r3 = Memory_node.receive_log ~delivery:(d 1) node [ e1 ] in
  check_bool "replay detected" true (r3.Memory_node.verdict = Sequencer.Rx.Duplicate);
  check_int "replay applied nothing" 0 r3.Memory_node.applied_lines;
  check_string "store kept newest" "2"
    (String.sub (Memory_node.read node ~addr:0 ~len:1) 0 1);
  (* A gap (lost shipment 3) is reported but the newer data applies. *)
  let e4 = Memory_node.entry ~addr:0 ~data:(line '4') in
  let r4 = Memory_node.receive_log ~delivery:(d 4) node [ e4 ] in
  check_bool "gap reported" true (r4.Memory_node.verdict = Sequencer.Rx.Gap 1);
  check_string "gap still applies" "4"
    (String.sub (Memory_node.read node ~addr:0 ~len:1) 0 1)

let test_corrupt_bit_fresh_and_cancel () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 4) in
  Memory_node.write node ~addr:0 ~data:(line 'a');
  check_bool "first flip is fresh" true (Memory_node.corrupt_bit node ~addr:0 ~bit:3 = `Fresh);
  check_int "flip detected at rest" 1
    (List.length (Memory_node.verify_range node ~addr:0 ~len:Units.cache_line));
  check_bool "second flip lands on corrupt line" true
    (Memory_node.corrupt_bit node ~addr:0 ~bit:3 = `Already_corrupt);
  check_int "same-bit double flip cancels" 0
    (List.length (Memory_node.verify_range node ~addr:0 ~len:Units.cache_line))

(* ------------------------------------------------------------------ *)
(* Runtime: end-to-end corruption, scrub-and-repair *)

let make_runtime ?(fmem_pages = 16) ?(replicas = 1) ?(faults = [])
    ?(fault_seed = 42) ?scrub_interval_ns ?(verify_checksums = false) () =
  let controller = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 8));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 8));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config =
    {
      Runtime.default_config with
      fmem_pages;
      replicas;
      faults;
      fault_seed;
      scrub_interval_ns;
      verify_checksums;
    }
  in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;
  (runtime, heap, controller)

let scribble ?(writes = 8_000) ?(region = Units.kib 512) ?(seed = 5) heap =
  let rng = Rng.create ~seed in
  let base = Heap.alloc heap region in
  for _ = 1 to writes do
    Heap.write_u64 heap
      (base + (Rng.int rng ((region - 8) / 8) * 8))
      (Rng.int rng 1_000_000)
  done

let counter runtime name =
  match List.assoc_opt name (Runtime.integrity_counters runtime) with
  | Some v -> v
  | None -> Alcotest.failf "missing integrity counter %s" name

(* Remote memory equals the heap on every backed page (none may be
   excluded: these tests expect full repair). *)
let assert_no_divergence runtime heap controller =
  check_bool "nothing unrepairable" true (Runtime.unrepairable_pages runtime = []);
  let diverged = ref 0 in
  Resource_manager.iter_backed_pages (Runtime.resource_manager runtime)
    (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then begin
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node)
            ~addr:remote_addr ~len:Units.page_size
        in
        if local <> remote then incr diverged
      end);
  check_int "no page diverged from the heap" 0 !diverged

let test_scrub_repairs_bit_flips () =
  let faults = Fault_spec.parse_exn "bit-flip:p=1" in
  let runtime, heap, controller =
    make_runtime ~faults ~scrub_interval_ns:50_000 ()
  in
  scribble heap;
  Runtime.drain runtime;
  let armed = counter runtime "integrity.flips_armed" in
  check_bool "flips were injected" true (armed > 0);
  check_int "every armed flip found or healed" armed
    (counter runtime "integrity.flips_found"
    + counter runtime "integrity.healed_overwrite");
  check_bool "scrub repaired corrupt lines" true
    (counter runtime "integrity.repaired" > 0);
  check_int "nothing unrepairable" 0 (counter runtime "integrity.unrepairable");
  check_int "quarantine drained" 0 (counter runtime "integrity.quarantined");
  (* The repair is bit-for-bit: remote bytes equal the heap everywhere. *)
  assert_no_divergence runtime heap controller

let test_torn_writes_rejected_and_repaired () =
  let faults = Fault_spec.parse_exn "torn-write:p=1" in
  let runtime, heap, controller =
    make_runtime ~faults ~scrub_interval_ns:50_000 ()
  in
  scribble heap;
  Runtime.drain runtime;
  check_bool "torn events detected" true
    (counter runtime "integrity.torn_events" > 0);
  check_bool "torn lines rejected by wire CRC" true
    (counter runtime "integrity.crc_rejects" > 0);
  check_int "quarantine drained" 0 (counter runtime "integrity.quarantined");
  assert_no_divergence runtime heap controller

let test_dup_deliveries_dropped () =
  let faults = Fault_spec.parse_exn "dup-deliver:p=1" in
  let runtime, heap, controller = make_runtime ~faults () in
  scribble heap;
  Runtime.drain runtime;
  check_bool "duplicates detected" true (counter runtime "seq.duplicates" > 0);
  assert_no_divergence runtime heap controller

let test_stale_reads_detected () =
  let faults = Fault_spec.parse_exn "stale-read:p=0.5" in
  let runtime, heap, controller =
    make_runtime ~faults ~verify_checksums:true ()
  in
  scribble heap;
  Runtime.drain runtime;
  check_bool "stale reads detected" true
    (counter runtime "integrity.stale_reads" > 0);
  (match Runtime.injector runtime with
  | Some i ->
      check_int "every injected stale read detected"
        (List.assoc "stale_reads" (Kona_faults.Injector.counters i))
        (counter runtime "integrity.stale_reads")
  | None -> Alcotest.fail "injector expected");
  assert_no_divergence runtime heap controller

let test_integrity_counters_reproducible () =
  let run () =
    let faults =
      Fault_spec.parse_exn "bit-flip:p=0.3;torn-write:p=0.2;dup-deliver:p=0.2"
    in
    let runtime, heap, _ =
      make_runtime ~faults ~fault_seed:7 ~scrub_interval_ns:50_000
        ~verify_checksums:true ()
    in
    scribble heap;
    Runtime.drain runtime;
    Runtime.integrity_counters runtime
  in
  let a = run () and b = run () in
  check_bool "same (plan, seed) gives bit-identical integrity counters" true
    (a = b);
  check_bool "the runs actually injected corruption" true
    (List.assoc "integrity.torn_events" a > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kona_integrity"
    [
      ( "crc32c",
        [
          Alcotest.test_case "reference vectors" `Quick test_crc32c_vectors;
          Alcotest.test_case "single-bit sensitivity" `Quick
            test_crc32c_bit_sensitivity;
        ] );
      ( "checksums",
        [
          Alcotest.test_case "record and verify" `Quick
            test_checksums_record_verify;
        ] );
      ( "sequencer",
        [ Alcotest.test_case "verdicts" `Quick test_sequencer_verdicts ] );
      ( "memory-node",
        [
          Alcotest.test_case "wire CRC rejects torn lines" `Quick
            test_receive_log_rejects_torn_lines;
          Alcotest.test_case "duplicate and reordered deliveries" `Quick
            test_receive_log_duplicate_and_reorder;
          Alcotest.test_case "corrupt_bit arming" `Quick
            test_corrupt_bit_fresh_and_cancel;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "repairs seeded bit-flips bit-for-bit" `Quick
            test_scrub_repairs_bit_flips;
          Alcotest.test_case "torn writes rejected and repaired" `Quick
            test_torn_writes_rejected_and_repaired;
          Alcotest.test_case "duplicate deliveries dropped" `Quick
            test_dup_deliveries_dropped;
          Alcotest.test_case "stale reads detected" `Quick
            test_stale_reads_detected;
          Alcotest.test_case "counters reproducible" `Quick
            test_integrity_counters_reproducible;
        ] );
    ]
