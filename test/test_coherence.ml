(* Tests for Kona_coherence: the FMem page cache with per-frame dirty
   bitmaps and the VFMem directory. *)

open Kona_coherence
module Bitmap = Kona_util.Bitmap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fmem *)

let test_fmem_insert_lookup () =
  let f = Fmem.create ~pages:8 () in
  check_bool "cold lookup misses" false (Fmem.lookup f ~vpage:3);
  Alcotest.(check (option reject)) "insert into free frame" None (Fmem.insert f ~vpage:3);
  check_bool "hit after insert" true (Fmem.lookup f ~vpage:3);
  check_int "resident" 1 (Fmem.resident f);
  Alcotest.(check (option reject)) "re-insert is no-op" None (Fmem.insert f ~vpage:3)

let test_fmem_set_eviction () =
  (* 8 frames, 4-way -> 2 sets; even pages map to set 0. *)
  let f = Fmem.create ~pages:8 () in
  List.iter (fun p -> ignore (Fmem.insert f ~vpage:p)) [ 0; 2; 4; 6 ];
  ignore (Fmem.lookup f ~vpage:0) (* refresh 0 *);
  (match Fmem.victim_candidate f ~vpage:8 with
  | Some v -> check_int "LRU candidate" 2 v
  | None -> Alcotest.fail "set is full: candidate expected");
  (match Fmem.insert f ~vpage:8 with
  | Some victim -> check_int "evicted LRU" 2 victim.Fmem.vpage
  | None -> Alcotest.fail "expected eviction");
  check_bool "0 kept" true (Fmem.lookup f ~vpage:0);
  check_bool "2 gone" false (Fmem.lookup f ~vpage:2)

let test_fmem_dirty_bitmap () =
  let f = Fmem.create ~pages:8 () in
  ignore (Fmem.insert f ~vpage:5);
  check_bool "mark resident" true (Fmem.mark_dirty f ~vpage:5 ~line:7);
  check_bool "mark resident again" true (Fmem.mark_dirty f ~vpage:5 ~line:63);
  check_bool "mark absent fails" false (Fmem.mark_dirty f ~vpage:9 ~line:0);
  (match Fmem.dirty_lines f ~vpage:5 with
  | Some mask ->
      check_int "two lines" 2 (Bitmap.count mask);
      check_bool "line 7" true (Bitmap.get mask 7)
  | None -> Alcotest.fail "resident page must report dirty lines");
  Fmem.clear_dirty f ~vpage:5;
  check_int "cleared" 0 (Bitmap.count (Option.get (Fmem.dirty_lines f ~vpage:5)))

let test_fmem_victim_carries_dirt () =
  let f = Fmem.create ~assoc:1 ~pages:2 () in
  ignore (Fmem.insert f ~vpage:0);
  ignore (Fmem.mark_dirty f ~vpage:0 ~line:3);
  (match Fmem.insert f ~vpage:2 (* same set, assoc 1 *) with
  | Some victim ->
      check_int "victim page" 0 victim.Fmem.vpage;
      check_bool "victim dirty mask" true (Bitmap.get victim.Fmem.dirty_lines 3)
  | None -> Alcotest.fail "expected victim");
  (* new tenant's mask starts clean *)
  check_int "fresh mask" 0 (Bitmap.count (Option.get (Fmem.dirty_lines f ~vpage:2)))

let test_fmem_explicit_evict () =
  let f = Fmem.create ~pages:8 () in
  ignore (Fmem.insert f ~vpage:1);
  ignore (Fmem.mark_dirty f ~vpage:1 ~line:0);
  (match Fmem.evict f ~vpage:1 with
  | Some v -> check_bool "dirt carried" true (Bitmap.get v.Fmem.dirty_lines 0)
  | None -> Alcotest.fail "resident page must evict");
  Alcotest.(check (option reject)) "absent evict" None (Fmem.evict f ~vpage:1);
  check_int "empty" 0 (Fmem.resident f)

let prop_fmem_resident_bound =
  QCheck.Test.make ~name:"fmem residency never exceeds capacity" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 1000))
    (fun pages ->
      let f = Fmem.create ~pages:16 () in
      List.iter (fun p -> ignore (Fmem.insert f ~vpage:p)) pages;
      Fmem.resident f <= 16)

let prop_fmem_insert_hits =
  QCheck.Test.make ~name:"lookup hits right after insert" ~count:200
    QCheck.(int_bound 10_000)
    (fun p ->
      let f = Fmem.create ~pages:16 () in
      ignore (Fmem.insert f ~vpage:p);
      Fmem.lookup f ~vpage:p)

(* ------------------------------------------------------------------ *)
(* Fmem policies *)

let test_fmem_fifo_policy () =
  (* FIFO ignores touches: the oldest insertion leaves first. *)
  let f = Fmem.create ~assoc:2 ~policy:Fmem.Fifo ~pages:2 () in
  ignore (Fmem.insert f ~vpage:0);
  ignore (Fmem.insert f ~vpage:2);
  ignore (Fmem.lookup f ~vpage:0) (* would save 0 under LRU *);
  (match Fmem.insert f ~vpage:4 with
  | Some v -> check_int "FIFO evicts first-inserted despite touch" 0 v.Fmem.vpage
  | None -> Alcotest.fail "expected eviction");
  (* Same sequence under LRU keeps 0. *)
  let f = Fmem.create ~assoc:2 ~policy:Fmem.Lru ~pages:2 () in
  ignore (Fmem.insert f ~vpage:0);
  ignore (Fmem.insert f ~vpage:2);
  ignore (Fmem.lookup f ~vpage:0);
  match Fmem.insert f ~vpage:4 with
  | Some v -> check_int "LRU evicts least-recently-used" 2 v.Fmem.vpage
  | None -> Alcotest.fail "expected eviction"

let test_fmem_random_policy_valid () =
  let f = Fmem.create ~assoc:4 ~policy:(Fmem.Random 3) ~pages:4 () in
  List.iter (fun p -> ignore (Fmem.insert f ~vpage:p)) [ 0; 1; 2; 3 ];
  match Fmem.insert f ~vpage:4 with
  | Some v -> check_bool "victim was resident" true (v.Fmem.vpage >= 0 && v.Fmem.vpage < 4)
  | None -> Alcotest.fail "full set must evict"

(* ------------------------------------------------------------------ *)
(* Protocol (MESI) *)

let st = Alcotest.of_pp Protocol.pp

let test_protocol_read_write_evict () =
  (* I --read--> E (fill), E --write--> M silently, M --evict--> writeback. *)
  let s, a = Protocol.on_processor Protocol.Invalid Protocol.Read in
  Alcotest.check st "read fill -> E" Protocol.Exclusive s;
  check_bool "fill visible" true (Protocol.home_observes a);
  let s, a = Protocol.on_processor s Protocol.Write in
  Alcotest.check st "silent upgrade -> M" Protocol.Modified s;
  check_bool "upgrade invisible (the crux of SS4.4)" false (Protocol.home_observes a);
  let s, a = Protocol.on_processor s Protocol.Evict in
  Alcotest.check st "evict -> I" Protocol.Invalid s;
  check_bool "writeback visible" true (Protocol.home_observes a);
  check_bool "writeback is the data action" true (a = Protocol.Writeback)

let test_protocol_silent_clean_drop () =
  let s, _ = Protocol.on_processor Protocol.Invalid Protocol.Read in
  let s, _ = Protocol.on_bus s Protocol.Bus_read in
  Alcotest.check st "E downgrades to S on bus read" Protocol.Shared s;
  let s, a = Protocol.on_processor s Protocol.Evict in
  Alcotest.check st "clean drop -> I" Protocol.Invalid s;
  check_bool "clean drop silent (directory over-approximates)" false
    (Protocol.home_observes a)

let test_protocol_snoop_supplies_data () =
  let s, _ = Protocol.on_processor Protocol.Invalid Protocol.Write in
  Alcotest.check st "write miss -> M" Protocol.Modified s;
  let s, a = Protocol.on_bus s Protocol.Bus_read_for_ownership in
  Alcotest.check st "rfo snoop -> I" Protocol.Invalid s;
  check_bool "snoop carries data" true (a = Protocol.Supply_data)

let prop_protocol_dirty_never_escapes_silently =
  (* Drive a line through arbitrary event sequences: whenever the state
     leaves Modified, the transition's action must be home-visible —
     modified data can never vanish without the agent seeing it. *)
  let event_gen =
    QCheck.Gen.oneofl
      [
        `P Protocol.Read; `P Protocol.Write; `P Protocol.Evict;
        `B Protocol.Bus_read; `B Protocol.Bus_read_for_ownership;
        `B Protocol.Bus_invalidate;
      ]
  in
  QCheck.Test.make ~name:"modified data never leaves silently" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) event_gen))
    (fun events ->
      let state = ref Protocol.Invalid in
      List.for_all
        (fun event ->
          let was_dirty = Protocol.is_dirty !state in
          let next, action =
            match event with
            | `P e -> Protocol.on_processor !state e
            | `B e -> Protocol.on_bus !state e
          in
          state := next;
          (not (was_dirty && not (Protocol.is_dirty next)))
          || Protocol.home_observes action)
        events)

(* ------------------------------------------------------------------ *)
(* Directory *)

let state_t = Alcotest.of_pp (fun fmt -> function
  | Directory.Invalid -> Format.pp_print_string fmt "I"
  | Directory.Shared -> Format.pp_print_string fmt "S"
  | Directory.Modified -> Format.pp_print_string fmt "M")

let test_directory_transitions () =
  let d = Directory.create () in
  Alcotest.check state_t "initial" Directory.Invalid (Directory.state d ~line:1);
  Directory.on_fill d ~line:1 ~write:false;
  Alcotest.check state_t "read fill -> S" Directory.Shared (Directory.state d ~line:1);
  Directory.on_fill d ~line:1 ~write:true;
  Alcotest.check state_t "write fill -> M" Directory.Modified (Directory.state d ~line:1);
  Directory.on_fill d ~line:1 ~write:false;
  Alcotest.check state_t "read refill keeps M" Directory.Modified
    (Directory.state d ~line:1);
  Directory.on_writeback d ~line:1;
  Alcotest.check state_t "writeback -> I" Directory.Invalid (Directory.state d ~line:1)

let test_directory_snoop () =
  let d = Directory.create () in
  Directory.on_fill d ~line:2 ~write:true;
  (match Directory.snoop d ~line:2 with
  | `Dirty -> ()
  | `Clean -> Alcotest.fail "modified line must snoop dirty");
  Alcotest.check state_t "invalid after snoop" Directory.Invalid (Directory.state d ~line:2);
  Directory.on_fill d ~line:3 ~write:false;
  (match Directory.snoop d ~line:3 with
  | `Clean -> ()
  | `Dirty -> Alcotest.fail "shared line snoops clean")

let test_directory_counters () =
  let d = Directory.create () in
  Directory.on_fill d ~line:1 ~write:false;
  Directory.on_fill d ~line:2 ~write:true;
  Directory.on_writeback d ~line:2;
  check_int "fills" 2 (Directory.fills d);
  check_int "writebacks" 1 (Directory.writebacks d);
  check_int "granted" 1 (Directory.granted_lines d)

let test_directory_sharers () =
  let d = Directory.create () in
  Directory.on_fill ~sharer:2 d ~line:5 ~write:false;
  Directory.on_fill ~sharer:0 d ~line:5 ~write:false;
  Directory.on_fill ~sharer:2 d ~line:5 ~write:false (* dedup *);
  Alcotest.(check (list int)) "sorted, deduped" [ 0; 2 ] (Directory.sharers d ~line:5);
  Alcotest.(check (list int)) "recall returns all sharers" [ 0; 2 ]
    (Directory.snoop_sharers d ~line:5);
  Alcotest.(check (list int)) "forgotten after recall" []
    (Directory.sharers d ~line:5);
  Alcotest.check state_t "invalid after recall" Directory.Invalid
    (Directory.state d ~line:5);
  (* invalidating a wide reader set is charged per sharer recalled *)
  check_int "recall counts one snoop per sharer" 2 (Directory.snoops d);
  check_int "recall counts one invalidation per sharer" 2
    (Directory.invalidations d)

(* Model-based property: replay random fill/writeback/snoop sequences
   against a reference I/S/M map.  After every op [granted_lines] must
   match the model's population, and a snoop verdict is [`Dirty] exactly
   when the model holds the line Modified — in particular a line never
   filled for writing always snoops [`Clean]. *)
let prop_directory_matches_model =
  let lines = 8 in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun l w -> `Fill (l, w)) (int_bound (lines - 1)) bool;
          map (fun l -> `Writeback l) (int_bound (lines - 1));
          map (fun l -> `Snoop l) (int_bound (lines - 1));
        ])
  in
  QCheck.Test.make ~name:"directory tracks the I/S/M model" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 60) op_gen))
    (fun ops ->
      let d = Directory.create () in
      let model = Array.make lines Directory.Invalid in
      let granted_ok () =
        let pop =
          Array.fold_left
            (fun acc s -> if s = Directory.Invalid then acc else acc + 1)
            0 model
        in
        Directory.granted_lines d = pop
      in
      List.for_all
        (fun op ->
          match op with
          | `Fill (l, w) ->
              Directory.on_fill d ~line:l ~write:w;
              model.(l) <-
                (if w then Directory.Modified
                 else
                   match model.(l) with
                   | Directory.Modified -> Directory.Modified
                   | _ -> Directory.Shared);
              granted_ok ()
          | `Writeback l ->
              Directory.on_writeback d ~line:l;
              model.(l) <- Directory.Invalid;
              granted_ok ()
          | `Snoop l ->
              let verdict = Directory.snoop d ~line:l in
              let expected =
                if model.(l) = Directory.Modified then `Dirty else `Clean
              in
              model.(l) <- Directory.Invalid;
              verdict = expected && granted_ok ())
        ops)

(* A line the CPU never requested for writing can never snoop dirty, no
   matter how reads, writebacks, and recalls interleave. *)
let prop_directory_unwritten_snoops_clean =
  let lines = 4 in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun l -> `Read_fill l) (int_bound (lines - 1));
          map (fun l -> `Writeback l) (int_bound (lines - 1));
          map (fun l -> `Snoop l) (int_bound (lines - 1));
        ])
  in
  QCheck.Test.make ~name:"never-written lines always snoop clean" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) op_gen))
    (fun ops ->
      let d = Directory.create () in
      List.for_all
        (fun op ->
          match op with
          | `Read_fill l ->
              Directory.on_fill d ~line:l ~write:false;
              true
          | `Writeback l ->
              Directory.on_writeback d ~line:l;
              true
          | `Snoop l -> Directory.snoop d ~line:l = `Clean)
        ops)

(* ------------------------------------------------------------------ *)
(* Multi-writer home directory ([acquire]) *)

let test_directory_acquire_handoff () =
  let d = Directory.create () in
  let g = Directory.acquire d ~line:7 ~tenant:0 ~write:true in
  Alcotest.(check (option int)) "fresh grant has no peer" None g.Directory.g_peer;
  check_int "owner change" 1 (Directory.owner_changes d);
  Alcotest.(check (option int)) "t0 owns" (Some 0) (Directory.owner d ~line:7);
  (* t1's write miss is an RFO: recall t0's dirty copy — a handoff *)
  let g = Directory.acquire d ~line:7 ~tenant:1 ~write:true in
  Alcotest.(check (option int)) "recalled previous owner" (Some 0)
    g.Directory.g_peer;
  Alcotest.(check bool) "recall carries data" true g.Directory.g_peer_dirty;
  check_int "handoff counted" 1 (Directory.handoffs d);
  Alcotest.(check (option int)) "ownership moved" (Some 1)
    (Directory.owner d ~line:7);
  (* t1 writing again is a hit: nothing recalled, nothing charged *)
  let g = Directory.acquire d ~line:7 ~tenant:1 ~write:true in
  Alcotest.(check (option int)) "write hit" None g.Directory.g_peer;
  Alcotest.(check (list int)) "write hit invalidates nothing" []
    g.Directory.g_invalidated;
  check_int "still one handoff" 1 (Directory.handoffs d);
  Alcotest.(check (list string)) "audit clean" [] (Directory.audit d)

let test_directory_acquire_downgrade_and_rfo () =
  let d = Directory.create () in
  ignore (Directory.acquire d ~line:3 ~tenant:0 ~write:true);
  (* t2 reads the modified line: dirty downgrade, both end Shared *)
  let g = Directory.acquire d ~line:3 ~tenant:2 ~write:false in
  Alcotest.(check (option int)) "downgrade recalls owner" (Some 0)
    g.Directory.g_peer;
  Alcotest.(check bool) "downgrade carries data" true g.Directory.g_peer_dirty;
  Alcotest.(check (option int)) "no owner after downgrade" None
    (Directory.owner d ~line:3);
  Alcotest.(check (list int)) "both share" [ 0; 2 ] (Directory.sharers d ~line:3);
  (* t1's RFO kills both read-only copies: invalidations, not a handoff *)
  let g = Directory.acquire d ~line:3 ~tenant:1 ~write:true in
  Alcotest.(check (option int)) "no dirty peer" None g.Directory.g_peer;
  Alcotest.(check (list int)) "sharers invalidated" [ 0; 2 ]
    g.Directory.g_invalidated;
  check_int "no handoff for clean kills" 0 (Directory.handoffs d);
  Alcotest.(check (option int)) "t1 owns" (Some 1) (Directory.owner d ~line:3);
  Alcotest.(check (list string)) "audit clean" [] (Directory.audit d)

(* The tentpole's model-checking property: drive random (agent, line,
   Read/Write/Evict) traces through [Protocol]'s per-agent MESI machine
   and, in lock-step, through [Directory.acquire]/[on_writeback] as the
   home side.  Because the home answers every read miss with a Shared
   grant, Exclusive is unreachable, and the directory must be exactly
   the home-side MSI projection of the agents' states:

   - the directory's owner is the unique agent in Modified (both ways);
   - a directory-Shared line has no Modified agent, and every
     model-Shared agent appears among the tracked sharers (the
     directory may over-approximate: silent clean drops are invisible);
   - a directory-Invalid line means every agent holds Invalid;
   - an RFO's recalled peer is exactly the Modified agent, and its
     invalidation list covers the model-Shared holders;
   - [audit] stays empty throughout. *)
let prop_directory_projects_protocol =
  let agents = 3 and lines = 4 in
  let op_gen =
    QCheck.Gen.(
      map3
        (fun a l k -> (a, l, k))
        (int_bound (agents - 1))
        (int_bound (lines - 1))
        (int_bound 2))
  in
  QCheck.Test.make
    ~name:"multi-writer directory is Protocol's home-side MSI projection"
    ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 80) op_gen))
    (fun ops ->
      let d = Directory.create () in
      let model = Array.make_matrix agents lines Protocol.Invalid in
      let bus l ~from event =
        for o = 0 to agents - 1 do
          if o <> from then model.(o).(l) <- fst (Protocol.on_bus model.(o).(l) event)
        done
      in
      let holds_m l = List.find_opt (fun o -> model.(o).(l) = Protocol.Modified)
          (List.init agents Fun.id)
      in
      let projection_ok l =
        let m = holds_m l in
        let shared_agents =
          List.filter (fun o -> model.(o).(l) = Protocol.Shared)
            (List.init agents Fun.id)
        in
        (* no agent ever reaches Exclusive: the home grants reads Shared *)
        Array.for_all (fun row -> row.(l) <> Protocol.Exclusive) model
        && Directory.owner d ~line:l = m
        && (match Directory.state d ~line:l with
           | Directory.Modified -> m <> None
           | Directory.Shared ->
               m = None
               && List.for_all
                    (fun o -> List.mem o (Directory.sharers d ~line:l))
                    shared_agents
           | Directory.Invalid -> m = None && shared_agents = [])
        && Directory.audit d = []
      in
      List.for_all
        (fun (a, l, k) ->
          let ev =
            match k with 0 -> Protocol.Read | 1 -> Protocol.Write | _ -> Protocol.Evict
          in
          let st', action = Protocol.on_processor model.(a).(l) ev in
          let grant_ok =
            match action with
            | Protocol.Issue_read ->
                (* read miss: home grants Shared (E stays unreachable) *)
                let expected_peer = holds_m l in
                let g = Directory.acquire d ~line:l ~tenant:a ~write:false in
                model.(a).(l) <- Protocol.Shared;
                bus l ~from:a Protocol.Bus_read;
                g.Directory.g_peer = expected_peer
                && (expected_peer = None || g.Directory.g_peer_dirty)
            | Protocol.Issue_rfo | Protocol.Issue_invalidate ->
                let expected_peer = holds_m l in
                let expected_dead =
                  List.filter
                    (fun o -> o <> a && model.(o).(l) = Protocol.Shared)
                    (List.init agents Fun.id)
                in
                let g = Directory.acquire d ~line:l ~tenant:a ~write:true in
                model.(a).(l) <- Protocol.Modified;
                bus l ~from:a
                  (if action = Protocol.Issue_rfo then
                     Protocol.Bus_read_for_ownership
                   else Protocol.Bus_invalidate);
                g.Directory.g_peer = expected_peer
                && List.for_all
                     (fun o -> List.mem o g.Directory.g_invalidated)
                     expected_dead
            | Protocol.Writeback ->
                (* Modified evict: the home sees the data come back *)
                Directory.on_writeback d ~line:l;
                model.(a).(l) <- st';
                true
            | Protocol.No_bus_action ->
                (* hits and silent clean drops: the home learns nothing;
                   write hits still route through acquire (as the rack
                   does) and must charge nothing *)
                (match ev with
                | Protocol.Write ->
                    let g = Directory.acquire d ~line:l ~tenant:a ~write:true in
                    model.(a).(l) <- st';
                    g.Directory.g_peer = None && g.Directory.g_invalidated = []
                | Protocol.Read | Protocol.Evict ->
                    model.(a).(l) <- st';
                    true)
            | Protocol.Supply_data -> false (* never a processor action *)
          in
          grant_ok && projection_ok l)
        ops)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_coherence"
    [
      ( "fmem",
        [
          Alcotest.test_case "insert/lookup" `Quick test_fmem_insert_lookup;
          Alcotest.test_case "set-associative eviction" `Quick test_fmem_set_eviction;
          Alcotest.test_case "dirty bitmap" `Quick test_fmem_dirty_bitmap;
          Alcotest.test_case "victim carries dirt" `Quick test_fmem_victim_carries_dirt;
          Alcotest.test_case "explicit evict" `Quick test_fmem_explicit_evict;
        ] );
      qsuite "fmem-props" [ prop_fmem_resident_bound; prop_fmem_insert_hits ];
      ( "fmem-policies",
        [
          Alcotest.test_case "fifo vs lru" `Quick test_fmem_fifo_policy;
          Alcotest.test_case "random picks resident" `Quick test_fmem_random_policy_valid;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "read/write/evict" `Quick test_protocol_read_write_evict;
          Alcotest.test_case "silent clean drop" `Quick test_protocol_silent_clean_drop;
          Alcotest.test_case "snoop supplies data" `Quick test_protocol_snoop_supplies_data;
        ] );
      qsuite "protocol-props" [ prop_protocol_dirty_never_escapes_silently ];
      ( "directory",
        [
          Alcotest.test_case "transitions" `Quick test_directory_transitions;
          Alcotest.test_case "snoop" `Quick test_directory_snoop;
          Alcotest.test_case "counters" `Quick test_directory_counters;
          Alcotest.test_case "sharers" `Quick test_directory_sharers;
          Alcotest.test_case "acquire handoff" `Quick test_directory_acquire_handoff;
          Alcotest.test_case "acquire downgrade + rfo" `Quick
            test_directory_acquire_downgrade_and_rfo;
        ] );
      qsuite "directory-props"
        [
          prop_directory_matches_model;
          prop_directory_unwritten_snoops_clean;
          prop_directory_projects_protocol;
        ];
    ]
