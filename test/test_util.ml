(* Unit and property tests for Kona_util. *)

open Kona_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_addr () =
  check_int "line_of_addr 0" 0 (Units.line_of_addr 0);
  check_int "line_of_addr 63" 0 (Units.line_of_addr 63);
  check_int "line_of_addr 64" 1 (Units.line_of_addr 64);
  check_int "page_of_addr 4095" 0 (Units.page_of_addr 4095);
  check_int "page_of_addr 4096" 1 (Units.page_of_addr 4096);
  check_int "huge_of_addr 2MiB" 1 (Units.huge_of_addr (Units.mib 2));
  check_int "line_in_page 4095" 63 (Units.line_in_page 4095);
  check_int "line_in_page 4096" 0 (Units.line_in_page 4096);
  check_int "lines_per_page" 64 Units.lines_per_page

let test_units_align () =
  check_int "align_down" 4096 (Units.align_down 5000 ~alignment:4096);
  check_int "align_up" 8192 (Units.align_up 5000 ~alignment:4096);
  check_int "align_up exact" 4096 (Units.align_up 4096 ~alignment:4096);
  check_bool "pow2 64" true (Units.is_power_of_two 64);
  check_bool "pow2 63" false (Units.is_power_of_two 63);
  check_bool "pow2 0" false (Units.is_power_of_two 0);
  check_int "log2 1" 0 (Units.log2 1);
  check_int "log2 4096" 12 (Units.log2 4096)

let test_units_pp () =
  let s pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "bytes" "4KiB" (s Units.pp_bytes 4096);
  Alcotest.(check string) "bytes scaled" "1.5KiB" (s Units.pp_bytes 1536);
  Alcotest.(check string) "ns" "250ns" (s Units.pp_ns 250);
  Alcotest.(check string) "us" "3us" (s Units.pp_ns 3_000);
  Alcotest.(check string) "ms" "1.2ms" (s Units.pp_ns 1_200_000)

let test_units_time () =
  check_int "us" 3_000 (Units.us 3);
  check_int "ms" 2_000_000 (Units.ms 2);
  check_int "sec" 1_000_000_000 (Units.sec 1)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:42 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.next a) in
  let ys = List.init 32 (fun _ -> Rng.next b) in
  check_bool "split streams differ" false (xs = ys)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_bool "int in bounds" true (v >= 0 && v < 17);
    let f = Rng.float r 3.0 in
    check_bool "float in bounds" true (f >= 0. && f < 3.0);
    let z = Rng.zipf r ~n:100 ~theta:0.9 in
    check_bool "zipf in bounds" true (z >= 0 && z < 100)
  done

let test_rng_zipf_skew () =
  (* With high skew, low indices must dominate. *)
  let r = Rng.create ~seed:9 in
  let hits = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let z = Rng.zipf r ~n:100 ~theta:0.99 in
    hits.(z) <- hits.(z) + 1
  done;
  check_bool "index 0 most popular" true (hits.(0) > hits.(50));
  check_bool "head heavier than tail" true
    (hits.(0) + hits.(1) + hits.(2) > hits.(97) + hits.(98) + hits.(99))

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock () =
  let c = Clock.create () in
  check_int "starts at 0" 0 (Clock.now c);
  Clock.advance c 150;
  check_int "advance" 150 (Clock.now c);
  Clock.advance_to c 100;
  check_int "advance_to backwards is no-op" 150 (Clock.now c);
  Clock.advance_to c 500;
  check_int "advance_to forward" 500 (Clock.now c);
  Clock.reset c;
  check_int "reset" 0 (Clock.now c)

(* ------------------------------------------------------------------ *)
(* Bitmap *)

let test_bitmap_basic () =
  let b = Bitmap.create 130 in
  check_bool "fresh empty" true (Bitmap.is_empty b);
  Bitmap.set b 0;
  Bitmap.set b 61;
  Bitmap.set b 62;
  Bitmap.set b 129;
  check_int "count" 4 (Bitmap.count b);
  check_bool "get 62 (word boundary)" true (Bitmap.get b 62);
  check_bool "get 63" false (Bitmap.get b 63);
  Bitmap.clear b 62;
  check_bool "cleared" false (Bitmap.get b 62);
  check_int "count after clear" 3 (Bitmap.count b);
  Bitmap.clear_all b;
  check_bool "clear_all" true (Bitmap.is_empty b)

let test_bitmap_bounds () =
  let b = Bitmap.create 10 in
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Bitmap: index 10 out of bounds [0,10)") (fun () ->
      Bitmap.set b 10);
  Alcotest.check_raises "negative"
    (Invalid_argument "Bitmap: index -1 out of bounds [0,10)") (fun () ->
      ignore (Bitmap.get b (-1)))

let test_bitmap_segments () =
  let b = Bitmap.create 64 in
  List.iter (Bitmap.set b) [ 0; 1; 2; 5; 10; 11; 63 ];
  Alcotest.(check (list (pair int int)))
    "segments" [ (0, 3); (5, 1); (10, 2); (63, 1) ] (Bitmap.segments b)

let test_bitmap_set_range () =
  let b = Bitmap.create 128 in
  Bitmap.set_range b 60 10;
  check_int "count" 10 (Bitmap.count b);
  Alcotest.(check (list (pair int int))) "one segment" [ (60, 10) ] (Bitmap.segments b)

let test_bitmap_union () =
  let a = Bitmap.create 70 and b = Bitmap.create 70 in
  Bitmap.set a 1;
  Bitmap.set b 65;
  Bitmap.union_into ~dst:a ~src:b;
  check_bool "a has 65" true (Bitmap.get a 65);
  check_bool "b unchanged" false (Bitmap.get b 1);
  let c = Bitmap.create 3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitmap.union_into: capacity mismatch")
    (fun () -> Bitmap.union_into ~dst:a ~src:c)

let prop_bitmap_count =
  QCheck.Test.make ~name:"bitmap count = cardinal of index set" ~count:200
    QCheck.(small_list (int_bound 199))
    (fun idxs ->
      let b = Bitmap.create 200 in
      List.iter (Bitmap.set b) idxs;
      Bitmap.count b = List.length (List.sort_uniq compare idxs))

let prop_bitmap_segments_cover =
  QCheck.Test.make ~name:"bitmap segments partition the set bits" ~count:200
    QCheck.(small_list (int_bound 199))
    (fun idxs ->
      let b = Bitmap.create 200 in
      List.iter (Bitmap.set b) idxs;
      let from_segs =
        Bitmap.segments b
        |> List.concat_map (fun (s, l) -> List.init l (fun i -> s + i))
      in
      from_segs = List.sort_uniq compare idxs)

let prop_bitmap_iter_sorted =
  QCheck.Test.make ~name:"bitmap iter_set visits in increasing order" ~count:200
    QCheck.(small_list (int_bound 199))
    (fun idxs ->
      let b = Bitmap.create 200 in
      List.iter (Bitmap.set b) idxs;
      let visited = ref [] in
      Bitmap.iter_set b (fun i -> visited := i :: !visited);
      List.rev !visited = List.sort_uniq compare idxs)

(* ------------------------------------------------------------------ *)
(* Ring_buffer *)

let test_ring_fifo () =
  let r = Ring_buffer.create ~capacity:3 in
  check_bool "push 1" true (Ring_buffer.push r 1);
  check_bool "push 2" true (Ring_buffer.push r 2);
  check_bool "push 3" true (Ring_buffer.push r 3);
  check_bool "full rejects" false (Ring_buffer.push r 4);
  Alcotest.(check (option int)) "peek" (Some 1) (Ring_buffer.peek r);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ring_buffer.pop r);
  check_bool "push after pop" true (Ring_buffer.push r 4);
  Alcotest.(check (list int)) "pop_n" [ 2; 3; 4 ] (Ring_buffer.pop_n r 10);
  Alcotest.(check (option int)) "empty pop" None (Ring_buffer.pop r)

let test_ring_iter_and_clear () =
  let r = Ring_buffer.create ~capacity:4 in
  List.iter (fun x -> ignore (Ring_buffer.push r x)) [ 1; 2; 3 ];
  ignore (Ring_buffer.pop r);
  ignore (Ring_buffer.push r 4);
  ignore (Ring_buffer.push r 5);
  let seen = ref [] in
  Ring_buffer.iter r (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter order" [ 2; 3; 4; 5 ] (List.rev !seen);
  Ring_buffer.clear r;
  check_int "cleared" 0 (Ring_buffer.length r)

let prop_ring_fifo_order =
  QCheck.Test.make ~name:"ring buffer preserves FIFO order" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let r = Ring_buffer.create ~capacity:(List.length xs + 1) in
      List.iter (fun x -> assert (Ring_buffer.push r x)) xs;
      Ring_buffer.pop_n r (List.length xs) = xs)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add_int s) [ 1; 2; 3; 4 ];
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "variance" (5. /. 3.) (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.; 5.; 2.; 8.; 3. ] and ys = [ 10.; 0.; 4. ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  check_int "count" (Stats.count whole) (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance whole) (Stats.variance m)

(* Two-stream merge must agree with single-stream stats on the
   concatenated input — the invariant telemetry aggregation relies on. *)
let prop_stats_merge_concat =
  let close a b = abs_float (a -. b) <= 1e-6 *. (1. +. abs_float a +. abs_float b) in
  QCheck.Test.make ~name:"stats merge = stats of concatenated streams" ~count:300
    QCheck.(pair (small_list (int_bound 10_000)) (small_list (int_bound 10_000)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
      List.iter (Stats.add_int a) xs;
      List.iter (Stats.add_int b) ys;
      List.iter (Stats.add_int whole) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count whole
      && (Stats.count whole = 0
         || close (Stats.mean m) (Stats.mean whole)
            && close (Stats.min m) (Stats.min whole)
            && close (Stats.max m) (Stats.max whole))
      && (Stats.count whole < 2
         || close (Stats.variance m) (Stats.variance whole)))

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "faults";
  Stats.Counters.add c "faults" 2;
  Stats.Counters.add c "bytes" 100;
  check_int "faults" 3 (Stats.Counters.get c "faults");
  check_int "bytes" 100 (Stats.Counters.get c "bytes");
  check_int "missing" 0 (Stats.Counters.get c "nope");
  Alcotest.(check (list (pair string int)))
    "sorted" [ ("bytes", 100); ("faults", 3) ] (Stats.Counters.to_list c)

(* ------------------------------------------------------------------ *)
(* Cdf *)

let test_cdf_basic () =
  let c = Cdf.create () in
  List.iter (Cdf.add c) [ 1; 1; 2; 4 ];
  check_int "count" 4 (Cdf.count c);
  Alcotest.(check (float 1e-9)) "at 0" 0.0 (Cdf.at c 0);
  Alcotest.(check (float 1e-9)) "at 1" 0.5 (Cdf.at c 1);
  Alcotest.(check (float 1e-9)) "at 3" 0.75 (Cdf.at c 3);
  Alcotest.(check (float 1e-9)) "at 4" 1.0 (Cdf.at c 4);
  check_int "median" 1 (Cdf.quantile c 0.5);
  check_int "p100" 4 (Cdf.quantile c 1.0);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Cdf.mean c)

let test_cdf_series () =
  let c = Cdf.create () in
  Cdf.add_many c 2 3;
  Cdf.add c 0;
  let s = Cdf.series c ~max_value:3 in
  Alcotest.(check int) "series length" 4 (List.length s);
  let probs = List.map snd s in
  Alcotest.(check (list (float 1e-9))) "series" [ 0.25; 0.25; 1.0; 1.0 ] probs

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf series is monotone and ends at 1" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 30))
    (fun xs ->
      let c = Cdf.create () in
      List.iter (Cdf.add c) xs;
      let s = Cdf.series c ~max_value:30 in
      let probs = List.map snd s in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono probs && abs_float (List.nth probs 30 -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_order () =
  let l = Lru.create () in
  List.iter (Lru.touch l) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "lru first" [ 1; 2; 3 ] (Lru.to_list l);
  Lru.touch l 1;
  Alcotest.(check (list int)) "touch moves to MRU" [ 2; 3; 1 ] (Lru.to_list l);
  Alcotest.(check (option int)) "peek" (Some 2) (Lru.peek_lru l);
  Alcotest.(check (option int)) "evict" (Some 2) (Lru.evict_lru l);
  Alcotest.(check (option int)) "evict" (Some 3) (Lru.evict_lru l);
  Alcotest.(check (option int)) "evict" (Some 1) (Lru.evict_lru l);
  Alcotest.(check (option int)) "empty" None (Lru.evict_lru l)

let test_lru_remove () =
  let l = Lru.create () in
  List.iter (Lru.touch l) [ 1; 2; 3 ];
  Lru.remove l 2;
  check_bool "removed" false (Lru.mem l 2);
  Alcotest.(check (list int)) "order kept" [ 1; 3 ] (Lru.to_list l);
  Lru.remove l 99 (* absent: no-op *);
  check_int "length" 2 (Lru.length l)

let prop_lru_eviction_order =
  QCheck.Test.make ~name:"lru eviction = order of last touch" ~count:200
    QCheck.(small_list (int_bound 20))
    (fun keys ->
      let l = Lru.create () in
      List.iter (Lru.touch l) keys;
      (* expected order: de-dup keeping last occurrence *)
      let expected =
        List.rev keys
        |> List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) []
      in
      Lru.to_list l = expected)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 1; 100; 100; 5000 ];
  check_int "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 1040.2 (Histogram.mean h);
  check_bool "p50 covers 100" true (Histogram.percentile h 50. >= 100);
  check_bool "p99 covers 5000" true (Histogram.percentile h 99. >= 5000);
  check_bool "p50 below max" true (Histogram.percentile h 50. < 5000)

let test_histogram_buckets () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 3; 3; 70 ];
  (match Histogram.buckets h with
  | (0, 1) :: rest ->
      check_bool "bucket with 2 threes" true (List.exists (fun (_, c) -> c = 2) rest)
  | _ -> Alcotest.fail "expected zero bucket first");
  Alcotest.check_raises "negative rejected" (Invalid_argument "Histogram.add: negative sample")
    (fun () -> Histogram.add h (-1))

let prop_histogram_percentile_bounds =
  QCheck.Test.make ~name:"percentile upper-bounds at least p% of samples" ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (int_bound 1_000_000))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let p90 = Histogram.percentile h 90. in
      let below = List.length (List.filter (fun s -> s <= p90) samples) in
      10 * below >= 9 * List.length samples)

let prop_histogram_merge_concat =
  QCheck.Test.make ~name:"histogram merge = histogram of concatenated streams"
    ~count:300
    QCheck.(pair (small_list (int_bound 1_000_000)) (small_list (int_bound 1_000_000)))
    (fun (xs, ys) ->
      let a = Histogram.create ()
      and b = Histogram.create ()
      and whole = Histogram.create () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      List.iter (Histogram.add whole) (xs @ ys);
      let m = Histogram.merge a b in
      Histogram.count m = Histogram.count whole
      && abs_float (Histogram.sum m -. Histogram.sum whole) < 1e-6
      && Histogram.buckets m = Histogram.buckets whole
      && Histogram.percentile m 99. = Histogram.percentile whole 99.)

let prop_histogram_diff_inverts_merge =
  QCheck.Test.make ~name:"histogram diff inverts merge" ~count:300
    QCheck.(pair (small_list (int_bound 1_000_000)) (small_list (int_bound 1_000_000)))
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      let m = Histogram.merge a b in
      let back = Histogram.diff ~after:m ~before:a in
      Histogram.buckets back = Histogram.buckets b)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_util"
    [
      ( "units",
        [
          Alcotest.test_case "address math" `Quick test_units_addr;
          Alcotest.test_case "alignment" `Quick test_units_align;
          Alcotest.test_case "time units" `Quick test_units_time;
          Alcotest.test_case "pretty printers" `Quick test_units_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ("clock", [ Alcotest.test_case "advance/reset" `Quick test_clock ]);
      ( "bitmap",
        [
          Alcotest.test_case "basic" `Quick test_bitmap_basic;
          Alcotest.test_case "bounds" `Quick test_bitmap_bounds;
          Alcotest.test_case "segments" `Quick test_bitmap_segments;
          Alcotest.test_case "set_range" `Quick test_bitmap_set_range;
          Alcotest.test_case "union" `Quick test_bitmap_union;
        ] );
      qsuite "bitmap-props"
        [ prop_bitmap_count; prop_bitmap_segments_cover; prop_bitmap_iter_sorted ];
      ( "ring_buffer",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "iter/clear" `Quick test_ring_iter_and_clear;
        ] );
      qsuite "ring-props" [ prop_ring_fifo_order ];
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      qsuite "stats-props" [ prop_stats_merge_concat ];
      ( "cdf",
        [
          Alcotest.test_case "basic" `Quick test_cdf_basic;
          Alcotest.test_case "series" `Quick test_cdf_series;
        ] );
      qsuite "cdf-props" [ prop_cdf_monotone ];
      ( "lru",
        [
          Alcotest.test_case "order" `Quick test_lru_order;
          Alcotest.test_case "remove" `Quick test_lru_remove;
        ] );
      qsuite "lru-props" [ prop_lru_eviction_order ];
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
        ] );
      qsuite "histogram-props"
        [
          prop_histogram_percentile_bounds;
          prop_histogram_merge_concat;
          prop_histogram_diff_inverts_merge;
        ];
    ]
