(* Tests for kona_rack: the per-node WFQ ingress scheduler and the
   multi-tenant rack simulation (contention, shared segments, quotas,
   determinism, fault composition). *)

open Kona_rack
module Rack_controller = Kona.Rack_controller
module Units = Kona_util.Units
module Fault_spec = Kona_faults.Fault_spec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Wfq *)

let test_wfq_idle_no_delay () =
  let w = Wfq.create ~gbps:1.0 ~weights:[| 1; 1 |] in
  check_int "idle link admits with zero delay" 0
    (Wfq.admit w ~tenant:0 ~bytes:4096 ~now:0);
  (* A message arriving after the link drained is also free. *)
  let later = Wfq.busy_until w + 10 in
  check_int "drained link admits with zero delay" 0
    (Wfq.admit w ~tenant:1 ~bytes:4096 ~now:later);
  check_int "no saturated admits" 0 (Wfq.saturated_admits w);
  check_int "two admits" 2 (Wfq.total_admits w)

let test_wfq_wire_time () =
  let w = Wfq.create ~gbps:1.0 ~weights:[| 1 |] in
  (* 1 Gbit/s = 8 ns per byte. *)
  check_int "8 ns/byte at 1 Gbit/s" (8 * 4096) (Wfq.wire_ns w ~bytes:4096);
  let fast = Wfq.create ~gbps:1000.0 ~weights:[| 1 |] in
  check_int "non-empty floors at 1 ns" 1 (Wfq.wire_ns fast ~bytes:1);
  check_int "empty message is free" 0 (Wfq.wire_ns w ~bytes:0)

let test_wfq_weighted_shares () =
  let w = Wfq.create ~gbps:1.0 ~weights:[| 2; 1 |] in
  (* Both tenants keep the link saturated from t=0: all admits after the
     first are contended, and the achieved rates must split 2:1. *)
  for _ = 1 to 200 do
    ignore (Wfq.admit w ~tenant:0 ~bytes:4096 ~now:0);
    ignore (Wfq.admit w ~tenant:1 ~bytes:4096 ~now:0)
  done;
  let a0 = Wfq.achieved_gbps w ~tenant:0
  and a1 = Wfq.achieved_gbps w ~tenant:1 in
  check_bool "both tenants contended" true (a0 > 0.0 && a1 > 0.0);
  let ratio = a0 /. a1 in
  check_bool
    (Printf.sprintf "achieved ratio %.3f tracks the 2:1 weights" ratio)
    true
    (ratio > 1.99 && ratio < 2.01);
  let s1 = Wfq.tenant_stats w ~tenant:1 in
  check_bool "lighter tenant queues longer" true
    (s1.Wfq.delay_ns > (Wfq.tenant_stats w ~tenant:0).Wfq.delay_ns);
  check_bool "backlog accumulated" true (Wfq.peak_backlog_ns w > 0);
  check_bool "backlog drains with time" true
    (Wfq.backlog_ns w ~now:(Wfq.busy_until w) = 0)

(* Property: for any rack of >= 3 tenants with arbitrary weights, a
   saturated link divides its bandwidth in proportion to the weights.
   Every tenant offers identical demand from t=0, so each pairwise
   achieved ratio must land within 10% of the weight ratio. *)
let wfq_fairness_prop =
  let gen =
    QCheck2.Gen.(list_size (int_range 3 6) (int_range 1 8))
  in
  QCheck2.Test.make ~count:50 ~name:"wfq shares track arbitrary weights" gen
    (fun weights ->
      let w = Wfq.create ~gbps:1.0 ~weights:(Array.of_list weights) in
      let n = List.length weights in
      for _ = 1 to 300 do
        for t = 0 to n - 1 do
          ignore (Wfq.admit w ~tenant:t ~bytes:4096 ~now:0)
        done
      done;
      let achieved = Array.init n (fun t -> Wfq.achieved_gbps w ~tenant:t) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let want =
            float_of_int (List.nth weights i) /. float_of_int (List.nth weights j)
          in
          let got = achieved.(i) /. achieved.(j) in
          if abs_float ((got /. want) -. 1.0) > 0.10 then ok := false
        done
      done;
      !ok)

let test_wfq_rejects_bad_config () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "empty weights" true
    (raises (fun () -> Wfq.create ~gbps:1.0 ~weights:[||]));
  check_bool "zero weight" true
    (raises (fun () -> Wfq.create ~gbps:1.0 ~weights:[| 1; 0 |]));
  check_bool "non-positive rate" true
    (raises (fun () -> Wfq.create ~gbps:0.0 ~weights:[| 1 |]))

(* ------------------------------------------------------------------ *)
(* Rack *)

let tenants ?(quota0 = None) ?(shares = (2, 1)) () =
  let s0, s1 = shares in
  [
    { Rack.name = "t0"; workload = "kv-uniform"; bw_share = s0;
      mem_quota = quota0; seed = 42 };
    { Rack.name = "t1"; workload = "page-rank"; bw_share = s1;
      mem_quota = None; seed = 43 };
  ]

let cfg ?(replicas = 0) ?(faults = []) () =
  { Rack.default_config with Rack.replicas; faults }

let test_rack_two_tenants () =
  let r = Rack.run (cfg ()) (tenants ()) in
  let t0 = r.Rack.r_tenants.(0) and t1 = r.Rack.r_tenants.(1) in
  check_bool "tenant 0 ran" true (t0.Rack.t_accesses > 0);
  check_bool "tenant 1 ran" true (t1.Rack.t_accesses > 0);
  check_int "tenant 0 converged" 0 t0.Rack.t_mismatches;
  check_int "tenant 1 converged" 0 t1.Rack.t_mismatches;
  (* The 1 Gbit/s links saturate under two smoke tenants... *)
  check_bool "links saturated" true (r.Rack.r_saturated_admits > 0);
  (* ...and the achieved bandwidth split tracks the 2:1 shares. *)
  let ratio = t0.Rack.t_achieved_gbps /. t1.Rack.t_achieved_gbps in
  check_bool
    (Printf.sprintf "achieved ratio %.2f within 20%% of 2:1" ratio)
    true
    (ratio > 1.6 && ratio < 2.4);
  (* Shared segment: the writer's evictions recalled the reader. *)
  check_bool "publisher wrote the segment" true (r.Rack.r_shared_writes > 0);
  check_bool "reader read the segment" true (r.Rack.r_shared_reads > 0);
  check_bool "writer evictions snooped the rack directory" true
    (r.Rack.r_snoops > 0);
  check_bool "reader received invalidations" true
    (t1.Rack.t_invalidations > 0);
  check_int "no crashes without faults" 0 r.Rack.r_node_crashes

let test_rack_determinism () =
  let fingerprints () =
    let r = Rack.run (cfg ()) (tenants ()) in
    Array.map (fun t -> t.Rack.t_fingerprint) r.Rack.r_tenants
  in
  let a = fingerprints () and b = fingerprints () in
  Alcotest.(check (array string))
    "same seeds give bit-identical per-tenant counters" a b

let test_rack_quota_rejection () =
  (* One slab's worth of quota cannot back a smoke heap. *)
  let quota0 = Some (Units.mib 1) in
  match Rack.run (cfg ()) (tenants ~quota0 ()) with
  | _ -> Alcotest.fail "tenant 0 must overrun its one-slab quota"
  | exception Rack_controller.Quota_exceeded { tenant; quota; used; requested } ->
      Alcotest.(check string) "names the tenant" "t0" tenant;
      check_bool "cap reported" true (quota > 0);
      check_bool "rejected once full" true (used + requested > quota)

let test_rack_fault_failover () =
  let faults = Fault_spec.parse_exn "node-crash@2ms:id=1" in
  let r = Rack.run (cfg ~replicas:1 ~faults ()) (tenants ()) in
  check_int "the crash happened" 1 r.Rack.r_node_crashes;
  Array.iter
    (fun t ->
      check_int
        (Printf.sprintf "%s survived the failover intact" t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_mismatches;
      check_int
        (Printf.sprintf "%s lost no pages" t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_lost_pages;
      check_bool "not degraded" true (t.Rack.t_degraded = None))
    r.Rack.r_tenants

(* Multi-writer shared segment: both tenants RFO-write the same lines,
   so the MSI home must recall dirty copies and hand ownership back and
   forth; the per-line last-writer-wins oracle still has to converge. *)
let mw_cfg ?(replicas = 0) ?(faults = []) () =
  { Rack.default_config with Rack.shared_writers = 2; replicas; faults }

let test_rack_multi_writer () =
  let r = Rack.run (mw_cfg ()) (tenants ()) in
  check_bool "the home granted new exclusives" true (r.Rack.r_owner_changes > 0);
  check_bool "recalls snooped holders" true (r.Rack.r_snoops > 0);
  Array.iter
    (fun t ->
      check_int
        (Printf.sprintf "%s converged to last-writer-wins"
           t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_mismatches)
    r.Rack.r_tenants

(* Writer handoff proper — a write-miss recalling the previous writer's
   *dirty* copy — needs back-to-back writes with no intervening read
   (the woven replay always downgrades lines to Shared first), so drive
   a doorbell-style ping-pong directly and crash a node mid-stream. *)
let test_rack_writer_handoff_under_fault () =
  let cfg =
    { Rack.default_config with Rack.replicas = 1; shared_pages = 0 }
  in
  let e = Rack.start cfg (tenants ()) in
  Rack.publish e ~pages:1;
  Rack.enable_multi_writer e;
  let ping_pong k0 =
    for k = k0 to k0 + 15 do
      Rack.shared_line_write e ~tenant:(k mod 2) ~line:0
        ~payload:(Char.chr (0x20 + (k land 0x3f)))
    done
  in
  ping_pong 0;
  let h1 = Rack.shared_handoffs e in
  check_bool "each write recalled the peer's dirty line" true (h1 >= 8);
  Rack.crash_node e ~id:1;
  while not (Rack.recovery_idle e) do
    Rack.step_recovery e
  done;
  ping_pong 16;
  check_bool "handoffs continued after the failover" true
    (Rack.shared_handoffs e > h1);
  Alcotest.(check (option int))
    "last writer owns the line" (Some 1)
    (Rack.shared_owner e ~line:0);
  Alcotest.(check (list string)) "home table stayed coherent" []
    (Rack.coherence_audit e);
  while Rack.step e > 0 do () done;
  let r = Rack.finish e in
  check_int "remote image converged to last-writer-wins" 0
    (Rack.shared_divergence e);
  Array.iter
    (fun t ->
      check_int
        (Printf.sprintf "%s survived intact" t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_mismatches)
    r.Rack.r_tenants

let test_rack_multi_writer_failover () =
  let faults = Fault_spec.parse_exn "node-crash@2ms:id=1" in
  let r = Rack.run (mw_cfg ~replicas:1 ~faults ()) (tenants ()) in
  check_int "the crash happened" 1 r.Rack.r_node_crashes;
  Array.iter
    (fun t ->
      check_int
        (Printf.sprintf "%s survived the failover intact"
           t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_mismatches;
      check_int
        (Printf.sprintf "%s lost no pages" t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_lost_pages)
    r.Rack.r_tenants

let test_rack_multi_writer_determinism () =
  let fingerprints () =
    let r = Rack.run (mw_cfg ()) (tenants ()) in
    Array.map (fun t -> t.Rack.t_fingerprint) r.Rack.r_tenants
  in
  let a = fingerprints () and b = fingerprints () in
  Alcotest.(check (array string))
    "same seeds give bit-identical multi-writer runs" a b

(* ------------------------------------------------------------------ *)
(* Placement: migration, drain, and their composition with faults.     *)

(* A tiered rack where placement matters: 3 nodes, only node 0 fast,
   FMem squeezed so the zipf tenant's hot set thrashes through fetches. *)
let placement_cfg ?(policy = "heat") ?(replicas = 0) ?(faults = []) ?(ops = [])
    () =
  {
    Rack.default_config with
    Rack.nodes = 3;
    fast_nodes = 1;
    slow_extra_ns = 2000;
    policy;
    replicas;
    faults;
    ops;
    runtime =
      { Rack.default_config.Rack.runtime with Kona.Runtime.fmem_pages = 64 };
  }

let placement_tenants =
  [
    { Rack.name = "t0"; workload = "kv-zipf"; bw_share = 1; mem_quota = None;
      seed = 42 };
    { Rack.name = "t1"; workload = "kv-uniform"; bw_share = 1; mem_quota = None;
      seed = 43 };
  ]

let total_mismatches (r : Rack.result) =
  Array.fold_left (fun acc t -> acc + t.Rack.t_mismatches) 0 r.Rack.r_tenants

let test_placement_heat_beats_first_fit () =
  let base = Rack.run (placement_cfg ~policy:"first-fit" ()) placement_tenants in
  let heat = Rack.run (placement_cfg ~policy:"heat" ()) placement_tenants in
  check_int "first-fit never migrates" 0 base.Rack.r_migrations;
  check_bool "heat migrated pages" true (heat.Rack.r_migrations > 0);
  check_bool
    (Printf.sprintf "heat lowers the remote-hit ratio (%d < %d permille)"
       heat.Rack.r_remote_hit_pml base.Rack.r_remote_hit_pml)
    true
    (heat.Rack.r_remote_hit_pml < base.Rack.r_remote_hit_pml);
  check_bool "hot fetches mostly land on the fast tier" true
    (heat.Rack.r_hot_hit_pml >= 800);
  (* Migration traffic is charged through the per-node WFQ: the copies
     queue, and the queueing they absorb (and impose) is visible. *)
  check_bool "migration traffic contended at the nodes" true
    (heat.Rack.r_migrator_delay_ns > 0);
  check_bool "tenants queued longer under migration" true
    (heat.Rack.r_tenants.(0).Rack.t_delay_ns
     + heat.Rack.r_tenants.(1).Rack.t_delay_ns
     > base.Rack.r_tenants.(0).Rack.t_delay_ns
       + base.Rack.r_tenants.(1).Rack.t_delay_ns);
  check_int "no divergence under first-fit" 0 (total_mismatches base);
  check_int "no divergence under migration" 0 (total_mismatches heat)

let test_placement_determinism_per_policy () =
  List.iter
    (fun policy ->
      let fp () =
        let r = Rack.run (placement_cfg ~policy ()) placement_tenants in
        Array.map (fun t -> t.Rack.t_fingerprint) r.Rack.r_tenants
      in
      Alcotest.(check (array string))
        (policy ^ " is bit-reproducible") (fp ()) (fp ()))
    [ "first-fit"; "heat"; "centralized" ]

let test_placement_drain_rehomes () =
  let ops = Rack_ops.parse_exn "drain@5ms:id=1" in
  let r = Rack.run (placement_cfg ~ops ()) placement_tenants in
  check_int "drain applied" 1 r.Rack.r_ops_applied;
  check_bool "pages re-homed" true (r.Rack.r_drained_pages > 0);
  check_int "every page found a new home" 0 r.Rack.r_drain_failures;
  check_int "no divergence across the drain" 0 (total_mismatches r)

let test_placement_add_then_drain () =
  (* Register a fresh node, then drain one of the originals: re-homed
     pages can land on the newcomer, and the rack stays convergent. *)
  let ops = Rack_ops.parse_exn "add@2ms:cap=16777216;drain@4ms:id=2" in
  let r = Rack.run (placement_cfg ~ops ()) placement_tenants in
  check_int "both ops applied" 2 r.Rack.r_ops_applied;
  check_bool "pages re-homed" true (r.Rack.r_drained_pages > 0);
  check_int "no drain failures" 0 r.Rack.r_drain_failures;
  check_int "no divergence" 0 (total_mismatches r)

let test_placement_drain_composes_with_failover () =
  (* Node 1 crashes at 2ms (replica failover promotes its mirror), then
     a drain of the same node at 4ms re-homes every page off the
     promoted copy — the crash-mid-drain contract. *)
  let faults = Fault_spec.parse_exn "node-crash@2ms:id=1" in
  let ops = Rack_ops.parse_exn "drain@4ms:id=1" in
  let r =
    Rack.run (placement_cfg ~replicas:1 ~faults ~ops ()) placement_tenants
  in
  check_int "the crash happened" 1 r.Rack.r_node_crashes;
  check_bool "drain still re-homed pages" true (r.Rack.r_drained_pages > 0);
  check_int "no page was stranded" 0 r.Rack.r_drain_failures;
  Array.iter
    (fun (t : Rack.tenant_result) ->
      check_int (t.Rack.t_cfg.Rack.name ^ " converged") 0 t.Rack.t_mismatches;
      check_int (t.Rack.t_cfg.Rack.name ^ " lost nothing") 0
        t.Rack.t_lost_pages)
    r.Rack.r_tenants

let test_placement_quota_conserved_by_migration () =
  (* Migration moves pages the tenant already paid for; a quota sized to
     the tenant's allocation must not trip as pages migrate. *)
  let quota = Some (Units.mib 8) in
  let tenants =
    [
      { Rack.name = "t0"; workload = "kv-zipf"; bw_share = 1;
        mem_quota = quota; seed = 42 };
      { Rack.name = "t1"; workload = "kv-uniform"; bw_share = 1;
        mem_quota = None; seed = 43 };
    ]
  in
  let r = Rack.run (placement_cfg ~policy:"heat" ()) tenants in
  check_bool "pages migrated under the quota" true (r.Rack.r_migrations > 0);
  check_int "no divergence" 0 (total_mismatches r)

let test_rack_validates_tenants () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "empty tenant list" true (raises (fun () -> Rack.run (cfg ()) []));
  check_bool "duplicate names" true
    (raises (fun () ->
         Rack.run (cfg ())
           [
             { Rack.name = "t"; workload = "kv-uniform"; bw_share = 1;
               mem_quota = None; seed = 1 };
             { Rack.name = "t"; workload = "page-rank"; bw_share = 1;
               mem_quota = None; seed = 2 };
           ]));
  check_bool "unknown workload" true
    (raises (fun () ->
         Rack.run (cfg ())
           [
             { Rack.name = "t"; workload = "no-such-workload"; bw_share = 1;
               mem_quota = None; seed = 1 };
           ]));
  check_bool "non-positive share" true
    (raises (fun () ->
         Rack.run (cfg ())
           [
             { Rack.name = "t"; workload = "kv-uniform"; bw_share = 0;
               mem_quota = None; seed = 1 };
           ]))

let () =
  Alcotest.run "kona_rack"
    [
      ( "wfq",
        [
          Alcotest.test_case "idle admits free" `Quick test_wfq_idle_no_delay;
          Alcotest.test_case "wire time" `Quick test_wfq_wire_time;
          Alcotest.test_case "weighted shares" `Quick test_wfq_weighted_shares;
          Alcotest.test_case "rejects bad config" `Quick
            test_wfq_rejects_bad_config;
          QCheck_alcotest.to_alcotest wfq_fairness_prop;
        ] );
      ( "rack",
        [
          Alcotest.test_case "two tenants" `Quick test_rack_two_tenants;
          Alcotest.test_case "determinism" `Quick test_rack_determinism;
          Alcotest.test_case "quota rejection" `Quick test_rack_quota_rejection;
          Alcotest.test_case "fault failover" `Quick test_rack_fault_failover;
          Alcotest.test_case "multi-writer" `Quick test_rack_multi_writer;
          Alcotest.test_case "writer handoff under fault" `Quick
            test_rack_writer_handoff_under_fault;
          Alcotest.test_case "multi-writer failover" `Quick
            test_rack_multi_writer_failover;
          Alcotest.test_case "multi-writer determinism" `Quick
            test_rack_multi_writer_determinism;
          Alcotest.test_case "validates tenants" `Quick
            test_rack_validates_tenants;
        ] );
      ( "placement",
        [
          Alcotest.test_case "heat beats first-fit" `Quick
            test_placement_heat_beats_first_fit;
          Alcotest.test_case "per-policy determinism" `Quick
            test_placement_determinism_per_policy;
          Alcotest.test_case "drain re-homes" `Quick test_placement_drain_rehomes;
          Alcotest.test_case "add then drain" `Quick test_placement_add_then_drain;
          Alcotest.test_case "drain composes with failover" `Quick
            test_placement_drain_composes_with_failover;
          Alcotest.test_case "migration conserves quota" `Quick
            test_placement_quota_conserved_by_migration;
        ] );
    ]
