(* Tests for kona_rack: the per-node WFQ ingress scheduler and the
   multi-tenant rack simulation (contention, shared segments, quotas,
   determinism, fault composition). *)

open Kona_rack
module Rack_controller = Kona.Rack_controller
module Units = Kona_util.Units
module Fault_spec = Kona_faults.Fault_spec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Wfq *)

let test_wfq_idle_no_delay () =
  let w = Wfq.create ~gbps:1.0 ~weights:[| 1; 1 |] in
  check_int "idle link admits with zero delay" 0
    (Wfq.admit w ~tenant:0 ~bytes:4096 ~now:0);
  (* A message arriving after the link drained is also free. *)
  let later = Wfq.busy_until w + 10 in
  check_int "drained link admits with zero delay" 0
    (Wfq.admit w ~tenant:1 ~bytes:4096 ~now:later);
  check_int "no saturated admits" 0 (Wfq.saturated_admits w);
  check_int "two admits" 2 (Wfq.total_admits w)

let test_wfq_wire_time () =
  let w = Wfq.create ~gbps:1.0 ~weights:[| 1 |] in
  (* 1 Gbit/s = 8 ns per byte. *)
  check_int "8 ns/byte at 1 Gbit/s" (8 * 4096) (Wfq.wire_ns w ~bytes:4096);
  let fast = Wfq.create ~gbps:1000.0 ~weights:[| 1 |] in
  check_int "non-empty floors at 1 ns" 1 (Wfq.wire_ns fast ~bytes:1);
  check_int "empty message is free" 0 (Wfq.wire_ns w ~bytes:0)

let test_wfq_weighted_shares () =
  let w = Wfq.create ~gbps:1.0 ~weights:[| 2; 1 |] in
  (* Both tenants keep the link saturated from t=0: all admits after the
     first are contended, and the achieved rates must split 2:1. *)
  for _ = 1 to 200 do
    ignore (Wfq.admit w ~tenant:0 ~bytes:4096 ~now:0);
    ignore (Wfq.admit w ~tenant:1 ~bytes:4096 ~now:0)
  done;
  let a0 = Wfq.achieved_gbps w ~tenant:0
  and a1 = Wfq.achieved_gbps w ~tenant:1 in
  check_bool "both tenants contended" true (a0 > 0.0 && a1 > 0.0);
  let ratio = a0 /. a1 in
  check_bool
    (Printf.sprintf "achieved ratio %.3f tracks the 2:1 weights" ratio)
    true
    (ratio > 1.99 && ratio < 2.01);
  let s1 = Wfq.tenant_stats w ~tenant:1 in
  check_bool "lighter tenant queues longer" true
    (s1.Wfq.delay_ns > (Wfq.tenant_stats w ~tenant:0).Wfq.delay_ns);
  check_bool "backlog accumulated" true (Wfq.peak_backlog_ns w > 0);
  check_bool "backlog drains with time" true
    (Wfq.backlog_ns w ~now:(Wfq.busy_until w) = 0)

let test_wfq_rejects_bad_config () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "empty weights" true
    (raises (fun () -> Wfq.create ~gbps:1.0 ~weights:[||]));
  check_bool "zero weight" true
    (raises (fun () -> Wfq.create ~gbps:1.0 ~weights:[| 1; 0 |]));
  check_bool "non-positive rate" true
    (raises (fun () -> Wfq.create ~gbps:0.0 ~weights:[| 1 |]))

(* ------------------------------------------------------------------ *)
(* Rack *)

let tenants ?(quota0 = None) ?(shares = (2, 1)) () =
  let s0, s1 = shares in
  [
    { Rack.name = "t0"; workload = "kv-uniform"; bw_share = s0;
      mem_quota = quota0; seed = 42 };
    { Rack.name = "t1"; workload = "page-rank"; bw_share = s1;
      mem_quota = None; seed = 43 };
  ]

let cfg ?(replicas = 0) ?(faults = []) () =
  { Rack.default_config with Rack.replicas; faults }

let test_rack_two_tenants () =
  let r = Rack.run (cfg ()) (tenants ()) in
  let t0 = r.Rack.r_tenants.(0) and t1 = r.Rack.r_tenants.(1) in
  check_bool "tenant 0 ran" true (t0.Rack.t_accesses > 0);
  check_bool "tenant 1 ran" true (t1.Rack.t_accesses > 0);
  check_int "tenant 0 converged" 0 t0.Rack.t_mismatches;
  check_int "tenant 1 converged" 0 t1.Rack.t_mismatches;
  (* The 1 Gbit/s links saturate under two smoke tenants... *)
  check_bool "links saturated" true (r.Rack.r_saturated_admits > 0);
  (* ...and the achieved bandwidth split tracks the 2:1 shares. *)
  let ratio = t0.Rack.t_achieved_gbps /. t1.Rack.t_achieved_gbps in
  check_bool
    (Printf.sprintf "achieved ratio %.2f within 20%% of 2:1" ratio)
    true
    (ratio > 1.6 && ratio < 2.4);
  (* Shared segment: the writer's evictions recalled the reader. *)
  check_bool "publisher wrote the segment" true (r.Rack.r_shared_writes > 0);
  check_bool "reader read the segment" true (r.Rack.r_shared_reads > 0);
  check_bool "writer evictions snooped the rack directory" true
    (r.Rack.r_snoops > 0);
  check_bool "reader received invalidations" true
    (t1.Rack.t_invalidations > 0);
  check_int "no crashes without faults" 0 r.Rack.r_node_crashes

let test_rack_determinism () =
  let fingerprints () =
    let r = Rack.run (cfg ()) (tenants ()) in
    Array.map (fun t -> t.Rack.t_fingerprint) r.Rack.r_tenants
  in
  let a = fingerprints () and b = fingerprints () in
  Alcotest.(check (array string))
    "same seeds give bit-identical per-tenant counters" a b

let test_rack_quota_rejection () =
  (* One slab's worth of quota cannot back a smoke heap. *)
  let quota0 = Some (Units.mib 1) in
  match Rack.run (cfg ()) (tenants ~quota0 ()) with
  | _ -> Alcotest.fail "tenant 0 must overrun its one-slab quota"
  | exception Rack_controller.Quota_exceeded { tenant; quota; used; requested } ->
      Alcotest.(check string) "names the tenant" "t0" tenant;
      check_bool "cap reported" true (quota > 0);
      check_bool "rejected once full" true (used + requested > quota)

let test_rack_fault_failover () =
  let faults = Fault_spec.parse_exn "node-crash@2ms:id=1" in
  let r = Rack.run (cfg ~replicas:1 ~faults ()) (tenants ()) in
  check_int "the crash happened" 1 r.Rack.r_node_crashes;
  Array.iter
    (fun t ->
      check_int
        (Printf.sprintf "%s survived the failover intact" t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_mismatches;
      check_int
        (Printf.sprintf "%s lost no pages" t.Rack.t_cfg.Rack.name)
        0 t.Rack.t_lost_pages;
      check_bool "not degraded" true (t.Rack.t_degraded = None))
    r.Rack.r_tenants

let test_rack_validates_tenants () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "empty tenant list" true (raises (fun () -> Rack.run (cfg ()) []));
  check_bool "duplicate names" true
    (raises (fun () ->
         Rack.run (cfg ())
           [
             { Rack.name = "t"; workload = "kv-uniform"; bw_share = 1;
               mem_quota = None; seed = 1 };
             { Rack.name = "t"; workload = "page-rank"; bw_share = 1;
               mem_quota = None; seed = 2 };
           ]));
  check_bool "unknown workload" true
    (raises (fun () ->
         Rack.run (cfg ())
           [
             { Rack.name = "t"; workload = "no-such-workload"; bw_share = 1;
               mem_quota = None; seed = 1 };
           ]));
  check_bool "non-positive share" true
    (raises (fun () ->
         Rack.run (cfg ())
           [
             { Rack.name = "t"; workload = "kv-uniform"; bw_share = 0;
               mem_quota = None; seed = 1 };
           ]))

let () =
  Alcotest.run "kona_rack"
    [
      ( "wfq",
        [
          Alcotest.test_case "idle admits free" `Quick test_wfq_idle_no_delay;
          Alcotest.test_case "wire time" `Quick test_wfq_wire_time;
          Alcotest.test_case "weighted shares" `Quick test_wfq_weighted_shares;
          Alcotest.test_case "rejects bad config" `Quick
            test_wfq_rejects_bad_config;
        ] );
      ( "rack",
        [
          Alcotest.test_case "two tenants" `Quick test_rack_two_tenants;
          Alcotest.test_case "determinism" `Quick test_rack_determinism;
          Alcotest.test_case "quota rejection" `Quick test_rack_quota_rejection;
          Alcotest.test_case "fault failover" `Quick test_rack_fault_failover;
          Alcotest.test_case "validates tenants" `Quick
            test_rack_validates_tenants;
        ] );
    ]
