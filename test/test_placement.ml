(* Tests for kona_placement: decaying page-heat tracking, the pluggable
   placement policies, the epoch-driven migrator, and the rack-ops spec
   grammar. *)

open Kona_placement
module Rack_ops = Kona_rack.Rack_ops

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Heat *)

let test_heat_accumulates_and_decays () =
  let h = Heat.create ~epoch_ns:1000 in
  Heat.touch h ~vpage:7 ~weight:2 ~now:100;
  Heat.touch h ~vpage:7 ~weight:2 ~now:200;
  check_int "two touches accumulate" 4 (Heat.heat h ~vpage:7 ~now:200);
  (* One epoch later the counter has halved, two epochs quarters it. *)
  check_int "halves after one epoch" 2 (Heat.heat h ~vpage:7 ~now:1100);
  check_int "quarters after two epochs" 1 (Heat.heat h ~vpage:7 ~now:2100);
  check_int "gone after three" 0 (Heat.heat h ~vpage:7 ~now:3100);
  check_int "untracked page reads 0" 0 (Heat.heat h ~vpage:99 ~now:0);
  check_int "events counted" 2 (Heat.touches h)

let test_heat_ranked_and_iter () =
  let h = Heat.create ~epoch_ns:1_000_000 in
  Heat.touch h ~vpage:3 ~weight:1 ~now:0;
  Heat.touch h ~vpage:1 ~weight:5 ~now:0;
  Heat.touch h ~vpage:2 ~weight:5 ~now:0;
  (match Heat.ranked h ~now:0 with
  | (p0, h0) :: (p1, _) :: (p2, _) :: [] ->
      check_int "hottest first" 1 p0;
      check_int "hottest heat" 5 h0;
      check_int "tie broken by lower vpage" 2 p1;
      check_int "coldest last" 3 p2
  | l -> Alcotest.failf "expected 3 ranked pages, got %d" (List.length l));
  (* iter drops fully-decayed cells from the table. *)
  let far = 100 * 1_000_000 in
  Heat.iter h ~now:far (fun ~vpage:_ ~heat:_ -> ());
  check_int "decayed cells dropped" 0 (Heat.tracked h)

let test_heat_rejects_bad_epoch () =
  check_bool "non-positive epoch" true
    (raises_invalid (fun () -> Heat.create ~epoch_ns:0))

(* ------------------------------------------------------------------ *)
(* Placement policies *)

let node ?(fast = false) ?(draining = false) ~free ~cap id =
  {
    Placement_policy.ni_node = id;
    ni_fast = fast;
    ni_free = free;
    ni_capacity = cap;
    ni_draining = draining;
  }

let page ?(tenant = 0) ~vpage ~node:n ~heat () =
  { Placement_policy.pi_vpage = vpage; pi_tenant = tenant; pi_node = n;
    pi_heat = heat }

let mib = 1024 * 1024

let test_policy_registry () =
  check_int "three policies" 3 (List.length Placement_policy.names);
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " resolves to itself") name
        (Placement_policy.find name).Placement_policy.name)
    Placement_policy.names;
  check_bool "unknown policy rejected" true
    (raises_invalid (fun () -> Placement_policy.find "hotcold"))

let test_first_fit_is_inert () =
  let p = Placement_policy.first_fit () in
  let nodes = [ node ~fast:true ~free:mib ~cap:mib 0 ] in
  check_bool "no allocation preference" true
    (p.Placement_policy.choose_node ~nodes ~tenant:0 = None);
  check_int "no moves planned" 0
    (List.length
       (p.Placement_policy.plan ~nodes
          ~pages:[ page ~vpage:0 ~node:0 ~heat:100 () ]
          ~budget:8))

let test_heat_promotes_hot_slow_pages () =
  let p = Placement_policy.heat_aware ~hot_threshold:4 () in
  let nodes =
    [ node ~fast:true ~free:mib ~cap:(2 * mib) 0;
      node ~free:mib ~cap:(2 * mib) 1 ]
  in
  let pages =
    [ page ~vpage:10 ~node:1 ~heat:9 (); page ~vpage:11 ~node:0 ~heat:9 ();
      page ~vpage:12 ~node:1 ~heat:1 () ]
  in
  match p.Placement_policy.plan ~nodes ~pages ~budget:8 with
  | [ mv ] ->
      check_int "the stranded hot page moves" 10 mv.Placement_policy.mv_vpage;
      check_int "to the fast node" 0 mv.Placement_policy.mv_dst
  | l -> Alcotest.failf "expected exactly 1 move, got %d" (List.length l)

let test_heat_demotes_only_under_pressure () =
  let p = Placement_policy.heat_aware ~hot_threshold:4 () in
  let pages = [ page ~vpage:5 ~node:0 ~heat:1 () ] in
  (* Plenty of fast headroom: the cold resident stays put. *)
  let roomy =
    [ node ~fast:true ~free:mib ~cap:(2 * mib) 0; node ~free:mib ~cap:(2 * mib) 1 ]
  in
  check_int "no churn while the fast tier has room" 0
    (List.length (p.Placement_policy.plan ~nodes:roomy ~pages ~budget:8));
  (* Fast tier nearly full: the cold resident is shipped out. *)
  let full =
    [ node ~fast:true ~free:0 ~cap:(2 * mib) 0; node ~free:mib ~cap:(2 * mib) 1 ]
  in
  match p.Placement_policy.plan ~nodes:full ~pages ~budget:8 with
  | [ mv ] ->
      check_int "cold page demoted" 5 mv.Placement_policy.mv_vpage;
      check_int "off the fast tier" 1 mv.Placement_policy.mv_dst
  | l -> Alcotest.failf "expected exactly 1 demotion, got %d" (List.length l)

let test_heat_respects_budget_and_draining () =
  let p = Placement_policy.heat_aware ~hot_threshold:2 () in
  let nodes =
    [ node ~fast:true ~free:mib ~cap:(2 * mib) 0;
      node ~free:mib ~cap:(2 * mib) 1 ]
  in
  let pages =
    List.init 10 (fun i -> page ~vpage:i ~node:1 ~heat:(10 - i) ())
  in
  let plan = p.Placement_policy.plan ~nodes ~pages ~budget:3 in
  check_int "budget caps the plan" 3 (List.length plan);
  (* A draining fast node is not a destination. *)
  let draining =
    [ node ~fast:true ~draining:true ~free:mib ~cap:(2 * mib) 0;
      node ~free:mib ~cap:(2 * mib) 1 ]
  in
  check_int "no moves onto a draining node" 0
    (List.length (p.Placement_policy.plan ~nodes:draining ~pages ~budget:3))

let test_centralized_balances_capacity () =
  let p = Placement_policy.centralized () in
  (* Node 0 is far above the mean; node 1 has headroom. *)
  let nodes =
    [ node ~free:0 ~cap:(4 * mib) 0; node ~free:(4 * mib) ~cap:(4 * mib) 1 ]
  in
  let pages =
    [ page ~vpage:1 ~node:0 ~heat:9 (); page ~vpage:2 ~node:0 ~heat:0 () ]
  in
  (match p.Placement_policy.plan ~nodes ~pages ~budget:1 with
  | [ mv ] ->
      check_int "sheds the coldest page first" 2 mv.Placement_policy.mv_vpage;
      check_int "to the emptier node" 1 mv.Placement_policy.mv_dst
  | l -> Alcotest.failf "expected exactly 1 move, got %d" (List.length l));
  check_int "balanced racks plan nothing" 0
    (List.length
       (p.Placement_policy.plan
          ~nodes:
            [ node ~free:mib ~cap:(2 * mib) 0; node ~free:mib ~cap:(2 * mib) 1 ]
          ~pages ~budget:4))

(* ------------------------------------------------------------------ *)
(* Migrator *)

let stub_env ?(move_result = Some 1) ~nodes ~pages () =
  let moves = ref [] and flushes = ref 0 and charges = ref [] in
  let env =
    {
      Migrator.nodes = (fun () -> nodes);
      pages = (fun ~now:_ -> pages);
      flush_logs = (fun () -> incr flushes);
      move_page =
        (fun mv ->
          moves := mv :: !moves;
          move_result);
      charge =
        (fun ~node ~bytes:_ ~now:_ ->
          charges := node :: !charges;
          7);
    }
  in
  (env, moves, flushes, charges)

let test_migrator_epoch_gating () =
  let nodes =
    [ node ~fast:true ~free:mib ~cap:(2 * mib) 0; node ~free:mib ~cap:(2 * mib) 1 ]
  in
  let pages = [ page ~vpage:10 ~node:1 ~heat:9 () ] in
  let env, moves, flushes, charges = stub_env ~nodes ~pages () in
  let m =
    Migrator.create
      ~policy:(Placement_policy.heat_aware ~hot_threshold:4 ())
      ~epoch_ns:1000 ~budget:8 ~page_bytes:4096 env
  in
  Migrator.tick m ~now:500;
  check_int "no tick before the first epoch boundary" 0 (Migrator.migrations m);
  Migrator.tick m ~now:1500;
  check_int "one migration after the boundary" 1 (Migrator.migrations m);
  check_int "logs flushed before remapping" 1 !flushes;
  check_int "4 KiB crossed the fabric" 4096 (Migrator.bytes_moved m);
  (* Source read + destination write both charged. *)
  check_int "two WFQ charges" 2 (List.length !charges);
  check_int "their queueing is accounted" 14 (Migrator.charged_ns m);
  Migrator.tick m ~now:1600;
  check_int "same epoch does not re-fire" 1 (Migrator.epochs m);
  check_int "one move executed in total" 1 (List.length !moves)

let test_migrator_counts_failures () =
  let nodes =
    [ node ~fast:true ~free:mib ~cap:(2 * mib) 0; node ~free:mib ~cap:(2 * mib) 1 ]
  in
  let pages = [ page ~vpage:10 ~node:1 ~heat:9 () ] in
  let env, _, _, charges = stub_env ~move_result:None ~nodes ~pages () in
  let m =
    Migrator.create
      ~policy:(Placement_policy.heat_aware ~hot_threshold:4 ())
      ~epoch_ns:1000 ~budget:8 ~page_bytes:4096 env
  in
  Migrator.tick m ~now:1500;
  check_int "declined move counted" 1 (Migrator.failed m);
  check_int "nothing migrated" 0 (Migrator.migrations m);
  check_int "failed moves are not charged" 0 (List.length !charges)

(* ------------------------------------------------------------------ *)
(* Rack-ops grammar *)

let test_rack_ops_parse () =
  let ops = Rack_ops.parse_exn "add@3ms:cap=1048576;drain@5ms:id=1;rebalance@7ms" in
  (match ops with
  | [ a; d; r ] ->
      check_int "add fires at 3ms" 3_000_000 a.Rack_ops.at_ns;
      (match a.Rack_ops.op with
      | Rack_ops.Add_node { capacity = Some c } -> check_int "capacity" 1048576 c
      | _ -> Alcotest.fail "expected add with capacity");
      (match d.Rack_ops.op with
      | Rack_ops.Drain { id } -> check_int "drain target" 1 id
      | _ -> Alcotest.fail "expected drain");
      check_bool "rebalance parsed" true (r.Rack_ops.op = Rack_ops.Rebalance)
  | l -> Alcotest.failf "expected 3 clauses, got %d" (List.length l));
  (* Round-trip through to_string. *)
  Alcotest.(check string)
    "round-trips" "add@3ms:cap=1048576;drain@5ms:id=1;rebalance@7ms"
    (Rack_ops.to_string ops);
  check_bool "empty spec is empty" true (Rack_ops.parse_exn "" = [])

let test_rack_ops_rejects_garbage () =
  List.iter
    (fun spec ->
      check_bool (Printf.sprintf "%S rejected" spec) true
        (match Rack_ops.parse spec with Ok _ -> false | Error _ -> true))
    [ "drain@5ms"; "drain@5ms:id=x"; "shrink@1ms"; "drain@bogus:id=1";
      "add@1ms:cap=-3" ]

let () =
  Alcotest.run "kona_placement"
    [
      ( "heat",
        [
          Alcotest.test_case "accumulates and decays" `Quick
            test_heat_accumulates_and_decays;
          Alcotest.test_case "ranked and iter" `Quick test_heat_ranked_and_iter;
          Alcotest.test_case "rejects bad epoch" `Quick
            test_heat_rejects_bad_epoch;
        ] );
      ( "policy",
        [
          Alcotest.test_case "registry" `Quick test_policy_registry;
          Alcotest.test_case "first-fit is inert" `Quick test_first_fit_is_inert;
          Alcotest.test_case "heat promotes hot slow pages" `Quick
            test_heat_promotes_hot_slow_pages;
          Alcotest.test_case "heat demotes only under pressure" `Quick
            test_heat_demotes_only_under_pressure;
          Alcotest.test_case "budget and draining respected" `Quick
            test_heat_respects_budget_and_draining;
          Alcotest.test_case "centralized balances capacity" `Quick
            test_centralized_balances_capacity;
        ] );
      ( "migrator",
        [
          Alcotest.test_case "epoch gating and charging" `Quick
            test_migrator_epoch_gating;
          Alcotest.test_case "counts declined moves" `Quick
            test_migrator_counts_failures;
        ] );
      ( "rack-ops",
        [
          Alcotest.test_case "parses schedules" `Quick test_rack_ops_parse;
          Alcotest.test_case "rejects garbage" `Quick
            test_rack_ops_rejects_garbage;
        ] );
    ]
