(* Tests for kona_telemetry: registry semantics, tracer ring behavior,
   snapshot diff/merge, and exporter output validity. *)

open Kona_telemetry
module Histogram = Kona_util.Histogram

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_handles () =
  let reg = Registry.create () in
  let c = Registry.counter reg "a.count" in
  let g = Registry.gauge reg "a.level" in
  Registry.Counter.incr c;
  Registry.Counter.add c 4;
  Registry.Gauge.set g 7;
  Registry.Gauge.add g (-2);
  check_int "counter" 5 (Registry.Counter.value c);
  check_int "gauge" 5 (Registry.Gauge.value g);
  let snap = Registry.snapshot reg in
  Alcotest.(check (option int)) "snapshot counter" (Some 5)
    (Snapshot.counter_value snap "a.count");
  Alcotest.(check (option int)) "snapshot gauge" (Some 5)
    (Snapshot.counter_value snap "a.level")

let test_registry_collision () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x.y" : Registry.Counter.t);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Registry: duplicate metric \"x.y\"") (fun () ->
      ignore (Registry.counter reg "x.y" : Registry.Counter.t));
  (* A different metric kind under the same name is also a collision. *)
  Alcotest.check_raises "cross-kind duplicate rejected"
    (Invalid_argument "Registry: duplicate metric \"x.y\"") (fun () ->
      ignore (Registry.gauge reg "x.y" : Registry.Gauge.t));
  (* Same base name with distinct labels is a distinct metric. *)
  ignore (Registry.counter reg ~labels:[ ("k", "v") ] "x.y" : Registry.Counter.t);
  Alcotest.check_raises "label duplicate rejected"
    (Invalid_argument "Registry: duplicate metric \"x.y{k=v}\"") (fun () ->
      ignore (Registry.counter reg ~labels:[ ("k", "v") ] "x.y" : Registry.Counter.t));
  check_int "two metrics" 2 (Registry.size reg)

let test_registry_invalid_name () =
  let reg = Registry.create () in
  Alcotest.check_raises "empty name"
    (Invalid_argument "Registry: invalid metric name \"\"") (fun () ->
      ignore (Registry.counter reg "" : Registry.Counter.t));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Registry: invalid metric name \"a b\"") (fun () ->
      ignore (Registry.counter reg "a b" : Registry.Counter.t))

let test_registry_labels_sorted () =
  let reg = Registry.create () in
  ignore
    (Registry.counter reg ~labels:[ ("z", "1"); ("a", "2") ] "m" : Registry.Counter.t);
  let snap = Registry.snapshot reg in
  match snap with
  | [ (name, _) ] -> check_string "labels sorted by key" "m{a=2,z=1}" name
  | _ -> Alcotest.fail "expected exactly one metric"

let test_registry_pull () =
  let reg = Registry.create () in
  let v = ref 10 in
  Registry.counter_fn reg "pull.count" (fun () -> !v);
  Registry.gauge_fn reg "pull.level" (fun () -> 2 * !v);
  (* Pull closures are read at snapshot time, not registration time. *)
  v := 42;
  let snap = Registry.snapshot reg in
  Alcotest.(check (option int)) "counter_fn" (Some 42)
    (Snapshot.counter_value snap "pull.count");
  Alcotest.(check (option int)) "gauge_fn" (Some 84)
    (Snapshot.counter_value snap "pull.level")

(* ------------------------------------------------------------------ *)
(* Tracer *)

let test_tracer_wraps_keeping_newest () =
  let tr = Tracer.create ~capacity:8 () in
  for i = 0 to 19 do
    Tracer.instant tr ~args:[ ("i", i) ] "tick"
  done;
  check_int "length = capacity" 8 (Tracer.length tr);
  check_int "offered" 20 (Tracer.offered tr);
  check_int "accepted" 20 (Tracer.accepted tr);
  check_int "overwritten" 12 (Tracer.overwritten tr);
  let seqs = List.map (fun e -> e.Tracer.seq) (Tracer.events tr) in
  Alcotest.(check (list int)) "newest events retained, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ] seqs

let test_tracer_sampling () =
  let tr = Tracer.create ~capacity:64 ~sample:3 () in
  for _ = 1 to 10 do
    Tracer.instant tr "hot"
  done;
  check_int "offered" 10 (Tracer.offered tr);
  check_int "accepted every 3rd" 3 (Tracer.accepted tr);
  check_int "ring holds accepted" 3 (Tracer.length tr)

let test_tracer_clock_stamping () =
  let tr = Tracer.create () in
  Tracer.instant tr "before-clock";
  Tracer.set_clock tr (fun () -> (111, 222));
  Tracer.span tr ~dur_ns:5 "after-clock";
  match Tracer.events tr with
  | [ e0; e1 ] ->
      check_int "default app stamp" 0 e0.Tracer.app_ns;
      check_int "installed app stamp" 111 e1.Tracer.app_ns;
      check_int "installed bg stamp" 222 e1.Tracer.bg_ns;
      check_bool "span kind" true
        (match e1.Tracer.kind with Tracer.Span { dur_ns } -> dur_ns = 5 | _ -> false)
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)

let test_tracer_jsonl () =
  let tr = Tracer.create () in
  Tracer.instant tr ~args:[ ("x", 1) ] "a";
  Tracer.span tr ~dur_ns:9 "b";
  let path = Filename.temp_file "kona_trace" ".jsonl" in
  let n = Tracer.write_jsonl ~path tr in
  check_int "events written" 2 n;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  check_int "two lines" 2 (List.length !lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
          check_bool "has name" true (List.mem_assoc "name" fields)
      | Ok _ -> Alcotest.fail "trace line is not an object"
      | Error e -> Alcotest.failf "trace line does not parse: %s" e)
    !lines

(* ------------------------------------------------------------------ *)
(* Snapshot diff/merge *)

let test_snapshot_diff_roundtrip () =
  let reg = Registry.create () in
  let c = Registry.counter reg "work.done" in
  let g = Registry.gauge reg "depth" in
  let h = Registry.histogram reg "lat" in
  Registry.Counter.add c 10;
  Registry.Gauge.set g 3;
  Histogram.add h 100;
  let before = Registry.snapshot reg in
  Registry.Counter.add c 7;
  Registry.Gauge.set g 9;
  Histogram.add h 200;
  Histogram.add h 300;
  let after = Registry.snapshot reg in
  let d = Snapshot.diff ~before ~after in
  Alcotest.(check (option int)) "counter delta" (Some 7)
    (Snapshot.counter_value d "work.done");
  Alcotest.(check (option int)) "gauge reports after level" (Some 9)
    (Snapshot.counter_value d "depth");
  (match Snapshot.find d "lat" with
  | Some (Snapshot.Hist dh) -> check_int "hist delta count" 2 (Histogram.count dh)
  | _ -> Alcotest.fail "lat missing from diff");
  (* diff then merge with before reconstructs after for counters/hists *)
  let back = Snapshot.merge before d in
  Alcotest.(check (option int)) "merge undoes diff" (Some 17)
    (Snapshot.counter_value back "work.done");
  match Snapshot.find back "lat" with
  | Some (Snapshot.Hist bh) -> check_int "hist count restored" 3 (Histogram.count bh)
  | _ -> Alcotest.fail "lat missing from merge"

let test_snapshot_immutable () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "lat" in
  Histogram.add h 5;
  let snap = Registry.snapshot reg in
  Histogram.add h 6;
  match Snapshot.find snap "lat" with
  | Some (Snapshot.Hist sh) ->
      check_int "snapshot unaffected by later adds" 1 (Histogram.count sh)
  | _ -> Alcotest.fail "lat missing"

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_export_json_valid () =
  let reg = Registry.create () in
  let c = Registry.counter reg "n" in
  Registry.Counter.add c 3;
  let h = Registry.histogram reg "lat_ns" in
  List.iter (Histogram.add h) [ 10; 20; 40_000 ];
  let s = Registry.summary reg "sz" in
  Kona_util.Stats.add_int s 12;
  let snap = Registry.snapshot reg in
  let doc = Snapshot.document ~meta:[ ("system", Json.String "test") ] snap in
  let text = Json.to_string doc in
  match Json.of_string text with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok parsed ->
      (match Json.member "schema" parsed with
      | Some (Json.String s) -> check_string "schema tag" "kona.telemetry.v1" s
      | _ -> Alcotest.fail "schema missing");
      (match Json.member "system" parsed with
      | Some (Json.String s) -> check_string "meta passthrough" "test" s
      | _ -> Alcotest.fail "meta missing");
      let metrics =
        match Json.member "metrics" parsed with
        | Some m -> Option.get (Json.to_list_opt m)
        | None -> Alcotest.fail "metrics missing"
      in
      check_int "three metrics" 3 (List.length metrics);
      let find name =
        List.find
          (fun m ->
            match Json.member "name" m with
            | Some (Json.String n) -> n = name
            | _ -> false)
          metrics
      in
      (match Json.member "value" (find "n") with
      | Some (Json.Int 3) -> ()
      | _ -> Alcotest.fail "counter value wrong");
      match Json.member "count" (find "lat_ns") with
      | Some (Json.Int 3) -> ()
      | _ -> Alcotest.fail "histogram count wrong"

let test_export_table () =
  let reg = Registry.create () in
  Registry.counter_fn reg "zeta" (fun () -> 1);
  Registry.counter_fn reg "alpha" (fun () -> 2);
  let out = Format.asprintf "%a" Snapshot.pp_table (Registry.snapshot reg) in
  let find sub =
    let n = String.length out and m = String.length sub in
    let rec go i =
      if i + m > n then Alcotest.failf "%S not in table output" sub
      else if String.sub out i m = sub then i
      else go (i + 1)
    in
    go 0
  in
  check_bool "sorted by name" true (find "alpha" < find "zeta")

let test_hub_roundtrip () =
  let hub = Hub.create ~trace_capacity:16 () in
  let c = Registry.counter (Hub.registry hub) "events" in
  Registry.Counter.add c 2;
  Tracer.instant (Hub.tracer hub) "e";
  let path = Filename.temp_file "kona_metrics" ".json" in
  Hub.write_metrics_json ~path hub;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  match Json.of_string (String.trim text) with
  | Ok doc ->
      check_bool "metrics present" true (Json.member "metrics" doc <> None)
  | Error e -> Alcotest.failf "hub export does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Json parser edge cases *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("nan", Json.Float Float.nan);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("o", Json.Obj [ ("k", Json.Int 0) ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok parsed -> (
      (match Json.member "s" parsed with
      | Some (Json.String s) -> check_string "escaped string" "a\"b\\c\nd" s
      | _ -> Alcotest.fail "string field");
      (match Json.member "nan" parsed with
      | Some Json.Null -> () (* NaN exports as null *)
      | _ -> Alcotest.fail "nan must export as null");
      match Json.member "i" parsed with
      | Some (Json.Int i) -> check_int "int field" (-42) i
      | _ -> Alcotest.fail "int field")

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "{}x"; "\"unterminated" ]

let () =
  Alcotest.run "kona_telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "handles" `Quick test_registry_handles;
          Alcotest.test_case "collision" `Quick test_registry_collision;
          Alcotest.test_case "invalid names" `Quick test_registry_invalid_name;
          Alcotest.test_case "label order" `Quick test_registry_labels_sorted;
          Alcotest.test_case "pull closures" `Quick test_registry_pull;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring wraps keeping newest" `Quick
            test_tracer_wraps_keeping_newest;
          Alcotest.test_case "sampling" `Quick test_tracer_sampling;
          Alcotest.test_case "clock stamping" `Quick test_tracer_clock_stamping;
          Alcotest.test_case "jsonl export" `Quick test_tracer_jsonl;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "diff/merge round-trip" `Quick test_snapshot_diff_roundtrip;
          Alcotest.test_case "immutability" `Quick test_snapshot_immutable;
        ] );
      ( "export",
        [
          Alcotest.test_case "json document valid" `Quick test_export_json_valid;
          Alcotest.test_case "table sorted" `Quick test_export_table;
          Alcotest.test_case "hub write/parse" `Quick test_hub_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
