(* Shared-memory RPC ring (lib/shmem): call accounting, doorbell
   ownership ping-pong, determinism across fresh engines, and ring
   geometry validation. *)

module Rack = Kona_rack.Rack
module Shm_rpc = Kona_shmem.Shm_rpc
module Workloads = Kona_workloads.Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let tenants =
  [
    { Rack.name = "server"; workload = "kv-seq"; bw_share = 1;
      mem_quota = None; seed = 42 };
    { Rack.name = "client"; workload = "kv-uniform"; bw_share = 1;
      mem_quota = None; seed = 43 };
  ]

(* An idle rack: no pre-published segment, no replayed traffic — the
   ring is the only coherence activity, so the counters below are
   attributable to it alone. *)
let engine () =
  Rack.start
    { Rack.default_config with Rack.scale = Workloads.Smoke; shared_pages = 0 }
    tenants

let test_ring_stats () =
  let e = engine () in
  let s = Shm_rpc.run e ~client:1 ~server:0 ~calls:32 () in
  check_int "every call completed" 32 s.Shm_rpc.s_calls;
  check_bool "doorbell claims recalled dirty lines" true
    (s.Shm_rpc.s_handoffs > 0);
  check_bool "recalls invalidated the previous writer" true
    (s.Shm_rpc.s_invalidations > 0);
  check_bool "calls accumulated wire time" true (s.Shm_rpc.s_total_ns > 0);
  check_bool "mean bounded by max" true
    (Shm_rpc.mean_ns s <= s.Shm_rpc.s_max_ns);
  check_int "home directory internally consistent" 0
    (List.length (Rack.coherence_audit e))

let test_doorbell_ownership () =
  let e = engine () in
  let t = Shm_rpc.create e ~client:1 ~server:0 () in
  ignore (Shm_rpc.call t ~payload:0);
  (* Within one call the head doorbell is written by the client (ring)
     then claimed by the server, and the tail doorbell by the server
     (completion) then claimed by the client — so after the call each
     doorbell is owned by its claimer, proof the RFOs moved ownership
     rather than writing through a stale copy. *)
  let head = 1 and tail = 2 in
  Alcotest.(check (option int))
    "server claimed the request doorbell" (Some 0)
    (Rack.shared_owner e ~line:head);
  Alcotest.(check (option int))
    "client claimed the completion doorbell" (Some 1)
    (Rack.shared_owner e ~line:tail);
  ignore (Shm_rpc.call t ~payload:1);
  Alcotest.(check (option int))
    "ownership ping-pongs back the same way" (Some 0)
    (Rack.shared_owner e ~line:head)

let test_determinism () =
  let stats () = Shm_rpc.run (engine ()) ~client:1 ~server:0 ~calls:64 () in
  let a = stats () and b = stats () in
  check_bool "fresh engines give bit-identical ring stats" true (a = b)

let test_validation () =
  let e = engine () in
  check_bool "client = server" true
    (raises (fun () -> Shm_rpc.create e ~client:0 ~server:0 ()));
  check_bool "tenant out of range" true
    (raises (fun () -> Shm_rpc.create e ~client:2 ~server:0 ()));
  check_bool "non-positive geometry" true
    (raises (fun () -> Shm_rpc.create e ~slots:0 ~client:1 ~server:0 ()));
  check_bool "ring larger than the shared page" true
    (raises (fun () ->
         Shm_rpc.create e ~slots:4 ~req_lines:8 ~resp_lines:8 ~client:1
           ~server:0 ()))

let () =
  Alcotest.run "kona_shmem"
    [
      ( "shm-rpc",
        [
          Alcotest.test_case "ring stats" `Quick test_ring_stats;
          Alcotest.test_case "doorbell ownership" `Quick
            test_doorbell_ownership;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "validates geometry" `Quick test_validation;
        ] );
    ]
