(* Tests for Kona_baselines: the Kona-VM runtime's fault/eviction semantics,
   its data integrity, and the headline Kona-vs-VM comparisons. *)

open Kona
open Kona_baselines
module Units = Kona_util.Units
module Rng = Kona_util.Rng
module Heap = Kona_workloads.Heap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cost = Cost_model.default

let make_vm ?(cache_pages = 64) ?(write_protect = true) ?profile () =
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let profile =
    match profile with
    | Some p -> p
    | None -> Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default
  in
  let config = { Vm_runtime.default_config with cache_pages; write_protect } in
  let vm = Vm_runtime.create ~config ~profile ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Vm_runtime.sink vm) () in
  heap_ref := Some heap;
  (vm, heap, controller)

(* ------------------------------------------------------------------ *)
(* Fault semantics *)

let test_vm_two_faults_on_first_write () =
  let vm, heap, _ = make_vm () in
  let a = Heap.alloc heap 4096 in
  Heap.write_u64 heap a 1;
  let stats = Vm_runtime.stats vm in
  check_int "one remote fault" 1 (List.assoc "remote_faults" stats);
  check_int "one wp fault (the second fault)" 1 (List.assoc "wp_faults" stats);
  Heap.write_u64 heap (a + 8) 2;
  check_int "no further faults on same page" 1
    (List.assoc "wp_faults" (Vm_runtime.stats vm))

let test_vm_read_then_write () =
  let vm, heap, _ = make_vm () in
  let a = Heap.alloc heap 4096 in
  ignore (Heap.read_u64 heap a);
  check_int "read takes no wp fault" 0 (List.assoc "wp_faults" (Vm_runtime.stats vm));
  Heap.write_u64 heap a 5;
  check_int "first write faults" 1 (List.assoc "wp_faults" (Vm_runtime.stats vm))

let test_vm_no_write_protect_mode () =
  let vm, heap, _ = make_vm ~write_protect:false () in
  let a = Heap.alloc heap 4096 in
  Heap.write_u64 heap a 1;
  let stats = Vm_runtime.stats vm in
  check_int "NoWP: remote fault only" 1 (List.assoc "remote_faults" stats);
  check_int "NoWP: no wp faults" 0 (List.assoc "wp_faults" stats)

let test_vm_refault_after_eviction () =
  (* assoc 4: five pages mapping to the same set force an eviction; the
     evicted page faults again on re-touch and its TLB entry is shot down. *)
  let vm, heap, _ = make_vm ~cache_pages:4 () in
  let base = Heap.alloc heap (Units.kib 64) in
  for p = 0 to 4 do
    Heap.write_u64 heap (base + (p * Units.page_size)) p
  done;
  let stats = Vm_runtime.stats vm in
  check_int "five fetches" 5 (List.assoc "remote_faults" stats);
  check_int "one eviction" 1 (List.assoc "pages_evicted" stats);
  check_int "dirty page written" 1 (List.assoc "dirty_pages_written" stats);
  check_int "shootdown charged" 1 (List.assoc "shootdowns" stats);
  (* touch the evicted page again: refault *)
  ignore (Heap.read_u64 heap base);
  check_bool "refault" true (List.assoc "remote_faults" (Vm_runtime.stats vm) >= 6)

(* ------------------------------------------------------------------ *)
(* Integrity *)

let vm_integrity vm heap controller =
  Vm_runtime.drain vm;
  let rm = Vm_runtime.resource_manager vm in
  let mismatches = ref 0 in
  let pages = ref 0 in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then begin
        incr pages;
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node) ~addr:remote_addr
            ~len:Units.page_size
        in
        if local <> remote then incr mismatches
      end);
  check_bool "pages backed" true (!pages > 0);
  check_int "remote identical to heap" 0 !mismatches

let test_vm_integrity_under_pressure () =
  let vm, heap, controller = make_vm ~cache_pages:16 () in
  let rng = Rng.create ~seed:5 in
  let base = Heap.alloc heap (Units.kib 256) in
  for _ = 1 to 10_000 do
    let offset = Rng.int rng (Units.kib 256 - 8) in
    Heap.write_u64 heap (base + offset) (Rng.int rng 1_000_000)
  done;
  vm_integrity vm heap controller

let test_vm_nowp_integrity () =
  (* NoWP cannot track dirtiness, so it writes every victim back; data must
     still be correct. *)
  let vm, heap, controller = make_vm ~cache_pages:8 ~write_protect:false () in
  let base = Heap.alloc heap (Units.kib 128) in
  for p = 0 to 31 do
    Heap.write_u64 heap (base + (p * Units.page_size)) (p * 31)
  done;
  vm_integrity vm heap controller

let test_vm_huge_pages () =
  (* 64KB pages: 16x fewer faults on a sequential sweep, 16x more bytes per
     dirty eviction, and integrity still holds. *)
  let make page_bytes =
    let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
    Rack_controller.register_node controller
      (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
    let heap_ref = ref None in
    let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
    let profile = Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default in
    let config =
      { Vm_runtime.default_config with cache_pages = 8; page_bytes }
    in
    let vm = Vm_runtime.create ~config ~profile ~controller ~read_local () in
    let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Vm_runtime.sink vm) () in
    heap_ref := Some heap;
    let base = Heap.alloc heap (Units.mib 1) in
    for p = 0 to (Units.mib 1 / Units.page_size) - 1 do
      Heap.write_u64 heap (base + (p * Units.page_size)) p
    done;
    (vm, heap, controller)
  in
  let vm4, _, _ = make Units.page_size in
  let vm64, heap64, controller64 = make (Units.kib 64) in
  let faults v = List.assoc "remote_faults" (Vm_runtime.stats v) in
  check_bool "huge pages take ~16x fewer faults" true (faults vm4 > 10 * faults vm64);
  vm_integrity vm64 heap64 controller64;
  let bytes v pb = List.assoc "dirty_pages_written" (Vm_runtime.stats v) * pb in
  check_bool "huge pages ship more bytes" true
    (bytes vm64 (Units.kib 64) > bytes vm4 Units.page_size)

let test_vm_page_bytes_validation () =
  let controller = Rack_controller.create () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 1));
  let profile = Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default in
  check_bool "rejects non-multiple page size" true
    (try
       ignore
         (Vm_runtime.create
            ~config:{ Vm_runtime.default_config with page_bytes = 5000 }
            ~profile ~controller
            ~read_local:(fun ~addr:_ ~len:_ -> "")
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Kona vs Kona-VM comparisons (small-scale versions of §6.1) *)

(* The Fig. 7 microbenchmark access pattern: read + write one cache-line in
   every page of a region, region twice the local cache. *)
let run_fig7_pattern ~sink ~heap ~region =
  let base = Heap.alloc heap region in
  ignore sink;
  for p = 0 to (region / Units.page_size) - 1 do
    let addr = base + (p * Units.page_size) in
    ignore (Heap.read_u64 heap addr);
    Heap.write_u64 heap addr p
  done

let test_kona_faster_than_vm () =
  let region = Units.kib 512 in
  (* Kona runtime *)
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 64 } in
  let kona = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink kona) () in
  heap_ref := Some heap;
  run_fig7_pattern ~sink:() ~heap ~region;
  Runtime.drain kona;
  let kona_ns = Runtime.elapsed_ns kona in
  (* Kona-VM *)
  let vm, vm_heap, _ = make_vm ~cache_pages:64 () in
  run_fig7_pattern ~sink:() ~heap:vm_heap ~region;
  Vm_runtime.drain vm;
  let vm_ns = Vm_runtime.elapsed_ns vm in
  check_bool
    (Printf.sprintf "kona (%d ns) at least 2x faster than kona-vm (%d ns)" kona_ns vm_ns)
    true
    (vm_ns > 2 * kona_ns);
  check_bool "but not absurdly faster" true (vm_ns < 30 * kona_ns)

let test_vm_writes_more_bytes () =
  (* Page-granularity eviction ships whole pages; Kona ships dirty lines. *)
  let region = Units.kib 512 in
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 64 } in
  let kona = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink kona) () in
  heap_ref := Some heap;
  run_fig7_pattern ~sink:() ~heap ~region;
  Runtime.drain kona;
  let kona_lines = List.assoc "log.lines" (Runtime.stats kona) in
  let vm, vm_heap, _ = make_vm ~cache_pages:64 () in
  run_fig7_pattern ~sink:() ~heap:vm_heap ~region;
  Vm_runtime.drain vm;
  let vm_pages = List.assoc "dirty_pages_written" (Vm_runtime.stats vm) in
  (* one dirty line per page in this pattern: Kona ships ~1/64 the data *)
  check_bool "kona line count ~ vm page count" true
    (kona_lines <= vm_pages * 4 && kona_lines >= vm_pages / 4);
  check_bool "kona bytes much smaller" true (kona_lines * 72 * 8 < vm_pages * 4096)

let test_profiles_ordering () =
  let p_vm = Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default in
  let p_lego = Vm_runtime.legoos_profile cost in
  let p_inf = Vm_runtime.infiniswap_profile cost in
  (* §6.2: Kona-VM achieves remote latency similar to LegoOS. *)
  check_bool "vm ~ lego (within 25%)" true
    (float_of_int p_vm.Vm_runtime.remote_fetch_ns
    < 1.25 *. float_of_int p_lego.Vm_runtime.remote_fetch_ns);
  check_bool "lego < inf" true
    (p_lego.Vm_runtime.remote_fetch_ns < p_inf.Vm_runtime.remote_fetch_ns);
  (* §6.1: Kona-VM is similar to or faster than Infiniswap by up to 60% *)
  check_bool "vm >= 40% of infiniswap's latency saved" true
    (float_of_int p_vm.Vm_runtime.remote_fetch_ns
    < 0.6 *. float_of_int p_inf.Vm_runtime.remote_fetch_ns)

let prop_vm_integrity_random_ops =
  QCheck.Test.make ~name:"vm runtime integrity under random op sequences" ~count:25
    QCheck.(list_of_size Gen.(20 -- 200) (pair (int_bound (Units.kib 128 - 9)) bool))
    (fun ops ->
      let vm, heap, controller = make_vm ~cache_pages:8 () in
      let base = Heap.alloc heap (Units.kib 128) in
      List.iteri
        (fun i (off, write) ->
          if write then Heap.write_u64 heap (base + off) i
          else ignore (Heap.read_u64 heap (base + off)))
        ops;
      Vm_runtime.drain vm;
      let rm = Vm_runtime.resource_manager vm in
      let ok = ref true in
      Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
          let page_base = vpage * Units.page_size in
          if page_base + Units.page_size <= Heap.capacity heap then begin
            let local = Heap.peek_bytes heap page_base Units.page_size in
            let remote =
              Memory_node.peek (Rack_controller.node controller ~id:node)
                ~addr:remote_addr ~len:Units.page_size
            in
            if local <> remote then ok := false
          end);
      !ok)

let test_legoos_infiniswap_runtimes () =
  (* The cost profiles drive real runtimes, and fault latency ordering
     carries through to end-to-end time. *)
  let run profile =
    let vm, heap, controller = make_vm ~cache_pages:16 ~profile () in
    let base = Heap.alloc heap (Units.kib 128) in
    for p = 0 to 31 do
      Heap.write_u64 heap (base + (p * Units.page_size)) p
    done;
    vm_integrity vm heap controller;
    Vm_runtime.elapsed_ns vm
  in
  let lego = run (Vm_runtime.legoos_profile cost) in
  let inf = run (Vm_runtime.infiniswap_profile cost) in
  check_bool "infiniswap slower than legoos end-to-end" true (inf > lego)

let () =
  Alcotest.run "kona_baselines"
    [
      ( "faults",
        [
          Alcotest.test_case "two faults on first write" `Quick
            test_vm_two_faults_on_first_write;
          Alcotest.test_case "read then write" `Quick test_vm_read_then_write;
          Alcotest.test_case "NoWP mode" `Quick test_vm_no_write_protect_mode;
          Alcotest.test_case "refault after eviction" `Quick test_vm_refault_after_eviction;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "random writes under pressure" `Quick
            test_vm_integrity_under_pressure;
          Alcotest.test_case "NoWP conservative writeback" `Quick test_vm_nowp_integrity;
        ] );
      ( "integrity-props",
        [ QCheck_alcotest.to_alcotest ~long:false prop_vm_integrity_random_ops ] );
      ( "huge_pages",
        [
          Alcotest.test_case "fewer faults, more bytes" `Quick test_vm_huge_pages;
          Alcotest.test_case "page size validation" `Quick test_vm_page_bytes_validation;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "kona faster than kona-vm" `Quick test_kona_faster_than_vm;
          Alcotest.test_case "vm ships more bytes" `Quick test_vm_writes_more_bytes;
          Alcotest.test_case "profile ordering" `Quick test_profiles_ordering;
          Alcotest.test_case "legoos/infiniswap runtimes" `Quick
            test_legoos_infiniswap_runtimes;
        ] );
    ]
