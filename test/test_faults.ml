(* Tests for the fault-injection subsystem and the recovery machinery it
   drives: the fault-spec grammar, the deterministic injector, QP
   retransmission, RPC retry, fail-stop memory nodes, replica failover at
   the controller, and the runtime-level end-to-end properties — bytes
   survive a memory-node crash when replicated, retransmission delivers
   exactly once, and seeded plans are bit-reproducible. *)

open Kona
module Clock = Kona_util.Clock
module Rng = Kona_util.Rng
module Units = Kona_util.Units
module Heap = Kona_workloads.Heap
module Qp = Kona_rdma.Qp
module Rpc = Kona_rdma.Rpc
module Nic = Kona_rdma.Nic
module Fault_spec = Kona_faults.Fault_spec
module Injector = Kona_faults.Injector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let raises_invalid f =
  try
    ignore (f ());
    None
  with Invalid_argument msg -> Some msg

(* Naive substring test; good enough for error-message assertions. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Fault-spec grammar *)

let test_spec_parse () =
  (match Fault_spec.parse "node-crash@2ms:id=1" with
  | Ok [ Fault_spec.Node_crash { at_ns; id } ] ->
      check_int "2ms in ns" 2_000_000 at_ns;
      check_int "id" 1 id
  | _ -> Alcotest.fail "node-crash parse");
  (match Fault_spec.parse "link-flap@1ms:dur=200us" with
  | Ok [ Fault_spec.Link_flap { at_ns; dur_ns } ] ->
      check_int "at" 1_000_000 at_ns;
      check_int "dur" 200_000 dur_ns
  | _ -> Alcotest.fail "link-flap parse");
  (match Fault_spec.parse "partition@2ms:dur=500us,nodes=0|2" with
  | Ok [ Fault_spec.Partition { at_ns; dur_ns; ids } ] ->
      check_int "partition at" 2_000_000 at_ns;
      check_int "partition dur" 500_000 dur_ns;
      check_bool "partition ids" true (ids = [ 0; 2 ])
  | _ -> Alcotest.fail "partition parse");
  match Fault_spec.parse "rpc-timeout:p=0.01; wqe-drop:p=0.5 ;wqe-delay:p=1,ns=300" with
  | Ok
      [
        Fault_spec.Rpc_timeout { p = p1 };
        Fault_spec.Wqe_drop { p = p2 };
        Fault_spec.Wqe_delay { p = p3; delay_ns };
      ] ->
      check_bool "probs" true (p1 = 0.01 && p2 = 0.5 && p3 = 1.0);
      check_int "delay" 300 delay_ns
  | _ -> Alcotest.fail "multi-clause parse"

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      let plan = Fault_spec.parse_exn s in
      check_bool ("round-trip " ^ s) true
        (Fault_spec.parse_exn (Fault_spec.to_string plan) = plan))
    [
      "node-crash@2ms:id=1";
      "link-flap@1500us:dur=3us";
      "rpc-timeout:p=0.25";
      "node-crash@7ns:id=0;wqe-drop:p=0.125;wqe-delay:p=0.5,ns=4097";
      "bit-flip:p=0.01";
      "torn-write:p=0.05;stale-read:p=0.02;dup-deliver:p=0.125";
      "bit-flip:p=0.25;torn-write:p=0.5;node-crash@3ms:id=1";
      "partition@1ms:dur=200us,nodes=0";
      "partition@200us:dur=5ms,nodes=0|1|3;node-crash@2ms:id=2";
    ]

let test_spec_errors () =
  let err s =
    match Fault_spec.parse s with Error m -> m | Ok _ -> Alcotest.fail ("accepted " ^ s)
  in
  check_bool "unknown kind named" true (contains ~sub:"disk-melt" (err "disk-melt@1ms"));
  check_bool "bad probability" true (String.length (err "wqe-drop:p=1.5") > 0);
  check_bool "crash needs time" true (String.length (err "node-crash:id=1") > 0);
  check_bool "crash needs id" true (String.length (err "node-crash@1ms") > 0);
  check_bool "bad duration" true (String.length (err "link-flap@soon:dur=1us") > 0);
  check_bool "unknown parameter" true (String.length (err "wqe-drop:p=0.1,q=2") > 0);
  check_bool "partition needs nodes" true
    (String.length (err "partition@1ms:dur=200us,nodes=") > 0);
  check_bool "partition rejects negative ids" true
    (String.length (err "partition@1ms:dur=200us,nodes=0|-1") > 0);
  check_bool "partition dur must be positive" true
    (String.length (err "partition@1ms:dur=0ns,nodes=0") > 0);
  check_bool "partition needs time" true
    (String.length (err "partition:dur=200us,nodes=0") > 0);
  check_bool "parse_exn raises" true
    (raises_invalid (fun () -> Fault_spec.parse_exn "nope") <> None)

let test_spec_duplicate_kinds () =
  let err s =
    match Fault_spec.parse s with Error m -> m | Ok _ -> Alcotest.fail ("accepted " ^ s)
  in
  check_bool "duplicate probabilistic kind named" true
    (contains ~sub:"duplicate clause kind" (err "bit-flip:p=0.1;bit-flip:p=0.2"));
  check_bool "offending kind in message" true
    (contains ~sub:"torn-write" (err "wqe-drop:p=0.1;torn-write:p=0.2;torn-write:p=0.3"));
  check_bool "parse_exn raises on duplicates" true
    (raises_invalid (fun () -> Fault_spec.parse_exn "stale-read:p=0.1;stale-read:p=0.1")
    <> None);
  (* Scheduled kinds may repeat: two crashes, two flaps. *)
  check_bool "repeated node-crash accepted" true
    (match Fault_spec.parse "node-crash@1ms:id=0;node-crash@2ms:id=1" with
    | Ok [ _; _ ] -> true
    | _ -> false);
  check_bool "repeated link-flap accepted" true
    (match Fault_spec.parse "link-flap@1ms:dur=1us;link-flap@2ms:dur=2us" with
    | Ok [ _; _ ] -> true
    | _ -> false)

(* Random well-formed plans survive a print/parse round trip.  The
   generator respects the grammar's shape: each probabilistic kind at
   most once (crashes and flaps may repeat), probabilities drawn as
   k/1000 so ["%g"] reprints them exactly, and times as positive ns
   (any positive int round-trips through the unit-suffix printer). *)
let plan_gen =
  let open QCheck.Gen in
  let prob = map (fun k -> float_of_int k /. 1000.) (int_range 1 999) in
  let time = int_range 1 5_000_000 in
  let crashes =
    list_size (int_range 0 2)
      (map2 (fun at_ns id -> Fault_spec.Node_crash { at_ns; id }) time (int_range 0 7))
  in
  let flaps =
    list_size (int_range 0 2)
      (map2 (fun at_ns dur_ns -> Fault_spec.Link_flap { at_ns; dur_ns }) time time)
  in
  let partitions =
    list_size (int_range 0 2)
      (map2
         (fun (at_ns, dur_ns) ids -> Fault_spec.Partition { at_ns; dur_ns; ids })
         (pair time time)
         (list_size (int_range 1 3) (int_range 0 7)))
  in
  let maybe g = map (function Some c -> [ c ] | None -> []) (opt g) in
  let p1 mk = maybe (map mk prob) in
  map List.concat
    (flatten_l
       [
         crashes;
         flaps;
         partitions;
         p1 (fun p -> Fault_spec.Rpc_timeout { p });
         p1 (fun p -> Fault_spec.Wqe_drop { p });
         maybe
           (map2
              (fun p delay_ns -> Fault_spec.Wqe_delay { p; delay_ns })
              prob time);
         p1 (fun p -> Fault_spec.Bit_flip { p });
         p1 (fun p -> Fault_spec.Torn_write { p });
         p1 (fun p -> Fault_spec.Stale_read { p });
         p1 (fun p -> Fault_spec.Dup_deliver { p });
       ])

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"fault plans round-trip through to_string/parse"
    ~count:200
    (QCheck.make ~print:Fault_spec.to_string plan_gen)
    (fun plan -> Fault_spec.parse_exn (Fault_spec.to_string plan) = plan)

(* ------------------------------------------------------------------ *)
(* Injector determinism and scheduling *)

let test_injector_deterministic () =
  let plan = Fault_spec.parse_exn "wqe-drop:p=0.2;wqe-delay:p=0.3,ns=100" in
  let draw inj = List.init 200 (fun _ -> Injector.qp_inject inj ()) in
  let a = draw (Injector.create ~seed:7 ~plan) in
  let b = draw (Injector.create ~seed:7 ~plan) in
  let c = draw (Injector.create ~seed:8 ~plan) in
  check_bool "same seed, same decisions" true (a = b);
  check_bool "different seed, different decisions" true (a <> c)

let test_injector_crash_schedule () =
  let plan = Fault_spec.parse_exn "node-crash@1us:id=3;node-crash@2us:id=5" in
  let inj = Injector.create ~seed:1 ~plan in
  check_int "both pending" 2 (Injector.crashes_pending inj);
  check_bool "nothing due early" true (Injector.due_node_crashes inj ~now:500 = []);
  check_bool "first due at 1us" true (Injector.due_node_crashes inj ~now:1_000 = [ 3 ]);
  check_bool "each id returned once" true (Injector.due_node_crashes inj ~now:1_000 = []);
  check_bool "rest due later" true (Injector.due_node_crashes inj ~now:9_999 = [ 5 ]);
  check_int "none pending" 0 (Injector.crashes_pending inj);
  check_int "crashes counted" 2
    (List.assoc "node_crashes" (Injector.counters inj))

let test_injector_link_flaps () =
  let inj =
    Injector.create ~seed:1
      ~plan:(Fault_spec.parse_exn "link-flap@1ms:dur=200us;link-flap@3ms:dur=1us")
  in
  check_bool "flap windows" true
    (Injector.link_flaps inj = [ (1_000_000, 200_000); (3_000_000, 1_000) ]);
  check_int "flaps counted as injected" 2 (Injector.injected inj)

(* ------------------------------------------------------------------ *)
(* QP retransmission state machine *)

let test_qp_retransmit_backoff () =
  (* Script: the first two transmission attempts are lost, then clean. *)
  let drops = ref 2 in
  let inject () = if !drops > 0 then (decr drops; Some `Drop) else None in
  let clock = Clock.create () in
  let qp = Qp.create ~inject ~clock () in
  let delivered = ref 0 in
  Qp.post qp
    [ Qp.wqe ~signaled:true ~deliver:(fun () -> incr delivered) Qp.Write ~len:64 ];
  Qp.wait_idle qp;
  check_int "delivered exactly once" 1 !delivered;
  check_int "two retransmits" 2 (Qp.retransmits qp);
  (* 8us timer, then doubled: 8_000 + 16_000. *)
  check_int "backoff accumulated" 24_000 (Qp.fault_delay_ns qp);
  check_bool "completion slipped by the backoff" true (Clock.now clock >= 24_000)

let test_qp_delay_injection () =
  let once = ref true in
  let inject () = if !once then (once := false; Some (`Delay 500)) else None in
  let qp = Qp.create ~inject ~clock:(Clock.create ()) () in
  Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:64 ];
  Qp.wait_idle qp;
  check_int "delay recorded" 500 (Qp.fault_delay_ns qp);
  check_int "no retransmits for a delay" 0 (Qp.retransmits qp)

let test_qp_retry_exhausted () =
  let inject () = Some `Drop in
  let qp =
    Qp.create ~inject
      ~retry:{ Qp.default_retry with retry_limit = 3 }
      ~clock:(Clock.create ()) ()
  in
  match Qp.post qp [ Qp.wqe Qp.Write ~len:64 ] with
  | () -> Alcotest.fail "expected Retry_exhausted"
  | exception Qp.Retry_exhausted { attempts } -> check_int "attempts" 4 attempts

let prop_qp_exactly_once =
  (* Under any loss rate the retransmission machinery delivers each WQE's
     side-effect exactly once, in post order. *)
  QCheck.Test.make ~name:"lossy QP delivers each WQE exactly once, in order"
    ~count:50
    QCheck.(pair small_nat (int_bound 99))
    (fun (seed, pct) ->
      let p = float_of_int pct /. 200. in
      let rng = Rng.create ~seed in
      let inject () = if p > 0. && Rng.float rng 1.0 < p then Some `Drop else None in
      let qp =
        Qp.create ~inject
          ~retry:{ Qp.default_retry with retry_limit = max_int }
          ~clock:(Clock.create ()) ()
      in
      let n = 40 in
      let delivered = Array.make n 0 in
      let order = ref [] in
      let wqes =
        List.init n (fun i ->
            Qp.wqe ~signaled:true
              ~deliver:(fun () ->
                delivered.(i) <- delivered.(i) + 1;
                order := i :: !order)
              Qp.Write ~len:64)
      in
      Qp.post qp wqes;
      Qp.wait_idle qp;
      Array.for_all (fun c -> c = 1) delivered
      && List.rev !order = List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* RPC timeout / retry *)

let test_rpc_retry () =
  let attempts = ref 0 in
  let fail () = incr attempts; !attempts <= 2 in
  let rpc = Rpc.create ~fail ~clock:(Clock.create ()) ~nic:(Nic.create ()) () in
  let ran = ref 0 in
  let v = Rpc.call rpc ~request_bytes:64 ~response_bytes:64 (fun x -> incr ran; x + 1) 41 in
  check_int "result through retries" 42 v;
  check_int "handler ran exactly once" 1 !ran;
  check_int "two timeouts" 2 (Rpc.timeouts rpc);
  check_int "two resends" 2 (Rpc.retries rpc);
  check_int "one logical call" 1 (Rpc.calls rpc)

let test_rpc_timeout_exhausted () =
  let rpc =
    Rpc.create ~retry_limit:2
      ~fail:(fun () -> true)
      ~clock:(Clock.create ()) ~nic:(Nic.create ()) ()
  in
  let ran = ref 0 in
  match Rpc.call rpc ~request_bytes:8 ~response_bytes:8 (fun () -> incr ran) () with
  | () -> Alcotest.fail "expected Timeout_exhausted"
  | exception Rpc.Timeout_exhausted { attempts } ->
      check_int "attempts" 3 attempts;
      check_int "handler never ran" 0 !ran

let test_rpc_surfaces_transport_death () =
  (* When the request send itself dies (QP out of retransmissions), the
     retry wrapper must surface that underlying exception at exhaustion,
     not mask it as Timeout_exhausted. *)
  let rpc =
    Rpc.create ~retry_limit:1
      ~inject:(fun () -> Some `Drop)
      ~clock:(Clock.create ()) ~nic:(Nic.create ()) ()
  in
  let ran = ref 0 in
  match Rpc.call rpc ~request_bytes:8 ~response_bytes:8 (fun () -> incr ran) () with
  | () -> Alcotest.fail "expected Retry_exhausted"
  | exception Qp.Retry_exhausted _ ->
      check_int "handler never ran" 0 !ran;
      check_int "send failures counted as timeouts" 2 (Rpc.timeouts rpc);
      check_int "one resend before giving up" 1 (Rpc.retries rpc)
  | exception e ->
      Alcotest.failf "underlying exception masked: got %s" (Printexc.to_string e)

let test_rpc_handler_exception_no_retry () =
  (* A handler exception means the handler has executed; retrying would
     break exactly-once, so it propagates immediately and untouched. *)
  let rpc = Rpc.create ~clock:(Clock.create ()) ~nic:(Nic.create ()) () in
  let ran = ref 0 in
  (match
     Rpc.call rpc ~request_bytes:8 ~response_bytes:8
       (fun () ->
         incr ran;
         failwith "handler blew up")
       ()
   with
  | () -> Alcotest.fail "expected handler exception"
  | exception Failure msg -> check_string "original exception" "handler blew up" msg);
  check_int "handler ran exactly once" 1 !ran;
  check_int "no retries on handler failure" 0 (Rpc.retries rpc);
  check_int "no timeouts on handler failure" 0 (Rpc.timeouts rpc)

(* ------------------------------------------------------------------ *)
(* Fail-stop memory nodes *)

let test_memory_node_crash () =
  let n = Memory_node.create ~id:9 ~capacity:Units.page_size in
  ignore (Memory_node.reserve n ~size:64 : int);
  Memory_node.write n ~addr:0 ~data:"hello";
  Memory_node.crash n;
  check_bool "not alive" false (Memory_node.alive n);
  (* Metadata stays readable (the controller tracks reservations). *)
  check_int "id" 9 (Memory_node.id n);
  check_int "used" Units.page_size (Memory_node.used n);
  let crashed f = try ignore (f ()); false with Memory_node.Crashed 9 -> true in
  check_bool "read raises" true (crashed (fun () -> Memory_node.read n ~addr:0 ~len:5));
  check_bool "write raises" true
    (crashed (fun () -> Memory_node.write n ~addr:0 ~data:"x"));
  check_bool "reserve raises" true
    (crashed (fun () -> Memory_node.reserve n ~size:64));
  check_bool "receive_log raises" true
    (crashed (fun () ->
         Memory_node.receive_log n
           [ Memory_node.entry ~addr:0 ~data:(String.make 64 'a') ]))

(* ------------------------------------------------------------------ *)
(* Rack controller: descriptive errors, replace, crash-aware allocation *)

let test_controller_unknown_id_message () =
  let c = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c (Memory_node.create ~id:0 ~capacity:(Units.kib 64));
  match raises_invalid (fun () -> Rack_controller.node c ~id:77) with
  | Some msg -> check_bool "message names the id" true (contains ~sub:"77" msg)
  | None -> Alcotest.fail "expected Invalid_argument"

let test_controller_replace_node () =
  let c = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c (Memory_node.create ~id:0 ~capacity:(Units.kib 64));
  let stand_in = Memory_node.create ~id:500 ~capacity:(Units.kib 64) in
  Rack_controller.replace_node c ~id:0 ~node:stand_in;
  check_int "logical id 0 now backed by 500" 500
    (Memory_node.id (Rack_controller.node c ~id:0))

let test_controller_skips_crashed_nodes () =
  let c = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c (Memory_node.create ~id:0 ~capacity:(Units.mib 1));
  Rack_controller.register_node c (Memory_node.create ~id:1 ~capacity:(Units.mib 1));
  Memory_node.crash (Rack_controller.node c ~id:0);
  let s1 = Rack_controller.allocate_slab c ~vaddr:0 in
  let s2 = Rack_controller.allocate_slab c ~vaddr:65536 in
  check_int "crashed node skipped" 1 s1.Slab.node;
  check_int "still skipped" 1 s2.Slab.node

(* ------------------------------------------------------------------ *)
(* Replication failover *)

let replicated_pair () =
  let c = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c (Memory_node.create ~id:0 ~capacity:(Units.kib 64));
  Rack_controller.register_node c (Memory_node.create ~id:1 ~capacity:(Units.kib 64));
  let r = Replication.create ~degree:1 ~controller:c in
  (c, r)

let test_failover_promotes_mirror () =
  let c, r = replicated_pair () in
  let primary = Rack_controller.node c ~id:1 in
  ignore (Memory_node.reserve primary ~size:Units.page_size : int);
  let data = String.make 64 'k' in
  Memory_node.write primary ~addr:128 ~data;
  let mirror = List.hd (Replication.targets r ~node:1) in
  Memory_node.write mirror ~addr:128 ~data;
  Memory_node.crash primary;
  (match Replication.failover r ~controller:c ~node:1 with
  | None -> Alcotest.fail "expected promotion"
  | Some promoted ->
      check_int "mirror took over" (Memory_node.id mirror) (Memory_node.id promoted);
      check_int "promotion inherited the brk" (Memory_node.used primary)
        (Memory_node.used promoted));
  check_string "data survives at the logical id" data
    (Memory_node.read (Rack_controller.node c ~id:1) ~addr:128 ~len:64);
  check_int "failover counted" 1 (Replication.failovers r);
  check_bool "mirror left the mirror set" true (Replication.targets r ~node:1 = [])

let test_failover_without_live_mirror () =
  let c, r = replicated_pair () in
  Memory_node.crash (List.hd (Replication.targets r ~node:1));
  Memory_node.crash (Rack_controller.node c ~id:1);
  check_bool "no live mirror to promote" true
    (Replication.failover r ~controller:c ~node:1 = None);
  check_int "no failover counted" 0 (Replication.failovers r)

let test_crash_mirror () =
  let c, r = replicated_pair () in
  let m = List.hd (Replication.targets r ~node:0) in
  check_bool "mirror crash names its primary" true
    (Replication.crash_mirror r ~id:(Memory_node.id m) = Some 0);
  check_bool "mirror removed" true (Replication.targets r ~node:0 = []);
  check_bool "unknown id is not a mirror" true (Replication.crash_mirror r ~id:4242 = None);
  ignore c

let test_divergent_mirrors () =
  let c, r = replicated_pair () in
  let primary = Rack_controller.node c ~id:0 in
  ignore (Memory_node.reserve primary ~size:Units.page_size : int);
  let mirror = List.hd (Replication.targets r ~node:0) in
  Memory_node.write primary ~addr:0 ~data:"same";
  Memory_node.write mirror ~addr:0 ~data:"same";
  check_int "in sync" 0 (Replication.divergent_mirrors r ~controller:c);
  Memory_node.write mirror ~addr:0 ~data:"DIFF";
  check_int "divergence detected" 1 (Replication.divergent_mirrors r ~controller:c);
  Memory_node.crash mirror;
  check_int "a crashed mirror is lost, not divergent" 0
    (Replication.divergent_mirrors r ~controller:c)

(* ------------------------------------------------------------------ *)
(* Runtime-level recovery *)

let make_runtime ?(fmem_pages = 16) ?(replicas = 0) ?(faults = [])
    ?(fault_seed = 42) ?(check_replicas = false) () =
  let controller = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 8));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 8));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config =
    {
      Runtime.default_config with
      fmem_pages;
      replicas;
      faults;
      fault_seed;
      check_replicas;
    }
  in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;
  (runtime, heap, controller)

let scribble ?(writes = 8_000) ?(region = Units.kib 512) heap =
  let rng = Rng.create ~seed:5 in
  let base = Heap.alloc heap region in
  for _ = 1 to writes do
    Heap.write_u64 heap (base + (Rng.int rng ((region - 8) / 8) * 8)) (Rng.int rng 1_000_000)
  done

let integrity_ok runtime heap controller =
  let ok = ref true in
  let pages = ref 0 in
  Resource_manager.iter_backed_pages (Runtime.resource_manager runtime)
    (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then begin
        incr pages;
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node)
            ~addr:remote_addr ~len:Units.page_size
        in
        if local <> remote then ok := false
      end);
  !ok && !pages > 0

let test_runtime_crash_failover_end_to_end () =
  let faults = Fault_spec.parse_exn "node-crash@50us:id=1;wqe-drop:p=0.01" in
  let runtime, heap, controller = make_runtime ~replicas:1 ~faults () in
  scribble heap;
  Runtime.drain runtime;
  check_int "crash handled" 1 (Runtime.node_crashes runtime);
  check_bool "failover latency recorded" true
    (Kona_util.Histogram.count (Runtime.failover_latency runtime) = 1);
  check_bool "not degraded" true (Runtime.degraded runtime = None);
  check_bool "remote equals heap after failover" true
    (integrity_ok runtime heap controller);
  match Runtime.replication runtime with
  | Some r ->
      check_int "no divergent mirror" 0
        (Replication.divergent_mirrors r ~controller);
      check_int "degree restored by re-replication" 1
        (List.length (Replication.targets r ~node:1))
  | None -> Alcotest.fail "replication expected"

let test_runtime_crash_without_replicas_degrades () =
  let faults = Fault_spec.parse_exn "node-crash@50us:id=1" in
  let runtime, heap, _controller = make_runtime ~faults () in
  scribble heap;
  Runtime.drain runtime;
  (* No exception escaped; the run reports the damage instead. *)
  check_bool "degraded" true (Runtime.degraded runtime <> None)

let test_runtime_check_replicas_invariant () =
  let faults = Fault_spec.parse_exn "node-crash@50us:id=1;wqe-drop:p=0.02" in
  let runtime, heap, _ =
    make_runtime ~replicas:2 ~faults ~check_replicas:true ()
  in
  scribble ~writes:3_000 heap;
  Runtime.drain runtime (* would failwith on any divergence *)

let test_runtime_recover_heap () =
  let runtime, heap, _ = make_runtime () in
  scribble heap;
  Runtime.drain runtime;
  let heap2 =
    Heap.create ~capacity:(Heap.capacity heap) ~sink:Kona_trace.Access.Tap.ignore ()
  in
  let restored, lost =
    Runtime.recover_heap runtime ~restore:(fun ~addr ~data ->
        if addr + Units.page_size <= Heap.capacity heap2 then
          Heap.restore_page heap2 ~addr ~data)
  in
  check_bool "pages restored" true (restored > 0);
  check_int "nothing lost" 0 lost;
  let ok = ref true in
  Resource_manager.iter_backed_pages (Runtime.resource_manager runtime)
    (fun ~vpage ~node:_ ~remote_addr:_ ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then
        if
          Heap.peek_bytes heap base Units.page_size
          <> Heap.peek_bytes heap2 base Units.page_size
        then ok := false);
  check_bool "recovered heap equals the lost one" true !ok

(* ------------------------------------------------------------------ *)
(* End-to-end properties *)

let prop_readable_after_failover =
  (* Any crash time and seed, with at least one replica: every byte the
     application wrote is still readable from remote memory afterwards. *)
  QCheck.Test.make ~name:"replicated bytes readable after node crash" ~count:15
    QCheck.(triple (1 -- 2) (int_bound 400_000) small_nat)
    (fun (replicas, crash_offset_ns, fault_seed) ->
      let faults =
        Fault_spec.parse_exn
          (Printf.sprintf "node-crash@%dns:id=1;wqe-drop:p=0.01"
             (10_000 + crash_offset_ns))
      in
      let runtime, heap, controller =
        make_runtime ~replicas ~faults ~fault_seed ()
      in
      scribble ~writes:4_000 heap;
      Runtime.drain runtime;
      Runtime.degraded runtime = None && integrity_ok runtime heap controller)

let prop_seeded_plans_reproducible =
  (* The same plan and seed produce bit-identical runs: every counter and
     both clocks match across two executions. *)
  QCheck.Test.make ~name:"seeded fault plans are bit-reproducible" ~count:10
    QCheck.small_nat
    (fun fault_seed ->
      let run () =
        let faults =
          Fault_spec.parse_exn
            "node-crash@80us:id=1;wqe-drop:p=0.05;wqe-delay:p=0.1,ns=700;rpc-timeout:p=0.2"
        in
        let runtime, heap, _ = make_runtime ~replicas:1 ~faults ~fault_seed () in
        scribble ~writes:3_000 heap;
        Runtime.drain runtime;
        ( Runtime.stats runtime,
          Runtime.app_ns runtime,
          Runtime.bg_ns runtime,
          Option.map Injector.counters (Runtime.injector runtime) )
      in
      run () = run ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kona_faults"
    [
      ( "fault_spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "duplicate kinds rejected" `Quick
            test_spec_duplicate_kinds;
          QCheck_alcotest.to_alcotest ~long:false prop_spec_roundtrip;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "crash schedule" `Quick test_injector_crash_schedule;
          Alcotest.test_case "link flaps" `Quick test_injector_link_flaps;
        ] );
      ( "qp-retransmit",
        [
          Alcotest.test_case "backoff" `Quick test_qp_retransmit_backoff;
          Alcotest.test_case "delay" `Quick test_qp_delay_injection;
          Alcotest.test_case "retry exhausted" `Quick test_qp_retry_exhausted;
        ] );
      ( "qp-retransmit-props",
        [ QCheck_alcotest.to_alcotest ~long:false prop_qp_exactly_once ] );
      ( "rpc",
        [
          Alcotest.test_case "retry" `Quick test_rpc_retry;
          Alcotest.test_case "timeout exhausted" `Quick test_rpc_timeout_exhausted;
          Alcotest.test_case "transport death surfaces" `Quick
            test_rpc_surfaces_transport_death;
          Alcotest.test_case "handler exception not retried" `Quick
            test_rpc_handler_exception_no_retry;
        ] );
      ( "memory-node",
        [ Alcotest.test_case "fail-stop" `Quick test_memory_node_crash ] );
      ( "controller",
        [
          Alcotest.test_case "unknown id names id" `Quick
            test_controller_unknown_id_message;
          Alcotest.test_case "replace node" `Quick test_controller_replace_node;
          Alcotest.test_case "skips crashed nodes" `Quick
            test_controller_skips_crashed_nodes;
        ] );
      ( "replication",
        [
          Alcotest.test_case "failover promotes mirror" `Quick
            test_failover_promotes_mirror;
          Alcotest.test_case "failover without live mirror" `Quick
            test_failover_without_live_mirror;
          Alcotest.test_case "crash mirror" `Quick test_crash_mirror;
          Alcotest.test_case "divergent mirrors" `Quick test_divergent_mirrors;
        ] );
      ( "runtime-recovery",
        [
          Alcotest.test_case "crash + failover end to end" `Quick
            test_runtime_crash_failover_end_to_end;
          Alcotest.test_case "no replicas degrades" `Quick
            test_runtime_crash_without_replicas_degrades;
          Alcotest.test_case "check-replicas invariant" `Quick
            test_runtime_check_replicas_invariant;
          Alcotest.test_case "recover heap" `Quick test_runtime_recover_heap;
        ] );
      ( "recovery-props",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_readable_after_failover;
          QCheck_alcotest.to_alcotest ~long:false prop_seeded_plans_reproducible;
        ] );
    ]
